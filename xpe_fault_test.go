package xpe

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
	"unicode/utf8"

	"xpe/internal/faultinject"
)

// faultEngine returns an engine with the faultinject feed alphabet interned
// and the query that locates exactly one node per healthy feed record.
func faultEngine(t *testing.T) (*Engine, *Query) {
	t.Helper()
	eng := NewEngine()
	if _, err := eng.ParseXMLString("<feed><rec><id>0</id><a/><b/></rec></feed>"); err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("[* ; a ; b .] rec")
	if err != nil {
		t.Fatal(err)
	}
	return eng, q
}

func TestChaosFacadeSkipMalformed(t *testing.T) {
	spec := faultinject.FeedSpec{Records: 20, Malformed: map[int]bool{4: true, 9: true}}
	eng, q := faultEngine(t)
	for _, workers := range []int{1, 4} {
		before := eng.Stats()
		sink := NewMetricsSink()
		var got []int
		stats, err := eng.SelectStream(context.Background(), spec.Reader(), q,
			SelectOptions{Workers: workers, SplitElement: "rec", OnError: Skip, Metrics: sink},
			func(m StreamMatch) error { got = append(got, m.Record); return nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := spec.HealthyIDs()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: delivered %v, want %v", workers, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: delivered %v, want %v", workers, got, want)
			}
		}
		if stats.Skipped != 2 || stats.Recovered != 0 {
			t.Fatalf("workers=%d: skipped=%d recovered=%d, want 2/0", workers, stats.Skipped, stats.Recovered)
		}
		// The skip count lands in the per-run sink and the engine registry.
		if n := sink.Stats().Stream.RecordsSkipped; n != 2 {
			t.Fatalf("workers=%d: sink records_skipped = %d, want 2", workers, n)
		}
		if d := eng.Stats().Stream.RecordsSkipped - before.Stream.RecordsSkipped; d != 2 {
			t.Fatalf("workers=%d: engine records_skipped delta = %d, want 2", workers, d)
		}
	}
}

func TestChaosFacadePolicyReceivesTypedCause(t *testing.T) {
	spec := faultinject.FeedSpec{Records: 10, Malformed: map[int]bool{3: true}}
	eng, q := faultEngine(t)
	var fails []*RecordError
	_, err := eng.SelectStream(context.Background(), spec.Reader(), q,
		SelectOptions{SplitElement: "rec", OnError: func(e *RecordError) error {
			fails = append(fails, e)
			return nil
		}},
		func(StreamMatch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 1 || fails[0].Record != 3 {
		t.Fatalf("fails = %v, want one failure on record 3", fails)
	}
	var pe *ParseError
	if !errors.As(fails[0].Err, &pe) {
		t.Fatalf("cause = %v, want *ParseError", fails[0].Err)
	}
}

func TestChaosFacadeInternalError(t *testing.T) {
	spec := faultinject.FeedSpec{Records: 10}
	eng, q := faultEngine(t)

	// Nil policy: the panic aborts the run with the typed chain
	// *RecordError → *InternalError, stack included.
	opts := SelectOptions{SplitElement: "rec"}
	opts.inject = faultinject.NewEvalFaults().PanicOn(2)
	_, err := eng.SelectStream(context.Background(), spec.Reader(), q, opts,
		func(StreamMatch) error { return nil })
	var re *RecordError
	if !errors.As(err, &re) || re.Record != 2 {
		t.Fatalf("err = %v, want *RecordError for record 2", err)
	}
	var ie *InternalError
	if !errors.As(re.Err, &ie) || ie.Record != 2 || len(ie.Stack) == 0 {
		t.Fatalf("cause = %v, want *InternalError with a stack", re.Err)
	}

	// Skip policy: the panic is contained, counted, and the rest delivers.
	before := eng.Stats()
	opts = SelectOptions{SplitElement: "rec", OnError: Skip, Workers: 4}
	opts.inject = faultinject.NewEvalFaults().PanicOn(2)
	var got []int
	stats, err := eng.SelectStream(context.Background(), spec.Reader(), q, opts,
		func(m StreamMatch) error { got = append(got, m.Record); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 || stats.Skipped != 1 || stats.Recovered != 1 {
		t.Fatalf("delivered=%d skipped=%d recovered=%d, want 9/1/1", len(got), stats.Skipped, stats.Recovered)
	}
	if d := eng.Stats().Stream.PanicsRecovered - before.Stream.PanicsRecovered; d != 1 {
		t.Fatalf("engine panics_recovered delta = %d, want 1", d)
	}
}

func TestChaosFacadeTimeout(t *testing.T) {
	spec := faultinject.FeedSpec{Records: 6}
	eng, q := faultEngine(t)
	var fails []*RecordError
	opts := SelectOptions{
		SplitElement:  "rec",
		RecordTimeout: 10 * time.Millisecond,
		OnError:       func(e *RecordError) error { fails = append(fails, e); return nil },
	}
	opts.inject = faultinject.NewEvalFaults().StallOn(60*time.Millisecond, 1)
	stats, err := eng.SelectStream(context.Background(), spec.Reader(), q, opts,
		func(StreamMatch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 1 || stats.Skipped != 1 {
		t.Fatalf("fails=%d skipped=%d, want 1/1", len(fails), stats.Skipped)
	}
	var le *LimitError
	if !errors.As(fails[0].Err, &le) || le.Kind != "time" || le.Limit != 10 || le.Record != 1 {
		t.Fatalf("cause = %v, want time *LimitError{Limit: 10, Record: 1}", fails[0].Err)
	}
}

func TestChaosFacadeAbortSurfaces(t *testing.T) {
	spec := faultinject.FeedSpec{Records: 10, Malformed: map[int]bool{4: true}}
	eng, q := faultEngine(t)

	// Nil policy keeps the historical surface: the raw typed cause, no
	// *RecordError wrapper.
	_, err := eng.SelectStream(context.Background(), spec.Reader(), q,
		SelectOptions{SplitElement: "rec"}, func(StreamMatch) error { return nil })
	var re *RecordError
	if errors.As(err, &re) {
		t.Fatalf("nil policy: err = %T, want the unwrapped cause", err)
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("nil policy: err = %v, want *ParseError", err)
	}

	// The explicit Abort policy returns the *RecordError itself, unwrapped
	// by the facade (policy-originated errors pass through).
	_, err = eng.SelectStream(context.Background(), spec.Reader(), q,
		SelectOptions{SplitElement: "rec", OnError: Abort}, func(StreamMatch) error { return nil })
	if !errors.As(err, &re) || re.Record != 4 {
		t.Fatalf("Abort: err = %v, want *RecordError for record 4", err)
	}
	if !errors.As(err, &pe) {
		t.Fatalf("Abort: cause chain %v should reach *ParseError", err)
	}
}

func TestChaosFacadeErrStopWrapped(t *testing.T) {
	// Regression: yield errors wrapping ErrStop end the stream cleanly even
	// when not identical to the sentinel.
	eng, q := faultEngine(t)
	spec := faultinject.FeedSpec{Records: 30}
	for _, workers := range []int{1, 4} {
		seen := 0
		stats, err := eng.SelectStream(context.Background(), spec.Reader(), q,
			SelectOptions{Workers: workers, SplitElement: "rec"},
			func(StreamMatch) error {
				if seen++; seen == 3 {
					return fmt.Errorf("enough: %w", ErrStop)
				}
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: err = %v, want nil for wrapped ErrStop", workers, err)
		}
		if stats.Records != 3 {
			t.Fatalf("workers=%d: records = %d, want 3", workers, stats.Records)
		}
	}
}

// waitNoLeak polls until the goroutine count returns to the baseline,
// dumping all stacks on timeout.
func waitNoLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLeakStreamSeqBreak(t *testing.T) {
	// Breaking out of the pull iterator mid-stream must wind down the whole
	// worker pool: producer, workers, collector.
	eng, q := faultEngine(t)
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		spec := faultinject.FeedSpec{Records: 10000}
		n := 0
		seq, _ := eng.SelectStreamSeq(context.Background(), spec.Reader(), q,
			SelectOptions{Workers: 8, SplitElement: "rec"})
		for _, err := range seq {
			if err != nil {
				t.Fatal(err)
			}
			if n++; n == 2 {
				break
			}
		}
	}
	waitNoLeak(t, base)
}

func TestLeakStreamCancel(t *testing.T) {
	// Cancelling mid-stream must wind down the pool even with the producer
	// blocked on a full channel and workers mid-record.
	eng, q := faultEngine(t)
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		spec := faultinject.FeedSpec{Records: 10000}
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		_, err := eng.SelectStream(ctx, spec.Reader(), q,
			SelectOptions{Workers: 8, SplitElement: "rec"},
			func(StreamMatch) error {
				if n++; n == 3 {
					cancel()
				}
				return nil
			})
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want context.Canceled or nil", i, err)
		}
		waitNoLeak(t, base)
	}
}

func TestClipMultibyte(t *testing.T) {
	s := strings.Repeat("é", 30) // 60 bytes of 2-byte runes
	got := clip(s, 15)           // 15 lands mid-rune
	if !utf8.ValidString(got) {
		t.Fatalf("clip produced invalid UTF-8: %q", got)
	}
	if want := strings.Repeat("é", 7) + "…"; got != want {
		t.Fatalf("clip = %q, want %q", got, want)
	}
	if got := clip("ascii", 40); got != "ascii" {
		t.Fatalf("clip short = %q", got)
	}
	// A 4-byte rune straddling the cut backs all the way up.
	if got := clip("ab\U0001F600cd", 4); got != "ab…" {
		t.Fatalf("clip emoji = %q, want \"ab…\"", got)
	}
}

func TestExcerptAtMultibyte(t *testing.T) {
	src := strings.Repeat("汉", 20) // 60 bytes of 3-byte runes
	for _, offset := range []int{30, 31, 32} {
		got := excerptAt(src, offset)
		if !utf8.ValidString(got) {
			t.Fatalf("excerptAt(%d) produced invalid UTF-8: %q", offset, got)
		}
		if !strings.HasPrefix(got, "…") || !strings.HasSuffix(got, "…") {
			t.Fatalf("excerptAt(%d) = %q, want ellipses both sides", offset, got)
		}
	}
	// Near the edges no ellipsis is added and the window stays valid.
	if got := excerptAt(src, 0); !utf8.ValidString(got) || strings.HasPrefix(got, "…") {
		t.Fatalf("excerptAt(0) = %q", got)
	}
	if got := excerptAt("short", 2); got != "short" {
		t.Fatalf("excerptAt(short, 2) = %q", got)
	}
}

// multiFaultQueries compiles a >1 query set over the faultinject feed so
// the shared pass runs the multi-query collector (hint gating, per-query
// verdict fan-out) — the machinery the single-query leak tests above
// never touch.
func multiFaultQueries(t *testing.T, eng *Engine) []*Query {
	t.Helper()
	var qs []*Query
	for _, src := range []string{"[* ; a ; b .] rec", "a rec*", "id rec*"} {
		q, err := eng.CompileQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		qs = append(qs, q)
	}
	return qs
}

func TestLeakStreamMultiBreak(t *testing.T) {
	// A consumer breaking out of a shared-pass run (ErrStop from the
	// callback) must wind down the whole pool: producer, workers,
	// collector — exactly like the single-query break tests.
	eng, _ := faultEngine(t)
	qs := multiFaultQueries(t, eng)
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		spec := faultinject.FeedSpec{Records: 10000}
		n := 0
		_, err := eng.SelectStreamMulti(context.Background(), spec.Reader(), qs,
			SelectOptions{Workers: 8, SplitElement: "rec"},
			func(MultiStreamMatch) error {
				if n++; n == 2 {
					return ErrStop
				}
				return nil
			})
		if err != nil {
			t.Fatalf("iteration %d: err = %v, want nil after ErrStop", i, err)
		}
		waitNoLeak(t, base)
	}
	// Arena recycling survives the breaks: a clean full run over the same
	// engine still delivers every record's matches from the pooled arenas.
	spec := faultinject.FeedSpec{Records: 200}
	perQuery := make([]int, len(qs))
	stats, err := eng.SelectStreamMulti(context.Background(), spec.Reader(), qs,
		SelectOptions{Workers: 4, SplitElement: "rec"},
		func(m MultiStreamMatch) error { perQuery[m.Query]++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records+stats.Prefiltered != 200 {
		t.Fatalf("post-break run: records+prefiltered = %d, want 200", stats.Records+stats.Prefiltered)
	}
	for qi, n := range perQuery {
		if n != 200 {
			t.Fatalf("post-break run: query %d delivered %d matches, want 200", qi, n)
		}
	}
}

func TestLeakStreamMultiCancel(t *testing.T) {
	// Cancelling a shared-pass run mid-stream must wind down the pool even
	// with the producer blocked and workers mid-record.
	eng, _ := faultEngine(t)
	qs := multiFaultQueries(t, eng)
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		spec := faultinject.FeedSpec{Records: 10000}
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		_, err := eng.SelectStreamMulti(ctx, spec.Reader(), qs,
			SelectOptions{Workers: 8, SplitElement: "rec"},
			func(MultiStreamMatch) error {
				if n++; n == 3 {
					cancel()
				}
				return nil
			})
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want context.Canceled or nil", i, err)
		}
		waitNoLeak(t, base)
	}
}
