package xpe

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// WithLazyTransitionBudget semantics, pinned: 0 means unlimited (the
// package-wide "zero disables the bound" convention), positive caps the
// cache, negative is a typed construction error surfaced at compile time.

func TestLazyBudgetZeroMeansUnlimited(t *testing.T) {
	corpus := diffCorpus(t, 4)
	run := func(eng *Engine) StreamStats {
		t.Helper()
		if _, err := eng.ParseXMLString(corpus); err != nil {
			t.Fatal(err)
		}
		q, err := eng.CompileQuery("[* ; figure ; table .] (section|doc)*")
		if err != nil {
			t.Fatal(err)
		}
		_, stats := streamAll(t, eng, q, corpus, SelectOptions{Workers: 1, Prefilter: PrefilterOff})
		return stats
	}

	unlimited := run(NewEngine(WithLazyTransitionBudget(0)))
	if unlimited.LazyStates == 0 {
		t.Fatal("budget 0 built no lazy states; the lazy path did not engage")
	}
	if unlimited.LazyEvictions != 0 {
		t.Errorf("budget 0 evicted %d transitions; 0 must mean unlimited, not \"cache nothing\"",
			unlimited.LazyEvictions)
	}

	// The same workload under a one-transition budget must evict — proving
	// the zero-budget run above had something to evict.
	tight := run(NewEngine(WithLazyTransitionBudget(1)))
	if tight.LazyEvictions == 0 {
		t.Error("budget 1 evicted nothing; the workload cannot distinguish the budgets")
	}
}

func TestLazyBudgetNegativeIsTypedError(t *testing.T) {
	eng := NewEngine(WithLazyTransitionBudget(-1))
	for name, compile := range map[string]func(string) (*Query, error){
		"CompileQuery": eng.CompileQuery,
		"CompileXPath": eng.CompileXPath,
	} {
		_, err := compile("doc*")
		if err == nil {
			t.Fatalf("%s: negative budget compiled successfully", name)
		}
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Fatalf("%s: error %v (%T) is not an *OptionError", name, err, err)
		}
		if oe.Option != "WithLazyTransitionBudget" {
			t.Errorf("%s: OptionError names %q", name, oe.Option)
		}
	}
	// The error is sticky: a later, valid-looking compile still reports it.
	if _, err := eng.CompileQuery("section doc*"); err == nil {
		t.Error("second compile on a misconfigured engine succeeded")
	}
}

// A misconfigured engine still answers the streaming entry point with the
// typed error (via the compile that SelectStream's Query requires), and a
// valid engine built with budget 0 streams normally — the two ends of the
// construction surface.
func TestLazyBudgetStreamingSurface(t *testing.T) {
	good := NewEngine(WithLazyTransitionBudget(0))
	if _, err := good.ParseXMLString("<d><a/></d>"); err != nil {
		t.Fatal(err)
	}
	q, err := good.CompileQuery("a d*")
	if err != nil {
		t.Fatal(err)
	}
	var n int
	if _, err := good.SelectStream(context.Background(), strings.NewReader("<d><a/></d>"), q,
		SelectOptions{Workers: 1}, func(StreamMatch) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("got %d matches, want 1", n)
	}
}
