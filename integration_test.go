package xpe

import (
	"math/rand"
	"strings"
	"testing"

	"xpe/internal/gen"
	"xpe/internal/ha"
	"xpe/internal/hedge"
)

// TestIntegrationPipeline runs the whole library surface end-to-end: parse
// XML, validate against a schema, query with sibling conditions, extract
// bindings, delete, rename, and check every artifact against transformed
// schemas.
func TestIntegrationPipeline(t *testing.T) {
	eng := NewEngine()
	sch, err := eng.ParseSchema(gen.DocGrammar)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := eng.ParseXMLString(`
<doc>
  <section>
    <figure/><table/>
    <section><figure/><para>deep</para></section>
  </section>
  <section><para>flat</para></section>
</doc>`)
	if err != nil {
		t.Fatal(err)
	}
	if !sch.Validate(doc) {
		t.Fatal("document must conform to the generator grammar")
	}

	// Sibling-aware selection.
	q, err := eng.CompileQuery("[* ; figure ; table .] (section|doc)*")
	if err != nil {
		t.Fatal(err)
	}
	ms := q.Select(doc)
	if len(ms) != 1 || ms[0].Path != "1.1.1" {
		t.Fatalf("matches = %v", ms)
	}

	// XPath agreement on the same query.
	xq, err := eng.CompileXPath("//figure[following-sibling::*[1][self::table]]")
	if err != nil {
		t.Fatal(err)
	}
	xms := xq.Select(doc)
	if len(xms) != 1 || xms[0].Path != ms[0].Path {
		t.Fatalf("xpath matches = %v", xms)
	}

	// Bindings.
	qb, err := eng.CompileQuery("figure section@s* [* ; doc ; *]@d")
	if err != nil {
		t.Fatal(err)
	}
	if !qb.UniqueBindings() {
		t.Fatal("bindings should be unique")
	}
	bms := qb.SelectBindings(doc)
	if len(bms) != 2 {
		t.Fatalf("bound matches = %v", bms)
	}

	// Delete all figures; the result must conform to the delete-transformed
	// schema and contain no figures.
	qAllFigs, err := eng.CompileQuery("figure section* [* ; doc ; *]")
	if err != nil {
		t.Fatal(err)
	}
	delSchema, err := sch.TransformDelete(qAllFigs)
	if err != nil {
		t.Fatal(err)
	}
	deleted := qAllFigs.Delete(doc)
	if strings.Contains(deleted.Term(), "figure") {
		t.Fatalf("figures survived deletion: %s", deleted.Term())
	}
	if !delSchema.Validate(deleted) {
		t.Fatal("deleted document must conform to the delete output schema")
	}

	// Rename tables; validate against the rename-transformed schema.
	qTables, err := eng.CompileQuery("table (section|doc)*")
	if err != nil {
		t.Fatal(err)
	}
	renSchema, err := sch.TransformRename(qTables, "grid")
	if err != nil {
		t.Fatal(err)
	}
	renamed := qTables.Rename(doc, "grid")
	if !strings.Contains(renamed.Term(), "grid") {
		t.Fatalf("rename did not apply: %s", renamed.Term())
	}
	if !renSchema.Validate(renamed) {
		t.Fatal("renamed document must conform to the rename output schema")
	}

	// Select output schema contains every selected subtree, across sampled
	// documents from the schema.
	selSchema, err := sch.TransformSelect(qAllFigs, Subtrees)
	if err != nil {
		t.Fatal(err)
	}
	sampler, ok := ha.NewSampler(sch.Underlying().DHA, rand.New(rand.NewSource(5)))
	if !ok {
		t.Fatal("schema empty")
	}
	for i := 0; i < 20; i++ {
		h, ok := sampler.Sample(4)
		if !ok {
			t.Fatal("sample failed")
		}
		d := eng.FromHedge(h)
		for _, m := range qAllFigs.Select(d) {
			if !selSchema.ValidateHedge(hedge.Hedge{m.Node}) {
				t.Fatal("selected subtree outside output schema")
			}
		}
	}

	// Round trip back to XML.
	out, err := deleted.XML()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "figure") {
		t.Fatalf("xml still mentions figures: %s", out)
	}
}
