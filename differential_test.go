package xpe

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"xpe/internal/gen"
	"xpe/internal/xmlhedge"
)

// The three-way differential harness: every (query, document) pair runs
// through the eager-determinized, lazy-determinized, and prefiltered
// evaluation paths, and the match sets (record index, record path, Dewey
// path, term) must be identical, with stats agreeing modulo prefilter
// skips. This is the executable form of the PR's correctness argument —
// the prefilter may only skip records that cannot match, and the lazy DHA
// must answer exactly like the Theorem 1 eager subset construction.

// diffVariant is one compilation/evaluation configuration under test.
type diffVariant struct {
	name string
	eng  *Engine
	mode PrefilterMode
}

// diffCorpus builds a mixed-selectivity corpus: generated docbook-like
// documents (which contain figures and tables) interleaved with sparse
// hand-written records that lack them, so the prefilter has something real
// to skip while the generated records exercise the full evaluator.
func diffCorpus(t testing.TB, nDocs int) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("<corpus>")
	for i := 0; i < nDocs; i++ {
		cfg := gen.DefaultDocConfig()
		cfg.Seed = int64(i + 1)
		s, err := xmlhedge.ToString(gen.Document(cfg, 120+60*i))
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(s)
		// Sparse records: no figure/table, with decoys (comments, CDATA,
		// attributes, entities) that mention the labels without containing
		// the elements.
		fmt.Fprintf(&b, `<doc><!-- figure? no --><para note="figure">item %d &amp; co</para></doc>`, i)
		fmt.Fprintf(&b, `<doc><section><para><![CDATA[<figure/>]]></para></section></doc>`)
	}
	b.WriteString("</corpus>")
	return b.String()
}

// diffQueries spans the query families: pure path expressions, sibling
// conditions (real side automata for the lazy DHA), subhedge conditions,
// and a query with an empty requirement set (prefilter disengaged).
var diffQueries = []string{
	"figure section* [* ; doc ; *]",
	"[* ; figure ; table .] (section|doc)*",
	"[. ; figure ; .] (section|doc)*",
	"select(figure*; [* ; section ; *] (section|doc)*)",
	"select(.; [* ; table ; . figure .] (section|doc)*)",
	"para (section|doc)*",
	"[* ; figure ; *] | [* ; para ; *]", // alternation intersects to ∅: no prefilter
}

// streamAll runs one streaming evaluation and renders every match.
func streamAll(t *testing.T, eng *Engine, q *Query, corpus string, opts SelectOptions) (string, StreamStats) {
	t.Helper()
	var got strings.Builder
	stats, err := eng.SelectStream(context.Background(), strings.NewReader(corpus), q, opts,
		func(m StreamMatch) error {
			fmt.Fprintf(&got, "%d|%s|%s|%s\n", m.Record, m.RecordPath, m.Path, m.Term)
			return nil
		})
	if err != nil {
		t.Fatalf("SelectStream: %v", err)
	}
	return got.String(), stats
}

func TestDifferentialEagerLazyPrefilter(t *testing.T) {
	corpus := diffCorpus(t, 5)

	variants := []diffVariant{
		{name: "eager", eng: NewEngine(), mode: PrefilterOff},
		{name: "eager+prefilter", eng: NewEngine(), mode: PrefilterAuto},
		{name: "lazy", eng: NewEngine(WithLazyDeterminization()), mode: PrefilterOff},
		{name: "lazy+prefilter", eng: NewEngine(WithLazyDeterminization()), mode: PrefilterAuto},
		// A one-transition budget forces constant evictions: correctness
		// must not depend on the cache retaining anything.
		{name: "lazy-tight+prefilter", eng: NewEngine(WithLazyTransitionBudget(1)), mode: PrefilterAuto},
	}
	// Every engine interns the corpus alphabet before compiling, the same
	// closed-world discipline single-engine callers follow.
	for _, v := range variants {
		if _, err := v.eng.ParseXMLString(corpus); err != nil {
			t.Fatal(err)
		}
	}

	for _, src := range diffQueries {
		t.Run(src, func(t *testing.T) {
			// Reference: eager compilation, no prefilter, sequential.
			refQ, err := variants[0].eng.CompileQuery(src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			want, refStats := streamAll(t, variants[0].eng, refQ, corpus,
				SelectOptions{Workers: 1, Prefilter: PrefilterOff})

			for _, v := range variants {
				q, err := v.eng.CompileQuery(src)
				if err != nil {
					t.Fatalf("%s: compile: %v", v.name, err)
				}
				for _, workers := range []int{1, 4} {
					got, stats := streamAll(t, v.eng, q, corpus,
						SelectOptions{Workers: workers, Prefilter: v.mode})
					name := fmt.Sprintf("%s/workers=%d", v.name, workers)
					if got != want {
						t.Errorf("%s: match sets differ\ngot:\n%s\nwant:\n%s", name, got, want)
					}
					if stats.Matches != refStats.Matches {
						t.Errorf("%s: Matches = %d, want %d", name, stats.Matches, refStats.Matches)
					}
					// Stats modulo skips: prefiltered records move from
					// Records to Prefiltered, nothing else changes.
					if got := stats.Records + stats.Prefiltered; got != refStats.Records {
						t.Errorf("%s: Records+Prefiltered = %d, want %d", name, got, refStats.Records)
					}
					if v.mode == PrefilterOff && stats.Prefiltered != 0 {
						t.Errorf("%s: Prefiltered = %d with the prefilter off", name, stats.Prefiltered)
					}
					if stats.Bytes != refStats.Bytes {
						t.Errorf("%s: Bytes = %d, want %d", name, stats.Bytes, refStats.Bytes)
					}
					if v.eng == variants[0].eng || v.eng == variants[1].eng {
						if stats.LazyStates != 0 || stats.LazyHits != 0 {
							t.Errorf("%s: eager run reported lazy stats: %+v", name, stats)
						}
					}
				}
			}
		})
	}
}

// TestDifferentialPrefilterNamespacePrefixes pins the prefilter's
// required-label matching against namespace-prefixed and mixed-case tags.
// The tokenizer strips prefixes at the first colon, so an element that
// evaluates as "price" appears in raw bytes as `<ns:price` — the skim must
// credit the label through the ':' predecessor, and must stay byte-exact
// on case (the evaluator is case-sensitive, so `<Price>` neither satisfies
// nor is satisfied by required label "price"). A skim that skipped a
// record the evaluator would match is a correctness bug; every fixture
// here is a record that MUST survive the skim for some query, surrounded
// by decoys (attributes, comments, CDATA) that must not count as
// presence.
func TestDifferentialPrefilterNamespacePrefixes(t *testing.T) {
	corpus := `<corpus>` +
		`<doc><ns:price>10</ns:price></doc>` + // prefixed child: label after ':'
		`<ns:doc><price>11</price></ns:doc>` + // prefixed record root
		`<doc><Price>20</Price></doc>` + // mixed case: a different label
		`<doc><PRICE>21</PRICE></doc>` +
		`<doc><price currency="EUR">30</price></doc>` +
		`<doc><a:b:price>40</a:b:price></doc>` + // multi-colon prefix (streaming tokenizer accepts)
		`<doc><priceless>0</priceless><quote price="yes"><!-- price --></quote></doc>` + // decoys only
		`<doc><section><![CDATA[<price/>]]></section></doc>` +
		`<doc><ns:pricey/></doc>` +
		`</corpus>`
	eng := NewEngine()
	for _, l := range []string{"doc", "price", "Price", "PRICE", "priceless",
		"quote", "section", "pricey"} {
		eng.names.Syms.Intern(l)
	}
	for _, src := range []string{
		"price doc* *",
		"Price doc* *",
		"PRICE doc* *",
		"[* ; price ; *] doc*",
	} {
		q, err := eng.CompileQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for _, workers := range []int{1, 4} {
			want, wantStats := streamAll(t, eng, q, corpus,
				SelectOptions{Workers: workers, Prefilter: PrefilterOff})
			if want == "" {
				t.Fatalf("%s: matched nothing unfiltered; fixture lost its point", src)
			}
			got, stats := streamAll(t, eng, q, corpus,
				SelectOptions{Workers: workers, Prefilter: PrefilterAuto})
			if got != want {
				t.Errorf("%s workers=%d: prefiltered match set differs\ngot:\n%swant:\n%s",
					src, workers, got, want)
			}
			if got := stats.Records + stats.Prefiltered; got != wantStats.Records {
				t.Errorf("%s workers=%d: Records+Prefiltered = %d, want %d",
					src, workers, got, wantStats.Records)
			}
			if stats.Prefiltered == 0 {
				t.Errorf("%s workers=%d: decoy records were not skipped", src, workers)
			}
		}
	}
}

// TestDifferentialInMemory pins the lazy DHA against eager determinization
// on the in-memory path too: Query.Select answers identically whichever
// way the engine compiles.
func TestDifferentialInMemory(t *testing.T) {
	eager := NewEngine()
	lazy := NewEngine(WithLazyDeterminization())

	for i := 0; i < 6; i++ {
		cfg := gen.DefaultDocConfig()
		cfg.Seed = int64(100 + i)
		h := gen.Document(cfg, 200)
		s, err := xmlhedge.ToString(h)
		if err != nil {
			t.Fatal(err)
		}
		de, err := eager.ParseXMLString(s)
		if err != nil {
			t.Fatal(err)
		}
		dl, err := lazy.ParseXMLString(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range diffQueries {
			qe, err := eager.CompileQuery(src)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			ql, err := lazy.CompileQuery(src)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			me, ml := qe.Select(de), ql.Select(dl)
			if len(me) != len(ml) {
				t.Fatalf("doc %d %s: eager %d matches, lazy %d", i, src, len(me), len(ml))
			}
			for j := range me {
				if me[j].Path != ml[j].Path || me[j].Term != ml[j].Term {
					t.Fatalf("doc %d %s match %d: eager %s|%s, lazy %s|%s",
						i, src, j, me[j].Path, me[j].Term, ml[j].Path, ml[j].Term)
				}
			}
		}
	}
	// The lazy engine must actually have exercised the lazy path.
	if st := lazy.Stats(); st.Eval.LazyStates == 0 {
		t.Errorf("lazy engine built no lazy states: %+v", st.Eval)
	}
	if st := eager.Stats(); st.Eval.LazyStates != 0 {
		t.Errorf("eager engine reported lazy states: %+v", st.Eval)
	}
}

// TestDifferentialPrefilterMetrics: the engine-wide registry counts
// prefiltered records, and an explicitly attached per-run sink sees the
// run's own skips.
func TestDifferentialPrefilterMetrics(t *testing.T) {
	corpus := diffCorpus(t, 3)
	eng := NewEngine()
	if _, err := eng.ParseXMLString(corpus); err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("[. ; figure ; .] (section|doc)*")
	if err != nil {
		t.Fatal(err)
	}
	sink := NewMetricsSink()
	_, stats := streamAll(t, eng, q, corpus, SelectOptions{Workers: 1, Metrics: sink})
	if stats.Prefiltered == 0 {
		t.Fatal("no records prefiltered; corpus or query lost its selectivity")
	}
	if got := sink.Stats().Split.RecordsPrefiltered; got != stats.Prefiltered {
		t.Errorf("sink RecordsPrefiltered = %d, want %d", got, stats.Prefiltered)
	}
	if got := eng.Stats().Split.RecordsPrefiltered; got < stats.Prefiltered {
		t.Errorf("engine RecordsPrefiltered = %d, want >= %d", got, stats.Prefiltered)
	}
}
