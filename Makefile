GO ?= go

.PHONY: all build test race vet fmt check chaos diff-test serve-test serve-chaos soak bench bench-json trace-overhead telemetry-overhead bench-gate bench-history

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the detector over the packages that share Engines across
# goroutines: the interner/generation/cache synchronization lives in
# internal/core, internal/alphabet (via internal/ha), internal/stream,
# and the facade (the shared-Engine hammer in generation_test.go).
race:
	$(GO) test -race ./internal/core/... ./internal/stream/... ./internal/alphabet/... .

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

# chaos runs the fault-containment suite under the race detector: the
# fault-injection chaos tests (poisoned feeds, forced panics, budgets,
# timeouts), the goroutine-leak checks, and the faultinject harness's own
# tests, across the splitter, the stream pipeline, and the facade.
chaos:
	$(GO) test -race -run 'Chaos|Leak|FaultInject' ./internal/stream/... ./internal/faultinject/... ./internal/xmlhedge/... ./debug/... .

# diff-test runs the differential correctness harness under the race
# detector: every (query, document) pair through the eager-determinized,
# lazy-determinized, and prefiltered evaluation paths with identical
# match sets and stats modulo prefilter skips, plus the lazy-vs-eager
# fuzz seeds and the prefilter equivalence/property suites.
diff-test:
	$(GO) test -race -run 'Differential|Prefilter|Lazy|Skim' -count=1 . ./internal/stream/... ./internal/xmlhedge/... ./internal/core/... ./internal/ha/...

# serve-test runs the query-serving daemon's suite under the race
# detector: the httptest end-to-end differential (served matches ==
# library matches per query), registration validation, per-tenant
# budgets, admission control (429 under load), graceful drain, and the
# goroutine-leak check.
serve-test:
	$(GO) test -race -count=1 ./internal/serve/...

# serve-chaos runs the serving-layer resilience suite under the race
# detector: slow-loris bodies and mid-feed disconnects (HTTP-layer fault
# injection), kill-and-restart journal recovery (exact registration set,
# quarantine, torn tails, compaction), per-feed circuit breakers
# (trip/half-open/backoff at both the unit and HTTP level), and the
# weighted-fair admitter (interleave, weights, per-tenant bounds, shed
# order, drain-rate retry hints) — including the fairness-under-flood
# pin with its goroutine-leak checks.
serve-chaos:
	$(GO) test -race -count=1 -run 'Chaos|Journal|Breaker|Admitter|Admission|Leak' ./internal/serve/... ./internal/faultinject/...

# soak is the opt-in endurance run, deliberately excluded from check:
# 30 seconds of mixed-tenant traffic — steady posters, slow-loris drips,
# mid-body hangups, and a poisoned feed cycling its breaker — against one
# persistent server under the race detector, failing on any undocumented
# status, deadlock, or leaked goroutine.
soak:
	$(GO) test -race -count=1 -run TestSoak ./internal/serve/ -soak 30s -v

# check is the CI gate: formatting, static analysis (go vet ./...), the
# full test suite, the race detector over the concurrency-bearing
# packages, the fault-containment chaos suite, the three-way
# differential harness, the serving-layer suite, a quick perf-regression
# run with the disabled-tracing budget enforced, the serving-telemetry
# budget, and the streaming throughput gates against the committed
# baseline and the multi-seed trajectory (the recorded baseline in
# BENCH_core.json and the BENCH_history.ndjson entries come from the
# non-quick runs).
check: fmt vet build test race chaos diff-test serve-test serve-chaos trace-overhead telemetry-overhead bench-gate

bench:
	$(GO) test -bench . -benchmem -run NONE ./...

# bench-json regenerates the perf-regression report. Quick mode (default
# here) keeps CI fast; run `go run ./cmd/xpebench -bench-json -out
# BENCH_core.json` for the recorded baseline.
bench-json:
	$(GO) run ./cmd/xpebench -bench-json -quick -out BENCH_core.json

# trace-overhead is bench-json plus the tracing budget: the per-record
# tracing hooks must cost at most 1% while disabled (no flight recorder,
# no slow-record callback attached). It measures only — the committed
# BENCH_core.json baseline is left alone so bench-gate compares against
# the recorded numbers, not this run's.
trace-overhead:
	$(GO) run ./cmd/xpebench -bench-json -quick -assert-trace-overhead 1 -out /dev/null

# telemetry-overhead enforces the serving-telemetry budget: identical
# feed posts through two serve.Servers (default telemetry vs
# DisableTelemetry) in interleaved pairs must show at most 1% median
# overhead — and the failure must be distributionally consistent (the
# 25th-percentile pair also slower), so scheduler noise cannot flap the
# gate.
telemetry-overhead:
	$(GO) run ./cmd/xpebench -assert-telemetry-overhead 1 -quick

# bench-gate is the streaming perf-regression gate, two judgements in
# one run set: every stream-* workload recorded in BENCH_core.json is
# re-measured (best of five fresh runs each, same sizes and worker
# counts) and fails when any drops more than 10% nodes/sec below the
# recorded baseline; then the trajectory workloads are re-measured at
# every recorded seed and judged against the pooled BENCH_history.ndjson
# entries under the effect-size rule (mean drop past 10%, below every
# recorded run, all seeds agreeing).
bench-gate:
	$(GO) run ./cmd/xpebench -assert-baseline BENCH_core.json
	$(GO) run ./cmd/xpebench -assert-history BENCH_history.ndjson

# bench-history appends a dated multi-seed trajectory entry to
# BENCH_history.ndjson (run after a deliberate perf change, then commit
# the file alongside the change).
bench-history:
	$(GO) run ./cmd/xpebench -record-history BENCH_history.ndjson
