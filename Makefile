GO ?= go

.PHONY: all build test race vet fmt check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

# check is the CI gate: formatting, static analysis, and the full test
# suite under the race detector.
check: fmt vet build race

bench:
	$(GO) test -bench . -benchmem -run NONE ./...
