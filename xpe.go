// Package xpe — extended path expressions for XML — is a from-scratch
// implementation of Murata's PODS 2001 paper: hedge regular expressions,
// pointed hedge representations, linear-time selection-query evaluation by
// two depth-first traversals, and schema transformation via
// match-identifying hedge automata.
//
// The package is a facade over the full machinery in internal/: an Engine
// holds the shared alphabet; documents are parsed from XML or from the
// paper's term syntax; queries are selection queries select(e₁, e₂)
// combining a hedge regular expression (condition on a node's subhedge)
// with a pointed hedge representation (condition on its envelope:
// ancestors, siblings, siblings of ancestors, and their descendants).
//
// Quickstart:
//
//	eng := xpe.NewEngine()
//	doc, _ := eng.ParseXMLString("<doc><sec><fig/><tab/></sec></doc>")
//	q, _ := eng.CompileQuery("[* ; fig ; tab .] (sec|doc)*")
//	for m := range q.Matches(doc) {
//		fmt.Println(m.Path, m.Term)
//	}
//
// Matches is a range-over-func iterator (stop early by breaking); Select
// materializes the slice. Context-accepting variants (SelectCtx) and the
// streaming entry point SelectStream — which evaluates a query over an XML
// stream record by record in bounded memory, with worker-pool fan-out and
// in-order delivery — accept a SelectOptions. Errors crossing the facade
// are typed: *ParseError (malformed documents), *CompileError (bad queries
// or grammars, with offset and excerpt), and *LimitError (streamed record
// over a configured bound), all recoverable with errors.As.
//
// Query syntax is documented on CompileQuery; schema grammars on
// ParseSchema; streaming on SelectStream.
package xpe

import (
	"context"
	"fmt"
	"io"
	"iter"
	"sync"
	"sync/atomic"
	"time"

	"xpe/internal/core"
	"xpe/internal/ha"
	"xpe/internal/hedge"
	"xpe/internal/metrics"
	"xpe/internal/schema"
	"xpe/internal/xmlhedge"
	"xpe/internal/xpath"
)

// Engine holds the shared symbol/variable alphabet. Every document, query,
// and schema compiled through the same Engine agrees on the alphabet,
// which is what the paper's closed-world side conditions (and the product
// constructions of Section 8) require.
//
// The alphabet is versioned: interning a fresh label (parsing a document
// with new element names, Rename with a new target) advances a generation
// counter, and every compiled query and schema is stamped with the
// generation it was compiled against. Evaluation entry points (Select*,
// Matches, SelectStream, Validate, Transform*) compare stamps against the
// current generation and transparently recompile through a bounded
// engine-level LRU cache on mismatch — so compile order is not semantics:
// a query compiled before its documents behaves exactly like one compiled
// after them. Cache traffic is visible in Stats().Cache.
//
// An Engine is safe for concurrent use: documents may be parsed and
// queries evaluated from any number of goroutines sharing one Engine.
type Engine struct {
	names *ha.Names
	// metrics is the engine-wide instrumentation registry; queries compiled
	// through this engine flush evaluation counters into it (see Stats).
	metrics *metrics.Metrics
	// cache holds compiled queries keyed by source × kind × alphabet
	// generation; generation-mismatch recompiles go through it.
	cache *compiledCache
	// recorder is the engine-wide flight recorder, nil when detached
	// (the common case: evaluation pays one atomic load per call). See
	// SetFlightRecorder.
	recorder atomic.Pointer[FlightRecorder]

	// snapMu guards the cached alphabet snapshot below. Compilations build
	// automata against an immutable clone of the live alphabet (a concurrent
	// Intern cannot resize it mid-construction), and every compilation at
	// one generation shares the same clone — the pointer identity the
	// product constructions of Section 8 require across schema and query.
	snapMu  sync.Mutex
	snap    *ha.Names
	snapGen uint64

	// copts carries engine-wide query-compilation options (lazy
	// determinization and its budget); fixed at construction.
	copts core.Options
	// optErr records an invalid construction option (*OptionError); fixed
	// at construction and returned by every compile entry point.
	optErr error
}

// EngineOption configures a new Engine (see NewEngine).
type EngineOption func(*Engine)

// WithLazyDeterminization makes the engine compile queries with on-demand
// subset construction: the Theorem 1 determinization of each side automaton
// is deferred, and deterministic states are materialized one transition at a
// time as evaluation first needs them, behind a bounded cache. Queries whose
// eager determinization would blow up exponentially compile in time
// proportional to the states actually reached. Match sets are identical to
// eager compilation; Stats().Eval reports lazy_states_built,
// lazy_cache_hits, and lazy_evictions, and each streaming run's share
// appears in StreamStats.
func WithLazyDeterminization() EngineOption {
	return func(e *Engine) { e.copts.LazyDeterminize = true }
}

// WithLazyTransitionBudget enables lazy determinization with an explicit
// per-automaton cached-transition cap. n > 0 caps the cache at n
// transitions, evicting (and later re-deriving) beyond it — smaller
// budgets bound memory on adversarial inputs at the cost of re-derivation.
// n == 0 means unlimited: nothing is ever evicted, following the
// package-wide "zero disables the bound" convention (MaxRecordBytes,
// RecordTimeout). For the default bound without naming a number, use
// WithLazyDeterminization alone.
//
// A negative budget is invalid: the engine records a typed *OptionError
// that every subsequent CompileQuery/CompileXPath call returns, instead of
// compiling under silently reinterpreted semantics.
func WithLazyTransitionBudget(n int) EngineOption {
	return func(e *Engine) {
		if n < 0 {
			e.optErr = &OptionError{Option: "WithLazyTransitionBudget",
				Reason: fmt.Sprintf("negative budget %d (0 means unlimited)", n)}
			return
		}
		e.copts.LazyDeterminize = true
		if n == 0 {
			// The internal representation of "no bound" (ha.LazyOptions
			// treats 0 as "pick the default").
			n = -1
		}
		e.copts.LazyTransitionBudget = n
	}
}

// snapshot returns the shared frozen alphabet clone for the current
// generation (cloning at most once per generation). Compilations only ever
// perform idempotent interns against it — every fresh name is published to
// the live alphabet before the snapshot is taken — so the clone is
// effectively immutable and safe to share across concurrent compiles.
func (e *Engine) snapshot() (*ha.Names, uint64) {
	gen := e.names.Generation()
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	if e.snap == nil || e.snapGen != gen {
		e.snap = e.names.Clone()
		// A concurrent intern during Clone may have slipped extra names in;
		// the clone's own generation is exact for its contents.
		e.snapGen = e.snap.Generation()
	}
	return e.snap, e.snapGen
}

// NewEngine returns an empty engine. Options select engine-wide compilation
// behavior, e.g. NewEngine(xpe.WithLazyDeterminization()).
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{names: ha.NewNames(), metrics: &metrics.Metrics{}}
	e.cache = newCompiledCache(compiledCacheCap, &e.metrics.Cache)
	for _, o := range opts {
		o(e)
	}
	return e
}

// Document is a parsed XML document or hedge.
type Document struct {
	eng   *Engine
	hedge hedge.Hedge
}

// ParseXML reads an XML document. Failures are reported as *ParseError.
func (e *Engine) ParseXML(r io.Reader) (*Document, error) {
	h, err := xmlhedge.Parse(r, xmlhedge.Options{})
	if err != nil {
		return nil, wrapParseErr(err, "")
	}
	return e.adopt(h), nil
}

// ParseXMLString reads an XML document from a string. Failures are
// reported as *ParseError carrying the offending line.
func (e *Engine) ParseXMLString(s string) (*Document, error) {
	h, err := xmlhedge.ParseString(s, xmlhedge.Options{})
	if err != nil {
		return nil, wrapParseErr(err, s)
	}
	return e.adopt(h), nil
}

// ParseTerm reads a document in the paper's term syntax (see
// internal/hedge): "doc<sec<fig tab>>", with $x for variables. Failures
// are reported as *ParseError.
func (e *Engine) ParseTerm(s string) (*Document, error) {
	h, err := hedge.Parse(s)
	if err != nil {
		return nil, wrapParseErr(err, s)
	}
	return e.adopt(h), nil
}

// FromHedge adopts an already-built hedge as a document (the hedge is
// shared, not copied; callers must not mutate it afterwards).
func (e *Engine) FromHedge(h hedge.Hedge) *Document { return e.adopt(h) }

// adopt interns the document's alphabet and wraps it.
func (e *Engine) adopt(h hedge.Hedge) *Document {
	syms, vars, _ := h.Labels()
	for _, s := range syms {
		e.names.Syms.Intern(s)
	}
	for _, v := range vars {
		e.names.Vars.Intern(v)
	}
	return &Document{eng: e, hedge: h}
}

// Hedge exposes the underlying hedge (shared, do not mutate).
func (d *Document) Hedge() hedge.Hedge { return d.hedge }

// Size returns the node count.
func (d *Document) Size() int { return d.hedge.Size() }

// Term renders the document in term syntax.
func (d *Document) Term() string { return d.hedge.String() }

// XML serializes the document back to XML.
func (d *Document) XML() (string, error) { return xmlhedge.ToString(d.hedge) }

// Query is a compiled selection query. It may be shared across goroutines:
// the underlying compiled automata are replaced atomically when the
// engine's alphabet outgrows them (see Engine and CompileQuery on
// generation tracking).
type Query struct {
	eng  *Engine
	src  string
	kind byte // kindQuery or kindXPath: which pipeline recompiles src
	cq   atomic.Pointer[core.CompiledQuery]
}

// compiled returns the query's automata, revalidated against the engine's
// current alphabet generation. The unchanged-generation fast path is two
// atomic loads and a compare; on mismatch the source is recompiled through
// the engine cache (so repeat revalidations and sibling Query objects with
// the same source share one recompile) and the fresh compilation is
// installed for the next caller. Recompilation of a source that compiled
// once cannot fail short of a racing alphabet change; if it somehow does,
// the previous compilation is kept — stale automata answer exactly as the
// documented pre-generation-tracking semantics did.
func (q *Query) compiled() *core.CompiledQuery {
	cq := q.cq.Load()
	gen := q.eng.names.Generation()
	if cq.Gen == gen {
		return cq
	}
	ncq, err := q.eng.compileThroughCache(q.kind, q.src, gen)
	if err != nil {
		return cq
	}
	q.cq.Store(ncq)
	return ncq
}

// compileThroughCache resolves (kind, src) at the given alphabet
// generation via the engine's LRU cache, compiling on miss. A first
// compile of a source with fresh labels advances the generation while
// compiling; the result is additionally aliased under its post-compile
// generation so the very next same-source compile is a hit.
func (e *Engine) compileThroughCache(kind byte, src string, gen uint64) (*core.CompiledQuery, error) {
	cq, err := e.cache.get(cacheKey{kind: kind, gen: gen, src: src}, func() (*core.CompiledQuery, error) {
		cq, err := e.compileSource(kind, src)
		if err != nil {
			return nil, err
		}
		cq.SetMetrics(&e.metrics.Eval)
		return cq, nil
	})
	if err == nil && cq.Gen != gen {
		e.cache.put(cacheKey{kind: kind, gen: cq.Gen, src: src}, cq)
	}
	return cq, err
}

// compileSource runs the parse/translate-and-compile pipeline for one
// query source. The query's own names are published to the live alphabet
// first; the automata are then built against the shared frozen snapshot of
// the current generation, so a concurrent ParseXML can never resize the
// alphabet mid-construction. XPath sources re-translate on every compile:
// the translation itself enumerates the interned alphabet ('//' expands
// per label), so recompiling under a grown alphabet yields a genuinely
// wider query, not just wider automata.
func (e *Engine) compileSource(kind byte, src string) (*core.CompiledQuery, error) {
	switch kind {
	case kindXPath:
		p, err := xpath.Parse(src)
		if err != nil {
			return nil, wrapCompileErr(err, src)
		}
		// The translation enumerates the live alphabet, so re-translate
		// until the generation holds still across enumerate + pre-intern:
		// the stamp then covers exactly the labels the translation saw.
		for attempt := 0; ; attempt++ {
			genA := e.names.Generation()
			var vars []string
			for _, v := range e.names.Vars.Names() {
				if len(v) > 0 && v[0] != '\x00' {
					vars = append(vars, v)
				}
			}
			q, err := xpath.Translate(p, e.names.Syms.Names(), vars)
			if err != nil {
				return nil, wrapCompileErr(err, src)
			}
			// Translation emits one base per label per '//' level; the
			// optimizer (base unification + canonicalization) collapses the
			// duplicates.
			q.Envelope = core.Optimize(q.Envelope)
			core.PreinternQuery(q, e.names)
			if e.names.Generation() != genA && attempt < 2 {
				continue // fresh names appeared; re-translate over them
			}
			snap, _ := e.snapshot()
			cq, err := core.CompileQueryOpt(q, snap, e.copts)
			if err != nil {
				return nil, wrapCompileErr(err, src)
			}
			return cq, nil
		}
	default: // kindQuery
		q, err := core.ParseQuery(src)
		if err != nil {
			return nil, wrapCompileErr(err, src)
		}
		core.PreinternQuery(q, e.names)
		snap, _ := e.snapshot()
		cq, err := core.CompileQueryOpt(q, snap, e.copts)
		if err != nil {
			return nil, wrapCompileErr(err, src)
		}
		return cq, nil
	}
}

// newQuery wraps a compiled core query in the facade type.
func (e *Engine) newQuery(kind byte, src string, cq *core.CompiledQuery) *Query {
	q := &Query{eng: e, src: src, kind: kind}
	q.cq.Store(cq)
	return q
}

// CompileQuery parses and compiles a selection query. Two forms:
//
//	phr                      — locate nodes whose envelope matches the
//	                           pointed hedge representation
//	select(e1; phr)          — additionally require the node's subhedge to
//	                           match the hedge regular expression e1
//
// A pointed hedge representation is a regular expression (| , * + ? and
// parentheses) over pointed base hedge representations:
//
//	[e1 ; label ; e2]  — elder siblings (and their subtrees) match e1, the
//	                     node is labeled label, younger siblings match e2;
//	                     '*' for either side means "any hedge"
//	label              — sugar for [* ; label ; *]
//
// Per Definition 19 of the paper the sequence reads from the node's own
// level UP to the top level: "fig sec* [* ; doc ; *]" locates fig nodes
// under a chain of sec nodes under a doc root.
//
// Hedge regular expressions (the sides and e1) use the internal/hre
// syntax: labels build elements (a, a<...>), $x variables, '.' any hedge,
// a<~z> substitution targets with e^z vertical closure and e1 %z e2
// embedding.
//
// Compile order does not matter: '.' and schema products are closed-world
// over the engine's interned alphabet, but the compiled query is stamped
// with the alphabet generation it ranges over and every evaluation entry
// point revalidates the stamp. Parsing a document with fresh labels after
// compiling simply makes the query's next evaluation recompile — once,
// through the engine's bounded LRU cache (repeat evaluations at the same
// generation, and other queries with the same source, are cache hits).
// The recompile costs what CompileQuery cost; the unchanged-generation
// fast path costs two atomic loads. Stats().Cache reports hits, misses,
// and evictions.
func (e *Engine) CompileQuery(src string) (*Query, error) {
	if e.optErr != nil {
		return nil, e.optErr
	}
	cq, err := e.compileThroughCache(kindQuery, src, e.names.Generation())
	if err != nil {
		return nil, err
	}
	return e.newQuery(kindQuery, src, cq), nil
}

// String returns the query source.
func (q *Query) String() string { return q.src }

// Match is one located node.
type Match struct {
	// Path is the Dewey address of the node (1-based, dot-separated).
	Path string
	// Term is the located subtree in term syntax.
	Term string
	// Node is the located node within the document's hedge.
	Node *hedge.Node
	// Explanation is the match's provenance, present only when the run
	// requested it (SelectOptions.Explain). It is freshly allocated and
	// safe to retain even where Node is not.
	Explanation *Explanation
}

// Matches runs the query against a document using Algorithm 1 (two
// depth-first traversals; time linear in the document size) and returns a
// range-over-func iterator over the located nodes in document order.
// Breaking out of the loop stops the underlying walk — no match slice is
// materialized, and nodes after the break point are never visited by the
// second traversal. The iterator is rewindable: ranging again re-evaluates
// the query.
func (q *Query) Matches(d *Document) iter.Seq[Match] {
	return func(yield func(Match) bool) {
		fr := q.eng.recorder.Load()
		if fr == nil {
			q.compiled().SelectEach(d.hedge, func(p hedge.Path, n *hedge.Node) bool {
				return yield(Match{Path: p.String(), Term: n.String(), Node: n})
			})
			return
		}
		t0 := time.Now()
		matches := 0
		q.compiled().SelectEach(d.hedge, func(p hedge.Path, n *hedge.Node) bool {
			matches++
			return yield(Match{Path: p.String(), Term: n.String(), Node: n})
		})
		fr.commitDoc(q.src, int64(time.Since(t0)), d.Size(), matches)
	}
}

// Select is Matches materialized: the located nodes in document order.
func (q *Query) Select(d *Document) []Match {
	var out []Match
	for m := range q.Matches(d) {
		out = append(out, m)
	}
	return out
}

// SelectCtx is Select under a context: evaluation stops at the first
// located node found after ctx is canceled, returning ctx.Err(). (The
// traversal itself is not preempted between matches; use SelectStream for
// fully cancelable evaluation of large inputs.)
func (q *Query) SelectCtx(ctx context.Context, d *Document) ([]Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fr := q.eng.recorder.Load()
	var t0 time.Time
	if fr != nil {
		t0 = time.Now()
	}
	var out []Match
	q.compiled().SelectEach(d.hedge, func(p hedge.Path, n *hedge.Node) bool {
		if ctx.Err() != nil {
			return false
		}
		out = append(out, Match{Path: p.String(), Term: n.String(), Node: n})
		return true
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if fr != nil {
		fr.commitDoc(q.src, int64(time.Since(t0)), d.Size(), len(out))
	}
	return out, nil
}

// Binding is one captured variable of a match.
type Binding struct {
	Name string
	Path string
	Term string
}

// BoundMatch is a match with its captured variables (bases written with a
// '@name' suffix, e.g. "fig sec@s* [* ; doc ; *]@d").
type BoundMatch struct {
	Match
	Bindings []Binding
}

// SelectBindings is Select with variable capture (the paper's Section 9
// extension): each match carries the ancestors bound by named bases. When
// the envelope is ambiguous one successful match per node is chosen; use
// UniqueBindings to check up front.
func (q *Query) SelectBindings(d *Document) []BoundMatch {
	ms := q.compiled().SelectBindings(d.hedge)
	out := make([]BoundMatch, 0, len(ms))
	for _, m := range ms {
		bm := BoundMatch{Match: Match{Path: m.Path.String(), Term: m.Node.String(), Node: m.Node}}
		for name, p := range m.BindingPaths {
			bm.Bindings = append(bm.Bindings, Binding{Name: name, Path: p.String(), Term: m.Bindings[name].String()})
		}
		sortBindings(bm.Bindings)
		out = append(out, bm)
	}
	return out
}

func sortBindings(bs []Binding) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j-1].Name > bs[j].Name; j-- {
			bs[j-1], bs[j] = bs[j], bs[j-1]
		}
	}
}

// UniqueBindings reports (conservatively) whether every match determines
// its bindings uniquely.
func (q *Query) UniqueBindings() bool { return q.compiled().HasUniqueBindings() }

// Schema is a compiled schema. Like Query it is generation-stamped: a
// grammar-backed schema reparses itself when the engine's alphabet has
// grown since compilation, so its completed automata (and the products
// Transform* builds from them) always range over the current alphabet.
// Schemas returned by Transform* carry no grammar source and stay closed
// over the alphabet at transformation time.
type Schema struct {
	eng   *Engine
	src   string // grammar source; "" for derived (transformation) schemas
	state atomic.Pointer[schemaState]
}

// schemaState pairs a compiled schema with the alphabet generation it was
// compiled against; the pair is replaced atomically so concurrent readers
// never observe a stamp from one compilation with automata from another.
type schemaState struct {
	gen uint64
	s   *schema.Schema
}

// ParseSchema parses a grammar in the internal/schema syntax:
//
//	start = doc
//	element doc { (sec | par)* }
//	define deepsec = element sec { ... }   — classes may share labels
//	element par { text* }
//
// Like CompileQuery, compile order is not semantics: the schema revalidates
// against the alphabet generation at each use and reparses when stale.
func (e *Engine) ParseSchema(src string) (*Schema, error) {
	st, err := e.compileSchema(src)
	if err != nil {
		return nil, err
	}
	sc := &Schema{eng: e, src: src}
	sc.state.Store(st)
	return sc, nil
}

// compileSchema parses the grammar in two passes. The discovery pass runs
// against a private clone of the alphabet, so the first compile of a
// grammar with fresh labels cannot mutate anything shared; the labels it
// finds are published to the live alphabet. The real pass then builds the
// automata against the shared frozen snapshot of the current generation —
// at that point every grammar name is interned, so the parse performs only
// idempotent lookups and the snapshot stays immutable. The stamp is exact
// when no concurrent intern raced the snapshot, and conservatively stale
// (forcing one later revalidation) when one did.
func (e *Engine) compileSchema(src string) (*schemaState, error) {
	probe := e.names.Clone()
	if _, err := schema.ParseGrammar(src, probe); err != nil {
		return nil, wrapCompileErr(err, src)
	}
	for _, a := range probe.Syms.Names() {
		e.names.Syms.Intern(a)
	}
	for _, v := range probe.Vars.Names() {
		e.names.Vars.Intern(v)
	}
	for attempt := 0; ; attempt++ {
		snap, gen := e.snapshot()
		s, err := schema.ParseGrammar(src, snap)
		if err != nil {
			return nil, wrapCompileErr(err, src)
		}
		if snap.Generation() == gen || attempt >= 2 {
			return &schemaState{gen: gen, s: s}, nil
		}
		// Paranoia: the parse interned a name discovery missed. Publish it
		// and go around with a fresh snapshot.
		for _, a := range snap.Syms.Names() {
			e.names.Syms.Intern(a)
		}
		for _, v := range snap.Vars.Names() {
			e.names.Vars.Intern(v)
		}
	}
}

// compiled returns the schema's automata revalidated against the current
// alphabet generation, reparsing the grammar on mismatch. Derived schemas
// (no grammar source) are returned as compiled.
func (s *Schema) compiled() *schema.Schema {
	st := s.state.Load()
	if s.src == "" {
		return st.s
	}
	gen := s.eng.names.Generation()
	if st.gen == gen {
		return st.s
	}
	nst, err := s.eng.compileSchema(s.src)
	if err != nil {
		return st.s
	}
	s.state.Store(nst)
	return nst.s
}

// Validate reports whether the document conforms to the schema.
func (s *Schema) Validate(d *Document) bool {
	return s.compiled().DHA.Accepts(d.hedge)
}

// ValidateHedge reports whether a raw hedge conforms to the schema.
func (s *Schema) ValidateHedge(h hedge.Hedge) bool { return s.compiled().DHA.Accepts(h) }

// derivedSchema wraps a transformation result, stamped with the current
// generation but carrying no source to revalidate from.
func (e *Engine) derivedSchema(out *schema.Schema) *Schema {
	sc := &Schema{eng: e}
	sc.state.Store(&schemaState{gen: e.names.Generation(), s: out})
	return sc
}

// ResultShape selects what TransformSelect's output schema describes.
type ResultShape = schema.ResultShape

// Result shapes.
const (
	Subhedges = schema.Subhedges
	Subtrees  = schema.Subtrees
)

// resolvePair resolves the schema and the query against the current
// alphabet generation for a product construction. Both normally land on
// the same shared snapshot; a derived schema pinned to an older snapshot
// is rebased onto the query's newer one (legal because snapshots of one
// engine extend each other — the extension labels fall to the rebased
// automaton's sink, preserving its closed world).
func (s *Schema) resolvePair(q *Query) (*schema.Schema, *core.CompiledQuery) {
	sc, cqc := s.compiled(), q.compiled()
	for i := 0; i < 2 && sc.Names != cqc.Names; i++ {
		sc, cqc = s.compiled(), q.compiled()
	}
	if sc.Names != cqc.Names {
		if r := schema.Rebase(sc, cqc.Names); r != nil {
			sc = r
		}
	}
	return sc, cqc
}

// harmonizeSchemas rebases whichever schema was compiled against the older
// alphabet snapshot onto the newer one, so comparisons run over one shared
// Names.
func harmonizeSchemas(a, b *schema.Schema) (*schema.Schema, *schema.Schema) {
	if a.Names == b.Names {
		return a, b
	}
	if r := schema.Rebase(a, b.Names); r != nil {
		return r, b
	}
	if r := schema.Rebase(b, a.Names); r != nil {
		return a, r
	}
	return a, b
}

// TransformSelect computes the output schema of the query over this input
// schema (Section 8): the language of results the query can produce on any
// conforming document. Both the schema and the query are revalidated
// against the current alphabet generation first, so the product is built
// from automata over one consistent closed world; the result is a derived
// schema, closed over the alphabet as of this call.
func (s *Schema) TransformSelect(q *Query, shape ResultShape) (*Schema, error) {
	sc, cqc := s.resolvePair(q)
	out, err := schema.TransformSelect(sc, cqc, shape)
	if err != nil {
		return nil, err
	}
	return s.eng.derivedSchema(out), nil
}

// TransformDelete computes the output schema of deleting every node the
// query locates, over this input schema.
func (s *Schema) TransformDelete(q *Query) (*Schema, error) {
	sc, cqc := s.resolvePair(q)
	out, err := schema.TransformDelete(sc, cqc)
	if err != nil {
		return nil, err
	}
	return s.eng.derivedSchema(out), nil
}

// TransformRename computes the output schema of renaming every located
// node to newLabel over this input schema. A fresh newLabel is interned
// (advancing the generation) before the schema and query are resolved, so
// the product's closed world contains it.
func (s *Schema) TransformRename(q *Query, newLabel string) (*Schema, error) {
	s.eng.names.Syms.Intern(newLabel)
	sc, cqc := s.resolvePair(q)
	out, err := schema.TransformRename(sc, cqc, newLabel)
	if err != nil {
		return nil, err
	}
	return s.eng.derivedSchema(out), nil
}

// EquivalentTo reports whether both schemas accept the same documents.
func (s *Schema) EquivalentTo(other *Schema) (bool, error) {
	a, b := harmonizeSchemas(s.compiled(), other.compiled())
	return schema.Equivalent(a, b)
}

// Includes reports whether every document of other conforms to s.
func (s *Schema) Includes(other *Schema) (bool, error) {
	a, b := harmonizeSchemas(s.compiled(), other.compiled())
	return schema.Includes(a, b)
}

// Delete returns a copy of the document with every located subtree
// removed (the document-level counterpart of TransformDelete).
func (q *Query) Delete(d *Document) *Document {
	res := q.compiled().Select(d.hedge)
	return &Document{eng: d.eng, hedge: d.hedge.RemoveNodes(res.Located)}
}

// Rename returns a copy of the document with every located node relabeled
// to newLabel (the document-level counterpart of TransformRename). A fresh
// newLabel is interned, advancing the alphabet generation: queries and
// schemas compiled earlier transparently recompile at their next use.
func (q *Query) Rename(d *Document, newLabel string) *Document {
	res := q.compiled().Select(d.hedge)
	d.eng.names.Syms.Intern(newLabel)
	return &Document{eng: d.eng, hedge: d.hedge.RenameNodes(res.Located, newLabel)}
}

// CompileXPath translates an XPath location path from the supported
// fragment (see internal/xpath.Translate) into a selection query over the
// engine's interned alphabet and compiles it. It demonstrates the paper's
// Section 2 point that XPath's sibling-aware path core embeds into
// extended path expressions.
//
// The translation enumerates the interned alphabet ('//' expands per
// label), so it is even more generation-sensitive than query compilation;
// like CompileQuery the result is stamped and transparently re-translated
// and recompiled when evaluated after the alphabet has grown.
func (e *Engine) CompileXPath(src string) (*Query, error) {
	if e.optErr != nil {
		return nil, e.optErr
	}
	cq, err := e.compileThroughCache(kindXPath, src, e.names.Generation())
	if err != nil {
		return nil, err
	}
	return e.newQuery(kindXPath, src, cq), nil
}

// Internal accessors used by the benchmark harness and cmd tools.

// Names exposes the engine's interners.
func (e *Engine) Names() *ha.Names { return e.names }

// Compiled exposes the compiled core query, revalidated against the
// current alphabet generation exactly as the evaluation entry points do.
func (q *Query) Compiled() *core.CompiledQuery { return q.compiled() }

// Underlying exposes the compiled schema, revalidated like Validate does.
func (s *Schema) Underlying() *schema.Schema { return s.compiled() }
