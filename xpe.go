// Package xpe — extended path expressions for XML — is a from-scratch
// implementation of Murata's PODS 2001 paper: hedge regular expressions,
// pointed hedge representations, linear-time selection-query evaluation by
// two depth-first traversals, and schema transformation via
// match-identifying hedge automata.
//
// The package is a facade over the full machinery in internal/: an Engine
// holds the shared alphabet; documents are parsed from XML or from the
// paper's term syntax; queries are selection queries select(e₁, e₂)
// combining a hedge regular expression (condition on a node's subhedge)
// with a pointed hedge representation (condition on its envelope:
// ancestors, siblings, siblings of ancestors, and their descendants).
//
// Quickstart:
//
//	eng := xpe.NewEngine()
//	doc, _ := eng.ParseXMLString("<doc><sec><fig/><tab/></sec></doc>")
//	q, _ := eng.CompileQuery("[* ; fig ; tab .] (sec|doc)*")
//	for m := range q.Matches(doc) {
//		fmt.Println(m.Path, m.Term)
//	}
//
// Matches is a range-over-func iterator (stop early by breaking); Select
// materializes the slice. Context-accepting variants (SelectCtx) and the
// streaming entry point SelectStream — which evaluates a query over an XML
// stream record by record in bounded memory, with worker-pool fan-out and
// in-order delivery — accept a SelectOptions. Errors crossing the facade
// are typed: *ParseError (malformed documents), *CompileError (bad queries
// or grammars, with offset and excerpt), and *LimitError (streamed record
// over a configured bound), all recoverable with errors.As.
//
// Query syntax is documented on CompileQuery; schema grammars on
// ParseSchema; streaming on SelectStream.
package xpe

import (
	"context"
	"io"
	"iter"

	"xpe/internal/core"
	"xpe/internal/ha"
	"xpe/internal/hedge"
	"xpe/internal/metrics"
	"xpe/internal/schema"
	"xpe/internal/xmlhedge"
	"xpe/internal/xpath"
)

// Engine holds the shared symbol/variable alphabet. Every document, query,
// and schema compiled through the same Engine agrees on the alphabet,
// which is what the paper's closed-world side conditions (and the product
// constructions of Section 8) require.
type Engine struct {
	names *ha.Names
	// metrics is the engine-wide instrumentation registry; queries compiled
	// through this engine flush evaluation counters into it (see Stats).
	metrics *metrics.Metrics
}

// NewEngine returns an empty engine.
func NewEngine() *Engine { return &Engine{names: ha.NewNames(), metrics: &metrics.Metrics{}} }

// Document is a parsed XML document or hedge.
type Document struct {
	eng   *Engine
	hedge hedge.Hedge
}

// ParseXML reads an XML document. Failures are reported as *ParseError.
func (e *Engine) ParseXML(r io.Reader) (*Document, error) {
	h, err := xmlhedge.Parse(r, xmlhedge.Options{})
	if err != nil {
		return nil, wrapParseErr(err, "")
	}
	return e.adopt(h), nil
}

// ParseXMLString reads an XML document from a string. Failures are
// reported as *ParseError carrying the offending line.
func (e *Engine) ParseXMLString(s string) (*Document, error) {
	h, err := xmlhedge.ParseString(s, xmlhedge.Options{})
	if err != nil {
		return nil, wrapParseErr(err, s)
	}
	return e.adopt(h), nil
}

// ParseTerm reads a document in the paper's term syntax (see
// internal/hedge): "doc<sec<fig tab>>", with $x for variables. Failures
// are reported as *ParseError.
func (e *Engine) ParseTerm(s string) (*Document, error) {
	h, err := hedge.Parse(s)
	if err != nil {
		return nil, wrapParseErr(err, s)
	}
	return e.adopt(h), nil
}

// FromHedge adopts an already-built hedge as a document (the hedge is
// shared, not copied; callers must not mutate it afterwards).
func (e *Engine) FromHedge(h hedge.Hedge) *Document { return e.adopt(h) }

// adopt interns the document's alphabet and wraps it.
func (e *Engine) adopt(h hedge.Hedge) *Document {
	syms, vars, _ := h.Labels()
	for _, s := range syms {
		e.names.Syms.Intern(s)
	}
	for _, v := range vars {
		e.names.Vars.Intern(v)
	}
	return &Document{eng: e, hedge: h}
}

// Hedge exposes the underlying hedge (shared, do not mutate).
func (d *Document) Hedge() hedge.Hedge { return d.hedge }

// Size returns the node count.
func (d *Document) Size() int { return d.hedge.Size() }

// Term renders the document in term syntax.
func (d *Document) Term() string { return d.hedge.String() }

// XML serializes the document back to XML.
func (d *Document) XML() (string, error) { return xmlhedge.ToString(d.hedge) }

// Query is a compiled selection query.
type Query struct {
	eng *Engine
	src string
	cq  *core.CompiledQuery
}

// CompileQuery parses and compiles a selection query. Two forms:
//
//	phr                      — locate nodes whose envelope matches the
//	                           pointed hedge representation
//	select(e1; phr)          — additionally require the node's subhedge to
//	                           match the hedge regular expression e1
//
// A pointed hedge representation is a regular expression (| , * + ? and
// parentheses) over pointed base hedge representations:
//
//	[e1 ; label ; e2]  — elder siblings (and their subtrees) match e1, the
//	                     node is labeled label, younger siblings match e2;
//	                     '*' for either side means "any hedge"
//	label              — sugar for [* ; label ; *]
//
// Per Definition 19 of the paper the sequence reads from the node's own
// level UP to the top level: "fig sec* [* ; doc ; *]" locates fig nodes
// under a chain of sec nodes under a doc root.
//
// Hedge regular expressions (the sides and e1) use the internal/hre
// syntax: labels build elements (a, a<...>), $x variables, '.' any hedge,
// a<~z> substitution targets with e^z vertical closure and e1 %z e2
// embedding.
//
// Compile queries after the documents/schemas whose alphabet they should
// range over: '.' and schema products are closed-world over the engine's
// interned alphabet.
func (e *Engine) CompileQuery(src string) (*Query, error) {
	q, err := core.ParseQuery(src)
	if err != nil {
		return nil, wrapCompileErr(err, src)
	}
	cq, err := core.CompileQuery(q, e.names)
	if err != nil {
		return nil, wrapCompileErr(err, src)
	}
	cq.SetMetrics(&e.metrics.Eval)
	return &Query{eng: e, src: src, cq: cq}, nil
}

// String returns the query source.
func (q *Query) String() string { return q.src }

// Match is one located node.
type Match struct {
	// Path is the Dewey address of the node (1-based, dot-separated).
	Path string
	// Term is the located subtree in term syntax.
	Term string
	// Node is the located node within the document's hedge.
	Node *hedge.Node
}

// Matches runs the query against a document using Algorithm 1 (two
// depth-first traversals; time linear in the document size) and returns a
// range-over-func iterator over the located nodes in document order.
// Breaking out of the loop stops the underlying walk — no match slice is
// materialized, and nodes after the break point are never visited by the
// second traversal. The iterator is rewindable: ranging again re-evaluates
// the query.
func (q *Query) Matches(d *Document) iter.Seq[Match] {
	return func(yield func(Match) bool) {
		q.cq.SelectEach(d.hedge, func(p hedge.Path, n *hedge.Node) bool {
			return yield(Match{Path: p.String(), Term: n.String(), Node: n})
		})
	}
}

// Select is Matches materialized: the located nodes in document order.
func (q *Query) Select(d *Document) []Match {
	var out []Match
	for m := range q.Matches(d) {
		out = append(out, m)
	}
	return out
}

// SelectCtx is Select under a context: evaluation stops at the first
// located node found after ctx is canceled, returning ctx.Err(). (The
// traversal itself is not preempted between matches; use SelectStream for
// fully cancelable evaluation of large inputs.)
func (q *Query) SelectCtx(ctx context.Context, d *Document) ([]Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []Match
	q.cq.SelectEach(d.hedge, func(p hedge.Path, n *hedge.Node) bool {
		if ctx.Err() != nil {
			return false
		}
		out = append(out, Match{Path: p.String(), Term: n.String(), Node: n})
		return true
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Binding is one captured variable of a match.
type Binding struct {
	Name string
	Path string
	Term string
}

// BoundMatch is a match with its captured variables (bases written with a
// '@name' suffix, e.g. "fig sec@s* [* ; doc ; *]@d").
type BoundMatch struct {
	Match
	Bindings []Binding
}

// SelectBindings is Select with variable capture (the paper's Section 9
// extension): each match carries the ancestors bound by named bases. When
// the envelope is ambiguous one successful match per node is chosen; use
// UniqueBindings to check up front.
func (q *Query) SelectBindings(d *Document) []BoundMatch {
	ms := q.cq.SelectBindings(d.hedge)
	out := make([]BoundMatch, 0, len(ms))
	for _, m := range ms {
		bm := BoundMatch{Match: Match{Path: m.Path.String(), Term: m.Node.String(), Node: m.Node}}
		for name, p := range m.BindingPaths {
			bm.Bindings = append(bm.Bindings, Binding{Name: name, Path: p.String(), Term: m.Bindings[name].String()})
		}
		sortBindings(bm.Bindings)
		out = append(out, bm)
	}
	return out
}

func sortBindings(bs []Binding) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j-1].Name > bs[j].Name; j-- {
			bs[j-1], bs[j] = bs[j], bs[j-1]
		}
	}
}

// UniqueBindings reports (conservatively) whether every match determines
// its bindings uniquely.
func (q *Query) UniqueBindings() bool { return q.cq.HasUniqueBindings() }

// Schema is a compiled schema.
type Schema struct {
	eng *Engine
	s   *schema.Schema
}

// ParseSchema parses a grammar in the internal/schema syntax:
//
//	start = doc
//	element doc { (sec | par)* }
//	define deepsec = element sec { ... }   — classes may share labels
//	element par { text* }
func (e *Engine) ParseSchema(src string) (*Schema, error) {
	s, err := schema.ParseGrammar(src, e.names)
	if err != nil {
		return nil, wrapCompileErr(err, src)
	}
	return &Schema{eng: e, s: s}, nil
}

// Validate reports whether the document conforms to the schema.
func (s *Schema) Validate(d *Document) bool {
	return s.s.DHA.Accepts(d.hedge)
}

// ValidateHedge reports whether a raw hedge conforms to the schema.
func (s *Schema) ValidateHedge(h hedge.Hedge) bool { return s.s.DHA.Accepts(h) }

// ResultShape selects what TransformSelect's output schema describes.
type ResultShape = schema.ResultShape

// Result shapes.
const (
	Subhedges = schema.Subhedges
	Subtrees  = schema.Subtrees
)

// TransformSelect computes the output schema of the query over this input
// schema (Section 8): the language of results the query can produce on any
// conforming document.
func (s *Schema) TransformSelect(q *Query, shape ResultShape) (*Schema, error) {
	out, err := schema.TransformSelect(s.s, q.cq, shape)
	if err != nil {
		return nil, err
	}
	return &Schema{eng: s.eng, s: out}, nil
}

// TransformDelete computes the output schema of deleting every node the
// query locates, over this input schema.
func (s *Schema) TransformDelete(q *Query) (*Schema, error) {
	out, err := schema.TransformDelete(s.s, q.cq)
	if err != nil {
		return nil, err
	}
	return &Schema{eng: s.eng, s: out}, nil
}

// TransformRename computes the output schema of renaming every located
// node to newLabel over this input schema.
func (s *Schema) TransformRename(q *Query, newLabel string) (*Schema, error) {
	out, err := schema.TransformRename(s.s, q.cq, newLabel)
	if err != nil {
		return nil, err
	}
	return &Schema{eng: s.eng, s: out}, nil
}

// EquivalentTo reports whether both schemas accept the same documents.
func (s *Schema) EquivalentTo(other *Schema) (bool, error) {
	return schema.Equivalent(s.s, other.s)
}

// Includes reports whether every document of other conforms to s.
func (s *Schema) Includes(other *Schema) (bool, error) {
	return schema.Includes(s.s, other.s)
}

// Delete returns a copy of the document with every located subtree
// removed (the document-level counterpart of TransformDelete).
func (q *Query) Delete(d *Document) *Document {
	res := q.cq.Select(d.hedge)
	return &Document{eng: d.eng, hedge: d.hedge.RemoveNodes(res.Located)}
}

// Rename returns a copy of the document with every located node relabeled
// to newLabel (the document-level counterpart of TransformRename).
func (q *Query) Rename(d *Document, newLabel string) *Document {
	res := q.cq.Select(d.hedge)
	d.eng.names.Syms.Intern(newLabel)
	return &Document{eng: d.eng, hedge: d.hedge.RenameNodes(res.Located, newLabel)}
}

// CompileXPath translates an XPath location path from the supported
// fragment (see internal/xpath.Translate) into a selection query over the
// engine's interned alphabet and compiles it. It demonstrates the paper's
// Section 2 point that XPath's sibling-aware path core embeds into
// extended path expressions.
func (e *Engine) CompileXPath(src string) (*Query, error) {
	p, err := xpath.Parse(src)
	if err != nil {
		return nil, wrapCompileErr(err, src)
	}
	var vars []string
	for _, v := range e.names.Vars.Names() {
		if len(v) > 0 && v[0] != '\x00' {
			vars = append(vars, v)
		}
	}
	q, err := xpath.Translate(p, e.names.Syms.Names(), vars)
	if err != nil {
		return nil, wrapCompileErr(err, src)
	}
	// Translation emits one base per label per '//' level; the optimizer
	// (base unification + canonicalization) collapses the duplicates.
	q.Envelope = core.Optimize(q.Envelope)
	cq, err := core.CompileQuery(q, e.names)
	if err != nil {
		return nil, wrapCompileErr(err, src)
	}
	cq.SetMetrics(&e.metrics.Eval)
	return &Query{eng: e, src: src, cq: cq}, nil
}

// Internal accessors used by the benchmark harness and cmd tools.

// Names exposes the engine's interners.
func (e *Engine) Names() *ha.Names { return e.names }

// Compiled exposes the compiled core query.
func (q *Query) Compiled() *core.CompiledQuery { return q.cq }

// Underlying exposes the compiled schema.
func (s *Schema) Underlying() *schema.Schema { return s.s }
