package xpe

import (
	"container/list"
	"sync"

	"xpe/internal/core"
	"xpe/internal/metrics"
)

// compiledCacheCap bounds the engine's compiled-query cache. Each entry is
// one (source, kind, alphabet generation) compilation; distinct generations
// of the same source are distinct entries, so the bound also caps how many
// stale compilations a churning alphabet can pin.
const compiledCacheCap = 256

// cacheKey identifies one compilation: the query source, how it is parsed
// (selection-query syntax vs XPath translation), and the alphabet
// generation it was requested against.
type cacheKey struct {
	kind byte // kindQuery or kindXPath
	gen  uint64
	src  string
}

// Query source kinds (the parse/translate pipeline a source goes through).
const (
	kindQuery = 'q' // Engine.CompileQuery syntax
	kindXPath = 'x' // Engine.CompileXPath translation
)

// cacheEntry is one cached compilation. The entry is inserted before the
// compile runs; once gates the compile so concurrent requests for the same
// key block on the first compiler instead of duplicating the work.
type cacheEntry struct {
	key  cacheKey
	once sync.Once
	cq   *core.CompiledQuery
	err  error
}

// compiledCache is a bounded LRU of compiled queries keyed by
// source × kind × alphabet generation. It is what makes generation
// revalidation affordable: the first evaluation after the alphabet grows
// pays one recompile (a miss), every later evaluation — and every other
// Query object sharing the source — gets the recompiled automata back in a
// map lookup (a hit). Hit/miss/eviction counts flow to the engine's
// metrics registry (Engine.Stats().Cache).
type compiledCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // of *cacheEntry; front = most recently used
	entries map[cacheKey]*list.Element
	metrics *metrics.Cache
}

func newCompiledCache(capacity int, m *metrics.Cache) *compiledCache {
	return &compiledCache{
		cap:     capacity,
		ll:      list.New(),
		entries: map[cacheKey]*list.Element{},
		metrics: m,
	}
}

// get returns the compilation for key, running compile at most once per key
// (concurrent callers block on the winner). A failed compile is evicted
// immediately so a later request can retry.
func (c *compiledCache) get(key cacheKey, compile func() (*core.CompiledQuery, error)) (*core.CompiledQuery, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		entry := el.Value.(*cacheEntry)
		c.mu.Unlock()
		c.metrics.Hits.Inc()
		entry.once.Do(func() {}) // wait for an in-flight compile
		return entry.cq, entry.err
	}
	entry := &cacheEntry{key: key}
	c.entries[key] = c.ll.PushFront(entry)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.metrics.Evictions.Inc()
	}
	c.mu.Unlock()
	c.metrics.Misses.Inc()
	entry.once.Do(func() { entry.cq, entry.err = compile() })
	if entry.err != nil {
		c.remove(key, entry)
	}
	return entry.cq, entry.err
}

// put inserts an already-completed compilation under key if the key is
// absent. Used to alias a compilation under its post-compile generation:
// compiling a source whose labels were never interned advances the
// generation, so the next same-source compile asks for a key the original
// request could not have known.
func (c *compiledCache) put(key cacheKey, cq *core.CompiledQuery) {
	entry := &cacheEntry{key: key, cq: cq}
	entry.once.Do(func() {})
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	c.entries[key] = c.ll.PushFront(entry)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.metrics.Evictions.Inc()
	}
}

// remove drops the entry for key if it still is the one given (a failed
// compile must not evict a successful replacement).
func (c *compiledCache) remove(key cacheKey, entry *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok && el.Value.(*cacheEntry) == entry {
		c.ll.Remove(el)
		delete(c.entries, key)
	}
}

// len reports the current entry count (tests and the debug surface).
func (c *compiledCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheInfo describes the compiled-query cache at a point in time:
// occupancy against the bound, and the alphabet generation current
// compilations are requested at (entries from older generations are the
// stale compilations the LRU bound caps).
type CacheInfo struct {
	Entries    int    `json:"entries"`
	Capacity   int    `json:"capacity"`
	Generation uint64 `json:"alphabet_generation"`
}

// CacheInfo returns the compiled-query cache's current state; traffic
// counters (hits, misses, evictions) are in Stats().Cache.
func (e *Engine) CacheInfo() CacheInfo {
	return CacheInfo{Entries: e.cache.len(), Capacity: e.cache.cap, Generation: e.names.Generation()}
}
