package xpe

import (
	"fmt"
	"sync"
	"testing"
)

// docXML has labels (doc, sec, fig, tab) that exercise '.'-sides: under
// closed-world compilation a query compiled before these labels are
// interned used to silently locate nothing.
const docXML = "<doc><sec><fig/><tab/><fig/></sec><sec><fig/></sec></doc>"

// dotQueries all mention '.' (any-hedge over the compile-time alphabet),
// the construct most sensitive to compile order.
var dotQueries = []string{
	"[. ; fig ; .] (sec|doc)*",
	"select(.; [* ; sec ; *] doc)",
	"[* ; fig ; tab .] (sec|doc)*",
}

func selectPaths(t *testing.T, q *Query, d *Document) string {
	t.Helper()
	out := ""
	for _, m := range q.Select(d) {
		out += m.Path + ":" + m.Term + "\n"
	}
	return out
}

// TestCompileBeforeParseEqualsAfter pins the generation contract: a query
// compiled on a fresh engine and evaluated after new labels were interned
// must locate byte-for-byte the same matches as the same query compiled
// after the documents were parsed. Before generation tracking the
// compile-first order silently missed every match whose evaluation crossed
// a '.'-side over the later labels.
func TestCompileBeforeParseEqualsAfter(t *testing.T) {
	for _, src := range dotQueries {
		before := NewEngine()
		qBefore, err := before.CompileQuery(src)
		if err != nil {
			t.Fatalf("compile-first %q: %v", src, err)
		}
		dBefore, err := before.ParseXMLString(docXML)
		if err != nil {
			t.Fatal(err)
		}

		after := NewEngine()
		dAfter, err := after.ParseXMLString(docXML)
		if err != nil {
			t.Fatal(err)
		}
		qAfter, err := after.CompileQuery(src)
		if err != nil {
			t.Fatalf("compile-after %q: %v", src, err)
		}

		got, want := selectPaths(t, qBefore, dBefore), selectPaths(t, qAfter, dAfter)
		if got != want {
			t.Errorf("%q: compile order changed matches:\n--- compile-first ---\n%s--- compile-after ---\n%s", src, got, want)
		}
		if want == "" {
			t.Errorf("%q: oracle order located nothing — test is vacuous", src)
		}
	}
}

// TestXPathRecompilesUnderGrowth covers the '//' expansion: the XPath
// translation enumerates the interned alphabet, so a path compiled when
// only 'fig' existed must be re-translated once the container labels
// (doc, sec) are interned — otherwise '//' cannot descend through them.
func TestXPathRecompilesUnderGrowth(t *testing.T) {
	eng := NewEngine()
	if _, err := eng.ParseXMLString("<fig/>"); err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileXPath("//fig")
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.ParseXMLString(docXML)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(q.Select(d)); got != 3 {
		t.Fatalf("//fig after growth located %d nodes, want 3", got)
	}
}

// TestCacheCounters checks the Stats().Cache accounting end to end:
// compiling is a miss, recompiling the same source at the same generation
// is a hit, evaluation after alphabet growth recompiles exactly once (one
// more miss), and the unchanged-generation fast path touches the cache not
// at all.
func TestCacheCounters(t *testing.T) {
	eng := NewEngine()
	const src = "[. ; fig ; .] (sec|doc)*"
	q1, err := eng.CompileQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CompileQuery(src); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Cache.Misses != 1 || s.Cache.Hits != 1 {
		t.Fatalf("after double compile: hits=%d misses=%d, want 1/1", s.Cache.Hits, s.Cache.Misses)
	}

	d, err := eng.ParseXMLString(docXML)
	if err != nil {
		t.Fatal(err)
	}
	q1.Select(d) // generation grew: one recompile miss
	s = eng.Stats()
	if s.Cache.Misses != 2 {
		t.Fatalf("first stale evaluation: misses=%d, want 2", s.Cache.Misses)
	}
	q1.Select(d) // generation unchanged: pure fast path
	q1.Select(d)
	s2 := eng.Stats()
	if s2.Cache.Hits != s.Cache.Hits || s2.Cache.Misses != s.Cache.Misses {
		t.Fatalf("fast path touched the cache: %+v then %+v", s.Cache, s2.Cache)
	}

	// A second Query object over the same source at the current generation
	// rides the first recompile's cache entry.
	q2, err := eng.CompileQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	s3 := eng.Stats()
	if s3.Cache.Hits != s2.Cache.Hits+1 {
		t.Fatalf("same-generation recompile should hit: %+v then %+v", s2.Cache, s3.Cache)
	}
	if a, b := selectPaths(t, q1, d), selectPaths(t, q2, d); a != b || a == "" {
		t.Fatalf("cache hit diverged from original: %q vs %q", a, b)
	}
}

// TestCacheEviction fills the LRU past its capacity with distinct sources
// and checks the bound holds and evictions are counted.
func TestCacheEviction(t *testing.T) {
	eng := NewEngine()
	n := compiledCacheCap + 32
	for i := 0; i < n; i++ {
		if _, err := eng.CompileQuery(fmt.Sprintf("q%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.cache.len(); got > compiledCacheCap {
		t.Fatalf("cache holds %d entries, cap %d", got, compiledCacheCap)
	}
	if ev := eng.Stats().Cache.Evictions; ev < int64(n-compiledCacheCap) {
		t.Fatalf("evictions = %d, want >= %d", ev, n-compiledCacheCap)
	}
}

// TestSharedEngineHammer exercises one Engine from many goroutines doing
// everything that can race: interning fresh labels (ParseXMLString),
// evaluating a shared query (which may recompile mid-flight), compiling,
// and snapshotting stats. Run under `make race` this is the regression
// gate for the interner/generation/cache synchronization.
func TestSharedEngineHammer(t *testing.T) {
	eng := NewEngine()
	q, err := eng.CompileQuery("[. ; fig ; .] (sec|doc)*")
	if err != nil {
		t.Fatal(err)
	}
	base, err := eng.ParseXMLString(docXML)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					// One fresh label per worker (recurring afterwards): the
					// generation advances concurrently with evaluation below
					// while the alphabet stays small — compile cost of a
					// '.'-side grows with the whole alphabet.
					xml := fmt.Sprintf("<doc><w%d/><sec><fig/></sec></doc>", w)
					if _, err := eng.ParseXMLString(xml); err != nil {
						t.Error(err)
						return
					}
				case 1:
					d := base
					found := false
					for m := range q.Matches(d) {
						_ = m
						found = true
					}
					if !found {
						t.Errorf("worker %d iter %d: shared query lost its matches", w, i)
						return
					}
				case 2:
					if _, err := eng.CompileQuery(fmt.Sprintf("[. ; fig ; .] (sec|doc|extra%d)*", w)); err != nil {
						t.Error(err)
						return
					}
				default:
					_ = eng.Stats()
				}
			}
		}(w)
	}
	wg.Wait()

	// After the dust settles the shared query still answers correctly.
	if got := selectPaths(t, q, base); got == "" {
		t.Fatal("shared query lost its matches after the hammer")
	}
}
