package xpe

import (
	"strings"
	"testing"
)

// TestScenarioXHTML exercises the library on a second, XHTML-flavoured
// vocabulary with a hedge-regular (not merely local) grammar: definition
// lists must alternate dt/dd pairs — a constraint DTDs cannot express but
// hedge automata can (the distinction the paper draws in §2 against local
// tree grammars).
func TestScenarioXHTML(t *testing.T) {
	eng := NewEngine()
	sch, err := eng.ParseSchema(`
start = html
element html { head body }
element head { title }
element title { text* }
element body { (h1 | p | dl | img)* }
element h1 { text* }
element p { (text | img | em)* }
element em { text* }
element img { empty }
define dl = element dl { (dt dd)* }
element dt { text* }
element dd { (text | p)* }
`)
	if err != nil {
		t.Fatal(err)
	}

	good, err := eng.ParseXMLString(`
<html><head><title>t</title></head>
<body>
  <h1>header</h1>
  <p>intro <img/> tail</p>
  <dl><dt>term</dt><dd>def</dd><dt>term2</dt><dd>def2</dd></dl>
  <img/>
</body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	if !sch.Validate(good) {
		t.Fatal("well-formed page should validate")
	}

	// dt without its dd: the alternation constraint must reject.
	bad, err := eng.ParseXMLString(
		`<html><head><title>t</title></head><body><dl><dt>term</dt></dl></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	if sch.Validate(bad) {
		t.Fatal("unpaired dt must be rejected (hedge-regular constraint)")
	}

	// Query: images directly inside paragraphs (not top-level images).
	// '*' sides keep the Theorem 5 product small for the transformations
	// below ('.' would compile a full any-hedge automaton with identical
	// semantics — see the 4b notes in DESIGN.md).
	q, err := eng.CompileQuery("img [* ; p ; *] [* ; body ; *] [* ; html ; *]")
	if err != nil {
		t.Fatal(err)
	}
	ms := q.Select(good)
	if len(ms) != 1 || ms[0].Path != "1.2.2.2" {
		t.Fatalf("inline images = %v", ms)
	}

	// Delete all inline images; the page must conform to the transformed
	// schema and keep the top-level image.
	del, err := sch.TransformDelete(q)
	if err != nil {
		t.Fatal(err)
	}
	stripped := q.Delete(good)
	if !del.Validate(stripped) {
		t.Fatal("stripped page must conform to delete output schema")
	}
	if strings.Count(stripped.Term(), "img") != 1 {
		t.Fatalf("expected exactly the top-level img to survive: %s", stripped.Term())
	}

	// Select output schema: the subtree shape of located images is just
	// img⟨ε⟩.
	sel, err := sch.TransformSelect(q, Subtrees)
	if err != nil {
		t.Fatal(err)
	}
	imgDoc, _ := eng.ParseTerm("img")
	pDoc, _ := eng.ParseTerm("p")
	if !sel.Validate(imgDoc) || sel.Validate(pDoc) {
		t.Fatal("select output schema should be exactly {img}")
	}

	// Bindings: capture the paragraph holding each inline image.
	qb, err := eng.CompileQuery("img [* ; p ; *]@para [* ; body ; *] [* ; html ; *]")
	if err != nil {
		t.Fatal(err)
	}
	bms := qb.SelectBindings(good)
	if len(bms) != 1 {
		t.Fatalf("bound matches = %v", bms)
	}
	if bms[0].Bindings[0].Name != "para" || bms[0].Bindings[0].Path != "1.2.2" {
		t.Fatalf("binding = %+v", bms[0].Bindings)
	}

	// The dt/dd alternation is queryable too: dd nodes whose immediate
	// elder sibling is a dt (all of them, by the grammar).
	qdd, err := eng.CompileQuery("[. dt<.> ; dd ; *] (dl|body|html)*")
	if err != nil {
		t.Fatal(err)
	}
	dds := qdd.Select(good)
	if len(dds) != 2 {
		t.Fatalf("dd-after-dt = %v", dds)
	}
}
