package xpe

import (
	"encoding/json"
	"fmt"
	"strings"

	"xpe/internal/core"
	"xpe/internal/hedge"
)

// ExplainStep is one level of a match explanation: an ancestor of the
// located node (the last step is the node itself). Candidates and Fired
// render bases of the query's envelope in the query syntax.
type ExplainStep struct {
	// Element is the element label at this level.
	Element string `json:"element"`
	// State is the envelope automaton's state after this level (stable
	// across evaluations of one compilation, not across recompiles).
	State int `json:"state"`
	// Candidates are the envelope bases whose sibling side conditions
	// hold at this level.
	Candidates []string `json:"candidates"`
	// Fired is the candidate the successful match assigns to this level;
	// "" if reconstruction failed (an inconsistent compilation).
	Fired string `json:"fired"`
}

// Explanation is the provenance of one located node: why the query
// matched, level by level from the top of the document (or record) down
// to the node. The paper's Algorithm 1 answers "does a match exist" from
// two bit sets; an Explanation names the evidence — which base of the
// pointed hedge representation consumed which ancestor. Produced by
// Query.Explain and, per streamed match, by SelectOptions.Explain. The
// JSON encoding (field order above) is stable.
type Explanation struct {
	// Query is the query source.
	Query string `json:"query"`
	// Path is the located node's Dewey path.
	Path string `json:"path"`
	// Subhedge reports that the query's select(e1; ...) subhedge
	// condition was checked and passed.
	Subhedge bool `json:"subhedge,omitempty"`
	// Steps runs from the top level down to the located node.
	Steps []ExplainStep `json:"steps"`
}

// String renders the explanation as indented text, one line per level.
func (ex *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s matches %q", ex.Path, ex.Query)
	if ex.Subhedge {
		b.WriteString(" (subhedge condition passed)")
	}
	b.WriteByte('\n')
	for _, st := range ex.Steps {
		fmt.Fprintf(&b, "  %-10s state %-3d fired %s", st.Element, st.State, st.Fired)
		if len(st.Candidates) > 1 {
			fmt.Fprintf(&b, "  (candidates: %s)", strings.Join(st.Candidates, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON encodes the explanation as indented JSON.
func (ex *Explanation) JSON() (string, error) {
	b, err := json.MarshalIndent(ex, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// newExplanation renders a core witness against the compilation that
// produced it (base indices are meaningless without it).
func newExplanation(cq *core.CompiledQuery, src string, w *core.Witness) *Explanation {
	ex := &Explanation{Query: src, Path: w.Path.String(), Subhedge: w.Subhedge,
		Steps: make([]ExplainStep, len(w.Levels))}
	for i, lv := range w.Levels {
		st := ExplainStep{Element: lv.Name, State: lv.State,
			Candidates: make([]string, len(lv.Candidates))}
		for j, c := range lv.Candidates {
			st.Candidates[j] = cq.BaseString(c)
		}
		if lv.Fired >= 0 {
			st.Fired = cq.BaseString(lv.Fired)
		}
		ex.Steps[i] = st
	}
	return ex
}

// Explain evaluates the query over the document and returns one
// Explanation per located node, in document order — the same nodes
// Select locates, each with the envelope evidence reconstructed. It is
// a diagnostic surface: unlike Matches it allocates per match and per
// level; use it to audit a query, not to drive throughput.
func (q *Query) Explain(d *Document) []Explanation {
	cq := q.compiled()
	var out []Explanation
	cq.ExplainEach(d.hedge, func(w core.Witness, _ *hedge.Node) bool {
		out = append(out, *newExplanation(cq, q.src, &w))
		return true
	})
	return out
}
