package xpe

// One testing.B benchmark per experiment of DESIGN.md §3. The paper
// (a theory paper) has no measured tables; each bench regenerates one of
// its complexity claims — see EXPERIMENTS.md for the recorded shapes.
// cmd/xpebench prints the same data as human-readable tables.

import (
	"fmt"
	"math/rand"
	"testing"

	"xpe/internal/core"
	"xpe/internal/experiments"
	"xpe/internal/gen"
	"xpe/internal/ha"
	"xpe/internal/hedge"
	"xpe/internal/hre"
	"xpe/internal/schema"
	"xpe/internal/xpath"
)

func mustCompile(b *testing.B, names *ha.Names, src string) *core.CompiledQuery {
	b.Helper()
	cq, err := experiments.CompileQuery(names, src)
	if err != nil {
		b.Fatal(err)
	}
	return cq
}

// BenchmarkE1HREEvalLinear — Theorem 3 / §6: evaluating the e₁ side of a
// selection query is linear in document size (ns/node roughly constant
// across sub-benchmarks).
func BenchmarkE1HREEvalLinear(b *testing.B) {
	names := experiments.NewDocEnv()
	cq := mustCompile(b, names, experiments.SelectQuery)
	for _, n := range []int{1000, 10000, 100000} {
		doc := gen.Document(gen.DefaultDocConfig(), n)
		b.Run(fmt.Sprintf("nodes=%d", doc.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cq.Select(doc)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(doc.Size()), "ns/node")
		})
	}
}

// BenchmarkE2PHREvalLinear — Algorithm 1 (§7): two depth-first traversals,
// linear in document size.
func BenchmarkE2PHREvalLinear(b *testing.B) {
	names := experiments.NewDocEnv()
	cq := mustCompile(b, names, experiments.SiblingQuery)
	for _, n := range []int{1000, 10000, 100000} {
		doc := gen.Document(gen.DefaultDocConfig(), n)
		b.Run(fmt.Sprintf("nodes=%d", doc.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cq.Select(doc)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(doc.Size()), "ns/node")
		})
	}
}

// BenchmarkE3Determinize — §6: compilation (determinization) is exponential
// on the adversarial k-th-from-end family, flat on a typical family.
func BenchmarkE3Determinize(b *testing.B) {
	for _, k := range []int{2, 4, 6, 8, 10} {
		b.Run(fmt.Sprintf("adversarial/k=%d", k), func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				names := ha.NewNames()
				for _, s := range []string{"a", "b", "c", "r"} {
					names.Syms.Intern(s)
				}
				c, err := core.CompilePHR(core.MustParsePHR(gen.KthFromEndPHR(k)), names)
				if err != nil {
					b.Fatal(err)
				}
				states = c.MaxComponentStates()
			}
			b.ReportMetric(float64(states), "dfa-states")
		})
		b.Run(fmt.Sprintf("typical/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				names := ha.NewNames()
				names.Syms.Intern("c")
				names.Syms.Intern("r")
				if _, err := core.CompilePHR(core.MustParsePHR(gen.TypicalPHR(k)), names); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4TwoPassVsNaive — §7: Algorithm 1 vs per-node definitional
// matching; the gap widens with document size.
func BenchmarkE4TwoPassVsNaive(b *testing.B) {
	names := experiments.NewDocEnv()
	phr := core.MustParsePHR(experiments.SiblingQuery)
	compiled, err := core.CompilePHR(phr, names)
	if err != nil {
		b.Fatal(err)
	}
	naive, err := core.NewNaiveMatcher(phr, names)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{300, 1000, 3000} {
		doc := gen.Document(gen.DefaultDocConfig(), n)
		b.Run(fmt.Sprintf("alg1/nodes=%d", doc.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				compiled.Locate(doc)
			}
		})
		b.Run(fmt.Sprintf("naive/nodes=%d", doc.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := naive.LocateAll(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5Baselines — §1/§2: the PHR engine vs the XPath subset vs
// classical path expressions on a 30k-node document.
func BenchmarkE5Baselines(b *testing.B) {
	names := experiments.NewDocEnv()
	doc := gen.Document(gen.DefaultDocConfig(), 30000)
	xdoc := xpath.NewDoc(doc)

	vertical := mustCompile(b, names, experiments.PathQuery)
	sibling := mustCompile(b, names, experiments.SiblingQuery)
	xpVert := xpath.MustParse("/doc//figure")
	xpSib := xpath.MustParse("//figure[following-sibling::*[1][self::table]]")

	b.Run("vertical/phr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vertical.Select(doc)
		}
	})
	b.Run("vertical/xpath", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			xpVert.Select(xdoc)
		}
	})
	b.Run("sibling/phr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sibling.Select(doc)
		}
	})
	b.Run("sibling/xpath", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			xpSib.Select(xdoc)
		}
	})
}

// BenchmarkE6SchemaTransform — §8: select/delete output-schema
// construction across input-grammar sizes.
func BenchmarkE6SchemaTransform(b *testing.B) {
	for _, k := range []int{1, 2, 3} {
		names := ha.NewNames()
		s, err := schema.ParseGrammar(experiments.LayeredGrammar(k), names)
		if err != nil {
			b.Fatal(err)
		}
		layers := "doc"
		for i := 1; i <= k; i++ {
			layers += fmt.Sprintf("|section%d", i)
		}
		cq, err := experiments.CompileQuery(names, fmt.Sprintf("figure (%s)*", layers))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("select/layers=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := schema.TransformSelect(s, cq, schema.Subtrees); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("delete/layers=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := schema.TransformDelete(s, cq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7HADeterminize — Theorem 1: hedge-automaton subset construction
// on adversarial horizontal languages.
func BenchmarkE7HADeterminize(b *testing.B) {
	for _, k := range []int{2, 4, 6, 8} {
		src := fmt.Sprintf("r<(a | b)* b%s>", repeat(" (a | b)", k-1))
		e := hre.MustParse(src)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				names := ha.NewNames()
				nha, err := hre.Compile(e, names)
				if err != nil {
					b.Fatal(err)
				}
				det := nha.Determinize()
				for _, hz := range det.DHA.Horiz {
					if hz != nil && hz.DFA.NumStates > states {
						states = hz.DFA.NumStates
					}
				}
			}
			b.ReportMetric(float64(states), "horiz-dfa-states")
		})
	}
}

func repeat(s string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += s
	}
	return out
}

// BenchmarkAblationMinimize — design-choice ablation (DESIGN.md §4):
// minimizing the sibling membership DFAs costs compile time and saves
// evaluation-time automaton size; this measures both configurations of
// compile and evaluation on the sibling query.
func BenchmarkAblationMinimize(b *testing.B) {
	doc := gen.Document(gen.DefaultDocConfig(), 30000)
	for _, cfg := range []struct {
		name string
		opts core.Options
	}{
		{"minimized", core.Options{}},
		{"unminimized", core.Options{SkipMinimize: true}},
	} {
		names := experiments.NewDocEnv()
		phr := core.MustParsePHR(experiments.SiblingQuery)
		compiled, err := core.CompilePHROpt(phr, names, cfg.opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("compile/"+cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				names2 := experiments.NewDocEnv()
				if _, err := core.CompilePHROpt(core.MustParsePHR(experiments.SiblingQuery), names2, cfg.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("eval/"+cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				compiled.Locate(doc)
			}
			b.ReportMetric(float64(compiled.MaxComponentStates()), "dfa-states")
		})
	}
}

// BenchmarkE8PointedAlgebra — Figures 1–2: pointed-hedge product and
// decomposition throughput.
func BenchmarkE8PointedAlgebra(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := hedge.DefaultRandConfig()
	us := make([]hedge.Hedge, 64)
	vs := make([]hedge.Hedge, 64)
	for i := range us {
		us[i] = hedge.RandomPointed(rng, cfg)
		vs[i] = hedge.RandomPointed(rng, cfg)
	}
	b.Run("product", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hedge.Product(us[i%64], vs[i%64]); err != nil {
				b.Fatal(err)
			}
		}
	})
	prods := make([]hedge.Hedge, 64)
	for i := range prods {
		prods[i] = hedge.MustProduct(us[i], vs[i])
	}
	b.Run("decompose", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hedge.Decompose(prods[i%64]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
