package xpe

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// TestSelectStreamBatchSize: the streamed match set is invariant over the
// handoff batch size, for both worker shapes, including record-at-a-time
// and batches larger than the stream.
func TestSelectStreamBatchSize(t *testing.T) {
	docs, corpus := buildCorpus(t, 6)
	eng := NewEngine()
	if _, err := eng.ParseXMLString(corpus); err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("select(figure*; [* ; section ; *] (section|doc)*)")
	if err != nil {
		t.Fatal(err)
	}

	var want strings.Builder
	for i, d := range docs {
		for _, m := range q.Select(eng.FromHedge(d)) {
			fmt.Fprintf(&want, "%d|%s|%s\n", i, m.Path, m.Term)
		}
	}

	for _, workers := range []int{1, 4} {
		for _, bs := range []int{0, 1, 3, 1000} {
			var got strings.Builder
			stats, err := eng.SelectStream(context.Background(), strings.NewReader(corpus), q,
				SelectOptions{Workers: workers, BatchSize: bs},
				func(m StreamMatch) error {
					fmt.Fprintf(&got, "%d|%s|%s\n", m.Record, m.Path, m.Term)
					return nil
				})
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, bs, err)
			}
			if got.String() != want.String() {
				t.Errorf("workers=%d batch=%d: match set differs from in-memory Select", workers, bs)
			}
			if stats.Records != int64(len(docs)) {
				t.Errorf("workers=%d batch=%d: records = %d, want %d", workers, bs, stats.Records, len(docs))
			}
		}
	}
}

// TestSelectStreamReuseBuffers: with ReuseBuffers the Path/Term views are
// correct while the yield callback runs — copying them there must
// reproduce the default run exactly — even though the backing buffers are
// recycled between yields.
func TestSelectStreamReuseBuffers(t *testing.T) {
	_, corpus := buildCorpus(t, 4)
	eng := NewEngine()
	if _, err := eng.ParseXMLString(corpus); err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("[* ; figure ; table .] (section|doc)*")
	if err != nil {
		t.Fatal(err)
	}

	run := func(opts SelectOptions) []string {
		var lines []string
		_, err := eng.SelectStream(context.Background(), strings.NewReader(corpus), q, opts,
			func(m StreamMatch) error {
				// strings.Clone materializes the view inside its validity
				// window — the documented pattern for retaining a match.
				lines = append(lines, fmt.Sprintf("%d|%s|%s|%s",
					m.Record, strings.Clone(m.RecordPath), strings.Clone(m.Path), strings.Clone(m.Term)))
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return lines
	}

	for _, workers := range []int{1, 4} {
		plain := run(SelectOptions{Workers: workers})
		reused := run(SelectOptions{Workers: workers, ReuseBuffers: true})
		if len(plain) == 0 {
			t.Fatalf("workers=%d: no matches; the corpus should produce some", workers)
		}
		if strings.Join(plain, "\n") != strings.Join(reused, "\n") {
			t.Errorf("workers=%d: ReuseBuffers run differs from the default run\nplain:\n%s\nreused:\n%s",
				workers, strings.Join(plain, "\n"), strings.Join(reused, "\n"))
		}
	}
}

// TestEngineSelect: the shared Select entry point matches Query.Select,
// honors ctx cancellation, and populates Explanation / Trace / Metrics
// from the options subset that applies in memory.
func TestEngineSelect(t *testing.T) {
	eng := NewEngine()
	doc, err := eng.ParseXMLString(`<doc><section><figure/><table/></section><section><figure/></section></doc>`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("[* ; figure ; table .] (section|doc)*")
	if err != nil {
		t.Fatal(err)
	}

	want := q.Select(doc)
	got, err := eng.Select(context.Background(), doc, q, SelectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Select returned %d matches, Query.Select %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Path != want[i].Path || got[i].Term != want[i].Term {
			t.Errorf("match %d: got %s %s, want %s %s", i, got[i].Path, got[i].Term, want[i].Path, want[i].Term)
		}
		if got[i].Explanation != nil {
			t.Errorf("match %d: Explanation set without Explain", i)
		}
	}

	t.Run("explain", func(t *testing.T) {
		ms, err := eng.Select(context.Background(), doc, q, SelectOptions{Explain: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != len(want) {
			t.Fatalf("explain run returned %d matches, want %d", len(ms), len(want))
		}
		for i, m := range ms {
			if m.Explanation == nil || m.Explanation.String() == "" {
				t.Errorf("match %d: missing explanation", i)
			}
		}
	})

	t.Run("trace", func(t *testing.T) {
		fr := NewFlightRecorder(8)
		if _, err := eng.Select(context.Background(), doc, q, SelectOptions{Trace: fr}); err != nil {
			t.Fatal(err)
		}
		if fr.Total() != 1 {
			t.Fatalf("recorder committed %d traces, want 1 per document", fr.Total())
		}
		rt := fr.Traces()[0]
		if rt.Matches != len(want) || rt.Outcome != "ok" {
			t.Errorf("doc trace = %+v, want ok with %d matches", rt, len(want))
		}
	})

	t.Run("metrics", func(t *testing.T) {
		sink := NewMetricsSink()
		if _, err := eng.Select(context.Background(), doc, q, SelectOptions{Metrics: sink}); err != nil {
			t.Fatal(err)
		}
		if sink.Stats().Eval.Docs == 0 {
			t.Error("per-run metrics sink saw no evaluated documents")
		}
	})

	t.Run("canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := eng.Select(ctx, doc, q, SelectOptions{}); err == nil {
			t.Error("Select with a canceled context returned nil error")
		}
	})
}
