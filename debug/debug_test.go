package debug

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"xpe"
	"xpe/internal/telemetry"
)

// newTestEngine returns an engine with one evaluated query and an
// attached recorder, so every debug endpoint has something to show.
func newTestEngine(t *testing.T) (*xpe.Engine, *xpe.FlightRecorder) {
	t.Helper()
	eng := xpe.NewEngine()
	rec := xpe.NewFlightRecorder(8)
	eng.SetFlightRecorder(rec)
	doc, err := eng.ParseTerm("doc<sec<fig> sec<fig>>")
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("fig sec* doc*")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(q.Select(doc)); got != 2 {
		t.Fatalf("located %d, want 2", got)
	}
	return eng, rec
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	return rw.Code, rw.Body.String()
}

func TestHandlerEndpoints(t *testing.T) {
	eng, _ := newTestEngine(t)
	h := Handler(Options{Engine: eng})

	code, body := get(t, h, "/debug/xpe/")
	if code != 200 || !strings.Contains(body, "/debug/xpe/traces") {
		t.Errorf("index: code %d, body %q", code, body)
	}

	code, body = get(t, h, "/debug/xpe/stats")
	if code != 200 {
		t.Fatalf("stats: code %d", code)
	}
	var stats map[string]any
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("stats is not JSON: %v", err)
	}
	if _, ok := stats["eval"]; !ok {
		t.Errorf("stats missing eval section: %v", stats)
	}

	code, body = get(t, h, "/debug/xpe/metrics")
	if code != 200 {
		t.Fatalf("metrics: code %d", code)
	}
	if err := telemetry.Lint(body); err != nil {
		t.Fatalf("metrics page fails strict parse: %v", err)
	}
	// The Select above visited nodes; the counter must be on the page.
	if !strings.Contains(body, "xpe_eval_docs_total 1\n") ||
		!strings.Contains(body, "# TYPE xpe_go_goroutines gauge\n") {
		t.Errorf("metrics page missing engine counters or runtime gauges:\n%s", body)
	}

	code, body = get(t, h, "/debug/xpe/cache")
	if code != 200 {
		t.Fatalf("cache: code %d", code)
	}
	var info xpe.CacheInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("cache is not JSON: %v", err)
	}
	if info.Entries < 1 || info.Capacity < info.Entries {
		t.Errorf("cache info = %+v, want >=1 entry within capacity", info)
	}

	code, body = get(t, h, "/debug/xpe/traces")
	if code != 200 {
		t.Fatalf("traces: code %d", code)
	}
	var traces []xpe.RecordTrace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("traces is not JSON: %v", err)
	}
	// The engine recorder saw the Select above (Index -1, doc eval).
	if len(traces) != 1 || traces[0].Index != -1 || traces[0].Matches != 2 {
		t.Errorf("traces = %+v, want one doc-eval trace with 2 matches", traces)
	}

	if code, _ = get(t, h, "/debug/xpe/nonsense"); code != 404 {
		t.Errorf("unknown path: code %d, want 404", code)
	}
	if code, _ = get(t, h, "/debug/pprof/cmdline"); code != 200 {
		t.Errorf("pprof cmdline: code %d", code)
	}
}

func TestHandlerExplicitRecorderWins(t *testing.T) {
	eng, _ := newTestEngine(t)
	other := xpe.NewFlightRecorder(4)
	h := Handler(Options{Engine: eng, Recorder: other})
	_, body := get(t, h, "/debug/xpe/traces")
	var traces []xpe.RecordTrace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 0 {
		t.Errorf("explicit empty recorder should win over the engine's: %v", traces)
	}
}

func TestHandlerNoEngine(t *testing.T) {
	h := Handler(Options{})
	if code, _ := get(t, h, "/debug/xpe/stats"); code != 404 {
		t.Errorf("stats without engine: code %d, want 404", code)
	}
	// traces degrades to an empty list, not an error.
	code, body := get(t, h, "/debug/xpe/traces")
	if code != 200 || strings.TrimSpace(body) != "[]" {
		t.Errorf("traces without recorder: code %d, body %q, want 200 []", code, body)
	}
}

// TestDebugServerShutdownLeak pins the Close contract: after Close
// returns, none of the server's goroutines remain (serve loop, per-conn
// handlers). The check tolerates unrelated runtime goroutines by
// comparing counts with retries.
func TestDebugServerShutdownLeak(t *testing.T) {
	eng, _ := newTestEngine(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		srv, err := NewServer("127.0.0.1:0", Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get("http://" + srv.Addr() + "/debug/xpe/stats")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadAll(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if err := srv.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	// The client side of the loopback connections (http.DefaultClient's
	// idle pool) may linger briefly; give the runtime a moment to settle.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across server lifecycles: %d before, %d after", before, after)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
