// Package debug exposes a live operational surface for an xpe.Engine
// over HTTP: cumulative engine stats, compiled-query cache state, the
// recent record traces of a flight recorder, and the standard pprof
// profiles — the "what is the engine doing right now" endpoints, mounted
// in one call.
//
// Mount the handler into an existing mux:
//
//	mux.Handle("/debug/", debug.Handler(debug.Options{Engine: eng}))
//
// or run a dedicated server (as xpeselect -debug-addr does):
//
//	srv, err := debug.NewServer("localhost:6060", debug.Options{
//		Engine:   eng,
//		Recorder: rec,
//	})
//	defer srv.Close()
//
// Endpoints under /debug/xpe/: index, stats, metrics (Prometheus text
// exposition), cache, traces; pprof lives
// at its conventional /debug/pprof/ paths. The surface is read-only but
// unauthenticated (and pprof profiles reveal code structure) — bind it
// to localhost or guard it like any pprof listener.
package debug

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"xpe"
	"xpe/internal/telemetry"
)

// Options configures the debug surface.
type Options struct {
	// Engine is the engine to expose; /debug/xpe/stats and /debug/xpe/cache
	// answer 404 without one.
	Engine *xpe.Engine
	// Recorder backs /debug/xpe/traces. Nil falls back to the Engine's
	// attached recorder (Engine.SetFlightRecorder) at each request, so a
	// recorder attached after the server starts is picked up live.
	Recorder *xpe.FlightRecorder
}

// recorder resolves the trace source for one request.
func (o Options) recorder() *xpe.FlightRecorder {
	if o.Recorder != nil {
		return o.Recorder
	}
	if o.Engine != nil {
		return o.Engine.FlightRecorder()
	}
	return nil
}

// Handler returns the debug surface as a single http.Handler serving
// the /debug/xpe/ and /debug/pprof/ trees. It can be mounted on any mux
// (the returned handler routes by full path, so mount it at "/debug/"
// or at the root).
func Handler(opts Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/xpe/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/xpe/" && r.URL.Path != "/debug/xpe" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><head><title>xpe debug</title></head><body>
<h1>xpe debug</h1>
<ul>
<li><a href="/debug/xpe/stats">stats</a> — cumulative engine instrumentation</li>
<li><a href="/debug/xpe/metrics">metrics</a> — the same counters as Prometheus text exposition</li>
<li><a href="/debug/xpe/cache">cache</a> — compiled-query cache occupancy</li>
<li><a href="/debug/xpe/traces">traces</a> — flight-recorder ring (recent record traces)</li>
<li><a href="/debug/pprof/">pprof</a> — runtime profiles</li>
</ul>
</body></html>
`)
	})
	mux.HandleFunc("/debug/xpe/stats", func(w http.ResponseWriter, r *http.Request) {
		if opts.Engine == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := xpe.WriteStats(w, opts.Engine.Stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/xpe/metrics", func(w http.ResponseWriter, r *http.Request) {
		if opts.Engine == nil {
			http.NotFound(w, r)
			return
		}
		// The library-side exposition: engine counters plus process
		// runtime gauges. The serving layer's /metrics adds the serve
		// counters and dimensional rollups on top of the same families.
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		t := telemetry.NewWriter(w)
		telemetry.AppendEngine(t, opts.Engine.Stats())
		telemetry.AppendRuntime(t)
	})
	mux.HandleFunc("/debug/xpe/cache", func(w http.ResponseWriter, r *http.Request) {
		if opts.Engine == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(opts.Engine.CacheInfo()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/xpe/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// A nil recorder writes "[]": no recorder attached reads as no
		// traces, not as an error.
		if err := opts.recorder().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a dedicated HTTP server for the debug surface.
type Server struct {
	srv *http.Server
	ln  net.Listener
	// done closes when Serve returns, so Close can wait for the serve
	// goroutine instead of leaking it.
	done chan struct{}
}

// NewServer listens on addr (e.g. "localhost:6060"; ":0" picks a free
// port — read it back from Addr) and serves the debug surface until
// Close. The error is the listener's: a taken port fails here, not in
// the background.
func NewServer(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv:  &http.Server{Handler: Handler(opts)},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		// ErrServerClosed is the normal Shutdown outcome; anything else
		// has nowhere to go but the next Close call (stored by net/http).
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the server's listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down gracefully, waiting up to five seconds
// for in-flight requests (a hanging profile download is cut off), then
// waits for the serve goroutine to exit — after Close returns, no
// goroutine of this server remains.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Graceful drain timed out; hard-close the stragglers.
		closeErr := s.srv.Close()
		if err == context.DeadlineExceeded {
			err = closeErr
		}
	}
	<-s.done
	return err
}
