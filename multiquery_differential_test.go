package xpe

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// The multi-query differential harness: a shared-pass SelectStreamMulti
// run over N queries must produce, per query, exactly the match set of
// that query's own independent SelectStream run — across worker counts
// and with the prefilter on and off. This is the executable form of the
// shared-pass correctness argument: the union prefilter may only skip
// records no query can match, and the per-query evaluation gate may only
// drop (query, record) pairs whose required labels are provably absent.

// multiStreamAll runs one shared-pass evaluation and renders every match,
// bucketed by query index.
func multiStreamAll(t *testing.T, eng *Engine, qs []*Query, corpus string, opts SelectOptions) ([]string, StreamStats) {
	t.Helper()
	got := make([]strings.Builder, len(qs))
	stats, err := eng.SelectStreamMulti(context.Background(), strings.NewReader(corpus), qs, opts,
		func(m MultiStreamMatch) error {
			fmt.Fprintf(&got[m.Query], "%d|%s|%s|%s\n", m.Record, m.RecordPath, m.Path, m.Term)
			return nil
		})
	if err != nil {
		t.Fatalf("SelectStreamMulti: %v", err)
	}
	out := make([]string, len(qs))
	for i := range got {
		out[i] = got[i].String()
	}
	return out, stats
}

func TestDifferentialMultiQuery(t *testing.T) {
	corpus := diffCorpus(t, 5)
	eng := NewEngine()
	if _, err := eng.ParseXMLString(corpus); err != nil {
		t.Fatal(err)
	}
	qs := make([]*Query, len(diffQueries))
	for i, src := range diffQueries {
		q, err := eng.CompileQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		qs[i] = q
	}

	// References: each query's own single-query streaming run, prefilter
	// off, sequential — the most direct evaluation path.
	want := make([]string, len(qs))
	var wantMatches, refRecords int64
	for i, q := range qs {
		out, st := streamAll(t, eng, q, corpus, SelectOptions{Workers: 1, Prefilter: PrefilterOff})
		want[i] = out
		wantMatches += st.Matches
		refRecords = st.Records
	}

	for _, workers := range []int{1, 4} {
		for _, mode := range []PrefilterMode{PrefilterAuto, PrefilterOff} {
			name := fmt.Sprintf("workers=%d/prefilter=%v", workers, mode == PrefilterAuto)
			got, stats := multiStreamAll(t, eng, qs, corpus,
				SelectOptions{Workers: workers, Prefilter: mode})
			for i, src := range diffQueries {
				if got[i] != want[i] {
					t.Errorf("%s: query %d (%s): match sets differ\ngot:\n%s\nwant:\n%s",
						name, i, src, got[i], want[i])
				}
			}
			if stats.Matches != wantMatches {
				t.Errorf("%s: Matches = %d, want %d", name, stats.Matches, wantMatches)
			}
			// The shared pass sees every record exactly once: skips move
			// records from Records to Prefiltered, nothing else.
			if got := stats.Records + stats.Prefiltered; got != refRecords {
				t.Errorf("%s: Records+Prefiltered = %d, want %d", name, got, refRecords)
			}
			if mode == PrefilterOff && stats.Prefiltered != 0 {
				t.Errorf("%s: Prefiltered = %d with the prefilter off", name, stats.Prefiltered)
			}
			// One query has an empty requirement set, so no record can be
			// skipped whole — the union prefilter must degrade to gating
			// only.
			if mode == PrefilterAuto && stats.Prefiltered != 0 {
				t.Errorf("%s: Prefiltered = %d, but an unfiltered query is registered", name, stats.Prefiltered)
			}
		}
	}

	// Without the unfiltered query the union prefilter must actually skip:
	// the corpus has sparse records lacking figure and table.
	selective := qs[:5]
	got, stats := multiStreamAll(t, eng, selective, corpus,
		SelectOptions{Workers: 1, Prefilter: PrefilterAuto})
	for i := range selective {
		if got[i] != want[i] {
			t.Errorf("selective: query %d (%s): match sets differ", i, diffQueries[i])
		}
	}
	if stats.Prefiltered == 0 {
		t.Error("selective query set: union prefilter skipped nothing; corpus lost its selectivity")
	}
	if got := stats.Records + stats.Prefiltered; got != refRecords {
		t.Errorf("selective: Records+Prefiltered = %d, want %d", got, refRecords)
	}

	// A duplicated query must simply report its matches twice, under two
	// indices.
	dup := []*Query{qs[0], qs[0]}
	gotDup, _ := multiStreamAll(t, eng, dup, corpus, SelectOptions{Workers: 1})
	if gotDup[0] != want[0] || gotDup[1] != want[0] {
		t.Error("duplicated query: per-index match sets differ from the single-query run")
	}
}

// TestDifferentialMultiQueryNamespacePrefixes pins the prefilter's label
// matching against namespace-prefixed and mixed-case tags in the
// multi-query gate too: the tokenizer strips prefixes at the first colon,
// so required label "price" must hit <ns:price>, and matching is
// byte-exact on case for both sides of the comparison. A gate that
// dropped a (query, record) pair the evaluator would match is exactly the
// skip-a-matching-record bug class this guards against.
func TestDifferentialMultiQueryNamespacePrefixes(t *testing.T) {
	corpus := `<corpus>` +
		`<doc><ns:price>10</ns:price></doc>` +
		`<doc><Price>20</Price></doc>` +
		`<doc><price currency="EUR">30</price></doc>` +
		`<doc><quote price="yes"><!-- price --></quote></doc>` +
		`<doc><sku/></doc>` +
		`</corpus>`
	eng := NewEngine()
	if _, err := eng.ParseXMLString(corpus); err != nil {
		t.Fatal(err)
	}
	sources := []string{
		"price doc* *",     // hits records 0 and 2 (prefix stripped)
		"Price doc* *",     // hits record 1 only (case is significant)
		"(quote|sku) doc*", // decoy-adjacent labels
	}
	qs := make([]*Query, len(sources))
	for i, src := range sources {
		q, err := eng.CompileQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		qs[i] = q
	}
	want := make([]string, len(qs))
	for i, q := range qs {
		want[i], _ = streamAll(t, eng, q, corpus, SelectOptions{Workers: 1, Prefilter: PrefilterOff})
		if want[i] == "" {
			t.Fatalf("query %q matched nothing; fixture lost its point", sources[i])
		}
	}
	for _, mode := range []PrefilterMode{PrefilterAuto, PrefilterOff} {
		got, _ := multiStreamAll(t, eng, qs, corpus, SelectOptions{Workers: 1, Prefilter: mode})
		for i := range qs {
			if got[i] != want[i] {
				t.Errorf("prefilter=%v: query %q: got:\n%swant:\n%s",
					mode == PrefilterAuto, sources[i], got[i], want[i])
			}
		}
	}
}

// TestDifferentialMultiQueryWide pins the shared pass past the 64-query
// word boundary: with more than 64 registered queries the per-record
// verdict spills into Hint's overflow words, and every query — in
// particular those with index >= 64 — must still produce exactly its
// independent run's match set. Before the hint widened to a word-slice,
// query indices past 63 degraded to evaluate-everything at best and to
// aliased gating at worst; this is the differential pin for both.
func TestDifferentialMultiQueryWide(t *testing.T) {
	const nq = 80
	var b strings.Builder
	b.WriteString("<corpus>")
	// Each record carries exactly one field label, cycling through all nq,
	// so query i matches records i, i+nq, ... and nothing else. Interleaved
	// decoys carry a label no query requires: the union prefilter must
	// skip them whole.
	const docs = 3 * nq
	for i := 0; i < docs; i++ {
		fmt.Fprintf(&b, "<doc><f%03d>v%d</f%03d></doc><doc><zz/></doc>", i%nq, i, i%nq)
	}
	b.WriteString("</corpus>")
	corpus := b.String()

	eng := NewEngine()
	if _, err := eng.ParseXMLString(corpus); err != nil {
		t.Fatal(err)
	}
	qs := make([]*Query, nq)
	for i := range qs {
		src := fmt.Sprintf("f%03d doc* *", i)
		q, err := eng.CompileQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		qs[i] = q
	}

	want := make([]string, nq)
	var wantMatches, refRecords int64
	for i, q := range qs {
		out, st := streamAll(t, eng, q, corpus, SelectOptions{Workers: 1, Prefilter: PrefilterOff})
		if out == "" {
			t.Fatalf("query %d matched nothing; fixture lost its point", i)
		}
		want[i] = out
		wantMatches += st.Matches
		refRecords = st.Records
	}

	for _, workers := range []int{1, 4} {
		for _, mode := range []PrefilterMode{PrefilterAuto, PrefilterOff} {
			name := fmt.Sprintf("workers=%d/prefilter=%v", workers, mode == PrefilterAuto)
			got, stats := multiStreamAll(t, eng, qs, corpus,
				SelectOptions{Workers: workers, Prefilter: mode})
			for i := range qs {
				if got[i] != want[i] {
					t.Errorf("%s: query %d: match sets differ\ngot:\n%swant:\n%s",
						name, i, got[i], want[i])
				}
			}
			if stats.Matches != wantMatches {
				t.Errorf("%s: Matches = %d, want %d", name, stats.Matches, wantMatches)
			}
			if got := stats.Records + stats.Prefiltered; got != refRecords {
				t.Errorf("%s: Records+Prefiltered = %d, want %d", name, got, refRecords)
			}
			if mode == PrefilterAuto && stats.Prefiltered != docs {
				t.Errorf("%s: Prefiltered = %d, want %d decoy records skipped",
					name, stats.Prefiltered, docs)
			}
			if mode == PrefilterOff && stats.Prefiltered != 0 {
				t.Errorf("%s: Prefiltered = %d with the prefilter off", name, stats.Prefiltered)
			}
		}
	}
}
