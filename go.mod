module xpe

go 1.22
