module xpe

go 1.23
