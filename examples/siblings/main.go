// Siblings: a walkthrough of the paper's formal machinery on its own
// worked examples — pointed hedges, the product ⊕ (Figure 1), the unique
// decomposition into pointed base hedges (Figure 2), and the Section 5/6
// selection examples.
package main

import (
	"fmt"
	"log"

	"xpe"
	"xpe/internal/hedge"
)

func main() {
	// Figure 1: (a⟨x⟩b⟨η⟩) ⊕ (a⟨x⟩b⟨c⟨η⟩y⟩).
	u := hedge.MustParse("a<$x> b<@>")
	v := hedge.MustParse("a<$x> b<c<@> $y>")
	prod, err := hedge.Product(u, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("u          =", u)
	fmt.Println("v          =", v)
	fmt.Println("u ⊕ v      =", prod)

	// Figure 2: decomposition of v, bottom-to-top.
	bases, err := hedge.Decompose(v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decompose v:")
	for i, b := range bases {
		fmt.Printf("  base %d   = %s\n", i+1, b)
	}

	// Section 5: (a⟨z⟩*^z, b, a⟨z⟩*^z)* locates b-labeled nodes all of
	// whose ancestors are b while every other node is a.
	eng := xpe.NewEngine()
	q, err := eng.CompileQuery("[a<~z>*^z ; b ; a<~z>*^z]*")
	if err != nil {
		log.Fatal(err)
	}
	for _, term := range []string{
		"a b<a b<a>> a", // both b nodes qualify
		"a b<b> b",      // the younger sibling b disqualifies everything
	} {
		doc, err := eng.ParseTerm(term)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s on %q locates:", q, term)
		ms := q.Select(doc)
		if len(ms) == 0 {
			fmt.Print(" nothing")
		}
		for _, m := range ms {
			fmt.Printf(" %s", m.Path)
		}
		fmt.Println()
	}

	// Section 6: select((b|x)*, (ε,a,b)(b,a,ε)) on ba⟨a⟨bx⟩b⟩ locates the
	// first second-level node of the second top-level node.
	doc, err := eng.ParseTerm("b a<a<b $x> b>")
	if err != nil {
		log.Fatal(err)
	}
	q6, err := eng.CompileQuery("select((b | $x)*; [() ; a ; b] [b ; a ; ()])")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s on %q locates:", q6, doc.Term())
	for _, m := range q6.Select(doc) {
		fmt.Printf(" %s (%s)", m.Path, m.Term)
	}
	fmt.Println()
}
