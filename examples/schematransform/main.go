// Schematransform: Section 8 end-to-end — given an input grammar and a
// selection query, compute the output schema of the query's results and of
// deleting the located nodes, then demonstrate both on documents.
package main

import (
	"fmt"
	"log"

	"xpe"
)

const grammar = `
start = doc
element doc { (section | para)* }
element section { (section | figure | para)* }
element figure { empty }
element para { text* }
`

func main() {
	eng := xpe.NewEngine()
	sch, err := eng.ParseSchema(grammar)
	if err != nil {
		log.Fatal(err)
	}

	// Sections that contain only figures.
	q, err := eng.CompileQuery("select(figure*; [* ; section ; *] (section|doc)*)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input grammar:", "doc{(section|para)*}, section{(section|figure|para)*}, ...")
	fmt.Println("query:        ", q)

	selOut, err := sch.TransformSelect(q, xpe.Subtrees)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nselect output schema (subtree shape) — membership checks:")
	for _, term := range []string{
		"section",
		"section<figure figure>",
		"section<para>",
		"section<section<figure>>",
		"doc",
	} {
		d, err := eng.ParseTerm(term)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s ∈ output? %v\n", term, selOut.Validate(d))
	}

	delOut, err := sch.TransformDelete(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndelete transformation on documents:")
	for _, term := range []string{
		"doc<section<figure figure> para>",
		"doc<section<figure para> section<figure>>",
	} {
		d, err := eng.ParseTerm(term)
		if err != nil {
			log.Fatal(err)
		}
		deleted := q.Delete(d)
		fmt.Printf("  %-44s → %-30s (in: %v, out-schema: %v)\n",
			term, deleted.Term(), sch.Validate(d), delOut.Validate(deleted))
	}
}
