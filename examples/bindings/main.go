// Bindings: the paper's Section 9 extensions in action — XPath translation
// into pointed hedge representations, variable bindings on unambiguous
// representations, and the ambiguity check that guards them.
package main

import (
	"fmt"
	"log"

	"xpe"
)

func main() {
	eng := xpe.NewEngine()
	doc, err := eng.ParseXMLString(`
<doc>
  <chapter id="1st">
    <section><figure/><table/></section>
    <section><figure/></section>
  </chapter>
  <chapter id="2nd">
    <section><figure/><caption>x</caption></section>
  </chapter>
</doc>`)
	if err != nil {
		log.Fatal(err)
	}

	// 1. XPath translation (Section 2): the sibling-aware fragment embeds
	// into extended path expressions.
	xp := "//figure[following-sibling::*[1][self::table]]"
	q, err := eng.CompileXPath(xp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XPath %q translated and evaluated by Algorithm 1:\n", xp)
	for _, m := range q.Select(doc) {
		fmt.Println("  located:", m.Path)
	}

	// 2. Variable bindings (Section 9): capture the chapter and section of
	// every figure.
	qb, err := eng.CompileQuery("figure@f [* ; section ; *]@sec [* ; chapter ; *]@ch [* ; doc ; *]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbindings unique: %v\n", qb.UniqueBindings())
	for _, m := range qb.SelectBindings(doc) {
		fmt.Printf("  figure %-8s", m.Path)
		for _, b := range m.Bindings {
			fmt.Printf("  %s=%s", b.Name, b.Path)
		}
		fmt.Println()
	}

	// 3. An ambiguous representation is flagged before anyone trusts its
	// bindings (the Section 9 safety condition).
	amb, err := eng.CompileQuery("figure (section@a | section@b) [* ; chapter ; *] [* ; doc ; *]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%q unique bindings? %v (a/b both match every section)\n", amb, amb.UniqueBindings())
}
