// Docbook: run extended path expressions over a generated docbook-like
// document and cross-check sibling-aware queries against the XPath-subset
// baseline engine.
package main

import (
	"fmt"
	"log"
	"time"

	"xpe"
	"xpe/internal/gen"
	"xpe/internal/xpath"
)

func main() {
	eng := xpe.NewEngine()

	// A ~20k-node generated document conforming to gen.DocGrammar.
	h := gen.Document(gen.DefaultDocConfig(), 20000)
	doc := eng.FromHedge(h)
	fmt.Printf("document: %d nodes\n", doc.Size())

	queries := []struct {
		name, phr, xp string
	}{
		{
			"figures under section chains",
			"figure section* [* ; doc ; *]",
			"/doc//figure",
		},
		{
			"figure immediately followed by table",
			"[* ; figure ; table .] (section|doc)*",
			"//figure[following-sibling::*[1][self::table]]",
		},
		{
			"tables with an elder figure sibling",
			"[. figure . ; table ; *] (section|doc)*",
			"//table[preceding-sibling::figure]",
		},
	}
	xdoc := xpath.NewDoc(doc.Hedge())
	for _, qd := range queries {
		q, err := eng.CompileQuery(qd.phr)
		if err != nil {
			log.Fatalf("%s: %v", qd.name, err)
		}
		t0 := time.Now()
		ours := q.Select(doc)
		dt := time.Since(t0)

		xp := xpath.MustParse(qd.xp)
		t1 := time.Now()
		theirs := xp.Select(xdoc)
		dx := time.Since(t1)

		status := "AGREE"
		if len(ours) != len(theirs) {
			status = fmt.Sprintf("MISMATCH (%d vs %d)", len(ours), len(theirs))
		}
		fmt.Printf("%-40s phr=%5d in %8s  xpath=%5d in %8s  %s\n",
			qd.name, len(ours), dt.Round(time.Microsecond),
			len(theirs), dx.Round(time.Microsecond), status)
	}

	// Beyond XPath: "every ancestor is a section" (the paper's a* example)
	// — expressible as a pointed hedge representation, not in the XPath
	// fragment.
	q, err := eng.CompileQuery("figure section*")
	if err != nil {
		log.Fatal(err)
	}
	top := q.Select(doc)
	fmt.Printf("figures whose EVERY ancestor is a section (no doc root): %d (expected 0 — all paths start at doc)\n", len(top))
}
