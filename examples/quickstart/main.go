// Quickstart: locate figures whose immediately following sibling is a
// table — the motivating example from the paper's introduction, which
// classical path expressions cannot express.
package main

import (
	"fmt"
	"log"

	"xpe"
)

func main() {
	eng := xpe.NewEngine()

	doc, err := eng.ParseXMLString(`
<article>
  <section>
    <figure/>
    <table/>
    <figure/>
    <para>text</para>
  </section>
  <section>
    <figure/>
  </section>
</article>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("document:", doc.Term())

	// A pointed hedge representation reads from the node's own level up to
	// the top: the figure's younger siblings start with a table; every
	// ancestor level is unconstrained section/article.
	q, err := eng.CompileQuery("[* ; figure ; table .] (section|article)*")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:   ", q)

	for _, m := range q.Select(doc) {
		fmt.Printf("located: %-8s %s\n", m.Path, m.Term)
	}

	// Classical path expressions are the special case with unconstrained
	// sibling sides: all figures under section chains.
	all, err := eng.CompileQuery("figure section* [* ; article ; *]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all figures under sections: %d\n", len(all.Select(doc)))
}
