package xpe

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"xpe/internal/faultinject"
)

// TestQueryExplainGolden pins the provenance surface end to end: the
// documented query/document pair from the README, the witness states and
// Dewey path, and the exact text rendering. The automaton states are
// stable for one compilation (fresh engine, fixed intern order), which is
// what this test constructs.
func TestQueryExplainGolden(t *testing.T) {
	eng := NewEngine()
	doc, err := eng.ParseTerm("doc<sec<sec<fig>>>")
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("fig sec* [* ; doc ; *]")
	if err != nil {
		t.Fatal(err)
	}
	exps := q.Explain(doc)
	if len(exps) != 1 {
		t.Fatalf("explained %d matches, want 1", len(exps))
	}
	ex := exps[0]
	if ex.Path != "1.1.1.1" || ex.Subhedge {
		t.Fatalf("explanation = %+v, want path 1.1.1.1 without a subhedge condition", ex)
	}
	wantElems := []string{"doc", "sec", "sec", "fig"}
	wantFired := []string{"doc", "sec", "sec", "fig"}
	wantStates := []int{1, 2, 2, 3}
	if len(ex.Steps) != len(wantElems) {
		t.Fatalf("steps = %+v, want %d levels", ex.Steps, len(wantElems))
	}
	for i, st := range ex.Steps {
		if st.Element != wantElems[i] || st.Fired != wantFired[i] || st.State != wantStates[i] {
			t.Errorf("step %d = %+v, want element %s state %d fired %s",
				i, st, wantElems[i], wantStates[i], wantFired[i])
		}
		found := false
		for _, c := range st.Candidates {
			if c == st.Fired {
				found = true
			}
		}
		if !found {
			t.Errorf("step %d: fired base %q not among candidates %v", i, st.Fired, st.Candidates)
		}
	}

	const wantText = `1.1.1.1 matches "fig sec* [* ; doc ; *]"
  doc        state 1   fired doc
  sec        state 2   fired sec
  sec        state 2   fired sec
  fig        state 3   fired fig
`
	if got := ex.String(); got != wantText {
		t.Errorf("text rendering:\n--- got ---\n%s--- want ---\n%s", got, wantText)
	}

	// The JSON encoding is stable: fixed field order, round-trippable.
	js, err := ex.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(js, "{\n  \"query\":") {
		t.Errorf("JSON does not lead with the query field:\n%s", js)
	}
	var back Explanation
	if err := json.Unmarshal([]byte(js), &back); err != nil {
		t.Fatalf("JSON does not round-trip: %v", err)
	}
	if back.Path != ex.Path || len(back.Steps) != len(ex.Steps) || back.Steps[3].Fired != "fig" {
		t.Errorf("round-tripped explanation = %+v, want %+v", back, ex)
	}

	// Explain locates exactly what Select locates.
	if matches := q.Select(doc); len(matches) != 1 || matches[0].Path != ex.Path {
		t.Errorf("Select = %+v, disagrees with Explain path %s", matches, ex.Path)
	}
}

// streamCorpus is a two-record document where the query "fig sec*"
// locates the first child of each <sec> record.
const streamCorpus = "<doc><sec><fig/><tab/></sec><sec><fig/></sec></doc>"

func streamEngine(t *testing.T) (*Engine, *Query) {
	t.Helper()
	eng := NewEngine()
	if _, err := eng.ParseXMLString(streamCorpus); err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("fig sec*")
	if err != nil {
		t.Fatal(err)
	}
	return eng, q
}

func TestSelectStreamExplain(t *testing.T) {
	eng, q := streamEngine(t)
	for _, workers := range []int{1, 4} {
		var exps []*Explanation
		_, err := eng.SelectStream(context.Background(), strings.NewReader(streamCorpus), q,
			SelectOptions{Workers: workers, Explain: true},
			func(m StreamMatch) error {
				if m.Explanation == nil {
					t.Fatalf("workers=%d: match %s has no explanation", workers, m.Path)
				}
				if m.Explanation.Path != m.Path {
					t.Fatalf("workers=%d: explanation path %s, match path %s",
						workers, m.Explanation.Path, m.Path)
				}
				exps = append(exps, m.Explanation)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(exps) != 2 {
			t.Fatalf("workers=%d: %d explanations, want 2", workers, len(exps))
		}
		for i, ex := range exps {
			if len(ex.Steps) != 2 || ex.Steps[0].Element != "sec" || ex.Steps[1].Element != "fig" {
				t.Errorf("workers=%d: explanation %d steps = %+v, want sec/fig", workers, i, ex.Steps)
			}
			if ex.Query != "fig sec*" {
				t.Errorf("workers=%d: explanation %d query = %q", workers, i, ex.Query)
			}
		}
	}
}

func TestSelectStreamTrace(t *testing.T) {
	eng, q := streamEngine(t)
	for _, workers := range []int{1, 4} {
		fr := NewFlightRecorder(16)
		stats, err := eng.SelectStream(context.Background(), strings.NewReader(streamCorpus), q,
			SelectOptions{Workers: workers, Trace: fr},
			func(StreamMatch) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		traces := fr.Traces()
		if int64(len(traces)) != stats.Records || fr.Total() != stats.Records {
			t.Fatalf("workers=%d: %d traces for %d records", workers, len(traces), stats.Records)
		}
		for i, rt := range traces {
			if rt.Index != i || rt.Outcome != "ok" {
				t.Errorf("workers=%d: trace %d = %+v, want in-order ok", workers, i, rt)
			}
			if rt.TotalNS != rt.SplitNS+rt.EvalNS+rt.DeliverNS || rt.TotalNS <= 0 {
				t.Errorf("workers=%d: trace %d spans not closed: %+v", workers, i, rt)
			}
		}
	}
}

// TestSelectStreamRequestID pins the correlation contract: a RequestID
// set on the options is stamped onto every committed trace (both the
// sequential and parallel collectors) and onto slow-record routing.
func TestSelectStreamRequestID(t *testing.T) {
	eng, q := streamEngine(t)
	for _, workers := range []int{1, 4} {
		fr := NewFlightRecorder(16)
		var slow []RecordTrace
		stats, err := eng.SelectStream(context.Background(), strings.NewReader(streamCorpus), q,
			SelectOptions{
				Workers:             workers,
				Trace:               fr,
				RequestID:           "req-abc123",
				SlowRecordThreshold: time.Nanosecond,
				OnSlowRecord:        func(rt RecordTrace) { slow = append(slow, rt) },
			},
			func(StreamMatch) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		traces := fr.Traces()
		if int64(len(traces)) != stats.Records {
			t.Fatalf("workers=%d: %d traces for %d records", workers, len(traces), stats.Records)
		}
		for i, rt := range traces {
			if rt.RequestID != "req-abc123" {
				t.Errorf("workers=%d: trace %d request id %q, want req-abc123", workers, i, rt.RequestID)
			}
		}
		for i, rt := range slow {
			if rt.RequestID != "req-abc123" {
				t.Errorf("workers=%d: slow trace %d request id %q, want req-abc123", workers, i, rt.RequestID)
			}
		}
	}
}

func TestSelectStreamSlowRecordCallback(t *testing.T) {
	eng, q := streamEngine(t)
	var slow []RecordTrace
	stats, err := eng.SelectStream(context.Background(), strings.NewReader(streamCorpus), q,
		SelectOptions{
			SlowRecordThreshold: time.Nanosecond,
			OnSlowRecord:        func(rt RecordTrace) { slow = append(slow, rt) },
		},
		func(StreamMatch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(slow)) != stats.Records {
		t.Fatalf("%d slow records routed, want all %d", len(slow), stats.Records)
	}
}

func TestChaosFacadeTimedOutStats(t *testing.T) {
	spec := faultinject.FeedSpec{Records: 8}
	eng := NewEngine()
	if _, err := eng.ParseXMLString("<feed><rec><id>0</id><a/><b/></rec></feed>"); err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("[* ; a ; b .] rec")
	if err != nil {
		t.Fatal(err)
	}
	opts := SelectOptions{
		SplitElement:  "rec",
		RecordTimeout: 10 * time.Millisecond,
		OnError:       Skip,
	}
	opts.inject = faultinject.NewEvalFaults().StallOn(60*time.Millisecond, 2)
	stats, err := eng.SelectStream(context.Background(), spec.Reader(), q, opts,
		func(StreamMatch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.TimedOut != 1 || stats.Skipped != 1 {
		t.Fatalf("stats = %+v, want 1 timed out among 1 skipped", stats)
	}
}

// TestEngineFlightRecorder covers the engine-wide recorder: in-memory
// evaluations commit doc traces (Index -1), streaming runs without a
// per-run ring fall back to it, and a per-run ring takes precedence.
func TestEngineFlightRecorder(t *testing.T) {
	eng, q := streamEngine(t)
	rec := NewFlightRecorder(16)
	eng.SetFlightRecorder(rec)
	if eng.FlightRecorder() != rec {
		t.Fatal("recorder not attached")
	}

	doc, err := eng.ParseXMLString(streamCorpus)
	if err != nil {
		t.Fatal(err)
	}
	// The streaming query ranges over sec records; the in-memory document
	// needs the doc root admitted too.
	docQ, err := eng.CompileQuery("fig sec* doc*")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(docQ.Select(doc)); n != 2 {
		t.Fatalf("located %d, want 2", n)
	}
	traces := rec.Traces()
	if len(traces) != 1 {
		t.Fatalf("doc eval committed %d traces, want 1", len(traces))
	}
	if rt := traces[0]; rt.Index != -1 || rt.Query != "fig sec* doc*" || rt.Matches != 2 || rt.Outcome != "ok" {
		t.Fatalf("doc trace = %+v, want Index -1 for the query with 2 matches", rt)
	}

	stats, err := eng.SelectStream(context.Background(), strings.NewReader(streamCorpus), q,
		SelectOptions{}, func(StreamMatch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rec.Total() != 1+stats.Records {
		t.Fatalf("engine recorder holds %d traces after the stream, want %d", rec.Total(), 1+stats.Records)
	}

	// A per-run ring wins over the engine-wide one.
	perRun := NewFlightRecorder(8)
	before := rec.Total()
	stats, err = eng.SelectStream(context.Background(), strings.NewReader(streamCorpus), q,
		SelectOptions{Trace: perRun}, func(StreamMatch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if perRun.Total() != stats.Records {
		t.Fatalf("per-run recorder holds %d traces, want %d", perRun.Total(), stats.Records)
	}
	if rec.Total() != before {
		t.Fatalf("engine recorder grew by %d during a per-run-traced stream", rec.Total()-before)
	}

	// Detaching stops doc-eval commits; evaluation still works.
	eng.SetFlightRecorder(nil)
	if n := len(docQ.Select(doc)); n != 2 {
		t.Fatalf("located %d after detach, want 2", n)
	}
	if rec.Total() != before {
		t.Fatalf("detached recorder grew to %d", rec.Total())
	}
}
