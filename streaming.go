package xpe

import (
	"context"
	"errors"
	"io"
	"iter"
	"time"
	"unsafe"

	"xpe/internal/core"
	"xpe/internal/hedge"
	"xpe/internal/stream"
)

// SelectOptions tunes streaming evaluation; the zero value is the default
// configuration (split at the document element's children, GOMAXPROCS
// workers, no record limits).
type SelectOptions struct {
	// Workers is the number of concurrent record-evaluation workers; <= 0
	// means GOMAXPROCS, 1 forces the zero-allocation sequential loop.
	// Matches are delivered in document order regardless.
	Workers int
	// BatchSize is the number of records per worker handoff in parallel
	// runs: 0 picks the default (currently 32), 1 restores record-at-a-time
	// handoff. Larger batches amortize scheduling costs per record but
	// raise peak memory (O(largest record × BatchSize × (Workers+2))) and
	// delivery latency on slow producers. Sequential runs ignore it.
	BatchSize int
	// ReuseBuffers opts into zero-copy delivery: StreamMatch.Path, .Term,
	// and .RecordPath are views into per-run buffers recycled between
	// yields, so everything a StreamMatch carries — strings and Node alike
	// — is valid only until the yield callback returns. Copy (or
	// strings.Clone) whatever outlives the callback. Off, the strings are
	// freshly allocated and safe to retain, matching the historical
	// contract.
	ReuseBuffers bool
	// SplitElement names the record root element: every subtree rooted at
	// an element with this name (outermost wins when nested) is one
	// record, e.g. "entry" for a feed. Empty splits the document into the
	// document element's children.
	SplitElement string
	// MaxRecordNodes bounds the node count of a single record (0 =
	// unlimited). A violating record fails with *LimitError (kind "nodes"),
	// routed through OnError.
	MaxRecordNodes int
	// MaxRecordDepth bounds element nesting within a record, counting the
	// record root as depth 1 (0 = unlimited; kind "depth").
	MaxRecordDepth int
	// MaxRecordBytes bounds the raw input bytes one record may span (0 =
	// unlimited; kind "bytes"). The record is abandoned as soon as the
	// budget is crossed, so memory stays bounded even against a
	// multi-gigabyte record.
	MaxRecordBytes int64
	// MaxStreamBytes bounds total input consumption for the run (0 =
	// unlimited). Exceeding it aborts the stream with *LimitError (kind
	// "stream") regardless of OnError: there is no recovery past an
	// exhausted stream budget.
	MaxStreamBytes int64
	// RecordTimeout bounds one record's evaluation wall time (0 =
	// unlimited). A record over budget fails with *LimitError (kind
	// "time"), routed through OnError. Enforcement is cooperative — the
	// deadline is sampled between matches — so it catches slow records,
	// not a wedged evaluation.
	RecordTimeout time.Duration
	// OnError decides the fate of a record that failed — malformed XML,
	// a limit violation, or an evaluation failure. Nil behaves exactly like
	// Abort: the stream stops at the first failure. Policies are called in
	// document order on the caller's goroutine, never concurrently. See
	// ErrorPolicy, Abort, Skip.
	//
	// Not every skip is free: past a record with broken markup the splitter
	// must resynchronize on the next SplitElement start tag (skipping is
	// only possible with a named SplitElement there), and a malformation
	// that swallows the record's own terminator may cost the records it
	// absorbed. Limit violations and evaluation failures skip exactly one
	// record. Failures larger than a record — unreadable input,
	// cancellation, an exhausted stream budget — abort regardless.
	OnError ErrorPolicy
	// KeepWhitespace retains whitespace-only text nodes.
	KeepWhitespace bool
	// Prefilter controls the raw-byte record prefilter cascade. The zero
	// value PrefilterAuto derives the query's required element labels at
	// run start and skips records whose raw bytes provably cannot contain
	// them all, without parsing or evaluating them; whenever the byte skim
	// is unsure, the record is parsed normally. Match sets and errors are
	// identical either way — only StreamStats.Prefiltered and throughput
	// differ. PrefilterOff disables the cascade, e.g. to attribute time
	// precisely in benchmarks or to rule the prefilter out while
	// debugging.
	Prefilter PrefilterMode
	// inject is the test-only fault-injection hook (see
	// internal/faultinject); being unexported it is settable only from
	// this package's tests.
	inject stream.Injector
	// Metrics, when non-nil, collects this run's splitter and stage
	// metrics in isolation (the engine's cumulative Stats receives them
	// too). Nil means engine-level observation only. See MetricsSink.
	Metrics *MetricsSink
	// Trace, when non-nil, records this run's per-record traces into the
	// given flight recorder, overriding the engine-wide recorder
	// (Engine.SetFlightRecorder) for this run. One trace is committed per
	// record that reaches an in-order verdict — delivered, skipped, or
	// aborting — with stage timings and any splitter recovery events.
	// Tracing costs two clock reads per stage per record while attached.
	Trace *FlightRecorder
	// RequestID, when non-empty, is stamped onto every RecordTrace this
	// run commits and onto the slow-record log lines, correlating record
	// spans with the request that caused the run. The serving layer sets
	// it from the X-Request-Id header; library callers may use any
	// correlation token. Inert when no tracing is enabled.
	RequestID string
	// SlowRecordThreshold enables the slow-record log: every record whose
	// split+eval+deliver total meets or exceeds the threshold is routed to
	// OnSlowRecord (0 disables). The threshold works without a recorder
	// attached — slow traces are assembled and routed either way.
	SlowRecordThreshold time.Duration
	// OnSlowRecord receives slow records' traces, in document order on
	// the goroutine delivering results (never concurrently). Nil with a
	// threshold set logs a warning through slog.
	OnSlowRecord func(RecordTrace)
	// Explain attaches provenance to every delivered match:
	// StreamMatch.Explanation names the envelope evidence level by level.
	// Provenance allocates per match; leave it off for throughput.
	Explain bool
}

// PrefilterMode selects the raw-byte prefilter behavior for a streaming
// run; see SelectOptions.Prefilter.
type PrefilterMode = stream.PrefilterMode

const (
	// PrefilterAuto (the default) skips records whose bytes provably lack
	// one of the query's required element labels.
	PrefilterAuto = stream.PrefilterAuto
	// PrefilterOff disables the prefilter cascade for the run.
	PrefilterOff = stream.PrefilterOff
)

// ErrorPolicy decides the fate of one failed record: return nil to skip it
// and continue the stream, or an error to abort the run with it (returning
// the *RecordError itself is the idiomatic abort). The error's Err field
// carries the typed cause: *ParseError for malformed XML, *LimitError for
// a resource bound, *InternalError for a panicking evaluation.
type ErrorPolicy func(*RecordError) error

// Abort stops the stream at the first failed record, returning the typed
// *RecordError. This is also the behavior when SelectOptions.OnError is
// nil (the nil default reports the raw underlying error instead of the
// *RecordError wrapper, for compatibility).
var Abort ErrorPolicy = func(e *RecordError) error { return e }

// Skip drops failed records and continues the stream; skipped records are
// counted in StreamStats.Skipped and the engine's stream metrics.
var Skip ErrorPolicy = func(*RecordError) error { return nil }

// StreamStats aggregates one SelectStream run. The field set mirrors
// stream.Stats exactly (the struct conversion below depends on it).
//
// Invariant: Records + Prefiltered is the total number of records the
// splitter saw, whatever the prefilter mode or (for SelectStreamMulti)
// the query count — prefiltering only moves a record between the two
// buckets, never conjures or drops one. The differential harness pins
// this, and Prefiltered/(Records+Prefiltered) is the run's skim rate.
type StreamStats struct {
	Records     int64 // records evaluated and delivered
	Nodes       int64 // total nodes across delivered records
	Matches     int64 // total located nodes
	Bytes       int64 // input bytes consumed by the XML decoder
	Skipped     int64 // failed records dropped by the OnError policy
	TimedOut    int64 // records over RecordTimeout, whether skipped or aborting
	Recovered   int64 // evaluation panics caught and converted to errors
	Prefiltered int64 // records skipped by the raw-byte prefilter cascade
	// Lazy-determinization deltas for the run (zero under eager
	// compilation; approximate when concurrent runs share one query).
	LazyStates    int64 // lazy-DHA states materialized during the run
	LazyHits      int64 // lazy transition-cache hits during the run
	LazyEvictions int64 // lazy transition-cache evictions during the run
}

// StreamMatch is one located node of a streamed record. Path (and Term)
// are record-relative: the record root is node 1, exactly as if the record
// were parsed as its own document.
type StreamMatch struct {
	Match
	// Record is the 0-based record sequence number.
	Record int
	// RecordPath is the Dewey path of the record root within the input
	// document; RecordPath + Path[1:] addresses the node in the whole
	// document. (The embedded Match carries the provenance when
	// SelectOptions.Explain is set.)
	RecordPath string
}

// ErrStop, returned from a SelectStream yield callback, ends the stream
// early with no error.
var ErrStop = stream.ErrStop

// SelectStream evaluates q over an XML stream record by record: r is
// split into records (see SelectOptions.SplitElement), each record is
// parsed into a recycled arena and evaluated as an independent document
// with Algorithm 1, and yield is called once per located node in document
// order, as soon as the record completes. Peak memory is O(largest record
// × workers), never O(document) — a multi-gigabyte feed streams in
// constant space.
//
// Each record is its own evaluation unit: envelope conditions range over
// the record subtree, not the enclosing document (single-pass streaming
// cannot see the younger siblings of a record's ancestors). StreamMatch.Node
// references recycled storage and is valid only during the callback;
// Path and Term are stable copies. Returning ErrStop from yield ends the
// stream cleanly; any other error aborts it and is returned.
//
// The query is resolved against the engine's current alphabet generation
// once, before the worker pool forks: if the alphabet grew since q was
// compiled, SelectStream transparently recompiles (through the engine's
// compiled-query cache) and every worker evaluates the same refreshed
// automata. Within the run the alphabet is closed-world — labels first
// seen mid-stream are record text, not interned symbols, so they fail
// '.'-sides exactly as an unknown label does for Select. Errors are typed:
// *ParseError for malformed XML, *LimitError for an exceeded resource
// bound, *RecordError (wrapping the cause, including *InternalError for a
// panicking evaluation) when an OnError policy aborted on a failed record.
func (e *Engine) SelectStream(ctx context.Context, r io.Reader, q *Query, opts SelectOptions, yield func(StreamMatch) error) (StreamStats, error) {
	return e.selectStream(ctx, r, []*Query{q}, opts, func(_ int, m StreamMatch) error {
		return yield(m)
	})
}

// MultiStreamMatch is one located node from a multi-query streaming run:
// the match plus the index of the query that located it.
type MultiStreamMatch struct {
	StreamMatch
	// Query is the index into SelectStreamMulti's query slice of the query
	// this node matched.
	Query int
}

// SelectStreamMulti evaluates every query in qs over one shared pass of
// the stream: the input is split and parsed once, and each record drives
// all the compiled match automata instead of one scan per query — the
// serving path for N registered queries over one hot feed. Matches carry
// the originating query's index; within one record they arrive grouped by
// ascending query index, in document order within each query.
//
// Everything else follows the SelectStream contract — in-order delivery,
// fault containment via OnError, budgets, tracing. Two multi-query
// specifics: RecordTimeout bounds one record's evaluation across ALL
// queries (it is a record budget, not a per-query one), and under
// PrefilterAuto the skim tests the union of the queries' required labels,
// skipping a record only when no query's requirement set is present and
// gating per-record evaluation to the queries whose requirements are —
// per query, exactly the records its own prefiltered run would evaluate.
// StreamStats.Matches counts across all queries; the
// Records+Prefiltered sum is identical to a single-query run over the
// same input (see StreamStats).
func (e *Engine) SelectStreamMulti(ctx context.Context, r io.Reader, qs []*Query, opts SelectOptions, yield func(MultiStreamMatch) error) (StreamStats, error) {
	if len(qs) == 0 {
		return StreamStats{}, errors.New("xpe: SelectStreamMulti needs at least one query")
	}
	return e.selectStream(ctx, r, qs, opts, func(qi int, m StreamMatch) error {
		return yield(MultiStreamMatch{StreamMatch: m, Query: qi})
	})
}

func (e *Engine) selectStream(ctx context.Context, r io.Reader, qs []*Query, opts SelectOptions, yield func(int, StreamMatch) error) (StreamStats, error) {
	cfg := stream.Config{
		Split:          opts.SplitElement,
		Workers:        opts.Workers,
		BatchSize:      opts.BatchSize,
		MaxRecordNodes: opts.MaxRecordNodes,
		MaxRecordDepth: opts.MaxRecordDepth,
		MaxRecordBytes: opts.MaxRecordBytes,
		MaxStreamBytes: opts.MaxStreamBytes,
		RecordTimeout:  opts.RecordTimeout,
		Inject:         opts.inject,
		KeepWhitespace: opts.KeepWhitespace,
		Prefilter:      opts.Prefilter,
		Metrics:        e.metrics,
		RequestID:      opts.RequestID,
		Explain:        opts.Explain,
	}
	// Tracing: the per-run recorder wins; the engine-wide one is the
	// fallback. A slow-record threshold assembles traces even with no
	// recorder attached anywhere.
	fr := opts.Trace
	if fr == nil {
		fr = e.recorder.Load()
	}
	cfg.Trace = fr.tracer()
	if opts.SlowRecordThreshold > 0 {
		cfg.SlowThreshold = opts.SlowRecordThreshold
		if opts.OnSlowRecord != nil {
			cfg.OnSlow = opts.OnSlowRecord
		} else {
			cfg.OnSlow = logSlowRecord
		}
	}
	timeoutMs := int(opts.RecordTimeout / time.Millisecond)
	var perr error // policy-originated abort, passed through unwrapped
	if pol := opts.OnError; pol != nil {
		cfg.OnRecordError = func(se *stream.RecordError) error {
			if err := pol(wrapRecordFailure(se, timeoutMs)); err != nil {
				perr = err
				return err
			}
			return nil
		}
	}
	if sink := opts.Metrics; sink != nil {
		// Route the run's splitter/stage metrics into the sink and merge
		// the delta back into the engine registry afterwards, so a per-run
		// sink never hides the run from Engine.Stats.
		cfg.Metrics = &sink.reg
		before := sink.reg.Snapshot()
		defer func() { e.metrics.AddSnapshot(sink.reg.Snapshot().Sub(before)) }()
	}
	// Resolve the compilations once, pre-fork: workers share one snapshot
	// per query and never recompile per record.
	cqs := make([]*core.CompiledQuery, len(qs))
	for i, q := range qs {
		cqs[i] = q.compiled()
	}
	var yerr error // yield-originated, passed through unwrapped
	// With ReuseBuffers the three strings are serialized into per-run
	// scratch buffers (one per record for the record path, one per match)
	// and handed out as no-copy views, valid only until yield returns.
	var recBuf, matchBuf []byte
	st, err := stream.RunMulti(ctx, r, cqs, cfg, func(res *stream.Result) error {
		var recPath string
		if opts.ReuseBuffers {
			recBuf = res.Path.AppendString(recBuf[:0])
			recPath = bufString(recBuf)
		} else {
			recPath = res.Path.String()
		}
		for i := range res.Matches {
			m := &res.Matches[i]
			sm := StreamMatch{
				Record:     res.Index,
				RecordPath: recPath,
			}
			if opts.ReuseBuffers {
				matchBuf = m.Path.AppendString(matchBuf[:0])
				pathLen := len(matchBuf)
				matchBuf = m.Node.AppendString(matchBuf)
				sm.Match = Match{Path: bufString(matchBuf[:pathLen]),
					Term: bufString(matchBuf[pathLen:]), Node: m.Node}
			} else {
				sm.Match = Match{Path: m.Path.String(), Term: m.Node.String(), Node: m.Node}
			}
			if m.Witness != nil {
				sm.Explanation = newExplanation(cqs[m.Query], qs[m.Query].src, m.Witness)
			}
			if err := yield(m.Query, sm); err != nil {
				if !errors.Is(err, ErrStop) {
					yerr = err
				}
				return err
			}
		}
		return nil
	})
	if err != nil && (err == yerr || err == perr) {
		return StreamStats(st), err
	}
	return StreamStats(st), wrapStreamErr(err, timeoutMs)
}

// SelectStreamSeq is the pull form of SelectStream: it returns an iterator
// over (match, error) pairs for use with range-over-func, plus the run's
// statistics. Iteration stops at the first non-nil error (yielded as the
// final pair with a zero match); breaking out of the loop cancels the
// stream. The stream runs only while being iterated — the iterator is
// single-use — and the returned StreamStats is populated when iteration
// finishes (it reads as zero before that, and reflects the partial run
// after an early break).
func (e *Engine) SelectStreamSeq(ctx context.Context, r io.Reader, q *Query, opts SelectOptions) (iter.Seq2[StreamMatch, error], *StreamStats) {
	stats := new(StreamStats)
	seq := func(yield func(StreamMatch, error) bool) {
		st, err := e.SelectStream(ctx, r, q, opts, func(m StreamMatch) error {
			if !yield(m, nil) {
				return ErrStop
			}
			return nil
		})
		*stats = st
		if err != nil {
			yield(StreamMatch{}, err)
		}
	}
	return seq, stats
}

// bufString is a no-copy view of b, used for ReuseBuffers delivery. The
// backing bytes are written once per yield and never mutated while the
// view is live (the documented validity window).
func bufString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// Select evaluates q over an in-memory document under ctx, honoring the
// subset of opts that applies outside the streaming pipeline — Metrics,
// Trace, and Explain — so in-memory and streamed runs share one options
// surface. The stream-only fields (Workers, BatchSize, ReuseBuffers,
// SplitElement, the record limits and RecordTimeout, OnError,
// KeepWhitespace, SlowRecordThreshold, OnSlowRecord) configure the
// splitter pipeline, which an already-parsed document never enters; they
// are ignored here.
//
// Cancellation is cooperative, checked between matches like
// Query.SelectCtx. With Explain set every returned Match carries its
// Explanation. A per-run Metrics sink receives the engine registry's delta
// across the run — with concurrent runs on the same engine the delta
// includes their overlapping activity, so isolate benchmarked runs.
func (e *Engine) Select(ctx context.Context, d *Document, q *Query, opts SelectOptions) ([]Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if sink := opts.Metrics; sink != nil {
		before := e.metrics.Snapshot()
		defer func() { sink.reg.AddSnapshot(e.metrics.Snapshot().Sub(before)) }()
	}
	fr := opts.Trace
	if fr == nil {
		fr = e.recorder.Load()
	}
	cq := q.compiled()
	var t0 time.Time
	if fr != nil {
		t0 = time.Now()
	}
	var out []Match
	if opts.Explain {
		cq.ExplainEach(d.hedge, func(w core.Witness, n *hedge.Node) bool {
			if ctx.Err() != nil {
				return false
			}
			out = append(out, Match{Path: w.Path.String(), Term: n.String(), Node: n,
				Explanation: newExplanation(cq, q.src, &w)})
			return true
		})
	} else {
		cq.SelectEach(d.hedge, func(p hedge.Path, n *hedge.Node) bool {
			if ctx.Err() != nil {
				return false
			}
			out = append(out, Match{Path: p.String(), Term: n.String(), Node: n})
			return true
		})
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if fr != nil {
		fr.commitDoc(q.src, int64(time.Since(t0)), d.Size(), len(out))
	}
	return out, nil
}
