// Command xpeschema performs schema transformation (Section 8 of the
// paper): given an input grammar and a selection query, it builds the
// output schema of the query (select) or of deleting the located nodes
// (delete), then reports the output automaton's size, example members, and
// optional membership checks.
//
// Usage:
//
//	xpeschema -grammar g.txt -query 'fig sec* [* ; doc ; *]' \
//	          [-op select|delete] [-shape subtree|subhedge] \
//	          [-check 'term' ...] [-samples N]
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"xpe"
	"xpe/internal/ha"
	"xpe/internal/hedge"
	"xpe/internal/schema"
)

func main() {
	grammarPath := flag.String("grammar", "", "input grammar file (required)")
	query := flag.String("query", "", "selection query (required)")
	op := flag.String("op", "select", "operation: select or delete")
	shape := flag.String("shape", "subtree", "select result shape: subtree or subhedge")
	samples := flag.Int("samples", 3, "number of example members to print")
	emit := flag.Bool("emit", false, "emit the output schema as grammar text")
	var checks multiFlag
	flag.Var(&checks, "check", "term-syntax hedge to test against the output schema (repeatable)")
	flag.Parse()
	if *grammarPath == "" || *query == "" {
		fmt.Fprintln(os.Stderr, "xpeschema: -grammar and -query are required")
		flag.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(*grammarPath)
	if err != nil {
		fatal(err)
	}
	eng := xpe.NewEngine()
	sch, err := eng.ParseSchema(string(src))
	if err != nil {
		fatal(err)
	}
	q, err := eng.CompileQuery(*query)
	if err != nil {
		fatal(err)
	}

	var out *xpe.Schema
	switch *op {
	case "select":
		s := xpe.Subtrees
		if *shape == "subhedge" {
			s = xpe.Subhedges
		} else if *shape != "subtree" {
			fatal(fmt.Errorf("unknown shape %q", *shape))
		}
		out, err = sch.TransformSelect(q, s)
	case "delete":
		out, err = sch.TransformDelete(q)
	default:
		err = fmt.Errorf("unknown op %q", *op)
	}
	if err != nil {
		fatal(err)
	}

	und := out.Underlying()
	if *emit {
		text, err := schema.ToGrammar(und)
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
		return
	}
	fmt.Printf("input schema:  %d det. states\n", sch.Underlying().DHA.NumStates)
	fmt.Printf("output schema: %d nondet. states, %d rules, %d det. states\n",
		und.NHA.NumStates, len(und.NHA.Rules), und.DHA.NumStates)

	if w, ok := und.DHA.SomeHedge(); ok {
		fmt.Printf("witness:       %s\n", w)
		sampler, ok := ha.NewSampler(und.DHA, rand.New(rand.NewSource(1)))
		if ok {
			for i := 0; i < *samples; i++ {
				if m, ok := sampler.Sample(4); ok {
					fmt.Printf("member:        %s\n", m)
				}
			}
		}
	} else {
		fmt.Println("output language is EMPTY")
	}

	for _, c := range checks {
		h, err := hedge.Parse(c)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("check %-30q ∈ output? %v\n", c, out.ValidateHedge(h))
	}
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// fatal prints err and exits, expanding the facade's typed compile errors
// into position-bearing diagnostics.
func fatal(err error) {
	var ce *xpe.CompileError
	if errors.As(err, &ce) {
		fmt.Fprintf(os.Stderr, "xpeschema: cannot compile: %s\n", ce.Msg)
		if ce.Offset >= 0 {
			fmt.Fprintf(os.Stderr, "  at offset %d: %s\n", ce.Offset, ce.Excerpt)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "xpeschema:", err)
	os.Exit(1)
}
