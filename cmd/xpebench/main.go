// Command xpebench regenerates the reproduction's experiment tables (see
// DESIGN.md §3 and EXPERIMENTS.md): one table per complexity claim or
// construction of the paper.
//
// Usage:
//
//	xpebench [-experiment all|E1|E2|...] [-quick]
//	xpebench -bench-json [-quick] [-out BENCH_core.json]
//	xpebench -assert-baseline BENCH_core.json [-baseline-max-drop 10]
//
// With -bench-json the experiment tables are skipped; instead the
// perf-regression workloads run (in-memory select with and without a
// metrics sink, streaming with 1/4/8/16 workers, bulk select, and the
// engine's compiled-query cache: cold compile vs cache-hit recompile vs
// the unchanged-generation fast path) and the report — ns/op, allocs/op,
// nodes/sec, metrics overhead, cache-hit speedup, fast-path overhead,
// scaling efficiency per worker count, peak RSS — is written as JSON to
// -out (default stdout).
//
// With -assert-baseline the stream-* workloads recorded in the given
// report are re-measured at their recorded sizes and worker counts and
// the run exits nonzero when any falls more than -baseline-max-drop
// percent below its recorded nodes/sec (`make bench-gate`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"xpe"
	"xpe/internal/experiments"
	"xpe/internal/hedge"
)

func main() {
	which := flag.String("experiment", "all", "experiment id (E1..E8) or 'all'")
	quick := flag.Bool("quick", false, "smaller sizes for a fast run")
	benchJSON := flag.Bool("bench-json", false, "run the perf-regression workloads and emit JSON instead of tables")
	out := flag.String("out", "", "output file for -bench-json (default stdout)")
	maxTraceOverhead := flag.Float64("assert-trace-overhead", 0,
		"with -bench-json: exit nonzero if the disabled-tracing overhead exceeds this many percent (0 = no gate)")
	assertBaseline := flag.String("assert-baseline", "",
		"re-measure the stream-* workloads recorded in this baseline report and exit nonzero on a throughput regression")
	maxDrop := flag.Float64("baseline-max-drop", 10,
		"with -assert-baseline: the largest tolerated nodes/sec drop, in percent")
	flag.Parse()

	if *assertBaseline != "" {
		data, err := os.ReadFile(*assertBaseline)
		if err != nil {
			fatal(err)
		}
		var base experiments.BenchReport
		if err := json.Unmarshal(data, &base); err != nil {
			fatal(fmt.Errorf("%s: %w", *assertBaseline, err))
		}
		// Best of five fresh runs per workload: the baseline records
		// best-window figures, and a genuine regression slows every run
		// while a scheduler stall only hits some.
		err = experiments.GateStreamBaseline(&base, *maxDrop, 5,
			func(format string, a ...any) { fmt.Fprintf(os.Stderr, format, a...) })
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "xpebench: stream throughput within %.0f%% of the %s baseline\n",
			*maxDrop, *assertBaseline)
		if !*benchJSON {
			return
		}
	}

	if *benchJSON {
		rep, err := experiments.BenchJSON(*quick)
		if err != nil {
			fatal(err)
		}
		if err := cacheBench(rep, *quick); err != nil {
			fatal(err)
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := rep.WriteJSON(w); err != nil {
			fatal(err)
		}
		if *maxTraceOverhead > 0 {
			if rep.TraceOverheadPct > *maxTraceOverhead {
				fatal(fmt.Errorf("disabled-tracing overhead %.3f%% exceeds the %.3f%% budget",
					rep.TraceOverheadPct, *maxTraceOverhead))
			}
			fmt.Fprintf(os.Stderr, "xpebench: disabled-tracing overhead %.3f%% within the %.3f%% budget\n",
				rep.TraceOverheadPct, *maxTraceOverhead)
		}
		return
	}

	fns := map[string]func(bool) (*experiments.Table, error){
		"E1": experiments.E1, "E2": experiments.E2, "E3": experiments.E3,
		"E4": experiments.E4, "E5": experiments.E5, "E6": experiments.E6,
		"E7": experiments.E7, "E8": experiments.E8,
	}
	var tables []*experiments.Table
	if *which == "all" {
		ts, err := experiments.All(*quick)
		if err != nil {
			fatal(err)
		}
		tables = ts
	} else {
		fn, ok := fns[strings.ToUpper(*which)]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", *which))
		}
		t, err := fn(*quick)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, t)
	}
	var b strings.Builder
	for _, t := range tables {
		t.Render(&b)
	}
	fmt.Print(b.String())
}

// cacheBench measures the facade's compiled-query cache and appends the
// results to rep. It lives here rather than in internal/experiments
// because that package is imported by the facade's own benchmarks and so
// cannot import the facade back.
//
// Three workloads, all over a fixed alphabet (the document below is
// parsed once up front, so the generation never moves mid-measurement):
//
//   - compile-cold: every iteration compiles a source the cache has never
//     seen. Trailing-space padding makes each source string distinct —
//     distinct cache keys — while trimming makes them parse identically,
//     so the work measured is a genuine parse + automaton construction.
//   - recompile-cache-hit: every iteration re-requests the same source at
//     the same generation; after the first miss each is a map lookup.
//   - the fast path: evaluating through Query.Compiled() (the per-call
//     generation revalidation) vs evaluating the underlying
//     core.CompiledQuery directly, in paired rounds; the median ratio is
//     the revalidation overhead the unchanged-generation path pays.
func cacheBench(rep *experiments.BenchReport, quick bool) error {
	minTime := 300 * time.Millisecond
	rounds := 7
	if quick {
		minTime = 40 * time.Millisecond
		rounds = 5
	}

	eng := xpe.NewEngine()
	doc, err := eng.ParseXMLString(
		"<doc>" + strings.Repeat("<sec><fig/><tab/><fig/></sec>", 500) + "</doc>")
	if err != nil {
		return err
	}
	const src = "[. ; fig ; .] (sec|doc)*"

	pad := 0
	cold := experiments.Measure("compile-cold", 0, minTime, func() {
		pad++
		if _, err := eng.CompileQuery(src + strings.Repeat(" ", pad)); err != nil {
			panic(err)
		}
	})
	rep.Results = append(rep.Results, cold)

	hit := experiments.Measure("recompile-cache-hit", 0, minTime, func() {
		if _, err := eng.CompileQuery(src); err != nil {
			panic(err)
		}
	})
	rep.Results = append(rep.Results, hit)
	if hit.NsPerOp > 0 {
		rep.CacheHitSpeedup = cold.NsPerOp / hit.NsPerOp
	}

	q, err := eng.CompileQuery(src)
	if err != nil {
		return err
	}
	cq := q.Compiled()
	h := doc.Hedge()
	nodes := int64(doc.Size())
	pairTime := minTime / 4
	if pairTime < 10*time.Millisecond {
		pairTime = 10 * time.Millisecond
	}
	var direct, revalidated experiments.BenchResult
	var ratios []float64
	for round := 0; round < rounds; round++ {
		d := experiments.Measure("select-direct", nodes, pairTime, func() {
			cq.SelectEach(h, func(hedge.Path, *hedge.Node) bool { return true })
		})
		if round == 0 || d.NsPerOp < direct.NsPerOp {
			direct = d
		}
		r := experiments.Measure("select-revalidate-fastpath", nodes, pairTime, func() {
			q.Compiled().SelectEach(h, func(hedge.Path, *hedge.Node) bool { return true })
		})
		if round == 0 || r.NsPerOp < revalidated.NsPerOp {
			revalidated = r
		}
		if d.NsPerOp > 0 {
			ratios = append(ratios, r.NsPerOp/d.NsPerOp)
		}
	}
	rep.Results = append(rep.Results, direct, revalidated)
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		m := ratios[len(ratios)/2]
		if len(ratios)%2 == 0 {
			m = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
		}
		rep.FastPathOverheadPct = (m - 1) * 100
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xpebench:", err)
	os.Exit(1)
}
