// Command xpebench regenerates the reproduction's experiment tables (see
// DESIGN.md §3 and EXPERIMENTS.md): one table per complexity claim or
// construction of the paper.
//
// Usage:
//
//	xpebench [-experiment all|E1|E2|...] [-quick]
//	xpebench -bench-json [-quick] [-out BENCH_core.json]
//
// With -bench-json the experiment tables are skipped; instead the
// perf-regression workloads run (in-memory select with and without a
// metrics sink, streaming with 1 and 4 workers, bulk select) and the
// report — ns/op, allocs/op, nodes/sec, metrics overhead, peak RSS — is
// written as JSON to -out (default stdout).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xpe/internal/experiments"
)

func main() {
	which := flag.String("experiment", "all", "experiment id (E1..E8) or 'all'")
	quick := flag.Bool("quick", false, "smaller sizes for a fast run")
	benchJSON := flag.Bool("bench-json", false, "run the perf-regression workloads and emit JSON instead of tables")
	out := flag.String("out", "", "output file for -bench-json (default stdout)")
	flag.Parse()

	if *benchJSON {
		rep, err := experiments.BenchJSON(*quick)
		if err != nil {
			fatal(err)
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := rep.WriteJSON(w); err != nil {
			fatal(err)
		}
		return
	}

	fns := map[string]func(bool) (*experiments.Table, error){
		"E1": experiments.E1, "E2": experiments.E2, "E3": experiments.E3,
		"E4": experiments.E4, "E5": experiments.E5, "E6": experiments.E6,
		"E7": experiments.E7, "E8": experiments.E8,
	}
	var tables []*experiments.Table
	if *which == "all" {
		ts, err := experiments.All(*quick)
		if err != nil {
			fatal(err)
		}
		tables = ts
	} else {
		fn, ok := fns[strings.ToUpper(*which)]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", *which))
		}
		t, err := fn(*quick)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, t)
	}
	var b strings.Builder
	for _, t := range tables {
		t.Render(&b)
	}
	fmt.Print(b.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xpebench:", err)
	os.Exit(1)
}
