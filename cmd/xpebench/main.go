// Command xpebench regenerates the reproduction's experiment tables (see
// DESIGN.md §3 and EXPERIMENTS.md): one table per complexity claim or
// construction of the paper.
//
// Usage:
//
//	xpebench [-experiment all|E1|E2|...] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xpe/internal/experiments"
)

func main() {
	which := flag.String("experiment", "all", "experiment id (E1..E8) or 'all'")
	quick := flag.Bool("quick", false, "smaller sizes for a fast run")
	flag.Parse()

	fns := map[string]func(bool) (*experiments.Table, error){
		"E1": experiments.E1, "E2": experiments.E2, "E3": experiments.E3,
		"E4": experiments.E4, "E5": experiments.E5, "E6": experiments.E6,
		"E7": experiments.E7, "E8": experiments.E8,
	}
	var tables []*experiments.Table
	if *which == "all" {
		ts, err := experiments.All(*quick)
		if err != nil {
			fatal(err)
		}
		tables = ts
	} else {
		fn, ok := fns[strings.ToUpper(*which)]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", *which))
		}
		t, err := fn(*quick)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, t)
	}
	var b strings.Builder
	for _, t := range tables {
		t.Render(&b)
	}
	fmt.Print(b.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xpebench:", err)
	os.Exit(1)
}
