// Command xpebench regenerates the reproduction's experiment tables (see
// DESIGN.md §3 and EXPERIMENTS.md): one table per complexity claim or
// construction of the paper.
//
// Usage:
//
//	xpebench [-experiment all|E1|E2|...] [-quick]
//	xpebench -bench-json [-quick] [-out BENCH_core.json]
//	xpebench -assert-baseline BENCH_core.json [-baseline-max-drop 10]
//	xpebench -record-history BENCH_history.ndjson [-seeds 42,123,456]
//	xpebench -assert-history BENCH_history.ndjson [-history-max-drop 10]
//	xpebench -assert-telemetry-overhead 1 [-quick]
//
// With -bench-json the experiment tables are skipped; instead the
// perf-regression workloads run (in-memory select with and without a
// metrics sink, streaming with 1/4/8/16 workers, bulk select, and the
// engine's compiled-query cache: cold compile vs cache-hit recompile vs
// the unchanged-generation fast path) and the report — ns/op, allocs/op,
// nodes/sec, metrics overhead, cache-hit speedup, fast-path overhead,
// scaling efficiency per worker count, peak RSS — is written as JSON to
// -out (default stdout).
//
// With -assert-baseline the stream-* workloads recorded in the given
// report are re-measured at their recorded sizes and worker counts and
// the run exits nonzero when any falls more than -baseline-max-drop
// percent below its recorded nodes/sec (`make bench-gate`).
//
// With -record-history / -assert-history the trajectory workloads are
// measured at every generator seed (-seeds; each per-seed figure the
// best of three windows, so correlated machine-load dips cannot mimic
// a regression) and either appended to the
// NDJSON trajectory file as a dated entry or judged against it under the
// effect-size rule (see internal/experiments/multiseed.go): a failure
// needs a mean drop past -history-max-drop percent, below every
// recorded run, with every seed agreeing on the direction.
//
// With -assert-telemetry-overhead the serving telemetry's end-to-end
// cost is measured — identical feed posts through two serve.Servers,
// default telemetry vs DisableTelemetry, interleaved in paired rounds —
// and the run exits nonzero when the median pair overhead exceeds the
// budget AND the 25th-percentile pair also shows the enabled side
// slower (`make telemetry-overhead`).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"xpe"
	"xpe/internal/experiments"
	"xpe/internal/gen"
	"xpe/internal/hedge"
	"xpe/internal/serve"
	"xpe/internal/xmlhedge"
)

func main() {
	which := flag.String("experiment", "all", "experiment id (E1..E8) or 'all'")
	quick := flag.Bool("quick", false, "smaller sizes for a fast run")
	benchJSON := flag.Bool("bench-json", false, "run the perf-regression workloads and emit JSON instead of tables")
	out := flag.String("out", "", "output file for -bench-json (default stdout)")
	maxTraceOverhead := flag.Float64("assert-trace-overhead", 0,
		"with -bench-json: exit nonzero if the disabled-tracing overhead exceeds this many percent (0 = no gate)")
	assertBaseline := flag.String("assert-baseline", "",
		"re-measure the stream-* workloads recorded in this baseline report and exit nonzero on a throughput regression")
	maxDrop := flag.Float64("baseline-max-drop", 10,
		"with -assert-baseline: the largest tolerated nodes/sec drop, in percent")
	seeds := flag.String("seeds", "42,123,456",
		"comma-separated generator seeds for -record-history / -assert-history")
	recordHistory := flag.String("record-history", "",
		"measure the trajectory workloads at every seed and append a dated entry to this NDJSON file")
	assertHistory := flag.String("assert-history", "",
		"measure the trajectory workloads at every seed and exit nonzero on a consistent regression against this NDJSON trajectory")
	historyMaxDrop := flag.Float64("history-max-drop", 10,
		"with -assert-history: the smallest mean drop, in percent, a trajectory failure needs")
	maxTelemetryOverhead := flag.Float64("assert-telemetry-overhead", 0,
		"measure the serving telemetry's end-to-end cost and exit nonzero if it exceeds this many percent (0 = no gate)")
	flag.Parse()

	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format, a...) }

	if *assertBaseline != "" {
		data, err := os.ReadFile(*assertBaseline)
		if err != nil {
			fatal(err)
		}
		var base experiments.BenchReport
		if err := json.Unmarshal(data, &base); err != nil {
			fatal(fmt.Errorf("%s: %w", *assertBaseline, err))
		}
		// Best of five fresh runs per workload: the baseline records
		// best-window figures, and a genuine regression slows every run
		// while a scheduler stall only hits some.
		err = experiments.GateStreamBaseline(&base, *maxDrop, 5, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "xpebench: stream throughput within %.0f%% of the %s baseline\n",
			*maxDrop, *assertBaseline)
		if !*benchJSON {
			return
		}
	}

	if *recordHistory != "" || *assertHistory != "" {
		seedList, err := parseSeeds(*seeds)
		if err != nil {
			fatal(err)
		}
		stats, err := experiments.MeasureStreamSeeds(*quick, seedList, logf)
		if err != nil {
			fatal(err)
		}
		entry := experiments.HistoryEntry{
			Date:      time.Now().UTC().Format("2006-01-02"),
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			Quick:     *quick,
			Workloads: stats,
		}
		if *assertHistory != "" {
			hist, err := experiments.LoadHistory(*assertHistory)
			if err != nil {
				fatal(err)
			}
			if err := experiments.GateHistory(hist, entry, *historyMaxDrop, logf); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "xpebench: multi-seed trajectory healthy against %s\n", *assertHistory)
		}
		if *recordHistory != "" {
			if err := experiments.AppendHistory(*recordHistory, entry); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "xpebench: trajectory entry for %s appended to %s\n",
				entry.Date, *recordHistory)
		}
		if !*benchJSON && *maxTelemetryOverhead == 0 {
			return
		}
	}

	if *maxTelemetryOverhead > 0 && !*benchJSON {
		ov, err := telemetryOverhead(*quick)
		if err != nil {
			fatal(err)
		}
		gateTelemetryOverhead(ov, *maxTelemetryOverhead)
		return
	}

	if *benchJSON {
		rep, err := experiments.BenchJSON(*quick)
		if err != nil {
			fatal(err)
		}
		if err := cacheBench(rep, *quick); err != nil {
			fatal(err)
		}
		ov, err := telemetryOverhead(*quick)
		if err != nil {
			fatal(err)
		}
		rep.TelemetryOverheadPct = ov.MedianPct
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := rep.WriteJSON(w); err != nil {
			fatal(err)
		}
		if *maxTraceOverhead > 0 {
			if rep.TraceOverheadPct > *maxTraceOverhead {
				fatal(fmt.Errorf("disabled-tracing overhead %.3f%% exceeds the %.3f%% budget",
					rep.TraceOverheadPct, *maxTraceOverhead))
			}
			fmt.Fprintf(os.Stderr, "xpebench: disabled-tracing overhead %.3f%% within the %.3f%% budget\n",
				rep.TraceOverheadPct, *maxTraceOverhead)
		}
		if *maxTelemetryOverhead > 0 {
			gateTelemetryOverhead(ov, *maxTelemetryOverhead)
		}
		return
	}

	fns := map[string]func(bool) (*experiments.Table, error){
		"E1": experiments.E1, "E2": experiments.E2, "E3": experiments.E3,
		"E4": experiments.E4, "E5": experiments.E5, "E6": experiments.E6,
		"E7": experiments.E7, "E8": experiments.E8,
	}
	var tables []*experiments.Table
	if *which == "all" {
		ts, err := experiments.All(*quick)
		if err != nil {
			fatal(err)
		}
		tables = ts
	} else {
		fn, ok := fns[strings.ToUpper(*which)]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", *which))
		}
		t, err := fn(*quick)
		if err != nil {
			fatal(err)
		}
		tables = append(tables, t)
	}
	var b strings.Builder
	for _, t := range tables {
		t.Render(&b)
	}
	fmt.Print(b.String())
}

// cacheBench measures the facade's compiled-query cache and appends the
// results to rep. It lives here rather than in internal/experiments
// because that package is imported by the facade's own benchmarks and so
// cannot import the facade back.
//
// Three workloads, all over a fixed alphabet (the document below is
// parsed once up front, so the generation never moves mid-measurement):
//
//   - compile-cold: every iteration compiles a source the cache has never
//     seen. Trailing-space padding makes each source string distinct —
//     distinct cache keys — while trimming makes them parse identically,
//     so the work measured is a genuine parse + automaton construction.
//   - recompile-cache-hit: every iteration re-requests the same source at
//     the same generation; after the first miss each is a map lookup.
//   - the fast path: evaluating through Query.Compiled() (the per-call
//     generation revalidation) vs evaluating the underlying
//     core.CompiledQuery directly, in paired rounds; the median ratio is
//     the revalidation overhead the unchanged-generation path pays.
func cacheBench(rep *experiments.BenchReport, quick bool) error {
	minTime := 300 * time.Millisecond
	rounds := 7
	if quick {
		minTime = 40 * time.Millisecond
		rounds = 5
	}

	eng := xpe.NewEngine()
	doc, err := eng.ParseXMLString(
		"<doc>" + strings.Repeat("<sec><fig/><tab/><fig/></sec>", 500) + "</doc>")
	if err != nil {
		return err
	}
	const src = "[. ; fig ; .] (sec|doc)*"

	pad := 0
	cold := experiments.Measure("compile-cold", 0, minTime, func() {
		pad++
		if _, err := eng.CompileQuery(src + strings.Repeat(" ", pad)); err != nil {
			panic(err)
		}
	})
	rep.Results = append(rep.Results, cold)

	hit := experiments.Measure("recompile-cache-hit", 0, minTime, func() {
		if _, err := eng.CompileQuery(src); err != nil {
			panic(err)
		}
	})
	rep.Results = append(rep.Results, hit)
	if hit.NsPerOp > 0 {
		rep.CacheHitSpeedup = cold.NsPerOp / hit.NsPerOp
	}

	q, err := eng.CompileQuery(src)
	if err != nil {
		return err
	}
	cq := q.Compiled()
	h := doc.Hedge()
	nodes := int64(doc.Size())
	pairTime := minTime / 4
	if pairTime < 10*time.Millisecond {
		pairTime = 10 * time.Millisecond
	}
	var direct, revalidated experiments.BenchResult
	var ratios []float64
	for round := 0; round < rounds; round++ {
		d := experiments.Measure("select-direct", nodes, pairTime, func() {
			cq.SelectEach(h, func(hedge.Path, *hedge.Node) bool { return true })
		})
		if round == 0 || d.NsPerOp < direct.NsPerOp {
			direct = d
		}
		r := experiments.Measure("select-revalidate-fastpath", nodes, pairTime, func() {
			q.Compiled().SelectEach(h, func(hedge.Path, *hedge.Node) bool { return true })
		})
		if round == 0 || r.NsPerOp < revalidated.NsPerOp {
			revalidated = r
		}
		if d.NsPerOp > 0 {
			ratios = append(ratios, r.NsPerOp/d.NsPerOp)
		}
	}
	rep.Results = append(rep.Results, direct, revalidated)
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		m := ratios[len(ratios)/2]
		if len(ratios)%2 == 0 {
			m = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
		}
		rep.FastPathOverheadPct = (m - 1) * 100
	}
	return nil
}

// parseSeeds parses the -seeds list ("42,123,456").
func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-seeds: %q is not an integer", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-seeds: no seeds in %q", s)
	}
	return out, nil
}

// gateTelemetryOverhead applies the budget with the same effect-size
// discipline as the trajectory gate: the median pair overhead must
// exceed the budget AND at least three quarters of the interleaved
// pairs must show the enabled side slower at all (p25 > 1). A genuine
// telemetry cost shifts the whole pair distribution; measurement noise
// straddles 1.0 and fails the second leg.
func gateTelemetryOverhead(ov telemetryCost, budget float64) {
	if ov.MedianPct > budget && ov.P25Pct > 0 {
		fatal(fmt.Errorf("serving-telemetry overhead %.3f%% (p25 %.3f%%) exceeds the %.3f%% budget consistently",
			ov.MedianPct, ov.P25Pct, budget))
	}
	fmt.Fprintf(os.Stderr, "xpebench: serving-telemetry overhead %.3f%% (p25 %.3f%%) within the %.3f%% budget\n",
		ov.MedianPct, ov.P25Pct, budget)
}

// telemetryCost is the paired measurement's summary: the median pair
// overhead (the recorded point estimate) and the 25th-percentile pair
// overhead (the consistency leg of the gate).
type telemetryCost struct {
	MedianPct float64
	P25Pct    float64
}

// nullResponseWriter discards a handler's response; one is built per
// request so header writes never cross requests.
type nullResponseWriter struct{ h http.Header }

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullResponseWriter) WriteHeader(int)             {}

// telemetryOverhead prices the serving telemetry end to end: identical
// feed posts driven straight through serve.Server.ServeHTTP (no
// sockets) against two servers — default telemetry (rollups, request
// ids, per-feed flight recorder) vs Options.DisableTelemetry — in
// op-interleaved paired rounds, with a /metrics scrape every 16th post
// on both sides so the scrape path is charged to the enabled
// configuration (the disabled side answers it with a cheap 404). The
// return is the median pair ratio minus one, in percent. It lives here
// rather than in internal/experiments because that package is imported
// by the facade's benchmarks and so cannot import internal/serve (which
// imports the facade).
func telemetryOverhead(quick bool) (telemetryCost, error) {
	// Records sized like serving documents, not unit-test snippets: the
	// per-record telemetry work (trace commit, rollup adds) must amortize
	// over real evaluation, which is the configuration the budget is
	// stated for.
	recCount, recSize := 8, 1500
	budget := 8 * time.Second
	if quick {
		budget = 2 * time.Second
	}
	var b strings.Builder
	b.WriteString("<corpus>")
	for i := 0; i < recCount; i++ {
		cfg := gen.DefaultDocConfig()
		cfg.Seed = int64(i + 1)
		d := gen.Document(cfg, recSize)
		s, err := xmlhedge.ToString(d)
		if err != nil {
			return telemetryCost{}, err
		}
		b.WriteString(s)
	}
	b.WriteString("</corpus>")
	corpus := []byte(b.String())

	newServer := func(disable bool) (*serve.Server, error) {
		// One evaluation worker: the comparison prices telemetry, and a
		// parallel pipeline's scheduling jitter would drown the signal.
		s, err := serve.NewServer(serve.Options{Engine: xpe.NewEngine(), Workers: 1,
			DisableTelemetry: disable})
		if err != nil {
			return nil, err
		}
		for i, src := range []string{
			"figure section* doc*", "table section* doc*", "section doc*", "figure doc* *",
		} {
			body := fmt.Sprintf(`{"tenant":"bench","name":"q%d","query":%q,"feed":"bench"}`, i, src)
			req := httptest.NewRequest("POST", "/v1/queries", strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusCreated {
				return nil, fmt.Errorf("register %s: %d %s", body, rec.Code, rec.Body.String())
			}
		}
		return s, nil
	}
	enabled, err := newServer(false)
	if err != nil {
		return telemetryCost{}, err
	}
	disabled, err := newServer(true)
	if err != nil {
		return telemetryCost{}, err
	}

	op := func(s *serve.Server) func() {
		posts := 0
		return func() {
			req := httptest.NewRequest("POST", "/v1/feed/bench?tenant=bench&split=doc",
				bytes.NewReader(corpus))
			s.ServeHTTP(&nullResponseWriter{h: make(http.Header)}, req)
			if posts++; posts%16 == 0 {
				scrape := httptest.NewRequest("GET", "/metrics", nil)
				s.ServeHTTP(&nullResponseWriter{h: make(http.Header)}, scrape)
			}
		}
	}
	enabledOp, disabledOp := op(enabled), op(disabled)
	// Warm both sides (engine caches, rollup cells, recorder ring) before
	// anything is timed.
	enabledOp()
	disabledOp()

	// Per-op timed pairs with alternating order, judged by the median
	// pair ratio — the same estimator the disabled-tracing budget uses: a
	// GC pause or scheduler stall lands on individual ops and the median
	// shrugs it off, while a genuine telemetry cost shifts every pair.
	var ratios []float64
	start := time.Now()
	for time.Since(start) < budget || len(ratios) < 16 {
		enabledFirst := len(ratios)%2 == 0
		s0 := time.Now()
		if enabledFirst {
			enabledOp()
		} else {
			disabledOp()
		}
		s1 := time.Now()
		if enabledFirst {
			disabledOp()
		} else {
			enabledOp()
		}
		s2 := time.Now()
		en, dis := float64(s1.Sub(s0)), float64(s2.Sub(s1))
		if !enabledFirst {
			en, dis = dis, en
		}
		if dis > 0 {
			ratios = append(ratios, en/dis)
		}
	}
	sort.Float64s(ratios)
	m := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		m = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	p25 := ratios[len(ratios)/4]
	if os.Getenv("XPEBENCH_DEBUG") != "" {
		fmt.Fprintf(os.Stderr, "xpebench: telemetry pairs=%d p10=%.4f p25=%.4f p50=%.4f p90=%.4f\n",
			len(ratios), ratios[len(ratios)/10], p25, m, ratios[len(ratios)*9/10])
	}
	return telemetryCost{MedianPct: (m - 1) * 100, P25Pct: (p25 - 1) * 100}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xpebench:", err)
	os.Exit(1)
}
