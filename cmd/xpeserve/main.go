// Command xpeserve is the long-lived query-serving daemon: tenants
// register compiled queries over HTTP and stream documents past them,
// getting NDJSON matches back from a single shared evaluation pass per
// feed post.
//
//	xpeserve -addr :8080 &
//	curl -d '{"tenant":"t1","name":"prices","query":"price doc* *","feed":"market"}' \
//	     localhost:8080/v1/queries
//	curl --data-binary @feed.xml localhost:8080/v1/feed/market
//
// The surface is internal/serve; this binary adds the process lifecycle:
// flag wiring, the listener, and graceful drain — on SIGTERM/SIGINT it
// stops admitting evaluation requests (503), lets in-flight streams
// finish up to -drain-timeout, then shuts the listener down.
//
// Telemetry is on by default: GET /metrics serves the Prometheus text
// exposition, every evaluation request carries an X-Request-Id (echoed
// or assigned) that appears in the structured access log and the
// per-feed flight recorder, and -slow-record routes slow records to the
// log with tenant/feed/request-id context. -no-telemetry turns all of
// it off.
//
// Like a pprof port, the server is unauthenticated: bind it to loopback
// or a trusted network.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xpe"
	"xpe/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:8080", "listen address")
		workers      = flag.Int("workers", 0, "evaluation workers per stream (0 = GOMAXPROCS)")
		maxConc      = flag.Int("max-concurrent", 4, "streams evaluating at once")
		maxQueue     = flag.Int("max-queue", 8, "admission waiters per tenant before 429")
		stateDir     = flag.String("state-dir", "", "directory for crash-safe registration persistence (empty = in-memory only)")
		breakN       = flag.Int("breaker-threshold", 8, "consecutive record failures tripping a feed's circuit breaker (negative = disabled)")
		breakBackoff = flag.Duration("breaker-backoff", 5*time.Second, "initial open interval after a breaker trip (doubles per failed probe)")
		maxTenantQ   = flag.Int("max-queries-per-tenant", 256, "registrations allowed per tenant")
		recBytes     = flag.Int64("max-record-bytes", 0, "default per-record input byte budget (0 = unlimited)")
		recNodes     = flag.Int("max-record-nodes", 0, "default per-record node budget (0 = unlimited)")
		recTimeout   = flag.Duration("record-timeout", 0, "default per-record evaluation budget across all queries (0 = unlimited)")
		lazy         = flag.Bool("lazy", false, "compile with lazy determinization")
		lazyBudget   = flag.Int("lazy-budget", 0, "lazy transition-cache budget (0 = unlimited; needs -lazy)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace for in-flight streams on SIGTERM")
		slowRecord   = flag.Duration("slow-record", 0, "log records slower than this, with tenant/feed/request-id context (0 = off)")
		labelSets    = flag.Int("max-label-sets", 0, "dimensional rollup cardinality cap before folding into 'other' (0 = default 128)")
		traceDepth   = flag.Int("trace-depth", 0, "per-feed flight-recorder ring capacity (0 = default 32)")
		noTelemetry  = flag.Bool("no-telemetry", false, "disable serving telemetry wholesale (no /metrics, no request ids, no recorders)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "xpeserve: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	if *lazyBudget != 0 && !*lazy {
		fmt.Fprintln(os.Stderr, "xpeserve: -lazy-budget requires -lazy")
		os.Exit(2)
	}

	var engOpts []xpe.EngineOption
	if *lazy {
		engOpts = append(engOpts, xpe.WithLazyTransitionBudget(*lazyBudget))
	}
	srv, err := serve.NewServer(serve.Options{
		Engine:              xpe.NewEngine(engOpts...),
		MaxConcurrent:       *maxConc,
		MaxQueueDepth:       *maxQueue,
		MaxQueriesPerTenant: *maxTenantQ,
		Workers:             *workers,
		StateDir:            *stateDir,
		BreakerThreshold:    *breakN,
		BreakerBackoff:      *breakBackoff,
		Logger:              slog.Default(),
		SlowRecordThreshold: *slowRecord,
		MaxLabelSets:        *labelSets,
		FeedTraceDepth:      *traceDepth,
		DisableTelemetry:    *noTelemetry,
		DefaultBudgets: serve.Budgets{
			MaxRecordBytes: *recBytes,
			MaxRecordNodes: *recNodes,
			RecordTimeout:  *recTimeout,
		},
	})
	if err != nil {
		log.Fatalf("xpeserve: %v", err)
	}
	defer srv.Close()
	if *stateDir != "" {
		st := srv.Stats()
		log.Printf("xpeserve: recovered %d registrations (%d quarantined) from %s",
			st.Registered, st.Quarantined, *stateDir)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("xpeserve: serving on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("xpeserve: %v", err)
	case <-ctx.Done():
	}

	// Drain: refuse new evaluation work immediately, give in-flight
	// streams the grace window, then close the listener and connections.
	log.Printf("xpeserve: draining (up to %s)", *drainTimeout)
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("xpeserve: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("xpeserve: shutdown: %v", err)
	}
	log.Print("xpeserve: stopped")
}
