// Command xpegen samples random documents from a schema grammar — the
// witness/sampling machinery of the reproduction exposed as a tool (useful
// for seeding test corpora and for eyeballing what a grammar accepts).
//
// Usage:
//
//	xpegen -grammar g.txt [-n 5] [-depth 4] [-seed 1] [-format term|xml]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"xpe"
	"xpe/internal/ha"
	"xpe/internal/xmlhedge"
)

func main() {
	grammarPath := flag.String("grammar", "", "schema grammar file (required)")
	n := flag.Int("n", 5, "number of documents to sample")
	depth := flag.Int("depth", 4, "depth budget for random realization")
	seed := flag.Int64("seed", 1, "random seed")
	format := flag.String("format", "term", "output format: term or xml")
	flag.Parse()
	if *grammarPath == "" {
		fmt.Fprintln(os.Stderr, "xpegen: -grammar is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*grammarPath)
	if err != nil {
		fatal(err)
	}
	eng := xpe.NewEngine()
	sch, err := eng.ParseSchema(string(src))
	if err != nil {
		fatal(err)
	}
	sampler, ok := ha.NewSampler(sch.Underlying().DHA, rand.New(rand.NewSource(*seed)))
	if !ok {
		fatal(fmt.Errorf("the grammar's language is empty"))
	}
	for i := 0; i < *n; i++ {
		h, ok := sampler.Sample(*depth)
		if !ok {
			fatal(fmt.Errorf("sampling failed"))
		}
		switch *format {
		case "term":
			fmt.Println(h)
		case "xml":
			s, err := xmlhedge.ToString(h)
			if err != nil {
				fatal(err)
			}
			fmt.Println(s)
		default:
			fatal(fmt.Errorf("unknown format %q", *format))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xpegen:", err)
	os.Exit(1)
}
