package main

import (
	"flag"
	"io"
	"strings"
	"testing"
)

// parse runs a synthetic command line through the real flag definitions
// and returns the validation verdict.
func parse(t *testing.T, args ...string) string {
	t.Helper()
	fs := flag.NewFlagSet("xpeselect", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := defineFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return validateFlags(fs, f)
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		args []string
		want string // substring of the expected diagnostic, "" = valid
	}{
		// Exactly one of -query / -xpath: both and neither are errors, not
		// a silent preference.
		{[]string{"-query", "a b*"}, ""},
		{[]string{"-xpath", "/a/b"}, ""},
		{[]string{"-query", "a b*", "-xpath", "/a/b"}, "exactly one of -query or -xpath"},
		{[]string{}, "exactly one of -query or -xpath"},
		// -term feeds the in-memory parser; -stream has no term reader.
		{[]string{"-query", "a b*", "-stream", "-term"}, "-stream reads XML"},
		// Stream-only flags without -stream: loud, naming the flags.
		{[]string{"-query", "a b*", "-workers", "4"}, "-workers"},
		{[]string{"-query", "a b*", "-on-error", "skip"}, "-on-error"},
		// Visit reports set flags in lexical order.
		{[]string{"-query", "a b*", "-split", "entry", "-record-timeout", "1s"}, "-record-timeout, -split"},
		{[]string{"-query", "a b*", "-no-prefilter"}, "-no-prefilter"},
		{[]string{"-query", "a b*", "-max-record-nodes", "10"}, "require(s) -stream"},
		// The same flags with -stream are fine.
		{[]string{"-query", "a b*", "-stream", "-workers", "4", "-on-error", "skip", "-split", "entry"}, ""},
		// -lazy, -explain, -metrics, -debug-addr configure compilation or
		// observability, not the pipeline: valid on the in-memory path too.
		{[]string{"-query", "a b*", "-lazy"}, ""},
		{[]string{"-query", "a b*", "-lazy", "-explain", "-metrics"}, ""},
		{[]string{"-query", "a b*", "-debug-addr", "localhost:0"}, ""},
	}
	for _, c := range cases {
		got := parse(t, c.args...)
		if c.want == "" && got != "" {
			t.Errorf("%v: unexpected diagnostic %q", c.args, got)
		}
		if c.want != "" && !strings.Contains(got, c.want) {
			t.Errorf("%v: diagnostic %q does not mention %q", c.args, got, c.want)
		}
	}
}
