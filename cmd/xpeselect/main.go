// Command xpeselect runs a selection query against an XML document and
// prints the located nodes.
//
// Usage:
//
//	xpeselect -query 'fig sec* [* ; doc ; *]' [-format paths|term|xml] [file.xml]
//
// With no file argument the document is read from standard input. Query
// syntax is documented on xpe.Engine.CompileQuery.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xpe"
	"xpe/internal/hedge"
	"xpe/internal/xmlhedge"
)

func main() {
	query := flag.String("query", "", "selection query")
	xpathQ := flag.String("xpath", "", "XPath location path (translated to a selection query)")
	format := flag.String("format", "paths", "output format: paths, term, or xml")
	term := flag.Bool("term", false, "input is in term syntax rather than XML")
	flag.Parse()
	if (*query == "") == (*xpathQ == "") {
		fmt.Fprintln(os.Stderr, "xpeselect: exactly one of -query or -xpath is required")
		flag.Usage()
		os.Exit(2)
	}

	var input io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		input = f
	}

	eng := xpe.NewEngine()
	var doc *xpe.Document
	var err error
	if *term {
		data, rerr := io.ReadAll(input)
		if rerr != nil {
			fatal(rerr)
		}
		doc, err = eng.ParseTerm(string(data))
	} else {
		doc, err = eng.ParseXML(input)
	}
	if err != nil {
		fatal(err)
	}

	var q *xpe.Query
	if *xpathQ != "" {
		q, err = eng.CompileXPath(*xpathQ)
	} else {
		q, err = eng.CompileQuery(*query)
	}
	if err != nil {
		fatal(err)
	}

	matches := q.Select(doc)
	for _, m := range matches {
		switch *format {
		case "paths":
			fmt.Println(m.Path)
		case "term":
			fmt.Printf("%s\t%s\n", m.Path, m.Term)
		case "xml":
			s, err := xmlhedge.ToString(hedge.Hedge{m.Node})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s\t%s\n", m.Path, s)
		default:
			fatal(fmt.Errorf("unknown format %q", *format))
		}
	}
	fmt.Fprintf(os.Stderr, "xpeselect: %d node(s) located\n", len(matches))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xpeselect:", err)
	os.Exit(1)
}
