// Command xpeselect runs a selection query against an XML document and
// prints the located nodes.
//
// Usage:
//
//	xpeselect -query 'fig sec* [* ; doc ; *]' [-format paths|term|xml] [file.xml]
//	xpeselect -query 'a b*' -stream [-split entry] [-workers N] [-on-error abort|skip] [file.xml]
//
// With no file argument the document is read from standard input. Query
// syntax is documented on xpe.Engine.CompileQuery.
//
// With -stream the document is never held in memory: it is split into
// records (children of the document element, or subtrees rooted at the
// -split element) and each record is evaluated independently, so paths
// are record-relative and envelope conditions range over the record
// subtree only. The query is resolved against the alphabet once, when
// the stream starts, so '.' in a streamed query ranges over the labels
// interned at that point (its own labels, on a fresh engine) — labels
// first seen mid-stream stay outside its closed world for the run.
//
// -on-error picks the failed-record policy for -stream: abort (default)
// stops at the first bad record, skip drops it and continues (requires
// -split past broken markup; the summary then reports skipped/recovered
// counts). -max-record-bytes, -max-stream-bytes, and -record-timeout bound
// the resources one record / the whole run may consume. Stream-only flags
// given without -stream are an error (exit 2), not a silent no-op; -lazy,
// -explain, -metrics, and -debug-addr apply to both paths.
//
// By default -stream skims each record's raw bytes for the query's
// required element labels and skips records that cannot match without
// parsing them (the summary reports the skip rate); -no-prefilter
// disables the cascade. -lazy compiles the query with on-demand subset
// construction, bounding compile time on queries whose eager
// determinization would blow up; the summary reports the lazy-DHA cache
// activity.
//
// Observability: -explain prints each match's provenance (which envelope
// base matched which ancestor), -slow-record logs -stream records slower
// than the given duration, and -debug-addr serves the live debug surface
// — engine stats, cache state, recent record traces, pprof — for the
// run's duration:
//
//	xpeselect -query 'a b*' -stream -debug-addr localhost:6060 big.xml
//	curl http://localhost:6060/debug/xpe/traces
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"xpe"
	"xpe/debug"
	"xpe/internal/hedge"
	"xpe/internal/xmlhedge"
)

// cliFlags holds every parsed flag; defineFlags registers them on a
// FlagSet so validation is testable against synthetic command lines.
type cliFlags struct {
	query, xpathQ, format, split, onError, debugAddr *string
	term, streaming, noPrefilter, lazy               *bool
	showMetrics, explain                             *bool
	workers, maxNodes                                *int
	maxRecBytes, maxStreamBytes                      *int64
	recTimeout, slowRec                              *time.Duration
}

func defineFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		query:          fs.String("query", "", "selection query"),
		xpathQ:         fs.String("xpath", "", "XPath location path (translated to a selection query)"),
		format:         fs.String("format", "paths", "output format: paths, term, or xml"),
		term:           fs.Bool("term", false, "input is in term syntax rather than XML"),
		streaming:      fs.Bool("stream", false, "evaluate record by record in bounded memory"),
		split:          fs.String("split", "", "record root element for -stream (default: children of the document element)"),
		workers:        fs.Int("workers", 0, "concurrent record workers for -stream (0 = GOMAXPROCS)"),
		maxNodes:       fs.Int("max-record-nodes", 0, "fail a -stream record over this node count (0 = unlimited)"),
		maxRecBytes:    fs.Int64("max-record-bytes", 0, "fail a -stream record spanning more input bytes (0 = unlimited)"),
		maxStreamBytes: fs.Int64("max-stream-bytes", 0, "abort -stream past this total input size (0 = unlimited)"),
		recTimeout:     fs.Duration("record-timeout", 0, "fail a -stream record evaluating longer than this (0 = unlimited)"),
		onError:        fs.String("on-error", "abort", "failed-record policy for -stream: abort or skip"),
		noPrefilter:    fs.Bool("no-prefilter", false, "disable the -stream raw-byte record prefilter (results are identical; only throughput differs)"),
		lazy:           fs.Bool("lazy", false, "compile with lazy determinization (on-demand subset construction; bounds compile cost on adversarial queries; applies to -stream and in-memory runs alike)"),
		showMetrics:    fs.Bool("metrics", false, "print engine metrics as JSON on stderr after the run"),
		explain:        fs.Bool("explain", false, "print each match's provenance (why the query matched)"),
		slowRec:        fs.Duration("slow-record", 0, "log -stream records slower than this duration (0 = off)"),
		debugAddr:      fs.String("debug-addr", "", "serve the live debug surface (stats, cache, traces, pprof) on this address during the run"),
	}
}

// streamOnly names the flags that configure the record-splitting pipeline:
// setting one without -stream used to be silently ignored, which reads as
// "my limit/policy is in force" when nothing of the sort is running.
// validateFlags rejects that loudly instead. (-lazy, -explain, -metrics,
// and -debug-addr are NOT in this set: they apply to both paths.)
var streamOnly = map[string]bool{
	"split": true, "workers": true, "on-error": true, "no-prefilter": true,
	"max-record-nodes": true, "max-record-bytes": true, "max-stream-bytes": true,
	"record-timeout": true, "slow-record": true,
}

// validateFlags checks cross-flag consistency after parsing, returning a
// diagnostic message ("" when the combination is valid).
func validateFlags(fs *flag.FlagSet, f *cliFlags) string {
	if (*f.query == "") == (*f.xpathQ == "") {
		return "exactly one of -query or -xpath is required"
	}
	if *f.streaming && *f.term {
		return "-stream reads XML, not -term input"
	}
	if !*f.streaming {
		var misplaced []string
		fs.Visit(func(fl *flag.Flag) {
			if streamOnly[fl.Name] {
				misplaced = append(misplaced, "-"+fl.Name)
			}
		})
		if len(misplaced) > 0 {
			return fmt.Sprintf("%s require(s) -stream (the in-memory path has no record pipeline)",
				strings.Join(misplaced, ", "))
		}
	}
	return ""
}

func main() {
	f := defineFlags(flag.CommandLine)
	flag.Parse()
	if msg := validateFlags(flag.CommandLine, f); msg != "" {
		fmt.Fprintln(os.Stderr, "xpeselect: "+msg)
		flag.Usage()
		os.Exit(2)
	}
	query, xpathQ, format := f.query, f.xpathQ, f.format
	term, streaming, split := f.term, f.streaming, f.split
	workers, maxNodes, maxRecBytes := f.workers, f.maxNodes, f.maxRecBytes
	maxStreamBytes, recTimeout, onError := f.maxStreamBytes, f.recTimeout, f.onError
	noPrefilter, lazy, showMetrics := f.noPrefilter, f.lazy, f.showMetrics
	explain, slowRec, debugAddr := f.explain, f.slowRec, f.debugAddr

	var input io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		input = f
	}

	var engOpts []xpe.EngineOption
	if *lazy {
		engOpts = append(engOpts, xpe.WithLazyDeterminization())
	}
	eng := xpe.NewEngine(engOpts...)

	if *debugAddr != "" {
		// The engine-wide recorder gives /debug/xpe/traces content for
		// both the streaming and in-memory paths.
		eng.SetFlightRecorder(xpe.NewFlightRecorder(256))
		srv, err := debug.NewServer(*debugAddr, debug.Options{Engine: eng})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "xpeselect: debug surface at http://%s/debug/xpe/\n", srv.Addr())
	}

	if *streaming {
		q := compileQuery(eng, *query, *xpathQ)
		opts := xpe.SelectOptions{
			Workers:             *workers,
			SplitElement:        *split,
			MaxRecordNodes:      *maxNodes,
			MaxRecordBytes:      *maxRecBytes,
			MaxStreamBytes:      *maxStreamBytes,
			RecordTimeout:       *recTimeout,
			Explain:             *explain,
			SlowRecordThreshold: *slowRec,
		}
		if *noPrefilter {
			opts.Prefilter = xpe.PrefilterOff
		}
		switch *onError {
		case "abort":
			// nil keeps the historical abort surface (the raw typed cause).
		case "skip":
			opts.OnError = xpe.Skip
		default:
			fmt.Fprintf(os.Stderr, "xpeselect: -on-error must be abort or skip, not %q\n", *onError)
			os.Exit(2)
		}
		seq, stats := eng.SelectStreamSeq(context.Background(), input, q, opts)
		for m, err := range seq {
			if err != nil {
				fatal(err)
			}
			if perr := printMatch(m.Match, *format, m.RecordPath); perr != nil {
				fatal(perr)
			}
			if m.Explanation != nil {
				fmt.Print(m.Explanation.String())
			}
		}
		printSummary(eng, *stats, *showMetrics)
		return
	}

	var doc *xpe.Document
	var err error
	if *term {
		data, rerr := io.ReadAll(input)
		if rerr != nil {
			fatal(rerr)
		}
		doc, err = eng.ParseTerm(string(data))
	} else {
		doc, err = eng.ParseXML(input)
	}
	if err != nil {
		fatal(err)
	}

	q := compileQuery(eng, *query, *xpathQ)
	// The shared options surface drives both paths: the in-memory run
	// honors Explain (and Metrics/Trace) through Engine.Select, printing
	// matches and provenance exactly like the streaming loop above.
	matches, err := eng.Select(context.Background(), doc, q, xpe.SelectOptions{Explain: *explain})
	if err != nil {
		fatal(err)
	}
	for _, m := range matches {
		if err := printMatch(m, *format, ""); err != nil {
			fatal(err)
		}
		if m.Explanation != nil {
			fmt.Print(m.Explanation.String())
		}
	}
	fmt.Fprintf(os.Stderr, "xpeselect: %d node(s) located%s\n", len(matches), cacheSummary(eng))
	printMetrics(eng, *showMetrics)
}

// printSummary writes the streaming run summary — the same shape as the
// in-memory path's, extended with record/byte/fault accounting — followed
// by the metrics snapshot when enabled.
func printSummary(eng *xpe.Engine, stats xpe.StreamStats, showMetrics bool) {
	faults := ""
	if stats.Skipped > 0 || stats.Recovered > 0 {
		faults = fmt.Sprintf(", %d skipped, %d recovered", stats.Skipped, stats.Recovered)
	}
	if stats.TimedOut > 0 {
		faults += fmt.Sprintf(", %d timed out", stats.TimedOut)
	}
	fmt.Fprintf(os.Stderr, "xpeselect: %d node(s) located in %d record(s), %d bytes%s%s\n",
		stats.Matches, stats.Records, stats.Bytes, faults, cacheSummary(eng))
	if stats.Prefiltered > 0 {
		total := stats.Records + stats.Prefiltered
		fmt.Fprintf(os.Stderr, "xpeselect: prefilter skipped %d of %d record(s) (%.1f%%) without parsing\n",
			stats.Prefiltered, total, 100*float64(stats.Prefiltered)/float64(total))
	}
	if stats.LazyStates > 0 || stats.LazyHits > 0 {
		fmt.Fprintf(os.Stderr, "xpeselect: lazy determinization: %d state(s) built, %d cache hit(s), %d eviction(s)\n",
			stats.LazyStates, stats.LazyHits, stats.LazyEvictions)
	}
	printMetrics(eng, showMetrics)
}

// cacheSummary renders the compiled-query cache counters for the run
// summary; recompiles (misses past the first per query) mean the
// alphabet grew between compilation and evaluation.
func cacheSummary(eng *xpe.Engine) string {
	c := eng.Stats().Cache
	return fmt.Sprintf(" (query cache: %d hit(s), %d miss(es))", c.Hits, c.Misses)
}

// printMetrics writes the engine's cumulative metrics snapshot to stderr
// when -metrics is set.
func printMetrics(eng *xpe.Engine, enabled bool) {
	if !enabled {
		return
	}
	if err := xpe.WriteStats(os.Stderr, eng.Stats()); err != nil {
		fatal(err)
	}
}

// compileQuery compiles whichever of -query / -xpath was given. Compile
// order no longer affects what a query locates — compiled queries are
// generation-stamped and recompile transparently when the alphabet has
// grown — but the in-memory path still compiles after the document parse
// so the evaluation pays no first-use recompile.
func compileQuery(eng *xpe.Engine, query, xpathQ string) *xpe.Query {
	var q *xpe.Query
	var err error
	if xpathQ != "" {
		q, err = eng.CompileXPath(xpathQ)
	} else {
		q, err = eng.CompileQuery(query)
	}
	if err != nil {
		fatal(err)
	}
	return q
}

// printMatch renders one located node; recPath, when non-empty, prefixes
// the record-relative path with the record's position in the document.
func printMatch(m xpe.Match, format, recPath string) error {
	path := m.Path
	if recPath != "" {
		path = recPath + "/" + path
	}
	switch format {
	case "paths":
		fmt.Println(path)
	case "term":
		fmt.Printf("%s\t%s\n", path, m.Term)
	case "xml":
		s, err := xmlhedge.ToString(hedge.Hedge{m.Node})
		if err != nil {
			return err
		}
		fmt.Printf("%s\t%s\n", path, s)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}

// fatal prints err and exits, expanding the facade's typed errors into
// position-bearing diagnostics.
func fatal(err error) {
	var ce *xpe.CompileError
	var pe *xpe.ParseError
	var le *xpe.LimitError
	var re *xpe.RecordError
	var ie *xpe.InternalError
	switch {
	case errors.As(err, &re):
		fmt.Fprintf(os.Stderr, "xpeselect: record %d (at %s) failed: %v\n", re.Record, re.Path, re.Err)
		if errors.As(re.Err, &ie) {
			os.Stderr.Write(ie.Stack)
		}
	case errors.As(err, &ie):
		fmt.Fprintf(os.Stderr, "xpeselect: internal error on record %d (at %s): %v\n", ie.Record, ie.Path, ie.Value)
		os.Stderr.Write(ie.Stack)
	case errors.As(err, &ce):
		fmt.Fprintf(os.Stderr, "xpeselect: cannot compile query: %s\n", ce.Msg)
		if ce.Offset >= 0 {
			fmt.Fprintf(os.Stderr, "  at offset %d: %s\n", ce.Offset, ce.Excerpt)
		}
	case errors.As(err, &pe):
		fmt.Fprintf(os.Stderr, "xpeselect: malformed input: %s\n", pe.Msg)
		if pe.Line > 0 {
			fmt.Fprintf(os.Stderr, "  at line %d", pe.Line)
			if pe.Excerpt != "" {
				fmt.Fprintf(os.Stderr, ": %s", pe.Excerpt)
			}
			fmt.Fprintln(os.Stderr)
		}
	case errors.As(err, &le):
		fmt.Fprintf(os.Stderr, "xpeselect: record %d (at %s) exceeds the %s limit of %d\n",
			le.Record, le.Path, le.Kind, le.Limit)
	default:
		fmt.Fprintln(os.Stderr, "xpeselect:", err)
	}
	os.Exit(1)
}
