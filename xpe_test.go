package xpe

import (
	"strings"
	"testing"
)

func TestFacadeSelect(t *testing.T) {
	eng := NewEngine()
	doc, err := eng.ParseXMLString(
		"<doc><sec><fig/><tab/><fig/></sec><sec><fig/></sec></doc>")
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("[* ; fig ; tab .] (sec|doc)*")
	if err != nil {
		t.Fatal(err)
	}
	ms := q.Select(doc)
	if len(ms) != 1 || ms[0].Path != "1.1.1" {
		t.Fatalf("matches = %v", ms)
	}
	if ms[0].Term != "fig" {
		t.Fatalf("term = %q", ms[0].Term)
	}
}

func TestFacadeTermAndXMLRoundTrip(t *testing.T) {
	eng := NewEngine()
	doc, err := eng.ParseTerm("doc<sec<fig> par<$x>>")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Size() != 5 {
		t.Fatalf("size = %d", doc.Size())
	}
	xml, err := doc.XML()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xml, "<fig></fig>") {
		t.Fatalf("xml = %q", xml)
	}
	if doc.Term() != "doc<sec<fig> par<$x>>" {
		t.Fatalf("term = %q", doc.Term())
	}
}

func TestFacadeSchemaWorkflow(t *testing.T) {
	eng := NewEngine()
	sch, err := eng.ParseSchema(`
start = doc
element doc { sec* }
element sec { (sec | fig | par)* }
element fig { empty }
element par { text* }
`)
	if err != nil {
		t.Fatal(err)
	}
	good, _ := eng.ParseTerm("doc<sec<fig>>")
	bad, _ := eng.ParseTerm("doc<fig>")
	if !sch.Validate(good) || sch.Validate(bad) {
		t.Fatal("validation wrong")
	}

	q, err := eng.CompileQuery("select(fig*; [* ; sec ; *] (sec|doc)*)")
	if err != nil {
		t.Fatal(err)
	}
	out, err := sch.TransformSelect(q, Subtrees)
	if err != nil {
		t.Fatal(err)
	}
	secOfFigs, _ := eng.ParseTerm("sec<fig fig>")
	secOfPar, _ := eng.ParseTerm("sec<par>")
	if !out.Validate(secOfFigs) || out.Validate(secOfPar) {
		t.Fatal("select output schema wrong")
	}

	del, err := sch.TransformDelete(q)
	if err != nil {
		t.Fatal(err)
	}
	// Deleting fig-only sections from doc<sec<fig>> leaves doc<>.
	deleted := q.Delete(good)
	if deleted.Term() != "doc" {
		t.Fatalf("deleted = %q", deleted.Term())
	}
	if !del.Validate(deleted) {
		t.Fatal("deleted document must conform to the delete output schema")
	}
}

func TestFacadeErrors(t *testing.T) {
	eng := NewEngine()
	if _, err := eng.ParseXMLString("<a>"); err == nil {
		t.Fatal("bad XML accepted")
	}
	if _, err := eng.ParseTerm("a<"); err == nil {
		t.Fatal("bad term accepted")
	}
	if _, err := eng.CompileQuery("[;;]"); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := eng.ParseSchema("nope"); err == nil {
		t.Fatal("bad schema accepted")
	}
}
