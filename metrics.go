package xpe

import (
	"io"

	"xpe/internal/metrics"
)

// Stats is a point-in-time snapshot of engine instrumentation: evaluation
// counters (documents, nodes visited, marks emitted, automaton transitions
// taken), compiled-query cache counters (hits, misses, evictions — see
// Engine.CompileQuery for the recompile cost model they expose), streaming
// splitter counters (records, nodes, bytes, arena reuse), and streaming
// stage timings (split / eval / deliver, wall time, per-record latency
// histogram, worker occupancy). Snapshots are plain values; encode one
// with WriteJSON for a stable, diff-friendly layout.
type Stats = metrics.Snapshot

// Stats returns a snapshot of the engine's cumulative instrumentation.
// Every query compiled through this engine flushes evaluation counters
// here (one atomic flush per document — the hot path itself carries no
// atomics), and streaming runs without a per-run sink flush their splitter
// and stage metrics here too. Safe to call concurrently with in-flight
// Select / SelectStream / BulkSelect work: counters are atomic, so a
// snapshot taken mid-run is a consistent-enough view (each cell is exact;
// cross-cell skew is bounded by one in-flight document).
func (e *Engine) Stats() Stats { return e.metrics.Snapshot() }

// MetricsSink collects per-run streaming metrics. Attach one via
// SelectOptions.Metrics to observe a single SelectStream run in isolation;
// the run's splitter and stage metrics land in the sink, and the engine's
// cumulative Stats still receives them (the facade merges the sink's delta
// back after the run). Evaluation counters (nodes visited, transitions)
// are per-query, not per-run: they flow to the engine registry only.
//
// A sink is reusable across runs (metrics accumulate) and safe for
// concurrent use.
type MetricsSink struct {
	reg metrics.Metrics
}

// NewMetricsSink returns an empty sink.
func NewMetricsSink() *MetricsSink { return &MetricsSink{} }

// Stats returns a snapshot of everything the sink has collected.
func (s *MetricsSink) Stats() Stats { return s.reg.Snapshot() }

// WriteStats encodes a snapshot as indented JSON with a fixed field
// order, suitable for golden files and dashboards.
func WriteStats(w io.Writer, s Stats) error { return s.WriteJSON(w) }
