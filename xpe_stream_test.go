package xpe

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"xpe/internal/gen"
	"xpe/internal/hedge"
	"xpe/internal/xmlhedge"
)

// buildCorpus generates nDocs random docbook-like documents and serializes
// them back to back under a <corpus> wrapper, so the default record split
// (children of the document element) yields exactly the generated
// documents as records.
func buildCorpus(t testing.TB, nDocs int) ([]hedge.Hedge, string) {
	t.Helper()
	var b strings.Builder
	b.WriteString("<corpus>")
	docs := make([]hedge.Hedge, nDocs)
	for i := range docs {
		cfg := gen.DefaultDocConfig()
		cfg.Seed = int64(i + 1)
		docs[i] = gen.Document(cfg, 150+100*i)
		s, err := xmlhedge.ToString(docs[i])
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(s)
	}
	b.WriteString("</corpus>")
	return docs, b.String()
}

// TestSelectStreamDifferential: streaming a serialized corpus yields
// byte-identical match sets (record, path, term) to in-memory Select over
// each record, for every query family and worker count.
func TestSelectStreamDifferential(t *testing.T) {
	docs, corpus := buildCorpus(t, 8)
	eng := NewEngine()
	// Intern the corpus alphabet before compiling, the same closed-world
	// discipline in-memory callers follow.
	if _, err := eng.ParseXMLString(corpus); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"figure section* [* ; doc ; *]",                      // path expression
		"[* ; figure ; table .] (section|doc)*",              // sibling-sensitive
		"select(figure*; [* ; section ; *] (section|doc)*)",  // subhedge + envelope
		"select(.; [* ; table ; . figure .] (section|doc)*)", // elder-sibling condition
	}
	for _, src := range queries {
		q, err := eng.CompileQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}

		var want strings.Builder
		for i, d := range docs {
			for _, m := range q.Select(eng.FromHedge(d)) {
				fmt.Fprintf(&want, "%d|%s|%s\n", i, m.Path, m.Term)
			}
		}

		for _, workers := range []int{1, 4} {
			var got strings.Builder
			stats, err := eng.SelectStream(context.Background(), strings.NewReader(corpus), q,
				SelectOptions{Workers: workers},
				func(m StreamMatch) error {
					fmt.Fprintf(&got, "%d|%s|%s\n", m.Record, m.Path, m.Term)
					return nil
				})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", src, workers, err)
			}
			if got.String() != want.String() {
				t.Errorf("%s workers=%d: stream and in-memory match sets differ\nstream:\n%s\nselect:\n%s",
					src, workers, got.String(), want.String())
			}
			if stats.Records != int64(len(docs)) {
				t.Errorf("%s workers=%d: records = %d, want %d", src, workers, stats.Records, len(docs))
			}
			if stats.Bytes != int64(len(corpus)) {
				t.Errorf("%s workers=%d: bytes = %d, want %d", src, workers, stats.Bytes, len(corpus))
			}
		}
	}
}

// TestSelectStreamSplitElement: a named split locates records at any
// depth, and RecordPath + Path addresses the match in the whole document.
func TestSelectStreamSplitElement(t *testing.T) {
	input := `<db><group><entry><a/><b/></entry></group><entry><c><a/><b/></c></entry></db>`
	eng := NewEngine()
	whole, err := eng.ParseXMLString(input)
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("[* ; a ; b .] (entry|c)*")
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	_, err = eng.SelectStream(context.Background(), strings.NewReader(input), q,
		SelectOptions{SplitElement: "entry"},
		func(m StreamMatch) error {
			seen++
			// Glue the record-relative path onto the record root's path:
			// drop the leading "1" (the record root) from m.Path.
			global := m.RecordPath
			if rest, ok := strings.CutPrefix(m.Path, "1."); ok {
				global += "." + rest
			}
			n := whole.Hedge().At(parseDewey(t, global))
			if n == nil || n.String() != m.Term {
				t.Errorf("match %s in record %s: global path %s resolves to %v, want %s",
					m.Path, m.RecordPath, global, n, m.Term)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Fatalf("matches = %d, want 2", seen)
	}
}

func parseDewey(t *testing.T, s string) hedge.Path {
	t.Helper()
	var p hedge.Path
	for _, part := range strings.Split(s, ".") {
		var x int
		if _, err := fmt.Sscan(part, &x); err != nil {
			t.Fatalf("bad dewey %q: %v", s, err)
		}
		p = append(p, x-1)
	}
	return p
}

func TestSelectStreamTypedErrors(t *testing.T) {
	eng := NewEngine()
	q, err := eng.CompileQuery("entry")
	if err != nil {
		t.Fatal(err)
	}

	// Malformed XML surfaces as *ParseError.
	_, err = eng.SelectStream(context.Background(), strings.NewReader("<feed><entry></feed>"), q,
		SelectOptions{}, func(StreamMatch) error { return nil })
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}

	// A record over the node bound surfaces as *LimitError.
	_, err = eng.SelectStream(context.Background(),
		strings.NewReader("<feed><entry><a/><b/><c/></entry></feed>"), q,
		SelectOptions{MaxRecordNodes: 2}, func(StreamMatch) error { return nil })
	var le *LimitError
	if !errors.As(err, &le) || le.Kind != "nodes" || le.Limit != 2 || le.Record != 0 {
		t.Fatalf("err = %v, want nodes *LimitError", err)
	}

	// ErrStop ends the stream cleanly.
	stats, err := eng.SelectStream(context.Background(),
		strings.NewReader("<feed><entry/><entry/><entry/></feed>"), q,
		SelectOptions{}, func(StreamMatch) error { return ErrStop })
	if err != nil || stats.Matches != 1 {
		t.Fatalf("ErrStop: stats=%+v err=%v", stats, err)
	}

	// Cancellation propagates.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = eng.SelectStream(ctx, strings.NewReader("<feed><entry/></feed>"), q,
		SelectOptions{}, func(StreamMatch) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSelectStreamSeq(t *testing.T) {
	eng := NewEngine()
	q, err := eng.CompileQuery("entry")
	if err != nil {
		t.Fatal(err)
	}
	input := "<feed><entry/><entry/><entry/><entry/></feed>"
	var n int
	seq, stats := eng.SelectStreamSeq(context.Background(), strings.NewReader(input), q, SelectOptions{})
	for m, err := range seq {
		if err != nil {
			t.Fatal(err)
		}
		if m.Record != n {
			t.Fatalf("record %d, want %d", m.Record, n)
		}
		n++
		if n == 2 {
			break // exercises early cancellation through the pull iterator
		}
	}
	if n != 2 {
		t.Fatalf("iterated %d, want 2", n)
	}
	// The stats pointer is populated once iteration ends, even after an
	// early break (the partial run's accounting).
	if stats.Records == 0 || stats.Matches == 0 {
		t.Fatalf("stats not populated after iteration: %+v", *stats)
	}

	// Errors are yielded as the final pair.
	var last error
	errSeq, _ := eng.SelectStreamSeq(context.Background(), strings.NewReader("<feed><bad"), q, SelectOptions{})
	for _, err := range errSeq {
		last = err
	}
	var pe *ParseError
	if !errors.As(last, &pe) {
		t.Fatalf("final err = %v, want *ParseError", last)
	}
}

func TestMatchesIterator(t *testing.T) {
	eng := NewEngine()
	doc, err := eng.ParseXMLString("<doc><sec><fig/><tab/><fig/></sec><sec><fig/><tab/></sec></doc>")
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("[* ; fig ; tab .] (sec|doc)*")
	if err != nil {
		t.Fatal(err)
	}
	// Matches and Select agree.
	var collected []Match
	for m := range q.Matches(doc) {
		collected = append(collected, m)
	}
	sel := q.Select(doc)
	if len(collected) != len(sel) || len(sel) != 2 {
		t.Fatalf("matches=%d select=%d, want 2", len(collected), len(sel))
	}
	for i := range sel {
		if collected[i] != sel[i] {
			t.Fatalf("match %d differs: %v vs %v", i, collected[i], sel[i])
		}
	}
	// Early break stops after the first match.
	var first string
	for m := range q.Matches(doc) {
		first = m.Path
		break
	}
	if first != "1.1.1" {
		t.Fatalf("first = %q", first)
	}
}

func TestSelectCtx(t *testing.T) {
	eng := NewEngine()
	doc, err := eng.ParseXMLString("<doc><sec><fig/><tab/></sec></doc>")
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("[* ; fig ; tab .] (sec|doc)*")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := q.SelectCtx(context.Background(), doc)
	if err != nil || len(ms) != 1 {
		t.Fatalf("ms=%v err=%v", ms, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.SelectCtx(ctx, doc); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCompileAndParseTypedErrors(t *testing.T) {
	eng := NewEngine()

	_, err := eng.CompileQuery("[* ; fig")
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CompileError", err)
	}
	if ce.Offset < 0 || ce.Source != "[* ; fig" || ce.Excerpt == "" {
		t.Fatalf("CompileError = %+v, want offset/source/excerpt", ce)
	}

	_, err = eng.ParseXMLString("<doc>\n<oops</doc>")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Fatalf("ParseError line = %d, want 2 (%v)", pe.Line, pe)
	}

	if _, err := eng.ParseTerm("doc<"); err != nil {
		if !errors.As(err, &pe) {
			t.Fatalf("term err = %v, want *ParseError", err)
		}
	} else {
		t.Fatal("ParseTerm should fail")
	}
}

// BenchmarkStreaming10kRecords demonstrates the memory bound: streaming a
// 10k-record document evaluates with per-record (not per-document)
// allocation, versus materializing the whole hedge first. Compare allocs/op.
func BenchmarkStreaming10kRecords(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<feed>")
	for i := 0; i < 10000; i++ {
		if i%3 == 0 {
			sb.WriteString("<entry><a/><b/></entry>")
		} else {
			sb.WriteString("<entry><b/><a/></entry>")
		}
	}
	sb.WriteString("</feed>")
	input := sb.String()

	eng := NewEngine()
	if _, err := eng.ParseXMLString("<feed><entry><a/><b/></entry></feed>"); err != nil {
		b.Fatal(err)
	}
	q, err := eng.CompileQuery("[* ; a ; b .] entry")
	if err != nil {
		b.Fatal(err)
	}

	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var n int64
			stats, err := eng.SelectStream(context.Background(), strings.NewReader(input), q,
				SelectOptions{Workers: 1},
				func(m StreamMatch) error { n++; return nil })
			if err != nil || n != stats.Matches {
				b.Fatal(err)
			}
		}
	})
	b.Run("whole-document", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			doc, err := eng.ParseXMLString(input)
			if err != nil {
				b.Fatal(err)
			}
			var n int
			for range q.Matches(doc) {
				n++
			}
			_ = n
		}
	})
}
