package xpe

import (
	"context"
	"strings"
	"sync"
	"testing"

	"xpe/internal/hedge"
)

// streamRender runs SelectStream and renders every match as one line, so
// two runs can be compared byte for byte.
func streamRender(t *testing.T, eng *Engine, q *Query, corpus string, opts SelectOptions) (string, StreamStats) {
	t.Helper()
	var b strings.Builder
	stats, err := eng.SelectStream(context.Background(), strings.NewReader(corpus), q, opts,
		func(m StreamMatch) error {
			b.WriteString(m.RecordPath)
			b.WriteByte('/')
			b.WriteString(m.Path)
			b.WriteByte('\t')
			b.WriteString(m.Term)
			b.WriteByte('\n')
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return b.String(), stats
}

// TestObservabilityDifferential: attaching a MetricsSink (or none — the
// engine registry is always on) must leave SelectStream output and Select
// results byte-identical, sequential and parallel.
func TestObservabilityDifferential(t *testing.T) {
	_, corpus := buildCorpus(t, 6)
	eng := NewEngine()
	doc, err := eng.ParseXMLString(corpus)
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("select(figure*; [* ; section ; *] (section|doc)*)")
	if err != nil {
		t.Fatal(err)
	}

	// In-memory Select is always observed via the engine registry; check
	// that evaluation leaves results untouched run over run as counters
	// accumulate.
	first := q.Select(doc)
	second := q.Select(doc)
	if len(first) != len(second) {
		t.Fatalf("Select drifted between observed runs: %d vs %d matches", len(first), len(second))
	}
	for i := range first {
		if first[i].Path != second[i].Path || first[i].Term != second[i].Term {
			t.Errorf("match %d drifted: %+v vs %+v", i, first[i], second[i])
		}
	}

	for _, workers := range []int{1, 4} {
		plain, plainStats := streamRender(t, eng, q, corpus, SelectOptions{Workers: workers})
		sink := NewMetricsSink()
		sunk, sunkStats := streamRender(t, eng, q, corpus, SelectOptions{Workers: workers, Metrics: sink})
		if plain != sunk {
			t.Errorf("workers=%d: stream output differs with a sink attached:\n--- plain ---\n%s--- sink ---\n%s", workers, plain, sunk)
		}
		if plainStats != sunkStats {
			t.Errorf("workers=%d: stream stats differ: %+v vs %+v", workers, plainStats, sunkStats)
		}
		s := sink.Stats()
		if s.Split.Records != sunkStats.Records || s.Split.Bytes != sunkStats.Bytes {
			t.Errorf("workers=%d: sink saw %d records / %d bytes, stats say %d / %d",
				workers, s.Split.Records, s.Split.Bytes, sunkStats.Records, sunkStats.Bytes)
		}
	}
}

// TestEngineStatsMerge: a per-run sink must not hide the run from the
// engine's cumulative Stats — the facade merges the sink delta back.
func TestEngineStatsMerge(t *testing.T) {
	_, corpus := buildCorpus(t, 4)
	eng := NewEngine()
	if _, err := eng.ParseXMLString(corpus); err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("figure section* [* ; doc ; *]")
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Stats()
	sink := NewMetricsSink()
	_, stats := streamRender(t, eng, q, corpus, SelectOptions{Workers: 2, Metrics: sink})
	after := eng.Stats()
	delta := after.Sub(before)
	if delta.Split.Records != stats.Records {
		t.Errorf("engine saw %d records through the sink run, want %d", delta.Split.Records, stats.Records)
	}
	if delta.Stream.Runs != 1 {
		t.Errorf("engine saw %d runs, want 1", delta.Stream.Runs)
	}
	if delta.Eval.Docs != stats.Records {
		t.Errorf("engine saw %d evaluated docs, want %d records", delta.Eval.Docs, stats.Records)
	}
	if s := sink.Stats(); s.Eval.Docs != 0 {
		t.Errorf("per-run sink collected %d eval docs; eval counters are engine-level only", s.Eval.Docs)
	}
}

// TestStatsConcurrentReaders hammers Engine.Stats against concurrent
// SelectStream and BulkSelectCtx writers; run under -race this is the
// synchronization proof for the whole metrics path.
func TestStatsConcurrentReaders(t *testing.T) {
	docs, corpus := buildCorpus(t, 6)
	eng := NewEngine()
	if _, err := eng.ParseXMLString(corpus); err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("[* ; figure ; table .] (section|doc)*")
	if err != nil {
		t.Fatal(err)
	}
	hedges := make([]hedge.Hedge, len(docs))
	copy(hedges, docs)

	const iters = 15
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	// Readers: snapshot and encode continuously until writers finish.
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := eng.Stats()
				if s.Eval.Docs < 0 || s.Split.Records < 0 {
					t.Error("negative counter in snapshot")
					return
				}
				var b strings.Builder
				if err := WriteStats(&b, s); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Writer: streaming runs.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < iters; i++ {
			_, err := eng.SelectStream(context.Background(), strings.NewReader(corpus), q,
				SelectOptions{Workers: 4}, func(StreamMatch) error { return nil })
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Writer: bulk selects through the same compiled query.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < iters; i++ {
			if _, err := q.Compiled().BulkSelectCtx(context.Background(), hedges, 4); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	writers.Wait()
	close(stop)
	readers.Wait()

	s := eng.Stats()
	if s.Stream.Runs != iters {
		t.Errorf("runs = %d, want %d", s.Stream.Runs, iters)
	}
	if s.Eval.Docs == 0 || s.Eval.NodesVisited == 0 {
		t.Errorf("eval counters empty after concurrent load: %+v", s.Eval)
	}
}
