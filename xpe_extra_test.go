package xpe

import "testing"

func TestFacadeXPathTranslation(t *testing.T) {
	eng := NewEngine()
	doc, err := eng.ParseXMLString(
		"<doc><sec><fig/><tab/><fig/></sec><sec><fig/></sec></doc>")
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileXPath("//fig[following-sibling::*[1][self::tab]]")
	if err != nil {
		t.Fatal(err)
	}
	ms := q.Select(doc)
	if len(ms) != 1 || ms[0].Path != "1.1.1" {
		t.Fatalf("matches = %v", ms)
	}
	// All figures.
	q2, err := eng.CompileXPath("//fig")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(q2.Select(doc)); got != 3 {
		t.Fatalf("//fig located %d", got)
	}
	// Out-of-fragment paths fail loudly.
	if _, err := eng.CompileXPath("//fig/ancestor::sec"); err == nil {
		t.Fatal("untranslatable path accepted")
	}
}

func TestFacadeRename(t *testing.T) {
	eng := NewEngine()
	sch, err := eng.ParseSchema(`
start = doc
element doc { sec* }
element sec { (sec | fig | par)* }
element fig { empty }
element par { text* }
`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("select(fig*; [* ; sec ; *] (sec|doc)*)")
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := eng.ParseTerm("doc<sec<fig> sec<par>>")
	renamed := q.Rename(doc, "gallery")
	if renamed.Term() != "doc<gallery<fig> sec<par>>" {
		t.Fatalf("renamed = %q", renamed.Term())
	}
	out, err := sch.TransformRename(q, "gallery")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Validate(renamed) {
		t.Fatal("renamed document must conform to the rename output schema")
	}
	if out.Validate(doc) {
		t.Fatal("the un-renamed document must not conform (its empty sec should be a gallery)")
	}
}

func TestFacadeSchemaComparison(t *testing.T) {
	eng := NewEngine()
	small, err := eng.ParseSchema(`
start = doc
element doc { fig* }
element fig { empty }
`)
	if err != nil {
		t.Fatal(err)
	}
	big, err := eng.ParseSchema(`
start = doc2
define doc2 = element doc { (fig2 | par)* }
define fig2 = element fig { empty }
element par { text* }
`)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := small.EquivalentTo(big)
	if err != nil || eq {
		t.Fatalf("schemas should differ (err=%v)", err)
	}
	inc, err := big.Includes(small)
	if err != nil || !inc {
		t.Fatalf("big ⊇ small expected (err=%v)", err)
	}
	inc, err = small.Includes(big)
	if err != nil || inc {
		t.Fatalf("small ⊉ big expected (err=%v)", err)
	}
}

func TestFacadeBindings(t *testing.T) {
	eng := NewEngine()
	doc, err := eng.ParseXMLString("<doc><sec><fig/><sec><fig/></sec></sec></doc>")
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.CompileQuery("fig sec@s* [* ; doc ; *]@d")
	if err != nil {
		t.Fatal(err)
	}
	if !q.UniqueBindings() {
		t.Fatal("query should have unique bindings")
	}
	ms := q.SelectBindings(doc)
	if len(ms) != 2 {
		t.Fatalf("matches = %v", ms)
	}
	for _, m := range ms {
		names := map[string]string{}
		for _, b := range m.Bindings {
			names[b.Name] = b.Path
		}
		if names["d"] != "1" {
			t.Fatalf("d bound to %q", names["d"])
		}
		if _, ok := names["s"]; !ok {
			t.Fatalf("s unbound for %v", m.Path)
		}
	}
	// e1-filtered bindings.
	q2, err := eng.CompileQuery("select(fig*; [* ; sec ; *]@self (sec|doc)*)")
	if err != nil {
		t.Fatal(err)
	}
	bs := q2.SelectBindings(doc)
	if len(bs) != 1 || bs[0].Path != "1.1.2" {
		t.Fatalf("filtered bindings = %v", bs)
	}
}
