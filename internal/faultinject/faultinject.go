// Package faultinject provides deterministic fault injection for the
// streaming engine's chaos tests: readers that short-read, stall, or fail
// at a chosen byte; forced evaluation panics and stalls on chosen record
// indices; and synthetic record feeds with malformed, oversized, or
// truncated records at known positions.
//
// Everything here is test-only. The evaluation hooks plug into the
// pipeline through the stream.Injector interface (implemented structurally
// by *EvalFaults, so this package does not import internal/stream), which
// runs inside the worker's panic-containment scope — an injected panic
// exercises exactly the production failure path.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// ErrInjected is the default error injected by a failing Reader.
var ErrInjected = errors.New("faultinject: injected error")

// ReaderOptions configures an injecting Reader; the zero value injects
// nothing.
type ReaderOptions struct {
	// ChunkSizes caps the bytes returned by successive Read calls, cycling
	// through the slice — e.g. {1} forces byte-at-a-time delivery, {7, 1}
	// alternates. Empty means no short reads.
	ChunkSizes []int
	// FailAfter makes the reader fail with Err once this many bytes have
	// been delivered (0 = never fail).
	FailAfter int64
	// Err is the injected failure; nil means ErrInjected.
	Err error
	// StallEvery sleeps StallFor after every StallEvery delivered bytes
	// (0 = never stall), simulating a slow producer.
	StallEvery int64
	StallFor   time.Duration
}

// Reader wraps an io.Reader with deterministic delivery faults. It
// intentionally does not implement io.ByteReader: consumers must cope with
// a minimal reader.
type Reader struct {
	src  io.Reader
	opts ReaderOptions
	n    int64 // bytes delivered
	call int   // Read calls served (indexes ChunkSizes)
}

// NewReader wraps src with the configured faults.
func NewReader(src io.Reader, opts ReaderOptions) *Reader {
	return &Reader{src: src, opts: opts}
}

// Delivered reports the bytes handed out so far.
func (r *Reader) Delivered() int64 { return r.n }

func (r *Reader) Read(p []byte) (int, error) {
	if fa := r.opts.FailAfter; fa > 0 && r.n >= fa {
		err := r.opts.Err
		if err == nil {
			err = ErrInjected
		}
		return 0, err
	}
	if cs := r.opts.ChunkSizes; len(cs) > 0 {
		max := cs[r.call%len(cs)]
		r.call++
		if max < 1 {
			max = 1
		}
		if len(p) > max {
			p = p[:max]
		}
	}
	if fa := r.opts.FailAfter; fa > 0 && r.n+int64(len(p)) > fa {
		p = p[:fa-r.n] // deliver exactly up to the failure point first
	}
	n, err := r.src.Read(p)
	r.n += int64(n)
	if se := r.opts.StallEvery; se > 0 && r.n/se != (r.n-int64(n))/se {
		time.Sleep(r.opts.StallFor)
	}
	return n, err
}

// EvalFaults injects failures into record evaluation: it implements the
// stream.Injector interface (structurally), panicking or stalling when the
// pipeline reaches a chosen record index. Safe for concurrent use by
// worker pools; configuration must finish before the run starts.
type EvalFaults struct {
	mu     sync.Mutex
	panics map[int]bool
	stalls map[int]time.Duration
	calls  map[int]int
}

// NewEvalFaults returns an empty injector; chain PanicOn/StallOn to arm it.
func NewEvalFaults() *EvalFaults {
	return &EvalFaults{panics: map[int]bool{}, stalls: map[int]time.Duration{}, calls: map[int]int{}}
}

// PanicOn forces the evaluation of the given record indices to panic.
func (f *EvalFaults) PanicOn(indices ...int) *EvalFaults {
	for _, i := range indices {
		f.panics[i] = true
	}
	return f
}

// StallOn makes the evaluation of the given record indices sleep for d
// before starting (to trip a RecordTimeout deterministically).
func (f *EvalFaults) StallOn(d time.Duration, indices ...int) *EvalFaults {
	for _, i := range indices {
		f.stalls[i] = d
	}
	return f
}

// BeforeEval is the stream.Injector hook: called at the start of each
// record's evaluation, inside the panic-containment scope.
func (f *EvalFaults) BeforeEval(index int) {
	f.mu.Lock()
	f.calls[index]++
	d, stall := f.stalls[index]
	doPanic := f.panics[index]
	f.mu.Unlock()
	if stall {
		time.Sleep(d)
	}
	if doPanic {
		panic(fmt.Sprintf("faultinject: forced panic on record %d", index))
	}
}

// Seen returns the distinct record indices whose evaluation started, in
// ascending order.
func (f *EvalFaults) Seen() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int, 0, len(f.calls))
	for i := range f.calls {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// FeedSpec describes a synthetic record feed: Records records named Split
// inside a <feed> wrapper, each healthy record of the form
//
//	<rec><id>i</id><a/><b/></rec>
//
// so the query "[* ; a ; b .] rec" locates exactly one node per healthy
// record, and the <id> text ties every delivery back to its position.
type FeedSpec struct {
	// Records is the total record count.
	Records int
	// Split is the record element name; "" means "rec".
	Split string
	// Children appends that many extra <c0/>, <c1/>, ... children to every
	// healthy record (grows record size without changing match counts).
	Children int
	// Malformed marks record indices emitted with mismatched tags
	// (<a></b>), poisoning exactly that record's markup.
	Malformed map[int]bool
	// Oversized pads the record with N extra <pad>xxxxxxxx</pad> children —
	// the lever for tripping MaxRecordNodes/MaxRecordBytes on chosen
	// records.
	Oversized map[int]int
	// Truncated cuts the feed in the middle of the final record (and drops
	// the </feed> close).
	Truncated bool
}

// SplitName returns the effective record element name.
func (s FeedSpec) SplitName() string {
	if s.Split == "" {
		return "rec"
	}
	return s.Split
}

// HealthyIDs lists the ids of records expected to survive the feed's
// faults: not malformed, not oversized, not the truncated tail.
func (s FeedSpec) HealthyIDs() []int {
	var out []int
	for i := 0; i < s.Records; i++ {
		if s.Malformed[i] || s.Oversized[i] > 0 {
			continue
		}
		if s.Truncated && i == s.Records-1 {
			continue
		}
		out = append(out, i)
	}
	return out
}

// record renders record i per the spec.
func (s FeedSpec) record(i int) string {
	name := s.SplitName()
	var b []byte
	b = append(b, '<')
	b = append(b, name...)
	b = append(b, "><id>"...)
	b = strconv.AppendInt(b, int64(i), 10)
	b = append(b, "</id>"...)
	if s.Malformed[i] {
		b = append(b, "<a></b>"...)
	} else {
		b = append(b, "<a/><b/>"...)
	}
	for c := 0; c < s.Children; c++ {
		b = append(b, "<c"...)
		b = strconv.AppendInt(b, int64(c), 10)
		b = append(b, "/>"...)
	}
	for p := 0; p < s.Oversized[i]; p++ {
		b = append(b, "<pad>xxxxxxxx</pad>"...)
	}
	b = append(b, "</"...)
	b = append(b, name...)
	b = append(b, '>')
	return string(b)
}

// Reader returns a lazily-generating reader over the feed: records are
// rendered on demand, so arbitrarily long feeds stream in constant memory.
func (s FeedSpec) Reader() io.Reader {
	return &feedReader{spec: s}
}

type feedReader struct {
	spec    FeedSpec
	buf     []byte
	next    int  // next record index to render
	started bool // prologue emitted
	done    bool // epilogue emitted
}

func (f *feedReader) Read(p []byte) (int, error) {
	for len(f.buf) == 0 {
		switch {
		case !f.started:
			f.started = true
			f.buf = append(f.buf, "<feed>"...)
		case f.next < f.spec.Records:
			f.buf = append(f.buf, f.nextRecord()...)
		case !f.done:
			f.done = true
			if !f.spec.Truncated {
				f.buf = append(f.buf, "</feed>"...)
			}
		default:
			return 0, io.EOF
		}
	}
	n := copy(p, f.buf)
	f.buf = f.buf[n:]
	return n, nil
}

// nextRecord renders the next record, applying the truncation cut to the
// final one.
func (f *feedReader) nextRecord() string {
	rec := f.spec.record(f.next)
	if f.spec.Truncated && f.next == f.spec.Records-1 {
		rec = rec[:len(rec)/2]
	}
	f.next++
	return rec
}

// HTTP-level client faults: request bodies that misbehave the way real
// network peers do. These are plain io.Readers, so they plug directly
// into http.Request.Body (or http.Post) in serving-layer chaos tests.

// SlowLoris returns a reader that trickles data out chunk bytes at a
// time, sleeping delay between chunks — the classic hold-a-slot-open
// client. The total stall is len(data)/chunk × delay; keep it small
// enough for the test but long enough to overlap the concurrent traffic
// under test.
func SlowLoris(data []byte, chunk int, delay time.Duration) io.Reader {
	if chunk <= 0 {
		chunk = 1
	}
	return NewReader(bytesReader(data), ReaderOptions{
		ChunkSizes: []int{chunk},
		StallEvery: int64(chunk),
		StallFor:   delay,
	})
}

// Disconnect returns a reader that delivers the first n bytes of data and
// then fails with err (nil = ErrInjected) — a client vanishing mid-feed.
// Posting it as a request body makes the server read a truncated stream.
func Disconnect(data []byte, n int64, err error) io.Reader {
	return NewReader(bytesReader(data), ReaderOptions{FailAfter: n, Err: err})
}

// bytesReader is a minimal in-memory reader (avoiding bytes.Reader's
// extra interfaces, which would let transports bypass the fault wrapper).
func bytesReader(data []byte) io.Reader { return &sliceReader{data: data} }

type sliceReader struct {
	data []byte
	off  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
