package faultinject

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"xpe/internal/xmlhedge"
)

func TestFaultInjectReaderShortReads(t *testing.T) {
	src := strings.Repeat("x", 100)
	r := NewReader(strings.NewReader(src), ReaderOptions{ChunkSizes: []int{1, 7}})
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != src {
		t.Fatalf("short-read delivery corrupted the stream: %d bytes", len(data))
	}
	if r.Delivered() != 100 {
		t.Fatalf("Delivered() = %d, want 100", r.Delivered())
	}
}

func TestFaultInjectReaderFailAfter(t *testing.T) {
	r := NewReader(strings.NewReader(strings.Repeat("x", 100)), ReaderOptions{FailAfter: 37})
	data, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if len(data) != 37 {
		t.Fatalf("delivered %d bytes before failing, want exactly 37", len(data))
	}
}

func TestFaultInjectReaderCustomErr(t *testing.T) {
	boom := errors.New("boom")
	r := NewReader(strings.NewReader("xxxx"), ReaderOptions{FailAfter: 2, Err: boom})
	if _, err := io.ReadAll(r); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestFaultInjectReaderStalls(t *testing.T) {
	r := NewReader(strings.NewReader(strings.Repeat("x", 10)), ReaderOptions{
		ChunkSizes: []int{5}, StallEvery: 5, StallFor: 10 * time.Millisecond})
	start := time.Now()
	if _, err := io.ReadAll(r); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("10 bytes with a stall every 5 took %v, want >= 20ms", d)
	}
}

func TestFaultInjectEvalFaultsPanic(t *testing.T) {
	f := NewEvalFaults().PanicOn(3)
	f.BeforeEval(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("BeforeEval(3) did not panic")
			}
		}()
		f.BeforeEval(3)
	}()
	if seen := f.Seen(); len(seen) != 2 || seen[0] != 1 || seen[1] != 3 {
		t.Fatalf("Seen() = %v, want [1 3]", seen)
	}
}

func TestFaultInjectEvalFaultsStall(t *testing.T) {
	f := NewEvalFaults().StallOn(15*time.Millisecond, 0)
	start := time.Now()
	f.BeforeEval(0)
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("stall lasted %v, want >= 15ms", d)
	}
}

func TestFaultInjectFeedCleanWellFormed(t *testing.T) {
	spec := FeedSpec{Records: 10, Children: 2}
	h, err := xmlhedge.Parse(spec.Reader(), xmlhedge.Options{})
	if err != nil {
		t.Fatalf("clean feed does not parse: %v", err)
	}
	if len(h) != 1 || len(h[0].Children) != 10 {
		t.Fatalf("clean feed shape wrong: %d top-level, %d records", len(h), len(h[0].Children))
	}
	if got := spec.HealthyIDs(); len(got) != 10 {
		t.Fatalf("HealthyIDs = %v, want all 10", got)
	}
}

func TestFaultInjectFeedMalformedPoisonsRecord(t *testing.T) {
	spec := FeedSpec{Records: 3, Malformed: map[int]bool{1: true}}
	if _, err := xmlhedge.Parse(spec.Reader(), xmlhedge.Options{}); err == nil {
		t.Fatal("malformed feed parsed cleanly")
	}
	if got := spec.HealthyIDs(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("HealthyIDs = %v, want [0 2]", got)
	}
}

func TestFaultInjectFeedTruncated(t *testing.T) {
	spec := FeedSpec{Records: 3, Truncated: true}
	data, err := io.ReadAll(spec.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasSuffix(string(data), "</feed>") {
		t.Fatal("truncated feed still ends with </feed>")
	}
	if _, err := xmlhedge.Parse(strings.NewReader(string(data)), xmlhedge.Options{}); err == nil {
		t.Fatal("truncated feed parsed cleanly")
	}
}

func TestFaultInjectFeedOversized(t *testing.T) {
	spec := FeedSpec{Records: 2, Oversized: map[int]int{1: 50}}
	data, err := io.ReadAll(spec.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<pad>") {
		t.Fatal("oversized record has no padding")
	}
	if got := spec.HealthyIDs(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("HealthyIDs = %v, want [0]", got)
	}
}
