package sre

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseError describes a syntax error with its byte offset in the input.
type ParseError struct {
	Input  string
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sre: parse error at offset %d in %q: %s", e.Offset, e.Input, e.Msg)
}

type parser struct {
	input string
	pos   int
}

// Parse parses the concrete syntax documented in the package comment.
func Parse(input string) (*Expr, error) {
	p := &parser{input: input}
	p.skipSpace()
	if p.eof() {
		return nil, p.err("empty expression")
	}
	e, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, p.err("unexpected trailing input")
	}
	return e, nil
}

// MustParse parses input and panics on error; for tests and literals.
func MustParse(input string) *Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) err(msg string) error {
	return &ParseError{Input: p.input, Offset: p.pos, Msg: msg}
}

func (p *parser) eof() bool { return p.pos >= len(p.input) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.input[p.pos]
}

func (p *parser) skipSpace() {
	for !p.eof() && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' || p.input[p.pos] == '\n' || p.input[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) alt() (*Expr, error) {
	first, err := p.cat()
	if err != nil {
		return nil, err
	}
	subs := []*Expr{first}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			break
		}
		p.pos++
		next, err := p.cat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	return Alt(subs...), nil
}

func (p *parser) cat() (*Expr, error) {
	first, err := p.rep()
	if err != nil {
		return nil, err
	}
	subs := []*Expr{first}
	for {
		p.skipSpace()
		c := p.peek()
		if c == ',' {
			p.pos++
			p.skipSpace()
			c = p.peek()
			if !startsAtom(c) {
				return nil, p.err("expected expression after ','")
			}
		}
		if !startsAtom(c) {
			break
		}
		next, err := p.rep()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	return Cat(subs...), nil
}

func startsAtom(c byte) bool {
	return c == '(' || c == '.' || c == '\'' || c == '_' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (p *parser) rep() (*Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '*':
			p.pos++
			e = Star(e)
		case '+':
			p.pos++
			e = Plus(e)
		case '?':
			p.pos++
			e = Opt(e)
		default:
			return e, nil
		}
	}
}

func (p *parser) atom() (*Expr, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		p.skipSpace()
		if p.peek() == ')' {
			p.pos++
			return Eps(), nil
		}
		e, err := p.alt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.err("expected ')'")
		}
		p.pos++
		return e, nil
	case c == '.':
		p.pos++
		return Any(), nil
	case c == '\'':
		p.pos++
		var b strings.Builder
		for !p.eof() && p.input[p.pos] != '\'' {
			b.WriteByte(p.input[p.pos])
			p.pos++
		}
		if p.eof() {
			return nil, p.err("unterminated quoted name")
		}
		p.pos++
		return Sym(b.String()), nil
	case isNameStart(rune(c)):
		start := p.pos
		p.pos++
		for !p.eof() && isNameRest(rune(p.input[p.pos])) {
			p.pos++
		}
		return Sym(p.input[start:p.pos]), nil
	default:
		return nil, p.err("expected name, '.', quoted name, or '('")
	}
}

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameRest(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
