package sre

import "xpe/internal/sfa"

// FromDFA returns a regular expression for the DFA's language using the
// classical state-elimination (GNFA) construction. nameOf maps alphabet
// symbols to the names used in the resulting expression. This powers the
// Lemma 2 conversion of hedge automata back to hedge regular expressions,
// where horizontal languages over state sets must be rendered as
// expressions.
func FromDFA(d *sfa.DFA, nameOf func(sym int) string) *Expr {
	n := d.NumStates
	if n == 0 || d.Start == sfa.Dead {
		return Empty()
	}
	// GNFA over states 0..n-1 with virtual start n and accept n+1.
	start, accept := n, n+1
	edges := make([][]*Expr, n+2)
	for i := range edges {
		edges[i] = make([]*Expr, n+2)
	}
	join := func(i, j int, e *Expr) {
		if e == nil || e.Kind == KEmpty {
			return
		}
		if edges[i][j] == nil {
			edges[i][j] = e
		} else {
			edges[i][j] = simplify(Alt(edges[i][j], e))
		}
	}
	for s := 0; s < n; s++ {
		for sym, t := range d.Trans[s] {
			if t != sfa.Dead {
				join(s, t, Sym(nameOf(sym)))
			}
		}
		if d.Accept[s] {
			join(s, accept, Eps())
		}
	}
	join(start, d.Start, Eps())

	for k := 0; k < n; k++ {
		self := edges[k][k]
		var loop *Expr
		switch {
		case self == nil || self.Kind == KEmpty:
			loop = Eps()
		case self.Kind == KEps:
			loop = Eps()
		default:
			loop = Star(self)
		}
		for i := 0; i < n+2; i++ {
			if i == k || edges[i][k] == nil {
				continue
			}
			for j := 0; j < n+2; j++ {
				if j == k || edges[k][j] == nil {
					continue
				}
				join(i, j, simplify(Cat(edges[i][k], loop, edges[k][j])))
			}
		}
		for i := 0; i < n+2; i++ {
			edges[i][k] = nil
			edges[k][i] = nil
		}
	}
	if edges[start][accept] == nil {
		return Empty()
	}
	return edges[start][accept]
}
