package sre

import (
	"math/rand"
	"testing"

	"xpe/internal/alphabet"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"a",
		"a, b",
		"a | b",
		"(a, b)*",
		"section*, figure",
		"a+",
		"b?",
		"'weird name'",
		"()",
		".",
		"(a | b)*, c",
		"a b c",
	}
	for _, src := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		again, err := Parse(e.String())
		if err != nil {
			t.Fatalf("re-Parse(%q → %q): %v", src, e.String(), err)
		}
		// Compare by behaviour on random words over the mentioned alphabet.
		names := e.SymbolNames()
		if len(names) == 0 {
			names = []string{"a"}
		}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 100; i++ {
			w := randNamedWord(rng, names, 6)
			if e.Matches(w) != again.Matches(w) {
				t.Fatalf("round-trip of %q changed language on %v", src, w)
			}
		}
	}
}

func randNamedWord(rng *rand.Rand, names []string, maxLen int) []string {
	k := rng.Intn(maxLen + 1)
	w := make([]string, k)
	for i := range w {
		w[i] = names[rng.Intn(len(names))]
	}
	return w
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "(", ")", "a |", "*", "a,,b", "'unterminated", "a)"}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestMatchesBasics(t *testing.T) {
	cases := []struct {
		expr string
		word []string
		want bool
	}{
		{"a", []string{"a"}, true},
		{"a", []string{"b"}, false},
		{"a", nil, false},
		{"a*", nil, true},
		{"a*", []string{"a", "a", "a"}, true},
		{"a, b", []string{"a", "b"}, true},
		{"a, b", []string{"b", "a"}, false},
		{"a | b", []string{"b"}, true},
		{"a+", nil, false},
		{"a+", []string{"a"}, true},
		{"a?", nil, true},
		{"a?", []string{"a", "a"}, false},
		{"()", nil, true},
		{"()", []string{"a"}, false},
		{"section*, figure", []string{"section", "section", "figure"}, true},
		{"section*, figure", []string{"figure"}, true},
		{"section*, figure", []string{"section"}, false},
		{".", []string{"anything"}, true},
		{".", nil, false},
	}
	for _, c := range cases {
		e := MustParse(c.expr)
		if got := e.Matches(c.word); got != c.want {
			t.Errorf("%q.Matches(%v) = %v, want %v", c.expr, c.word, got, c.want)
		}
	}
}

func TestCompileAgreesWithDerivatives(t *testing.T) {
	exprs := []string{
		"a", "a*", "a, b", "a | b", "(a | b)*, a, b",
		"a+, b?", "(a, b)* | (b, a)*", "section*, figure",
	}
	rng := rand.New(rand.NewSource(5))
	for _, src := range exprs {
		e := MustParse(src)
		in := alphabet.NewInterner()
		names := e.SymbolNames()
		for _, n := range names {
			in.Intern(n)
		}
		nfa := e.CompileNFA(in)
		dfa := e.CompileDFA(in)
		for i := 0; i < 200; i++ {
			w := randNamedWord(rng, names, 8)
			iw := make([]int, len(w))
			for j, nm := range w {
				iw[j] = in.Intern(nm)
			}
			want := e.Matches(w)
			if nfa.Accepts(iw) != want {
				t.Fatalf("%q: NFA disagrees with derivatives on %v", src, w)
			}
			if dfa.Accepts(iw) != want {
				t.Fatalf("%q: DFA disagrees with derivatives on %v", src, w)
			}
		}
	}
}

func TestAnyIsClosedWorld(t *testing.T) {
	in := alphabet.NewInterner()
	in.Intern("a")
	in.Intern("b")
	e := MustParse(".*")
	dfa := e.CompileDFA(in)
	a, b := in.Lookup("a"), in.Lookup("b")
	if !dfa.Accepts([]int{a, b, a}) {
		t.Fatal(".* should accept any interned word")
	}
}

func TestConstructors(t *testing.T) {
	if Cat().Kind != KEps {
		t.Fatal("empty Cat should be ε")
	}
	if Alt().Kind != KEmpty {
		t.Fatal("empty Alt should be ∅")
	}
	if got := Cat(Sym("a")).String(); got != "a" {
		t.Fatalf("singleton Cat = %q", got)
	}
	if !Opt(Sym("a")).Nullable() {
		t.Fatal("a? should be nullable")
	}
	if Plus(Sym("a")).Nullable() {
		t.Fatal("a+ should not be nullable")
	}
	if !Empty().derive("x").Matches(nil) == false {
		t.Fatal("derivative of ∅ misbehaves")
	}
}

func TestSymbolNames(t *testing.T) {
	e := MustParse("a, (b | a)*, c")
	names := e.SymbolNames()
	want := map[string]bool{"a": true, "b": true, "c": true}
	if len(names) != 3 {
		t.Fatalf("SymbolNames = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected name %q", n)
		}
	}
}

func TestQuotedNameRendering(t *testing.T) {
	e := Sym("has space")
	if e.String() != "'has space'" {
		t.Fatalf("quoted rendering = %q", e.String())
	}
	e2 := MustParse(e.String())
	if e2.Name != "has space" {
		t.Fatalf("quoted round-trip = %q", e2.Name)
	}
}
