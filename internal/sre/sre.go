// Package sre implements string regular expressions over named alphabets.
//
// These are the classical regular expressions of the paper: they describe
// the final-state-sequence sets F and horizontal languages of hedge
// automata (Section 3), classical path expressions such as (section*,
// figure) from the introduction, and the top-level regular expressions over
// pointed base hedge representations (Definition 18).
//
// Concrete syntax:
//
//	expr     := alt
//	alt      := cat ('|' cat)*
//	cat      := rep ((',' | juxtaposition) rep)*
//	rep      := atom ('*' | '+' | '?')*
//	atom     := name | '.' | '(' expr ')' | '()'   — '()' is ε
//	name     := [A-Za-z_][A-Za-z0-9_-]* | '\'' any* '\''
//
// '.' matches any single symbol of the (closed) alphabet supplied at
// compile time.
package sre

import (
	"fmt"
	"strings"

	"xpe/internal/alphabet"
	"xpe/internal/sfa"
)

// Kind discriminates expression nodes.
type Kind int

// Expression node kinds.
const (
	KEmpty Kind = iota // ∅ — the empty language
	KEps               // ε
	KSym               // a single named symbol
	KAny               // any single symbol ('.')
	KCat               // concatenation
	KAlt               // alternation
	KStar              // Kleene closure
)

// Expr is a regular-expression node. Expressions are immutable after
// construction.
type Expr struct {
	Kind Kind
	Name string // KSym
	Subs []*Expr
}

// Constructors.

// Empty returns the ∅ expression.
func Empty() *Expr { return &Expr{Kind: KEmpty} }

// Eps returns the ε expression.
func Eps() *Expr { return &Expr{Kind: KEps} }

// Sym returns the expression matching the single symbol name.
func Sym(name string) *Expr { return &Expr{Kind: KSym, Name: name} }

// Any returns the '.' expression.
func Any() *Expr { return &Expr{Kind: KAny} }

// Cat concatenates the given expressions (ε when none).
func Cat(subs ...*Expr) *Expr {
	switch len(subs) {
	case 0:
		return Eps()
	case 1:
		return subs[0]
	}
	return &Expr{Kind: KCat, Subs: subs}
}

// Alt alternates the given expressions (∅ when none).
func Alt(subs ...*Expr) *Expr {
	switch len(subs) {
	case 0:
		return Empty()
	case 1:
		return subs[0]
	}
	return &Expr{Kind: KAlt, Subs: subs}
}

// Star returns e*.
func Star(e *Expr) *Expr { return &Expr{Kind: KStar, Subs: []*Expr{e}} }

// Plus returns ee*.
func Plus(e *Expr) *Expr { return Cat(e, Star(e)) }

// Opt returns e|ε.
func Opt(e *Expr) *Expr { return Alt(e, Eps()) }

// String renders the expression in the package's concrete syntax.
func (e *Expr) String() string {
	var b strings.Builder
	e.render(&b, 0)
	return b.String()
}

// precedence levels: 0 alt, 1 cat, 2 rep/atom
func (e *Expr) render(b *strings.Builder, prec int) {
	switch e.Kind {
	case KEmpty:
		b.WriteString("[]") // unparsable marker; ∅ has no surface syntax
	case KEps:
		b.WriteString("()")
	case KSym:
		if isPlainName(e.Name) {
			b.WriteString(e.Name)
		} else {
			b.WriteByte('\'')
			b.WriteString(e.Name)
			b.WriteByte('\'')
		}
	case KAny:
		b.WriteByte('.')
	case KCat:
		if prec > 1 {
			b.WriteByte('(')
		}
		for i, s := range e.Subs {
			if i > 0 {
				b.WriteString(", ")
			}
			s.render(b, 2)
		}
		if prec > 1 {
			b.WriteByte(')')
		}
	case KAlt:
		if prec > 0 {
			b.WriteByte('(')
		}
		for i, s := range e.Subs {
			if i > 0 {
				b.WriteString(" | ")
			}
			s.render(b, 1)
		}
		if prec > 0 {
			b.WriteByte(')')
		}
	case KStar:
		e.Subs[0].render(b, 2)
		b.WriteByte('*')
	}
}

func isPlainName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case i > 0 && (r >= '0' && r <= '9' || r == '-'):
		default:
			return false
		}
	}
	return true
}

// SymbolNames returns the distinct symbol names mentioned in e.
func (e *Expr) SymbolNames() []string {
	seen := map[string]bool{}
	var out []string
	var walk func(*Expr)
	walk = func(x *Expr) {
		if x.Kind == KSym && !seen[x.Name] {
			seen[x.Name] = true
			out = append(out, x.Name)
		}
		for _, s := range x.Subs {
			walk(s)
		}
	}
	walk(e)
	return out
}

// CompileNFA compiles the expression to an NFA (Thompson construction) over
// the alphabet described by in. KAny expands to every symbol currently
// interned in in, so callers must intern the full alphabet first. Symbols
// named in e are interned on the fly.
func (e *Expr) CompileNFA(in *alphabet.Interner) *sfa.NFA {
	// Intern names first so KAny sees a stable alphabet that at least
	// includes every symbol in the expression.
	for _, n := range e.SymbolNames() {
		in.Intern(n)
	}
	return e.compile(in)
}

func (e *Expr) compile(in *alphabet.Interner) *sfa.NFA {
	n := in.Len()
	switch e.Kind {
	case KEmpty:
		return sfa.EmptyLang(n)
	case KEps:
		return sfa.EpsLang(n)
	case KSym:
		return sfa.SymbolLang(n, in.Intern(e.Name))
	case KAny:
		syms := make([]int, n)
		for i := range syms {
			syms[i] = i
		}
		return sfa.SymbolSetLang(n, syms)
	case KCat:
		acc := e.Subs[0].compile(in)
		for _, s := range e.Subs[1:] {
			acc = sfa.Concat(acc, s.compile(in))
		}
		return acc
	case KAlt:
		acc := e.Subs[0].compile(in)
		for _, s := range e.Subs[1:] {
			acc = sfa.Union(acc, s.compile(in))
		}
		return acc
	case KStar:
		return sfa.Star(e.Subs[0].compile(in))
	}
	panic(fmt.Sprintf("sre: unknown kind %d", e.Kind))
}

// CompileDFA compiles to a minimal DFA over the interner's alphabet.
func (e *Expr) CompileDFA(in *alphabet.Interner) *sfa.DFA {
	return e.CompileNFA(in).MinimalDFA()
}

// Matches reports whether the word of symbol names matches e, using
// Brzozowski derivatives. It is an automaton-free oracle used to cross-check
// the compiled automata in tests.
func (e *Expr) Matches(word []string) bool {
	cur := e
	for _, sym := range word {
		cur = cur.derive(sym)
		if cur.Kind == KEmpty {
			return false
		}
	}
	return cur.Nullable()
}

// Nullable reports whether ε ∈ L(e).
func (e *Expr) Nullable() bool {
	switch e.Kind {
	case KEps, KStar:
		return true
	case KEmpty, KSym, KAny:
		return false
	case KCat:
		for _, s := range e.Subs {
			if !s.Nullable() {
				return false
			}
		}
		return true
	case KAlt:
		for _, s := range e.Subs {
			if s.Nullable() {
				return true
			}
		}
		return false
	}
	return false
}

// derive returns the Brzozowski derivative of e with respect to sym.
func (e *Expr) derive(sym string) *Expr {
	switch e.Kind {
	case KEmpty, KEps:
		return Empty()
	case KSym:
		if e.Name == sym {
			return Eps()
		}
		return Empty()
	case KAny:
		return Eps()
	case KCat:
		head, tail := e.Subs[0], Cat(e.Subs[1:]...)
		d := Cat(head.derive(sym), tail)
		if head.Nullable() {
			d = Alt(d, tail.derive(sym))
		}
		return simplify(d)
	case KAlt:
		subs := make([]*Expr, 0, len(e.Subs))
		for _, s := range e.Subs {
			subs = append(subs, s.derive(sym))
		}
		return simplify(Alt(subs...))
	case KStar:
		return simplify(Cat(e.Subs[0].derive(sym), e))
	}
	return Empty()
}

// simplify applies ∅/ε absorption rules so derivative chains stay small.
func simplify(e *Expr) *Expr {
	switch e.Kind {
	case KCat:
		var subs []*Expr
		for _, s := range e.Subs {
			if s.Kind == KEmpty {
				return Empty()
			}
			if s.Kind == KEps {
				continue
			}
			if s.Kind == KCat {
				subs = append(subs, s.Subs...)
				continue
			}
			subs = append(subs, s)
		}
		return Cat(subs...)
	case KAlt:
		var subs []*Expr
		for _, s := range e.Subs {
			if s.Kind == KEmpty {
				continue
			}
			if s.Kind == KAlt {
				subs = append(subs, s.Subs...)
				continue
			}
			subs = append(subs, s)
		}
		return Alt(subs...)
	}
	return e
}
