package sre

import (
	"fmt"
	"math/rand"
	"testing"

	"xpe/internal/alphabet"
)

func symName(sym int) string { return fmt.Sprintf("s%d", sym) }

func TestFromDFARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	exprs := []string{
		"s0", "s0*", "s0, s1", "s0 | s1", "(s0 | s1)*, s0",
		"(s0, s1)*", "s0+, s1?", "()",
	}
	for _, src := range exprs {
		e := MustParse(src)
		in := alphabet.NewInterner()
		in.Intern("s0")
		in.Intern("s1")
		d := e.CompileDFA(in)
		back := FromDFA(d, symName)
		// Compare behaviour on random words.
		for i := 0; i < 300; i++ {
			w := randNamedWord(rng, []string{"s0", "s1"}, 7)
			if e.Matches(w) != back.Matches(w) {
				t.Fatalf("%q: FromDFA changed language on %v (got %q)", src, w, back)
			}
		}
	}
}

func TestFromDFAEmpty(t *testing.T) {
	in := alphabet.NewInterner()
	in.Intern("s0")
	d := Empty().CompileDFA(in)
	back := FromDFA(d, symName)
	if back.Matches(nil) || back.Matches([]string{"s0"}) {
		t.Fatal("FromDFA of empty language should stay empty")
	}
}

func TestFromDFARandom(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 30; trial++ {
		// Random small regex → DFA → regex → compare.
		e := randExpr(rng, 3)
		in := alphabet.NewInterner()
		in.Intern("s0")
		in.Intern("s1")
		d := e.CompileDFA(in)
		back := FromDFA(d, symName)
		for i := 0; i < 100; i++ {
			w := randNamedWord(rng, []string{"s0", "s1"}, 6)
			if e.Matches(w) != back.Matches(w) {
				t.Fatalf("trial %d: %q vs %q disagree on %v", trial, e, back, w)
			}
		}
	}
}

func randExpr(rng *rand.Rand, depth int) *Expr {
	if depth == 0 {
		switch rng.Intn(3) {
		case 0:
			return Sym("s0")
		case 1:
			return Sym("s1")
		default:
			return Eps()
		}
	}
	switch rng.Intn(4) {
	case 0:
		return Cat(randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 1:
		return Alt(randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 2:
		return Star(randExpr(rng, depth-1))
	default:
		return randExpr(rng, depth-1)
	}
}
