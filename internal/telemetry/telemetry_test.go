package telemetry

import (
	"strings"
	"testing"
	"time"

	"xpe/internal/metrics"
)

func page(fn func(t *Writer)) string {
	var b strings.Builder
	w := NewWriter(&b)
	fn(w)
	if err := w.Err(); err != nil {
		panic(err)
	}
	return b.String()
}

func TestSampleRendering(t *testing.T) {
	cases := []struct {
		name   string
		value  float64
		labels []string
		want   string
	}{
		{"xpe_plain", 7, nil, "xpe_plain 7\n"},
		{"xpe_neg", -3, nil, "xpe_neg -3\n"},
		{"xpe_float", 0.25, nil, "xpe_float 0.25\n"},
		{"xpe_big", 1e21, nil, "xpe_big 1e+21\n"},
		{"xpe_lbl", 1, []string{"tenant", "t1", "feed", "prices"}, `xpe_lbl{tenant="t1",feed="prices"} 1` + "\n"},
		{"xpe_esc", 1, []string{"q", "a\"b\\c\nd"}, `xpe_esc{q="a\"b\\c\nd"} 1` + "\n"},
	}
	for _, c := range cases {
		got := page(func(w *Writer) { w.Sample(c.name, c.value, c.labels...) })
		if got != c.want {
			t.Errorf("Sample(%s): got %q want %q", c.name, got, c.want)
		}
	}
}

func TestFamilyEscapesHelp(t *testing.T) {
	got := page(func(w *Writer) { w.Family("xpe_x_total", "line\nbreak \\ slash", "counter") })
	want := "# HELP xpe_x_total line\\nbreak \\\\ slash\n# TYPE xpe_x_total counter\n"
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestHistogramSeriesCumulative(t *testing.T) {
	h := metrics.HistogramSnapshot{
		Count: 6,
		SumNs: 1_500_000_000,
		Buckets: []metrics.Bucket{
			{LeNs: 1 << 10, Le: "le_1us", Count: 2},
			{LeNs: 1 << 20, Le: "le_1ms", Count: 3},
		},
	}
	got := page(func(w *Writer) { w.Histogram("xpe_lat_seconds", "Latency.", h, "feed", "f") })
	want := strings.Join([]string{
		"# HELP xpe_lat_seconds Latency.",
		"# TYPE xpe_lat_seconds histogram",
		`xpe_lat_seconds_bucket{feed="f",le="1.024e-06"} 2`,
		`xpe_lat_seconds_bucket{feed="f",le="0.001048576"} 5`,
		`xpe_lat_seconds_bucket{feed="f",le="+Inf"} 6`,
		`xpe_lat_seconds_sum{feed="f"} 1.5`,
		`xpe_lat_seconds_count{feed="f"} 6`,
		"",
	}, "\n")
	if got != want {
		t.Fatalf("histogram page:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := Lint(got); err != nil {
		t.Fatalf("Lint: %v", err)
	}
}

// TestAppendEngineLints exercises the full engine + runtime render over a
// populated registry and pins that the page passes the strict parser.
func TestAppendEngineLints(t *testing.T) {
	var m metrics.Metrics
	m.Eval.Docs.Add(10)
	m.Eval.Nodes.Add(1000)
	m.Eval.Marks.Add(42)
	m.Eval.Transitions.Add(5000)
	m.Eval.LazyStates.Add(7)
	m.Cache.Hits.Add(3)
	m.Cache.Misses.Add(1)
	m.Split.Records.Add(10)
	m.Split.Nodes.Add(1000)
	m.Split.Bytes.Add(65536)
	m.Split.RecordsPrefiltered.Add(4)
	m.Stream.Runs.Inc()
	m.Stream.Workers.Set(4)
	m.Stream.SplitTime.Add(10, 1_000_000)
	m.Stream.EvalTime.Add(10, 2_000_000)
	m.Stream.DeliverTime.Add(10, 500_000)
	m.Stream.WallTime.Add(1, 3_000_000)
	for _, d := range []time.Duration{time.Microsecond, 50 * time.Microsecond, 2 * time.Millisecond, 2 * time.Millisecond} {
		m.Stream.RecordLatency.Observe(d)
	}

	got := page(func(w *Writer) {
		AppendEngine(w, m.Snapshot())
		AppendRuntime(w)
	})
	if err := Lint(got); err != nil {
		t.Fatalf("Lint(engine+runtime page): %v\npage:\n%s", err, got)
	}
	for _, want := range []string{
		"xpe_eval_docs_total 10\n",
		"xpe_eval_nodes_visited_total 1000\n",
		"xpe_cache_hits_total 3\n",
		"xpe_split_records_prefiltered_total 4\n",
		"xpe_stream_workers 4\n",
		`xpe_stream_stage_seconds_total{stage="eval"} 0.002` + "\n",
		`xpe_stream_stage_ops_total{stage="wall"} 1` + "\n",
		"xpe_stream_record_latency_seconds_count 4\n",
		"# TYPE xpe_go_goroutines gauge\n",
		"# TYPE xpe_go_gc_cycles_total counter\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(failWriter{})
	w.Counter("xpe_x_total", "x", 1)
	w.Gauge("xpe_y", "y", 2)
	if w.Err() == nil {
		t.Fatal("expected sticky error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, errShort
}

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "short write" }

func TestLintAcceptsHandcraftedPage(t *testing.T) {
	good := strings.Join([]string{
		"# HELP a_total A counter.",
		"# TYPE a_total counter",
		"a_total 5",
		"# HELP b B gauge.",
		"# TYPE b gauge",
		`b{x="1"} -2.5`,
		`b{x="2"} 0`,
		"# HELP h H histogram.",
		"# TYPE h histogram",
		`h_bucket{le="0.1"} 1`,
		`h_bucket{le="+Inf"} 3`,
		"h_sum 0.7",
		"h_count 3",
		"",
	}, "\n")
	if err := Lint(good); err != nil {
		t.Fatalf("Lint(good page): %v", err)
	}
}

func TestLintRejections(t *testing.T) {
	cases := []struct {
		name string
		page string
		want string
	}{
		{"sample-before-declaration", "a_total 1\n", "before any complete family"},
		{"bare-comment", "# a comment\n", "bare comment"},
		{"help-without-type", "# HELP a A.\na 1\n", "before any complete family"},
		{"unknown-type", "# HELP a A.\n# TYPE a summary\n", "unknown type"},
		{"counter-without-total", "# HELP a A.\n# TYPE a counter\n", "does not end in _total"},
		{"duplicate-family", "# HELP a A.\n# TYPE a gauge\na 1\n# HELP a A.\n# TYPE a gauge\na 2\n", "declared twice"},
		{"duplicate-series", "# HELP a A.\n# TYPE a gauge\na{x=\"1\"} 1\na{x=\"1\"} 2\n", "duplicate series"},
		{"foreign-sample", "# HELP a A.\n# TYPE a gauge\nzzz 1\n", "under family"},
		{"negative-counter", "# HELP a_total A.\n# TYPE a_total counter\na_total -1\n", "negative value"},
		{"nan-value", "# HELP a A.\n# TYPE a gauge\na NaN\n", "NaN"},
		{"bad-escape", "# HELP a A.\n# TYPE a gauge\na{x=\"\\t\"} 1\n", "invalid escape"},
		{"unterminated-labels", "# HELP a A.\n# TYPE a gauge\na{x=\"1\" 1\n", "unexpected"},
		{"unterminated-labels-eol", "# HELP a A.\n# TYPE a gauge\na{x=\"1\"\n", "unterminated"},
		{"bad-value", "# HELP a A.\n# TYPE a gauge\na one\n", "unparsable value"},
		{"hist-no-inf", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "+Inf"},
		{"hist-not-cumulative", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n", "not cumulative"},
		{"hist-le-order", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n", "not le-increasing"},
		{"hist-count-mismatch", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n", "!= _count"},
		{"hist-missing-sum", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n", "missing _sum"},
		{"hist-stray-sample", "# HELP h H.\n# TYPE h histogram\nh_oops 1\n", "want h_bucket"},
		{"empty-line", "# HELP a A.\n\n# TYPE a gauge\na 1\n", "empty line"},
	}
	for _, c := range cases {
		err := Lint(c.page)
		if err == nil {
			t.Errorf("%s: Lint accepted bad page", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}
