// Package telemetry renders the engine's instrumentation in Prometheus
// text exposition format (version 0.0.4) — the "make the daemon operable
// by an outside observer" layer over internal/metrics.
//
// The package is a renderer, not a registry: internal/metrics owns the
// atomic cells, this package turns their snapshots (and any caller-held
// counters, e.g. internal/serve's rollups) into the line protocol every
// scraper understands. A Writer accumulates nothing — lines stream
// straight to the underlying io.Writer — so a scrape costs one pass over
// the snapshot plus formatting, never a second copy of the counters.
//
// Conventions follow the Prometheus exposition contract:
//
//   - cumulative counters end in _total and are typed "counter";
//     point-in-time values are typed "gauge" (see the serve.Stats
//     hygiene notes in internal/serve).
//   - durations are seconds (float64), converting the engine's
//     nanosecond cells at render time.
//   - the log2-bucket histograms of internal/metrics render as
//     cumulative <name>_bucket{le="<seconds>"} series (only the occupied
//     buckets plus the mandatory le="+Inf"), with <name>_sum in seconds
//     and <name>_count. Buckets are cumulative and le-ordered — the
//     strict parser in Lint pins this.
//   - label values are escaped (backslash, double quote, newline), HELP
//     text likewise (backslash, newline).
//
// Lint is the strict format checker the test suites share: it parses a
// whole exposition page and rejects malformed lines, samples without
// declarations, type mismatches, and non-cumulative or mis-ordered
// histograms.
package telemetry

import (
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"

	"xpe/internal/metrics"
)

// Writer streams one exposition page. Errors are sticky: the first write
// failure is retained and every later call is a no-op, so callers check
// Err once at the end instead of at every sample.
type Writer struct {
	w   io.Writer
	err error
	// buf assembles one sample line at a time; it is recycled across
	// samples so a scrape's allocation cost is one small slice, not one
	// per line. The writer keeps no per-family state — callers write each
	// family's declaration immediately before its samples (Lint audits
	// the result in the test suites).
	buf []byte
}

// NewWriter returns a Writer streaming to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first underlying write error, nil if all writes
// succeeded.
func (t *Writer) Err() error { return t.err }

func (t *Writer) writeString(s string) {
	if t.err != nil {
		return
	}
	_, t.err = io.WriteString(t.w, s)
}

func (t *Writer) flushBuf() {
	if t.err != nil {
		return
	}
	_, t.err = t.w.Write(t.buf)
	t.buf = t.buf[:0]
}

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer("\\", `\\`, "\n", `\n`)
	return r.Replace(s)
}

// escapeLabel escapes a label value (backslash, double quote, newline).
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer("\\", `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// Family declares a metric family: one # HELP and one # TYPE line. Call
// it once, immediately before the family's Sample calls; typ is
// "counter", "gauge", "histogram", or "untyped".
func (t *Writer) Family(name, help, typ string) {
	t.writeString("# HELP " + name + " " + escapeHelp(help) + "\n# TYPE " + name + " " + typ + "\n")
}

// formatValue renders a sample value: integers exactly, floats in the
// shortest round-trippable form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Sample writes one series sample of the most recently declared family.
// labels alternate name, value ("tenant", "t1", "feed", "prices"); an
// empty list writes the bare metric name.
func (t *Writer) Sample(name string, value float64, labels ...string) {
	if t.err != nil {
		return
	}
	t.buf = append(t.buf, name...)
	t.buf = appendLabels(t.buf, labels)
	t.buf = append(t.buf, ' ')
	t.buf = append(t.buf, formatValue(value)...)
	t.buf = append(t.buf, '\n')
	t.flushBuf()
}

func appendLabels(buf []byte, labels []string) []byte {
	if len(labels) == 0 {
		return buf
	}
	buf = append(buf, '{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, labels[i]...)
		buf = append(buf, '=', '"')
		buf = append(buf, escapeLabel(labels[i+1])...)
		buf = append(buf, '"')
	}
	return append(buf, '}')
}

// Counter declares a single-series counter family and writes its one
// sample — the convenience form for unlabelled cumulative counters.
func (t *Writer) Counter(name, help string, value int64, labels ...string) {
	t.Family(name, help, "counter")
	t.Sample(name, float64(value), labels...)
}

// Gauge declares a single-series gauge family and writes its one sample.
func (t *Writer) Gauge(name, help string, value float64, labels ...string) {
	t.Family(name, help, "gauge")
	t.Sample(name, value, labels...)
}

// HistogramFamily declares a histogram family; attach series with
// HistogramSeries (one per label set).
func (t *Writer) HistogramFamily(name, help string) {
	t.Family(name, help, "histogram")
}

// HistogramSeries renders one histogram snapshot as cumulative
// _bucket/_sum/_count series under the given label set. Bucket bounds
// convert from the engine's power-of-two nanoseconds to seconds; only
// occupied buckets are written (plus the mandatory le="+Inf"), so the
// page size tracks the latency spread, not the 44-bucket layout.
func (t *Writer) HistogramSeries(name string, h metrics.HistogramSnapshot, labels ...string) {
	if t.err != nil {
		return
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		le := strconv.FormatFloat(float64(b.LeNs)/1e9, 'g', -1, 64)
		t.Sample(name+"_bucket", float64(cum), append(append([]string(nil), labels...), "le", le)...)
	}
	t.Sample(name+"_bucket", float64(h.Count), append(append([]string(nil), labels...), "le", "+Inf")...)
	t.Sample(name+"_sum", float64(h.SumNs)/1e9, labels...)
	t.Sample(name+"_count", float64(h.Count), labels...)
}

// Histogram declares a single-series histogram family and renders its one
// snapshot.
func (t *Writer) Histogram(name, help string, h metrics.HistogramSnapshot, labels ...string) {
	t.HistogramFamily(name, help)
	t.HistogramSeries(name, h, labels...)
}

// seconds converts an engine nanosecond total to seconds.
func seconds(ns int64) float64 { return float64(ns) / 1e9 }

// AppendEngine renders an engine metrics snapshot: evaluation counters,
// compiled-query cache traffic, splitter counters, stream stage timings
// (as _seconds_total/_ops_total counter pairs keyed by a stage label),
// and the per-record latency histogram. Families are stable across
// scrapes; only values move.
func AppendEngine(t *Writer, s metrics.Snapshot) {
	t.Counter("xpe_eval_docs_total", "Evaluations flushed: whole documents, bulk entries, or streamed records.", s.Eval.Docs)
	t.Counter("xpe_eval_nodes_visited_total", "Nodes visited by the Algorithm 1 traversals.", s.Eval.NodesVisited)
	t.Counter("xpe_eval_marks_emitted_total", "Located nodes emitted.", s.Eval.MarksEmitted)
	t.Counter("xpe_eval_transitions_total", "Automaton transitions taken (membership DFA, mirror, marking).", s.Eval.Transitions)
	t.Counter("xpe_eval_lazy_states_built_total", "Determinization states materialized on demand by lazy compilation.", s.Eval.LazyStates)
	t.Counter("xpe_eval_lazy_cache_hits_total", "Lazy transition-cache hits.", s.Eval.LazyHits)
	t.Counter("xpe_eval_lazy_evictions_total", "Budget-forced lazy transition-cache evictions.", s.Eval.LazyEvictions)

	t.Counter("xpe_cache_hits_total", "Compiled-query cache hits (generation-forced recompiles served from cache).", s.Cache.Hits)
	t.Counter("xpe_cache_misses_total", "Compiled-query cache misses (full recompiles).", s.Cache.Misses)
	t.Counter("xpe_cache_evictions_total", "Compiled-query cache LRU evictions.", s.Cache.Evictions)

	t.Counter("xpe_split_records_total", "Records split off the input stream.", s.Split.Records)
	t.Counter("xpe_split_nodes_total", "Nodes across split records.", s.Split.Nodes)
	t.Counter("xpe_split_bytes_total", "Input bytes consumed by the XML decoder.", s.Split.Bytes)
	t.Counter("xpe_split_arena_nodes_reused_total", "Nodes served from recycled arena chunks (no allocation).", s.Split.ArenaNodesReused)
	t.Counter("xpe_split_arena_chunk_allocs_total", "Fresh arena chunk allocations.", s.Split.ArenaChunkAllocs)
	t.Counter("xpe_split_records_prefiltered_total", "Records skipped whole by the raw-byte prefilter skim.", s.Split.RecordsPrefiltered)

	t.Counter("xpe_stream_runs_total", "Streaming runs started.", s.Stream.Runs)
	t.Gauge("xpe_stream_workers", "Worker count of the most recent streaming run (gauge).", float64(s.Stream.Workers))
	t.Counter("xpe_stream_records_skipped_total", "Failed records dropped by a Skip error policy.", s.Stream.RecordsSkipped)
	t.Counter("xpe_stream_records_timed_out_total", "Records over their RecordTimeout budget.", s.Stream.RecordsTimedOut)
	t.Counter("xpe_stream_panics_recovered_total", "Record evaluations that panicked and were converted to errors.", s.Stream.PanicsRecovered)

	t.Family("xpe_stream_stage_seconds_total", "Cumulative per-stage wall time of the streaming pipeline, in seconds.", "counter")
	t.Sample("xpe_stream_stage_seconds_total", seconds(s.Stream.SplitTime.TotalNs), "stage", "split")
	t.Sample("xpe_stream_stage_seconds_total", seconds(s.Stream.EvalTime.TotalNs), "stage", "eval")
	t.Sample("xpe_stream_stage_seconds_total", seconds(s.Stream.DeliverTime.TotalNs), "stage", "deliver")
	t.Sample("xpe_stream_stage_seconds_total", seconds(s.Stream.WallTime.TotalNs), "stage", "wall")
	t.Family("xpe_stream_stage_ops_total", "Cumulative per-stage operation counts of the streaming pipeline.", "counter")
	t.Sample("xpe_stream_stage_ops_total", float64(s.Stream.SplitTime.Count), "stage", "split")
	t.Sample("xpe_stream_stage_ops_total", float64(s.Stream.EvalTime.Count), "stage", "eval")
	t.Sample("xpe_stream_stage_ops_total", float64(s.Stream.DeliverTime.Count), "stage", "deliver")
	t.Sample("xpe_stream_stage_ops_total", float64(s.Stream.WallTime.Count), "stage", "wall")

	t.Gauge("xpe_stream_worker_occupancy", "Fraction of worker wall time spent evaluating: eval / (wall x workers) (gauge).", s.Stream.WorkerOccupancy)
	t.Histogram("xpe_stream_record_latency_seconds", "Per-record evaluation latency.", s.Stream.RecordLatency)
}

// AppendRuntime renders process runtime gauges: goroutines, GOMAXPROCS,
// heap occupancy, and GC activity. These are the "is the process healthy"
// series every scrape wants next to the engine counters.
func AppendRuntime(t *Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Gauge("xpe_go_goroutines", "Current goroutine count (gauge).", float64(runtime.NumGoroutine()))
	t.Gauge("xpe_go_gomaxprocs", "GOMAXPROCS (gauge).", float64(runtime.GOMAXPROCS(0)))
	t.Gauge("xpe_go_heap_alloc_bytes", "Bytes of allocated heap objects (gauge).", float64(ms.HeapAlloc))
	t.Gauge("xpe_go_heap_sys_bytes", "Bytes of heap obtained from the OS (gauge).", float64(ms.HeapSys))
	t.Counter("xpe_go_alloc_bytes_total", "Cumulative bytes allocated for heap objects.", int64(ms.TotalAlloc))
	t.Counter("xpe_go_gc_cycles_total", "Completed GC cycles.", int64(ms.NumGC))
	t.Gauge("xpe_go_next_gc_bytes", "Heap size target of the next GC cycle (gauge).", float64(ms.NextGC))
}
