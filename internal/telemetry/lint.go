package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Lint is the strict exposition-format checker shared by the telemetry,
// debug, and serve test suites. It parses a whole text-exposition page
// and returns the first violation found (nil for a clean page):
//
//   - every line is a well-formed # HELP, # TYPE, or sample line;
//   - metric and label names match the Prometheus grammar;
//   - each family is declared (HELP then TYPE) exactly once, with a
//     known type, before any of its samples, and its samples are
//     contiguous;
//   - counter family names end in _total;
//   - no two samples share a name and label set;
//   - histogram families carry, per label set, le-increasing cumulative
//     _bucket series terminated by le="+Inf", plus exactly one _sum and
//     one _count, with the +Inf bucket equal to _count.
//
// Lint is deliberately a validator for pages this package produces, not
// a general scrape parser: it rejects constructs (bare comments, NaN
// values, out-of-order families) that a lenient consumer would accept,
// because in our own output those only ever appear as bugs.
func Lint(page string) error {
	l := &linter{
		seen:   make(map[string]bool),
		series: make(map[string]bool),
	}
	lines := strings.Split(page, "\n")
	for i, line := range lines {
		if line == "" {
			// Only the trailing newline may produce an empty slot.
			if i != len(lines)-1 {
				return fmt.Errorf("line %d: empty line inside page", i+1)
			}
			continue
		}
		if err := l.line(line); err != nil {
			return fmt.Errorf("line %d: %w", i+1, err)
		}
	}
	return l.endFamily()
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// histSeries accumulates one histogram label set while its family is
// current, for the cumulative/ordering checks at family end.
type histSeries struct {
	les   []float64 // bucket bounds in order of appearance
	cums  []float64 // cumulative counts in order of appearance
	sum   *float64
	count *float64
}

type linter struct {
	seen   map[string]bool // family name -> declared (forever)
	series map[string]bool // name + canonical labels -> sample written

	// current family state
	cur     string // family name, "" before first declaration
	curType string
	helped  bool // saw # HELP for cur, awaiting # TYPE
	typed   bool // saw # TYPE for cur; samples are legal
	hist    map[string]*histSeries
}

func (l *linter) line(s string) error {
	switch {
	case strings.HasPrefix(s, "# HELP "):
		return l.help(strings.TrimPrefix(s, "# HELP "))
	case strings.HasPrefix(s, "# TYPE "):
		return l.typeDecl(strings.TrimPrefix(s, "# TYPE "))
	case strings.HasPrefix(s, "#"):
		return fmt.Errorf("bare comment %q: only # HELP and # TYPE are produced", s)
	default:
		return l.sample(s)
	}
}

func (l *linter) help(rest string) error {
	name, _, ok := strings.Cut(rest, " ")
	if !ok || name == "" {
		return fmt.Errorf("malformed # HELP line")
	}
	if !metricNameRe.MatchString(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	if err := l.endFamily(); err != nil {
		return err
	}
	if l.seen[name] {
		return fmt.Errorf("family %s declared twice", name)
	}
	l.seen[name] = true
	l.cur, l.curType, l.helped, l.typed = name, "", true, false
	return nil
}

func (l *linter) typeDecl(rest string) error {
	name, typ, ok := strings.Cut(rest, " ")
	if !ok {
		return fmt.Errorf("malformed # TYPE line")
	}
	if !l.helped || name != l.cur {
		return fmt.Errorf("# TYPE %s without immediately preceding # HELP %s", name, name)
	}
	switch typ {
	case "counter", "gauge", "histogram", "untyped":
	default:
		return fmt.Errorf("unknown type %q for family %s", typ, name)
	}
	if typ == "counter" && !strings.HasSuffix(name, "_total") {
		return fmt.Errorf("counter family %s does not end in _total", name)
	}
	l.curType, l.helped, l.typed = typ, false, true
	if typ == "histogram" {
		l.hist = make(map[string]*histSeries)
	}
	return nil
}

func (l *linter) sample(s string) error {
	name, labels, value, err := parseSample(s)
	if err != nil {
		return err
	}
	if !l.typed {
		return fmt.Errorf("sample %s before any complete family declaration", name)
	}
	if math.IsNaN(value) {
		return fmt.Errorf("sample %s has NaN value", name)
	}
	key := name + canonicalLabels(labels)
	if l.series[key] {
		return fmt.Errorf("duplicate series %s", key)
	}
	l.series[key] = true

	if l.curType == "histogram" {
		return l.histSample(name, labels, value)
	}
	if name != l.cur {
		return fmt.Errorf("sample %s under family %s (families must be contiguous)", name, l.cur)
	}
	if l.curType == "counter" && value < 0 {
		return fmt.Errorf("counter sample %s has negative value %v", name, value)
	}
	return nil
}

func (l *linter) histSample(name string, labels map[string]string, value float64) error {
	base := l.cur
	sub := strings.TrimPrefix(name, base)
	series := func() *histSeries {
		rest := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		k := canonicalLabels(rest)
		h := l.hist[k]
		if h == nil {
			h = &histSeries{}
			l.hist[k] = h
		}
		return h
	}
	switch sub {
	case "_bucket":
		leStr, ok := labels["le"]
		if !ok {
			return fmt.Errorf("%s_bucket sample without le label", base)
		}
		le := math.Inf(1)
		if leStr != "+Inf" {
			var err error
			le, err = strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("%s_bucket has unparsable le=%q", base, leStr)
			}
		}
		h := series()
		h.les = append(h.les, le)
		h.cums = append(h.cums, value)
	case "_sum":
		h := series()
		if h.sum != nil {
			return fmt.Errorf("%s_sum repeated for one label set", base)
		}
		h.sum = &value
	case "_count":
		h := series()
		if h.count != nil {
			return fmt.Errorf("%s_count repeated for one label set", base)
		}
		h.count = &value
	default:
		return fmt.Errorf("sample %s under histogram family %s (want %s_bucket/_sum/_count)", name, base, base)
	}
	return nil
}

// endFamily runs the whole-family checks that need every sample in hand
// (histogram bucket ordering and completeness). Called when the next
// family is declared and at end of page.
func (l *linter) endFamily() error {
	if l.helped {
		return fmt.Errorf("family %s has # HELP but no # TYPE", l.cur)
	}
	if l.curType != "histogram" {
		return nil
	}
	keys := make([]string, 0, len(l.hist))
	for k := range l.hist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := l.hist[k]
		if len(h.les) == 0 {
			return fmt.Errorf("histogram %s%s has no _bucket series", l.cur, k)
		}
		for i := 1; i < len(h.les); i++ {
			if h.les[i] <= h.les[i-1] {
				return fmt.Errorf("histogram %s%s buckets not le-increasing (le=%v after le=%v)", l.cur, k, h.les[i], h.les[i-1])
			}
			if h.cums[i] < h.cums[i-1] {
				return fmt.Errorf("histogram %s%s buckets not cumulative (%v after %v)", l.cur, k, h.cums[i], h.cums[i-1])
			}
		}
		if !math.IsInf(h.les[len(h.les)-1], 1) {
			return fmt.Errorf("histogram %s%s missing le=\"+Inf\" terminal bucket", l.cur, k)
		}
		if h.sum == nil {
			return fmt.Errorf("histogram %s%s missing _sum", l.cur, k)
		}
		if h.count == nil {
			return fmt.Errorf("histogram %s%s missing _count", l.cur, k)
		}
		if got := h.cums[len(h.cums)-1]; got != *h.count {
			return fmt.Errorf("histogram %s%s +Inf bucket %v != _count %v", l.cur, k, got, *h.count)
		}
	}
	l.hist = nil
	return nil
}

// parseSample splits a sample line into name, labels, and value.
func parseSample(s string) (string, map[string]string, float64, error) {
	nameEnd := strings.IndexAny(s, "{ ")
	if nameEnd <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample line %q", s)
	}
	name := s[:nameEnd]
	if !metricNameRe.MatchString(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := s[nameEnd:]
	var labels map[string]string
	if rest[0] == '{' {
		var err error
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return "", nil, 0, fmt.Errorf("sample %s: %w", name, err)
		}
	}
	if len(rest) == 0 || rest[0] != ' ' {
		return "", nil, 0, fmt.Errorf("sample %s: missing value separator", name)
	}
	valStr := rest[1:]
	if valStr == "" || strings.ContainsAny(valStr, " \t") {
		return "", nil, 0, fmt.Errorf("sample %s: malformed value %q", name, valStr)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %s: unparsable value %q", name, valStr)
	}
	return name, labels, v, nil
}

// parseLabels consumes a label list after the opening brace, returning
// the labels and the unconsumed tail (starting after the closing brace).
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		if len(s) == 0 {
			return nil, "", fmt.Errorf("unterminated label list")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label pair near %q", s)
		}
		name := s[:eq]
		if !labelNameRe.MatchString(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, "", fmt.Errorf("label %s: unquoted value", name)
		}
		val, rest, err := parseQuoted(s[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %w", name, err)
		}
		labels[name] = val
		s = rest
		switch {
		case len(s) == 0:
			return nil, "", fmt.Errorf("unterminated label list")
		case s[0] == ',':
			s = s[1:]
		case s[0] == '}':
			// handled at loop top
		default:
			return nil, "", fmt.Errorf("unexpected %q after label %s", s[0], name)
		}
	}
}

// parseQuoted consumes an escaped label value after the opening quote.
func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("trailing backslash")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}

// canonicalLabels renders a label set in sorted-key order, for series
// identity ("" for the empty set).
func canonicalLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(labels[k])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}
