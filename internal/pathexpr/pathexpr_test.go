package pathexpr

import (
	"math/rand"
	"testing"

	"xpe/internal/core"
	"xpe/internal/ha"
	"xpe/internal/hedge"
)

func TestLocateIntroExample(t *testing.T) {
	// (section*, figure) under a doc root: the paper's introduction.
	p := MustParse("doc, section*, figure")
	c := p.Compile()
	h := hedge.MustParse("doc<section<figure section<figure>> figure para>")
	got := map[string]bool{}
	for _, path := range c.Locate(h) {
		got[path.String()] = true
	}
	want := []string{"1.1.1", "1.1.2.1", "1.2"}
	if len(got) != len(want) {
		t.Fatalf("located %v, want %v", got, want)
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("missing %v", w)
		}
	}
}

func TestToPHRAgreesWithDirect(t *testing.T) {
	exprs := []string{
		"a",
		"a, b",
		"a*, b",
		"(a | b)*",
		"doc, section*, figure",
		"a, (b, a)*",
	}
	rng := rand.New(rand.NewSource(3))
	cfg := hedge.RandConfig{
		Symbols: []string{"a", "b", "doc", "section", "figure"},
		Vars:    []string{"x"}, MaxDepth: 4, MaxWidth: 3,
	}
	for _, src := range exprs {
		p := MustParse(src)
		direct := p.Compile()
		names := ha.NewNames()
		for _, s := range cfg.Symbols {
			names.Syms.Intern(s)
		}
		names.Vars.Intern("x")
		compiled, err := core.CompilePHR(p.ToPHR(), names)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		for i := 0; i < 80; i++ {
			h := hedge.Random(rng, cfg)
			directSet := map[string]bool{}
			for _, path := range direct.Locate(h) {
				directSet[path.String()] = true
			}
			res := compiled.Locate(h)
			phrSet := map[string]bool{}
			for _, path := range res.Paths {
				phrSet[path.String()] = true
			}
			if len(directSet) != len(phrSet) {
				t.Fatalf("%q: sets differ on %q: direct=%v phr=%v", src, h, directSet, phrSet)
			}
			for k := range directSet {
				if !phrSet[k] {
					t.Fatalf("%q: missing %v on %q", src, k, h)
				}
			}
		}
	}
}

func TestUnknownLabels(t *testing.T) {
	p := MustParse("a")
	c := p.Compile()
	h := hedge.Hedge{hedge.NewElem("zzz")}
	if len(c.Locate(h)) != 0 {
		t.Fatal("unknown label must not match")
	}
}
