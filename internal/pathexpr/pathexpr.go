// Package pathexpr implements classical path expressions — the baseline
// formalism the paper extends. A path expression is a regular expression
// over node labels, matched against the path from the TOP level down to a
// node (root-first, the conventional reading of the introduction's
// (section*, figure) example).
//
// The paper observes that a path expression is exactly a pointed hedge
// representation whose sibling conditions accept every hedge; ToPHR
// performs that embedding (reversing the regex, since Definition 19 reads
// decompositions bottom-up).
package pathexpr

import (
	"xpe/internal/alphabet"
	"xpe/internal/core"
	"xpe/internal/hedge"
	"xpe/internal/sfa"
	"xpe/internal/sre"
)

// PathExpr is a parsed path expression.
type PathExpr struct {
	Labels *sre.Expr
}

// Parse parses a path expression in sre syntax over element labels, e.g.
// "section*, figure".
func Parse(src string) (*PathExpr, error) {
	e, err := sre.Parse(src)
	if err != nil {
		return nil, err
	}
	return &PathExpr{Labels: e}, nil
}

// MustParse is Parse, panicking on error.
func MustParse(src string) *PathExpr {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the expression.
func (p *PathExpr) String() string { return p.Labels.String() }

// Compiled is the executable form: a complete DFA over interned labels,
// stepped top-down — one transition per node, so bulk location is linear.
type Compiled struct {
	in  *alphabet.Interner
	dfa *sfa.DFA
}

// Compile builds the label DFA.
func (p *PathExpr) Compile() *Compiled {
	in := alphabet.NewInterner()
	dfa := p.Labels.CompileDFA(in).Complete()
	return &Compiled{in: in, dfa: dfa}
}

// Locate returns the nodes whose root path matches the expression, in
// document order.
func (c *Compiled) Locate(h hedge.Hedge) []hedge.Path {
	var out []hedge.Path
	var rec func(h hedge.Hedge, prefix hedge.Path, state int)
	rec = func(h hedge.Hedge, prefix hedge.Path, state int) {
		for i, n := range h {
			if n.Kind != hedge.Elem {
				continue
			}
			p := append(prefix, i)
			sym := c.in.Lookup(n.Name)
			next := sfa.Dead
			if sym != alphabet.None {
				next = c.dfa.Step(state, sym)
			}
			if next == sfa.Dead {
				continue // no extension can match a completed DFA's dead state
			}
			if c.dfa.Accepting(next) {
				out = append(out, p.Clone())
			}
			rec(n.Children, p, next)
		}
	}
	rec(h, nil, c.dfa.Start)
	return out
}

// ToPHR embeds the path expression into a pointed hedge representation:
// the label regex is reversed (Definition 19 reads bottom-up) and every
// sibling condition accepts any hedge.
func (p *PathExpr) ToPHR() *core.PHR {
	return core.PathExpression(reverse(p.Labels))
}

// reverse mirrors a regular expression.
func reverse(e *sre.Expr) *sre.Expr {
	switch e.Kind {
	case sre.KCat:
		subs := make([]*sre.Expr, len(e.Subs))
		for i, s := range e.Subs {
			subs[len(subs)-1-i] = reverse(s)
		}
		return sre.Cat(subs...)
	case sre.KAlt:
		subs := make([]*sre.Expr, len(e.Subs))
		for i, s := range e.Subs {
			subs[i] = reverse(s)
		}
		return sre.Alt(subs...)
	case sre.KStar:
		return sre.Star(reverse(e.Subs[0]))
	default:
		return e
	}
}
