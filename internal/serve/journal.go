package serve

// Crash-safe registration persistence: an append-only NDJSON journal plus
// an atomically-replaced snapshot.
//
// Every successful registration is one JSON line appended and fsynced to
// journal.ndjson BEFORE the 201 is written — a registration the client
// saw acknowledged survives any crash after that point. On startup the
// server loads snapshot.json (a JSON array, the compacted prefix), replays
// journal.ndjson on top, recompiles every entry, and folds the result into
// the registry; entries that no longer compile are quarantined — kept in
// the listing with their error, counted, excluded from feed passes — never
// silently dropped and never fatal to startup. After a successful replay
// the state is compacted: the full entry set (including quarantined
// entries) is written to snapshot.json.tmp, fsynced, renamed over
// snapshot.json, the directory fsynced, and the journal truncated.
//
// A torn final journal line — the crash happened mid-append — is
// tolerated and dropped; it can only be a registration whose 201 was never
// sent. A malformed line elsewhere is corruption and fails startup loudly.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

const (
	snapshotFile = "snapshot.json"
	journalFile  = "journal.ndjson"
)

// journalEntry is one persisted registration: the original request, so
// replay is exactly re-registration (budgets included — they are applied
// in journal order, reproducing the tenant's final budget set).
type journalEntry struct {
	Tenant  string   `json:"tenant"`
	Name    string   `json:"name"`
	Query   string   `json:"query,omitempty"`
	XPath   string   `json:"xpath,omitempty"`
	Feed    string   `json:"feed"`
	Budgets *Budgets `json:"budgets,omitempty"`
}

// journal is the open persistence state. All methods are safe for
// concurrent use.
type journal struct {
	dir string
	mu  sync.Mutex
	f   *os.File // journal.ndjson, O_APPEND
}

// openJournal opens (creating if needed) the state directory and returns
// the recovered entries: snapshot first, then the journal suffix.
func openJournal(dir string) (*journal, []journalEntry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	var entries []journalEntry
	snap, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	switch {
	case errors.Is(err, os.ErrNotExist):
	case err != nil:
		return nil, nil, fmt.Errorf("read %s: %w", snapshotFile, err)
	case len(bytes.TrimSpace(snap)) > 0:
		if err := json.Unmarshal(snap, &entries); err != nil {
			return nil, nil, fmt.Errorf("corrupt %s: %w", snapshotFile, err)
		}
	}

	jpath := filepath.Join(dir, journalFile)
	if jf, err := os.Open(jpath); err == nil {
		tail, jerr := readJournalLines(jf)
		jf.Close()
		if jerr != nil {
			return nil, nil, jerr
		}
		entries = append(entries, tail...)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("open %s: %w", journalFile, err)
	}

	f, err := os.OpenFile(jpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("open %s for append: %w", journalFile, err)
	}
	return &journal{dir: dir, f: f}, entries, nil
}

// readJournalLines decodes the journal, tolerating exactly one torn line
// at the very end (a crash mid-append); malformed lines anywhere else are
// corruption.
func readJournalLines(r io.Reader) ([]journalEntry, error) {
	var entries []journalEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			// The malformed line was NOT the last one: real corruption.
			return nil, pendingErr
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			pendingErr = fmt.Errorf("corrupt %s line %d: %w", journalFile, lineNo, err)
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read %s: %w", journalFile, err)
	}
	return entries, nil
}

// append durably logs one registration: written and fsynced before
// returning, so a nil return means the entry survives a crash.
func (j *journal) append(e journalEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	return j.f.Sync()
}

// compact atomically replaces the snapshot with the full current entry
// set and empties the journal. The rename is the commit point: a crash
// anywhere before it leaves the old snapshot + full journal; after it,
// the new snapshot alone is complete (a stale journal tail would replay
// entries the snapshot already holds, so the journal is truncated only
// after the snapshot is durable).
func (j *journal) compact(entries []journalEntry) error {
	b, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	tmp := filepath.Join(j.dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapshotFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(j.dir); err != nil {
		return err
	}
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
