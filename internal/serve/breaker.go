package serve

// Per-feed circuit breakers: a feed whose records keep failing is
// isolated instead of burning evaluation slots on every post.
//
// Each feed has a three-state breaker:
//
//	closed    normal service; consecutive record failures are counted
//	open      posts answered 503 + Retry-After until the backoff elapses
//	half-open one probe run is admitted; clean → closed, failing → open
//	          again with doubled backoff (capped)
//
// "Consecutive" is judged by record index continuity: a failure at index
// lastFailed+1 extends the streak, any other index restarts it at one. A
// run that ends without a clean bill (an abort, skips, or timeouts)
// leaves the streak armed so a feed poisoned at its head — every run
// fails at record 0 and aborts — accumulates across runs. A fully clean
// run resets the breaker. Tripping also aborts the in-flight run (the
// policy wrapper returns the breaker error), so a poisoned feed costs at
// most threshold failed records per backoff window, not a full pass.
//
// Client-side failures — the poster disconnecting mid-body — never reach
// the breaker: only record-scoped evaluation failures count, so a flaky
// client cannot open the breaker on a healthy feed.

import (
	"math"
	"sync"
	"time"
)

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// feedBreaker is one feed's breaker. Guarded by its own mutex; the hot
// path (closed, no failures) is one lock round-trip per failed record and
// per run start/finish — negligible against evaluation cost.
type feedBreaker struct {
	mu        sync.Mutex
	state     breakerState
	threshold int
	base, cap time.Duration
	backoff   time.Duration // current open interval
	openedAt  time.Time
	consec    int  // current consecutive-failure streak
	lastIdx   int  // index of the streak's last failure
	probing   bool // a half-open probe run is in flight
	now       func() time.Time
}

// rejectedNow is the read-only pre-admission check: true while the
// breaker is open with backoff remaining. It never transitions state, so
// a refused request cannot strand a half-open probe.
func (b *feedBreaker) rejectedNow() (open bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		return false, 0
	}
	if wait := b.openedAt.Add(b.backoff).Sub(b.now()); wait > 0 {
		return true, wait
	}
	return false, 0
}

// allow gates a feed run. Refused runs get the remaining backoff for the
// 503's Retry-After.
func (b *feedBreaker) allow() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if wait := b.openedAt.Add(b.backoff).Sub(b.now()); wait > 0 {
			return false, wait
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, 0
	default: // half-open
		if b.probing {
			return false, b.backoff
		}
		b.probing = true
		return true, 0
	}
}

// recordFailure counts one record-scoped failure and reports whether this
// one tripped the breaker (the caller then aborts the run).
func (b *feedBreaker) recordFailure(idx int) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if idx == b.lastIdx+1 {
		b.consec++
	} else {
		b.consec = 1
	}
	b.lastIdx = idx
	if b.consec < b.threshold {
		return false
	}
	b.tripLocked()
	return true
}

// tripLocked opens the breaker. A trip out of half-open (the probe
// failed) doubles the backoff, up to the cap; a trip out of closed starts
// from the base.
func (b *feedBreaker) tripLocked() {
	if b.state == breakerHalfOpen {
		b.backoff = min(2*b.backoff, b.cap)
	} else {
		b.backoff = b.base
	}
	b.state = breakerOpen
	b.openedAt = b.now()
	b.probing = false
	b.consec = 0
	b.lastIdx = math.MinInt // next failure starts a fresh streak
}

// finish closes out one run. clean means the run completed with no abort,
// no skipped records, and no timeouts — only that resets the breaker. A
// half-open probe that ends un-clean (even below the trip threshold)
// reopens with doubled backoff; an un-clean closed run leaves the streak
// armed at lastIdx = -1 so a failure at the head of the next run
// continues it.
func (b *feedBreaker) finish(clean bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if clean {
		b.state = breakerClosed
		b.backoff = b.base
		b.consec = 0
		b.lastIdx = math.MinInt
		b.probing = false
		return
	}
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.backoff = min(2*b.backoff, b.cap)
		b.openedAt = b.now()
		b.probing = false
	}
	b.lastIdx = -1
}

// breakerSet owns the per-feed breakers.
type breakerSet struct {
	mu        sync.Mutex
	m         map[string]*feedBreaker
	threshold int
	base, cap time.Duration
	now       func() time.Time
}

func newBreakerSet(threshold int, base, cap time.Duration) *breakerSet {
	return &breakerSet{
		m:         make(map[string]*feedBreaker),
		threshold: threshold,
		base:      base,
		cap:       cap,
		now:       time.Now,
	}
}

// get returns feed's breaker, or nil when breakers are disabled.
func (bs *breakerSet) get(feed string) *feedBreaker {
	if bs == nil || bs.threshold <= 0 {
		return nil
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.m[feed]
	if b == nil {
		b = &feedBreaker{
			threshold: bs.threshold,
			base:      bs.base,
			cap:       bs.cap,
			backoff:   bs.base,
			lastIdx:   math.MinInt,
			now:       bs.now,
		}
		bs.m[feed] = b
	}
	return b
}

// states snapshots every known feed's breaker state by name — the
// point-in-time gauge surface (Stats.BreakerStates and the
// xpe_serve_breaker_state exposition family). The reported state is the
// stored one: a breaker still "open" past its backoff stays open here
// until the next post transitions it to half-open, which is why
// openCount (feeds actively refusing) can read lower.
func (bs *breakerSet) states() map[string]string {
	if bs == nil {
		return nil
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if len(bs.m) == 0 {
		return nil
	}
	out := make(map[string]string, len(bs.m))
	for feed, b := range bs.m {
		b.mu.Lock()
		out[feed] = b.state.String()
		b.mu.Unlock()
	}
	return out
}

// openCount reports how many feeds are currently refusing service.
func (bs *breakerSet) openCount() int64 {
	if bs == nil {
		return 0
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	var n int64
	for _, b := range bs.m {
		b.mu.Lock()
		if b.state == breakerOpen && b.now().Before(b.openedAt.Add(b.backoff)) {
			n++
		}
		b.mu.Unlock()
	}
	return n
}
