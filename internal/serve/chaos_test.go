package serve

import (
	"errors"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xpe"
	"xpe/internal/faultinject"
)

var soakFor = flag.Duration("soak", 0, "run TestSoak's mixed-tenant chaos feed for this long (0 = skip)")

// drainLeaks closes the test server's client connections and polls until
// the goroutine count returns to the pre-test baseline, dumping stacks on
// timeout. HTTP keep-alive goroutines are part of the count, so idle
// client connections are torn down first.
func drainLeaks(t *testing.T, base int, closers ...func()) {
	t.Helper()
	for _, c := range closers {
		c()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		// Re-close idle conns each round: a finished request's connection
		// returns to the pool asynchronously and can miss a single sweep.
		http.DefaultClient.CloseIdleConnections()
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// chaosRegister registers a query and drains the response immediately —
// unlike mustRegister, whose deferred body close would hold a client
// connection (and its two transport goroutines) past the leak check.
func chaosRegister(t *testing.T, ts *httptest.Server, body string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/queries", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register %s: %d %s", body, resp.StatusCode, msg)
	}
}

// TestChaosSlowLoris: a client dripping its body a few bytes at a time
// holds its evaluation slot for the whole drip — it must not be able to
// hold anyone else's. With one spare slot, a healthy tenant's posts all
// succeed while the loris crawls, and the crawl itself still completes.
func TestChaosSlowLoris(t *testing.T) {
	base := runtime.NumGoroutine()
	s, ts := newTestServer(t, Options{Engine: xpe.NewEngine(), MaxConcurrent: 2, MaxQueueDepth: 4})
	chaosRegister(t, ts, `{"tenant":"drip","name":"q","query":"price doc*","feed":"slow"}`)
	chaosRegister(t, ts, `{"tenant":"live","name":"q","query":"price doc*","feed":"fast"}`)

	slowDone := make(chan error, 1)
	go func() {
		body := faultinject.SlowLoris([]byte(feedCorpus), 16, 10*time.Millisecond)
		resp, err := http.Post(ts.URL+"/v1/feed/slow?tenant=drip", "application/xml", body)
		if err == nil {
			defer resp.Body.Close()
			if _, err = io.Copy(io.Discard, resp.Body); err == nil && resp.StatusCode != http.StatusOK {
				err = errors.New(resp.Status)
			}
		}
		slowDone <- err
	}()
	waitFor(t, func() bool { return s.Stats().ActiveProbes >= 1 })

	// The loris owns one slot; the healthy tenant's traffic flows through
	// the other without a single refusal.
	for i := 0; i < 5; i++ {
		if _, sum, _ := postNDJSON(t, ts.URL+"/v1/feed/fast?tenant=live", feedCorpus); sum.Matches == 0 {
			t.Fatalf("post %d: healthy feed matched nothing behind the loris", i)
		}
	}
	if st := s.Stats(); st.Tenants["live"].Rejected != 0 {
		t.Fatalf("healthy tenant rejected behind a slow loris: %+v", st.Tenants)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("slow-loris feed did not complete: %v", err)
	}
	drainLeaks(t, base, ts.Close)
}

// TestChaosMidFeedDisconnect: a client vanishing mid-body releases its
// slot promptly, does NOT feed the circuit breaker (only record-scoped
// evaluation failures count), and leaks nothing.
func TestChaosMidFeedDisconnect(t *testing.T) {
	base := runtime.NumGoroutine()
	s, ts := newTestServer(t, Options{Engine: xpe.NewEngine(), MaxConcurrent: 1,
		BreakerThreshold: 2, BreakerBackoff: time.Minute})
	chaosRegister(t, ts, `{"tenant":"t","name":"q","query":"price doc*","feed":"f"}`)

	for i := 0; i < 3; i++ {
		body := faultinject.Disconnect([]byte(feedCorpus), 40, errors.New("client vanished"))
		resp, err := http.Post(ts.URL+"/v1/feed/f", "application/xml", body)
		if err == nil {
			// The transport may still deliver the truncated-run response.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	// With MaxConcurrent 1, success here proves each aborted run released
	// its slot; a 200 proves three disconnects never opened the breaker.
	if _, sum, _ := postNDJSON(t, ts.URL+"/v1/feed/f", feedCorpus); sum.Matches == 0 {
		t.Fatal("feed matched nothing after client disconnects")
	}
	if st := s.Stats(); st.BreakerTrips != 0 || st.BreakerOpen != 0 {
		t.Fatalf("client disconnects tripped the breaker: %+v", st)
	}
	drainLeaks(t, base, ts.Close)
}

// TestChaosFairnessUnderFlood is the HTTP-level fairness pin from the
// issue: one tenant flooding the shared pool far past its queue bound
// must not push another tenant to 429 or starve its latency. The quiet
// tenant's posts all succeed with bounded worst-case latency while the
// hog eats every refusal.
func TestChaosFairnessUnderFlood(t *testing.T) {
	base := runtime.NumGoroutine()
	s, ts := newTestServer(t, Options{Engine: xpe.NewEngine(), MaxConcurrent: 1, MaxQueueDepth: 4})
	chaosRegister(t, ts, `{"tenant":"hog","name":"q","query":"price doc*","feed":"hogfeed"}`)
	chaosRegister(t, ts, `{"tenant":"quiet","name":"q","query":"price doc*","feed":"quietfeed"}`)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var hog429, hogOK atomic.Int64
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Each hog post drips its body (~100ms), holding its
				// evaluation slot long enough for real queue pressure —
				// instant posts would drain faster than six clients can
				// pile up.
				resp, err := http.Post(ts.URL+"/v1/feed/hogfeed?tenant=hog",
					"application/xml", faultinject.SlowLoris([]byte(feedCorpus), 64, 20*time.Millisecond))
				if err != nil {
					return // server shutting down
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					hogOK.Add(1)
				case http.StatusTooManyRequests:
					hog429.Add(1)
				}
			}
		}()
	}
	// Let the flood saturate the pool and the hog's queue bound.
	waitFor(t, func() bool { return s.Stats().QueueDepth >= 4 })

	var worst time.Duration
	for i := 0; i < 10; i++ {
		start := time.Now()
		// postNDJSON fails the test on any non-200: zero quiet 429s.
		postNDJSON(t, ts.URL+"/v1/feed/quietfeed?tenant=quiet", feedCorpus)
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	close(stop)
	wg.Wait()

	st := s.Stats()
	if st.Tenants["quiet"].Rejected != 0 {
		t.Errorf("quiet tenant saw %d rejections under the flood", st.Tenants["quiet"].Rejected)
	}
	if hog429.Load() == 0 {
		t.Errorf("the flood was never pushed back (hog: %d ok, 0 refused)", hogOK.Load())
	}
	// Round-robin bounds quiet's wait to roughly one hog evaluation, not
	// the hog's whole backlog; 2s is orders of magnitude of slack on a
	// millisecond-scale evaluation.
	if worst > 2*time.Second {
		t.Errorf("quiet tenant's worst admission-to-response latency %v; flood starved it", worst)
	}
	drainLeaks(t, base, ts.Close)
}

// TestSoak is the opt-in endurance run (go test -run TestSoak -soak 30s):
// mixed tenants, slow-loris drips, mid-body disconnects, and a poisoned
// feed hammer one server under -race for the requested duration, with
// persistence on. It passes when nothing deadlocks, every response is one
// of the documented statuses, and no goroutines leak at the end.
func TestSoak(t *testing.T) {
	if *soakFor <= 0 {
		t.Skip("soak disabled; enable with -soak 30s")
	}
	base := runtime.NumGoroutine()
	s, ts := newTestServer(t, Options{Engine: xpe.NewEngine(), MaxConcurrent: 4, MaxQueueDepth: 8,
		BreakerThreshold: 4, BreakerBackoff: 100 * time.Millisecond, StateDir: t.TempDir()})
	t.Cleanup(func() { s.Close() })
	chaosRegister(t, ts, `{"tenant":"a","name":"prices","query":"price doc* *","feed":"main"}`)
	chaosRegister(t, ts, `{"tenant":"b","name":"skus","query":"sku doc*","feed":"main","budgets":{"weight":3}}`)
	chaosRegister(t, ts, `{"tenant":"c","name":"memos","query":"memo doc*","feed":"toxic"}`)

	poisoned := `<corpus><doc><x></doc><doc><y></doc><doc><z></doc><doc><w></doc></corpus>`
	deadline := time.Now().Add(*soakFor)
	var posts, refused atomic.Int64
	post := func(url string, body io.Reader) {
		resp, err := http.Post(url, "application/xml", body)
		if err != nil {
			return // disconnect faults surface client-side
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		posts.Add(1)
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			refused.Add(1)
		default:
			t.Errorf("soak: unexpected status %d from %s", resp.StatusCode, url)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(role int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				switch role % 4 {
				case 0: // steady tenants on the shared feed
					post(ts.URL+"/v1/feed/main?tenant=a", strings.NewReader(feedCorpus))
				case 1:
					post(ts.URL+"/v1/feed/main?tenant=b", strings.NewReader(feedCorpus))
				case 2: // byzantine clients: drips and mid-body hangups
					if time.Now().UnixNano()%2 == 0 {
						post(ts.URL+"/v1/feed/main?tenant=a",
							faultinject.SlowLoris([]byte(feedCorpus), 32, time.Millisecond))
					} else {
						post(ts.URL+"/v1/feed/main?tenant=b",
							faultinject.Disconnect([]byte(feedCorpus), 64, errors.New("gone")))
					}
				case 3: // the poisoned feed exercises trip/probe cycles
					post(ts.URL+"/v1/feed/toxic?split=doc", strings.NewReader(poisoned))
					time.Sleep(10 * time.Millisecond)
				}
			}
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	t.Logf("soak: %d posts (%d refused), stats %+v", posts.Load(), refused.Load(), st)
	if posts.Load() == 0 {
		t.Fatal("soak made no requests")
	}
	drainLeaks(t, base, ts.Close)
}
