package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"xpe"
)

const feedCorpus = `<corpus>` +
	`<doc><ns:price>10</ns:price><sku>a</sku></doc>` +
	`<doc><Price>20</Price></doc>` +
	`<doc><price currency="EUR">30</price></doc>` +
	`<doc><quote price="yes"><!-- price --></quote></doc>` +
	`<doc><memo>nothing relevant</memo></doc>` +
	`</corpus>`

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Engine == nil {
		opts.Engine = xpe.NewEngine()
	}
	s, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func register(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/queries", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func mustRegister(t *testing.T, ts *httptest.Server, body string) {
	t.Helper()
	resp := register(t, ts, body)
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("register %s: %d %s", body, resp.StatusCode, msg)
	}
}

// postNDJSON posts a document and decodes the NDJSON response into match
// lines and the trailing summary.
func postNDJSON(t *testing.T, url, doc string) ([]matchLine, summaryLine, *http.Response) {
	t.Helper()
	resp, err := http.Post(url, "application/xml", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, msg)
	}
	var (
		matches []matchLine
		summary summaryLine
		sawSum  bool
	)
	dec := json.NewDecoder(resp.Body)
	for {
		var raw map[string]json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("NDJSON decode: %v", err)
		}
		switch {
		case raw["summary"] != nil:
			if sawSum {
				t.Fatal("two summary lines in one response")
			}
			sawSum = true
			if err := json.Unmarshal(raw["summary"], &summary); err != nil {
				t.Fatal(err)
			}
		case raw["error"] != nil:
			var msg string
			json.Unmarshal(raw["error"], &msg)
			t.Fatalf("stream error line: %s", msg)
		default:
			var m matchLine
			b, _ := json.Marshal(raw)
			if err := json.Unmarshal(b, &m); err != nil {
				t.Fatal(err)
			}
			if sawSum {
				t.Fatal("match line after the summary")
			}
			matches = append(matches, m)
		}
	}
	if !sawSum {
		t.Fatal("response had no summary line")
	}
	return matches, summary, resp
}

// TestServeFeedSharedPass is the end-to-end differential: matches coming
// back from a multi-tenant feed run must equal, per registered query, that
// query's own SelectStream run — and the summary must satisfy the
// records+prefiltered invariant.
func TestServeFeedSharedPass(t *testing.T) {
	eng := xpe.NewEngine()
	_, ts := newTestServer(t, Options{Engine: eng})

	// Three queries across two tenants. Each names a required label, so
	// the union prefilter can skip records (an alternation like
	// "(quote|sku)" would register an empty requirement set — a free
	// group — and correctly disable whole-record skipping).
	sources := map[string]string{
		"prices": "price doc* *",
		"Prices": "Price doc* *",
		"skus":   "sku doc*",
	}
	mustRegister(t, ts, `{"tenant":"t1","name":"prices","query":"price doc* *","feed":"market"}`)
	mustRegister(t, ts, `{"tenant":"t1","name":"Prices","query":"Price doc* *","feed":"market"}`)
	mustRegister(t, ts, `{"tenant":"t2","name":"skus","query":"sku doc*","feed":"market"}`)

	matches, summary, _ := postNDJSON(t, ts.URL+"/v1/feed/market", feedCorpus)

	// References: each query evaluated alone through the library.
	for name, src := range sources {
		q, err := eng.CompileQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		var want []string
		if _, err := eng.SelectStream(context.Background(), strings.NewReader(feedCorpus), q,
			xpe.SelectOptions{Workers: 1}, func(m xpe.StreamMatch) error {
				want = append(want, fmt.Sprintf("%d|%s|%s|%s", m.Record, m.RecordPath, m.Path, m.Term))
				return nil
			}); err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, m := range matches {
			if m.Query == name {
				got = append(got, fmt.Sprintf("%d|%s|%s|%s", m.Record, m.RecordPath, m.Path, m.Term))
			}
		}
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("query %s: served matches %v != library matches %v", name, got, want)
		}
		if len(want) == 0 {
			t.Fatalf("query %s matched nothing; fixture lost its point", name)
		}
	}
	for _, m := range matches {
		wantTenant := "t1"
		if m.Query == "skus" {
			wantTenant = "t2"
		}
		if m.Tenant != wantTenant {
			t.Errorf("match for %s attributed to tenant %s", m.Query, m.Tenant)
		}
	}
	if int(summary.Matches) != len(matches) {
		t.Errorf("summary.matches = %d, but %d match lines", summary.Matches, len(matches))
	}
	if summary.Queries != 3 {
		t.Errorf("summary.queries = %d, want 3", summary.Queries)
	}
	// The splitter saw 5 records; skim moves them between the two buckets.
	if summary.Records+summary.Prefiltered != 5 {
		t.Errorf("records(%d) + prefiltered(%d) != 5", summary.Records, summary.Prefiltered)
	}
	if summary.Prefiltered == 0 {
		t.Error("the memo record satisfies no query; the union prefilter should have skipped it")
	}
}

func TestServeSelectOneShot(t *testing.T) {
	_, ts := newTestServer(t, Options{Engine: xpe.NewEngine()})
	matches, summary, _ := postNDJSON(t,
		ts.URL+"/v1/select?query="+strings.ReplaceAll("price doc* *", " ", "+"), feedCorpus)
	if len(matches) == 0 || summary.Matches == 0 {
		t.Fatalf("one-shot select matched nothing: %d lines, summary %+v", len(matches), summary)
	}
	if summary.Queries != 1 {
		t.Errorf("summary.queries = %d, want 1", summary.Queries)
	}

	// Validation: both query and xpath, and neither, are 400s.
	for _, u := range []string{"/v1/select", "/v1/select?query=a+b*&xpath=/a/b"} {
		resp, err := http.Post(ts.URL+u, "application/xml", strings.NewReader("<a/>"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: %d, want 400", u, resp.StatusCode)
		}
	}
}

func TestServeRegistrationValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Engine: xpe.NewEngine()})
	cases := []struct {
		body string
		want int
	}{
		{`{"tenant":"t","name":"q","query":"a b*"}`, http.StatusCreated},
		{`{"tenant":"t","name":"q","query":"a b*"}`, http.StatusConflict}, // duplicate name
		{`{"tenant":"u","name":"q","query":"a b*"}`, http.StatusCreated},  // same name, other tenant
		{`{"name":"q2","query":"a b*"}`, http.StatusBadRequest},           // no tenant
		{`{"tenant":"t","query":"a b*"}`, http.StatusBadRequest},          // no name
		{`{"tenant":"t","name":"q2"}`, http.StatusBadRequest},             // no source
		{`{"tenant":"t","name":"q2","query":"a b*","xpath":"/a"}`, http.StatusBadRequest},
		{`{"tenant":"t","name":"q2","query":"(((("}`, http.StatusBadRequest}, // compile error
		{`{"tenant":"t","name":"q2","query":"a b*","feed":"x/y"}`, http.StatusBadRequest},
		{`{"tenant":"t","name":"q2","query":"a b*","budgets":{"recordTimeout":"bogus"}}`, http.StatusBadRequest},
		{`{"tenant":"t","name":"q2","query":"a b*","unknown":1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if resp := register(t, ts, c.body); resp.StatusCode != c.want {
			msg, _ := io.ReadAll(resp.Body)
			t.Errorf("register %s: %d (%s), want %d", c.body, resp.StatusCode, msg, c.want)
		}
	}

	// The list endpoint sees both tenants' registrations, in order.
	resp, err := http.Get(ts.URL + "/v1/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var regs []regQuery
	if err := json.NewDecoder(resp.Body).Decode(&regs); err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 || regs[0].Tenant != "t" || regs[1].Tenant != "u" {
		t.Fatalf("list: %+v", regs)
	}

	// An empty feed is 404, not an empty stream.
	r2, err := http.Post(ts.URL+"/v1/feed/nothing", "application/xml", strings.NewReader("<a/>"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("empty feed: %d, want 404", r2.StatusCode)
	}
}

// TestServeTenantBudgets: the posting tenant's MaxRecordBytes budget plus
// the Skip default contain an oversized record to that record.
func TestServeTenantBudgets(t *testing.T) {
	_, ts := newTestServer(t, Options{Engine: xpe.NewEngine()})
	mustRegister(t, ts, `{"tenant":"tiny","name":"q","query":"price doc* *","feed":"f",`+
		`"budgets":{"maxRecordBytes":64,"recordTimeout":"5s"}}`)

	big := strings.Repeat("<pad>x</pad>", 40)
	doc := `<corpus><doc><price>1</price></doc><doc>` + big + `<price>2</price></doc></corpus>`

	// Anonymous post: default (unlimited) budgets, both records match.
	matches, _, _ := postNDJSON(t, ts.URL+"/v1/feed/f", doc)
	if len(matches) != 2 {
		t.Fatalf("unbudgeted post: %d matches, want 2", len(matches))
	}

	// Posting as the budgeted tenant: the oversized record is skipped, the
	// small one still answers.
	matches, summary, _ := postNDJSON(t, ts.URL+"/v1/feed/f?tenant=tiny", doc)
	if len(matches) != 1 {
		t.Fatalf("budgeted post: %d matches, want 1 (oversized record skipped)", len(matches))
	}
	if summary.Skipped != 1 {
		t.Errorf("summary.skipped = %d, want 1", summary.Skipped)
	}

	// on-error=abort surfaces the failure as an NDJSON error line instead.
	resp, err := http.Post(ts.URL+"/v1/feed/f?tenant=tiny&on-error=abort", "application/xml",
		strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"error"`) {
		t.Errorf("abort policy: response carries no error line:\n%s", body)
	}
}

// TestServeAdmission fills the single evaluation slot and the one queue
// slot with stalled requests, then checks the next request bounces with
// 429 + Retry-After rather than queueing unboundedly.
func TestServeAdmission(t *testing.T) {
	s, ts := newTestServer(t, Options{Engine: xpe.NewEngine(), MaxConcurrent: 1, MaxQueueDepth: 1})
	mustRegister(t, ts, `{"tenant":"t","name":"q","query":"a doc*","feed":"f"}`)

	// A pipe-bodied request stalls inside evaluation holding its slot
	// until we close the writer.
	stall := func() (*io.PipeWriter, chan error) {
		pr, pw := io.Pipe()
		done := make(chan error, 1)
		go func() {
			resp, err := http.Post(ts.URL+"/v1/feed/f", "application/xml", pr)
			if resp != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			done <- err
		}()
		return pw, done
	}

	w1, done1 := stall() // admitted, holds the slot
	waitFor(t, func() bool { return s.Stats().ActiveProbes == 1 })
	w2, done2 := stall() // queued
	waitFor(t, func() bool { return s.Stats().QueueDepth == 1 })

	// Queue full: third concurrent request is refused immediately.
	resp, err := http.Post(ts.URL+"/v1/feed/f", "application/xml", strings.NewReader("<a/>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After hint")
	}

	// Release the pipeline; both stalled requests complete.
	w1.Write([]byte("<corpus><doc><a/></doc></corpus>"))
	w1.Close()
	if err := <-done1; err != nil {
		t.Fatal(err)
	}
	w2.Write([]byte("<corpus><doc><a/></doc></corpus>"))
	w2.Close()
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Rejected != 1 || st.Admitted != 2 {
		t.Errorf("admission counters: %+v", st)
	}
}

// TestServeDrain: BeginDrain turns away new evaluation work with 503 while
// an in-flight stream runs to completion, and Drain observes it finish.
func TestServeDrain(t *testing.T) {
	s, ts := newTestServer(t, Options{Engine: xpe.NewEngine()})
	mustRegister(t, ts, `{"tenant":"t","name":"q","query":"a doc*","feed":"f"}`)

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/feed/f", "application/xml", pr)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	waitFor(t, func() bool { return s.Stats().ActiveProbes == 1 })

	s.BeginDrain()
	for _, u := range []string{"/v1/feed/f", "/v1/select?query=a+doc*", "/v1/healthz"} {
		var resp *http.Response
		var err error
		if strings.HasPrefix(u, "/v1/healthz") {
			resp, err = http.Get(ts.URL + u)
		} else {
			resp, err = http.Post(ts.URL+u, "application/xml", strings.NewReader("<a/>"))
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s while draining: %d, want 503", u, resp.StatusCode)
		}
	}

	// The in-flight stream is untouched by the drain flag.
	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()
	select {
	case err := <-drainErr:
		t.Fatalf("Drain returned %v with a stream still active", err)
	case <-time.After(50 * time.Millisecond):
	}
	pw.Write([]byte("<corpus><doc><a/></doc></corpus>"))
	pw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// And a bounded Drain on a still-active server would time out cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain on idle server: %v", err)
	}
}

// TestServeNoGoroutineLeak: a burst of concurrent feed posts leaves no
// evaluation goroutines behind once the responses are consumed.
func TestServeNoGoroutineLeak(t *testing.T) {
	s, ts := newTestServer(t, Options{Engine: xpe.NewEngine(), Workers: 2})
	mustRegister(t, ts, `{"tenant":"t","name":"q","query":"price doc* *","feed":"f"}`)
	before := runtime.NumGoroutine()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/feed/f", "application/xml", strings.NewReader(feedCorpus))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Feeds != 8 {
		t.Fatalf("feed runs = %d, want 8", st.Feeds)
	}
	// Keep-alive connections park reader goroutines in the client pool;
	// retire them so the count converges, then catch per-request
	// evaluation leaks (8 runs × workers would dwarf the +4 headroom).
	waitFor(t, func() bool {
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
		return runtime.NumGoroutine() <= before+4
	})
}

func TestServeStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Engine: xpe.NewEngine()})
	mustRegister(t, ts, `{"tenant":"t","name":"q","query":"price doc* *"}`)
	if _, _, err := get(ts.URL + "/v1/feed/" + DefaultFeed); err == nil {
		// GET on a POST route is 405; just checking the mux is strict.
	}
	postNDJSON(t, ts.URL+"/v1/feed/"+DefaultFeed, feedCorpus)

	resp, err := http.Get(ts.URL + "/debug/xpe/serve")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Feeds != 1 || st.Registered != 1 || st.Matches == 0 {
		t.Errorf("served stats: %+v", st)
	}
	if st.Records+st.Prefiltered == 0 {
		t.Errorf("served stats counted no records: %+v", st)
	}

	// The engine debug surface is mounted alongside.
	r2, err := http.Get(ts.URL + "/debug/xpe/stats")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Errorf("/debug/xpe/stats: %d, want 200", r2.StatusCode)
	}
}

func get(url string) (int, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// waitFor polls cond until true or the deadline, failing the test on
// timeout — the scheduling-tolerant way to observe cross-goroutine state.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
