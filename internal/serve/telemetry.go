package serve

// Serving telemetry: the GET /metrics exposition page, request-scoped
// correlation (X-Request-Id assignment and propagation into record
// traces), the structured access log, and the per-feed trace endpoint.
//
// The request-id contract: every evaluation request gets an id — the
// client's X-Request-Id header when it is a sane token, a fresh random
// one otherwise — echoed back in the response's X-Request-Id header,
// stamped onto every record trace the run commits (visible at
// /debug/xpe/serve/traces?feed=), carried by slow-record log lines, and
// closing the loop in the access log line. One id therefore correlates
// the HTTP exchange, the per-record spans, and the logs.

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"xpe"
	"xpe/internal/telemetry"
)

// requestID resolves the request's correlation id and echoes it on the
// response. Client-supplied ids are honored when they look like tokens
// (printable, bounded); anything else is replaced, never trusted into
// log lines verbatim.
func (s *Server) requestID(w http.ResponseWriter, r *http.Request) string {
	if s.rollups == nil {
		return "" // telemetry disabled: no ids, no header
	}
	rid := r.Header.Get("X-Request-Id")
	if !validRequestID(rid) {
		rid = newRequestID()
	}
	w.Header().Set("X-Request-Id", rid)
	return rid
}

// validRequestID accepts 1..128 bytes of [A-Za-z0-9._-].
func validRequestID(rid string) bool {
	if len(rid) == 0 || len(rid) > 128 {
		return false
	}
	for i := 0; i < len(rid); i++ {
		c := rid[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// newRequestID returns a fresh random id ("a1b2...", 16 hex chars).
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; correlation ids are
		// not security tokens, so degrade to a constant rather than 500.
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status for the access log and the
// rollup response-class counters. It forwards Flush so NDJSON streaming
// keeps its per-record flushing through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// code is the committed status (200 when the handler returned without
// an explicit WriteHeader — net/http's own default).
func (sw *statusWriter) code() int {
	if sw.status == 0 {
		return http.StatusOK
	}
	return sw.status
}

// finishRequest closes out one evaluation request: the dimensional
// rollups and the one structured access line. Deferred by the select
// and feed handlers, so refusals (429/503) and bad requests are
// accounted and logged exactly like served runs.
func (s *Server) finishRequest(kind, tenant, feed, rid string, queries int, sw *statusWriter, stats *xpe.StreamStats, start time.Time) {
	dur := time.Since(start)
	if s.rollups != nil {
		s.rollups.observe(tenant, feed, sw.code(), *stats, dur)
	}
	if l := s.opts.Logger; l != nil {
		l.Info("xpe.serve access",
			"kind", kind,
			"tenant", tenant,
			"feed", feed,
			"status", sw.code(),
			"queries", queries,
			"records", stats.Records,
			"matches", stats.Matches,
			"duration_ms", float64(dur)/float64(time.Millisecond),
			"request_id", rid,
		)
	}
}

// slowRecordSink builds the per-run slow-record callback: serving
// context (tenant, feed, request id) plus the trace's own figures, on
// the server's logger. Returns nil without a logger — the facade then
// falls back to its own slog warning, which still carries the stamped
// request id.
func (s *Server) slowRecordSink(tenant, feed string) func(xpe.RecordTrace) {
	l := s.opts.Logger
	if l == nil {
		return nil
	}
	return func(rt xpe.RecordTrace) {
		l.Warn("xpe.serve slow record",
			"tenant", tenant,
			"feed", feed,
			"request_id", rt.RequestID,
			"record", rt.Index,
			"path", rt.Path,
			"total_ns", rt.TotalNS,
			"eval_ns", rt.EvalNS,
			"nodes", rt.Nodes,
			"matches", rt.Matches,
			"outcome", rt.Outcome,
		)
	}
}

// handleMetrics serves the Prometheus exposition page: engine counters,
// serve counters and gauges, the dimensional rollups, and process
// runtime gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.rollups == nil {
		http.Error(w, "telemetry disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w, true)
}

// writeMetrics renders the full exposition page. withRuntime gates the
// process gauges (goroutines, heap), whose values no golden file can
// pin; the golden test renders with them off, live scrapes with them
// on.
func (s *Server) writeMetrics(w io.Writer, withRuntime bool) error {
	t := telemetry.NewWriter(w)
	telemetry.AppendEngine(t, s.opts.Engine.Stats())
	s.appendServe(t)
	if s.rollups != nil {
		s.rollups.render(t)
	}
	if withRuntime {
		telemetry.AppendRuntime(t)
	}
	return t.Err()
}

// appendServe renders the server-wide counters and gauges (the Stats
// surface) plus per-tenant admission series and per-feed breaker state.
// The counter/gauge split follows the Stats struct's documented hygiene:
// cumulative totals are counters, point-in-time occupancy is gauges.
func (s *Server) appendServe(t *telemetry.Writer) {
	st := s.Stats()

	t.Counter("xpe_serve_eval_requests_total", "Evaluation requests seen (admitted or refused).", st.Requests)
	t.Counter("xpe_serve_admitted_total", "Requests granted an evaluation slot.", st.Admitted)
	t.Counter("xpe_serve_rejected_total", "Requests bounced by admission control with 429.", st.Rejected)
	t.Counter("xpe_serve_shed_total", "The 429 subset shed by weight under overload.", st.Shed)
	t.Counter("xpe_serve_degraded_total", "Admissions served under tightened (degraded) budgets.", st.Degraded)
	t.Counter("xpe_serve_draining_rejects_total", "Requests bounced with 503 while draining.", st.Draining)
	t.Counter("xpe_serve_breaker_rejects_total", "Feed posts bounced by an open circuit breaker.", st.BreakerRejects)
	t.Counter("xpe_serve_breaker_trips_total", "Circuit breaker closed-to-open transitions.", st.BreakerTrips)
	t.Counter("xpe_serve_feed_runs_total", "Shared-pass feed evaluations started.", st.Feeds)
	t.Counter("xpe_serve_select_runs_total", "One-shot select evaluations started.", st.Selects)
	t.Counter("xpe_serve_eval_matches_total", "NDJSON match lines written across all runs.", st.Matches)
	t.Counter("xpe_serve_eval_records_total", "Records evaluated across all runs.", st.Records)
	t.Counter("xpe_serve_eval_prefiltered_total", "Records skipped by the union prefilter across all runs.", st.Prefiltered)
	t.Counter("xpe_serve_eval_skipped_total", "Failed records dropped by the Skip policy across all runs.", st.Skipped)

	t.Gauge("xpe_serve_queue_depth", "Admission waiters queued right now, all tenants (gauge).", float64(st.QueueDepth))
	t.Gauge("xpe_serve_active_streams", "Streams evaluating right now (gauge).", float64(st.ActiveProbes))
	t.Gauge("xpe_serve_breaker_open_feeds", "Feeds currently refusing service (gauge).", float64(st.BreakerOpen))
	t.Gauge("xpe_serve_registered_queries", "Live query registrations (gauge).", float64(st.Registered))
	t.Gauge("xpe_serve_quarantined_queries", "Replayed registrations that no longer compile (gauge).", float64(st.Quarantined))

	tenants := make([]string, 0, len(st.Tenants))
	for name := range st.Tenants {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	t.Family("xpe_serve_tenant_admitted_total", "Admissions granted, by tenant.", "counter")
	for _, name := range tenants {
		t.Sample("xpe_serve_tenant_admitted_total", float64(st.Tenants[name].Admitted), "tenant", name)
	}
	t.Family("xpe_serve_tenant_rejected_total", "Admissions refused, by tenant.", "counter")
	for _, name := range tenants {
		t.Sample("xpe_serve_tenant_rejected_total", float64(st.Tenants[name].Rejected), "tenant", name)
	}
	t.Family("xpe_serve_tenant_queue_depth", "Admission waiters queued right now, by tenant (gauge).", "gauge")
	for _, name := range tenants {
		t.Sample("xpe_serve_tenant_queue_depth", float64(st.Tenants[name].QueueDepth), "tenant", name)
	}
	t.Family("xpe_serve_tenant_weight", "Fair-admission weight, by tenant (gauge).", "gauge")
	for _, name := range tenants {
		t.Sample("xpe_serve_tenant_weight", float64(st.Tenants[name].Weight), "tenant", name)
	}

	feeds := make([]string, 0, len(st.BreakerStates))
	for feed := range st.BreakerStates {
		feeds = append(feeds, feed)
	}
	sort.Strings(feeds)
	t.Family("xpe_serve_breaker_state", "Circuit breaker state by feed: 0 closed, 1 half-open, 2 open (gauge).", "gauge")
	for _, feed := range feeds {
		t.Sample("xpe_serve_breaker_state", float64(breakerStateValue(st.BreakerStates[feed])), "feed", feed)
	}
}

// breakerStateValue maps a breaker state name to its gauge value.
func breakerStateValue(state string) int {
	switch state {
	case "open":
		return 2
	case "half-open":
		return 1
	default:
		return 0
	}
}

// handleFeedTraces serves one feed's flight-recorder ring as JSON —
// the per-feed "what just happened" surface, request ids included.
func (s *Server) handleFeedTraces(w http.ResponseWriter, r *http.Request) {
	if s.rollups == nil {
		http.Error(w, "telemetry disabled", http.StatusNotFound)
		return
	}
	feed := r.URL.Query().Get("feed")
	if feed == "" {
		http.Error(w, "?feed= is required", http.StatusBadRequest)
		return
	}
	fr := s.rollups.existingRecorder(feed)
	if fr == nil {
		http.Error(w, fmt.Sprintf("feed %q has no recorded traces", feed), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fr.WriteJSON(w)
}
