package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xpe"
)

// listQueries fetches GET /v1/queries and canonicalizes it for
// comparison: (tenant, name, feed, quarantined, error) per entry, in
// listing (registration) order.
func listQueries(t *testing.T, url string) []regQuery {
	t.Helper()
	resp, err := http.Get(url + "/v1/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var regs []regQuery
	if err := json.NewDecoder(resp.Body).Decode(&regs); err != nil {
		t.Fatal(err)
	}
	return regs
}

func sameRegs(a, b []regQuery) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Tenant != b[i].Tenant || a[i].Name != b[i].Name ||
			a[i].Feed != b[i].Feed || a[i].Source != b[i].Source ||
			a[i].Quarantined != b[i].Quarantined {
			return false
		}
	}
	return true
}

// TestJournalKillRestart is the acceptance-criteria chaos test: a server
// registers queries across tenants and feeds, a feed run is mid-flight,
// and the process "dies" — no drain, no compaction, the journal simply
// stops being written. A second server on the same state dir must list
// the exact pre-kill registration set, none silently dropped, and serve
// feeds from it.
func TestJournalKillRestart(t *testing.T) {
	dir := t.TempDir()
	eng := xpe.NewEngine()
	s1, ts1 := newTestServer(t, Options{Engine: eng, StateDir: dir})
	mustRegister(t, ts1, `{"tenant":"t1","name":"prices","query":"price doc* *","feed":"market"}`)
	mustRegister(t, ts1, `{"tenant":"t1","name":"skus","query":"sku doc*","feed":"market"}`)
	mustRegister(t, ts1, `{"tenant":"t2","name":"memos","query":"memo doc*","feed":"backoffice",`+
		`"budgets":{"maxRecordBytes":4096,"weight":2}}`)

	// A feed run is in flight at kill time: registration durability must
	// not depend on quiescence.
	pr, pw := io.Pipe()
	feedDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts1.URL+"/v1/feed/market", "application/xml", pr)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		feedDone <- err
	}()
	waitFor(t, func() bool { return s1.Stats().ActiveProbes == 1 })
	preKill := listQueries(t, ts1.URL)
	if len(preKill) != 3 {
		t.Fatalf("pre-kill listing: %+v", preKill)
	}

	// "SIGKILL": bring up the replacement while s1 still runs mid-feed,
	// exactly as a new process would find the state dir after a kill -9.
	s2, err := NewServer(Options{Engine: eng, StateDir: dir})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()

	postKill := listQueries(t, ts2.URL)
	if !sameRegs(preKill, postKill) {
		t.Fatalf("registration set changed across restart:\npre:  %+v\npost: %+v", preKill, postKill)
	}
	if st := s2.Stats(); st.Registered != 3 || st.Quarantined != 0 {
		t.Fatalf("restart stats: %+v", st)
	}
	// The recovered registry serves: the shared pass still runs the feed.
	matches, _, _ := postNDJSON(t, ts2.URL+"/v1/feed/market", feedCorpus)
	if len(matches) == 0 {
		t.Fatal("recovered feed matched nothing")
	}
	// Recovered tenant budgets apply (t2 set weight 2 at registration).
	if w := s2.budgetsFor("t2").Weight; w != 2 {
		t.Errorf("recovered t2 weight = %d, want 2", w)
	}

	// Let the zombie's feed run finish; its post-kill writes are irrelevant.
	pw.Write([]byte(feedCorpus))
	pw.Close()
	if err := <-feedDone; err != nil {
		t.Fatal(err)
	}
}

// TestJournalQuarantine: a journal entry that no longer compiles is
// quarantined on replay — listed with its error and counted, excluded
// from feed passes, never fatal — and re-registering over it repairs it
// durably.
func TestJournalQuarantine(t *testing.T) {
	dir := t.TempDir()
	journal := `{"tenant":"t","name":"good","query":"price doc* *","feed":"f"}
{"tenant":"t","name":"broken","query":"((((","feed":"f"}
`
	if err := os.WriteFile(filepath.Join(dir, journalFile), []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Options{Engine: xpe.NewEngine(), StateDir: dir})
	t.Cleanup(func() { s.Close() })

	if st := s.Stats(); st.Registered != 1 || st.Quarantined != 1 {
		t.Fatalf("replay stats: %+v", st)
	}
	regs := listQueries(t, ts.URL)
	if len(regs) != 2 {
		t.Fatalf("quarantined entry dropped from the listing: %+v", regs)
	}
	var quarantined *regQuery
	for i := range regs {
		if regs[i].Name == "broken" {
			quarantined = &regs[i]
		}
	}
	if quarantined == nil || !quarantined.Quarantined || quarantined.Error == "" {
		t.Fatalf("broken entry not surfaced as quarantined: %+v", regs)
	}
	// The feed pass runs the one live query only.
	matches, summary, _ := postNDJSON(t, ts.URL+"/v1/feed/f", feedCorpus)
	if summary.Queries != 1 || len(matches) == 0 {
		t.Fatalf("feed with quarantined sibling: queries=%d matches=%d", summary.Queries, len(matches))
	}

	// Repair: registering over the quarantined name succeeds, and the
	// repair survives a further restart.
	mustRegister(t, ts, `{"tenant":"t","name":"broken","query":"sku doc*","feed":"f"}`)
	if st := s.Stats(); st.Registered != 2 || st.Quarantined != 0 {
		t.Fatalf("post-repair stats: %+v", st)
	}
	s2, err := NewServer(Options{Engine: xpe.NewEngine(), StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Registered != 2 || st.Quarantined != 0 {
		t.Fatalf("repair did not survive restart: %+v", st)
	}
}

// TestJournalTornTail: a crash mid-append leaves a torn final line; it is
// dropped (its 201 was never sent) and everything before it survives. A
// malformed line that is NOT the tail is corruption and fails startup.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	journal := `{"tenant":"t","name":"a","query":"price doc* *","feed":"f"}
{"tenant":"t","name":"b","query":"sku doc*","feed":"f"}
{"tenant":"t","name":"c","qu`
	if err := os.WriteFile(filepath.Join(dir, journalFile), []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Options{Engine: xpe.NewEngine(), StateDir: dir})
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	defer s.Close()
	if st := s.Stats(); st.Registered != 2 || st.Quarantined != 0 {
		t.Fatalf("torn-tail replay: %+v", st)
	}

	dir2 := t.TempDir()
	corrupt := `{"tenant":"t","name":"a","query":"price doc* *","feed":"f"}
NOT JSON
{"tenant":"t","name":"b","query":"sku doc*","feed":"f"}
`
	if err := os.WriteFile(filepath.Join(dir2, journalFile), []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(Options{Engine: xpe.NewEngine(), StateDir: dir2}); err == nil {
		t.Fatal("mid-journal corruption accepted silently")
	}
}

// TestJournalCompaction: startup compacts replayed state into the
// snapshot atomically and truncates the journal; the compacted state
// alone reproduces the registration set, and quarantined entries survive
// compaction too.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	journal := `{"tenant":"t","name":"a","query":"price doc* *","feed":"f"}
{"tenant":"t","name":"broken","query":"((((","feed":"f"}
`
	if err := os.WriteFile(filepath.Join(dir, journalFile), []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Options{Engine: xpe.NewEngine(), StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Compaction happened: journal empty, snapshot carries both entries.
	if fi, err := os.Stat(filepath.Join(dir, journalFile)); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not truncated after compaction: %v, %v", fi, err)
	}
	snap, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	var entries []journalEntry
	if err := json.Unmarshal(snap, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("snapshot entries = %+v, want both (quarantined included)", entries)
	}
	if !strings.Contains(string(snap), "((((") {
		t.Fatal("quarantined entry silently dropped by compaction")
	}

	// The snapshot alone restores the set.
	s2, err := NewServer(Options{Engine: xpe.NewEngine(), StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Registered != 1 || st.Quarantined != 1 {
		t.Fatalf("snapshot-only restart: %+v", st)
	}
}
