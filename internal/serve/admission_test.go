package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// waitQueued polls until the admitter holds exactly n waiters.
func waitQueued(t *testing.T, a *admitter, n int) {
	t.Helper()
	waitFor(t, func() bool {
		_, queued, _, _, _ := a.snapshot()
		return queued == n
	})
}

// enqueue parks n admission requests for tenant and returns a channel
// carrying each grant's tenant name in grant order (each waiter releases
// its slot immediately, so grants are strictly sequential under
// capacity 1).
func enqueue(t *testing.T, a *admitter, tenant string, weight, n int, grants chan<- string, wg *sync.WaitGroup) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, before, _, _, _ := a.snapshot()
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, ref := a.admit(context.Background(), tenant, weight)
			if ref != nil || release == nil {
				grants <- "REFUSED:" + tenant
				return
			}
			grants <- tenant
			release()
		}()
		// One waiter parks before the next is spawned, so queue order —
		// and therefore grant order — is deterministic.
		waitQueued(t, a, before+1)
	}
}

// TestAdmitterFairInterleave is the deterministic fairness pin: one
// tenant floods six waiters deep, another parks two, and weighted
// round-robin must interleave the quiet tenant's grants near the front
// instead of behind the flood (FIFO would grant them 7th and 8th).
func TestAdmitterFairInterleave(t *testing.T) {
	a := newAdmitter(1, 8, 100, 200)
	hold, ref := a.admit(context.Background(), "hold", 1)
	if ref != nil || hold == nil {
		t.Fatal("holder refused with free capacity")
	}

	grants := make(chan string, 8)
	var wg sync.WaitGroup
	enqueue(t, a, "hog", 1, 6, grants, &wg)
	waitQueued(t, a, 6)
	enqueue(t, a, "quiet", 1, 2, grants, &wg)
	waitQueued(t, a, 8)

	hold() // start the chain: each grant releases into the next dispatch
	wg.Wait()
	close(grants)
	var order []string
	for g := range grants {
		order = append(order, g)
	}
	if len(order) != 8 {
		t.Fatalf("grants = %v", order)
	}
	quietAt := []int{}
	for i, g := range order {
		if g == "quiet" {
			quietAt = append(quietAt, i)
		}
		if g == "REFUSED:hog" || g == "REFUSED:quiet" {
			t.Fatalf("waiter refused after queueing: %v", order)
		}
	}
	// Equal weights alternate while both queues are non-empty: quiet's
	// grants land within the first four, never trailing the flood.
	if len(quietAt) != 2 || quietAt[1] > 3 {
		t.Errorf("quiet granted at positions %v of %v; flood starved it", quietAt, order)
	}

	_, _, _, _, tenants := a.snapshot()
	if tenants["hog"].Admitted != 6 || tenants["quiet"].Admitted != 2 {
		t.Errorf("per-tenant admitted: %+v", tenants)
	}
}

// TestAdmitterWeights: a weight-3 tenant takes three consecutive grants
// per cycle to the weight-1 tenant's one.
func TestAdmitterWeights(t *testing.T) {
	a := newAdmitter(1, 16, 100, 200)
	hold, _ := a.admit(context.Background(), "hold", 1)

	grants := make(chan string, 8)
	var wg sync.WaitGroup
	enqueue(t, a, "heavy", 3, 6, grants, &wg)
	waitQueued(t, a, 6)
	enqueue(t, a, "light", 1, 2, grants, &wg)
	waitQueued(t, a, 8)

	hold()
	wg.Wait()
	close(grants)
	var order []string
	for g := range grants {
		order = append(order, g)
	}
	want := []string{"heavy", "heavy", "heavy", "light", "heavy", "heavy", "heavy", "light"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

// TestAdmitterPerTenantBound: one tenant's full queue refuses only that
// tenant; another tenant still queues freely.
func TestAdmitterPerTenantBound(t *testing.T) {
	a := newAdmitter(1, 2, 100, 200)
	hold, _ := a.admit(context.Background(), "hold", 1)

	grants := make(chan string, 4)
	var wg sync.WaitGroup
	enqueue(t, a, "hog", 1, 2, grants, &wg)
	waitQueued(t, a, 2)

	// Hog's queue is at its bound: the next hog request is refused with a
	// machine-actionable payload.
	release, ref := a.admit(context.Background(), "hog", 1)
	if release != nil || ref == nil {
		t.Fatal("over-bound hog admitted")
	}
	if ref.Tenant != "hog" || ref.QueueDepth != 2 || ref.RetryAfterMS < 1 {
		t.Errorf("refusal = %+v", ref)
	}
	// A different tenant is untouched by hog's backlog.
	enqueue(t, a, "quiet", 1, 1, grants, &wg)
	waitQueued(t, a, 3)
	_, _, _, _, tenants := a.snapshot()
	if tenants["hog"].Rejected != 1 || tenants["quiet"].Rejected != 0 {
		t.Errorf("per-tenant rejected: %+v", tenants)
	}

	hold()
	wg.Wait()
	close(grants)
	n := 0
	for g := range grants {
		if g == "REFUSED:hog" || g == "REFUSED:quiet" {
			t.Fatalf("queued waiter refused: %v", g)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("grants = %d, want 3", n)
	}
}

// TestAdmitterShedsLowWeightFirst: past the shed depth, arrivals lighter
// than the heaviest queued tenant are refused outright while the heavy
// tenant keeps its per-queue bound.
func TestAdmitterShedsLowWeightFirst(t *testing.T) {
	a := newAdmitter(1, 10, 2, 3)
	hold, _ := a.admit(context.Background(), "hold", 1)

	grants := make(chan string, 8)
	var wg sync.WaitGroup
	enqueue(t, a, "heavy", 5, 3, grants, &wg)
	waitQueued(t, a, 3) // at shedDepth

	if release, ref := a.admit(context.Background(), "light", 1); release != nil || ref == nil || !ref.Shed {
		t.Fatalf("light arrival past shed depth: release=%v ref=%+v", release != nil, ref)
	}
	// The heavy tenant itself still queues (its weight matches the max).
	enqueue(t, a, "heavy", 5, 1, grants, &wg)
	waitQueued(t, a, 4)

	_, _, _, shed, tenants := a.snapshot()
	if shed != 1 || tenants["light"].Rejected != 1 {
		t.Errorf("shed = %d, tenants = %+v", shed, tenants)
	}

	hold()
	wg.Wait()
}

// TestAdmitterCancelWhileQueued: a cancelled waiter leaves the queue
// without consuming a slot, and later grants proceed normally.
func TestAdmitterCancelWhileQueued(t *testing.T) {
	a := newAdmitter(1, 4, 100, 200)
	hold, _ := a.admit(context.Background(), "hold", 1)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool)
	go func() {
		release, ref := a.admit(ctx, "t", 1)
		done <- release == nil && ref == nil
	}()
	waitQueued(t, a, 1)
	cancel()
	if !<-done {
		t.Fatal("cancelled waiter did not return nil,nil")
	}
	waitQueued(t, a, 0)

	hold()
	release, ref := a.admit(context.Background(), "t", 1)
	if ref != nil || release == nil {
		t.Fatal("admission broken after a cancelled waiter")
	}
	release()
}

// TestAdmitterRetryHintTracksDrainRate: after releases at a steady
// cadence, the 429 retry hint is the drain interval times the work
// queued ahead — not a fixed constant.
func TestAdmitterRetryHintTracksDrainRate(t *testing.T) {
	a := newAdmitter(1, 1, 100, 200)
	now := time.Unix(1000, 0)
	a.now = func() time.Time { return now }

	for i := 0; i < 4; i++ {
		release, ref := a.admit(context.Background(), "t", 1)
		if ref != nil {
			t.Fatal("refused with free capacity")
		}
		now = now.Add(100 * time.Millisecond)
		release()
	}

	hold, _ := a.admit(context.Background(), "t", 1)
	grants := make(chan string, 1)
	var wg sync.WaitGroup
	enqueue(t, a, "t", 1, 1, grants, &wg)
	waitQueued(t, a, 1)

	_, ref := a.admit(context.Background(), "t", 1)
	if ref == nil {
		t.Fatal("expected refusal with a full tenant queue")
	}
	// EWMA of identical 100ms intervals is 100ms; one waiter ahead plus
	// this request = 200ms.
	if ref.RetryAfterMS != 200 {
		t.Errorf("retry_after_ms = %d, want 200 (drain 100ms × 2 queued)", ref.RetryAfterMS)
	}

	hold()
	wg.Wait()
}
