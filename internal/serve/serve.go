// Package serve is the multi-tenant query-serving layer: a long-lived
// HTTP surface where tenants register compiled queries once and stream
// documents past them, getting NDJSON matches back.
//
// Endpoints:
//
//	POST /v1/queries        register a query (JSON body; compiled eagerly)
//	GET  /v1/queries        list registrations (?tenant= filters)
//	POST /v1/select         one-shot: evaluate an ad-hoc query over the body
//	POST /v1/feed/{feed}    shared pass: every query registered on the feed
//	GET  /v1/healthz        liveness ("draining" while shutting down)
//	GET  /metrics           Prometheus text exposition (engine, serve, rollups)
//	GET  /debug/xpe/serve   serving counters (admission, feeds, matches)
//	GET  /debug/xpe/serve/traces?feed=  one feed's flight-recorder ring
//	/debug/xpe/*, /debug/pprof/*  the engine debug surface (xpe/debug)
//
// A feed run is ONE pass over the posted document however many queries are
// registered: the stream is split and parsed once and every record drives
// all the match automata (xpe.Engine.SelectStreamMulti), with the union
// prefilter gating per-query evaluation. Matches stream back as NDJSON
// lines tagged with tenant and query name, grouped per record by
// registration order; a final {"summary":...} line carries the run's
// stats, in which records+prefiltered always equals the total records the
// splitter saw.
//
// Tenancy is cooperative, not authenticated (bind the listener like a
// pprof port): a tenant is a namespace for query names plus a budget set —
// MaxRecordBytes/MaxRecordNodes/RecordTimeout — applied to the documents
// that tenant posts. Feed runs default to the Skip policy so one poisoned
// record costs that record, not the feed (fault containment); pass
// ?on-error=abort to fail fast instead.
//
// Admission control bounds concurrent evaluation: at most MaxConcurrent
// streams evaluate at once, dispensed fairly across tenants by weighted
// round-robin over per-tenant wait queues of at most MaxQueueDepth each
// (see admission.go) — one tenant's flood can never push another tenant
// to 429. Refusals are machine-actionable: a JSON body with the tenant's
// queue depth and a retry hint derived from the observed drain rate.
// BeginDrain flips new evaluation requests to 503 while in-flight streams
// finish — the graceful-shutdown half that http.Server.Shutdown's
// connection draining does not cover.
//
// With Options.StateDir set, registrations survive restarts: each is
// fsynced to an append-only journal before its 201, and startup replays
// snapshot+journal, quarantining entries that no longer compile (see
// journal.go). Per-feed circuit breakers isolate feeds whose records keep
// failing (see breaker.go).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xpe"
	"xpe/debug"
)

// DefaultFeed is the feed queries register on when the registration names
// none.
const DefaultFeed = "default"

// Budgets are the per-tenant resource bounds applied to documents the
// tenant streams. Zero fields mean unlimited, matching xpe.SelectOptions.
type Budgets struct {
	// MaxRecordBytes bounds the raw input bytes one record may span.
	MaxRecordBytes int64 `json:"maxRecordBytes,omitempty"`
	// MaxRecordNodes bounds one record's node count.
	MaxRecordNodes int `json:"maxRecordNodes,omitempty"`
	// RecordTimeout bounds one record's evaluation wall time — across all
	// queries of a feed pass (it is a record budget, not a per-query one).
	RecordTimeout time.Duration `json:"-"`
	// RecordTimeoutStr is RecordTimeout's JSON form ("150ms").
	RecordTimeoutStr string `json:"recordTimeout,omitempty"`
	// Weight is the tenant's fair-admission share: per round-robin cycle
	// the tenant may take up to Weight evaluation slots before the turn
	// passes, and under shed-level overload lower-weight tenants are
	// rejected first. 0 means 1.
	Weight int `json:"weight,omitempty"`
}

// normalize resolves the JSON duration form, favoring the typed field.
func (b *Budgets) normalize() error {
	if b.RecordTimeout == 0 && b.RecordTimeoutStr != "" {
		d, err := time.ParseDuration(b.RecordTimeoutStr)
		if err != nil {
			return fmt.Errorf("recordTimeout: %w", err)
		}
		b.RecordTimeout = d
	}
	if b.MaxRecordBytes < 0 || b.MaxRecordNodes < 0 || b.RecordTimeout < 0 {
		return errors.New("budgets must be non-negative (0 = unlimited)")
	}
	if b.Weight < 0 {
		return errors.New("weight must be non-negative (0 = default weight 1)")
	}
	if b.RecordTimeout > 0 {
		b.RecordTimeoutStr = b.RecordTimeout.String()
	}
	return nil
}

// Options configures a Server.
type Options struct {
	// Engine compiles and evaluates; required.
	Engine *xpe.Engine
	// MaxConcurrent bounds streams evaluating at once (<=0: 4).
	MaxConcurrent int
	// MaxQueueDepth bounds admission waiters PER TENANT (<=0: 8); a
	// tenant whose queue is full is answered 429 + Retry-After without
	// touching any other tenant's queue.
	MaxQueueDepth int
	// Workers is the per-stream evaluation worker count (xpe
	// SelectOptions.Workers; <=0 = GOMAXPROCS).
	Workers int
	// DefaultBudgets apply to tenants that never set their own, and to
	// anonymous posts.
	DefaultBudgets Budgets
	// MaxQueriesPerTenant caps registrations per tenant (<=0: 256).
	MaxQueriesPerTenant int
	// StateDir, when non-empty, makes registrations crash-safe: an
	// append-only NDJSON journal plus an atomically-compacted snapshot
	// live there, replayed on startup (see journal.go). Empty keeps the
	// registry in memory only.
	StateDir string
	// DegradeQueueDepth is the total queued-waiter count at which the
	// server starts tightening budgets — admitted runs' record timeouts
	// halve — to drain faster under pressure (<=0: 2×MaxQueueDepth).
	DegradeQueueDepth int
	// ShedQueueDepth is the total queued-waiter count at which arrivals
	// from tenants lighter than the heaviest queued tenant are rejected
	// outright — lowest weights shed first (<=0: 4×MaxQueueDepth).
	ShedQueueDepth int
	// BreakerThreshold is the consecutive record-failure count that trips
	// a feed's circuit breaker (0: 8; negative: breakers disabled).
	BreakerThreshold int
	// BreakerBackoff is the initial open interval after a trip, doubling
	// on each failed half-open probe up to BreakerMaxBackoff
	// (<=0: 5s / 2m).
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	// Logger, when non-nil, receives the structured serving log: one
	// access line per evaluation request (tenant, feed, status, records,
	// matches, duration, request id) and slow-record warnings. Nil keeps
	// the server silent (the library-quiet default).
	Logger *slog.Logger
	// SlowRecordThreshold routes records whose split+eval+deliver total
	// meets or exceeds it to the slow-record log, with tenant/feed/
	// request-id context (0 disables).
	SlowRecordThreshold time.Duration
	// MaxLabelSets caps the dimensional rollups' cardinality: at most
	// this many (tenant, feed) cells and (tenant, feed, query) match
	// counters; past the cap, observations fold into an "other" bucket
	// (<=0: 128).
	MaxLabelSets int
	// FeedTraceDepth is the per-feed flight-recorder ring capacity
	// backing /debug/xpe/serve/traces?feed= (<=0: 32).
	FeedTraceDepth int
	// DisableTelemetry turns the serving telemetry off wholesale — no
	// rollups, no request ids, no per-feed recorders; GET /metrics
	// answers 404. The telemetry-overhead gate measures this
	// configuration against the default.
	DisableTelemetry bool
}

// regQuery is one registered query. A quarantined entry survived a
// restart but no longer compiles: it stays listed (with its error) and
// keeps its name reserved, but is excluded from feed passes until
// re-registered over.
type regQuery struct {
	Tenant      string `json:"tenant"`
	Name        string `json:"name"`
	Source      string `json:"query,omitempty"`
	XPath       string `json:"xpath,omitempty"`
	Feed        string `json:"feed"`
	Quarantined bool   `json:"quarantined,omitempty"`
	Error       string `json:"error,omitempty"`
	seq         int    // global registration order: the feed-pass query order
	q           *xpe.Query
}

// tenant is a name namespace plus its budget set.
type tenant struct {
	budgets Budgets
	queries map[string]*regQuery
}

// Stats are the server's serving counters, exposed as JSON at
// /debug/xpe/serve and as Prometheus exposition at /metrics.
//
// The surface mixes two kinds of figure — keep them straight when
// graphing. Cumulative counters only ever rise (rate() them): Requests
// through Skipped below. Point-in-time gauges describe the instant the
// snapshot was taken and move both ways: QueueDepth, ActiveProbes,
// BreakerOpen, Registered, Quarantined, BreakerStates, and the
// per-tenant QueueDepth/Weight. The /metrics page declares the same
// split with # TYPE counter/gauge.
type Stats struct {
	// Cumulative counters.
	Requests       int64 `json:"requests"`             // evaluation requests seen
	Admitted       int64 `json:"admitted"`             // granted an evaluation slot
	Rejected       int64 `json:"rejected_429"`         // bounced by admission (queue full or shed)
	Shed           int64 `json:"shed_429"`             // the rejected_429 subset shed by weight
	Degraded       int64 `json:"degraded"`             // admissions under tightened budgets
	Draining       int64 `json:"draining_503"`         // bounced while draining
	BreakerRejects int64 `json:"rejected_503_breaker"` // feed posts bounced by an open breaker
	BreakerTrips   int64 `json:"breaker_trips"`        // breaker closed→open transitions
	Feeds          int64 `json:"feed_runs"`            // shared-pass feed evaluations
	Selects        int64 `json:"select_runs"`          // one-shot evaluations
	Matches        int64 `json:"matches"`              // NDJSON match lines written
	Records        int64 `json:"records"`              // records evaluated
	Prefiltered    int64 `json:"prefiltered"`          // records skipped by the union prefilter
	Skipped        int64 `json:"skipped"`              // failed records dropped by Skip

	// Point-in-time gauges.
	BreakerOpen   int64             `json:"breaker_open_feeds"`       // feeds currently refusing service
	QueueDepth    int64             `json:"queue_depth"`              // current admission waiters, all tenants
	ActiveProbes  int64             `json:"active"`                   // streams evaluating right now
	Registered    int64             `json:"registered"`               // live query registrations
	Quarantined   int64             `json:"quarantined"`              // replayed registrations that no longer compile
	BreakerStates map[string]string `json:"breaker_states,omitempty"` // per-feed breaker state: closed / half-open / open

	Tenants map[string]TenantStats `json:"tenants,omitempty"` // per-tenant admission counters
}

// TenantStats are one tenant's admission figures: Admitted and Rejected
// are cumulative counters, Weight and QueueDepth point-in-time gauges.
type TenantStats struct {
	Weight     int   `json:"weight"`
	Admitted   int64 `json:"admitted"`
	Rejected   int64 `json:"rejected_429"`
	QueueDepth int64 `json:"queue_depth"`
}

// Server is the serving state machine behind the HTTP surface. It is an
// http.Handler; lifecycle (listening, TLS, connection shutdown) belongs to
// the embedding http.Server — see cmd/xpeserve.
type Server struct {
	opts Options
	mux  *http.ServeMux

	mu      sync.RWMutex
	tenants map[string]*tenant
	feeds   map[string][]*regQuery
	regSeq  int

	adm      *admitter
	breakers *breakerSet
	jnl      *journal
	rollups  *rollups // nil when Options.DisableTelemetry
	draining atomic.Bool
	active   sync.WaitGroup

	requests, admitted, rejected, drained atomic.Int64
	feedRuns, selectRuns                  atomic.Int64
	matches, records, prefiltered, skips  atomic.Int64
	registered, quarantinedN              atomic.Int64
	breakerTrips, breakerRejects          atomic.Int64
}

// NewServer builds the serving surface over eng.
func NewServer(opts Options) (*Server, error) {
	if opts.Engine == nil {
		return nil, errors.New("serve: Options.Engine is required")
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 4
	}
	if opts.MaxQueueDepth <= 0 {
		opts.MaxQueueDepth = 8
	}
	if opts.MaxQueriesPerTenant <= 0 {
		opts.MaxQueriesPerTenant = 256
	}
	if opts.DegradeQueueDepth <= 0 {
		opts.DegradeQueueDepth = 2 * opts.MaxQueueDepth
	}
	if opts.ShedQueueDepth <= 0 {
		opts.ShedQueueDepth = 4 * opts.MaxQueueDepth
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 8
	}
	if opts.BreakerBackoff <= 0 {
		opts.BreakerBackoff = 5 * time.Second
	}
	if opts.BreakerMaxBackoff <= 0 {
		opts.BreakerMaxBackoff = 2 * time.Minute
	}
	if err := opts.DefaultBudgets.normalize(); err != nil {
		return nil, fmt.Errorf("serve: default budgets: %w", err)
	}
	s := &Server{
		opts:     opts,
		tenants:  make(map[string]*tenant),
		feeds:    make(map[string][]*regQuery),
		adm:      newAdmitter(opts.MaxConcurrent, opts.MaxQueueDepth, opts.DegradeQueueDepth, opts.ShedQueueDepth),
		breakers: newBreakerSet(opts.BreakerThreshold, opts.BreakerBackoff, opts.BreakerMaxBackoff),
	}
	if !opts.DisableTelemetry {
		s.rollups = newRollups(opts.MaxLabelSets, opts.FeedTraceDepth)
	}
	if opts.StateDir != "" {
		jnl, entries, err := openJournal(opts.StateDir)
		if err != nil {
			return nil, fmt.Errorf("serve: state dir %s: %w", opts.StateDir, err)
		}
		s.jnl = jnl
		s.replay(entries)
		if err := jnl.compact(s.entriesLocked()); err != nil {
			jnl.close()
			return nil, fmt.Errorf("serve: compact %s: %w", opts.StateDir, err)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/queries", s.handleRegister)
	mux.HandleFunc("GET /v1/queries", s.handleList)
	mux.HandleFunc("POST /v1/select", s.handleSelect)
	mux.HandleFunc("POST /v1/feed/{feed}", s.handleFeed)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/xpe/serve", s.handleStats)
	mux.HandleFunc("GET /debug/xpe/serve/traces", s.handleFeedTraces)
	mux.Handle("/debug/", debug.Handler(debug.Options{Engine: opts.Engine}))
	s.mux = mux
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close releases the persistence handle (the registry itself needs no
// teardown). Safe without StateDir.
func (s *Server) Close() error {
	if s.jnl != nil {
		return s.jnl.close()
	}
	return nil
}

// replay folds recovered journal entries into the registry, in order. An
// entry that no longer compiles is quarantined, not dropped and not
// fatal: it stays listed with its error and keeps its name reserved. A
// later entry for the same (tenant, name) replaces an earlier one — that
// is how re-registering over a quarantined entry persists.
func (s *Server) replay(entries []journalEntry) {
	for _, e := range entries {
		if e.Feed == "" {
			e.Feed = DefaultFeed
		}
		t := s.tenants[e.Tenant]
		if t == nil {
			t = &tenant{budgets: s.opts.DefaultBudgets, queries: make(map[string]*regQuery)}
			s.tenants[e.Tenant] = t
		}
		if e.Budgets != nil {
			b := *e.Budgets
			if b.normalize() == nil {
				t.budgets = b
			}
		}
		rq := &regQuery{Tenant: e.Tenant, Name: e.Name, Source: e.Query,
			XPath: e.XPath, Feed: e.Feed, seq: s.regSeq}
		s.regSeq++
		var err error
		if e.Query != "" {
			rq.q, err = s.opts.Engine.CompileQuery(e.Query)
		} else {
			rq.q, err = s.opts.Engine.CompileXPath(e.XPath)
		}
		if err != nil {
			rq.Quarantined = true
			rq.Error = err.Error()
			rq.q = nil
		}
		if old := t.queries[e.Name]; old != nil {
			s.dropLocked(old)
		}
		t.queries[e.Name] = rq
		if rq.Quarantined {
			s.quarantinedN.Add(1)
		} else {
			s.feeds[e.Feed] = append(s.feeds[e.Feed], rq)
			s.registered.Add(1)
		}
	}
}

// dropLocked removes a registration from the counters and, when live,
// from its feed list.
func (s *Server) dropLocked(rq *regQuery) {
	if rq.Quarantined {
		s.quarantinedN.Add(-1)
		return
	}
	s.registered.Add(-1)
	regs := s.feeds[rq.Feed]
	for i, x := range regs {
		if x == rq {
			s.feeds[rq.Feed] = append(regs[:i], regs[i+1:]...)
			return
		}
	}
}

// entriesLocked renders the current registry as journal entries in seq
// order — the compaction snapshot. Quarantined entries are included:
// compaction must never silently drop a registration. Tenant budgets ride
// on each tenant's first entry (replay applies them in order, so the
// final state matches). Callers hold no lock during NewServer; live
// callers must hold s.mu.
func (s *Server) entriesLocked() []journalEntry {
	var all []*regQuery
	for _, t := range s.tenants {
		for _, rq := range t.queries {
			all = append(all, rq)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	entries := make([]journalEntry, 0, len(all))
	seenTenant := make(map[string]bool)
	for _, rq := range all {
		e := journalEntry{Tenant: rq.Tenant, Name: rq.Name, Query: rq.Source,
			XPath: rq.XPath, Feed: rq.Feed}
		if !seenTenant[rq.Tenant] {
			seenTenant[rq.Tenant] = true
			if b := s.tenants[rq.Tenant].budgets; b != s.opts.DefaultBudgets {
				bc := b
				e.Budgets = &bc
			}
		}
		entries = append(entries, e)
	}
	return entries
}

// BeginDrain stops admitting new evaluation requests (503) while letting
// in-flight streams run to completion. Registration and debug surfaces
// stay up. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain blocks until every admitted stream has finished or ctx expires.
// Call BeginDrain first, or new streams keep being admitted while you
// wait.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() { s.active.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	active, queued, degraded, shed, tenants := s.adm.snapshot()
	return Stats{
		Requests:       s.requests.Load(),
		Admitted:       s.admitted.Load(),
		Rejected:       s.rejected.Load(),
		Shed:           shed,
		Degraded:       degraded,
		Draining:       s.drained.Load(),
		BreakerRejects: s.breakerRejects.Load(),
		BreakerTrips:   s.breakerTrips.Load(),
		BreakerOpen:    s.breakers.openCount(),
		Feeds:          s.feedRuns.Load(),
		Selects:        s.selectRuns.Load(),
		Matches:        s.matches.Load(),
		Records:        s.records.Load(),
		Prefiltered:    s.prefiltered.Load(),
		Skipped:        s.skips.Load(),
		QueueDepth:     int64(queued),
		ActiveProbes:   int64(active),
		Registered:     s.registered.Load(),
		Quarantined:    s.quarantinedN.Load(),
		BreakerStates:  s.breakers.states(),
		Tenants:        tenants,
	}
}

// admit runs the admission gate for one evaluation request: it returns a
// release func on success, or writes the refusal (a machine-actionable
// 429, or 503 while draining) and returns nil plus the status it wrote
// (0 when the client vanished while queued and nothing was written —
// the access log records that as-is). The tenant's weight buys its
// share of the shared pool; see admission.go for the fairness model.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, tenantName string) (func(), int) {
	s.requests.Add(1)
	if s.draining.Load() {
		s.drained.Add(1)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return nil, http.StatusServiceUnavailable
	}
	release, ref := s.adm.admit(r.Context(), tenantName, s.budgetsFor(tenantName).Weight)
	if release == nil {
		if ref != nil {
			s.rejected.Add(1)
			writeRefusal(w, ref)
			return nil, http.StatusTooManyRequests
		}
		return nil, 0 // context ended while queued: the client is gone
	}
	s.admitted.Add(1)
	s.active.Add(1)
	return func() {
		release()
		s.active.Done()
	}, 0
}

// writeRefusal answers a refused admission: 429, Retry-After in whole
// seconds (rounded up from the drain-rate estimate), and the JSON body
// automation retries on.
func writeRefusal(w http.ResponseWriter, ref *refusal) {
	secs := (ref.RetryAfterMS + 999) / 1000
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	msg := "evaluation queue full"
	if ref.Shed {
		msg = "shed under overload: tenant weight below the queued maximum"
	}
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
		*refusal
	}{msg, ref})
}

// budgetsFor resolves the budget set for the posting tenant ("" means the
// server defaults).
func (s *Server) budgetsFor(name string) Budgets {
	if name != "" {
		s.mu.RLock()
		t := s.tenants[name]
		s.mu.RUnlock()
		if t != nil {
			return t.budgets
		}
	}
	return s.opts.DefaultBudgets
}

// registerRequest is the POST /v1/queries payload. Exactly one of query /
// xpath carries the source. Budgets, when present, replace the tenant's
// budget set (they are tenant-scoped, not query-scoped).
type registerRequest struct {
	Tenant  string   `json:"tenant"`
	Name    string   `json:"name"`
	Query   string   `json:"query,omitempty"`
	XPath   string   `json:"xpath,omitempty"`
	Feed    string   `json:"feed,omitempty"`
	Budgets *Budgets `json:"budgets,omitempty"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad registration: "+err.Error(), http.StatusBadRequest)
		return
	}
	switch {
	case req.Tenant == "":
		http.Error(w, "tenant is required", http.StatusBadRequest)
		return
	case req.Name == "":
		http.Error(w, "name is required", http.StatusBadRequest)
		return
	case (req.Query == "") == (req.XPath == ""):
		http.Error(w, "exactly one of query or xpath is required", http.StatusBadRequest)
		return
	case strings.Contains(req.Feed, "/"):
		http.Error(w, "feed names cannot contain '/'", http.StatusBadRequest)
		return
	}
	if req.Feed == "" {
		req.Feed = DefaultFeed
	}
	if req.Budgets != nil {
		if err := req.Budgets.normalize(); err != nil {
			http.Error(w, "bad budgets: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	// Compile outside the registry lock: compilation can be slow and the
	// engine is concurrency-safe. A compile failure is the caller's bug,
	// reported with the engine's diagnostic.
	var q *xpe.Query
	var err error
	if req.Query != "" {
		q, err = s.opts.Engine.CompileQuery(req.Query)
	} else {
		q, err = s.opts.Engine.CompileXPath(req.XPath)
	}
	if err != nil {
		http.Error(w, "compile: "+err.Error(), http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	t := s.tenants[req.Tenant]
	if t == nil {
		t = &tenant{budgets: s.opts.DefaultBudgets, queries: make(map[string]*regQuery)}
		s.tenants[req.Tenant] = t
	}
	// A live duplicate is a conflict; a quarantined one may be registered
	// over — that is the recovery path for entries a restart could no
	// longer compile.
	old := t.queries[req.Name]
	if old != nil && !old.Quarantined {
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("tenant %q already has a query %q", req.Tenant, req.Name),
			http.StatusConflict)
		return
	}
	if old == nil && len(t.queries) >= s.opts.MaxQueriesPerTenant {
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("tenant %q is at its %d-query cap", req.Tenant, s.opts.MaxQueriesPerTenant),
			http.StatusForbidden)
		return
	}
	// Durability before acknowledgement: the journal append (fsynced) must
	// succeed before the registration takes effect, so every 201 the
	// client ever sees survives a crash.
	if s.jnl != nil {
		e := journalEntry{Tenant: req.Tenant, Name: req.Name, Query: req.Query,
			XPath: req.XPath, Feed: req.Feed, Budgets: req.Budgets}
		if err := s.jnl.append(e); err != nil {
			s.mu.Unlock()
			http.Error(w, "persist registration: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	if req.Budgets != nil {
		t.budgets = *req.Budgets
	}
	if old != nil {
		s.dropLocked(old)
	}
	rq := &regQuery{Tenant: req.Tenant, Name: req.Name, Source: req.Query,
		XPath: req.XPath, Feed: req.Feed, seq: s.regSeq, q: q}
	s.regSeq++
	t.queries[req.Name] = rq
	s.feeds[req.Feed] = append(s.feeds[req.Feed], rq)
	s.registered.Add(1)
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(rq)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	filter := r.URL.Query().Get("tenant")
	s.mu.RLock()
	var out []*regQuery
	for name, t := range s.tenants {
		if filter != "" && name != filter {
			continue
		}
		for _, rq := range t.queries {
			out = append(out, rq)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

// evalParams are the per-request evaluation knobs shared by select and
// feed: the poster's identity (budgets), split element, and error policy.
func (s *Server) evalOptions(r *http.Request) (xpe.SelectOptions, string, error) {
	qp := r.URL.Query()
	tenantName := r.Header.Get("X-Tenant")
	if t := qp.Get("tenant"); t != "" {
		tenantName = t
	}
	b := s.budgetsFor(tenantName)
	opts := xpe.SelectOptions{
		Workers:        s.opts.Workers,
		SplitElement:   qp.Get("split"),
		MaxRecordBytes: b.MaxRecordBytes,
		MaxRecordNodes: b.MaxRecordNodes,
		RecordTimeout:  b.RecordTimeout,
	}
	switch pol := qp.Get("on-error"); pol {
	case "", "skip":
		// Fault containment is the serving default: a poisoned record
		// costs that record, not the stream.
		opts.OnError = xpe.Skip
	case "abort":
		opts.OnError = xpe.Abort
	default:
		return opts, tenantName, fmt.Errorf("on-error must be skip or abort, not %q", pol)
	}
	return opts, tenantName, nil
}

// matchLine is one NDJSON match.
type matchLine struct {
	Tenant     string `json:"tenant,omitempty"`
	Query      string `json:"query"`
	Record     int    `json:"record"`
	RecordPath string `json:"recordPath"`
	Path       string `json:"path"`
	Term       string `json:"term"`
}

// summaryLine closes every NDJSON stream. Records+Prefiltered is the
// total record count the splitter saw — the invariant the differential
// harness pins — so consumers can compute the skim rate directly.
type summaryLine struct {
	Records     int64 `json:"records"`
	Matches     int64 `json:"matches"`
	Prefiltered int64 `json:"prefiltered"`
	Skipped     int64 `json:"skipped"`
	TimedOut    int64 `json:"timedOut"`
	Recovered   int64 `json:"recovered"`
	Bytes       int64 `json:"bytes"`
	Queries     int   `json:"queries"`
}

// ndjson starts an NDJSON response and returns a line writer that flushes
// at record boundaries.
func ndjson(w http.ResponseWriter) func(v any) error {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	return func(v any) error {
		if err := enc.Encode(v); err != nil {
			return err
		}
		if fl != nil {
			fl.Flush()
		}
		return nil
	}
}

// finishStream accounts a finished evaluation and emits the summary (or
// the error, when the run died after the header was committed).
func (s *Server) finishStream(write func(any) error, stats xpe.StreamStats, nq int, err error) {
	s.matches.Add(stats.Matches)
	s.records.Add(stats.Records)
	s.prefiltered.Add(stats.Prefiltered)
	s.skips.Add(stats.Skipped)
	if err != nil {
		write(map[string]string{"error": err.Error()})
		return
	}
	write(struct {
		Summary summaryLine `json:"summary"`
	}{summaryLine{
		Records: stats.Records, Matches: stats.Matches,
		Prefiltered: stats.Prefiltered, Skipped: stats.Skipped,
		TimedOut: stats.TimedOut, Recovered: stats.Recovered,
		Bytes: stats.Bytes, Queries: nq,
	}})
}

// handleSelect evaluates one ad-hoc query (?query= or ?xpath=) over the
// posted document — the single-query end of the serving surface, no
// registration required.
func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	rid := s.requestID(sw, r)
	opts, tenantName, err := s.evalOptions(r)
	var stats xpe.StreamStats
	defer func() { s.finishRequest("select", tenantName, selectFeedLabel, rid, 1, sw, &stats, start) }()
	if err != nil {
		http.Error(sw, err.Error(), http.StatusBadRequest)
		return
	}
	qp := r.URL.Query()
	src, xp := qp.Get("query"), qp.Get("xpath")
	if (src == "") == (xp == "") {
		http.Error(sw, "exactly one of ?query= or ?xpath= is required", http.StatusBadRequest)
		return
	}
	var q *xpe.Query
	if src != "" {
		q, err = s.opts.Engine.CompileQuery(src)
	} else {
		q, err = s.opts.Engine.CompileXPath(xp)
	}
	if err != nil {
		http.Error(sw, "compile: "+err.Error(), http.StatusBadRequest)
		return
	}
	release, _ := s.admit(sw, r, tenantName)
	if release == nil {
		return
	}
	defer release()
	s.degradeBudgets(&opts)
	s.applyTelemetry(&opts, rid, tenantName, selectFeedLabel)
	s.selectRuns.Add(1)
	write := ndjson(sw)
	var werr error
	stats, err = s.opts.Engine.SelectStream(r.Context(), r.Body, q, opts,
		func(m xpe.StreamMatch) error {
			werr = write(matchLine{Tenant: tenantName, Query: src + xp, Record: m.Record,
				RecordPath: m.RecordPath, Path: m.Path, Term: m.Term})
			return werr
		})
	if err == nil {
		err = werr
	}
	s.finishStream(write, stats, 1, err)
}

// applyTelemetry threads the request's observability hooks into the run
// options: the correlation id (stamped onto every record trace), the
// per-feed flight recorder, and the slow-record log with serving
// context. The recorder and id are telemetry-gated; the slow-record
// threshold applies regardless (it is a serving policy, not a scrape
// surface).
func (s *Server) applyTelemetry(opts *xpe.SelectOptions, rid, tenant, feed string) {
	opts.RequestID = rid
	if s.opts.SlowRecordThreshold > 0 {
		opts.SlowRecordThreshold = s.opts.SlowRecordThreshold
		opts.OnSlowRecord = s.slowRecordSink(tenant, feed)
	}
	if s.rollups != nil && feed != selectFeedLabel {
		opts.Trace = s.rollups.recorder(feed)
	}
}

// handleFeed runs the shared pass: every query registered on the feed, in
// registration order, over one split+parse of the posted document. The
// feed's circuit breaker gates the run (see breaker.go): open feeds are
// refused before touching admission, and record failures inside the run
// feed the breaker's streak.
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	rid := s.requestID(sw, r)
	feed := r.PathValue("feed")
	opts, tenantName, err := s.evalOptions(r)
	var stats xpe.StreamStats
	var nq int
	defer func() { s.finishRequest("feed", tenantName, feed, rid, nq, sw, &stats, start) }()
	if err != nil {
		http.Error(sw, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.RLock()
	regs := append([]*regQuery(nil), s.feeds[feed]...)
	s.mu.RUnlock()
	if len(regs) == 0 {
		http.Error(sw, fmt.Sprintf("feed %q has no registered queries", feed), http.StatusNotFound)
		return
	}
	nq = len(regs)
	qs := make([]*xpe.Query, len(regs))
	for i, rq := range regs {
		qs[i] = rq.q
	}
	br := s.breakers.get(feed)
	if br != nil {
		// Cheap pre-admission refusal while the breaker is open: a broken
		// feed must not consume queue slots other feeds could use.
		if open, retry := br.rejectedNow(); open {
			s.refuseBrokenFeed(sw, feed, retry)
			return
		}
	}
	release, _ := s.admit(sw, r, tenantName)
	if release == nil {
		return
	}
	defer release()
	if br != nil {
		// The authoritative gate (it may start a half-open probe): the
		// breaker can have opened while this request queued.
		ok, retry := br.allow()
		if !ok {
			s.refuseBrokenFeed(sw, feed, retry)
			return
		}
		inner := opts.OnError
		opts.OnError = func(re *xpe.RecordError) error {
			if br.recordFailure(re.Record) {
				s.breakerTrips.Add(1)
				return fmt.Errorf("feed %q circuit breaker opened: %d consecutive record failures",
					feed, s.opts.BreakerThreshold)
			}
			return inner(re)
		}
	}
	s.degradeBudgets(&opts)
	s.applyTelemetry(&opts, rid, tenantName, feed)
	s.feedRuns.Add(1)
	write := ndjson(sw)
	var werr error
	perQuery := make([]int64, len(regs))
	stats, err = s.opts.Engine.SelectStreamMulti(r.Context(), r.Body, qs, opts,
		func(m xpe.MultiStreamMatch) error {
			rq := regs[m.Query]
			perQuery[m.Query]++
			werr = write(matchLine{Tenant: rq.Tenant, Query: rq.Name, Record: m.Record,
				RecordPath: m.RecordPath, Path: m.Path, Term: m.Term})
			return werr
		})
	if err == nil {
		err = werr
	}
	if br != nil {
		br.finish(err == nil && stats.Skipped == 0 && stats.TimedOut == 0)
	}
	if s.rollups != nil {
		for i, n := range perQuery {
			s.rollups.queryMatches(regs[i].Tenant, feed, regs[i].Name, n)
		}
	}
	s.finishStream(write, stats, len(qs), err)
}

// refuseBrokenFeed answers a post to a feed whose breaker is open: 503,
// Retry-After for the remaining backoff, machine-actionable JSON body.
func (s *Server) refuseBrokenFeed(w http.ResponseWriter, feed string, retry time.Duration) {
	s.breakerRejects.Add(1)
	secs := int64((retry + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(struct {
		Error        string `json:"error"`
		Feed         string `json:"feed"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}{fmt.Sprintf("feed %q circuit breaker open", feed), feed, retry.Milliseconds()})
}

// degradeBudgets applies overload level 1: under sustained queue pressure
// admitted runs get half their record-timeout budget, so in-flight work
// drains faster before shedding (level 2, in admission.go) begins. Only a
// set timeout tightens — halving "unlimited" is meaningless.
func (s *Server) degradeBudgets(opts *xpe.SelectOptions) {
	if opts.RecordTimeout > 0 && s.adm.degradedNow() {
		opts.RecordTimeout /= 2
	}
}
