// Package serve is the multi-tenant query-serving layer: a long-lived
// HTTP surface where tenants register compiled queries once and stream
// documents past them, getting NDJSON matches back.
//
// Endpoints:
//
//	POST /v1/queries        register a query (JSON body; compiled eagerly)
//	GET  /v1/queries        list registrations (?tenant= filters)
//	POST /v1/select         one-shot: evaluate an ad-hoc query over the body
//	POST /v1/feed/{feed}    shared pass: every query registered on the feed
//	GET  /v1/healthz        liveness ("draining" while shutting down)
//	GET  /debug/xpe/serve   serving counters (admission, feeds, matches)
//	/debug/xpe/*, /debug/pprof/*  the engine debug surface (xpe/debug)
//
// A feed run is ONE pass over the posted document however many queries are
// registered: the stream is split and parsed once and every record drives
// all the match automata (xpe.Engine.SelectStreamMulti), with the union
// prefilter gating per-query evaluation. Matches stream back as NDJSON
// lines tagged with tenant and query name, grouped per record by
// registration order; a final {"summary":...} line carries the run's
// stats, in which records+prefiltered always equals the total records the
// splitter saw.
//
// Tenancy is cooperative, not authenticated (bind the listener like a
// pprof port): a tenant is a namespace for query names plus a budget set —
// MaxRecordBytes/MaxRecordNodes/RecordTimeout — applied to the documents
// that tenant posts. Feed runs default to the Skip policy so one poisoned
// record costs that record, not the feed (fault containment); pass
// ?on-error=abort to fail fast instead.
//
// Admission control bounds concurrent evaluation: at most MaxConcurrent
// streams evaluate at once and at most MaxQueueDepth more may wait;
// beyond that the server answers 429 with a Retry-After hint rather than
// queueing unboundedly. BeginDrain flips new evaluation requests to 503
// while in-flight streams finish — the graceful-shutdown half that
// http.Server.Shutdown's connection draining does not cover.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xpe"
	"xpe/debug"
)

// DefaultFeed is the feed queries register on when the registration names
// none.
const DefaultFeed = "default"

// Budgets are the per-tenant resource bounds applied to documents the
// tenant streams. Zero fields mean unlimited, matching xpe.SelectOptions.
type Budgets struct {
	// MaxRecordBytes bounds the raw input bytes one record may span.
	MaxRecordBytes int64 `json:"maxRecordBytes,omitempty"`
	// MaxRecordNodes bounds one record's node count.
	MaxRecordNodes int `json:"maxRecordNodes,omitempty"`
	// RecordTimeout bounds one record's evaluation wall time — across all
	// queries of a feed pass (it is a record budget, not a per-query one).
	RecordTimeout time.Duration `json:"-"`
	// RecordTimeoutStr is RecordTimeout's JSON form ("150ms").
	RecordTimeoutStr string `json:"recordTimeout,omitempty"`
}

// normalize resolves the JSON duration form, favoring the typed field.
func (b *Budgets) normalize() error {
	if b.RecordTimeout == 0 && b.RecordTimeoutStr != "" {
		d, err := time.ParseDuration(b.RecordTimeoutStr)
		if err != nil {
			return fmt.Errorf("recordTimeout: %w", err)
		}
		b.RecordTimeout = d
	}
	if b.MaxRecordBytes < 0 || b.MaxRecordNodes < 0 || b.RecordTimeout < 0 {
		return errors.New("budgets must be non-negative (0 = unlimited)")
	}
	if b.RecordTimeout > 0 {
		b.RecordTimeoutStr = b.RecordTimeout.String()
	}
	return nil
}

// Options configures a Server.
type Options struct {
	// Engine compiles and evaluates; required.
	Engine *xpe.Engine
	// MaxConcurrent bounds streams evaluating at once (<=0: 4).
	MaxConcurrent int
	// MaxQueueDepth bounds admission waiters beyond MaxConcurrent (<=0: 8);
	// the next request is answered 429 + Retry-After.
	MaxQueueDepth int
	// Workers is the per-stream evaluation worker count (xpe
	// SelectOptions.Workers; <=0 = GOMAXPROCS).
	Workers int
	// DefaultBudgets apply to tenants that never set their own, and to
	// anonymous posts.
	DefaultBudgets Budgets
	// MaxQueriesPerTenant caps registrations per tenant (<=0: 256).
	MaxQueriesPerTenant int
}

// regQuery is one registered query.
type regQuery struct {
	Tenant string `json:"tenant"`
	Name   string `json:"name"`
	Source string `json:"query,omitempty"`
	XPath  string `json:"xpath,omitempty"`
	Feed   string `json:"feed"`
	seq    int    // global registration order: the feed-pass query order
	q      *xpe.Query
}

// tenant is a name namespace plus its budget set.
type tenant struct {
	budgets Budgets
	queries map[string]*regQuery
}

// Stats are the server's cumulative serving counters, exposed at
// /debug/xpe/serve.
type Stats struct {
	Requests     int64 `json:"requests"`     // evaluation requests seen
	Admitted     int64 `json:"admitted"`     // granted an evaluation slot
	Rejected     int64 `json:"rejected_429"` // bounced by queue-depth admission
	Draining     int64 `json:"draining_503"` // bounced while draining
	Feeds        int64 `json:"feed_runs"`    // shared-pass feed evaluations
	Selects      int64 `json:"select_runs"`  // one-shot evaluations
	Matches      int64 `json:"matches"`      // NDJSON match lines written
	Records      int64 `json:"records"`      // records evaluated
	Prefiltered  int64 `json:"prefiltered"`  // records skipped by the union prefilter
	Skipped      int64 `json:"skipped"`      // failed records dropped by Skip
	QueueDepth   int64 `json:"queue_depth"`  // current admission waiters
	ActiveProbes int64 `json:"active"`       // streams evaluating right now
	Registered   int64 `json:"registered"`   // live query registrations
}

// Server is the serving state machine behind the HTTP surface. It is an
// http.Handler; lifecycle (listening, TLS, connection shutdown) belongs to
// the embedding http.Server — see cmd/xpeserve.
type Server struct {
	opts Options
	mux  *http.ServeMux

	mu      sync.RWMutex
	tenants map[string]*tenant
	feeds   map[string][]*regQuery
	regSeq  int

	sem      chan struct{}
	queued   atomic.Int64
	draining atomic.Bool
	active   sync.WaitGroup

	requests, admitted, rejected, drained atomic.Int64
	feedRuns, selectRuns                  atomic.Int64
	matches, records, prefiltered, skips  atomic.Int64
	activeN, registered                   atomic.Int64
}

// NewServer builds the serving surface over eng.
func NewServer(opts Options) (*Server, error) {
	if opts.Engine == nil {
		return nil, errors.New("serve: Options.Engine is required")
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 4
	}
	if opts.MaxQueueDepth <= 0 {
		opts.MaxQueueDepth = 8
	}
	if opts.MaxQueriesPerTenant <= 0 {
		opts.MaxQueriesPerTenant = 256
	}
	if err := opts.DefaultBudgets.normalize(); err != nil {
		return nil, fmt.Errorf("serve: default budgets: %w", err)
	}
	s := &Server{
		opts:    opts,
		tenants: make(map[string]*tenant),
		feeds:   make(map[string][]*regQuery),
		sem:     make(chan struct{}, opts.MaxConcurrent),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/queries", s.handleRegister)
	mux.HandleFunc("GET /v1/queries", s.handleList)
	mux.HandleFunc("POST /v1/select", s.handleSelect)
	mux.HandleFunc("POST /v1/feed/{feed}", s.handleFeed)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /debug/xpe/serve", s.handleStats)
	mux.Handle("/debug/", debug.Handler(debug.Options{Engine: opts.Engine}))
	s.mux = mux
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// BeginDrain stops admitting new evaluation requests (503) while letting
// in-flight streams run to completion. Registration and debug surfaces
// stay up. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain blocks until every admitted stream has finished or ctx expires.
// Call BeginDrain first, or new streams keep being admitted while you
// wait.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() { s.active.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:     s.requests.Load(),
		Admitted:     s.admitted.Load(),
		Rejected:     s.rejected.Load(),
		Draining:     s.drained.Load(),
		Feeds:        s.feedRuns.Load(),
		Selects:      s.selectRuns.Load(),
		Matches:      s.matches.Load(),
		Records:      s.records.Load(),
		Prefiltered:  s.prefiltered.Load(),
		Skipped:      s.skips.Load(),
		QueueDepth:   s.queued.Load(),
		ActiveProbes: s.activeN.Load(),
		Registered:   s.registered.Load(),
	}
}

// admit runs the admission gate for one evaluation request: it returns a
// release func on success, or writes the refusal (429 with Retry-After, or
// 503 while draining) and returns nil.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) func() {
	s.requests.Add(1)
	if s.draining.Load() {
		s.drained.Add(1)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return nil
	}
	// Bounded queue: a fast-path slot grab, else count ourselves as a
	// waiter if the queue has room. The depth check is optimistic (two
	// racing requests may both slip into the last queue slot); the bound
	// this enforces — no unbounded pileup, a prompt 429 under overload —
	// does not need it to be exact.
	select {
	case s.sem <- struct{}{}:
	default:
		if s.queued.Load() >= int64(s.opts.MaxQueueDepth) {
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "evaluation queue full", http.StatusTooManyRequests)
			return nil
		}
		s.queued.Add(1)
		select {
		case s.sem <- struct{}{}:
			s.queued.Add(-1)
		case <-r.Context().Done():
			s.queued.Add(-1)
			return nil
		}
	}
	s.admitted.Add(1)
	s.activeN.Add(1)
	s.active.Add(1)
	return func() {
		<-s.sem
		s.activeN.Add(-1)
		s.active.Done()
	}
}

// budgetsFor resolves the budget set for the posting tenant ("" means the
// server defaults).
func (s *Server) budgetsFor(name string) Budgets {
	if name != "" {
		s.mu.RLock()
		t := s.tenants[name]
		s.mu.RUnlock()
		if t != nil {
			return t.budgets
		}
	}
	return s.opts.DefaultBudgets
}

// registerRequest is the POST /v1/queries payload. Exactly one of query /
// xpath carries the source. Budgets, when present, replace the tenant's
// budget set (they are tenant-scoped, not query-scoped).
type registerRequest struct {
	Tenant  string   `json:"tenant"`
	Name    string   `json:"name"`
	Query   string   `json:"query,omitempty"`
	XPath   string   `json:"xpath,omitempty"`
	Feed    string   `json:"feed,omitempty"`
	Budgets *Budgets `json:"budgets,omitempty"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad registration: "+err.Error(), http.StatusBadRequest)
		return
	}
	switch {
	case req.Tenant == "":
		http.Error(w, "tenant is required", http.StatusBadRequest)
		return
	case req.Name == "":
		http.Error(w, "name is required", http.StatusBadRequest)
		return
	case (req.Query == "") == (req.XPath == ""):
		http.Error(w, "exactly one of query or xpath is required", http.StatusBadRequest)
		return
	case strings.Contains(req.Feed, "/"):
		http.Error(w, "feed names cannot contain '/'", http.StatusBadRequest)
		return
	}
	if req.Feed == "" {
		req.Feed = DefaultFeed
	}
	if req.Budgets != nil {
		if err := req.Budgets.normalize(); err != nil {
			http.Error(w, "bad budgets: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	// Compile outside the registry lock: compilation can be slow and the
	// engine is concurrency-safe. A compile failure is the caller's bug,
	// reported with the engine's diagnostic.
	var q *xpe.Query
	var err error
	if req.Query != "" {
		q, err = s.opts.Engine.CompileQuery(req.Query)
	} else {
		q, err = s.opts.Engine.CompileXPath(req.XPath)
	}
	if err != nil {
		http.Error(w, "compile: "+err.Error(), http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	t := s.tenants[req.Tenant]
	if t == nil {
		t = &tenant{budgets: s.opts.DefaultBudgets, queries: make(map[string]*regQuery)}
		s.tenants[req.Tenant] = t
	}
	if req.Budgets != nil {
		t.budgets = *req.Budgets
	}
	if _, dup := t.queries[req.Name]; dup {
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("tenant %q already has a query %q", req.Tenant, req.Name),
			http.StatusConflict)
		return
	}
	if len(t.queries) >= s.opts.MaxQueriesPerTenant {
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("tenant %q is at its %d-query cap", req.Tenant, s.opts.MaxQueriesPerTenant),
			http.StatusForbidden)
		return
	}
	rq := &regQuery{Tenant: req.Tenant, Name: req.Name, Source: req.Query,
		XPath: req.XPath, Feed: req.Feed, seq: s.regSeq, q: q}
	s.regSeq++
	t.queries[req.Name] = rq
	s.feeds[req.Feed] = append(s.feeds[req.Feed], rq)
	s.registered.Add(1)
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(rq)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	filter := r.URL.Query().Get("tenant")
	s.mu.RLock()
	var out []*regQuery
	for name, t := range s.tenants {
		if filter != "" && name != filter {
			continue
		}
		for _, rq := range t.queries {
			out = append(out, rq)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

// evalParams are the per-request evaluation knobs shared by select and
// feed: the poster's identity (budgets), split element, and error policy.
func (s *Server) evalOptions(r *http.Request) (xpe.SelectOptions, string, error) {
	qp := r.URL.Query()
	tenantName := r.Header.Get("X-Tenant")
	if t := qp.Get("tenant"); t != "" {
		tenantName = t
	}
	b := s.budgetsFor(tenantName)
	opts := xpe.SelectOptions{
		Workers:        s.opts.Workers,
		SplitElement:   qp.Get("split"),
		MaxRecordBytes: b.MaxRecordBytes,
		MaxRecordNodes: b.MaxRecordNodes,
		RecordTimeout:  b.RecordTimeout,
	}
	switch pol := qp.Get("on-error"); pol {
	case "", "skip":
		// Fault containment is the serving default: a poisoned record
		// costs that record, not the stream.
		opts.OnError = xpe.Skip
	case "abort":
		opts.OnError = xpe.Abort
	default:
		return opts, tenantName, fmt.Errorf("on-error must be skip or abort, not %q", pol)
	}
	return opts, tenantName, nil
}

// matchLine is one NDJSON match.
type matchLine struct {
	Tenant     string `json:"tenant,omitempty"`
	Query      string `json:"query"`
	Record     int    `json:"record"`
	RecordPath string `json:"recordPath"`
	Path       string `json:"path"`
	Term       string `json:"term"`
}

// summaryLine closes every NDJSON stream. Records+Prefiltered is the
// total record count the splitter saw — the invariant the differential
// harness pins — so consumers can compute the skim rate directly.
type summaryLine struct {
	Records     int64 `json:"records"`
	Matches     int64 `json:"matches"`
	Prefiltered int64 `json:"prefiltered"`
	Skipped     int64 `json:"skipped"`
	TimedOut    int64 `json:"timedOut"`
	Recovered   int64 `json:"recovered"`
	Bytes       int64 `json:"bytes"`
	Queries     int   `json:"queries"`
}

// ndjson starts an NDJSON response and returns a line writer that flushes
// at record boundaries.
func ndjson(w http.ResponseWriter) func(v any) error {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	return func(v any) error {
		if err := enc.Encode(v); err != nil {
			return err
		}
		if fl != nil {
			fl.Flush()
		}
		return nil
	}
}

// finishStream accounts a finished evaluation and emits the summary (or
// the error, when the run died after the header was committed).
func (s *Server) finishStream(write func(any) error, stats xpe.StreamStats, nq int, err error) {
	s.matches.Add(stats.Matches)
	s.records.Add(stats.Records)
	s.prefiltered.Add(stats.Prefiltered)
	s.skips.Add(stats.Skipped)
	if err != nil {
		write(map[string]string{"error": err.Error()})
		return
	}
	write(struct {
		Summary summaryLine `json:"summary"`
	}{summaryLine{
		Records: stats.Records, Matches: stats.Matches,
		Prefiltered: stats.Prefiltered, Skipped: stats.Skipped,
		TimedOut: stats.TimedOut, Recovered: stats.Recovered,
		Bytes: stats.Bytes, Queries: nq,
	}})
}

// handleSelect evaluates one ad-hoc query (?query= or ?xpath=) over the
// posted document — the single-query end of the serving surface, no
// registration required.
func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	opts, tenantName, err := s.evalOptions(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	qp := r.URL.Query()
	src, xp := qp.Get("query"), qp.Get("xpath")
	if (src == "") == (xp == "") {
		http.Error(w, "exactly one of ?query= or ?xpath= is required", http.StatusBadRequest)
		return
	}
	var q *xpe.Query
	if src != "" {
		q, err = s.opts.Engine.CompileQuery(src)
	} else {
		q, err = s.opts.Engine.CompileXPath(xp)
	}
	if err != nil {
		http.Error(w, "compile: "+err.Error(), http.StatusBadRequest)
		return
	}
	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()
	s.selectRuns.Add(1)
	write := ndjson(w)
	var werr error
	stats, err := s.opts.Engine.SelectStream(r.Context(), r.Body, q, opts,
		func(m xpe.StreamMatch) error {
			werr = write(matchLine{Tenant: tenantName, Query: src + xp, Record: m.Record,
				RecordPath: m.RecordPath, Path: m.Path, Term: m.Term})
			return werr
		})
	if err == nil {
		err = werr
	}
	s.finishStream(write, stats, 1, err)
}

// handleFeed runs the shared pass: every query registered on the feed, in
// registration order, over one split+parse of the posted document.
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	opts, _, err := s.evalOptions(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	feed := r.PathValue("feed")
	s.mu.RLock()
	regs := append([]*regQuery(nil), s.feeds[feed]...)
	s.mu.RUnlock()
	if len(regs) == 0 {
		http.Error(w, fmt.Sprintf("feed %q has no registered queries", feed), http.StatusNotFound)
		return
	}
	qs := make([]*xpe.Query, len(regs))
	for i, rq := range regs {
		qs[i] = rq.q
	}
	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()
	s.feedRuns.Add(1)
	write := ndjson(w)
	var werr error
	stats, err := s.opts.Engine.SelectStreamMulti(r.Context(), r.Body, qs, opts,
		func(m xpe.MultiStreamMatch) error {
			rq := regs[m.Query]
			werr = write(matchLine{Tenant: rq.Tenant, Query: rq.Name, Record: m.Record,
				RecordPath: m.RecordPath, Path: m.Path, Term: m.Term})
			return werr
		})
	if err == nil {
		err = werr
	}
	s.finishStream(write, stats, len(qs), err)
}
