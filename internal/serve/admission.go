package serve

// Per-tenant fair admission: a shared concurrency pool dispensed by
// weighted round-robin over per-tenant wait queues.
//
// The old gate was one semaphore plus one global queue counter, which let
// a single flooding tenant fill every wait slot and push other tenants to
// 429 — a noisy neighbor could buy the whole server with queue depth. The
// admitter keeps one bounded FIFO per tenant instead: a tenant's flood
// fills only that tenant's queue, and free evaluation slots are granted by
// cycling tenants in round-robin, each getting up to `weight` consecutive
// grants per visit. A quiet tenant's request therefore waits at most one
// full cycle of the other tenants' weights, regardless of how deep any
// single tenant's backlog is. Idle tenants forfeit their turn — credit is
// never banked, so fairness is work-conserving.
//
// Overload degrades in a documented order (see README "Operations"):
//
//  1. totalQueued >= degradeDepth: the server tightens per-tenant budgets
//     (record timeouts halve) so admitted work drains faster.
//  2. totalQueued >= shedDepth: new arrivals from tenants whose weight is
//     below the heaviest currently-queued tenant are rejected outright —
//     lowest-weight tenants shed first, highest-weight tenants keep their
//     per-queue bound.
//
// Refused requests get a machine-actionable refusal: the tenant's queue
// depth and a retry hint derived from the observed drain rate (an EWMA of
// the interval between slot releases) times the work queued ahead.

import (
	"sync"
	"time"
)

// waiter is one admission request parked in a tenant queue.
type waiter struct {
	ready   chan struct{} // signaled by dispatch after granted is set
	granted bool          // guarded by admitter.mu
}

// tenantQueue is one tenant's admission state: its bounded FIFO of
// waiters, its scheduling weight, and its cumulative counters.
type tenantQueue struct {
	name    string
	weight  int
	waiters []*waiter

	admitted int64 // granted an evaluation slot
	rejected int64 // refused (queue full or shed)
}

// refusal is the machine-actionable 429 payload for a refused admission.
type refusal struct {
	Tenant       string `json:"tenant"`
	QueueDepth   int    `json:"queue_depth"`
	RetryAfterMS int64  `json:"retry_after_ms"`
	Shed         bool   `json:"shed,omitempty"` // refused by weight shedding, not queue bound
}

// admitter is the shared-pool weighted-fair admission gate.
type admitter struct {
	mu       sync.Mutex
	capacity int // evaluation slots (Options.MaxConcurrent)
	perQueue int // waiter bound per tenant (Options.MaxQueueDepth)

	active      int // slots in use
	totalQueued int // waiters across all tenant queues
	queues      map[string]*tenantQueue
	order       []*tenantQueue // stable round-robin order (first-seen)
	cursor      int            // index into order of the queue being served
	credit      int            // grants left in the cursor queue's turn

	degradeDepth int // totalQueued at which budgets tighten
	shedDepth    int // totalQueued at which low-weight arrivals shed

	// Drain-rate EWMA: the smoothed interval between slot releases, the
	// basis for Retry-After hints. Zero until two releases happen.
	lastRelease time.Time
	drainNS     float64
	now         func() time.Time

	degraded int64 // admissions served while budget-tightening was active
	shed     int64 // arrivals refused by weight shedding
}

func newAdmitter(capacity, perQueue, degradeDepth, shedDepth int) *admitter {
	return &admitter{
		capacity:     capacity,
		perQueue:     perQueue,
		degradeDepth: degradeDepth,
		shedDepth:    shedDepth,
		queues:       make(map[string]*tenantQueue),
		now:          time.Now,
	}
}

// queueLocked finds or creates the tenant's queue and refreshes its weight
// (budgets can change between requests).
func (a *admitter) queueLocked(tenant string, weight int) *tenantQueue {
	if weight <= 0 {
		weight = 1
	}
	q := a.queues[tenant]
	if q == nil {
		q = &tenantQueue{name: tenant, weight: weight}
		a.queues[tenant] = q
		a.order = append(a.order, q)
	}
	q.weight = weight
	return q
}

// admit requests one evaluation slot for tenant. It returns a release
// func on success, nil+refusal when refused (caller answers 429), or
// nil+nil when ctx ended while waiting (caller just returns — the client
// is gone).
func (a *admitter) admit(ctx ctxDone, tenant string, weight int) (func(), *refusal) {
	a.mu.Lock()
	q := a.queueLocked(tenant, weight)
	if a.totalQueued >= a.shedDepth && q.weight < a.maxQueuedWeightLocked() {
		q.rejected++
		a.shed++
		ref := a.refusalLocked(q)
		ref.Shed = true
		a.mu.Unlock()
		return nil, ref
	}
	if len(q.waiters) >= a.perQueue && a.active >= a.capacity {
		q.rejected++
		ref := a.refusalLocked(q)
		a.mu.Unlock()
		return nil, ref
	}
	w := &waiter{ready: make(chan struct{}, 1)}
	q.waiters = append(q.waiters, w)
	a.totalQueued++
	a.dispatchLocked()
	a.mu.Unlock()

	select {
	case <-w.ready:
		return func() { a.release() }, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: the slot is ours, give it
			// straight back so the dispatcher can pass it on.
			a.mu.Unlock()
			a.release()
			return nil, nil
		}
		a.removeWaiterLocked(q, w)
		a.mu.Unlock()
		return nil, nil
	}
}

// ctxDone is the slice of context.Context admission waits on.
type ctxDone interface{ Done() <-chan struct{} }

// dispatchLocked hands free slots to queued waiters by weighted
// round-robin: the cursor queue gets up to `weight` consecutive grants,
// then the turn passes; queues with nothing waiting forfeit their turn
// without banking credit.
func (a *admitter) dispatchLocked() {
	for a.active < a.capacity && a.totalQueued > 0 {
		q := a.nextQueueLocked()
		w := q.waiters[0]
		copy(q.waiters, q.waiters[1:])
		q.waiters[len(q.waiters)-1] = nil
		q.waiters = q.waiters[:len(q.waiters)-1]
		a.totalQueued--
		a.active++
		q.admitted++
		w.granted = true
		w.ready <- struct{}{}
	}
}

// nextQueueLocked advances the round-robin to the next queue owed a
// grant. Only called with totalQueued > 0, so it terminates.
func (a *admitter) nextQueueLocked() *tenantQueue {
	for {
		q := a.order[a.cursor%len(a.order)]
		if a.credit > 0 && len(q.waiters) > 0 {
			a.credit--
			return q
		}
		a.cursor = (a.cursor + 1) % len(a.order)
		a.credit = a.order[a.cursor].weight
	}
}

// removeWaiterLocked drops an ungranted waiter whose request was
// cancelled.
func (a *admitter) removeWaiterLocked(q *tenantQueue, w *waiter) {
	for i, x := range q.waiters {
		if x == w {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			a.totalQueued--
			return
		}
	}
}

// release returns a slot to the pool, feeds the drain-rate EWMA, and
// dispatches the next waiter.
func (a *admitter) release() {
	a.mu.Lock()
	a.active--
	now := a.now()
	if !a.lastRelease.IsZero() {
		iv := float64(now.Sub(a.lastRelease))
		if a.drainNS == 0 {
			a.drainNS = iv
		} else {
			a.drainNS = 0.8*a.drainNS + 0.2*iv
		}
	}
	a.lastRelease = now
	a.dispatchLocked()
	a.mu.Unlock()
}

// maxQueuedWeightLocked is the heaviest weight among tenants with work
// queued — the shedding threshold: under shed pressure, arrivals lighter
// than the heaviest waiting tenant are refused.
func (a *admitter) maxQueuedWeightLocked() int {
	max := 0
	for _, q := range a.order {
		if len(q.waiters) > 0 && q.weight > max {
			max = q.weight
		}
	}
	return max
}

// refusalLocked builds the 429 payload: the tenant's own queue depth and
// a retry hint of drainInterval × (work queued ahead + 1), clamped to
// [1ms, 30s]. Before any release has been observed the hint defaults to
// one second.
func (a *admitter) refusalLocked(q *tenantQueue) *refusal {
	drain := a.drainNS
	if drain <= 0 {
		drain = float64(time.Second)
	}
	ms := int64(drain * float64(a.totalQueued+1) / float64(time.Millisecond))
	if ms < 1 {
		ms = 1
	}
	if ms > 30_000 {
		ms = 30_000
	}
	return &refusal{Tenant: q.name, QueueDepth: len(q.waiters), RetryAfterMS: ms}
}

// degradedNow reports whether queue pressure has crossed the
// budget-tightening threshold (overload level 1).
func (a *admitter) degradedNow() bool {
	a.mu.Lock()
	d := a.totalQueued >= a.degradeDepth
	if d {
		a.degraded++
	}
	a.mu.Unlock()
	return d
}

// snapshot captures the admitter's counters for Stats.
func (a *admitter) snapshot() (active, queued int, degraded, shed int64, tenants map[string]TenantStats) {
	a.mu.Lock()
	defer a.mu.Unlock()
	tenants = make(map[string]TenantStats, len(a.order))
	for _, q := range a.order {
		tenants[q.name] = TenantStats{
			Weight:     q.weight,
			Admitted:   q.admitted,
			Rejected:   q.rejected,
			QueueDepth: int64(len(q.waiters)),
		}
	}
	return a.active, a.totalQueued, a.degraded, a.shed, tenants
}
