package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"xpe"
)

// fakeClock drives breaker time deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func withClock(bs *breakerSet, c *fakeClock) { bs.now = c.now }
func mustAllow(t *testing.T, b *feedBreaker) {
	t.Helper()
	ok, _ := b.allow()
	mustBool(t, ok, "allow")
}
func mustBool(t *testing.T, ok bool, what string) {
	t.Helper()
	if !ok {
		t.Fatalf("%s refused unexpectedly", what)
	}
}

// TestBreakerLifecycle walks closed → open → half-open → open (failed
// probe, doubled backoff) → half-open → closed (clean probe) on a fake
// clock.
func TestBreakerLifecycle(t *testing.T) {
	clk := newFakeClock()
	bs := newBreakerSet(3, time.Second, 4*time.Second)
	withClock(bs, clk)
	b := bs.get("f")

	// Two consecutive failures: armed but closed.
	if b.recordFailure(0) || b.recordFailure(1) {
		t.Fatal("tripped below threshold")
	}
	if ok, _ := b.allow(); !ok {
		t.Fatal("closed breaker refused")
	}
	// Third consecutive: trips, and the caller is told to abort the run.
	if !b.recordFailure(2) {
		t.Fatal("no trip at the threshold")
	}
	if open, retry := b.rejectedNow(); !open || retry <= 0 || retry > time.Second {
		t.Fatalf("open breaker: rejectedNow = %v, %v", open, retry)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker allowed inside backoff")
	}

	// Backoff elapses: exactly one half-open probe goes through.
	clk.advance(time.Second)
	if open, _ := b.rejectedNow(); open {
		t.Fatal("rejectedNow still open after backoff elapsed")
	}
	mustAllow(t, b)
	if ok, _ := b.allow(); ok {
		t.Fatal("second concurrent probe allowed")
	}
	// The probe run ends un-clean: reopen with doubled backoff.
	b.finish(false)
	if open, retry := b.rejectedNow(); !open || retry != 2*time.Second {
		t.Fatalf("failed probe: rejectedNow = %v, %v, want open with 2s backoff", open, retry)
	}

	// Next probe is clean: breaker closes and the streak resets.
	clk.advance(2 * time.Second)
	mustAllow(t, b)
	b.finish(true)
	if ok, _ := b.allow(); !ok {
		t.Fatal("closed breaker refused after clean probe")
	}
	// Non-consecutive failures never trip.
	if b.recordFailure(0) || b.recordFailure(5) || b.recordFailure(9) {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

// TestBreakerAccumulatesAcrossRuns: a feed poisoned at its head — every
// run fails at record 0 and ends un-clean — trips after threshold runs,
// even though each run contributes a single failure.
func TestBreakerAccumulatesAcrossRuns(t *testing.T) {
	clk := newFakeClock()
	bs := newBreakerSet(3, time.Second, 4*time.Second)
	withClock(bs, clk)
	b := bs.get("f")

	for run := 0; run < 2; run++ {
		mustAllow(t, b)
		if b.recordFailure(0) {
			t.Fatalf("run %d: tripped early", run)
		}
		b.finish(false)
	}
	mustAllow(t, b)
	if !b.recordFailure(0) {
		t.Fatal("third head-failure run did not trip")
	}
	// A clean run in between resets the streak.
	clk.advance(time.Second)
	mustAllow(t, b)
	b.finish(true)
	mustAllow(t, b)
	if b.recordFailure(0) {
		t.Fatal("tripped on the first failure after a clean run")
	}
}

// TestBreakerBackoffCap: repeated failed probes double the backoff only
// up to the cap.
func TestBreakerBackoffCap(t *testing.T) {
	clk := newFakeClock()
	bs := newBreakerSet(1, time.Second, 4*time.Second)
	withClock(bs, clk)
	b := bs.get("f")

	b.recordFailure(0) // threshold 1: trips immediately
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 4 * time.Second}
	for i, w := range want[1:] {
		clk.advance(want[i])
		mustAllow(t, b) // probe
		b.finish(false) // fails
		if _, retry := b.rejectedNow(); retry != w {
			t.Fatalf("probe %d: backoff = %v, want %v", i, retry, w)
		}
	}
}

// TestServeFeedBreaker is the HTTP-level breaker test: a feed whose
// records keep failing trips mid-run, subsequent posts bounce with a
// machine-actionable 503, and a clean half-open probe restores service —
// all on a fake clock.
func TestServeFeedBreaker(t *testing.T) {
	s, ts := newTestServer(t, Options{Engine: xpe.NewEngine(), BreakerThreshold: 2,
		BreakerBackoff: time.Minute})
	clk := newFakeClock()
	withClock(s.breakers, clk) // before any feed post creates a breaker
	mustRegister(t, ts, `{"tenant":"t","name":"q","query":"price doc*","feed":"f"}`)

	// Two consecutive malformed records (split=doc resynchronizes past
	// each): the Skip policy routes both to the breaker, which trips and
	// aborts the run.
	poisoned := `<corpus><doc><price>1</price></doc>` +
		`<doc><x></doc><doc><y></doc>` +
		`<doc><price>2</price></doc></corpus>`
	resp, err := http.Post(ts.URL+"/v1/feed/f?split=doc", "application/xml", strings.NewReader(poisoned))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "circuit breaker opened") {
		t.Fatalf("poisoned run: %d %q, want an in-stream breaker abort", resp.StatusCode, body)
	}
	if st := s.Stats(); st.BreakerTrips != 1 || st.BreakerOpen != 1 {
		t.Fatalf("after trip: %+v", st)
	}

	// While open, posts are refused before admission with a 503 carrying
	// the remaining backoff.
	resp, err = http.Post(ts.URL+"/v1/feed/f", "application/xml", strings.NewReader(feedCorpus))
	if err != nil {
		t.Fatal(err)
	}
	var refuse struct {
		Error        string `json:"error"`
		Feed         string `json:"feed"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&refuse); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("open-breaker post: %d, want 503 + Retry-After", resp.StatusCode)
	}
	if refuse.Feed != "f" || refuse.RetryAfterMS <= 0 || refuse.RetryAfterMS > 60_000 {
		t.Fatalf("refusal body: %+v", refuse)
	}
	if st := s.Stats(); st.BreakerRejects != 1 {
		t.Fatalf("breaker rejects = %d, want 1", st.BreakerRejects)
	}
	// Other feeds are isolated from f's breaker.
	mustRegister(t, ts, `{"tenant":"t","name":"q2","query":"price doc*","feed":"g"}`)
	if _, _, resp := postNDJSON(t, ts.URL+"/v1/feed/g", feedCorpus); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy feed refused while f is open")
	}

	// Backoff elapses; the half-open probe runs clean and closes the
	// breaker.
	clk.advance(time.Minute)
	if _, _, resp := postNDJSON(t, ts.URL+"/v1/feed/f", feedCorpus); resp.StatusCode != http.StatusOK {
		t.Fatalf("half-open probe refused")
	}
	if st := s.Stats(); st.BreakerOpen != 0 {
		t.Fatalf("breaker still open after a clean probe: %+v", st)
	}
	if _, _, resp := postNDJSON(t, ts.URL+"/v1/feed/f", feedCorpus); resp.StatusCode != http.StatusOK {
		t.Fatalf("closed breaker refused")
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
