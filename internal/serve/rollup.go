package serve

// Dimensional serving rollups: per-tenant × per-feed request counters and
// latency histograms, per-query match counters, and per-feed flight
// recorders — the label-bearing half of the /metrics page.
//
// Cardinality is bounded by construction: at most maxSets distinct
// (tenant, feed) cells and maxSets distinct (tenant, feed, query) match
// counters are ever created; observations past the cap fold into a
// single ("other", "other") bucket, and the fold count is itself exposed
// (xpe_serve_rollup_overflow_total), so an exploding label space shows
// up as one rising counter instead of an unbounded scrape page.
//
// The write path is lock-cheap by the same discipline as
// internal/metrics: one RLock map probe per finished request resolves
// the cell (misses take the write lock once, to insert), and every cell
// field is an atomic or an atomic-bucket histogram, so concurrent
// requests never serialize on accounting.

import (
	"sync"
	"sync/atomic"
	"time"

	"xpe"
	"xpe/internal/metrics"
	"xpe/internal/telemetry"
)

// overflowLabel is the bucket label sets past the cardinality cap fold
// into.
const overflowLabel = "other"

// selectFeedLabel is the feed label one-shot /v1/select runs roll up
// under (they have no registered feed).
const selectFeedLabel = "(select)"

type cellKey struct{ tenant, feed string }

type queryKey struct{ tenant, feed, query string }

// statusClasses are the response-code classes requests_total is keyed
// by; classIdx maps a status code to its slot.
var statusClasses = [...]string{"2xx", "4xx", "5xx", "other"}

func classIdx(status int) int {
	switch status / 100 {
	case 2:
		return 0
	case 4:
		return 1
	case 5:
		return 2
	default:
		return 3
	}
}

// rollupCell aggregates one (tenant, feed) pair. All fields are atomic:
// a cell is written by concurrent request completions and read by
// concurrent scrapes without further locking.
type rollupCell struct {
	tenant, feed string

	byClass     [len(statusClasses)]atomic.Int64
	records     atomic.Int64
	bytes       atomic.Int64
	matches     atomic.Int64
	prefiltered atomic.Int64
	skipped     atomic.Int64
	latency     metrics.Histogram
}

// queryCell counts one (tenant, feed, query) registration's matches.
type queryCell struct {
	tenant, feed, query string
	matches             atomic.Int64
}

// rollups owns the bounded cell maps and the per-feed flight recorders.
type rollups struct {
	maxSets    int
	traceDepth int

	mu        sync.RWMutex
	cells     map[cellKey]*rollupCell
	order     []*rollupCell // insertion order: stable scrape pages
	queries   map[queryKey]*queryCell
	qorder    []*queryCell
	recorders map[string]*xpe.FlightRecorder

	overflow atomic.Int64 // observations folded into the other bucket
}

func newRollups(maxSets, traceDepth int) *rollups {
	if maxSets <= 0 {
		maxSets = 128
	}
	if traceDepth <= 0 {
		traceDepth = 32
	}
	return &rollups{
		maxSets:    maxSets,
		traceDepth: traceDepth,
		cells:      make(map[cellKey]*rollupCell),
		queries:    make(map[queryKey]*queryCell),
		recorders:  make(map[string]*xpe.FlightRecorder),
	}
}

// cell resolves (tenant, feed), creating the cell on first sight and
// folding into the overflow bucket at the cardinality cap.
func (ru *rollups) cell(tenant, feed string) *rollupCell {
	key := cellKey{tenant, feed}
	ru.mu.RLock()
	c := ru.cells[key]
	ru.mu.RUnlock()
	if c != nil {
		return c
	}
	ru.mu.Lock()
	defer ru.mu.Unlock()
	if c = ru.cells[key]; c != nil {
		return c
	}
	if len(ru.cells) >= ru.maxSets {
		ru.overflow.Add(1)
		key = cellKey{overflowLabel, overflowLabel}
		if c = ru.cells[key]; c != nil {
			return c
		}
	}
	c = &rollupCell{tenant: key.tenant, feed: key.feed}
	ru.cells[key] = c
	ru.order = append(ru.order, c)
	return c
}

// observe accounts one finished evaluation request: its response class,
// its run totals, and its wall latency.
func (ru *rollups) observe(tenant, feed string, status int, stats xpe.StreamStats, dur time.Duration) {
	c := ru.cell(tenant, feed)
	c.byClass[classIdx(status)].Add(1)
	c.records.Add(stats.Records)
	c.bytes.Add(stats.Bytes)
	c.matches.Add(stats.Matches)
	c.prefiltered.Add(stats.Prefiltered)
	c.skipped.Add(stats.Skipped)
	c.latency.Observe(dur)
}

// queryMatches accounts one registration's match count from a feed run.
func (ru *rollups) queryMatches(tenant, feed, query string, n int64) {
	if n == 0 {
		return
	}
	key := queryKey{tenant, feed, query}
	ru.mu.RLock()
	c := ru.queries[key]
	ru.mu.RUnlock()
	if c == nil {
		ru.mu.Lock()
		if c = ru.queries[key]; c == nil {
			if len(ru.queries) >= ru.maxSets {
				ru.overflow.Add(1)
				key = queryKey{overflowLabel, overflowLabel, overflowLabel}
			}
			if c = ru.queries[key]; c == nil {
				c = &queryCell{tenant: key.tenant, feed: key.feed, query: key.query}
				ru.queries[key] = c
				ru.qorder = append(ru.qorder, c)
			}
		}
		ru.mu.Unlock()
	}
	c.matches.Add(n)
}

// recorder returns feed's flight recorder, creating it on first use.
// Feeds past the cardinality cap are not traced (nil — every
// FlightRecorder entry point is nil-safe).
func (ru *rollups) recorder(feed string) *xpe.FlightRecorder {
	ru.mu.RLock()
	fr := ru.recorders[feed]
	ru.mu.RUnlock()
	if fr != nil {
		return fr
	}
	ru.mu.Lock()
	defer ru.mu.Unlock()
	if fr = ru.recorders[feed]; fr != nil {
		return fr
	}
	if len(ru.recorders) >= ru.maxSets {
		return nil
	}
	fr = xpe.NewFlightRecorder(ru.traceDepth)
	ru.recorders[feed] = fr
	return fr
}

// existingRecorder returns feed's recorder without creating one.
func (ru *rollups) existingRecorder(feed string) *xpe.FlightRecorder {
	ru.mu.RLock()
	defer ru.mu.RUnlock()
	return ru.recorders[feed]
}

// render writes the dimensional families. Series appear in cell
// insertion order, which only grows, so consecutive scrapes agree on
// ordering.
func (ru *rollups) render(t *telemetry.Writer) {
	ru.mu.RLock()
	cells := append([]*rollupCell(nil), ru.order...)
	qcells := append([]*queryCell(nil), ru.qorder...)
	ru.mu.RUnlock()

	t.Family("xpe_serve_requests_total",
		"Finished evaluation requests by tenant, feed, and response-code class (refusals included).", "counter")
	for _, c := range cells {
		for i, cls := range statusClasses {
			if n := c.byClass[i].Load(); n > 0 {
				t.Sample("xpe_serve_requests_total", float64(n),
					"tenant", c.tenant, "feed", c.feed, "code", cls)
			}
		}
	}
	counter := func(name, help string, field func(*rollupCell) int64) {
		t.Family(name, help, "counter")
		for _, c := range cells {
			t.Sample(name, float64(field(c)), "tenant", c.tenant, "feed", c.feed)
		}
	}
	counter("xpe_serve_records_total", "Records evaluated, by tenant and feed.",
		func(c *rollupCell) int64 { return c.records.Load() })
	counter("xpe_serve_bytes_total", "Input bytes consumed, by tenant and feed.",
		func(c *rollupCell) int64 { return c.bytes.Load() })
	counter("xpe_serve_matches_total", "NDJSON match lines written, by tenant and feed.",
		func(c *rollupCell) int64 { return c.matches.Load() })
	counter("xpe_serve_records_prefiltered_total", "Records skipped whole by the union prefilter, by tenant and feed (skip rate = prefiltered / (records + prefiltered)).",
		func(c *rollupCell) int64 { return c.prefiltered.Load() })
	counter("xpe_serve_records_skipped_total", "Failed records dropped by the Skip policy, by tenant and feed.",
		func(c *rollupCell) int64 { return c.skipped.Load() })

	t.HistogramFamily("xpe_serve_request_duration_seconds",
		"Evaluation request wall latency by tenant and feed, admission wait included.")
	for _, c := range cells {
		t.HistogramSeries("xpe_serve_request_duration_seconds", c.latency.Snapshot(),
			"tenant", c.tenant, "feed", c.feed)
	}

	t.Family("xpe_serve_query_matches_total",
		"Matches per registered query (feed runs share one pass, so per-query latency is not separable; match attribution is).", "counter")
	for _, c := range qcells {
		t.Sample("xpe_serve_query_matches_total", float64(c.matches.Load()),
			"tenant", c.tenant, "feed", c.feed, "query", c.query)
	}

	t.Counter("xpe_serve_rollup_overflow_total",
		"Observations folded into the other bucket by the label-cardinality cap.", ru.overflow.Load())
}
