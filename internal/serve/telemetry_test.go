package serve

// Tests for the serving telemetry surface: the /metrics exposition page
// (golden + strict parse), request-id correlation across header, access
// log, and record traces, the cardinality cap, the disabled
// configuration, and scraping under concurrent load.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"xpe"
	"xpe/internal/telemetry"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/metrics.golden from the fabricated state")

// TestMetricsGolden pins the full exposition page, byte for byte, over a
// hand-fabricated server state: every family, every label, every
// histogram bucket. Rendering is deterministic because the fabricated
// latencies land in fixed power-of-two buckets and the runtime gauges
// are rendered with withRuntime=false. Regenerate with
// go test ./internal/serve -run MetricsGolden -update-golden.
func TestMetricsGolden(t *testing.T) {
	s, err := NewServer(Options{Engine: xpe.NewEngine()})
	if err != nil {
		t.Fatal(err)
	}

	// Server-wide counters.
	s.requests.Store(12)
	s.admitted.Store(9)
	s.rejected.Store(2)
	s.drained.Store(1)
	s.feedRuns.Store(5)
	s.selectRuns.Store(4)
	s.matches.Store(33)
	s.records.Store(120)
	s.prefiltered.Store(40)
	s.skips.Store(2)
	s.breakerTrips.Store(1)
	s.breakerRejects.Store(3)

	// Per-tenant admission state.
	s.adm.mu.Lock()
	q1 := s.adm.queueLocked("acme", 3)
	q1.admitted, q1.rejected = 7, 1
	q2 := s.adm.queueLocked("beta", 0) // weight 0 resolves to 1
	q2.admitted = 2
	s.adm.degraded, s.adm.shed = 4, 1
	s.adm.mu.Unlock()

	// One closed and one open breaker (backoff 5s: still open when the
	// page renders).
	s.breakers.get("orders")
	bad := s.breakers.get("bad")
	bad.mu.Lock()
	bad.tripLocked()
	bad.mu.Unlock()

	// Dimensional rollups. 3ms lands in the 2^22ns bucket
	// (le=0.004194304), 500µs in 2^19 (le=0.000524288), 1µs in 2^10
	// (le=1.024e-06) — fixed buckets, exact sums.
	s.rollups.observe("acme", "orders", 200,
		xpe.StreamStats{Records: 10, Bytes: 2048, Matches: 3, Prefiltered: 4, Skipped: 1},
		3*time.Millisecond)
	s.rollups.observe("acme", "orders", 200,
		xpe.StreamStats{Records: 2, Bytes: 100}, 500*time.Microsecond)
	s.rollups.observe("beta", selectFeedLabel, 400, xpe.StreamStats{}, time.Microsecond)
	s.rollups.queryMatches("acme", "orders", "prices", 3)

	var buf bytes.Buffer
	if err := s.writeMetrics(&buf, false); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	if err := telemetry.Lint(page); err != nil {
		t.Fatalf("golden page fails strict parse: %v", err)
	}

	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if page != string(want) {
		t.Errorf("metrics page drifted from golden (regenerate with -update-golden if intended)\ngot:\n%s\nwant:\n%s",
			page, want)
	}
}

// TestMetricsEndpointLive scrapes a server that did real work and
// strict-parses the page: engine counters, serve counters, per-tenant
// admission, per-feed rollups, and per-query match attribution must all
// be present and well-formed. The library-side /debug/xpe/metrics page
// mounted on the same mux must parse too.
func TestMetricsEndpointLive(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	mustRegister(t, ts, `{"tenant":"t1","name":"prices","query":"price doc* *","feed":"market"}`)
	mustRegister(t, ts, `{"tenant":"t2","name":"skus","query":"sku doc*","feed":"market"}`)

	postNDJSON(t, ts.URL+"/v1/feed/market?tenant=t1", feedCorpus)
	postNDJSON(t, ts.URL+"/v1/select?tenant=t2&query=price+doc*+*", feedCorpus)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	page := string(body)
	if err := telemetry.Lint(page); err != nil {
		t.Fatalf("live page fails strict parse: %v", err)
	}
	for _, want := range []string{
		"xpe_eval_docs_total", // engine family
		"xpe_go_goroutines",   // runtime gauge
		"xpe_serve_feed_runs_total 1\n",
		"xpe_serve_select_runs_total 1\n",
		`xpe_serve_tenant_admitted_total{tenant="t1"} 1` + "\n",
		`xpe_serve_tenant_admitted_total{tenant="t2"} 1` + "\n",
		`xpe_serve_requests_total{tenant="t1",feed="market",code="2xx"} 1` + "\n",
		`xpe_serve_requests_total{tenant="t2",feed="(select)",code="2xx"} 1` + "\n",
		`xpe_serve_request_duration_seconds_count{tenant="t1",feed="market"} 1` + "\n",
		`xpe_serve_query_matches_total{tenant="t1",feed="market",query="prices"} 2` + "\n",
		`xpe_serve_query_matches_total{tenant="t2",feed="market",query="skus"} 1` + "\n",
		"xpe_serve_rollup_overflow_total 0\n",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q\n%s", want, page)
		}
	}

	// The engine debug surface is mounted on the serving mux too.
	resp, err = http.Get(ts.URL + "/debug/xpe/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /debug/xpe/metrics: %d", resp.StatusCode)
	}
	if err := telemetry.Lint(string(body)); err != nil {
		t.Fatalf("debug metrics page fails strict parse: %v", err)
	}
}

// syncBuffer is a goroutine-safe log sink for the slog handlers below.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) lines(t *testing.T) []map[string]any {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []map[string]any
	for _, ln := range strings.Split(strings.TrimSpace(b.buf.String()), "\n") {
		if ln == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", ln, err)
		}
		out = append(out, m)
	}
	return out
}

// TestRequestIDCorrelation closes the correlation loop: one client-sent
// X-Request-Id must come back in the response header, in the access log
// line, in every slow-record warning, and on every record trace at
// /debug/xpe/serve/traces?feed=.
func TestRequestIDCorrelation(t *testing.T) {
	logbuf := &syncBuffer{}
	_, ts := newTestServer(t, Options{
		Logger:              slog.New(slog.NewJSONHandler(logbuf, nil)),
		SlowRecordThreshold: time.Nanosecond, // every record is "slow"
	})
	mustRegister(t, ts, `{"tenant":"t1","name":"prices","query":"price doc* *","feed":"market"}`)

	req, err := http.NewRequest("POST", ts.URL+"/v1/feed/market?tenant=t1", strings.NewReader(feedCorpus))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "corr-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("feed post: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "corr-test-1" {
		t.Errorf("response X-Request-Id = %q, want the client's id echoed", got)
	}

	// The access line and the slow-record warnings carry the id.
	var sawAccess, sawSlow bool
	for _, line := range logbuf.lines(t) {
		switch line["msg"] {
		case "xpe.serve access":
			sawAccess = true
			if line["request_id"] != "corr-test-1" || line["tenant"] != "t1" ||
				line["feed"] != "market" || line["status"] != float64(200) {
				t.Errorf("access line missing correlation fields: %v", line)
			}
			if line["records"] == nil || line["matches"] == nil || line["duration_ms"] == nil {
				t.Errorf("access line missing run figures: %v", line)
			}
		case "xpe.serve slow record":
			sawSlow = true
			if line["request_id"] != "corr-test-1" || line["feed"] != "market" {
				t.Errorf("slow-record line missing correlation fields: %v", line)
			}
		}
	}
	if !sawAccess || !sawSlow {
		t.Fatalf("want both an access line and slow-record warnings; access=%v slow=%v", sawAccess, sawSlow)
	}

	// Every record trace in the feed's flight recorder carries the id.
	resp, err = http.Get(ts.URL + "/debug/xpe/serve/traces?feed=market")
	if err != nil {
		t.Fatal(err)
	}
	var traces []xpe.RecordTrace
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(traces) == 0 {
		t.Fatal("feed recorder is empty after a traced run")
	}
	for _, tr := range traces {
		if tr.RequestID != "corr-test-1" {
			t.Errorf("trace record %d: request_id %q, want corr-test-1", tr.Index, tr.RequestID)
		}
	}

	// A garbage client id is replaced, never echoed or logged verbatim.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/feed/market?tenant=t1", strings.NewReader(feedCorpus))
	req.Header.Set("X-Request-Id", "not a token!!")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got := resp.Header.Get("X-Request-Id")
	if got == "" || strings.Contains(got, " ") || got == "not a token!!" {
		t.Errorf("invalid client id must be replaced with a fresh token, got %q", got)
	}
}

// TestMetricsCardinalityCap drives more label sets than MaxLabelSets
// allows and checks the fold: the page stays bounded, the surplus lands
// in the ("other","other") bucket, and the overflow counter reports it.
func TestMetricsCardinalityCap(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxLabelSets: 2})
	for i := 0; i < 5; i++ {
		postNDJSON(t, fmt.Sprintf("%s/v1/select?tenant=tn%d&query=price+doc*+*", ts.URL, i), feedCorpus)
	}
	var buf bytes.Buffer
	if err := s.writeMetrics(&buf, false); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	if err := telemetry.Lint(page); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page, `xpe_serve_requests_total{tenant="other",feed="other",code="2xx"} 3`+"\n") {
		t.Errorf("three folded requests should share the other bucket:\n%s", page)
	}
	if !strings.Contains(page, "xpe_serve_rollup_overflow_total 3\n") {
		t.Errorf("overflow counter should report 3 folds:\n%s", page)
	}
	// Tenants past the cap keep their (uncapped) admission series but get
	// no rollup cells of their own.
	if strings.Contains(page, `xpe_serve_requests_total{tenant="tn3"`) ||
		strings.Contains(page, `xpe_serve_requests_total{tenant="tn4"`) {
		t.Errorf("rollup label sets past the cap must not appear:\n%s", page)
	}
}

// TestMetricsDisabled pins the DisableTelemetry contract: no /metrics, no
// feed traces, no request ids — and evaluation still works.
func TestMetricsDisabled(t *testing.T) {
	_, ts := newTestServer(t, Options{DisableTelemetry: true})
	mustRegister(t, ts, `{"tenant":"t","name":"q","query":"price doc* *","feed":"f"}`)
	_, summary, resp := postNDJSON(t, ts.URL+"/v1/feed/f?tenant=t", feedCorpus)
	if summary.Records == 0 {
		t.Fatal("evaluation must still work with telemetry off")
	}
	if got := resp.Header.Get("X-Request-Id"); got != "" {
		t.Errorf("telemetry off must not assign request ids, got %q", got)
	}
	for _, path := range []string{"/metrics", "/debug/xpe/serve/traces?feed=f"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with telemetry off: %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestStatsGaugeHygiene pins the counter/gauge split on the breaker
// surface: after a trip, the cumulative trip counter and the
// point-in-time state gauge must agree across the JSON stats and the
// exposition page, including the per-feed breaker_states map.
func TestStatsGaugeHygiene(t *testing.T) {
	s, ts := newTestServer(t, Options{BreakerThreshold: 2, BreakerBackoff: time.Minute})
	mustRegister(t, ts, `{"tenant":"t","name":"q","query":"price doc*","feed":"f"}`)

	poisoned := `<corpus><doc><price>1</price></doc>` +
		`<doc><x></doc><doc><y></doc>` +
		`<doc><price>2</price></doc></corpus>`
	resp, err := http.Post(ts.URL+"/v1/feed/f?split=doc", "application/xml", strings.NewReader(poisoned))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	st := s.Stats()
	if st.BreakerTrips != 1 || st.BreakerOpen != 1 {
		t.Fatalf("after trip: trips=%d open=%d", st.BreakerTrips, st.BreakerOpen)
	}
	if st.BreakerStates["f"] != "open" {
		t.Fatalf("breaker_states = %v, want f open", st.BreakerStates)
	}

	// The JSON surface carries the same split.
	resp, err = http.Get(ts.URL + "/debug/xpe/serve")
	if err != nil {
		t.Fatal(err)
	}
	var js struct {
		BreakerTrips  int64             `json:"breaker_trips"`
		BreakerOpen   int64             `json:"breaker_open_feeds"`
		BreakerStates map[string]string `json:"breaker_states"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if js.BreakerTrips != 1 || js.BreakerOpen != 1 || js.BreakerStates["f"] != "open" {
		t.Fatalf("JSON stats disagree: %+v", js)
	}

	// And so does the exposition page: counter and gauge, by type.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	page := string(body)
	for _, want := range []string{
		"# TYPE xpe_serve_breaker_trips_total counter\n",
		"xpe_serve_breaker_trips_total 1\n",
		"# TYPE xpe_serve_breaker_state gauge\n",
		`xpe_serve_breaker_state{feed="f"} 2` + "\n",
		"# TYPE xpe_serve_breaker_open_feeds gauge\n",
		"xpe_serve_breaker_open_feeds 1\n",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

// TestMetricsScrapeUnderLoadLeak hammers feed posts and concurrent
// /metrics scrapes (the whole suite runs under -race via make
// serve-test), strict-parses a final scrape, and then checks that no
// goroutine outlives the server — rollup cells, recorders, and the
// exposition path must not leak or tear.
func TestMetricsScrapeUnderLoadLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	_, ts := newTestServer(t, Options{MaxConcurrent: 4, SlowRecordThreshold: time.Nanosecond,
		Logger: slog.New(slog.NewJSONHandler(io.Discard, nil))})
	chaosRegister(t, ts, `{"tenant":"t1","name":"prices","query":"price doc* *","feed":"market"}`)
	chaosRegister(t, ts, `{"tenant":"t2","name":"skus","query":"sku doc*","feed":"market"}`)

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				resp, err := http.Post(
					fmt.Sprintf("%s/v1/feed/market?tenant=t%d", ts.URL, p%2+1),
					"application/xml", strings.NewReader(feedCorpus))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(p)
	}
	for sc := 0; sc < 4; sc++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("scrape under load: %d", resp.StatusCode)
					return
				}
				if err := telemetry.Lint(string(body)); err != nil {
					t.Errorf("scrape under load fails strict parse: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := telemetry.Lint(string(body)); err != nil {
		t.Fatalf("final scrape fails strict parse: %v", err)
	}
	if !strings.Contains(string(body), `xpe_serve_requests_total{tenant="t1",feed="market",code="2xx"} 10`+"\n") {
		t.Errorf("rollups lost requests under load:\n%s", body)
	}
	drainLeaks(t, base, ts.Close)
}
