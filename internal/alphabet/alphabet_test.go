package alphabet

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestInternerBasics(t *testing.T) {
	in := NewInterner()
	a := in.Intern("a")
	b := in.Intern("b")
	if a == b {
		t.Fatal("distinct names must get distinct symbols")
	}
	if in.Intern("a") != a {
		t.Fatal("interning is not idempotent")
	}
	if in.Lookup("a") != a || in.Lookup("zzz") != None {
		t.Fatal("lookup wrong")
	}
	if in.Name(a) != "a" || in.Name(b) != "b" {
		t.Fatal("name wrong")
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d", in.Len())
	}
	if got := in.Name(99); got == "" {
		t.Fatal("unknown symbols should render a placeholder")
	}
}

func TestInternerZeroValue(t *testing.T) {
	var in Interner
	if in.Lookup("x") != None {
		t.Fatal("zero-value lookup should miss")
	}
	s := in.Intern("x")
	if in.Lookup("x") != s {
		t.Fatal("zero-value intern broken")
	}
}

func TestInternerCloneAndNames(t *testing.T) {
	in := NewInterner()
	in.Intern("b")
	in.Intern("a")
	c := in.Clone()
	c.Intern("z")
	if in.Len() != 2 || c.Len() != 3 {
		t.Fatal("clone not independent")
	}
	names := in.Names()
	if names[0] != "b" || names[1] != "a" {
		t.Fatalf("Names = %v", names)
	}
	sorted := in.SortedNames()
	if sorted[0] != "a" || sorted[1] != "b" {
		t.Fatalf("SortedNames = %v", sorted)
	}
}

func TestInternerDense(t *testing.T) {
	in := NewInterner()
	f := func(names []string) bool {
		for _, n := range names {
			s := in.Intern(n)
			if s < 0 || s >= in.Len() {
				return false
			}
			if in.Name(s) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInternerGeneration(t *testing.T) {
	in := NewInterner()
	if in.Generation() != 0 {
		t.Fatalf("fresh generation = %d, want 0", in.Generation())
	}
	in.Intern("a")
	g1 := in.Generation()
	if g1 != 1 {
		t.Fatalf("generation after one intern = %d, want 1", g1)
	}
	in.Intern("a") // idempotent intern must not advance
	if in.Generation() != g1 {
		t.Fatal("re-interning an existing name advanced the generation")
	}
	in.Lookup("zzz") // lookups never advance
	if in.Generation() != g1 {
		t.Fatal("lookup advanced the generation")
	}
	in.Intern("b")
	if in.Generation() <= g1 {
		t.Fatal("fresh intern did not advance the generation")
	}
}

// TestInternerConcurrent hammers one interner from concurrent writers and
// readers; run under -race this pins the thread-safety contract the shared
// Engine relies on. Symbols interned for the same name must agree across
// goroutines, and the final generation must equal the distinct name count.
func TestInternerConcurrent(t *testing.T) {
	in := NewInterner()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	syms := make([][]Symbol, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			syms[w] = make([]Symbol, perWorker)
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("n%d", i)
				syms[w][i] = in.Intern(name)
				if got := in.Lookup(name); got != syms[w][i] {
					t.Errorf("Lookup(%q) = %d, want %d", name, got, syms[w][i])
					return
				}
				_ = in.Name(syms[w][i])
				_ = in.Generation()
				_ = in.Len()
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			if syms[w][i] != syms[0][i] {
				t.Fatalf("worker %d interned n%d as %d, worker 0 as %d", w, i, syms[w][i], syms[0][i])
			}
		}
	}
	if got := in.Generation(); got != perWorker {
		t.Fatalf("final generation = %d, want %d", got, perWorker)
	}
}

func TestTupleInterner(t *testing.T) {
	ti := NewTupleInterner()
	a := ti.Intern([]int{1, 2, 3})
	b := ti.Intern([]int{1, 2, 4})
	if a == b {
		t.Fatal("distinct tuples must get distinct ids")
	}
	if ti.Intern([]int{1, 2, 3}) != a {
		t.Fatal("interning is not idempotent")
	}
	if ti.Lookup([]int{1, 2, 3}) != a || ti.Lookup([]int{9}) != -1 {
		t.Fatal("lookup wrong")
	}
	got := ti.Tuple(a)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Tuple = %v", got)
	}
	// The stored tuple must be a copy.
	src := []int{7, 7}
	id := ti.Intern(src)
	src[0] = 99
	if ti.Tuple(id)[0] != 7 {
		t.Fatal("tuple not copied")
	}
	if ti.Len() != 3 {
		t.Fatalf("Len = %d", ti.Len())
	}
}

func TestTupleInternerEmptyAndNegative(t *testing.T) {
	ti := NewTupleInterner()
	e := ti.Intern(nil)
	if ti.Lookup([]int{}) != e {
		t.Fatal("nil and empty tuples must coincide")
	}
	n := ti.Intern([]int{-1, -2})
	if ti.Lookup([]int{-1, -2}) != n {
		t.Fatal("negative components must round trip")
	}
	if ti.Lookup([]int{-1}) == n {
		t.Fatal("prefix must not collide")
	}
}

func TestTupleInternerQuick(t *testing.T) {
	ti := NewTupleInterner()
	f := func(a, b []int16) bool {
		ta := make([]int, len(a))
		for i, v := range a {
			ta[i] = int(v)
		}
		tb := make([]int, len(b))
		for i, v := range b {
			tb[i] = int(v)
		}
		ia, ib := ti.Intern(ta), ti.Intern(tb)
		equal := len(ta) == len(tb)
		if equal {
			for i := range ta {
				if ta[i] != tb[i] {
					equal = false
					break
				}
			}
		}
		return (ia == ib) == equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
