// Package alphabet provides symbol interning shared by every automaton in
// the repository. All automata — string automata over hedge-automaton state
// sets, hedge automata over XML element names, the string automaton N of
// Theorem 4 — run over dense int symbols; an Interner maps external names to
// those symbols and back.
package alphabet

import (
	"fmt"
	"sort"
)

// Symbol is a dense interned identifier. Valid symbols are non-negative;
// None marks the absence of a symbol.
type Symbol = int

// None is the invalid symbol.
const None Symbol = -1

// Interner assigns dense Symbols to names. The zero value is ready to use.
type Interner struct {
	names []string
	ids   map[string]Symbol
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]Symbol)}
}

// Intern returns the symbol for name, assigning a fresh one if needed.
func (in *Interner) Intern(name string) Symbol {
	if in.ids == nil {
		in.ids = make(map[string]Symbol)
	}
	if s, ok := in.ids[name]; ok {
		return s
	}
	s := Symbol(len(in.names))
	in.names = append(in.names, name)
	in.ids[name] = s
	return s
}

// Lookup returns the symbol for name, or None if it was never interned.
func (in *Interner) Lookup(name string) Symbol {
	if in.ids == nil {
		return None
	}
	if s, ok := in.ids[name]; ok {
		return s
	}
	return None
}

// Name returns the name of s, or a diagnostic placeholder for unknown
// symbols.
func (in *Interner) Name(s Symbol) string {
	if s < 0 || s >= len(in.names) {
		return fmt.Sprintf("<sym:%d>", s)
	}
	return in.names[s]
}

// Len reports the number of interned symbols.
func (in *Interner) Len() int { return len(in.names) }

// Names returns a copy of all interned names, in symbol order.
func (in *Interner) Names() []string {
	out := make([]string, len(in.names))
	copy(out, in.names)
	return out
}

// SortedNames returns all interned names in lexicographic order.
func (in *Interner) SortedNames() []string {
	out := in.Names()
	sort.Strings(out)
	return out
}

// Clone returns an independent copy of the interner.
func (in *Interner) Clone() *Interner {
	c := NewInterner()
	for _, n := range in.names {
		c.Intern(n)
	}
	return c
}

// TupleInterner assigns dense ids to int tuples. It is used to realize
// product constructions (composite hedge-automaton states, equivalence
// classes of Theorem 4) with dense state numbering.
type TupleInterner struct {
	tuples [][]int
	ids    map[string]int
}

// NewTupleInterner returns an empty tuple interner.
func NewTupleInterner() *TupleInterner {
	return &TupleInterner{ids: make(map[string]int)}
}

func tupleKey(t []int) string {
	// Fixed-width little-endian encoding; tuples are short, so this is
	// cheap and collision-free.
	b := make([]byte, 0, len(t)*4)
	for _, v := range t {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// Intern returns the id for tuple t, assigning a fresh one if needed. The
// tuple is copied; the caller may reuse t.
func (ti *TupleInterner) Intern(t []int) int {
	k := tupleKey(t)
	if id, ok := ti.ids[k]; ok {
		return id
	}
	id := len(ti.tuples)
	cp := make([]int, len(t))
	copy(cp, t)
	ti.tuples = append(ti.tuples, cp)
	ti.ids[k] = id
	return id
}

// Lookup returns the id of t, or -1 if t was never interned.
func (ti *TupleInterner) Lookup(t []int) int {
	if id, ok := ti.ids[tupleKey(t)]; ok {
		return id
	}
	return -1
}

// Tuple returns the tuple with the given id. The returned slice must not be
// modified.
func (ti *TupleInterner) Tuple(id int) []int { return ti.tuples[id] }

// Len reports the number of interned tuples.
func (ti *TupleInterner) Len() int { return len(ti.tuples) }
