// Package alphabet provides symbol interning shared by every automaton in
// the repository. All automata — string automata over hedge-automaton state
// sets, hedge automata over XML element names, the string automaton N of
// Theorem 4 — run over dense int symbols; an Interner maps external names to
// those symbols and back.
//
// Interners are safe for concurrent use and versioned: every Intern that
// assigns a fresh symbol advances a monotonically increasing generation
// counter. Closed-world consumers ('.'-any-hedge desugaring, schema
// products) record the generation they compiled against and revalidate when
// it moves — see ha.Names.Generation and the core compile pipeline.
package alphabet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Symbol is a dense interned identifier. Valid symbols are non-negative;
// None marks the absence of a symbol.
type Symbol = int

// None is the invalid symbol.
const None Symbol = -1

// Interner assigns dense Symbols to names. The zero value is ready to use.
// All methods are safe for concurrent use: lookups take a read lock, and
// interning a genuinely new name takes the write lock and advances the
// generation counter (reading the counter is a single atomic load, so
// generation checks stay off the lock entirely).
type Interner struct {
	mu    sync.RWMutex
	names []string
	ids   map[string]Symbol
	gen   atomic.Uint64 // == len(names); advances only under mu
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]Symbol)}
}

// Intern returns the symbol for name, assigning a fresh one if needed.
func (in *Interner) Intern(name string) Symbol {
	// Fast path: the name is usually already interned.
	in.mu.RLock()
	s, ok := in.ids[name]
	in.mu.RUnlock()
	if ok {
		return s
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.ids == nil {
		in.ids = make(map[string]Symbol)
	}
	if s, ok := in.ids[name]; ok {
		return s
	}
	s = Symbol(len(in.names))
	in.names = append(in.names, name)
	in.ids[name] = s
	in.gen.Store(uint64(len(in.names)))
	return s
}

// Lookup returns the symbol for name, or None if it was never interned.
func (in *Interner) Lookup(name string) Symbol {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if s, ok := in.ids[name]; ok {
		return s
	}
	return None
}

// Name returns the name of s, or a diagnostic placeholder for unknown
// symbols.
func (in *Interner) Name(s Symbol) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if s < 0 || s >= len(in.names) {
		return fmt.Sprintf("<sym:%d>", s)
	}
	return in.names[s]
}

// Len reports the number of interned symbols.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.names)
}

// Generation returns the interner's version: a monotonically increasing
// counter that advances exactly when a fresh symbol is interned (it equals
// Len, read without taking the lock). Two equal generations imply an
// identical symbol table; a moved generation tells closed-world consumers
// their compiled view of the alphabet is stale.
func (in *Interner) Generation() uint64 { return in.gen.Load() }

// Names returns a copy of all interned names, in symbol order.
func (in *Interner) Names() []string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	out := make([]string, len(in.names))
	copy(out, in.names)
	return out
}

// SortedNames returns all interned names in lexicographic order.
func (in *Interner) SortedNames() []string {
	out := in.Names()
	sort.Strings(out)
	return out
}

// Clone returns an independent copy of the interner.
func (in *Interner) Clone() *Interner {
	c := NewInterner()
	for _, n := range in.Names() {
		c.Intern(n)
	}
	return c
}

// Extends reports whether in is an append-only extension of base: every
// name of base is present in in with the same symbol. This holds between
// any two snapshots of one growing interner (interning never reorders),
// and is what makes automata compiled against an older snapshot rebasable
// onto a newer one — the common symbols keep their ids.
func (in *Interner) Extends(base *Interner) bool {
	bn := base.Names()
	an := in.Names()
	if len(an) < len(bn) {
		return false
	}
	for i, n := range bn {
		if an[i] != n {
			return false
		}
	}
	return true
}

// TupleInterner assigns dense ids to int tuples. It is used to realize
// product constructions (composite hedge-automaton states, equivalence
// classes of Theorem 4) with dense state numbering. Unlike Interner it is
// not synchronized: every product construction builds its own TupleInterner
// and never shares it across goroutines.
type TupleInterner struct {
	tuples [][]int
	ids    map[string]int
}

// NewTupleInterner returns an empty tuple interner.
func NewTupleInterner() *TupleInterner {
	return &TupleInterner{ids: make(map[string]int)}
}

func tupleKey(t []int) string {
	// Fixed-width little-endian encoding; tuples are short, so this is
	// cheap and collision-free.
	b := make([]byte, 0, len(t)*4)
	for _, v := range t {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// Intern returns the id for tuple t, assigning a fresh one if needed. The
// tuple is copied; the caller may reuse t.
func (ti *TupleInterner) Intern(t []int) int {
	k := tupleKey(t)
	if id, ok := ti.ids[k]; ok {
		return id
	}
	id := len(ti.tuples)
	cp := make([]int, len(t))
	copy(cp, t)
	ti.tuples = append(ti.tuples, cp)
	ti.ids[k] = id
	return id
}

// Lookup returns the id of t, or -1 if t was never interned.
func (ti *TupleInterner) Lookup(t []int) int {
	if id, ok := ti.ids[tupleKey(t)]; ok {
		return id
	}
	return -1
}

// Tuple returns the tuple with the given id. The returned slice must not be
// modified.
func (ti *TupleInterner) Tuple(id int) []int { return ti.tuples[id] }

// Len reports the number of interned tuples.
func (ti *TupleInterner) Len() int { return len(ti.tuples) }
