package schema

import "xpe/internal/ha"

// Equivalent reports whether two schemas over the same Names accept the
// same document language.
func Equivalent(a, b *Schema) (bool, error) {
	return ha.Equivalent(a.DHA, b.DHA)
}

// Includes reports whether every document of sub is accepted by super
// (language inclusion — the schema-evolution check downstream tooling
// needs before swapping grammars).
func Includes(super, sub *Schema) (bool, error) {
	diff, err := ha.ProductDHA(sub.DHA, super.DHA, func(x, y bool) bool { return x && !y })
	if err != nil {
		return false, err
	}
	return diff.IsEmpty(), nil
}

// Reduced returns an equivalent schema whose deterministic automaton has
// behaviourally-merged states (ha.Reduce). The Section 8 transformations
// build products whose outputs routinely carry redundant states; reduction
// shrinks them before further composition.
func Reduced(s *Schema) *Schema {
	r := s.DHA.Reduce()
	out := FromDHA(r)
	out.Classes = s.Classes
	return out
}
