// Package schema provides the schema substrate of Section 8: a small
// RELAX/TREX-flavoured grammar language compiled to hedge automata, and the
// schema transformations for selection and deletion queries, built on the
// match-identifying automata of Theorem 5.
//
// Grammar syntax (line-oriented; '#' starts a comment):
//
//	start = <regex over class names>
//	element NAME { <content> }                 — class NAME labeled NAME
//	define CLASS = element LABEL { <content> } — class CLASS labeled LABEL
//
// Content is a string regular expression (package sre syntax) over class
// names, plus the builtin "text" which matches a text leaf. Two classes may
// share a label ("define"d classes), which is exactly what makes the
// formalism hedge-regular rather than merely local — the distinction the
// paper draws against DTD-style schemas.
package schema

import (
	"fmt"
	"strings"

	"xpe/internal/ha"
	"xpe/internal/hedge"
	"xpe/internal/sre"
)

// TextVar is the variable name used for text leaves (shared with package
// xmlhedge via package hedge).
const TextVar = hedge.TextVar

// Schema is a compiled schema: the grammar (if any), the NHA it compiles
// to, and the determinized complete DHA used by the transformations.
type Schema struct {
	Names *ha.Names
	NHA   *ha.NHA
	// DHA is the determinized, complete automaton.
	DHA *ha.DHA
	// Classes lists the grammar's class names in definition order (empty
	// for schemas built directly from automata).
	Classes []string
}

// FromNHA wraps an automaton as a schema.
func FromNHA(n *ha.NHA) *Schema {
	det := n.Determinize()
	return &Schema{Names: n.Names, NHA: n, DHA: det.DHA}
}

// FromDHA wraps a deterministic automaton as a schema.
func FromDHA(d *ha.DHA) *Schema {
	return &Schema{Names: d.Names, NHA: d.ToNHA(), DHA: d}
}

// Rebase reinterprets the schema over names, an append-only extension of
// the alphabet it was compiled against (a newer snapshot of the same
// engine's alphabet). Ids of the common names agree, so the automata carry
// over unchanged — symbols of the extension fall to the sink on
// completion, i.e. the rebased schema rejects labels the original never
// saw, exactly its closed-world semantics. Returns nil when names is not
// an extension (schemas from unrelated alphabets cannot be combined).
func Rebase(s *Schema, names *ha.Names) *Schema {
	if s.Names == names {
		return s
	}
	if !names.ExtensionOf(s.Names) {
		return nil
	}
	out := *s
	out.Names = names
	if s.DHA != nil {
		d := *s.DHA
		d.Names = names
		out.DHA = &d
	}
	if s.NHA != nil {
		n := *s.NHA
		n.Names = names
		out.NHA = &n
	}
	return &out
}

// classDef is one grammar production.
type classDef struct {
	class   string
	label   string
	content *sre.Expr
}

// ParseGrammar parses and compiles a grammar. Element labels, the text
// variable, and class states are interned into names.
func ParseGrammar(src string, names *ha.Names) (*Schema, error) {
	var defs []classDef
	var start *sre.Expr
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		line := lines[i]
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Join continuation lines until braces balance for element forms.
		for strings.Contains(line, "{") && !balanced(line) && i+1 < len(lines) {
			i++
			line += " " + strings.TrimSpace(lines[i])
		}
		switch {
		case strings.HasPrefix(line, "start"):
			rest := strings.TrimSpace(strings.TrimPrefix(line, "start"))
			if !strings.HasPrefix(rest, "=") {
				return nil, fmt.Errorf("schema: line %d: expected 'start = ...'", i+1)
			}
			e, err := sre.Parse(strings.TrimSpace(rest[1:]))
			if err != nil {
				return nil, fmt.Errorf("schema: line %d: %w", i+1, err)
			}
			start = e
		case strings.HasPrefix(line, "define"):
			rest := strings.TrimSpace(strings.TrimPrefix(line, "define"))
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return nil, fmt.Errorf("schema: line %d: expected 'define CLASS = element ...'", i+1)
			}
			class := strings.TrimSpace(rest[:eq])
			def, err := parseElement(strings.TrimSpace(rest[eq+1:]), i+1)
			if err != nil {
				return nil, err
			}
			def.class = class
			defs = append(defs, *def)
		case strings.HasPrefix(line, "element"):
			def, err := parseElement(line, i+1)
			if err != nil {
				return nil, err
			}
			def.class = def.label
			defs = append(defs, *def)
		default:
			return nil, fmt.Errorf("schema: line %d: unrecognized declaration %q", i+1, line)
		}
	}
	if start == nil {
		return nil, fmt.Errorf("schema: missing 'start = ...' declaration")
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("schema: no element declarations")
	}
	return compileGrammar(defs, start, names)
}

// MustParseGrammar is ParseGrammar, panicking on error.
func MustParseGrammar(src string, names *ha.Names) *Schema {
	s, err := ParseGrammar(src, names)
	if err != nil {
		panic(err)
	}
	return s
}

func balanced(s string) bool {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{':
			depth++
		case '}':
			depth--
		}
	}
	return depth == 0
}

// parseElement parses "element LABEL { content }".
func parseElement(s string, lineNo int) (*classDef, error) {
	if !strings.HasPrefix(s, "element") {
		return nil, fmt.Errorf("schema: line %d: expected 'element'", lineNo)
	}
	rest := strings.TrimSpace(strings.TrimPrefix(s, "element"))
	open := strings.IndexByte(rest, '{')
	if open < 0 || !strings.HasSuffix(rest, "}") {
		return nil, fmt.Errorf("schema: line %d: expected 'element NAME { ... }'", lineNo)
	}
	label := strings.TrimSpace(rest[:open])
	if label == "" {
		return nil, fmt.Errorf("schema: line %d: missing element name", lineNo)
	}
	body := strings.TrimSpace(rest[open+1 : len(rest)-1])
	var content *sre.Expr
	if body == "" || body == "empty" {
		content = sre.Eps()
	} else {
		e, err := sre.Parse(body)
		if err != nil {
			return nil, fmt.Errorf("schema: line %d: %w", lineNo, err)
		}
		content = e
	}
	return &classDef{label: label, content: content}, nil
}

// compileGrammar builds the NHA: one state per class, ι(text) = a dedicated
// text state, and per class the rule (label, q_class, content lifted to
// class states).
func compileGrammar(defs []classDef, start *sre.Expr, names *ha.Names) (*Schema, error) {
	b := ha.NewBuilder(names)
	classes := map[string]bool{}
	var order []string
	for _, d := range defs {
		if classes[d.class] {
			return nil, fmt.Errorf("schema: class %q defined twice", d.class)
		}
		classes[d.class] = true
		order = append(order, d.class)
	}
	// The builder names states after classes; "text" maps to the text
	// variable's state.
	b.Iota(TextVar, stateName("text"))
	resolve := func(e *sre.Expr, where string) (string, error) {
		// Rewrite class names/text to state names and validate references.
		var bad error
		var rec func(x *sre.Expr) *sre.Expr
		rec = func(x *sre.Expr) *sre.Expr {
			switch x.Kind {
			case sre.KSym:
				if x.Name != "text" && !classes[x.Name] {
					bad = fmt.Errorf("schema: %s references undefined class %q", where, x.Name)
					return x
				}
				return sre.Sym(stateName(x.Name))
			case sre.KAny:
				// '.' in content = any class or text.
				subs := make([]*sre.Expr, 0, len(order)+1)
				for _, c := range order {
					subs = append(subs, sre.Sym(stateName(c)))
				}
				subs = append(subs, sre.Sym(stateName("text")))
				return sre.Alt(subs...)
			default:
				subs := make([]*sre.Expr, len(x.Subs))
				for i, s := range x.Subs {
					subs[i] = rec(s)
				}
				return &sre.Expr{Kind: x.Kind, Name: x.Name, Subs: subs}
			}
		}
		out := rec(e)
		if bad != nil {
			return "", bad
		}
		return out.String(), nil
	}
	for _, d := range defs {
		content, err := resolve(d.content, fmt.Sprintf("element %s (class %s)", d.label, d.class))
		if err != nil {
			return nil, err
		}
		if err := b.Rule(d.label, stateName(d.class), content); err != nil {
			return nil, err
		}
	}
	startContent, err := resolve(start, "start")
	if err != nil {
		return nil, err
	}
	if err := b.Final(startContent); err != nil {
		return nil, err
	}
	nha := b.Build()
	s := FromNHA(nha)
	s.Classes = order
	return s, nil
}

// stateName decorates class names so they cannot collide with sre
// metasyntax.
func stateName(class string) string { return "c_" + class }
