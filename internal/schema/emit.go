package schema

import (
	"fmt"
	"sort"
	"strings"

	"xpe/internal/alphabet"
	"xpe/internal/ha"
	"xpe/internal/sfa"
	"xpe/internal/sre"
)

// ToGrammar renders the schema back as grammar text, closing the Section 8
// loop: transformation outputs (which are automata) become the same
// human-readable syntax the inputs were written in. The construction
// mirrors Lemma 2's preprocessing: each inhabited (state, label) pair of
// the reduced automaton becomes a grammar class whose content model is the
// state-eliminated regex of its horizontal language, with state symbols
// expanded to class alternations.
//
// Only text leaves are expressible in the grammar syntax; schemas whose ι
// uses other variables are rejected.
func ToGrammar(s *Schema) (string, error) {
	d := s.DHA.Reduce()
	// Leaf states.
	textState := alphabet.None
	for v := 0; v < d.Names.Vars.Len(); v++ {
		name := d.Names.Vars.Name(v)
		if v >= len(d.Iota) || d.Iota[v] == alphabet.None {
			continue
		}
		if name == TextVar {
			textState = d.Iota[v]
			continue
		}
		if strings.HasPrefix(name, "\x00") {
			continue // reserved substitution-variable bookkeeping
		}
		// A non-text variable that shares the text state is harmless;
		// anything else is not expressible.
		if textState == alphabet.None || d.Iota[v] != textState {
			return "", fmt.Errorf("schema: variable %q is not expressible in grammar syntax", name)
		}
	}

	inhabited := d.InhabitedStates()
	// Classes: one per inhabited (state, label).
	type classKey struct{ q, sym int }
	classes := map[classKey]string{}
	var order []classKey
	for sym, hz := range d.Horiz {
		if hz == nil {
			continue
		}
		seen := map[int]bool{}
		for hs, reach := range ha.ReachableHorizontal(hz, inhabited) {
			if !reach {
				continue
			}
			q := hz.Out[hs]
			if q == alphabet.None || seen[q] {
				continue
			}
			seen[q] = true
			k := classKey{q, sym}
			classes[k] = fmt.Sprintf("n%d_%s", q, d.Names.Syms.Name(sym))
			order = append(order, k)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].q != order[j].q {
			return order[i].q < order[j].q
		}
		return order[i].sym < order[j].sym
	})

	// Prune classes unreachable from the start content (the reduction
	// keeps distinguishable-but-unused states; their classes would only
	// clutter the grammar).
	reach := map[classKey]bool{}
	var stack []classKey
	seed := func(dfa *sfa.DFA) {
		// Only symbols on accepting paths count (completion puts every
		// symbol in the transition tables).
		useful := dfa.ToNFA().UsefulSymbols(inhabited)
		for _, k := range order {
			if k.q < len(useful) && useful[k.q] && !reach[k] {
				reach[k] = true
				stack = append(stack, k)
			}
		}
	}
	seed(d.Final)
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		seed(acceptingInto(d.Horiz[k.sym], k.q))
	}
	kept := order[:0]
	for _, k := range order {
		if reach[k] {
			kept = append(kept, k)
		} else {
			delete(classes, k)
		}
	}
	order = kept

	// Per automaton state: the alternation of grammar tokens producing it.
	tokenOf := func(q int) (string, bool) {
		var alts []string
		if q == textState {
			alts = append(alts, "text")
		}
		for _, k := range order {
			if k.q == q {
				alts = append(alts, classes[k])
			}
		}
		switch len(alts) {
		case 0:
			return "", false
		case 1:
			return alts[0], true
		default:
			return "(" + strings.Join(alts, " | ") + ")", true
		}
	}
	// renderContent turns a DFA over automaton states into grammar content.
	renderContent := func(dfa *sfa.DFA) (string, error) {
		restricted := dfa.Clone()
		for st := 0; st < restricted.NumStates; st++ {
			for q := range restricted.Trans[st] {
				if q >= len(inhabited) || !inhabited[q] {
					delete(restricted.Trans[st], q)
				}
			}
		}
		e := sre.FromDFA(restricted.Minimize(), func(q int) string { return fmt.Sprintf("q%d", q) })
		if e.Kind == sre.KEmpty {
			return "", fmt.Errorf("schema: empty content language")
		}
		out, err := substituteTokens(e, tokenOf)
		if err != nil {
			return "", err
		}
		if out == "()" {
			return "empty", nil
		}
		return out, nil
	}

	var b strings.Builder
	start, err := renderContent(d.Final)
	if err != nil {
		return "", fmt.Errorf("schema: start: %w (is the language empty?)", err)
	}
	fmt.Fprintf(&b, "start = %s\n", start)
	for _, k := range order {
		content, err := renderContent(acceptingInto(d.Horiz[k.sym], k.q))
		if err != nil {
			return "", fmt.Errorf("schema: class %s: %w", classes[k], err)
		}
		fmt.Fprintf(&b, "define %s = element %s { %s }\n",
			classes[k], d.Names.Syms.Name(k.sym), content)
	}
	return b.String(), nil
}

// acceptingInto marks the horizontal states producing q as accepting.
func acceptingInto(hz *ha.Horiz, q int) *sfa.DFA {
	dfa := hz.DFA.Clone()
	for hs := range dfa.Accept {
		dfa.Accept[hs] = hs < len(hz.Out) && hz.Out[hs] == q
	}
	return dfa
}

// substituteTokens renders a regex over q<i> symbols with tokens.
func substituteTokens(e *sre.Expr, tokenOf func(q int) (string, bool)) (string, error) {
	var render func(e *sre.Expr, prec int) (string, error)
	render = func(e *sre.Expr, prec int) (string, error) {
		switch e.Kind {
		case sre.KEps:
			return "()", nil
		case sre.KSym:
			var q int
			fmt.Sscanf(e.Name, "q%d", &q)
			tok, ok := tokenOf(q)
			if !ok {
				return "", fmt.Errorf("state q%d has no grammar token", q)
			}
			return tok, nil
		case sre.KCat:
			parts := make([]string, len(e.Subs))
			for i, s := range e.Subs {
				p, err := render(s, 2)
				if err != nil {
					return "", err
				}
				parts[i] = p
			}
			out := strings.Join(parts, ", ")
			if prec > 1 {
				out = "(" + out + ")"
			}
			return out, nil
		case sre.KAlt:
			parts := make([]string, len(e.Subs))
			for i, s := range e.Subs {
				p, err := render(s, 1)
				if err != nil {
					return "", err
				}
				parts[i] = p
			}
			out := strings.Join(parts, " | ")
			if prec > 0 {
				out = "(" + out + ")"
			}
			return out, nil
		case sre.KStar:
			p, err := render(e.Subs[0], 2)
			if err != nil {
				return "", err
			}
			return p + "*", nil
		default:
			return "", fmt.Errorf("unexpected regex node %d", e.Kind)
		}
	}
	return render(e, 0)
}
