package schema

import (
	"strings"
	"testing"

	"xpe/internal/ha"
	"xpe/internal/hedge"
)

func TestToGrammarRoundTrip(t *testing.T) {
	grammars := []string{
		docGrammar,
		`
start = list
element list { odd (even odd)* }
define odd = element item { text }
define even = element item { empty }
`,
		`
start = a | b b
element a { (a | b)* }
element b { empty }
`,
	}
	for _, src := range grammars {
		names := ha.NewNames()
		s := MustParseGrammar(src, names)
		emitted, err := ToGrammar(s)
		if err != nil {
			t.Fatalf("ToGrammar: %v\n(grammar: %s)", err, src)
		}
		back, err := ParseGrammar(emitted, names)
		if err != nil {
			t.Fatalf("emitted grammar does not re-parse: %v\n%s", err, emitted)
		}
		eq, err := Equivalent(s, back)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("emission changed the language:\noriginal: %s\nemitted:\n%s", src, emitted)
		}
	}
}

func TestToGrammarOfTransformOutput(t *testing.T) {
	// The Section 8 loop closed: transform a schema, emit the output as a
	// grammar, re-parse, and compare languages.
	names := ha.NewNames()
	s := MustParseGrammar(docGrammar, names)
	cq := compileQuery(t, names, "fig sec* [* ; doc ; *]")
	out, err := TransformDelete(s, cq)
	if err != nil {
		t.Fatal(err)
	}
	emitted, err := ToGrammar(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(emitted, "element") {
		t.Fatalf("no classes emitted:\n%s", emitted)
	}
	back, err := ParseGrammar(emitted, names)
	if err != nil {
		t.Fatalf("emitted transform grammar does not re-parse: %v\n%s", err, emitted)
	}
	eq, err := Equivalent(out, back)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("emission changed the transformed language:\n%s", emitted)
	}
	// Sanity: the emitted grammar must reject figure-bearing documents.
	if back.DHA.Accepts(hedge.MustParse("doc<sec<fig>>")) {
		t.Fatal("deleted figures reappeared")
	}
}

func TestToGrammarRejectsForeignVariables(t *testing.T) {
	names := ha.NewNames()
	names.Syms.Intern("a")
	names.Vars.Intern("weird")
	b := ha.NewBuilder(names)
	b.Iota("weird", "qw")
	b.MustRule("a", "qa", "qw*")
	b.MustFinal("qa")
	s := FromNHA(b.Build())
	if _, err := ToGrammar(s); err == nil {
		t.Fatal("non-text variables must be rejected")
	}
}
