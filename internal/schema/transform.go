package schema

import (
	"fmt"

	"xpe/internal/core"
	"xpe/internal/ha"
	"xpe/internal/sfa"
)

// ResultShape selects what the select query returns per located node, and
// therefore what the output schema describes.
type ResultShape int

const (
	// Subhedges: the output schema describes the subhedge (child forest)
	// of located nodes.
	Subhedges ResultShape = iota
	// Subtrees: the output schema describes the located node together with
	// its subhedge, a⟨u⟩.
	Subtrees
)

// TransformSelect computes the output schema of a selection query
// (Section 8): the set of results the query can produce over any document
// of the input schema. The construction builds the match-identifying
// automaton (schema ⊗ M↓e₁ ⊗ M↑e₂), analyses which marked states are
// useful (inhabited and occurring in an accepting computation), and emits
// an automaton whose final set collects the results at those states.
func TransformSelect(s *Schema, cq *core.CompiledQuery, shape ResultShape) (*Schema, error) {
	m, err := core.BuildMatchAutomaton(s.DHA, cq)
	if err != nil {
		return nil, err
	}
	usefulMarked := usefulMarkedStates(m)
	out := ha.NewNHA(m.Names)
	out.NumStates = m.NHA.NumStates
	out.Iota = m.NHA.Iota
	out.Rules = m.NHA.Rules
	switch shape {
	case Subhedges:
		// Final = ⋃ α⁻¹(a, st) over useful marked states st.
		fin := sfa.EmptyLang(out.NumStates)
		for i := range m.NHA.Rules {
			if usefulMarked[m.NHA.Rules[i].Result] {
				fin = sfa.Union(fin, m.NHA.Rules[i].Lang)
			}
		}
		out.Final = fin
	case Subtrees:
		var syms []int
		for st, ok := range usefulMarked {
			if ok {
				syms = append(syms, st)
			}
		}
		out.Final = sfa.SymbolSetLang(out.NumStates, syms)
	default:
		return nil, fmt.Errorf("schema: unknown result shape %d", shape)
	}
	return FromNHA(out), nil
}

// TransformDelete computes the output schema of a delete query: the
// documents of the input schema with every located subtree removed. By
// Theorem 5 the match-identifying automaton assigns marked states exactly
// to located nodes in its unique successful computation, so erasing marked
// useful states from every horizontal language (the erasing homomorphism of
// Section 8) yields exactly the post-deletion documents.
func TransformDelete(s *Schema, cq *core.CompiledQuery) (*Schema, error) {
	m, err := core.BuildMatchAutomaton(s.DHA, cq)
	if err != nil {
		return nil, err
	}
	usefulMarked := usefulMarkedStates(m)
	erase := func(sym int) bool { return sym < len(usefulMarked) && usefulMarked[sym] }
	out := ha.NewNHA(m.Names)
	out.NumStates = m.NHA.NumStates
	out.Iota = m.NHA.Iota
	for _, r := range m.NHA.Rules {
		if usefulMarked[r.Result] {
			// A located node never survives deletion; its rule is dropped
			// (its content constrained the original document only).
			continue
		}
		out.Rules = append(out.Rules, ha.Rule{Sym: r.Sym, Result: r.Result, Lang: r.Lang.EraseSymbols(erase)})
	}
	out.Final = m.NHA.Final.EraseSymbols(erase)
	return FromNHA(out), nil
}

// TransformRename computes the output schema of renaming every located
// node to newLabel (a third query operation in the spirit of Section 8).
// Located nodes keep their content; only their label changes, so the
// match automaton's rules for marked useful states move to the new symbol.
func TransformRename(s *Schema, cq *core.CompiledQuery, newLabel string) (*Schema, error) {
	m, err := core.BuildMatchAutomaton(s.DHA, cq)
	if err != nil {
		return nil, err
	}
	usefulMarked := usefulMarkedStates(m)
	newSym := m.Names.Syms.Intern(newLabel)
	out := ha.NewNHA(m.Names)
	out.NumStates = m.NHA.NumStates
	out.Iota = m.NHA.Iota
	out.Final = m.NHA.Final
	for _, r := range m.NHA.Rules {
		sym := r.Sym
		if usefulMarked[r.Result] {
			sym = newSym
		}
		out.Rules = append(out.Rules, ha.Rule{Sym: sym, Result: r.Result, Lang: r.Lang})
	}
	return FromNHA(out), nil
}

// usefulMarkedStates reports which marked states of the match automaton are
// inhabited and occur in some accepting computation.
func usefulMarkedStates(m *core.MatchAutomaton) []bool {
	inhabited := m.NHA.InhabitedStates()
	useful := make([]bool, m.NHA.NumStates)
	// Top-down: states occurring usefully in the final set, then in rule
	// languages of useful states.
	mark := func(bits []bool) bool {
		changed := false
		for st, ok := range bits {
			if ok && !useful[st] {
				useful[st] = true
				changed = true
			}
		}
		return changed
	}
	mark(m.NHA.Final.UsefulSymbols(inhabited))
	for changed := true; changed; {
		changed = false
		for i := range m.NHA.Rules {
			r := &m.NHA.Rules[i]
			if !useful[r.Result] || !inhabited[r.Result] {
				continue
			}
			if mark(r.Lang.UsefulSymbols(inhabited)) {
				changed = true
			}
		}
	}
	out := make([]bool, m.NHA.NumStates)
	for st := range out {
		out[st] = useful[st] && inhabited[st] && m.Marked[st]
	}
	return out
}
