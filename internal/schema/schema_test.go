package schema

import (
	"math/rand"
	"testing"

	"xpe/internal/core"
	"xpe/internal/ha"
	"xpe/internal/hedge"
)

const docGrammar = `
# A small document grammar.
start = doc
element doc { (sec | par)* }
element sec { (sec | fig | par)* }
element fig { empty }
element par { text* }
`

func TestParseGrammar(t *testing.T) {
	names := ha.NewNames()
	s, err := ParseGrammar(docGrammar, names)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		src  string
		want bool
	}{
		{"doc", true},
		{"doc<sec<fig> par<$x>>", false}, // $x is not the text variable
		{"doc<sec<fig>>", true},
		{"doc<par>", true},
		{"doc doc", false},
		{"sec", false},
		{"doc<fig>", false}, // fig not allowed directly under doc
	}
	for _, c := range cases {
		h := hedge.MustParse(c.src)
		if got := s.DHA.Accepts(h); got != c.want {
			t.Errorf("Accepts(%q) = %v, want %v", c.src, got, c.want)
		}
	}
	// Text leaves use the dedicated variable.
	text := hedge.Hedge{hedge.NewElem("doc", hedge.NewElem("par", hedge.NewVar(TextVar)))}
	if !s.DHA.Accepts(text) {
		t.Fatal("par with text should be accepted")
	}
}

func TestParseGrammarRegularity(t *testing.T) {
	// Two classes share the label "item" — beyond local tree grammars.
	src := `
start = list
element list { odd (even odd)* }
define odd = element item { text }
define even = element item { empty }
`
	names := ha.NewNames()
	s, err := ParseGrammar(src, names)
	if err != nil {
		t.Fatal(err)
	}
	text := func() *hedge.Node { return hedge.NewVar(TextVar) }
	okDoc := hedge.Hedge{hedge.NewElem("list",
		hedge.NewElem("item", text()),
		hedge.NewElem("item"),
		hedge.NewElem("item", text()),
	)}
	if !s.DHA.Accepts(okDoc) {
		t.Fatal("alternating list should be accepted")
	}
	badDoc := hedge.Hedge{hedge.NewElem("list",
		hedge.NewElem("item", text()),
		hedge.NewElem("item", text()),
	)}
	if s.DHA.Accepts(badDoc) {
		t.Fatal("two odd items in a row should be rejected")
	}
}

func TestParseGrammarErrors(t *testing.T) {
	names := ha.NewNames()
	bad := []string{
		"",
		"start = doc", // no elements
		"element doc { undefinedclass }\nstart = doc",
		"element doc { }", // no start
		"element doc { sec }\nelement doc {}\nstart = doc", // duplicate class
		"garbage",
	}
	for _, src := range bad {
		if _, err := ParseGrammar(src, names); err == nil {
			t.Errorf("ParseGrammar(%q) succeeded, want error", src)
		}
	}
}

func compileQuery(t *testing.T, names *ha.Names, qsrc string) *core.CompiledQuery {
	t.Helper()
	q, err := core.ParseQuery(qsrc)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := core.CompileQuery(q, names)
	if err != nil {
		t.Fatal(err)
	}
	return cq
}

func TestTransformSelectSubtreesHandVerified(t *testing.T) {
	names := ha.NewNames()
	s := MustParseGrammar(docGrammar, names)
	// Query: sections whose subhedge is only figures.
	cq := compileQuery(t, names, "select(fig*; [* ; sec ; *] (sec|doc)*)")
	out, err := TransformSelect(s, cq, Subtrees)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		src  string
		want bool
	}{
		{"sec", true}, // empty section qualifies (ε ∈ fig*)
		{"sec<fig>", true},
		{"sec<fig fig fig>", true},
		{"sec<par>", false},
		{"sec<sec<fig>>", false}, // contains a section, not fig*
		{"fig", false},
		{"doc", false},
		{"sec sec", false}, // a single node is selected, not a pair
	}
	for _, c := range cases {
		h := hedge.MustParse(c.src)
		if got := out.DHA.Accepts(h); got != c.want {
			t.Errorf("select output Accepts(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestTransformSelectSubhedges(t *testing.T) {
	names := ha.NewNames()
	s := MustParseGrammar(docGrammar, names)
	cq := compileQuery(t, names, "select(fig*; [* ; sec ; *] (sec|doc)*)")
	out, err := TransformSelect(s, cq, Subhedges)
	if err != nil {
		t.Fatal(err)
	}
	if !out.DHA.Accepts(nil) {
		t.Fatal("ε (empty section content) should be in the output")
	}
	if !out.DHA.Accepts(hedge.MustParse("fig fig")) {
		t.Fatal("fig fig should be in the output")
	}
	if out.DHA.Accepts(hedge.MustParse("par")) {
		t.Fatal("par should not be in the output")
	}
}

func TestTransformSelectSampledContainment(t *testing.T) {
	names := ha.NewNames()
	s := MustParseGrammar(docGrammar, names)
	queries := []string{
		"fig sec* [* ; doc ; *]",
		"select(fig*; [* ; sec ; *] (sec|doc)*)",
		"[* ; fig ; par (sec|fig|par)*] (sec|doc)*",
	}
	rng := rand.New(rand.NewSource(3))
	for _, qsrc := range queries {
		cq := compileQuery(t, names, qsrc)
		outSub, err := TransformSelect(s, cq, Subhedges)
		if err != nil {
			t.Fatal(err)
		}
		outTree, err := TransformSelect(s, cq, Subtrees)
		if err != nil {
			t.Fatal(err)
		}
		sampler, ok := ha.NewSampler(s.DHA, rng)
		if !ok {
			t.Fatal("schema empty")
		}
		found := 0
		for i := 0; i < 60; i++ {
			doc, ok := sampler.Sample(4)
			if !ok {
				t.Fatal("sample failed")
			}
			res := cq.Select(doc)
			for n := range res.Located {
				found++
				if !outSub.DHA.Accepts(hedge.Hedge(n.Children)) {
					t.Fatalf("%q: located subhedge %q not in output schema", qsrc, hedge.Hedge(n.Children))
				}
				tree := hedge.Hedge{n}
				if !outTree.DHA.Accepts(tree) {
					t.Fatalf("%q: located subtree %q not in output schema", qsrc, tree)
				}
			}
		}
		if found == 0 {
			t.Fatalf("%q: sampling never located a node; test vacuous", qsrc)
		}
	}
}

func TestTransformDelete(t *testing.T) {
	names := ha.NewNames()
	s := MustParseGrammar(docGrammar, names)
	queries := []string{
		"fig sec* [* ; doc ; *]",
		"select(fig*; [* ; sec ; *] (sec|doc)*)",
		"par (sec|doc)*",
	}
	rng := rand.New(rand.NewSource(9))
	for _, qsrc := range queries {
		cq := compileQuery(t, names, qsrc)
		out, err := TransformDelete(s, cq)
		if err != nil {
			t.Fatal(err)
		}
		sampler, ok := ha.NewSampler(s.DHA, rng)
		if !ok {
			t.Fatal("schema empty")
		}
		checked := 0
		for i := 0; i < 60; i++ {
			doc, ok := sampler.Sample(4)
			if !ok {
				t.Fatal("sample failed")
			}
			res := cq.Select(doc)
			deleted := doc.RemoveNodes(res.Located)
			if !out.DHA.Accepts(deleted) {
				t.Fatalf("%q: post-deletion document %q (from %q) rejected by output schema",
					qsrc, deleted, doc)
			}
			if len(res.Located) > 0 {
				checked++
			}
		}
		if checked == 0 {
			t.Fatalf("%q: no sampled document had located nodes; test vacuous", qsrc)
		}
	}
}

func TestTransformDeleteNegative(t *testing.T) {
	// After deleting all figures under doc, no document of the output
	// schema contains a figure under a section chain... the output schema
	// must reject documents that still contain such figures.
	names := ha.NewNames()
	s := MustParseGrammar(docGrammar, names)
	cq := compileQuery(t, names, "fig sec* [* ; doc ; *]")
	out, err := TransformDelete(s, cq)
	if err != nil {
		t.Fatal(err)
	}
	if out.DHA.Accepts(hedge.MustParse("doc<sec<fig>>")) {
		t.Fatal("document with a surviving figure should be rejected")
	}
	if !out.DHA.Accepts(hedge.MustParse("doc<sec<par>>")) {
		t.Fatal("figure-free document should be accepted")
	}
	if !out.DHA.Accepts(hedge.MustParse("doc<sec>")) {
		t.Fatal("emptied section should be accepted")
	}
}
