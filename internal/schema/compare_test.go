package schema

import (
	"testing"

	"xpe/internal/core"
	"xpe/internal/ha"
	"xpe/internal/hedge"
)

// compileQueryErr is compileQuery returning the error.
func compileQueryErr(names *ha.Names, qsrc string) (*core.CompiledQuery, error) {
	q, err := core.ParseQuery(qsrc)
	if err != nil {
		return nil, err
	}
	return core.CompileQuery(q, names)
}

func TestEquivalentAndIncludes(t *testing.T) {
	names := ha.NewNames()
	a := MustParseGrammar(`
start = doc
element doc { sec* }
element sec { fig* }
element fig { empty }
`, names)
	// Same language, different grammar shape.
	b := MustParseGrammar(`
start = doc2
define doc2 = element doc { sec2* }
define sec2 = element sec { fig2* }
define fig2 = element fig { empty }
`, names)
	// A strictly larger language (sections may also hold sections).
	c := MustParseGrammar(`
start = doc3
define doc3 = element doc { sec3* }
define sec3 = element sec { (sec3 | fig3)* }
define fig3 = element fig { empty }
`, names)

	eq, err := Equivalent(a, b)
	if err != nil || !eq {
		t.Fatalf("a ≡ b expected (err=%v)", err)
	}
	eq, err = Equivalent(a, c)
	if err != nil || eq {
		t.Fatalf("a ≢ c expected (err=%v)", err)
	}
	inc, err := Includes(c, a)
	if err != nil || !inc {
		t.Fatalf("c ⊇ a expected (err=%v)", err)
	}
	inc, err = Includes(a, c)
	if err != nil || inc {
		t.Fatalf("a ⊉ c expected (err=%v)", err)
	}
}

func TestTransformRename(t *testing.T) {
	names := ha.NewNames()
	s := MustParseGrammar(docGrammar, names)
	// Rename sections-of-only-figures to "gallery".
	cq := compileQuery(t, names, "select(fig*; [* ; sec ; *] (sec|doc)*)")
	out, err := TransformRename(s, cq, "gallery")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		src  string
		want bool
	}{
		{"doc<gallery<fig fig>>", true},
		{"doc<sec<fig fig>>", false},         // a located node must be renamed
		{"doc<sec<par>>", true},              // unlocated sections keep their label
		{"doc<gallery<par>>", false},         // non-matching sections cannot be renamed
		{"doc<sec<gallery<fig> par>>", true}, // nested rename inside a surviving sec
		{"doc", true},
	}
	for _, c := range cases {
		h := hedge.MustParse(c.src)
		if got := out.DHA.Accepts(h); got != c.want {
			t.Errorf("rename output Accepts(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestTransformRenameRoundTripOnDocuments(t *testing.T) {
	names := ha.NewNames()
	s := MustParseGrammar(docGrammar, names)
	cq := compileQuery(t, names, "fig sec* [* ; doc ; *]")
	out, err := TransformRename(s, cq, "image")
	if err != nil {
		t.Fatal(err)
	}
	// Every renamed document must be accepted by the output schema.
	docs := []string{
		"doc<sec<fig par>>",
		"doc<sec<sec<fig> fig>>",
		"doc<par>",
	}
	for _, src := range docs {
		h := hedge.MustParse(src)
		if !s.DHA.Accepts(h) {
			t.Fatalf("test document %q outside input schema", src)
		}
		q2, err := compileQueryErr(names, "fig sec* [* ; doc ; *]")
		if err != nil {
			t.Fatal(err)
		}
		res := q2.Select(h)
		renamed := h.Clone()
		// Locate again on the clone (node identity differs).
		res2 := q2.Select(renamed)
		for n := range res2.Located {
			n.Name = "image"
		}
		_ = res
		if !out.DHA.Accepts(renamed) {
			t.Fatalf("renamed document %q rejected by rename output schema", renamed)
		}
	}
}
