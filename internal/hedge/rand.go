package hedge

import "math/rand"

// RandConfig parameterizes random hedge generation for tests and property
// checks.
type RandConfig struct {
	Symbols  []string // Σ labels (must be non-empty)
	Vars     []string // X variables (may be empty)
	MaxDepth int      // maximum height
	MaxWidth int      // maximum children / top-level nodes
}

// DefaultRandConfig is a small configuration suitable for exhaustive-ish
// property testing.
func DefaultRandConfig() RandConfig {
	return RandConfig{
		Symbols:  []string{"a", "b", "c"},
		Vars:     []string{"x", "y"},
		MaxDepth: 4,
		MaxWidth: 3,
	}
}

// Random generates a random hedge according to cfg.
func Random(rng *rand.Rand, cfg RandConfig) Hedge {
	return randomHedge(rng, cfg, cfg.MaxDepth)
}

func randomHedge(rng *rand.Rand, cfg RandConfig, depth int) Hedge {
	if depth <= 0 {
		return nil
	}
	width := rng.Intn(cfg.MaxWidth + 1)
	h := make(Hedge, 0, width)
	for i := 0; i < width; i++ {
		if len(cfg.Vars) > 0 && rng.Intn(3) == 0 {
			h = append(h, NewVar(cfg.Vars[rng.Intn(len(cfg.Vars))]))
			continue
		}
		n := NewElem(cfg.Symbols[rng.Intn(len(cfg.Symbols))])
		n.Children = randomHedge(rng, cfg, depth-1)
		h = append(h, n)
	}
	return h
}

// RandomNonEmpty generates a random hedge with at least one element node.
func RandomNonEmpty(rng *rand.Rand, cfg RandConfig) Hedge {
	for {
		h := Random(rng, cfg)
		hasElem := false
		h.Visit(func(_ Path, n *Node) bool {
			if n.Kind == Elem {
				hasElem = true
			}
			return !hasElem
		})
		if hasElem {
			return h
		}
	}
}

// RandomPointed generates a random pointed hedge: a random hedge with one
// random element node's children replaced by η.
func RandomPointed(rng *rand.Rand, cfg RandConfig) Hedge {
	h := RandomNonEmpty(rng, cfg)
	var elems []Path
	h.Visit(func(p Path, n *Node) bool {
		if n.Kind == Elem {
			elems = append(elems, p.Clone())
		}
		return true
	})
	p := elems[rng.Intn(len(elems))]
	out, err := h.Envelope(p)
	if err != nil {
		panic(err) // unreachable: p addresses an element
	}
	return out
}

// RandomSized generates a hedge with approximately want nodes, by repeatedly
// appending random trees. It is used by the scaling benchmarks.
func RandomSized(rng *rand.Rand, cfg RandConfig, want int) Hedge {
	var h Hedge
	total := 0
	for total < want {
		t := randomHedge(rng, cfg, cfg.MaxDepth)
		if len(t) == 0 {
			t = Hedge{NewElem(cfg.Symbols[rng.Intn(len(cfg.Symbols))])}
		}
		h = append(h, t...)
		total += t.Size()
	}
	return h
}
