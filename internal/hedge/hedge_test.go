package hedge

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseAndString(t *testing.T) {
	cases := []struct {
		in, out string
	}{
		{"a", "a"},
		{"a b", "a b"},
		{"a<$x>", "a<$x>"},
		{"a b<b $x>", "a b<b $x>"}, // paper's a⟨ε⟩b⟨b⟨ε⟩x⟩
		{"d<p<$x> p<$y>> d<p<$x>>", "d<p<$x> p<$y>> d<p<$x>>"},
		{"c<~z> c<~z>", "c<~z> c<~z>"},
		{"a<$x> b<@>", "a<$x> b<@>"},
		{"a,b,c", "a b c"},
		{"  a  <  b ,, c >  ", "a<b c>"},
		{"", ""},
	}
	for _, c := range cases {
		h, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := h.String(); got != c.out {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.out)
		}
		// Round trip.
		h2, err := Parse(h.String())
		if err != nil || !h.Equal(h2) {
			t.Errorf("round trip failed for %q", c.in)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"<", "a<", "a>", "$", "~", "a<b", "@", "a<@ b>", "@ a"}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestCeil(t *testing.T) {
	h := MustParse("a<$x> b<b $x>")
	got := strings.Join(h.Ceil(), "")
	if got != "ab" {
		t.Fatalf("Ceil = %q, want ab", got)
	}
	if len(Hedge(nil).Ceil()) != 0 {
		t.Fatal("ceil of ε should be empty")
	}
	inner := h[1].Children.Ceil()
	if strings.Join(inner, ",") != "b,x" {
		t.Fatalf("inner ceil = %v", inner)
	}
}

func TestSizeDepth(t *testing.T) {
	h := MustParse("a<b<c>> d")
	if h.Size() != 4 {
		t.Fatalf("Size = %d, want 4", h.Size())
	}
	if h.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", h.Depth())
	}
	if Hedge(nil).Size() != 0 || Hedge(nil).Depth() != 0 {
		t.Fatal("empty hedge size/depth should be 0")
	}
}

func TestAtAndPaths(t *testing.T) {
	h := MustParse("b a<a<b $x> b>")
	// Paper's example ba⟨a⟨bx⟩b⟩: first second-level node of second
	// top-level node is at path [1 0].
	n := h.At(Path{1, 0})
	if n == nil || n.Name != "a" {
		t.Fatalf("At([1 0]) = %v", n)
	}
	if h.At(Path{5}) != nil || h.At(Path{1, 0, 0, 9}) != nil {
		t.Fatal("out-of-range At should be nil")
	}
	paths := h.Paths()
	if len(paths) != h.Size() {
		t.Fatalf("Paths count %d != Size %d", len(paths), h.Size())
	}
	if paths[0].String() != "1" {
		t.Fatalf("Dewey rendering = %q", paths[0].String())
	}
}

func TestSubhedgeEnvelope(t *testing.T) {
	// Paper's example: in ba⟨a⟨bx⟩b⟩, the first second-level node of the
	// second top-level node has subhedge bx and envelope ba⟨a⟨η⟩b⟩.
	h := MustParse("b a<a<b $x> b>")
	p := Path{1, 0}
	sub, err := h.Subhedge(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Equal(MustParse("b $x")) {
		t.Fatalf("subhedge = %v", sub)
	}
	env, err := h.Envelope(p)
	if err != nil {
		t.Fatal(err)
	}
	if !env.Equal(MustParse("b a<a<@> b>")) {
		t.Fatalf("envelope = %v", env)
	}
	// Original must be unchanged.
	if !h.Equal(MustParse("b a<a<b $x> b>")) {
		t.Fatal("Envelope mutated the input")
	}
	if _, err := h.Subhedge(Path{9}); err == nil {
		t.Fatal("Subhedge of missing node should error")
	}
	if _, err := h.Envelope(Path{9}); err == nil {
		t.Fatal("Envelope of missing node should error")
	}
}

func TestProductPaperExample(t *testing.T) {
	// Figure 1: (a⟨x⟩b⟨η⟩) ⊕ (a⟨x⟩b⟨c⟨η⟩y⟩) = a⟨x⟩b⟨c⟨a⟨x⟩b⟨η⟩⟩y⟩.
	u := MustParse("a<$x> b<@>")
	v := MustParse("a<$x> b<c<@> $y>")
	got := MustProduct(u, v)
	want := MustParse("a<$x> b<c<a<$x> b<@>> $y>")
	if !got.Equal(want) {
		t.Fatalf("product = %v, want %v", got, want)
	}
}

func TestProductAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultRandConfig()
	for i := 0; i < 200; i++ {
		u := RandomPointed(rng, cfg)
		v := RandomPointed(rng, cfg)
		w := RandomPointed(rng, cfg)
		l := MustProduct(MustProduct(u, v), w)
		r := MustProduct(u, MustProduct(v, w))
		if !l.Equal(r) {
			t.Fatalf("associativity violated:\nu=%v\nv=%v\nw=%v", u, v, w)
		}
	}
}

func TestProductRejectsNonPointed(t *testing.T) {
	pointed := MustParse("a<@>")
	plain := MustParse("a b")
	if _, err := Product(plain, pointed); err == nil {
		t.Fatal("Product should reject non-pointed left operand")
	}
	if _, err := Product(pointed, plain); err == nil {
		t.Fatal("Product should reject non-pointed right operand")
	}
}

func TestIsPointedBase(t *testing.T) {
	if !MustParse("a<$x> b<@>").IsPointedBase() {
		t.Fatal("a⟨x⟩b⟨η⟩ is a pointed base hedge")
	}
	if MustParse("a<$x> b<c<@> $y>").IsPointedBase() {
		t.Fatal("a⟨x⟩b⟨c⟨η⟩y⟩ is not a pointed base hedge")
	}
}

func TestDecomposePaperExample(t *testing.T) {
	// Figure 2: a⟨x⟩b⟨c⟨η⟩y⟩ decomposes into c⟨η⟩y then a⟨x⟩b⟨η⟩.
	h := MustParse("a<$x> b<c<@> $y>")
	bases, err := Decompose(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(bases) != 2 {
		t.Fatalf("got %d bases", len(bases))
	}
	if !bases[0].Hedge().Equal(MustParse("c<@> $y")) {
		t.Fatalf("base 1 = %v", bases[0])
	}
	if !bases[1].Hedge().Equal(MustParse("a<$x> b<@>")) {
		t.Fatalf("base 2 = %v", bases[1])
	}
	if bases[0].Label != "c" || bases[1].Label != "b" {
		t.Fatalf("labels = %q %q", bases[0].Label, bases[1].Label)
	}
}

func TestDecomposeRecomposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultRandConfig()
	for i := 0; i < 300; i++ {
		h := RandomPointed(rng, cfg)
		bases, err := Decompose(h)
		if err != nil {
			t.Fatalf("Decompose(%v): %v", h, err)
		}
		for _, b := range bases {
			if !b.Hedge().IsPointedBase() {
				t.Fatalf("decomposition produced non-base %v", b)
			}
		}
		back, err := Recompose(bases)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(h) {
			t.Fatalf("round trip failed:\n h=%v\n got=%v", h, back)
		}
	}
}

func TestDecompositionOfProductConcatenates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultRandConfig()
	for i := 0; i < 200; i++ {
		u := RandomPointed(rng, cfg)
		v := RandomPointed(rng, cfg)
		du, _ := Decompose(u)
		dv, _ := Decompose(v)
		dp, err := Decompose(MustProduct(u, v))
		if err != nil {
			t.Fatal(err)
		}
		if len(dp) != len(du)+len(dv) {
			t.Fatalf("lengths: %d vs %d+%d", len(dp), len(du), len(dv))
		}
		for j, b := range append(du, dv...) {
			if !dp[j].Hedge().Equal(b.Hedge()) {
				t.Fatalf("base %d differs", j)
			}
		}
	}
}

func TestEtaPathValidation(t *testing.T) {
	if _, err := MustParse("a b").EtaPath(); err == nil {
		t.Fatal("hedge without η should not be pointed")
	}
	two := Hedge{NewElem("a", NewEta()), NewElem("b", NewEta())}
	if _, err := two.EtaPath(); err == nil {
		t.Fatal("hedge with two η should not be pointed")
	}
	notSole := Hedge{NewElem("a", NewEta(), NewVar("x"))}
	if _, err := notSole.EtaPath(); err == nil {
		t.Fatal("η with siblings should not be pointed")
	}
}

func TestValidate(t *testing.T) {
	top := Hedge{NewSubst("z")}
	if err := top.Validate(); err == nil {
		t.Fatal("top-level substitution symbol should be invalid")
	}
	ok := MustParse("a<~z> b<c<~w>>")
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLabels(t *testing.T) {
	h := MustParse("a<b<$x> d<~z>> c<$y>")
	syms, vars, substs := h.Labels()
	if len(syms) != 4 || len(vars) != 2 || len(substs) != 1 {
		t.Fatalf("Labels = %v %v %v", syms, vars, substs)
	}
}

func TestVisitPruning(t *testing.T) {
	h := MustParse("a<b<c>> d")
	var seen []string
	h.Visit(func(p Path, n *Node) bool {
		seen = append(seen, n.Name)
		return n.Name != "b" // prune below b
	})
	if strings.Join(seen, "") != "abd" {
		t.Fatalf("visited %v", seen)
	}
}

func TestCloneIndependence(t *testing.T) {
	h := MustParse("a<b>")
	c := h.Clone()
	c[0].Children[0].Name = "zz"
	if h[0].Children[0].Name != "b" {
		t.Fatal("Clone shares structure")
	}
}

func TestRandomGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := DefaultRandConfig()
	for i := 0; i < 100; i++ {
		h := Random(rng, cfg)
		if h.Depth() > cfg.MaxDepth {
			t.Fatal("Random exceeded MaxDepth")
		}
		if err := h.Validate(); err != nil {
			t.Fatal(err)
		}
		p := RandomPointed(rng, cfg)
		if !p.IsPointed() {
			t.Fatalf("RandomPointed produced non-pointed %v", p)
		}
	}
	big := RandomSized(rng, cfg, 1000)
	if big.Size() < 1000 {
		t.Fatalf("RandomSized too small: %d", big.Size())
	}
}

func TestEnvelopeDecompositionShape(t *testing.T) {
	// The decomposition of the envelope of node n lists, bottom-up, one
	// base per ancestor level of n, starting with n's own level.
	h := MustParse("b a<a<b $x> b>")
	env, _ := h.Envelope(Path{1, 0})
	bases, err := Decompose(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(bases) != 2 {
		t.Fatalf("got %d bases", len(bases))
	}
	// Innermost base: ε a⟨η⟩ b  (n's elder siblings ε, label a, younger b).
	if len(bases[0].Left) != 0 || bases[0].Label != "a" || !bases[0].Right.Equal(MustParse("b")) {
		t.Fatalf("base 1 = %+v", bases[0])
	}
	// Top base: b a⟨η⟩ ε.
	if !bases[1].Left.Equal(MustParse("b")) || bases[1].Label != "a" || len(bases[1].Right) != 0 {
		t.Fatalf("base 2 = %+v", bases[1])
	}
}
