// Package hedge implements the hedge data model of the paper (Definitions
// 1–2): hedges are ordered sequences of ordered trees whose non-leaf nodes
// are labeled with symbols of an alphabet Σ and whose leaf nodes are labeled
// with variables of a set X. Hedges may additionally contain substitution
// symbols (Definition 9), which occur only as sole children of elements;
// the distinguished substitution symbol η makes a hedge pointed (Definition
// 13).
//
// The package provides the ceil operation, Dewey addressing, subhedge and
// envelope extraction (Definition 21), the pointed-hedge product ⊕
// (Definition 14, Figure 1), and the unique decomposition of pointed hedges
// into pointed base hedges (Figure 2).
package hedge

import (
	"fmt"
	"strconv"
	"strings"
)

// NodeKind discriminates hedge nodes.
type NodeKind int

const (
	// Elem is a non-leaf node a⟨u⟩ labeled with a symbol of Σ (u may be ε).
	Elem NodeKind = iota
	// Var is a leaf node labeled with a variable of X.
	Var
	// Subst is a substitution-symbol leaf; it only occurs as the sole
	// child of an Elem node.
	Subst
)

// Eta is the name of the distinguished substitution symbol η of pointed
// hedges.
const Eta = "η"

// TextVar is the conventional variable name for text leaves produced by
// the XML bridge (package xmlhedge) and consumed by schema grammars (the
// "text" builtin).
const TextVar = "#text"

// Node is a single hedge node. Elem nodes own a child hedge; Var and Subst
// nodes are leaves.
type Node struct {
	Kind     NodeKind
	Name     string
	Children Hedge // Elem only
	// Text carries the character data of a text leaf (conventionally a Var
	// named TextVar). It is payload only: Equal, automata, and all
	// structural operations ignore it; Clone preserves it.
	Text string
}

// Hedge is an ordered sequence of nodes; nil is the empty hedge ε.
type Hedge []*Node

// NewElem returns an element node with the given children.
func NewElem(name string, children ...*Node) *Node {
	return &Node{Kind: Elem, Name: name, Children: children}
}

// NewVar returns a variable leaf.
func NewVar(name string) *Node { return &Node{Kind: Var, Name: name} }

// NewSubst returns a substitution-symbol leaf.
func NewSubst(name string) *Node { return &Node{Kind: Subst, Name: name} }

// NewEta returns the η leaf.
func NewEta() *Node { return NewSubst(Eta) }

// Clone returns a deep copy of the node.
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Name: n.Name, Text: n.Text}
	if n.Kind == Elem {
		c.Children = n.Children.Clone()
	}
	return c
}

// Clone returns a deep copy of the hedge.
func (h Hedge) Clone() Hedge {
	if h == nil {
		return nil
	}
	out := make(Hedge, len(h))
	for i, n := range h {
		out[i] = n.Clone()
	}
	return out
}

// Ceil returns the ceil of the hedge (Definition 2): the string of top-level
// labels.
func (h Hedge) Ceil() []string {
	out := make([]string, len(h))
	for i, n := range h {
		out[i] = n.Name
	}
	return out
}

// Size returns the total number of nodes in the hedge.
func (h Hedge) Size() int {
	total := 0
	for _, n := range h {
		total++
		if n.Kind == Elem {
			total += n.Children.Size()
		}
	}
	return total
}

// Depth returns the height of the hedge: 0 for ε, 1 for a flat hedge.
func (h Hedge) Depth() int {
	max := 0
	for _, n := range h {
		d := 1
		if n.Kind == Elem {
			if cd := n.Children.Depth(); cd+1 > d {
				d = cd + 1
			}
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Equal reports structural equality of two hedges.
func (h Hedge) Equal(other Hedge) bool {
	if len(h) != len(other) {
		return false
	}
	for i, n := range h {
		m := other[i]
		if n.Kind != m.Kind || n.Name != m.Name {
			return false
		}
		if n.Kind == Elem && !n.Children.Equal(m.Children) {
			return false
		}
	}
	return true
}

// Path is a Dewey address: the sequence of child indexes from the top level
// of a hedge to a node. The empty path is not a valid node address (it
// denotes the hedge itself).
type Path []int

// String renders the path in Dewey notation, e.g. "2.1.3".
func (p Path) String() string {
	if len(p) == 0 {
		return "ε"
	}
	parts := make([]string, len(p))
	for i, x := range p {
		parts[i] = fmt.Sprint(x + 1) // Dewey numbers are 1-based
	}
	return strings.Join(parts, ".")
}

// AppendString appends the path's Dewey rendering (exactly String's
// output) to dst and returns the extended slice, for callers serializing
// into a reused buffer.
func (p Path) AppendString(dst []byte) []byte {
	if len(p) == 0 {
		return append(dst, "ε"...)
	}
	for i, x := range p {
		if i > 0 {
			dst = append(dst, '.')
		}
		dst = strconv.AppendInt(dst, int64(x+1), 10)
	}
	return dst
}

// Equal reports whether two paths are identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the path.
func (p Path) Clone() Path { return append(Path(nil), p...) }

// At returns the node at path p, or nil if p is out of range.
func (h Hedge) At(p Path) *Node {
	cur := h
	var node *Node
	for _, i := range p {
		if i < 0 || i >= len(cur) {
			return nil
		}
		node = cur[i]
		cur = node.Children
	}
	return node
}

// Visit calls fn for every node of the hedge in document (pre-) order,
// passing the node's Dewey path. Returning false from fn prunes the node's
// subtree (its descendants are skipped).
func (h Hedge) Visit(fn func(p Path, n *Node) bool) {
	var rec func(h Hedge, prefix Path)
	rec = func(h Hedge, prefix Path) {
		for i, n := range h {
			p := append(prefix, i)
			if fn(p, n) && n.Kind == Elem {
				rec(n.Children, p)
			}
		}
	}
	rec(h, nil)
}

// Paths returns the Dewey paths of every node in document order.
func (h Hedge) Paths() []Path {
	var out []Path
	h.Visit(func(p Path, n *Node) bool {
		out = append(out, p.Clone())
		return true
	})
	return out
}

// Subhedge returns the subhedge of the node at path p (Definition 21): the
// hedge comprising all of its descendants, i.e. its child hedge. It returns
// a deep copy.
func (h Hedge) Subhedge(p Path) (Hedge, error) {
	n := h.At(p)
	if n == nil {
		return nil, fmt.Errorf("hedge: no node at path %v", p)
	}
	return n.Children.Clone(), nil
}

// Envelope returns the envelope of the node at path p (Definition 21): a
// copy of the hedge in which the node's subhedge is removed and η is added
// as the node's sole child. The result is a pointed hedge.
func (h Hedge) Envelope(p Path) (Hedge, error) {
	if h.At(p) == nil {
		return nil, fmt.Errorf("hedge: no node at path %v", p)
	}
	out := h.Clone()
	n := out.At(p)
	if n.Kind != Elem {
		return nil, fmt.Errorf("hedge: envelope of non-element node at %v", p)
	}
	n.Children = Hedge{NewEta()}
	return out, nil
}

// HasSubst reports whether the hedge contains any substitution-symbol leaf.
func (h Hedge) HasSubst() bool {
	found := false
	h.Visit(func(_ Path, n *Node) bool {
		if n.Kind == Subst {
			found = true
		}
		return !found
	})
	return found
}

// Validate checks the structural invariant of hedges with substitution
// symbols: a Subst leaf must be the sole child of its parent element, and
// must not occur at the top level.
func (h Hedge) Validate() error { return h.validate(true) }

func (h Hedge) validate(topLevel bool) error {
	for _, n := range h {
		if n.Kind == Subst {
			if topLevel {
				return fmt.Errorf("hedge: substitution symbol %q at top level", n.Name)
			}
			if len(h) != 1 {
				return fmt.Errorf("hedge: substitution symbol %q is not a sole child", n.Name)
			}
		}
		if n.Kind == Elem {
			if err := n.Children.validate(false); err != nil {
				return err
			}
		}
	}
	return nil
}

// Labels returns the distinct Σ labels, X variables, and substitution
// symbols occurring in the hedge.
func (h Hedge) Labels() (syms, vars, substs []string) {
	seenS, seenV, seenZ := map[string]bool{}, map[string]bool{}, map[string]bool{}
	h.Visit(func(_ Path, n *Node) bool {
		switch n.Kind {
		case Elem:
			if !seenS[n.Name] {
				seenS[n.Name] = true
				syms = append(syms, n.Name)
			}
		case Var:
			if !seenV[n.Name] {
				seenV[n.Name] = true
				vars = append(vars, n.Name)
			}
		case Subst:
			if !seenZ[n.Name] {
				seenZ[n.Name] = true
				substs = append(substs, n.Name)
			}
		}
		return true
	})
	return syms, vars, substs
}

// String renders the hedge in the package's term syntax (see Parse).
func (h Hedge) String() string {
	var b strings.Builder
	h.render(&b)
	return b.String()
}

func (h Hedge) render(b *strings.Builder) {
	for i, n := range h {
		if i > 0 {
			b.WriteByte(' ')
		}
		n.render(b)
	}
}

func (n *Node) render(b *strings.Builder) {
	switch n.Kind {
	case Var:
		b.WriteByte('$')
		b.WriteString(n.Name)
	case Subst:
		if n.Name == Eta {
			b.WriteByte('@')
		} else {
			b.WriteByte('~')
			b.WriteString(n.Name)
		}
	case Elem:
		b.WriteString(n.Name)
		if len(n.Children) > 0 {
			b.WriteByte('<')
			n.Children.render(b)
			b.WriteByte('>')
		}
	}
}

// String renders a single node as a one-node hedge.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

// AppendString appends the node's term rendering (exactly String's output)
// to dst and returns the extended slice, for callers serializing into a
// reused buffer.
func (n *Node) AppendString(dst []byte) []byte {
	switch n.Kind {
	case Var:
		dst = append(dst, '$')
		dst = append(dst, n.Name...)
	case Subst:
		if n.Name == Eta {
			dst = append(dst, '@')
		} else {
			dst = append(dst, '~')
			dst = append(dst, n.Name...)
		}
	case Elem:
		dst = append(dst, n.Name...)
		if len(n.Children) > 0 {
			dst = append(dst, '<')
			for i, c := range n.Children {
				if i > 0 {
					dst = append(dst, ' ')
				}
				dst = c.AppendString(dst)
			}
			dst = append(dst, '>')
		}
	}
	return dst
}
