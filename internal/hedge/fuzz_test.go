package hedge

import "testing"

// FuzzParse asserts the hedge parser never panics and round-trips.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"a b<b $x>",
		"d<p<$x> p<$y>> d<p<$x>>",
		"a<~z>",
		"b<@>",
		"a<",
		"@ a",
		"$",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		h, err := Parse(src)
		if err != nil {
			return
		}
		again, err := Parse(h.String())
		if err != nil {
			t.Fatalf("rendering of %q does not re-parse: %q: %v", src, h.String(), err)
		}
		if !h.Equal(again) {
			t.Fatalf("round trip changed structure for %q", src)
		}
	})
}
