package hedge

import (
	"errors"
	"fmt"
)

// ErrNotPointed is returned when a hedge does not contain exactly one η as
// the sole child of an element.
var ErrNotPointed = errors.New("hedge: not a pointed hedge")

// EtaPath returns the Dewey path of the η leaf if the hedge is pointed
// (exactly one η, occurring as a sole child), or an error.
func (h Hedge) EtaPath() (Path, error) {
	var found []Path
	h.Visit(func(p Path, n *Node) bool {
		if n.Kind == Subst && n.Name == Eta {
			found = append(found, p.Clone())
		}
		return true
	})
	if len(found) != 1 {
		return nil, fmt.Errorf("%w: %d occurrences of η", ErrNotPointed, len(found))
	}
	p := found[0]
	if len(p) == 0 {
		return nil, fmt.Errorf("%w: η at top level", ErrNotPointed)
	}
	parent := h.At(p[:len(p)-1])
	if len(parent.Children) != 1 {
		return nil, fmt.Errorf("%w: η is not a sole child", ErrNotPointed)
	}
	return p, nil
}

// IsPointed reports whether the hedge is a pointed hedge (Definition 13).
func (h Hedge) IsPointed() bool {
	_, err := h.EtaPath()
	return err == nil
}

// Product computes u ⊕ v (Definition 14): the pointed hedge obtained by
// replacing the η of v with u. Both operands must be pointed; the result is
// pointed (its η is the η of u). Figure 1 of the paper.
func Product(u, v Hedge) (Hedge, error) {
	if _, err := u.EtaPath(); err != nil {
		return nil, fmt.Errorf("left operand: %w", err)
	}
	vp, err := v.EtaPath()
	if err != nil {
		return nil, fmt.Errorf("right operand: %w", err)
	}
	out := v.Clone()
	parent := out.At(vp[:len(vp)-1])
	parent.Children = u.Clone()
	return out, nil
}

// MustProduct is Product, panicking on error; for tests and literals.
func MustProduct(u, v Hedge) Hedge {
	h, err := Product(u, v)
	if err != nil {
		panic(err)
	}
	return h
}

// IsPointedBase reports whether the hedge is a pointed base hedge
// (Definition 15): of the form u₁ a⟨η⟩ u₂ with u₁, u₂ plain hedges.
func (h Hedge) IsPointedBase() bool {
	p, err := h.EtaPath()
	return err == nil && len(p) == 2
}

// Base describes one pointed base hedge u₁ a⟨η⟩ u₂ resulting from
// decomposition: Left is u₁, Label is a, Right is u₂.
type Base struct {
	Left  Hedge
	Label string
	Right Hedge
}

// Hedge reconstructs the pointed base hedge u₁ a⟨η⟩ u₂.
func (b Base) Hedge() Hedge {
	h := b.Left.Clone()
	h = append(h, NewElem(b.Label, NewEta()))
	return append(h, b.Right.Clone()...)
}

// String renders the base in term syntax.
func (b Base) String() string { return b.Hedge().String() }

// Decompose uniquely decomposes a pointed hedge into its sequence of
// pointed base hedges (Figure 2). The sequence begins at the bottom (the
// base containing η's position) and ends at the top level, so that folding
// it with Product from the left reconstructs the original:
//
//	u = b₁ ⊕ b₂ ⊕ … ⊕ bₖ.
func Decompose(h Hedge) ([]Base, error) {
	etaPath, err := h.EtaPath()
	if err != nil {
		return nil, err
	}
	// etaPath addresses η itself; its ancestors are etaPath[:1..len-1].
	// Collect the sibling list of every ancestor level in one walk, then
	// emit bases from the η's parent (deepest) up to the top level.
	levels := make([]Hedge, 0, len(etaPath)-1)
	cur := h
	for _, idx := range etaPath[:len(etaPath)-1] {
		levels = append(levels, cur)
		cur = cur[idx].Children
	}
	bases := make([]Base, 0, len(etaPath)-1)
	for level := len(levels) - 1; level >= 0; level-- {
		siblings := levels[level]
		idx := etaPath[level]
		bases = append(bases, Base{
			Left:  siblings[:idx].Clone(),
			Label: siblings[idx].Name,
			Right: siblings[idx+1:].Clone(),
		})
	}
	return bases, nil
}

// Recompose folds a non-empty base sequence back into a pointed hedge with
// Product: b₁ ⊕ b₂ ⊕ … ⊕ bₖ.
func Recompose(bases []Base) (Hedge, error) {
	if len(bases) == 0 {
		return nil, errors.New("hedge: cannot recompose an empty base sequence")
	}
	acc := bases[0].Hedge()
	for _, b := range bases[1:] {
		var err error
		acc, err = Product(acc, b.Hedge())
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}
