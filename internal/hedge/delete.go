package hedge

// RenameNodes returns a copy of h in which every node of the set carries
// newLabel — the document side of the rename query operation.
func (h Hedge) RenameNodes(rename map[*Node]bool, newLabel string) Hedge {
	out := h.Clone()
	// Walk original and copy in lockstep to transfer the node set.
	var rec func(orig, copy Hedge)
	rec = func(orig, copy Hedge) {
		for i, n := range orig {
			if rename[n] {
				copy[i].Name = newLabel
			}
			if n.Kind == Elem {
				rec(n.Children, copy[i].Children)
			}
		}
	}
	rec(h, out)
	return out
}

// RemoveNodes returns a copy of h with the subtree of every node in the set
// removed (a node inside a removed subtree is simply gone; membership of
// descendants is irrelevant). It implements the document side of the
// delete query of Section 8.
func (h Hedge) RemoveNodes(remove map[*Node]bool) Hedge {
	var out Hedge
	for _, n := range h {
		if remove[n] {
			continue
		}
		c := &Node{Kind: n.Kind, Name: n.Name}
		if n.Kind == Elem {
			c.Children = n.Children.RemoveNodes(remove)
		}
		out = append(out, c)
	}
	return out
}
