package hedge

import (
	"fmt"
	"unicode"
)

// Parse parses the term syntax for hedges used throughout the paper, with
// the following concrete conventions:
//
//	hedge  := node*                       (whitespace- or comma-separated)
//	node   := NAME                        — element a⟨ε⟩, abbreviated a
//	        | NAME '<' hedge '>'          — element a⟨u⟩
//	        | '$' NAME                    — variable leaf x ∈ X
//	        | '~' NAME                    — substitution-symbol leaf z ∈ Z
//	        | '@'                         — the η leaf of pointed hedges
//	NAME   := [A-Za-z_][A-Za-z0-9_.-]*
//
// Example: the paper's hedge a⟨ε⟩b⟨b⟨ε⟩x⟩ is written "a b<b $x>".
func Parse(input string) (Hedge, error) {
	p := &hparser{input: input}
	h, err := p.hedge()
	if err != nil {
		return nil, err
	}
	p.skip()
	if !p.eof() {
		return nil, p.err("unexpected trailing input")
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// MustParse parses input and panics on error; for tests and literals.
func MustParse(input string) Hedge {
	h, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return h
}

type hparser struct {
	input string
	pos   int
}

func (p *hparser) err(msg string) error {
	return fmt.Errorf("hedge: parse error at offset %d in %q: %s", p.pos, p.input, msg)
}

func (p *hparser) eof() bool { return p.pos >= len(p.input) }

func (p *hparser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.input[p.pos]
}

func (p *hparser) skip() {
	for !p.eof() {
		switch p.input[p.pos] {
		case ' ', '\t', '\n', '\r', ',':
			p.pos++
		default:
			return
		}
	}
}

func (p *hparser) hedge() (Hedge, error) {
	var h Hedge
	for {
		p.skip()
		c := p.peek()
		if c == 0 || c == '>' {
			return h, nil
		}
		n, err := p.node()
		if err != nil {
			return nil, err
		}
		h = append(h, n)
	}
}

func (p *hparser) node() (*Node, error) {
	switch c := p.peek(); {
	case c == '@':
		p.pos++
		return NewEta(), nil
	case c == '$':
		p.pos++
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		return NewVar(name), nil
	case c == '~':
		p.pos++
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		return NewSubst(name), nil
	default:
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		n := NewElem(name)
		p.skip()
		if p.peek() == '<' {
			p.pos++
			children, err := p.hedge()
			if err != nil {
				return nil, err
			}
			if p.peek() != '>' {
				return nil, p.err("expected '>'")
			}
			p.pos++
			n.Children = children
		}
		return n, nil
	}
}

func (p *hparser) name() (string, error) {
	start := p.pos
	if p.eof() || !isHNameStart(rune(p.input[p.pos])) {
		return "", p.err("expected a name")
	}
	p.pos++
	for !p.eof() && isHNameRest(rune(p.input[p.pos])) {
		p.pos++
	}
	return p.input[start:p.pos], nil
}

func isHNameStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }

func isHNameRest(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
