package xmlhedge

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"xpe/internal/hedge"
)

// readAll drains rr applying the skip policy: on a recoverable failure it
// records the failure and recovers; it returns the delivered records, the
// failures, and the terminal error (nil for clean EOF).
func readAllSkip(t *testing.T, rr *RecordReader) (recs []Record, fails []error, terminal error) {
	t.Helper()
	for {
		rec, err := rr.Read(nil)
		if err == io.EOF {
			return recs, fails, nil
		}
		if err != nil {
			if !rr.CanRecover() {
				return recs, fails, err
			}
			fails = append(fails, err)
			if rerr := rr.Recover(); rerr != nil {
				return recs, fails, rerr
			}
			continue
		}
		recs = append(recs, rec)
	}
}

// ids extracts the text of each record's first child (the identity marker
// the chaos feeds embed).
func ids(recs []Record) []string {
	var out []string
	for _, r := range recs {
		n := r.Hedge[0]
		if len(n.Children) > 0 && len(n.Children[0].Children) > 0 {
			out = append(out, n.Children[0].Children[0].Text)
		} else {
			out = append(out, "?")
		}
	}
	return out
}

func TestChaosSplitterSkimPreservesPaths(t *testing.T) {
	// Record 1 exceeds MaxNodes; after recovery, record 2's index and path
	// must be exactly what they would have been had record 1 succeeded.
	doc := `<f><r><id>0</id></r><r><id>1</id><a/><b/><c/><d/></r><r><id>2</id></r></f>`
	rr := NewRecordReader(strings.NewReader(doc), RecordOptions{MaxNodes: 4})
	recs, fails, terminal := readAllSkip(t, rr)
	if terminal != nil {
		t.Fatalf("terminal error: %v", terminal)
	}
	if len(fails) != 1 {
		t.Fatalf("failures = %d, want 1", len(fails))
	}
	var le *LimitError
	if !errors.As(fails[0], &le) || le.Kind != "nodes" || le.Record != 1 {
		t.Fatalf("failure = %v, want nodes LimitError for record 1", fails[0])
	}
	if got := ids(recs); len(got) != 2 || got[0] != "0" || got[1] != "2" {
		t.Fatalf("ids = %v, want [0 2]", got)
	}
	if recs[0].Index != 0 || recs[1].Index != 2 {
		t.Fatalf("indices = %d,%d, want 0,2", recs[0].Index, recs[1].Index)
	}
	want0, want2 := hedge.Path{0, 0}, hedge.Path{0, 2}
	if recs[0].Path.String() != want0.String() || recs[1].Path.String() != want2.String() {
		t.Fatalf("paths = %s,%s, want %s,%s", recs[0].Path, recs[1].Path, want0, want2)
	}
}

func TestChaosSplitterResyncMalformedRecord(t *testing.T) {
	// Record 1 has mismatched tags; a named split lets the reader scan to
	// the next <r and continue delivering records 2 and 3.
	doc := `<f><r><id>0</id></r><r><id>1</id><a></b></r><r><id>2</id></r><r><id>3</id></r></f>`
	rr := NewRecordReader(strings.NewReader(doc), RecordOptions{Split: "r"})
	recs, fails, terminal := readAllSkip(t, rr)
	if terminal != nil {
		t.Fatalf("terminal error: %v", terminal)
	}
	if len(fails) != 1 {
		t.Fatalf("failures = %d, want 1: %v", len(fails), fails)
	}
	var rpe *RecordParseError
	if !errors.As(fails[0], &rpe) || rpe.Index != 1 {
		t.Fatalf("failure = %v, want RecordParseError for record 1", fails[0])
	}
	if got := ids(recs); len(got) != 3 || got[0] != "0" || got[1] != "2" || got[2] != "3" {
		t.Fatalf("ids = %v, want [0 2 3]", got)
	}
	// Index numbering must skip the failed record's slot.
	if recs[1].Index != 2 || recs[2].Index != 3 {
		t.Fatalf("indices = %d,%d, want 2,3", recs[1].Index, recs[2].Index)
	}
}

func TestChaosSplitterResyncBrokenBetweenRecords(t *testing.T) {
	// Markup breaks between records (stray close tag); resync must still
	// find the next record start.
	doc := `<f><r><id>0</id></r></x><r><id>1</id></r></f>`
	rr := NewRecordReader(strings.NewReader(doc), RecordOptions{Split: "r"})
	recs, fails, terminal := readAllSkip(t, rr)
	if terminal != nil {
		t.Fatalf("terminal error: %v", terminal)
	}
	if len(fails) != 1 {
		t.Fatalf("failures = %d, want 1: %v", len(fails), fails)
	}
	if got := ids(recs); len(got) != 2 || got[0] != "0" || got[1] != "1" {
		t.Fatalf("ids = %v, want [0 1]", got)
	}
}

func TestChaosSplitterResyncIgnoresDecoys(t *testing.T) {
	// After the malformed record, "<r" appears inside a comment, a CDATA
	// section, and an attribute value before the real next record; the
	// scanner must skip all three decoys.
	doc := `<f><r><id>0</id><broken></r>` +
		`<!-- <r>decoy</r> -->` +
		`<x a="<r>"><![CDATA[<r>decoy</r>]]></x>` +
		`<r><id>1</id></r></f>`
	rr := NewRecordReader(strings.NewReader(doc), RecordOptions{Split: "r"})
	recs, fails, terminal := readAllSkip(t, rr)
	if terminal != nil {
		t.Fatalf("terminal error: %v", terminal)
	}
	if len(fails) == 0 {
		t.Fatalf("expected at least one failure")
	}
	got := ids(recs)
	if len(got) == 0 || got[len(got)-1] != "1" {
		t.Fatalf("ids = %v, want last record id 1", got)
	}
	for _, id := range got {
		if id == "?" {
			t.Fatalf("a decoy was mistaken for a record: ids = %v", got)
		}
	}
}

func TestChaosSplitterLongerNameNotMistaken(t *testing.T) {
	// Split name "r" must not match records named "rec".
	doc := `<f><r><id>0</id></r><r><id>bad</id><broken></r><rec><id>X</id></rec><r><id>1</id></r></f>`
	rr := NewRecordReader(strings.NewReader(doc), RecordOptions{Split: "r"})
	recs, _, terminal := readAllSkip(t, rr)
	if terminal != nil {
		t.Fatalf("terminal error: %v", terminal)
	}
	if got := ids(recs); len(got) != 2 || got[0] != "0" || got[1] != "1" {
		t.Fatalf("ids = %v, want [0 1]", got)
	}
}

func TestChaosSplitterTruncationEndsStream(t *testing.T) {
	doc := `<f><r><id>0</id></r><r><id>1</id><a>`
	rr := NewRecordReader(strings.NewReader(doc), RecordOptions{Split: "r"})
	recs, fails, terminal := readAllSkip(t, rr)
	if terminal != nil {
		t.Fatalf("terminal error: %v", terminal)
	}
	if len(fails) != 1 {
		t.Fatalf("failures = %d, want 1: %v", len(fails), fails)
	}
	if got := ids(recs); len(got) != 1 || got[0] != "0" {
		t.Fatalf("ids = %v, want [0]", got)
	}
	// The reader must stay at EOF afterwards.
	if _, err := rr.Read(nil); err != io.EOF {
		t.Fatalf("post-recovery read = %v, want io.EOF", err)
	}
}

func TestChaosSplitterDefaultSplitUnrecoverable(t *testing.T) {
	// Without a named split there is no delimiter to resync on: malformed
	// markup is terminal.
	doc := `<f><r><id>0</id></r><r><id>1</id><a></b></r><r><id>2</id></r></f>`
	rr := NewRecordReader(strings.NewReader(doc), RecordOptions{})
	_, _, terminal := readAllSkip(t, rr)
	if terminal == nil {
		t.Fatalf("expected a terminal error")
	}
	if rr.CanRecover() {
		t.Fatalf("CanRecover() = true for a default-split syntax error")
	}
}

func TestChaosSplitterRecordBytesBudget(t *testing.T) {
	big := `<r><id>1</id>` + strings.Repeat("<pad>xxxxxxxx</pad>", 64) + `</r>`
	doc := `<f><r><id>0</id></r>` + big + `<r><id>2</id></r></f>`
	rr := NewRecordReader(strings.NewReader(doc), RecordOptions{Split: "r", MaxBytes: 128})
	recs, fails, terminal := readAllSkip(t, rr)
	if terminal != nil {
		t.Fatalf("terminal error: %v", terminal)
	}
	if len(fails) != 1 {
		t.Fatalf("failures = %d, want 1: %v", len(fails), fails)
	}
	var le *LimitError
	if !errors.As(fails[0], &le) || le.Kind != "bytes" {
		t.Fatalf("failure = %v, want bytes LimitError", fails[0])
	}
	if got := ids(recs); len(got) != 2 || got[0] != "0" || got[1] != "2" {
		t.Fatalf("ids = %v, want [0 2]", got)
	}
}

func TestChaosSplitterStreamBudgetFatal(t *testing.T) {
	doc := `<f>` + strings.Repeat(`<r><id>0</id></r>`, 100) + `</f>`
	rr := NewRecordReader(strings.NewReader(doc), RecordOptions{Split: "r", MaxStreamBytes: 200})
	_, _, terminal := readAllSkip(t, rr)
	var le *LimitError
	if !errors.As(terminal, &le) || le.Kind != "stream" {
		t.Fatalf("terminal = %v, want stream LimitError", terminal)
	}
	if rr.CanRecover() {
		t.Fatalf("CanRecover() = true for an exhausted stream budget")
	}
}

func TestChaosSplitterContextCancelMidRecord(t *testing.T) {
	// A record wide enough to exceed the 256-token poll interval; cancel
	// before reading and verify the cancellation lands mid-record.
	doc := `<f><r>` + strings.Repeat("<a>x</a>", 1000) + `</r></f>`
	ctx, cancel := context.WithCancel(context.Background())
	rr := NewRecordReader(strings.NewReader(doc), RecordOptions{Ctx: ctx})
	cancel()
	_, err := rr.Read(nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("read = %v, want context.Canceled", err)
	}
	if rr.CanRecover() {
		t.Fatalf("CanRecover() = true for a cancellation")
	}
}

func TestChaosSplitterRepeatedPoison(t *testing.T) {
	// Several malformed records interleaved with healthy ones: every
	// healthy record must come through exactly once, in order.
	var b strings.Builder
	b.WriteString("<f>")
	want := []string{}
	for i := 0; i < 20; i++ {
		if i%3 == 1 {
			b.WriteString(`<r><id>bad</id><a></b></r>`)
		} else {
			id := string(rune('A' + i))
			b.WriteString(`<r><id>` + id + `</id><a/></r>`)
			want = append(want, id)
		}
	}
	b.WriteString("</f>")
	rr := NewRecordReader(strings.NewReader(b.String()), RecordOptions{Split: "r"})
	recs, _, terminal := readAllSkip(t, rr)
	if terminal != nil {
		t.Fatalf("terminal error: %v", terminal)
	}
	got := ids(recs)
	if len(got) != len(want) {
		t.Fatalf("ids = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v, want %v", got, want)
		}
	}
	// Indices must be strictly increasing (no duplicates or reordering).
	for i := 1; i < len(recs); i++ {
		if recs[i].Index <= recs[i-1].Index {
			t.Fatalf("indices not strictly increasing: %d then %d", recs[i-1].Index, recs[i].Index)
		}
	}
}

func TestChaosSplitterArenaAfterRecovery(t *testing.T) {
	// Arena-backed reads must survive the skim/resync recovery cycle.
	doc := `<f><r><id>0</id></r><r><id>1</id><a></b></r><r><id>2</id></r></f>`
	rr := NewRecordReader(strings.NewReader(doc), RecordOptions{Split: "r"})
	var a Arena
	var got []string
	for {
		a.Reset()
		rec, err := rr.Read(&a)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !rr.CanRecover() {
				t.Fatalf("terminal error: %v", err)
			}
			if rerr := rr.Recover(); rerr != nil {
				t.Fatalf("recover: %v", rerr)
			}
			continue
		}
		// Text strings live in the arena's text slab: copy them out inside
		// the record's validity window (before the next Reset).
		got = append(got, strings.Clone(rec.Hedge[0].Children[0].Children[0].Text))
	}
	if len(got) != 2 || got[0] != "0" || got[1] != "2" {
		t.Fatalf("ids = %v, want [0 2]", got)
	}
}
