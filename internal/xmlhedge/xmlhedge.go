// Package xmlhedge bridges XML documents and the hedge data model: an XML
// document is an ordered tree (Section 1 of the paper), read here as a
// one-tree hedge whose elements are Σ-labeled nodes and whose character
// data becomes text leaves (variables named hedge.TextVar, with the actual
// characters preserved as payload).
//
// Attributes, comments, processing instructions, and the XML declaration
// are skipped: the paper's framework conditions on element structure (its
// Section 2 sketches how attributes could be folded into the alphabet; that
// extension is out of scope here).
package xmlhedge

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"xpe/internal/hedge"
)

// Options controls parsing.
type Options struct {
	// KeepWhitespace retains whitespace-only text nodes; by default they
	// are dropped (the usual reading for document-oriented schemas).
	KeepWhitespace bool
}

// Parse reads an XML document into a hedge. The result has one top-level
// node (the document element); parse errors from the underlying decoder are
// returned as-is.
func Parse(r io.Reader, opts Options) (hedge.Hedge, error) {
	dec := xml.NewDecoder(r)
	var stack []*hedge.Node
	var top hedge.Hedge
	appendNode := func(n *hedge.Node) {
		if len(stack) == 0 {
			top = append(top, n)
			return
		}
		parent := stack[len(stack)-1]
		parent.Children = append(parent.Children, n)
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlhedge: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := hedge.NewElem(t.Name.Local)
			appendNode(n)
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlhedge: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text := string(t)
			if !opts.KeepWhitespace && strings.TrimSpace(text) == "" {
				continue
			}
			if len(stack) == 0 {
				if strings.TrimSpace(text) == "" {
					continue // prolog/epilog whitespace
				}
				return nil, fmt.Errorf("xmlhedge: character data outside the document element")
			}
			n := hedge.NewVar(hedge.TextVar)
			n.Text = text
			appendNode(n)
		default:
			// Comments, directives, and processing instructions are
			// skipped.
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmlhedge: unexpected end of input inside <%s>", stack[len(stack)-1].Name)
	}
	if len(top) == 0 {
		return nil, fmt.Errorf("xmlhedge: no document element")
	}
	return top, nil
}

// ParseString is Parse over a string.
func ParseString(s string, opts Options) (hedge.Hedge, error) {
	return Parse(strings.NewReader(s), opts)
}

// MustParseString is ParseString, panicking on error; for tests and
// examples.
func MustParseString(s string) hedge.Hedge {
	h, err := ParseString(s, Options{})
	if err != nil {
		panic(err)
	}
	return h
}

// Write serializes a hedge back to XML. Text leaves emit their payload
// (escaped); non-text variables emit their name as character data;
// substitution symbols are rejected (they have no XML form).
func Write(w io.Writer, h hedge.Hedge) error {
	for _, n := range h {
		if err := writeNode(w, n); err != nil {
			return err
		}
	}
	return nil
}

func writeNode(w io.Writer, n *hedge.Node) error {
	switch n.Kind {
	case hedge.Elem:
		if _, err := fmt.Fprintf(w, "<%s>", n.Name); err != nil {
			return err
		}
		if err := Write(w, n.Children); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "</%s>", n.Name)
		return err
	case hedge.Var:
		text := n.Text
		if text == "" && n.Name != hedge.TextVar {
			text = n.Name
		}
		return xml.EscapeText(w, []byte(text))
	default:
		return fmt.Errorf("xmlhedge: cannot serialize substitution symbol %q", n.Name)
	}
}

// ToString serializes a hedge to an XML string.
func ToString(h hedge.Hedge) (string, error) {
	var b strings.Builder
	if err := Write(&b, h); err != nil {
		return "", err
	}
	return b.String(), nil
}
