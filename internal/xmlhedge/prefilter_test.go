package xmlhedge

import (
	"errors"
	"io"
	"strconv"
	"strings"
	"testing"

	"xpe/internal/hedge"
	"xpe/internal/metrics"
	"xpe/internal/trace"
)

func TestNewPrefilter(t *testing.T) {
	if p := NewPrefilter(nil); p != nil {
		t.Errorf("NewPrefilter(nil) = %v, want nil", p)
	}
	if p := NewPrefilter([]string{"", ""}); p != nil {
		t.Errorf("NewPrefilter of empties = %v, want nil", p)
	}
	p := NewPrefilter([]string{"b", "a", "b", ""})
	if p == nil {
		t.Fatal("NewPrefilter returned nil for a real label set")
	}
	if got := p.Labels(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Labels() = %v, want [a b]", got)
	}
}

func TestLabelInBytes(t *testing.T) {
	cases := []struct {
		body  string
		label string
		want  bool
	}{
		{"<price>1</price>", "price", true},
		{"<ns:price>1</ns:price>", "price", true}, // prefix stripped at parse
		{"</price>", "price", true},
		{"<priceList/>", "price", false},   // name continues
		{"<aprice/>", "price", false},      // not at a name boundary
		{"price", "price", false},          // bare text at offset 0
		{"x price y", "price", false},      // text occurrence
		{"<x a='price'/>", "price", false}, // attribute value (no boundary)
		{"<x>price</x><price/>", "price", true},
		{"", "price", false},
	}
	for _, c := range cases {
		if got := labelInBytes([]byte(c.body), []byte(c.label)); got != c.want {
			t.Errorf("labelInBytes(%q, %q) = %v, want %v", c.body, c.label, got, c.want)
		}
	}
}

// hedgeHasLabel force-evaluates the prefilter's claim on a parsed record:
// does any element in the hedge carry the label?
func hedgeHasLabel(h hedge.Hedge, label string) bool {
	var walk func(n *hedge.Node) bool
	walk = func(n *hedge.Node) bool {
		if n.Kind == hedge.Elem && n.Name == label {
			return true
		}
		for _, c := range n.Children {
			if walk(c) {
				return true
			}
		}
		return false
	}
	for _, n := range h {
		if walk(n) {
			return true
		}
	}
	return false
}

func TestPrefilterSkipsNonMatching(t *testing.T) {
	input := `<feed>` +
		`<e><price>1</price></e>` +
		`<e><name>x</name></e>` +
		`<e><a><price>2</price></a></e>` +
		`<e>plain text</e>` +
		`</feed>`
	var sink metrics.Split
	opts := RecordOptions{
		Prefilter: NewPrefilter([]string{"price"}),
		Metrics:   &sink,
	}
	rr := NewRecordReader(strings.NewReader(input), opts)
	var recs []Record
	for {
		rec, err := rr.Read(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (two skipped)", len(recs))
	}
	// Skipped records burn their indices and sibling slots.
	if recs[0].Index != 0 || recs[1].Index != 2 {
		t.Errorf("indices = %d,%d, want 0,2", recs[0].Index, recs[1].Index)
	}
	want0, want2 := hedge.Path{0, 0}, hedge.Path{0, 2}
	if recs[0].Path.String() != want0.String() || recs[1].Path.String() != want2.String() {
		t.Errorf("paths = %s,%s, want %s,%s", recs[0].Path, recs[1].Path, want0, want2)
	}
	if got := rr.Prefiltered(); got != 2 {
		t.Errorf("Prefiltered() = %d, want 2", got)
	}
	s := sink.Snapshot()
	if s.RecordsPrefiltered != 2 {
		t.Errorf("records_prefiltered = %d, want 2", s.RecordsPrefiltered)
	}
	if s.Records != 2 {
		t.Errorf("records = %d, want 2 (skipped records are not parsed)", s.Records)
	}
	// All input bytes flow through consume either way.
	if s.Bytes != int64(len(input)) {
		t.Errorf("bytes = %d, want %d", s.Bytes, len(input))
	}
}

func TestPrefilterRootNameCounts(t *testing.T) {
	// The required label is the record root itself: nothing may be skipped.
	input := `<feed><price/><price>x</price></feed>`
	rr := NewRecordReader(strings.NewReader(input),
		RecordOptions{Prefilter: NewPrefilter([]string{"price"})})
	n := 0
	for {
		_, err := rr.Read(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 || rr.Prefiltered() != 0 {
		t.Fatalf("records = %d (skipped %d), want 2 delivered, 0 skipped", n, rr.Prefiltered())
	}
}

func TestPrefilterSelfCloseRoot(t *testing.T) {
	input := `<feed><e/><e><price/></e><e attr="price"/></feed>`
	rr := NewRecordReader(strings.NewReader(input),
		RecordOptions{Prefilter: NewPrefilter([]string{"price"})})
	var recs []Record
	for {
		rec, err := rr.Read(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 1 || recs[0].Index != 1 {
		t.Fatalf("records = %v, want only index 1", recs)
	}
	if rr.Prefiltered() != 2 {
		t.Fatalf("Prefiltered() = %d, want 2 (both self-closing roots)", rr.Prefiltered())
	}
}

func TestPrefilterNamespacePrefix(t *testing.T) {
	// The tokenizer strips namespace prefixes, so <ns:price> satisfies the
	// required label "price" and the skim must agree.
	input := `<feed><e><ns:price>1</ns:price></e><e><ns:other/></e></feed>`
	rr := NewRecordReader(strings.NewReader(input),
		RecordOptions{Prefilter: NewPrefilter([]string{"price"})})
	var recs []Record
	for {
		rec, err := rr.Read(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 1 || recs[0].Index != 0 {
		t.Fatalf("records = %d, want the prefixed-price record only", len(recs))
	}
	if !hedgeHasLabel(recs[0].Hedge, "price") {
		t.Fatalf("delivered record lacks price: %s", recs[0].Hedge)
	}
}

func TestPrefilterDecoysPreventSkipOnly(t *testing.T) {
	// The label appears only in a comment, a CDATA section, and an attribute
	// value: false positives that must prevent the skip (delivering the
	// record) — never the other way around.
	input := `<feed>` +
		`<e><!-- <price/> --><x/></e>` +
		`<e><![CDATA[<price/>]]></e>` +
		`<e><x a="<price/>"/></e>` +
		`<e><y/></e>` +
		`</feed>`
	rr := NewRecordReader(strings.NewReader(input),
		RecordOptions{Prefilter: NewPrefilter([]string{"price"})})
	var idx []int
	for {
		rec, err := rr.Read(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		idx = append(idx, rec.Index)
	}
	// Records 0-2 carry decoy occurrences (delivered, conservatively);
	// record 3 is clean of the label and must be skipped.
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 1 || idx[2] != 2 {
		t.Fatalf("delivered indices = %v, want [0 1 2]", idx)
	}
	if rr.Prefiltered() != 1 {
		t.Fatalf("Prefiltered() = %d, want 1", rr.Prefiltered())
	}
}

func TestPrefilterInvalidEntityParsesNormally(t *testing.T) {
	// The record lacks the label but contains an entity the tokenizer
	// rejects: the skim must not skip it, so the parse error surfaces
	// exactly as without a prefilter.
	input := `<feed><e>&bogus;</e><e><price/></e></feed>`
	for _, pf := range []*Prefilter{nil, NewPrefilter([]string{"price"})} {
		rr := NewRecordReader(strings.NewReader(input), RecordOptions{Split: "e", Prefilter: pf})
		_, err := rr.Read(nil)
		if err == nil || err == io.EOF {
			t.Fatalf("prefilter=%v: err = %v, want entity syntax error", pf != nil, err)
		}
		if !rr.CanRecover() {
			t.Fatalf("prefilter=%v: entity error not recoverable under a named split", pf != nil)
		}
		if rerr := rr.Recover(); rerr != nil {
			t.Fatal(rerr)
		}
		rec, err := rr.Read(nil)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Index != 1 || !hedgeHasLabel(rec.Hedge, "price") {
			t.Fatalf("prefilter=%v: recovered record = %d %s", pf != nil, rec.Index, rec.Hedge)
		}
	}
}

func TestPrefilterValidEntitiesSkip(t *testing.T) {
	// Valid entities in a label-free record do not spook the skim.
	input := `<feed><e>a &lt; b &#65; &#x41; &amp;</e><e><price/></e></feed>`
	rr := NewRecordReader(strings.NewReader(input),
		RecordOptions{Prefilter: NewPrefilter([]string{"price"})})
	rec, err := rr.Read(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Index != 1 || rr.Prefiltered() != 1 {
		t.Fatalf("record %d, skipped %d; want record 1 after 1 skip", rec.Index, rr.Prefiltered())
	}
}

func TestPrefilterRespectsLimits(t *testing.T) {
	// A label-free record that exceeds MaxNodes must fail like an unfiltered
	// run — a silent skip would hide the limit violation.
	input := `<feed><e><a/><b/><c/><d/></e></feed>`
	rr := NewRecordReader(strings.NewReader(input),
		RecordOptions{MaxNodes: 3, Prefilter: NewPrefilter([]string{"price"})})
	_, err := rr.Read(nil)
	var le *LimitError
	if !errors.As(err, &le) || le.Kind != "nodes" {
		t.Fatalf("err = %v, want nodes LimitError despite the prefilter", err)
	}

	// Same for MaxDepth.
	rr = NewRecordReader(strings.NewReader(`<feed><e><a><b/></a></e></feed>`),
		RecordOptions{MaxDepth: 2, Prefilter: NewPrefilter([]string{"price"})})
	_, err = rr.Read(nil)
	if !errors.As(err, &le) || le.Kind != "depth" {
		t.Fatalf("err = %v, want depth LimitError despite the prefilter", err)
	}

	// And MaxBytes.
	big := `<feed><e>` + strings.Repeat("<pad>xxxx</pad>", 64) + `</e></feed>`
	rr = NewRecordReader(strings.NewReader(big),
		RecordOptions{Split: "e", MaxBytes: 128, Prefilter: NewPrefilter([]string{"price"})})
	_, err = rr.Read(nil)
	if !errors.As(err, &le) || le.Kind != "bytes" {
		t.Fatalf("err = %v, want bytes LimitError despite the prefilter", err)
	}

	// Within the limits the skip happens.
	rr = NewRecordReader(strings.NewReader(`<feed><e><a/></e><e><price/></e></feed>`),
		RecordOptions{MaxNodes: 10, MaxDepth: 10, MaxBytes: 1 << 16,
			Prefilter: NewPrefilter([]string{"price"})})
	rec, rerr := rr.Read(nil)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if rec.Index != 1 || rr.Prefiltered() != 1 {
		t.Fatalf("record %d, skipped %d; want record 1 after 1 skip", rec.Index, rr.Prefiltered())
	}
}

func TestPrefilterLargeRecordGrowsLookahead(t *testing.T) {
	// A skippable record far larger than the reader's 4 KiB buffer: the
	// lookahead must grow to hold it, and everything after it must parse
	// intact.
	var b strings.Builder
	b.WriteString("<feed><e>")
	for i := 0; i < 2000; i++ {
		b.WriteString("<row>some text content here</row>")
	}
	b.WriteString("</e><e><price>1</price></e></feed>")
	rr := NewRecordReader(strings.NewReader(b.String()),
		RecordOptions{Prefilter: NewPrefilter([]string{"price"})})
	rec, err := rr.Read(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Index != 1 || rr.Prefiltered() != 1 {
		t.Fatalf("record %d, skipped %d; want record 1 after skipping the big record", rec.Index, rr.Prefiltered())
	}
	if _, err := rr.Read(nil); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestPrefilterLookaheadCapParsesNormally(t *testing.T) {
	// A record bigger than the lookahead cap is parsed, not skipped: the
	// prefilter bounds its own memory, never correctness.
	var b strings.Builder
	b.WriteString("<feed><e>")
	row := "<row>" + strings.Repeat("x", 1024) + "</row>"
	for i := 0; i < (prefilterLookahead/len(row))+4; i++ {
		b.WriteString(row)
	}
	b.WriteString("</e></feed>")
	rr := NewRecordReader(strings.NewReader(b.String()),
		RecordOptions{Prefilter: NewPrefilter([]string{"price"})})
	rec, err := rr.Read(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Prefiltered() != 0 {
		t.Fatalf("Prefiltered() = %d, want 0 (over the lookahead cap)", rr.Prefiltered())
	}
	if rec.Nodes < prefilterLookahead/len(row) {
		t.Fatalf("big record came back with %d nodes", rec.Nodes)
	}
}

func TestPrefilterResyncAfterSkip(t *testing.T) {
	// Chaos interplay: a skip immediately before a malformed record. The
	// skipped bytes must have flowed through the tail window so the resync
	// scan can re-anchor, and no healthy record may be lost or renumbered.
	doc := `<f>` +
		`<r><id>0</id><price/></r>` + // delivered
		`<r><id>1</id><x/></r>` + // skipped by prefilter
		`<r><id>2</id><price/><a></b></r>` + // malformed: resync
		`<r><id>3</id><price/></r>` + // delivered (degraded mode)
		`<r><id>4</id></r>` + // delivered: prefiltering is off while degraded
		`<r><id>5</id><price/></r>` + // delivered
		`</f>`
	sink := trace.NewEventSink()
	rr := NewRecordReader(strings.NewReader(doc),
		RecordOptions{Split: "r", Prefilter: NewPrefilter([]string{"price"}), Events: sink})
	recs, fails, terminal := readAllSkip(t, rr)
	if terminal != nil {
		t.Fatalf("terminal error: %v", terminal)
	}
	if len(fails) != 1 {
		t.Fatalf("failures = %d, want 1: %v", len(fails), fails)
	}
	var rpe *RecordParseError
	if !errors.As(fails[0], &rpe) || rpe.Index != 2 {
		t.Fatalf("failure = %v, want RecordParseError for record 2", fails[0])
	}
	got := ids(recs)
	want := []string{"0", "3", "4", "5"}
	if len(got) != len(want) {
		t.Fatalf("ids = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v, want %v", got, want)
		}
	}
	for i, idx := range []int{0, 3, 4, 5} {
		if recs[i].Index != idx {
			t.Fatalf("record %d index = %d, want %d", i, recs[i].Index, idx)
		}
	}
	var pfEvents int
	for _, e := range sink.Drain() {
		if e.Name == "prefilter" {
			pfEvents++
		}
	}
	if int64(pfEvents) != rr.Prefiltered() {
		t.Fatalf("prefilter events = %d, counter = %d", pfEvents, rr.Prefiltered())
	}
	if rr.Prefiltered() < 1 {
		t.Fatalf("Prefiltered() = %d, want at least the pre-resync skip", rr.Prefiltered())
	}
}

// runSplitDiff drains the same input through an unfiltered and a filtered
// reader and checks the differential contract: the filtered reader delivers
// a subset of the unfiltered records (identical index, path, and hedge),
// every dropped record provably lacks a required label, every failure and
// the terminal outcome agree exactly, and both consume the whole input.
func runSplitDiff(t *testing.T, input string, opts RecordOptions, labels []string) {
	t.Helper()
	type outcome struct {
		recs  []Record
		fails []string
		term  string
		off   int64
		pre   int64
	}
	run := func(pf *Prefilter) outcome {
		o := opts
		o.Prefilter = pf
		rr := NewRecordReader(strings.NewReader(input), o)
		var out outcome
		for i := 0; i < 1<<14; i++ {
			rec, err := rr.Read(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				if !rr.CanRecover() {
					out.term = err.Error()
					break
				}
				out.fails = append(out.fails, err.Error())
				if rerr := rr.Recover(); rerr != nil {
					out.term = rerr.Error()
					break
				}
				continue
			}
			out.recs = append(out.recs, rec)
		}
		out.off = rr.InputOffset()
		out.pre = rr.Prefiltered()
		return out
	}
	plain := run(nil)
	filt := run(NewPrefilter(labels))

	if plain.term != filt.term {
		t.Fatalf("terminal outcomes diverge:\nplain: %q\nfilt:  %q", plain.term, filt.term)
	}
	if len(plain.fails) != len(filt.fails) {
		t.Fatalf("failure counts diverge: plain %v, filtered %v", plain.fails, filt.fails)
	}
	for i := range plain.fails {
		if plain.fails[i] != filt.fails[i] {
			t.Fatalf("failure %d diverges:\nplain: %q\nfilt:  %q", i, plain.fails[i], filt.fails[i])
		}
	}
	byIndex := make(map[int]Record, len(plain.recs))
	for _, r := range plain.recs {
		byIndex[r.Index] = r
	}
	seen := make(map[int]bool, len(filt.recs))
	for _, r := range filt.recs {
		p, ok := byIndex[r.Index]
		if !ok {
			t.Fatalf("filtered delivered record %d the plain run never produced", r.Index)
		}
		seen[r.Index] = true
		if p.Path.String() != r.Path.String() || !p.Hedge.Equal(r.Hedge) || p.Nodes != r.Nodes {
			t.Fatalf("record %d diverges: plain %s %s, filtered %s %s",
				r.Index, p.Path, p.Hedge, r.Path, r.Hedge)
		}
	}
	dropped := 0
	for _, p := range plain.recs {
		if seen[p.Index] {
			continue
		}
		dropped++
		missing := false
		for _, l := range labels {
			if !hedgeHasLabel(p.Hedge, l) {
				missing = true
				break
			}
		}
		if !missing {
			t.Fatalf("record %d was skipped but contains every required label %v: %s",
				p.Index, labels, p.Hedge)
		}
	}
	if int64(dropped) != filt.pre {
		t.Fatalf("dropped %d records but Prefiltered() = %d", dropped, filt.pre)
	}
	if plain.term == "" && plain.off != filt.off {
		t.Fatalf("input offsets diverge: plain %d, filtered %d", plain.off, filt.off)
	}
}

func TestPrefilterDifferentialCorpus(t *testing.T) {
	labels := []string{"price"}
	corpus := []struct {
		name, input string
		opts        RecordOptions
	}{
		{"mixed", `<f><e><price>1</price></e><e><x/></e><e><a><price/></a></e></f>`, RecordOptions{}},
		{"named-split", `<db><g><item><price/></item><item><x/></item></g><item/></db>`, RecordOptions{Split: "item"}},
		{"self-close", `<f><e/><e><price/></e><e/></f>`, RecordOptions{}},
		{"comments", `<f><e><!--price--><x/></e><e><price/><!--x--></e></f>`, RecordOptions{}},
		{"cdata", `<f><e><![CDATA[<price/>]]></e><e><price/></e></f>`, RecordOptions{}},
		{"entities", `<f><e>&amp;&lt;&#65;</e><e><price>&gt;</price></e></f>`, RecordOptions{}},
		{"bad-entity", `<f><e>&nope;</e><e><price/></e></f>`, RecordOptions{Split: "e"}},
		{"attrs", `<f><e a="price" b='<price>'><x/></e><e c="1"><price/></e></f>`, RecordOptions{}},
		{"prefixes", `<f><e><ns:price/></e><e><ns:x/></e></f>`, RecordOptions{}},
		{"malformed-mid", `<f><e><x/></e><e><a></b></e><e><price/></e></f>`, RecordOptions{Split: "e"}},
		{"truncated", `<f><e><x/></e><e><price>`, RecordOptions{Split: "e"}},
		{"limits", `<f><e><a/><b/><c/><d/></e><e><price/></e></f>`, RecordOptions{MaxNodes: 4}},
		{"depth-limit", `<f><e><a><b><c/></b></a></e><e><price/></e></f>`, RecordOptions{MaxDepth: 3}},
		{"whitespace", "<f>\n  <e>\n    <x/>\n  </e>\n  <e><price/></e>\n</f>", RecordOptions{}},
		{"keep-ws", "<f><e> <x/> </e><e><price/></e></f>", RecordOptions{KeepWhitespace: true}},
		{"pi-doctype", `<?xml version="1.0"?><f><e><?pi data?><x/></e><e><price/></e></f>`, RecordOptions{}},
		{"text-between", `<db>text<item><x/></item>more<item><price/></item></db>`, RecordOptions{Split: "item"}},
		{"nested-split", `<db><item><item><price/></item></item></db>`, RecordOptions{Split: "item"}},
	}
	for _, c := range corpus {
		c := c
		t.Run(c.name, func(t *testing.T) {
			runSplitDiff(t, c.input, c.opts, labels)
		})
	}
}

// FuzzPrefilterDifferential holds the prefiltered reader to the unfiltered
// reader's observable behavior on arbitrary input: identical failures and
// terminal outcome, identical surviving records, and only label-free
// records skipped.
func FuzzPrefilterDifferential(f *testing.F) {
	f.Add(`<f><e><price/></e><e><x/></e></f>`, "", "price", 0, 0)
	f.Add(`<f><r><a/></r><r><a></b></r><r><price/></r></f>`, "r", "price", 0, 0)
	f.Add(`<f><e>&#65;&bad;</e><e><price/></e></f>`, "e", "price", 0, 0)
	f.Add(`<f><e><a/><b/><c/></e></f>`, "", "price", 3, 0)
	f.Add(`<f><e><!--<price/>--></e></f>`, "", "price", 0, 4)
	f.Add(`<f><e><ns:price a="x"/></e><e/></f>`, "", "price,name", 0, 0)
	f.Fuzz(func(t *testing.T, xmlStr, split, labelsCSV string, maxNodes, maxDepth int) {
		if maxNodes < 0 || maxNodes > 1<<12 || maxDepth < 0 || maxDepth > 1<<8 {
			return
		}
		if len(xmlStr) > 1<<16 || len(split) > 32 || len(labelsCSV) > 64 {
			return
		}
		var labels []string
		for _, l := range strings.Split(labelsCSV, ",") {
			if l != "" {
				labels = append(labels, l)
			}
		}
		if len(labels) == 0 {
			return
		}
		opts := RecordOptions{Split: split, MaxNodes: maxNodes, MaxDepth: maxDepth}
		runSplitDiff(t, xmlStr, opts, labels)
	})
}

// TestPrefilterManyRecords pushes enough skips through one reader to cross
// several buffer refills and exercise slot accounting at scale.
func TestPrefilterManyRecords(t *testing.T) {
	var b strings.Builder
	b.WriteString("<feed>")
	var wantIdx []int
	for i := 0; i < 500; i++ {
		if i%7 == 0 {
			b.WriteString("<e><id>" + strconv.Itoa(i) + "</id><price>1</price></e>")
			wantIdx = append(wantIdx, i)
		} else {
			b.WriteString("<e><id>" + strconv.Itoa(i) + "</id><other/></e>")
		}
	}
	b.WriteString("</feed>")
	rr := NewRecordReader(strings.NewReader(b.String()),
		RecordOptions{Prefilter: NewPrefilter([]string{"price"})})
	var got []int
	for {
		rec, err := rr.Read(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec.Index)
		if want := (hedge.Path{0, rec.Index}); rec.Path.String() != want.String() {
			t.Fatalf("record %d path = %s, want %s", rec.Index, rec.Path, want)
		}
	}
	if len(got) != len(wantIdx) {
		t.Fatalf("delivered %d records, want %d", len(got), len(wantIdx))
	}
	for i := range wantIdx {
		if got[i] != wantIdx[i] {
			t.Fatalf("indices = %v..., want %v...", got[:i+1], wantIdx[:i+1])
		}
	}
	if rr.Prefiltered() != int64(500-len(wantIdx)) {
		t.Fatalf("Prefiltered() = %d, want %d", rr.Prefiltered(), 500-len(wantIdx))
	}
}

func TestHintAllows(t *testing.T) {
	for _, i := range []int{0, 1, 63, 64, 127, 128, 1000} {
		if !HintAll.Allows(i) {
			t.Errorf("HintAll.Allows(%d) = false, want true", i)
		}
	}
	h := Hint{W0: 1 << 5}
	if !h.Allows(5) || h.Allows(4) || h.Allows(6) || h.Allows(63) {
		t.Errorf("Hint{W0:1<<5}: word-0 gating wrong")
	}
	// Words beyond len(More) read all-ones: absent evidence never gates.
	if !h.Allows(64) || !h.Allows(200) {
		t.Errorf("Hint{W0:1<<5}: missing overflow words must allow")
	}
	h2 := Hint{More: []uint64{1 << 3}}
	if !h2.Allows(67) || h2.Allows(66) || h2.Allows(68) || h2.Allows(3) {
		t.Errorf("Hint{More:[1<<3]}: overflow-word gating wrong")
	}
	if !h2.Allows(128) {
		t.Errorf("Hint{More:[1<<3]}: Allows(128) = false, want true (beyond More)")
	}
	if !(Hint{}).zero() || !(Hint{More: []uint64{0}}).zero() {
		t.Error("all-clear hints must report zero()")
	}
	if (Hint{W0: 1}).zero() || (Hint{More: []uint64{0, 2}}).zero() {
		t.Error("non-empty hints must not report zero()")
	}
}

// TestPrefilterWideGroupVerdicts pins the multi-word verdict path: with
// more than 64 requirement groups, hint bits past group 63 live in the
// overflow words and must keep gating per group instead of degrading to
// evaluate-everything. Each kept record satisfies exactly one group; the
// verdict must allow that group and gate off all others, on both sides of
// the 64-bit word boundary.
func TestPrefilterWideGroupVerdicts(t *testing.T) {
	const n = 70
	groups := make([][]string, n)
	for i := range groups {
		groups[i] = []string{"l" + strconv.Itoa(100+i)}
	}
	pf := NewMultiPrefilter(groups)
	if pf == nil {
		t.Fatalf("NewMultiPrefilter returned nil for %d groups", n)
	}
	keep := []int{0, 31, 63, 64, 65, 69}
	var b strings.Builder
	b.WriteString("<feed>")
	for _, k := range keep {
		// One record satisfying exactly group k, then a decoy no group
		// requires — the decoy's all-clear verdict must skip it whole.
		b.WriteString("<e><l" + strconv.Itoa(100+k) + "/></e><e><none/></e>")
	}
	b.WriteString("</feed>")
	rr := NewRecordReader(strings.NewReader(b.String()), RecordOptions{Prefilter: pf})
	var got []Record
	for {
		rec, err := rr.Read(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	if len(got) != len(keep) {
		t.Fatalf("kept %d records, want %d", len(got), len(keep))
	}
	for i, rec := range got {
		k := keep[i]
		for g := 0; g < n; g++ {
			if rec.Hint.Allows(g) != (g == k) {
				t.Errorf("record satisfying group %d: Hint.Allows(%d) = %v, want %v",
					k, g, rec.Hint.Allows(g), g == k)
			}
		}
		// The verdict must survive later skims of the same reader: it was
		// cloned off scratch, not aliased into it.
		if i > 0 && got[i-1].Hint.Allows(k) {
			t.Errorf("record %d's verdict leaked into record %d's hint", i, i-1)
		}
	}
	if rr.Prefiltered() != int64(len(keep)) {
		t.Errorf("Prefiltered() = %d, want %d decoys skipped", rr.Prefiltered(), len(keep))
	}
}
