package xmlhedge

import (
	"errors"
	"io"
	"strconv"
	"strings"
	"testing"

	"xpe/internal/metrics"
)

// TestRecordReaderMetrics: the splitter flushes counters that agree with
// what it returned — records, nodes, bytes consumed, and arena reuse.
func TestRecordReaderMetrics(t *testing.T) {
	input := "<feed><entry><a/><b>hi</b></entry><entry><a/></entry><entry><b/><b/></entry></feed>"
	var sink metrics.Split
	rr := NewRecordReader(strings.NewReader(input), RecordOptions{Metrics: &sink})
	var arena Arena
	var records, nodes int64
	for {
		arena.Reset()
		rec, err := rr.Read(&arena)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		records++
		nodes += int64(rec.Nodes)
	}
	s := sink.Snapshot()
	if s.Records != records || s.Records != 3 {
		t.Errorf("records = %d, want %d", s.Records, records)
	}
	if s.Nodes != nodes {
		t.Errorf("nodes = %d, want %d", s.Nodes, nodes)
	}
	if s.Bytes != int64(len(input)) {
		t.Errorf("bytes = %d, want %d (whole input consumed at EOF)", s.Bytes, len(input))
	}
	if s.ArenaNodesReused+s.ArenaChunkAllocs != nodes {
		t.Errorf("arena served %d+%d nodes, want %d",
			s.ArenaNodesReused, s.ArenaChunkAllocs, nodes)
	}
}

// FuzzRecordReader fuzzes the streaming splitter under tight resource
// limits. The seeds pin the interesting control paths: default and named
// splits, nested split elements, records exactly at and just over the
// MaxNodes / MaxDepth bounds, text between records, and malformed input.
func FuzzRecordReader(f *testing.F) {
	seeds := []struct {
		xml              string
		split            string
		maxNodes, maxDep int
	}{
		{"<feed><entry><a/><b>hi</b></entry><entry><a/></entry></feed>", "", 0, 0},
		{"<doc><r><x/></r>mid<r><y/><y/></r></doc>", "r", 0, 0},
		{"<doc><r><r><x/></r></r></doc>", "r", 0, 0}, // nested split: outermost wins
		{"<f><e><a/><b/></e></f>", "", 3, 0},         // record exactly at MaxNodes
		{"<f><e><a/><b/><c/></e></f>", "", 3, 0},     // record one over MaxNodes
		{"<f><e>text</e></f>", "", 2, 0},             // text node hits MaxNodes
		{"<f><e><a><b/></a></e></f>", "", 0, 3},      // depth exactly at MaxDepth
		{"<f><e><a><b><c/></b></a></e></f>", "", 0, 3},
		{"<f><e><a/>", "", 0, 0},  // truncated inside a record
		{"<f><e/><e/>", "", 0, 0}, // truncated outside a record
		{"junk<f/>", "", 0, 0},    // character data before the document element
		{"<f>  <e/>\n</f>", "", 0, 0},
		{"<f><e><a></b></e><e/></f>", "e", 0, 0},        // mid-record mismatched tags
		{"<f><e><a><b></a></b></e></f>", "", 0, 0},      // interleaved cross-nesting
		{"<f><e><a x=1/></e><e/></f>", "e", 0, 0},       // unquoted attribute value
		{"<f><e/><junk</f>", "e", 0, 0},                 // malformed between records
		{"<f><e><a/></e><e><b/", "e", 0, 0},             // truncated mid second record
		{"<f><e><!--<e>--><a/></e><e/></f>", "e", 0, 0}, // decoy start in comment
	}
	for _, s := range seeds {
		f.Add(s.xml, s.split, s.maxNodes, s.maxDep)
	}
	f.Fuzz(func(t *testing.T, xmlStr, split string, maxNodes, maxDepth int) {
		if maxNodes < 0 || maxNodes > 1<<16 || maxDepth < 0 || maxDepth > 1<<12 {
			return
		}
		var sink metrics.Split
		opts := RecordOptions{
			Split:    split,
			MaxNodes: maxNodes,
			MaxDepth: maxDepth,
			Metrics:  &sink,
		}
		rr := NewRecordReader(strings.NewReader(xmlStr), opts)
		var arena Arena
		var records, nodes int64
		for i := 0; i < 1<<16; i++ {
			arena.Reset()
			rec, err := rr.Read(&arena)
			if err == io.EOF {
				break
			}
			if err != nil {
				var le *LimitError
				if errors.As(err, &le) {
					if maxNodes == 0 && le.Kind == "nodes" {
						t.Fatalf("nodes limit error with no nodes limit: %v", le)
					}
					if maxDepth == 0 && le.Kind == "depth" {
						t.Fatalf("depth limit error with no depth limit: %v", le)
					}
				}
				// Errors are sticky: a second read must fail identically.
				if _, err2 := rr.Read(&arena); err2 != err {
					t.Fatalf("error not sticky: %v then %v", err, err2)
				}
				break
			}
			if rec.Nodes <= 0 || len(rec.Hedge) != 1 {
				t.Fatalf("record %d: nodes=%d trees=%d, want positive single-tree", rec.Index, rec.Nodes, len(rec.Hedge))
			}
			if maxNodes > 0 && rec.Nodes > maxNodes {
				t.Fatalf("record %d has %d nodes over limit %d", rec.Index, rec.Nodes, maxNodes)
			}
			if got := rec.Hedge.Size(); got != rec.Nodes {
				t.Fatalf("record %d: reported %d nodes, hedge has %d", rec.Index, rec.Nodes, got)
			}
			records++
			nodes += int64(rec.Nodes)
		}
		s := sink.Snapshot()
		if s.Records != records || s.Nodes != nodes {
			t.Fatalf("metrics disagree: %d/%d records, %d/%d nodes", s.Records, records, s.Nodes, nodes)
		}
		if s.Bytes < 0 || s.Bytes > int64(len(xmlStr)) {
			t.Fatalf("bytes = %d outside [0, %d]", s.Bytes, len(xmlStr))
		}
	})
}

// poisonRecord renders record i broken in one of four ways; every kind
// errors inside the record and never emits a byte sequence that could be
// mistaken for a "rec" start tag, so recovery costs exactly that record.
func poisonRecord(i, kind int) string {
	id := "<rec><id>" + strconv.Itoa(i) + "</id>"
	switch kind & 3 {
	case 0:
		return id + "<a></b></rec>" // mismatched end tag
	case 1:
		return id + "<a x=1></a></rec>" // unquoted attribute value
	case 2:
		return id + "</x></rec>" // stray close
	default:
		return id + "<a><b></a></b></rec>" // interleaved cross-nesting
	}
}

// FuzzRecordReaderSkip fuzzes the recovery path: feeds of identity-tagged
// records with an arbitrary subset poisoned (by an arbitrary mix of
// malformation kinds), drained under the skip policy. The invariant is the
// chaos suite's core guarantee: every healthy record is delivered exactly
// once, in document order, with its index equal to its position — skipping
// never loses, duplicates, or renumbers a healthy record.
func FuzzRecordReaderSkip(f *testing.F) {
	f.Add(3, uint32(0), uint32(0))
	f.Add(5, uint32(1<<1), uint32(0))              // one poisoned record, kind 0
	f.Add(8, uint32(0b10110), uint32(0x3A))        // scattered, mixed kinds
	f.Add(6, uint32(0b111111), uint32(0xFFF))      // every record poisoned
	f.Add(20, uint32(0x55555), uint32(0xCAFEBABE)) // alternating poison
	f.Add(4, uint32(0b0110), uint32(0b1100))       // adjacent poisoned pair
	f.Fuzz(func(t *testing.T, n int, mask, kinds uint32) {
		if n < 1 || n > 20 {
			return
		}
		var b strings.Builder
		b.WriteString("<feed>")
		var want []string
		for i := 0; i < n; i++ {
			if mask>>uint(i)&1 == 1 {
				b.WriteString(poisonRecord(i, int(kinds>>(2*uint(i)%32))))
			} else {
				b.WriteString("<rec><id>" + strconv.Itoa(i) + "</id><a/><b/></rec>")
				want = append(want, strconv.Itoa(i))
			}
		}
		b.WriteString("</feed>")

		rr := NewRecordReader(strings.NewReader(b.String()), RecordOptions{Split: "rec"})
		var got []string
		var fails int
		for {
			rec, err := rr.Read(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				if !rr.CanRecover() {
					t.Fatalf("unrecoverable failure with a named split: %v", err)
				}
				fails++
				if rerr := rr.Recover(); rerr != nil {
					t.Fatalf("Recover: %v", rerr)
				}
				continue
			}
			id := "?"
			if root := rec.Hedge[0]; len(root.Children) > 0 && len(root.Children[0].Children) > 0 {
				id = root.Children[0].Children[0].Text
			}
			if id != strconv.Itoa(rec.Index) {
				t.Fatalf("record index %d carries id %q: skipping renumbered a healthy record", rec.Index, id)
			}
			got = append(got, id)
		}
		if len(got) != len(want) {
			t.Fatalf("delivered %v, want %v (mask %b)", got, want, mask)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("delivered %v, want %v (mask %b)", got, want, mask)
			}
		}
		if poisoned := popcount(mask, n); fails != poisoned {
			t.Fatalf("recovered %d failures for %d poisoned records", fails, poisoned)
		}
	})
}

func popcount(mask uint32, n int) int {
	c := 0
	for i := 0; i < n; i++ {
		c += int(mask >> uint(i) & 1)
	}
	return c
}
