package xmlhedge

import (
	"errors"
	"io"
	"strings"
	"testing"

	"xpe/internal/metrics"
)

// TestRecordReaderMetrics: the splitter flushes counters that agree with
// what it returned — records, nodes, bytes consumed, and arena reuse.
func TestRecordReaderMetrics(t *testing.T) {
	input := "<feed><entry><a/><b>hi</b></entry><entry><a/></entry><entry><b/><b/></entry></feed>"
	var sink metrics.Split
	rr := NewRecordReader(strings.NewReader(input), RecordOptions{Metrics: &sink})
	var arena Arena
	var records, nodes int64
	for {
		arena.Reset()
		rec, err := rr.Read(&arena)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		records++
		nodes += int64(rec.Nodes)
	}
	s := sink.Snapshot()
	if s.Records != records || s.Records != 3 {
		t.Errorf("records = %d, want %d", s.Records, records)
	}
	if s.Nodes != nodes {
		t.Errorf("nodes = %d, want %d", s.Nodes, nodes)
	}
	if s.Bytes != int64(len(input)) {
		t.Errorf("bytes = %d, want %d (whole input consumed at EOF)", s.Bytes, len(input))
	}
	if s.ArenaNodesReused+s.ArenaChunkAllocs != nodes {
		t.Errorf("arena served %d+%d nodes, want %d",
			s.ArenaNodesReused, s.ArenaChunkAllocs, nodes)
	}
}

// FuzzRecordReader fuzzes the streaming splitter under tight resource
// limits. The seeds pin the interesting control paths: default and named
// splits, nested split elements, records exactly at and just over the
// MaxNodes / MaxDepth bounds, text between records, and malformed input.
func FuzzRecordReader(f *testing.F) {
	seeds := []struct {
		xml              string
		split            string
		maxNodes, maxDep int
	}{
		{"<feed><entry><a/><b>hi</b></entry><entry><a/></entry></feed>", "", 0, 0},
		{"<doc><r><x/></r>mid<r><y/><y/></r></doc>", "r", 0, 0},
		{"<doc><r><r><x/></r></r></doc>", "r", 0, 0}, // nested split: outermost wins
		{"<f><e><a/><b/></e></f>", "", 3, 0},         // record exactly at MaxNodes
		{"<f><e><a/><b/><c/></e></f>", "", 3, 0},     // record one over MaxNodes
		{"<f><e>text</e></f>", "", 2, 0},             // text node hits MaxNodes
		{"<f><e><a><b/></a></e></f>", "", 0, 3},      // depth exactly at MaxDepth
		{"<f><e><a><b><c/></b></a></e></f>", "", 0, 3},
		{"<f><e><a/>", "", 0, 0},  // truncated inside a record
		{"<f><e/><e/>", "", 0, 0}, // truncated outside a record
		{"junk<f/>", "", 0, 0},    // character data before the document element
		{"<f>  <e/>\n</f>", "", 0, 0},
	}
	for _, s := range seeds {
		f.Add(s.xml, s.split, s.maxNodes, s.maxDep)
	}
	f.Fuzz(func(t *testing.T, xmlStr, split string, maxNodes, maxDepth int) {
		if maxNodes < 0 || maxNodes > 1<<16 || maxDepth < 0 || maxDepth > 1<<12 {
			return
		}
		var sink metrics.Split
		opts := RecordOptions{
			Split:    split,
			MaxNodes: maxNodes,
			MaxDepth: maxDepth,
			Metrics:  &sink,
		}
		rr := NewRecordReader(strings.NewReader(xmlStr), opts)
		var arena Arena
		var records, nodes int64
		for i := 0; i < 1<<16; i++ {
			arena.Reset()
			rec, err := rr.Read(&arena)
			if err == io.EOF {
				break
			}
			if err != nil {
				var le *LimitError
				if errors.As(err, &le) {
					if maxNodes == 0 && le.Kind == "nodes" {
						t.Fatalf("nodes limit error with no nodes limit: %v", le)
					}
					if maxDepth == 0 && le.Kind == "depth" {
						t.Fatalf("depth limit error with no depth limit: %v", le)
					}
				}
				// Errors are sticky: a second read must fail identically.
				if _, err2 := rr.Read(&arena); err2 != err {
					t.Fatalf("error not sticky: %v then %v", err, err2)
				}
				break
			}
			if rec.Nodes <= 0 || len(rec.Hedge) != 1 {
				t.Fatalf("record %d: nodes=%d trees=%d, want positive single-tree", rec.Index, rec.Nodes, len(rec.Hedge))
			}
			if maxNodes > 0 && rec.Nodes > maxNodes {
				t.Fatalf("record %d has %d nodes over limit %d", rec.Index, rec.Nodes, maxNodes)
			}
			if got := rec.Hedge.Size(); got != rec.Nodes {
				t.Fatalf("record %d: reported %d nodes, hedge has %d", rec.Index, rec.Nodes, got)
			}
			records++
			nodes += int64(rec.Nodes)
		}
		s := sink.Snapshot()
		if s.Records != records || s.Nodes != nodes {
			t.Fatalf("metrics disagree: %d/%d records, %d/%d nodes", s.Records, records, s.Nodes, nodes)
		}
		if s.Bytes < 0 || s.Bytes > int64(len(xmlStr)) {
			t.Fatalf("bytes = %d outside [0, %d]", s.Bytes, len(xmlStr))
		}
	})
}
