package xmlhedge

import (
	"errors"
	"io"
	"strings"
	"testing"

	"xpe/internal/hedge"
)

// readAll drains a RecordReader, failing the test on any non-EOF error.
func readAll(t *testing.T, input string, opts RecordOptions, a *Arena) []Record {
	t.Helper()
	rr := NewRecordReader(strings.NewReader(input), opts)
	var out []Record
	for {
		rec, err := rr.Read(a)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		// Snapshot: records sharing an arena are only valid until the next
		// Read, so clone for later comparison.
		rec.Hedge = rec.Hedge.Clone()
		out = append(out, rec)
	}
}

func TestRecordReaderDefaultSplit(t *testing.T) {
	input := "<feed><entry><a/><b>hi</b></entry><meta/><entry><a/></entry></feed>"
	recs := readAll(t, input, RecordOptions{}, nil)
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	whole := MustParseString(input)
	for i, rec := range recs {
		if got, want := rec.Path.String(), (hedge.Path{0, i}).String(); got != want {
			t.Errorf("record %d path = %s, want %s", i, got, want)
		}
		n := whole.At(rec.Path)
		if n == nil || !rec.Hedge.Equal(hedge.Hedge{n}) {
			t.Errorf("record %d = %s, want subtree %s", i, rec.Hedge, n)
		}
		if rec.Nodes != rec.Hedge.Size() {
			t.Errorf("record %d nodes = %d, want %d", i, rec.Nodes, rec.Hedge.Size())
		}
	}
}

func TestRecordReaderNamedSplit(t *testing.T) {
	input := "<db><group><item><x/></item>noise<item/></group><item/></db>"
	recs := readAll(t, input, RecordOptions{Split: "item"}, nil)
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	whole := MustParseString(input)
	wantPaths := []string{"1.1.1", "1.1.3", "1.2"}
	for i, rec := range recs {
		if rec.Path.String() != wantPaths[i] {
			t.Errorf("record %d path = %s, want %s", i, rec.Path, wantPaths[i])
		}
		n := whole.At(rec.Path)
		if n == nil || !rec.Hedge.Equal(hedge.Hedge{n}) {
			t.Errorf("record %d = %s, want subtree at %s", i, rec.Hedge, rec.Path)
		}
	}
}

func TestRecordReaderNestedSplitOutermostWins(t *testing.T) {
	input := "<db><item><item><a/></item></item></db>"
	recs := readAll(t, input, RecordOptions{Split: "item"}, nil)
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1 (outermost item)", len(recs))
	}
	if recs[0].Nodes != 3 {
		t.Fatalf("nodes = %d, want 3", recs[0].Nodes)
	}
}

func TestRecordReaderArenaReuse(t *testing.T) {
	input := "<feed><e><a/><b/>text</e><e><c><d/></c></e><e/></feed>"
	var a Arena
	rr := NewRecordReader(strings.NewReader(input), RecordOptions{})
	whole := MustParseString(input)
	for i := 0; ; i++ {
		a.Reset()
		rec, err := rr.Read(&a)
		if err == io.EOF {
			if i != 3 {
				t.Fatalf("records = %d, want 3", i)
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		n := whole.At(rec.Path)
		if !rec.Hedge.Equal(hedge.Hedge{n}) {
			t.Fatalf("record %d = %s, want %s", i, rec.Hedge, n)
		}
	}
}

func TestRecordReaderLimits(t *testing.T) {
	input := "<feed><e><a/><b/><c/></e></feed>"
	rr := NewRecordReader(strings.NewReader(input), RecordOptions{MaxNodes: 3})
	_, err := rr.Read(nil)
	var le *LimitError
	if !errors.As(err, &le) || le.Kind != "nodes" || le.Limit != 3 {
		t.Fatalf("err = %v, want nodes LimitError", err)
	}
	// Sticky after a limit violation.
	if _, err2 := rr.Read(nil); !errors.Is(err2, err) {
		t.Fatalf("second read err = %v, want sticky %v", err2, err)
	}

	rr = NewRecordReader(strings.NewReader("<feed><e><a><b/></a></e></feed>"),
		RecordOptions{MaxDepth: 2})
	_, err = rr.Read(nil)
	if !errors.As(err, &le) || le.Kind != "depth" || le.Limit != 2 {
		t.Fatalf("err = %v, want depth LimitError", err)
	}
}

func TestRecordReaderMalformed(t *testing.T) {
	rr := NewRecordReader(strings.NewReader("<feed><e></feed>"), RecordOptions{})
	if _, err := rr.Read(nil); err == nil || err == io.EOF {
		t.Fatalf("err = %v, want syntax error", err)
	}
	rr = NewRecordReader(strings.NewReader("<feed><e/>"), RecordOptions{})
	if _, err := rr.Read(nil); err != nil {
		t.Fatalf("first record: %v", err)
	}
	if _, err := rr.Read(nil); err == nil || err == io.EOF {
		t.Fatalf("err = %v, want truncation error", err)
	}
}
