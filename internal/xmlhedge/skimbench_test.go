package xmlhedge

import (
	"fmt"
	"strings"
	"testing"
)

// Benchmarks pinning the skim's advantage over a full parse on the feed
// shape the prefilter cascade targets: text-heavy records that contain
// none of the required labels. The skim's text path is a memchr-driven
// scan, so its MB/s should stay a small multiple of the tokenizer's —
// if these two converge, the cascade stops paying for itself.

func benchSparseFeed(n int) string {
	var b strings.Builder
	b.WriteString("<corpus>")
	for i := 0; i < n; i++ {
		b.WriteString("<doc>")
		for j := 0; j < 24; j++ {
			fmt.Fprintf(&b, "<para>record %d paragraph %d: plain prose with no matching structure, "+
				"just enough text that skimming beats parsing &amp; node building.</para>", i, j)
		}
		b.WriteString("</doc>")
	}
	b.WriteString("</corpus>")
	return b.String()
}

func benchSplit(b *testing.B, opts RecordOptions) {
	input := benchSparseFeed(200)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr := NewRecordReader(strings.NewReader(input), opts)
		var a Arena
		for {
			a.Reset()
			if _, err := rr.Read(&a); err != nil {
				break
			}
		}
	}
}

func BenchmarkSplitNoPrefilter(b *testing.B) {
	benchSplit(b, RecordOptions{})
}

func BenchmarkSplitPrefilter(b *testing.B) {
	benchSplit(b, RecordOptions{Prefilter: NewPrefilter([]string{"section"})})
}
