package xmlhedge

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"unsafe"

	"xpe/internal/hedge"
	"xpe/internal/metrics"
	"xpe/internal/trace"
)

// RecordOptions configures record splitting for streaming evaluation.
type RecordOptions struct {
	// Split names the record root element: every subtree rooted at an
	// element with this local name (outermost wins when they nest) is one
	// record. Empty means the default split: every child element of the
	// document element is a record. A named split also enables malformed-
	// record resynchronization (see RecordReader.Recover): the split name is
	// the delimiter the reader scans for when a record's markup is broken.
	Split string
	// MaxNodes bounds the node count of a single record (0 = unlimited);
	// exceeding it fails the record with a *LimitError (kind "nodes").
	MaxNodes int
	// MaxDepth bounds the element nesting depth within a record, counting
	// the record root as depth 1 (0 = unlimited).
	MaxDepth int
	// MaxBytes bounds the raw input bytes a single record may span (0 =
	// unlimited); exceeding it fails the record with a *LimitError (kind
	// "bytes"). The record is abandoned as soon as the budget is crossed,
	// so memory stays bounded even against a multi-gigabyte record.
	MaxBytes int64
	// MaxStreamBytes bounds total input consumption across the whole run
	// (0 = unlimited). Exceeding it is a stream-fatal *LimitError (kind
	// "stream"): no recovery is possible past an exhausted stream budget.
	MaxStreamBytes int64
	// KeepWhitespace retains whitespace-only text nodes (see Options).
	KeepWhitespace bool
	// Prefilter, when non-nil, is checked against each record's raw bytes
	// before parsing: a record that cannot contain every required label is
	// skipped whole — no parse, no nodes, one bulk consume — and burns its
	// index and sibling slot like a failed record. The skim is conservative
	// (see prefilter.go): any record it is unsure about parses normally,
	// byte-identically to an unfiltered run. Prefiltering is suspended in
	// degraded (post-resync) mode.
	Prefilter *Prefilter
	// Ctx, when non-nil, is polled every few hundred decoder tokens, so a
	// cancellation interrupts the splitter even in the middle of a huge
	// record. The poll costs one counter increment per token.
	Ctx context.Context
	// Metrics, when non-nil, receives one flush of splitter counters per
	// record (records, nodes, bytes, arena reuse); the nil check is the
	// only cost when detached.
	Metrics *metrics.Split
	// Events, when non-nil, receives trace events: record boundaries and
	// the recovery activity of Recover (token skims, raw
	// resynchronizations, truncation). The stream pipeline drains the
	// sink per record; a nil sink costs one pointer test per would-be
	// event.
	Events *trace.EventSink
}

// LimitError reports a record (or the stream) exceeding a configured
// resource bound. Kinds "nodes", "depth", and "bytes" are record-scoped:
// the offending record is abandoned mid-parse to keep memory bounded, and
// Recover can skip past it. Kind "stream" (the MaxStreamBytes budget) is
// stream-fatal.
type LimitError struct {
	Kind   string // "nodes", "depth", "bytes", or "stream"
	Limit  int    // the configured bound
	Record int    // 0-based index of the offending record
	Path   hedge.Path
}

func (e *LimitError) Error() string {
	if e.Kind == "stream" {
		return fmt.Sprintf("xmlhedge: stream exceeds input budget of %d bytes", e.Limit)
	}
	return fmt.Sprintf("xmlhedge: record %d at %s exceeds %s limit %d",
		e.Record, e.Path, e.Kind, e.Limit)
}

// RecordParseError wraps a parse failure confined to one record with the
// record's identity, so error policies can attribute the failure and
// decide its fate. Unwrap exposes the underlying decoder error.
type RecordParseError struct {
	// Index is the 0-based index of the failing record.
	Index int
	// Path is the Dewey path of the record root within the input document.
	Path hedge.Path
	// Err is the underlying failure.
	Err error
}

func (e *RecordParseError) Error() string {
	return fmt.Sprintf("xmlhedge: record %d at %s: %v", e.Index, e.Path, e.Err)
}

func (e *RecordParseError) Unwrap() error { return e.Err }

// Arena bump-allocates hedge nodes in fixed-size chunks and recycles them
// across records: Reset rewinds the arena without freeing, and recycled
// element nodes keep their Children slice capacity, so a warm arena parses
// a record of familiar shape with no allocation. Chunking keeps previously
// handed-out node pointers stable while the arena grows.
//
// Beyond nodes, the arena carries everything else a record's parse would
// otherwise allocate: a text slab (node Text strings are views into it), an
// int slab (Dewey paths), and an element-name intern table that survives
// Reset. All of it shares the nodes' lifetime — valid until Reset.
type Arena struct {
	chunks [][]hedge.Node
	chunk  int // current chunk index
	used   int // nodes used in the current chunk

	// roots backs the one-element Hedge handed out per record. Append-only
	// between Resets so several live records parsed into the same arena
	// keep distinct roots; growth may reallocate, which leaves earlier
	// handed-out views pointing at the old backing array — still valid.
	roots []*hedge.Node

	// Text slab: decoded character data lives here and node Text strings
	// are unsafe views into it, so parsing text costs a copy, not an
	// allocation. Chunking keeps handed-out strings stable while it grows.
	textChunks [][]byte
	textChunk  int
	textUsed   int

	// Int slab, same discipline, for record Dewey paths.
	intChunks [][]int
	intChunk  int
	intUsed   int

	// names interns element names for the arena's lifetime (Reset keeps
	// it): a stream's names repeat, so a warm arena resolves them without
	// allocating. Capped so adversarially unique names cannot grow it
	// without bound.
	names map[string]string

	// reused / chunkAllocs are lifetime tallies (Reset keeps them): nodes
	// served from an already-allocated chunk vs. fresh chunk allocations.
	// Single-goroutine plain counters; readers flush deltas (see
	// RecordReader.Read).
	reused      int64
	chunkAllocs int64
}

const (
	arenaChunk     = 512
	arenaTextChunk = 1 << 14
	arenaIntChunk  = 256
	arenaMaxNames  = 4096
)

// Reset rewinds the arena; hedges, paths, and text strings parsed from it
// become invalid. The lifetime reuse tallies and the name intern table
// survive Reset.
func (a *Arena) Reset() {
	a.chunk, a.used = 0, 0
	a.roots = a.roots[:0]
	a.textChunk, a.textUsed = 0, 0
	a.intChunk, a.intUsed = 0, 0
}

// text copies b into the arena's text slab, returning it as a string valid
// until Reset. Oversized texts fall back to a plain allocation.
func (a *Arena) text(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > arenaTextChunk {
		return string(b)
	}
	if a.textChunk < len(a.textChunks) && len(b) > arenaTextChunk-a.textUsed {
		a.textChunk, a.textUsed = a.textChunk+1, 0
	}
	if a.textChunk == len(a.textChunks) {
		a.textChunks = append(a.textChunks, make([]byte, arenaTextChunk))
		a.textUsed = 0
	}
	dst := a.textChunks[a.textChunk][a.textUsed : a.textUsed+len(b)]
	a.textUsed += len(b)
	copy(dst, b)
	// The slab region is written exactly once and never moves (chunks are
	// append-only), so an unsafe no-copy string view is sound.
	return unsafe.String(&dst[0], len(dst))
}

// ints hands out an n-int slice from the arena's int slab, valid until
// Reset; oversized requests fall back to a plain allocation.
func (a *Arena) ints(n int) []int {
	if n == 0 {
		return nil
	}
	if n > arenaIntChunk {
		return make([]int, n)
	}
	if a.intChunk < len(a.intChunks) && n > arenaIntChunk-a.intUsed {
		a.intChunk, a.intUsed = a.intChunk+1, 0
	}
	if a.intChunk == len(a.intChunks) {
		a.intChunks = append(a.intChunks, make([]int, arenaIntChunk))
		a.intUsed = 0
	}
	s := a.intChunks[a.intChunk][a.intUsed : a.intUsed+n : a.intUsed+n]
	a.intUsed += n
	return s
}

// internName returns a stable string for an element name; unlike slab
// storage the interned string is independent of Reset.
func (a *Arena) internName(b []byte) string {
	if s, ok := a.names[string(b)]; ok {
		return s
	}
	if len(a.names) >= arenaMaxNames {
		return string(b)
	}
	if a.names == nil {
		a.names = make(map[string]string, 32)
	}
	s := string(b)
	a.names[s] = s
	return s
}

// Stats reports the arena's lifetime tallies: nodes served from recycled
// chunks and fresh chunk allocations.
func (a *Arena) Stats() (reused, chunkAllocs int64) { return a.reused, a.chunkAllocs }

func (a *Arena) node(kind hedge.NodeKind, name string) *hedge.Node {
	if a.chunk == len(a.chunks) {
		a.chunks = append(a.chunks, make([]hedge.Node, arenaChunk))
		a.chunkAllocs++
	} else {
		a.reused++
	}
	n := &a.chunks[a.chunk][a.used]
	a.used++
	if a.used == arenaChunk {
		a.chunk++
		a.used = 0
	}
	n.Kind, n.Name, n.Text = kind, name, ""
	n.Children = n.Children[:0]
	return n
}

// Record is one streamed record: a single-tree hedge plus its position in
// the enclosing document.
type Record struct {
	// Index is the 0-based record sequence number. Failed records consume
	// an index too, so skipping one leaves a gap rather than renumbering
	// its successors.
	Index int
	// Path is the Dewey path of the record root within the input document.
	// After a malformed-record resynchronization the document structure is
	// no longer fully known; paths then keep counting siblings from the
	// last verified prefix (best-effort addressing, monotone per record).
	// When the record was read into an Arena the path is arena-backed,
	// valid only until that arena is Reset (like Hedge).
	Path hedge.Path
	// Nodes is the node count of the record subtree.
	Nodes int
	// Hedge is the record subtree as a one-tree hedge. When the record was
	// read into an Arena it is valid only until that arena is Reset — node
	// storage, Text strings (views into the arena's text slab), and Path
	// alike.
	Hedge hedge.Hedge
	// Hint is the prefilter's per-group verdict for this record: bit i of
	// the word-slice bitset set means requirement group i may match (see
	// Prefilter.verdict, Hint.Allows). When no verdict was computed —
	// prefilter off, skim aborted, degraded mode — it is HintAll, so
	// evaluators must treat a set bit as "evaluate" and only a clear bit
	// as proof of non-matching.
	Hint Hint
}

// recKind classifies how a failed RecordReader can resume.
type recKind uint8

const (
	recSkim   recKind = iota + 1 // decoder alive: consume tokens to the record's end
	recResync                    // decoder dead: raw-scan for the next split-name start tag
	recEOF                       // truncated input: recovering ends the stream cleanly
)

// recovery is the pending recovery plan recorded at the moment a
// record-scoped failure is detected.
type recovery struct {
	kind  recKind
	opens int   // recSkim: open elements left to consume
	from  int64 // recResync: absolute offset to scan from
}

// RecordReader incrementally splits an XML document into records. It keeps
// only the record currently being parsed in memory, so streaming a
// multi-gigabyte document costs O(largest record), not O(document).
//
// Failures are contained per record where possible: limit violations and
// malformed markup inside one record leave the reader in a sticky error
// state from which Recover can resume at the next record (see Recover for
// the exact recoverability rules), which is what streaming Skip policies
// build on.
type RecordReader struct {
	tr   *tailReader
	tk   *tokenizer // nil only in degraded mode between records
	opts RecordOptions
	idx  int   // next record index
	idxs []int // sibling index of each open outside-record element
	// counts[d] = children seen so far at depth d outside records
	// (counts[0] counts top-level nodes).
	counts []int
	stack  []*hedge.Node // readRecord's open-element stack, reused
	err    error         // sticky until Recover
	rec    *recovery     // pending recovery plan for the sticky error
	// degraded: a resynchronization happened; records are now located by
	// raw-scanning for the split name and parsed by per-record tokenizers.
	degraded bool
	degTk    *tokenizer // reused degraded-mode per-record tokenizer
	scanPos  int64      // degraded mode: absolute offset to scan from (tk == nil)
	polls    int        // tokens since the reader started; drives poll sampling
	// flushedBytes is the input offset already flushed to opts.Metrics.
	flushedBytes int64
	// skimStack is the prefilter skim's reusable open-tag extent stack.
	skimStack []int
	// prefiltered counts records skipped by the prefilter over the reader's
	// lifetime.
	prefiltered int64
	// hint is the prefilter verdict for the record about to be read: set by
	// tryPrefilter when a skim succeeded but kept the record, consumed by
	// readRecord via takeHint. Zero means "no verdict" (reads as HintAll).
	hint Hint
	// pfScratch holds the skim's reusable verdict bitsets.
	pfScratch verdictScratch
}

// NewRecordReader starts splitting r under the given options.
func NewRecordReader(r io.Reader, opts RecordOptions) *RecordReader {
	tr := newTailReader(r)
	return &RecordReader{tr: tr, tk: newTokenizer(tr), opts: opts, counts: []int{0}}
}

// InputOffset returns the number of input bytes consumed so far.
func (rr *RecordReader) InputOffset() int64 {
	if rr.tk == nil {
		return rr.scanPos
	}
	return rr.tk.off()
}

// NextIndex returns the index the next record (or record failure) will be
// assigned.
func (rr *RecordReader) NextIndex() int { return rr.idx }

// Prefiltered returns how many records the prefilter has skipped so far.
func (rr *RecordReader) Prefiltered() int64 { return rr.prefiltered }

// takeHint consumes the pending prefilter verdict for the record being
// read. No verdict (prefilter off, aborted skim, degraded mode) reads as
// HintAll: every group may match.
func (rr *RecordReader) takeHint() Hint {
	h := rr.hint
	rr.hint = Hint{}
	if h.zero() {
		return HintAll
	}
	return h
}

// poll samples the cancellation and stream-budget checks once every 256
// tokens; the off-sample cost is one increment and mask.
func (rr *RecordReader) poll() error {
	rr.polls++
	if rr.polls&255 != 0 {
		return nil
	}
	return rr.pollNowAt(rr.InputOffset())
}

// pollNowAt applies the context and stream-budget checks against the given
// absolute input offset.
func (rr *RecordReader) pollNowAt(off int64) error {
	if ctx := rr.opts.Ctx; ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if mb := rr.opts.MaxStreamBytes; mb > 0 && off > mb {
		return &LimitError{Kind: "stream", Limit: int(mb), Record: rr.idx, Path: rr.nextPath()}
	}
	return nil
}

// nextPath is the Dewey path the next record root would get, plainly
// allocated (used on failure paths, where the path escapes into errors).
func (rr *RecordReader) nextPath() hedge.Path {
	depth := len(rr.idxs)
	return append(append(hedge.Path(nil), rr.idxs...), rr.counts[depth])
}

// nextPathIn is nextPath served from the arena's int slab: valid until the
// arena is Reset, like everything else in a record.
func (rr *RecordReader) nextPathIn(a *Arena) hedge.Path {
	if a == nil {
		return rr.nextPath()
	}
	depth := len(rr.idxs)
	p := a.ints(depth + 1)
	copy(p, rr.idxs)
	p[depth] = rr.counts[depth]
	return p
}

// clonePath copies an arena-backed path into plain storage, for errors
// that outlive the record's arena.
func clonePath(p hedge.Path) hedge.Path {
	return append(hedge.Path(nil), p...)
}

// resyncable reports whether a malformed record can be scanned past: that
// needs a named split (the delimiter to look for) short enough to fit the
// replay window.
func (rr *RecordReader) resyncable() bool {
	return rr.opts.Split != "" && len(rr.opts.Split) <= tailWindow-8
}

// Read returns the next record, parsed into arena a (a may be nil to
// allocate plainly). It returns io.EOF at a well-formed end of input; any
// other error is sticky: repeated Reads fail identically until Recover
// clears a recoverable failure.
func (rr *RecordReader) Read(a *Arena) (Record, error) {
	if rr.err != nil {
		return Record{}, rr.err
	}
	m := rr.opts.Metrics
	var reused0, allocs0 int64
	if m != nil && a != nil {
		reused0, allocs0 = a.Stats()
	}
	var rec Record
	var err error
	if err = rr.pollNowAt(rr.InputOffset()); err == nil {
		if rr.degraded {
			rec, err = rr.readDegraded(a)
		} else {
			rec, err = rr.read(a)
		}
	}
	if err != nil {
		rr.err = err
	}
	if m != nil {
		// Flush the bytes consumed since the last flush on every outcome
		// (EOF included), and the record counters on success only.
		if off := rr.InputOffset(); off > rr.flushedBytes {
			m.Bytes.Add(off - rr.flushedBytes)
			rr.flushedBytes = off
		}
		if err == nil {
			m.Records.Inc()
			m.Nodes.Add(int64(rec.Nodes))
			if a != nil {
				reused, allocs := a.Stats()
				m.ArenaNodesReused.Add(reused - reused0)
				m.ArenaChunkAllocs.Add(allocs - allocs0)
			}
		}
	}
	return rec, err
}

// CanRecover reports whether the sticky error is a record-scoped failure
// Recover can resume past. Stream-fatal conditions — reader I/O errors,
// cancellation, the stream byte budget, malformed markup with no named
// split to resynchronize on — report false.
func (rr *RecordReader) CanRecover() bool {
	return rr.err != nil && rr.err != io.EOF && rr.rec != nil
}

// Recover resumes reading past a record-scoped failure, consuming the
// failed record's index and sibling slot:
//
//   - after a limit violation (kinds "nodes", "depth", "bytes") the stream
//     is still well-formed, so the rest of the offending record is skimmed
//     token by token in O(1) memory;
//   - after malformed markup inside a record, a named split permits
//     byte-level resynchronization: the raw input is scanned (comment-,
//     CDATA-, and quote-aware) for the next split-name start tag and a
//     fresh decoder takes over from there. A malformation that swallows
//     the record's own terminator may cost the records it absorbed; the
//     scan resumes at the earliest plausible record start.
//   - after truncated input, recovering ends the stream cleanly (the next
//     Read returns io.EOF).
//
// Recover returns nil when reading can continue and the terminal error
// otherwise. Calling it with no sticky error (or at EOF) is a no-op.
func (rr *RecordReader) Recover() error {
	if rr.err == nil || rr.err == io.EOF {
		return nil
	}
	p := rr.rec
	rr.rec = nil
	if p == nil {
		return rr.err
	}
	switch p.kind {
	case recEOF:
		if s := rr.opts.Events; s.Enabled() {
			s.Emit("truncated", fmt.Sprintf("record %d: input truncated, stream ends", rr.idx))
		}
		rr.idx++
		rr.err = io.EOF
		return nil
	case recSkim:
		if s := rr.opts.Events; s.Enabled() {
			s.Emit("skim", fmt.Sprintf("record %d: skimming %d open element(s)", rr.idx, p.opens))
		}
		if err := rr.skim(p.opens); err != nil {
			var se *xml.SyntaxError
			if errors.As(err, &se) && rr.resyncable() {
				// The skim itself hit broken markup: fall back to a raw
				// resynchronization from where the skim died.
				rr.scanPos = rr.tk.off()
				return rr.enterDegraded()
			}
			rr.err = err
			return err
		}
		rr.consumeSlot()
		if rr.degraded {
			rr.scanPos = rr.tk.off()
			rr.tk = nil
		}
		rr.err = nil
		return nil
	case recResync:
		rr.scanPos = p.from
		return rr.enterDegraded()
	}
	return rr.err
}

// enterDegraded switches the reader to raw-scan record location, consuming
// the failed record's slot.
func (rr *RecordReader) enterDegraded() error {
	if s := rr.opts.Events; s.Enabled() {
		s.Emit("resync", fmt.Sprintf("record %d: raw scan for <%s from byte %d",
			rr.idx, rr.opts.Split, rr.scanPos))
	}
	rr.consumeSlot()
	rr.degraded = true
	rr.tk = nil
	rr.err = nil
	return nil
}

// consumeSlot burns the failed record's index and sibling position, so the
// numbering of its healthy successors is unaffected by the skip.
func (rr *RecordReader) consumeSlot() {
	rr.counts[len(rr.idxs)]++
	rr.idx++
}

// skim consumes tokens until the given number of open elements has closed,
// discarding everything: the O(1)-memory walk past an over-limit record.
func (rr *RecordReader) skim(opens int) error {
	for opens > 0 {
		if err := rr.poll(); err != nil {
			return err
		}
		if err := rr.tk.next(); err != nil {
			if err == io.EOF {
				return fmt.Errorf("xmlhedge: unexpected end of input while skipping a record")
			}
			return fmt.Errorf("xmlhedge: %w", err)
		}
		switch rr.tk.kind {
		case tokStart:
			opens++
		case tokEnd:
			opens--
		}
	}
	return nil
}

func (rr *RecordReader) read(a *Arena) (Record, error) {
	tk := rr.tk
	for {
		if err := rr.poll(); err != nil {
			return Record{}, err
		}
		startOff := tk.off()
		err := tk.next()
		if err == io.EOF {
			if len(rr.idxs) != 0 {
				// Defensive: the tokenizer reports EOF with open elements
				// as a syntax error, so this branch needs it lost its stack.
				rr.rec = &recovery{kind: recEOF}
				return Record{}, fmt.Errorf("xmlhedge: unexpected end of input at depth %d", len(rr.idxs))
			}
			return Record{}, io.EOF
		}
		if err != nil {
			return Record{}, rr.failOuter(err)
		}
		switch tk.kind {
		case tokStart:
			depth := len(rr.idxs)
			if rr.isRecordRoot(tk.name, depth) {
				if rr.opts.Prefilter != nil && rr.tryPrefilter(startOff) {
					continue
				}
				return rr.readRecord(a, startOff)
			}
			rr.idxs = append(rr.idxs, rr.counts[depth])
			rr.counts[depth]++
			rr.counts = append(rr.counts[:depth+1], 0)
		case tokEnd:
			// The tokenizer guarantees balance; this closes an
			// outside-record element.
			rr.idxs = rr.idxs[:len(rr.idxs)-1]
		case tokText:
			if rr.opts.KeepWhitespace || !isSpace(tk.text) {
				if len(rr.idxs) == 0 {
					if isSpace(tk.text) {
						continue // prolog/epilog whitespace
					}
					if rr.resyncable() {
						rr.rec = &recovery{kind: recResync, from: tk.off()}
					}
					return Record{}, fmt.Errorf("xmlhedge: character data outside the document element")
				}
				// Text between records occupies a child slot, exactly as in
				// the whole-document parse.
				rr.counts[len(rr.idxs)]++
			}
		}
	}
}

// failOuter classifies a tokenizer failure between records: syntax errors
// can be resynced past when a named split provides the delimiter; I/O
// errors are stream-fatal.
func (rr *RecordReader) failOuter(err error) error {
	var se *xml.SyntaxError
	if errors.As(err, &se) && rr.resyncable() {
		rr.rec = &recovery{kind: recResync, from: rr.tk.off()}
	}
	return fmt.Errorf("xmlhedge: %w", err)
}

// readDegraded locates the next record by raw-scanning for the split name
// and parses it with a per-record tokenizer over a tail-window replay.
func (rr *RecordReader) readDegraded(a *Arena) (Record, error) {
	pos, err := rr.scanForRecord()
	if err != nil {
		return Record{}, err // io.EOF, cancellation, or budget exhaustion
	}
	if s := rr.opts.Events; s.Enabled() {
		s.Emit("resync_hit", fmt.Sprintf("record start candidate at byte %d", pos))
	}
	src, err := rr.tr.replaySourceFrom(pos)
	if err != nil {
		return Record{}, err
	}
	if rr.degTk == nil {
		rr.degTk = newTokenizer(src)
	} else {
		rr.degTk.reset(src)
	}
	rr.tk = rr.degTk
	if err := rr.tk.next(); err != nil {
		return Record{}, rr.failDegradedStart(err, pos)
	}
	if rr.tk.kind != tokStart {
		return Record{}, rr.failDegradedStart(fmt.Errorf("unexpected token at resync point"), pos)
	}
	rec, err := rr.readRecord(a, pos)
	if err != nil {
		return Record{}, err // rr.tk stays set: skim-based recovery needs it
	}
	rr.scanPos = rr.tk.off()
	rr.tk = nil
	return rec, nil
}

// failDegradedStart reports a resync candidate that failed to parse as a
// start tag; the scan resumes past it.
func (rr *RecordReader) failDegradedStart(err error, pos int64) error {
	from := rr.tk.off()
	if from <= pos {
		from = pos + 1
	}
	rr.rec = &recovery{kind: recResync, from: from}
	return &RecordParseError{Index: rr.idx, Path: rr.nextPath(),
		Err: fmt.Errorf("xmlhedge: %w", err)}
}

// isRecordRoot decides whether a start element outside any record begins a
// record: under the default split, any child of a top-level element; under
// a named split, any element with the split name.
func (rr *RecordReader) isRecordRoot(name []byte, depth int) bool {
	if rr.opts.Split == "" {
		return depth == 1
	}
	return string(name) == rr.opts.Split
}

// readRecord parses the record whose start tag the tokenizer just
// produced. startOff is the absolute input offset of the record's '<',
// anchoring the per-record byte budget.
func (rr *RecordReader) readRecord(a *Arena, startOff int64) (Record, error) {
	tk := rr.tk
	depth := len(rr.idxs)
	rec := Record{Index: rr.idx, Path: rr.nextPathIn(a), Hint: rr.takeHint()}
	if s := rr.opts.Events; s.Enabled() {
		s.Emit("record", fmt.Sprintf("record %d <%s> at byte %d", rec.Index, tk.name, startOff))
	}
	var root *hedge.Node
	if a == nil {
		root = &hedge.Node{Kind: hedge.Elem, Name: string(tk.name)}
	} else {
		root = a.node(hedge.Elem, a.internName(tk.name))
	}
	rec.Nodes = 1
	rr.stack = append(rr.stack[:0], root)
	for len(rr.stack) > 0 {
		if err := rr.poll(); err != nil {
			return Record{}, err
		}
		if mb := rr.opts.MaxBytes; mb > 0 && tk.off()-startOff > mb {
			return Record{}, rr.limitErr(&rec, "bytes", int(mb), len(rr.stack))
		}
		if err := tk.next(); err != nil {
			return Record{}, rr.failRecord(&rec, err)
		}
		switch tk.kind {
		case tokStart:
			if rr.opts.MaxDepth > 0 && len(rr.stack)+1 > rr.opts.MaxDepth {
				return Record{}, rr.limitErr(&rec, "depth", rr.opts.MaxDepth, len(rr.stack)+1)
			}
			if rr.opts.MaxNodes > 0 && rec.Nodes+1 > rr.opts.MaxNodes {
				return Record{}, rr.limitErr(&rec, "nodes", rr.opts.MaxNodes, len(rr.stack)+1)
			}
			rec.Nodes++
			var n *hedge.Node
			if a == nil {
				n = &hedge.Node{Kind: hedge.Elem, Name: string(tk.name)}
			} else {
				n = a.node(hedge.Elem, a.internName(tk.name))
			}
			parent := rr.stack[len(rr.stack)-1]
			parent.Children = append(parent.Children, n)
			rr.stack = append(rr.stack, n)
		case tokEnd:
			rr.stack = rr.stack[:len(rr.stack)-1]
		case tokText:
			if !rr.opts.KeepWhitespace && isSpace(tk.text) {
				continue
			}
			if rr.opts.MaxNodes > 0 && rec.Nodes+1 > rr.opts.MaxNodes {
				return Record{}, rr.limitErr(&rec, "nodes", rr.opts.MaxNodes, len(rr.stack))
			}
			rec.Nodes++
			var n *hedge.Node
			if a == nil {
				n = &hedge.Node{Kind: hedge.Var, Name: hedge.TextVar, Text: string(tk.text)}
			} else {
				n = a.node(hedge.Var, hedge.TextVar)
				n.Text = a.text(tk.text)
			}
			parent := rr.stack[len(rr.stack)-1]
			parent.Children = append(parent.Children, n)
		}
	}
	rr.counts[depth]++
	rr.idx++
	if a != nil {
		a.roots = append(a.roots, root)
		rec.Hedge = a.roots[len(a.roots)-1 : len(a.roots) : len(a.roots)]
	} else {
		rec.Hedge = hedge.Hedge{root}
	}
	return rec, nil
}

// limitErr abandons the record over a resource bound, planning the token
// skim that skips the rest of it. The error's path is cloned out of the
// arena — errors outlive the record's storage.
func (rr *RecordReader) limitErr(rec *Record, kind string, limit, opens int) error {
	rr.rec = &recovery{kind: recSkim, opens: opens}
	return &LimitError{Kind: kind, Limit: limit, Record: rec.Index, Path: clonePath(rec.Path)}
}

// failRecord classifies a tokenizer failure inside a record: truncation
// surfaces as the tokenizer's "unexpected EOF" syntax error (resyncing
// when a named split allows it), exactly like the decoder's.
func (rr *RecordReader) failRecord(rec *Record, err error) error {
	if err == io.EOF {
		// Defensive: the tokenizer reports EOF inside an element as a
		// syntax error; a raw EOF here would mean it lost its stack.
		rr.rec = &recovery{kind: recEOF}
		err = fmt.Errorf("xmlhedge: unexpected end of input inside a record")
	} else {
		var se *xml.SyntaxError
		if errors.As(err, &se) && rr.resyncable() {
			rr.rec = &recovery{kind: recResync, from: rr.tk.off()}
		}
		err = fmt.Errorf("xmlhedge: %w", err)
	}
	return &RecordParseError{Index: rec.Index, Path: clonePath(rec.Path), Err: err}
}

// isSpace reports whether the character data is whitespace-only.
func isSpace(b []byte) bool {
	for _, c := range b {
		switch c {
		case ' ', '\t', '\n', '\r':
		default:
			return false
		}
	}
	return true
}
