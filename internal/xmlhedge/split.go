package xmlhedge

import (
	"encoding/xml"
	"fmt"
	"io"

	"xpe/internal/hedge"
	"xpe/internal/metrics"
)

// RecordOptions configures record splitting for streaming evaluation.
type RecordOptions struct {
	// Split names the record root element: every subtree rooted at an
	// element with this local name (outermost wins when they nest) is one
	// record. Empty means the default split: every child element of the
	// document element is a record.
	Split string
	// MaxNodes bounds the node count of a single record (0 = unlimited);
	// exceeding it aborts the stream with a *LimitError.
	MaxNodes int
	// MaxDepth bounds the element nesting depth within a record, counting
	// the record root as depth 1 (0 = unlimited).
	MaxDepth int
	// KeepWhitespace retains whitespace-only text nodes (see Options).
	KeepWhitespace bool
	// Metrics, when non-nil, receives one flush of splitter counters per
	// record (records, nodes, bytes, arena reuse); the nil check is the
	// only cost when detached.
	Metrics *metrics.Split
}

// LimitError reports a record exceeding a configured resource bound. The
// stream cannot continue past it: the offending record is abandoned
// mid-parse to keep memory bounded.
type LimitError struct {
	Kind   string // "nodes" or "depth"
	Limit  int    // the configured bound
	Record int    // 0-based index of the offending record
	Path   hedge.Path
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("xmlhedge: record %d at %s exceeds %s limit %d",
		e.Record, e.Path, e.Kind, e.Limit)
}

// Arena bump-allocates hedge nodes in fixed-size chunks and recycles them
// across records: Reset rewinds the arena without freeing, and recycled
// element nodes keep their Children slice capacity, so a warm arena parses
// a record of familiar shape with no allocation. Chunking keeps previously
// handed-out node pointers stable while the arena grows.
type Arena struct {
	chunks  [][]hedge.Node
	chunk   int // current chunk index
	used    int // nodes used in the current chunk
	rootBuf [1]*hedge.Node

	// reused / chunkAllocs are lifetime tallies (Reset keeps them): nodes
	// served from an already-allocated chunk vs. fresh chunk allocations.
	// Single-goroutine plain counters; readers flush deltas (see
	// RecordReader.Read).
	reused      int64
	chunkAllocs int64
}

const arenaChunk = 512

// Reset rewinds the arena; hedges parsed from it become invalid. The
// lifetime reuse tallies survive Reset.
func (a *Arena) Reset() { a.chunk, a.used = 0, 0 }

// Stats reports the arena's lifetime tallies: nodes served from recycled
// chunks and fresh chunk allocations.
func (a *Arena) Stats() (reused, chunkAllocs int64) { return a.reused, a.chunkAllocs }

func (a *Arena) node(kind hedge.NodeKind, name string) *hedge.Node {
	if a.chunk == len(a.chunks) {
		a.chunks = append(a.chunks, make([]hedge.Node, arenaChunk))
		a.chunkAllocs++
	} else {
		a.reused++
	}
	n := &a.chunks[a.chunk][a.used]
	a.used++
	if a.used == arenaChunk {
		a.chunk++
		a.used = 0
	}
	n.Kind, n.Name, n.Text = kind, name, ""
	n.Children = n.Children[:0]
	return n
}

// Record is one streamed record: a single-tree hedge plus its position in
// the enclosing document.
type Record struct {
	// Index is the 0-based record sequence number.
	Index int
	// Path is the Dewey path of the record root within the input document.
	Path hedge.Path
	// Nodes is the node count of the record subtree.
	Nodes int
	// Hedge is the record subtree as a one-tree hedge. When the record was
	// read into an Arena it is valid only until that arena is Reset.
	Hedge hedge.Hedge
}

// RecordReader incrementally splits an XML document into records. It keeps
// only the record currently being parsed in memory, so streaming a
// multi-gigabyte document costs O(largest record), not O(document).
type RecordReader struct {
	dec  *xml.Decoder
	opts RecordOptions
	idx  int   // next record index
	idxs []int // sibling index of each open outside-record element
	// counts[d] = children seen so far at depth d outside records
	// (counts[0] counts top-level nodes).
	counts []int
	err    error // sticky
	// flushedBytes is the input offset already flushed to opts.Metrics.
	flushedBytes int64
}

// NewRecordReader starts splitting r under the given options.
func NewRecordReader(r io.Reader, opts RecordOptions) *RecordReader {
	return &RecordReader{dec: xml.NewDecoder(r), opts: opts, counts: []int{0}}
}

// InputOffset returns the number of input bytes consumed so far.
func (rr *RecordReader) InputOffset() int64 { return rr.dec.InputOffset() }

// Read returns the next record, parsed into arena a (a may be nil to
// allocate plainly). It returns io.EOF at a well-formed end of input; any
// other error (including *LimitError) is sticky.
func (rr *RecordReader) Read(a *Arena) (Record, error) {
	if rr.err != nil {
		return Record{}, rr.err
	}
	m := rr.opts.Metrics
	var reused0, allocs0 int64
	if m != nil && a != nil {
		reused0, allocs0 = a.Stats()
	}
	rec, err := rr.read(a)
	if err != nil {
		rr.err = err
	}
	if m != nil {
		// Flush the bytes consumed since the last flush on every outcome
		// (EOF included), and the record counters on success only.
		if off := rr.dec.InputOffset(); off > rr.flushedBytes {
			m.Bytes.Add(off - rr.flushedBytes)
			rr.flushedBytes = off
		}
		if err == nil {
			m.Records.Inc()
			m.Nodes.Add(int64(rec.Nodes))
			if a != nil {
				reused, allocs := a.Stats()
				m.ArenaNodesReused.Add(reused - reused0)
				m.ArenaChunkAllocs.Add(allocs - allocs0)
			}
		}
	}
	return rec, err
}

func (rr *RecordReader) read(a *Arena) (Record, error) {
	for {
		tok, err := rr.dec.Token()
		if err == io.EOF {
			if len(rr.idxs) != 0 {
				return Record{}, fmt.Errorf("xmlhedge: unexpected end of input at depth %d", len(rr.idxs))
			}
			return Record{}, io.EOF
		}
		if err != nil {
			return Record{}, fmt.Errorf("xmlhedge: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth := len(rr.idxs)
			if rr.isRecordRoot(t.Name.Local, depth) {
				return rr.readRecord(t, a)
			}
			rr.idxs = append(rr.idxs, rr.counts[depth])
			rr.counts[depth]++
			rr.counts = append(rr.counts[:depth+1], 0)
		case xml.EndElement:
			// The decoder guarantees balance; this closes an outside-record
			// element.
			rr.idxs = rr.idxs[:len(rr.idxs)-1]
		case xml.CharData:
			if rr.opts.KeepWhitespace || !isSpace(t) {
				if len(rr.idxs) == 0 {
					if isSpace(t) {
						continue // prolog/epilog whitespace
					}
					return Record{}, fmt.Errorf("xmlhedge: character data outside the document element")
				}
				// Text between records occupies a child slot, exactly as in
				// the whole-document parse.
				rr.counts[len(rr.idxs)]++
			}
		}
	}
}

// isRecordRoot decides whether a start element outside any record begins a
// record: under the default split, any child of a top-level element; under
// a named split, any element with the split name.
func (rr *RecordReader) isRecordRoot(name string, depth int) bool {
	if rr.opts.Split == "" {
		return depth == 1
	}
	return name == rr.opts.Split
}

// readRecord parses the subtree rooted at start into a record.
func (rr *RecordReader) readRecord(start xml.StartElement, a *Arena) (Record, error) {
	depth := len(rr.idxs)
	rec := Record{Index: rr.idx, Path: append(append(hedge.Path(nil), rr.idxs...), rr.counts[depth])}
	newNode := func(kind hedge.NodeKind, name string) *hedge.Node {
		if a == nil {
			return &hedge.Node{Kind: kind, Name: name}
		}
		return a.node(kind, name)
	}
	limitErr := func(kind string, limit int) error {
		return &LimitError{Kind: kind, Limit: limit, Record: rec.Index, Path: rec.Path}
	}
	root := newNode(hedge.Elem, start.Name.Local)
	rec.Nodes = 1
	stack := []*hedge.Node{root}
	for len(stack) > 0 {
		tok, err := rr.dec.Token()
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("xmlhedge: unexpected end of input inside <%s>", stack[len(stack)-1].Name)
			} else {
				err = fmt.Errorf("xmlhedge: %w", err)
			}
			return Record{}, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if rr.opts.MaxDepth > 0 && len(stack)+1 > rr.opts.MaxDepth {
				return Record{}, limitErr("depth", rr.opts.MaxDepth)
			}
			if rr.opts.MaxNodes > 0 && rec.Nodes+1 > rr.opts.MaxNodes {
				return Record{}, limitErr("nodes", rr.opts.MaxNodes)
			}
			rec.Nodes++
			n := newNode(hedge.Elem, t.Name.Local)
			parent := stack[len(stack)-1]
			parent.Children = append(parent.Children, n)
			stack = append(stack, n)
		case xml.EndElement:
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if !rr.opts.KeepWhitespace && isSpace(t) {
				continue
			}
			if rr.opts.MaxNodes > 0 && rec.Nodes+1 > rr.opts.MaxNodes {
				return Record{}, limitErr("nodes", rr.opts.MaxNodes)
			}
			rec.Nodes++
			n := newNode(hedge.Var, hedge.TextVar)
			n.Text = string(t)
			parent := stack[len(stack)-1]
			parent.Children = append(parent.Children, n)
		}
	}
	rr.counts[depth]++
	rr.idx++
	if a != nil {
		a.rootBuf[0] = root
		rec.Hedge = a.rootBuf[:1:1]
	} else {
		rec.Hedge = hedge.Hedge{root}
	}
	return rec, nil
}

// isSpace reports whether the character data is whitespace-only.
func isSpace(b []byte) bool {
	for _, c := range b {
		switch c {
		case ' ', '\t', '\n', '\r':
		default:
			return false
		}
	}
	return true
}
