package xmlhedge

// Raw-byte record prefiltering: the runtime half of the prefilter cascade.
//
// A compiled query knows a set of element labels every matching record must
// contain (core.RequiredLabels). Before parsing a record, the reader skims
// its raw bytes — a structural scan that finds the record's extent without
// building anything — and searches the extent for each required label. A
// record missing one cannot produce a match, so it is skipped whole:
// no node allocation, no evaluation, just one bulk consume.
//
// The skim must preserve the reader's observable behavior exactly, so it is
// deliberately conservative: it only skips a record when the scanned bytes
// would definitely have parsed cleanly (tag structure, attribute grammar,
// entities, comments/CDATA/PIs all validated to the tokenizer's rules) and
// definitely stay inside every configured resource limit. On any doubt —
// truncation, a lookahead cap, markup the tokenizer would reject, a limit
// that might trip — the skim consumes nothing and the record parses
// byte-identically to an unfiltered run. Skipped bytes flow through the
// normal consume path, so the resynchronization tail window stays exactly
// as an unfiltered run would have left it.
//
// Label presence is a byte search, not a parse: an element with local name
// L appears in raw XML as `<L` or `<prefix:L` (the tokenizer strips the
// prefix at the first colon), so L's bytes occur preceded by '<' or ':'
// (or '/' in its end tag) and followed by a non-name byte. Matches inside
// comments, CDATA, attribute values, or text are false positives that only
// prevent a skip — never unsound. The record root's own name is checked
// directly (its tag is already consumed when the skim runs).

import (
	"bytes"
	"fmt"
	"sort"
)

// prefilterLookahead caps how many bytes the skim will buffer ahead of the
// parse position before giving up and parsing normally. It bounds the
// reader's memory against a huge record on a skippable-looking prefix.
const prefilterLookahead = 1 << 20

// MaxPrefilterGroups bounds how many requirement groups (and how many
// distinct labels) a multi-query prefilter can track. Verdicts and label
// presence are word-slice bitsets, so the bound is a memory/scan-cost cap,
// not a representation limit. NewMultiPrefilter returns nil beyond the
// bound — every record then parses and evaluates normally.
const MaxPrefilterGroups = 1024

// Hint is the prefilter's per-group verdict bitset for one record: bit
// i%64 of word i/64 set means requirement group i may match. Word 0 rides
// inline, so runs with at most 64 groups — the common case — never
// allocate; groups 64+ live in the More overflow words, allocated once
// per kept record only when that many groups are registered. A word
// beyond len(More) reads as all-ones: absent evidence never gates a
// group off.
type Hint struct {
	W0   uint64
	More []uint64
}

// HintAll is the Record.Hint value meaning "no prefilter verdict": every
// requirement group may match, so nothing can be gated off (any group
// index beyond word 0 reads all-ones via the missing-word rule).
var HintAll = Hint{W0: ^uint64(0)}

// Allows reports whether requirement group i may match: only an
// explicitly clear bit — the skim proved a required label absent — gates
// a group off.
func (h Hint) Allows(i int) bool {
	if i < 64 {
		return h.W0&(1<<uint(i)) != 0
	}
	w := i/64 - 1
	if w >= len(h.More) {
		return true
	}
	return h.More[w]&(1<<(uint(i)&63)) != 0
}

// zero reports an all-clear verdict: no group can match, so the record is
// skippable whole. The zero Hint value doubles as RecordReader's
// "no pending verdict" sentinel (takeHint maps it to HintAll).
func (h Hint) zero() bool {
	if h.W0 != 0 {
		return false
	}
	for _, w := range h.More {
		if w != 0 {
			return false
		}
	}
	return true
}

// clone detaches the verdict from the scratch buffer it was computed in,
// so it stays valid across later records of the same reader.
func (h Hint) clone() Hint {
	if len(h.More) > 0 {
		h.More = append([]uint64(nil), h.More...)
	}
	return h
}

// bitset is a minimal word-slice bitset over scratch storage.
type bitset []uint64

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) & 63) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)&63)) != 0 }
func bitsetWords(n int) int     { return (n + 63) / 64 }

// verdictScratch holds the per-record bitsets a reader's skims reuse:
// label-presence memoization and the group verdict under construction.
// One reader skims one record at a time, so a single scratch set
// suffices; the verdict handed out on a kept record is cloned off mask.
type verdictScratch struct {
	checked, present, mask bitset
}

func (sc *verdictScratch) ensure(labels, groups int) {
	lw, gw := bitsetWords(labels), bitsetWords(groups)
	if cap(sc.checked) < lw {
		sc.checked = make(bitset, lw)
		sc.present = make(bitset, lw)
	}
	sc.checked = sc.checked[:lw]
	sc.present = sc.present[:lw]
	clear(sc.checked)
	clear(sc.present)
	if cap(sc.mask) < gw {
		sc.mask = make(bitset, gw)
	}
	sc.mask = sc.mask[:gw]
	clear(sc.mask)
}

// Prefilter is a compiled required-label matcher. A nil *Prefilter (or one
// built from an empty label set) disables prefiltering.
//
// A prefilter built by NewMultiPrefilter tracks several requirement groups
// at once over the union of their labels: one skim decides, per group,
// whether every required label is present. A record is skipped only when
// NO group is satisfied (requiring the union conjunctively would be
// unsound — it would skip records one group alone could match); kept
// records carry the per-group verdict as Record.Hint so the evaluator can
// skip automata whose requirements are provably absent.
type Prefilter struct {
	labels [][]byte
	names  []string
	// groups[i] lists indices into labels that group i requires; nil means
	// a single-group prefilter requiring every label (NewPrefilter).
	groups [][]int
	// free marks groups with an empty requirement set: they can match any
	// record, so their verdict bit is always on and no record is skippable.
	free bitset
}

// NewPrefilter compiles a prefilter from required element labels. Labels
// are deduplicated; empty strings are dropped. Returns nil when nothing
// remains — an empty requirement set can never reject a record.
func NewPrefilter(labels []string) *Prefilter {
	seen := make(map[string]bool, len(labels))
	p := &Prefilter{}
	for _, l := range labels {
		if l == "" || seen[l] {
			continue
		}
		seen[l] = true
		p.names = append(p.names, l)
		p.labels = append(p.labels, []byte(l))
	}
	if len(p.labels) == 0 {
		return nil
	}
	sort.Strings(p.names)
	return p
}

// NewMultiPrefilter compiles one prefilter over several requirement
// groups, typically one group per registered query (core.RequiredLabels).
// Empty labels are dropped; a group left empty is always satisfied, so it
// never lets a record be skipped but still contributes a hint bit. Returns
// nil when there are no groups, when every group is empty, or when the
// group count or the union label count exceeds MaxPrefilterGroups.
func NewMultiPrefilter(groups [][]string) *Prefilter {
	if len(groups) == 0 || len(groups) > MaxPrefilterGroups {
		return nil
	}
	p := &Prefilter{
		groups: make([][]int, len(groups)),
		free:   make(bitset, bitsetWords(len(groups))),
	}
	idx := make(map[string]int)
	anyReq := false
	for gi, g := range groups {
		var is []int
		for _, l := range g {
			if l == "" {
				continue
			}
			li, ok := idx[l]
			if !ok {
				li = len(p.labels)
				idx[l] = li
				p.names = append(p.names, l)
				p.labels = append(p.labels, []byte(l))
			}
			is = append(is, li)
		}
		if len(is) == 0 {
			p.free.set(gi)
			continue
		}
		anyReq = true
		p.groups[gi] = is
	}
	if !anyReq || len(p.labels) > MaxPrefilterGroups {
		return nil
	}
	sort.Strings(p.names)
	return p
}

// Labels returns the compiled label set, sorted.
func (p *Prefilter) Labels() []string { return p.names }

// verdict returns the bitset of requirement groups whose every required
// label is present in the record (bit i set means group i may match; an
// all-clear verdict means the record can be skipped whole). Presence is
// decided exactly as matchedBy does — root-name equality or an
// element-name byte pattern in body — so false positives only keep a
// group live, never drop one. A single-group prefilter answers with bit 0
// alone. The returned Hint's overflow words alias sc's storage; callers
// that retain a verdict past the next skim must clone it.
func (p *Prefilter) verdict(body, rootName []byte, sc *verdictScratch) Hint {
	if p.groups == nil {
		if p.matchedBy(body, rootName) {
			return Hint{W0: 1}
		}
		return Hint{}
	}
	// Label presence is computed lazily and memoized across groups: each
	// group short-circuits at its first missing label, and a label shared
	// by many groups (common when queries overlap) is searched once. On a
	// record satisfying no group this often settles after a single search
	// — the same short-circuit a single-query matchedBy enjoys.
	sc.ensure(len(p.labels), len(p.groups))
	copy(sc.mask, p.free)
	for gi, g := range p.groups {
		if g == nil {
			continue // free group, already in the mask
		}
		sat := true
		for _, li := range g {
			if !sc.checked.has(li) {
				sc.checked.set(li)
				l := p.labels[li]
				if bytes.Equal(l, rootName) || labelInBytes(body, l) {
					sc.present.set(li)
				}
			}
			if !sc.present.has(li) {
				sat = false
				break
			}
		}
		if sat {
			sc.mask.set(gi)
		}
	}
	h := Hint{W0: sc.mask[0]}
	if len(sc.mask) > 1 {
		h.More = sc.mask[1:]
	}
	return h
}

// matchedBy reports whether the record could match: every required label is
// the root's local name or occurs as an element-name byte pattern in body
// (the record's raw bytes after the root start tag, through its end tag).
func (p *Prefilter) matchedBy(body []byte, rootName []byte) bool {
	for _, l := range p.labels {
		if bytes.Equal(l, rootName) {
			continue
		}
		if !labelInBytes(body, l) {
			return false
		}
	}
	return true
}

// labelInBytes searches for label occurring as an element name: preceded by
// '<' (plain start tag), ':' (namespace-prefixed), or '/' (end tag), and
// followed by a byte that cannot continue an XML name.
func labelInBytes(b, label []byte) bool {
	for i := 0; ; {
		j := bytes.Index(b[i:], label)
		if j < 0 {
			return false
		}
		k := i + j
		end := k + len(label)
		if k > 0 && end < len(b) &&
			(b[k-1] == '<' || b[k-1] == ':' || b[k-1] == '/') &&
			!isNameByte(b[end]) {
			return true
		}
		i = k + 1
	}
}

// fillTo tries to ensure at least n unconsumed bytes are buffered, reading
// more input and growing the buffer as needed, and returns the buffered
// window (shorter than n when the source is exhausted or erroring). It
// consumes nothing: the tokenizer resumes exactly where it was, and a
// relative index into the returned window stays valid across further fills
// (compaction and growth preserve the unconsumed prefix).
func (t *tailReader) fillTo(n int) []byte {
	for t.w-t.r < n && t.rerr == nil {
		if t.w == len(t.buf) {
			if t.r > 0 {
				copy(t.buf, t.buf[t.r:t.w])
				t.w -= t.r
				t.r = 0
			} else {
				nb := make([]byte, 2*len(t.buf))
				copy(nb, t.buf[:t.w])
				t.buf = nb
			}
		}
		m, err := t.src.Read(t.buf[t.w:])
		t.w += m
		if err != nil {
			t.rerr = err
		}
	}
	return t.buf[t.r:t.w]
}

// skimResult describes a successfully skimmed record: its extent and the
// structural tallies the caller checks against resource limits.
type skimResult struct {
	n        int // bytes from the current position through the closing '>'
	elems    int // start tags seen, the record root excluded
	texts    int // gaps and CDATA sections that could each become a text node
	maxDepth int // deepest open-element nesting, the root counting as 1
}

// skimmer scans buffered lookahead bytes without consuming them. All
// positions are relative to the tail reader's current read position (the
// byte after the record root's start tag).
type skimmer struct {
	t   *tailReader
	max int
	// stack holds the open elements' raw-name extents as (start, end)
	// pairs of relative offsets, for end-tag matching. Extents stay valid
	// across fills because refilling preserves relative positions.
	stack []int
}

// byteAt returns the lookahead byte at relative position i, or ok=false at
// the cap, end of input, or a read error — all of which abort the skim.
func (s *skimmer) byteAt(i int) (byte, bool) {
	if i >= s.max {
		return 0, false
	}
	w := s.t.fillTo(i + 1)
	if i >= len(w) {
		return 0, false
	}
	return w[i], true
}

// window returns the buffered bytes from relative position i, filling so at
// least one byte past i is available; ok=false aborts the skim.
func (s *skimmer) window(i int) ([]byte, bool) {
	if i >= s.max {
		return nil, false
	}
	w := s.t.fillTo(i + 1)
	if i >= len(w) {
		return nil, false
	}
	if len(w) > s.max {
		w = w[:s.max]
	}
	return w, true
}

// skimRecord scans forward from the current position — immediately after a
// record root's start tag — to the end tag that closes the root, validating
// structure to the tokenizer's rules along the way. ok=false means "parse
// normally": the input may be malformed, truncated, or just bigger than the
// cap; nothing has been consumed either way.
func (s *skimmer) skimRecord() (res skimResult, ok bool) {
	depth := 1
	res.maxDepth = 1
	i := 0
	for {
		// Text run: everything up to the next '<'. A gap containing any
		// non-whitespace byte may become a text node; entities must be ones
		// the tokenizer would accept, else it would fail where we'd skip.
		gapText := false
	textRun:
		for {
			w, ok := s.window(i)
			if !ok {
				return res, false
			}
			j := bytes.IndexByte(w[i:], '<')
			segEnd := len(w)
			if j >= 0 {
				segEnd = i + j
			}
			for k := i; k < segEnd; {
				// Jump straight to the next entity; the bytes before it only
				// matter for the text/whitespace distinction, which is settled
				// after the first non-space byte of the gap.
				a := bytes.IndexByte(w[k:segEnd], '&')
				seg := segEnd
				if a >= 0 {
					seg = k + a
				}
				if !gapText && hasText(w[k:seg]) {
					gapText = true
				}
				k = seg
				if a < 0 {
					break
				}
				n, valid := validEntityAt(w[k:segEnd])
				if valid {
					gapText = true
					k += n
					continue
				}
				// An entity cannot contain '<' and spans at most 18
				// bytes, so with a tag boundary or 19+ bytes in view the
				// verdict is final; otherwise buffer more and rescan.
				if j >= 0 || segEnd-k >= 19 {
					return res, false
				}
				if _, more := s.byteAt(len(w)); !more {
					return res, false
				}
				continue textRun
			}
			i = segEnd
			if j >= 0 {
				break
			}
		}
		if gapText {
			res.texts++
		}
		// Markup at i ('<').
		b, ok := s.byteAt(i + 1)
		if !ok {
			return res, false
		}
		switch {
		case b == '/':
			end, match, ok := s.endTagAt(i + 2)
			if !ok || !match {
				return res, false
			}
			depth--
			i = end
			if depth == 0 {
				res.n = i
				return res, true
			}
		case b == '!':
			end, isText, ok := s.bangAt(i + 2)
			if !ok {
				return res, false
			}
			if isText {
				res.texts++
			}
			i = end
		case b == '?':
			end, ok := s.skipToAt(i+2, "?>")
			if !ok {
				return res, false
			}
			i = end
		case isNameStart(b):
			end, selfClose, ok := s.startTagAt(i + 1)
			if !ok {
				return res, false
			}
			res.elems++
			// Even a self-closing element occupies depth+1 for the parser's
			// MaxDepth check, so it counts toward maxDepth either way.
			if depth+1 > res.maxDepth {
				res.maxDepth = depth + 1
			}
			if !selfClose {
				depth++
			}
			i = end
		default:
			return res, false // the tokenizer would reject this too
		}
	}
}

// nameAt consumes XML name bytes starting at i, returning the position of
// the first non-name byte. The caller has verified i starts a name.
func (s *skimmer) nameAt(i int) (int, bool) {
	for {
		b, ok := s.byteAt(i)
		if !ok {
			return 0, false
		}
		if !isNameByte(b) {
			return i, true
		}
		i++
	}
}

// startTagAt validates a start tag from the first name byte at i through
// its '>' (or '/>'), applying the tokenizer's attribute grammar exactly:
// anything it would reject aborts the skim. The raw name extent is pushed
// for end-tag matching unless the tag self-closes.
func (s *skimmer) startTagAt(i int) (end int, selfClose bool, ok bool) {
	nameStart := i
	i, ok = s.nameAt(i)
	if !ok {
		return 0, false, false
	}
	nameEnd := i
	for {
		b, ok := s.byteAt(i)
		if !ok {
			return 0, false, false
		}
		switch {
		case isXMLSpace(b):
			i++
			continue
		case b == '>':
			s.stack = append(s.stack, nameStart, nameEnd)
			return i + 1, false, true
		case b == '/':
			c, ok := s.byteAt(i + 1)
			if !ok || c != '>' {
				return 0, false, false
			}
			return i + 2, true, true
		case !isNameStart(b):
			return 0, false, false
		}
		// Attribute: name, optional spaces, '=', optional spaces, quoted
		// value — the tokenizer accepts nothing less.
		if i, ok = s.nameAt(i + 1); !ok {
			return 0, false, false
		}
		for {
			b, ok := s.byteAt(i)
			if !ok {
				return 0, false, false
			}
			if !isXMLSpace(b) {
				break
			}
			i++
		}
		if b, ok := s.byteAt(i); !ok || b != '=' {
			return 0, false, false
		}
		i++
		for {
			b, ok := s.byteAt(i)
			if !ok {
				return 0, false, false
			}
			if !isXMLSpace(b) {
				break
			}
			i++
		}
		q, ok := s.byteAt(i)
		if !ok || (q != '\'' && q != '"') {
			return 0, false, false
		}
		i++
		for {
			b, ok := s.byteAt(i)
			if !ok {
				return 0, false, false
			}
			i++
			if b == q {
				break
			}
		}
	}
}

// endTagAt validates an end tag from the first name byte at i through its
// '>', and matches the raw name against the innermost open start tag — a
// mismatch would fail the real parse, so it aborts the skim.
func (s *skimmer) endTagAt(i int) (end int, match, ok bool) {
	b, ok := s.byteAt(i)
	if !ok || !isNameStart(b) {
		return 0, false, false
	}
	nameStart := i
	i, ok = s.nameAt(i)
	if !ok {
		return 0, false, false
	}
	nameEnd := i
	for {
		b, ok := s.byteAt(i)
		if !ok {
			return 0, false, false
		}
		if !isXMLSpace(b) {
			if b != '>' {
				return 0, false, false
			}
			break
		}
		i++
	}
	if len(s.stack) == 0 {
		// The record root's name is not on the skim stack: depth 1 closing
		// means this end tag is the root's, already matched by the caller's
		// tokenizer state. Structural validity is all that's needed here.
		return i + 1, true, true
	}
	ns, ne := s.stack[len(s.stack)-2], s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-2]
	w := s.t.buf[s.t.r:s.t.w]
	if !bytes.Equal(w[ns:ne], w[nameStart:nameEnd]) {
		return 0, false, false
	}
	return i + 1, true, true
}

// bangAt handles "<!" at relative position i (first byte after the '!'):
// comments and CDATA sections are skipped to their terminators; CDATA
// counts as potential text. Directives inside a record are rare and
// DOCTYPE-shaped ones need nesting rules, so they abort the skim.
func (s *skimmer) bangAt(i int) (end int, isText, ok bool) {
	b, ok := s.byteAt(i)
	if !ok {
		return 0, false, false
	}
	switch b {
	case '-':
		c, ok := s.byteAt(i + 1)
		if !ok || c != '-' {
			return 0, false, false
		}
		end, ok = s.skipToAt(i+2, "-->")
		return end, false, ok
	case '[':
		for k, c := range []byte("CDATA[") {
			d, ok := s.byteAt(i + 1 + k)
			if !ok || d != c {
				return 0, false, false
			}
		}
		end, ok = s.skipToAt(i+7, "]]>")
		return end, true, ok
	default:
		return 0, false, false
	}
}

// skipToAt advances past the next occurrence of pat (2-3 bytes), returning
// the position just after it, via a sliding window so overlapping
// occurrences ("--->") are not missed.
func (s *skimmer) skipToAt(i int, pat string) (int, bool) {
	var w [3]byte
	n := 0
	for {
		b, ok := s.byteAt(i)
		if !ok {
			return 0, false
		}
		i++
		if n < len(w) {
			w[n] = b
			n++
		} else {
			w[0], w[1], w[2] = w[1], w[2], b
		}
		if n >= len(pat) && string(w[n-len(pat):n]) == pat {
			return i, true
		}
	}
}

// hasText reports whether b contains any byte that is not XML whitespace.
func hasText(b []byte) bool {
	for _, c := range b {
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return true
		}
	}
	return false
}

// validEntityAt checks whether b starts with a complete entity the
// tokenizer would accept ('&' at b[0]), returning its total byte length.
// It mirrors the tokenizer's rules exactly: the five predefined names and
// numeric character references within the rune range, at most 16 bytes
// between '&' and ';'.
func validEntityAt(b []byte) (n int, ok bool) {
	end := -1
	for i := 1; i < len(b) && i <= 17; i++ {
		if b[i] == ';' {
			end = i
			break
		}
		if !(b[i] == '#' || isNameByte(b[i])) {
			return 0, false
		}
	}
	if end < 2 {
		return 0, false
	}
	ent := b[1:end]
	if ent[0] == '#' {
		digits := ent[1:]
		hex := false
		if len(digits) > 0 && (digits[0] == 'x' || digits[0] == 'X') {
			hex, digits = true, digits[1:]
		}
		if len(digits) == 0 {
			return 0, false
		}
		var r int64
		for _, d := range digits {
			var v int64
			switch {
			case d >= '0' && d <= '9':
				v = int64(d - '0')
			case hex && d >= 'a' && d <= 'f':
				v = int64(d-'a') + 10
			case hex && d >= 'A' && d <= 'F':
				v = int64(d-'A') + 10
			default:
				return 0, false
			}
			base := int64(10)
			if hex {
				base = 16
			}
			if r = r*base + v; r > 0x10FFFF {
				return 0, false
			}
		}
		return end + 1, true
	}
	switch string(ent) {
	case "lt", "gt", "amp", "apos", "quot":
		return end + 1, true
	}
	return 0, false
}

// tryPrefilter runs the prefilter cascade on the record whose root start
// tag the tokenizer just consumed. It returns true when the record was
// skipped (bytes consumed, slot burned, counters bumped) and false when the
// record must be parsed — in which case nothing was consumed and the parse
// proceeds byte-identically to an unfiltered run.
func (rr *RecordReader) tryPrefilter(startOff int64) bool {
	pf := rr.opts.Prefilter
	tk := rr.tk
	if tk.selfClose {
		// The record is exactly its root element; the only label present is
		// the root's name.
		if mask := pf.verdict(nil, tk.name, &rr.pfScratch); !mask.zero() {
			rr.hint = mask.clone()
			return false
		}
		tk.selfClose = false
		tk.pop()
		rr.recordPrefiltered(startOff, tk.off()-startOff)
		return true
	}
	max := prefilterLookahead
	if mb := rr.opts.MaxBytes; mb > 0 {
		// Only skip records that provably fit the per-record byte budget;
		// an over-budget record must fail the normal way.
		rem := mb - (tk.off() - startOff)
		if rem <= 0 {
			return false
		}
		if int64(max) > rem {
			max = int(rem)
		}
	}
	sk := skimmer{t: rr.tr, max: max, stack: rr.skimStack[:0]}
	res, ok := sk.skimRecord()
	rr.skimStack = sk.stack[:0]
	if !ok {
		return false
	}
	// Resource limits: a record that might trip one must parse normally so
	// the limit error (and its recovery) surface exactly as unfiltered.
	// elems+texts is an upper bound on node count, so clearing it here
	// guarantees the real parse would have finished.
	if d := rr.opts.MaxDepth; d > 0 && res.maxDepth > d {
		return false
	}
	if n := rr.opts.MaxNodes; n > 0 && 1+res.elems+res.texts > n {
		return false
	}
	if sb := rr.opts.MaxStreamBytes; sb > 0 && tk.off()+int64(res.n) > sb {
		return false
	}
	body := rr.tr.buf[rr.tr.r : rr.tr.r+res.n]
	if mask := pf.verdict(body, tk.name, &rr.pfScratch); !mask.zero() {
		rr.hint = mask.clone()
		return false
	}
	// Skip: account skipped lines for later error positions, consume the
	// record's bytes through the normal path (keeping the resync tail
	// window exactly as a parse would), pop the root, burn the slot.
	tk.line += countLines(body)
	rr.tr.consume(res.n)
	tk.pop()
	rr.recordPrefiltered(startOff, int64(res.n))
	return true
}

// recordPrefiltered accounts one record skipped by the prefilter: trace
// event, metrics counter, and the record's index and sibling slot (skipped
// records leave numbering gaps exactly like failed ones).
func (rr *RecordReader) recordPrefiltered(startOff, n int64) {
	if s := rr.opts.Events; s.Enabled() {
		s.Emit("prefilter", fmt.Sprintf("record %d skipped by prefilter at byte %d (%d bytes)",
			rr.idx, startOff, n))
	}
	if m := rr.opts.Metrics; m != nil {
		m.RecordsPrefiltered.Inc()
	}
	rr.prefiltered++
	rr.consumeSlot()
}

// countLines counts line endings the tokenizer would have counted in the
// skipped bytes ("\r\n" and "\r" normalize to one line each), keeping later
// error line numbers aligned with an unfiltered parse.
func countLines(b []byte) int {
	n := bytes.Count(b, []byte{'\n'})
	for i := 0; ; {
		j := bytes.IndexByte(b[i:], '\r')
		if j < 0 {
			return n
		}
		k := i + j
		if k+1 >= len(b) || b[k+1] != '\n' {
			n++
		}
		i = k + 1
	}
}
