package xmlhedge

// Byte-level resynchronization for malformed records.
//
// encoding/xml's Decoder is sticky: after a syntax error it refuses to
// continue, so a single malformed record would otherwise poison the rest
// of the stream. With a named split the record delimiter is known, which
// makes recovery possible below the XML layer: scan the raw bytes for the
// next `<name` start tag (aware of comments, CDATA, processing
// instructions, and attribute quoting, so a delimiter-looking sequence
// inside those is not mistaken for a record) and hand a fresh decoder the
// stream from that point.
//
// The decoder may have read ahead of the failure point before dying — up
// to one unread byte, since it consumes its input via io.ByteReader when
// the reader provides one. tailReader guarantees that interface and
// additionally remembers the last tailWindow delivered bytes, so a
// replacement decoder (or the scanner) can be re-anchored at any recent
// absolute offset without the underlying reader being seekable.

import (
	"fmt"
	"io"
)

// tailWindow is how far back replayFrom can re-anchor. It bounds the
// decoder's possible readahead (≤ 1 byte) plus the longest start tag
// prefix the scanner may need to replay: `<` + split name + delimiter.
const tailWindow = 256

// tailReader delivers bytes to the XML decoder one at a time (so the
// decoder's readahead is at most the single ungetc byte) while remembering
// the last tailWindow bytes delivered. off is the absolute offset of the
// next byte to deliver — equal to the total bytes handed out so far.
type tailReader struct {
	src  io.Reader
	buf  []byte
	r, w int
	rerr error // sticky read error from src, delivered after the buffer drains
	off  int64
	tail [tailWindow]byte
}

func newTailReader(r io.Reader) *tailReader {
	return &tailReader{src: r, buf: make([]byte, 4096)}
}

// peek returns the buffered unconsumed bytes, refilling from src when the
// buffer is empty (byteSource for the tokenizer).
func (t *tailReader) peek() ([]byte, error) {
	if t.r == t.w {
		if t.rerr != nil {
			return nil, t.rerr
		}
		t.r, t.w = 0, 0
		for t.w == 0 && t.rerr == nil {
			n, err := t.src.Read(t.buf)
			t.w, t.rerr = n, err
		}
		if t.w == 0 {
			return nil, t.rerr
		}
	}
	return t.buf[t.r:t.w], nil
}

// consume advances past n peeked bytes, remembering them in the tail
// window. Wraparound copies never hand out a stale window: later copies of
// an over-long run overwrite earlier ones in ring order.
func (t *tailReader) consume(n int) {
	src := t.buf[t.r : t.r+n]
	t.r += n
	for len(src) > 0 {
		c := copy(t.tail[t.off%tailWindow:], src)
		t.off += int64(c)
		src = src[c:]
	}
}

// offset is the absolute offset of the next unconsumed byte.
func (t *tailReader) offset() int64 { return t.off }

// ReadByte implements io.ByteReader for the raw resynchronization scanner;
// it routes through peek/consume so the tail window stays consistent.
func (t *tailReader) ReadByte() (byte, error) {
	w, err := t.peek()
	if err != nil {
		return 0, err
	}
	b := w[0]
	t.consume(1)
	return b, nil
}

// Read implements io.Reader for completeness; it routes through ReadByte
// so the tail window stays consistent however the reader is driven.
func (t *tailReader) Read(p []byte) (int, error) {
	for i := range p {
		b, err := t.ReadByte()
		if err != nil {
			if i > 0 {
				return i, nil
			}
			return 0, err
		}
		p[i] = b
	}
	return len(p), nil
}

// replayFrom returns a reader that re-delivers the remembered bytes from
// absolute offset abs and then continues with the live stream. abs must
// lie within the tail window.
func (t *tailReader) replayFrom(abs int64) (*replayReader, error) {
	if abs > t.off || t.off-abs > tailWindow {
		return nil, fmt.Errorf("xmlhedge: resync offset %d outside the replay window ending at %d", abs, t.off)
	}
	pend := make([]byte, 0, t.off-abs)
	for o := abs; o < t.off; o++ {
		pend = append(pend, t.tail[o%tailWindow])
	}
	return &replayReader{t: t, pend: pend}, nil
}

// replayReader serves a copied slice of remembered bytes, then the live
// tailReader. The pending bytes already sit in the tail window at their
// original offsets, so serving them does not advance t.off — a later
// replayFrom during or after the replay still sees consistent offsets.
type replayReader struct {
	t    *tailReader
	pend []byte
}

func (r *replayReader) ReadByte() (byte, error) {
	if len(r.pend) > 0 {
		b := r.pend[0]
		r.pend = r.pend[1:]
		return b, nil
	}
	return r.t.ReadByte()
}

func (r *replayReader) Read(p []byte) (int, error) {
	for i := range p {
		b, err := r.ReadByte()
		if err != nil {
			if i > 0 {
				return i, nil
			}
			return 0, err
		}
		p[i] = b
	}
	return len(p), nil
}

// replaySourceFrom is replayFrom as a byteSource, re-anchoring a tokenizer
// at absolute offset abs for degraded-mode per-record parsing.
func (t *tailReader) replaySourceFrom(abs int64) (*replaySource, error) {
	rep, err := t.replayFrom(abs)
	if err != nil {
		return nil, err
	}
	return &replaySource{t: t, pend: rep.pend}, nil
}

// replaySource serves remembered tail bytes, then the live tailReader.
// Like replayReader, consuming the pending bytes does not advance t.off —
// they already sit in the tail window at their original offsets — so the
// absolute offset is t.off minus what remains pending.
type replaySource struct {
	t    *tailReader
	pend []byte
}

func (r *replaySource) peek() ([]byte, error) {
	if len(r.pend) > 0 {
		return r.pend, nil
	}
	return r.t.peek()
}

func (r *replaySource) consume(n int) {
	if len(r.pend) > 0 {
		r.pend = r.pend[n:]
		return
	}
	r.t.consume(n)
}

func (r *replaySource) offset() int64 { return r.t.off - int64(len(r.pend)) }

// scanForRecord raw-scans from rr.scanPos for the next plausible record
// start (`<` + split name + delimiter) and returns its absolute offset.
// The scan position advances past everything inspected, so a failed scan
// never re-inspects bytes. Returns io.EOF at a clean end of input.
func (rr *RecordReader) scanForRecord() (int64, error) {
	rep, err := rr.tr.replayFrom(rr.scanPos)
	if err != nil {
		return 0, err
	}
	sc := &rawScanner{r: rep, pos: rr.scanPos, rr: rr}
	pos, err := sc.findRecordStart(rr.opts.Split)
	rr.scanPos = sc.pos
	if err != nil {
		return 0, err
	}
	// Resume the next scan after this candidate's '<', so a candidate that
	// fails to parse cannot be found again.
	rr.scanPos = pos + 1
	return pos, nil
}

// rawScanner walks raw bytes looking for a start tag of a given name,
// skipping constructs whose content is not markup: comments, CDATA
// sections, processing instructions, directives, and quoted attribute
// values. It is only ever used in degraded mode, after markup corruption;
// it favors robustness over speed.
type rawScanner struct {
	r   io.ByteReader
	pos int64 // absolute offset of the next unread byte
	rr  *RecordReader
}

func (s *rawScanner) next() (byte, error) {
	if s.pos&1023 == 0 && s.rr != nil {
		if err := s.rr.pollNowAt(s.pos); err != nil {
			return 0, err
		}
	}
	b, err := s.r.ReadByte()
	if err != nil {
		return 0, err
	}
	s.pos++
	return b, nil
}

// findRecordStart returns the absolute offset of the next `<name` whose
// name ends exactly at a tag delimiter ('>', '/', or whitespace).
func (s *rawScanner) findRecordStart(name string) (int64, error) {
	if name == "" {
		return 0, fmt.Errorf("xmlhedge: resynchronization requires a named split")
	}
	var b byte
	pending := false // b holds an already-read byte to reprocess
	for {
		if !pending {
			var err error
			if b, err = s.next(); err != nil {
				return 0, err
			}
		}
		pending = false
		if b != '<' {
			continue
		}
		start := s.pos - 1
		c, err := s.next()
		if err != nil {
			return 0, err
		}
		switch {
		case c == '<':
			// Malformed "<<": the second '<' is a fresh candidate.
			b, pending = c, true
		case c == '!':
			err = s.skipBang()
		case c == '?':
			err = s.skipUntil("?>")
		case c == '/':
			err = s.skipTag()
		case isNameStart(c):
			ok, d, merr := s.matchName(name, c)
			if merr != nil {
				return 0, merr
			}
			if ok && (d == '>' || d == '/' || isXMLSpace(d)) {
				return start, nil
			}
			switch {
			case d == '<':
				// The tag was cut short by another '<'; rescan from it.
				b, pending = d, true
			case d != '>':
				err = s.skipTag()
			}
		default:
			// "<" followed by junk ('=', digits, ...): not a tag; keep
			// scanning from the byte after it. A junk '<'? handled above.
		}
		if err != nil {
			return 0, err
		}
	}
}

// matchName consumes name characters after the already-read first byte c,
// reporting whether they spell exactly name, plus the first non-name byte.
func (s *rawScanner) matchName(name string, c byte) (match bool, delim byte, err error) {
	ok := name[0] == c
	n := 1
	for {
		d, derr := s.next()
		if derr != nil {
			return false, 0, derr
		}
		if !isNameByte(d) {
			return ok && n == len(name), d, nil
		}
		if ok && n < len(name) && name[n] == d {
			n++
		} else {
			ok = false
		}
	}
}

// skipTag consumes bytes until the '>' closing the current tag, honoring
// single- and double-quoted attribute values.
func (s *rawScanner) skipTag() error {
	var q byte
	for {
		b, err := s.next()
		if err != nil {
			return err
		}
		switch {
		case q != 0:
			if b == q {
				q = 0
			}
		case b == '\'' || b == '"':
			q = b
		case b == '>':
			return nil
		}
	}
}

// skipBang handles `<!`: comments (`<!--` ... `-->`), CDATA/conditional
// sections (`<![` ... `]]>`), and directives (naive `>` terminator — a
// DOCTYPE with an internal subset may end the skip early, which only costs
// extra scanning).
func (s *rawScanner) skipBang() error {
	b, err := s.next()
	if err != nil {
		return err
	}
	switch b {
	case '-':
		c, err := s.next()
		if err != nil {
			return err
		}
		if c == '-' {
			return s.skipUntil("-->")
		}
		return s.skipTag()
	case '[':
		return s.skipUntil("]]>")
	case '>':
		return nil
	default:
		return s.skipTag()
	}
}

// skipUntil consumes bytes until the 2–3 byte terminator pat has been
// seen, matching via a sliding window (a naive restart would miss
// overlapping occurrences like "-->" inside "--->").
func (s *rawScanner) skipUntil(pat string) error {
	var w [3]byte
	n := 0
	for {
		b, err := s.next()
		if err != nil {
			return err
		}
		if n < len(w) {
			w[n] = b
			n++
		} else {
			w[0], w[1], w[2] = w[1], w[2], b
		}
		if n >= len(pat) && string(w[n-len(pat):n]) == pat {
			return nil
		}
	}
}

// isNameStart reports whether b can begin an XML name. Multi-byte UTF-8
// sequences (b >= 0x80) are accepted wholesale; the decoder re-validates
// whatever the scanner proposes.
func isNameStart(b byte) bool {
	return b == '_' || b == ':' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || b >= 0x80
}

// isNameByte reports whether b can appear inside an XML name.
func isNameByte(b byte) bool {
	return isNameStart(b) || b == '-' || b == '.' || (b >= '0' && b <= '9')
}

// isXMLSpace reports whether b is XML whitespace.
func isXMLSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\r' || b == '\n'
}
