package xmlhedge

import (
	"strings"
	"testing"

	"xpe/internal/hedge"
)

func TestParseBasic(t *testing.T) {
	h, err := ParseString(`<doc><sec><fig/></sec><par>hello</par></doc>`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 1 || h[0].Name != "doc" {
		t.Fatalf("top = %v", h)
	}
	doc := h[0]
	if len(doc.Children) != 2 {
		t.Fatalf("doc children = %v", doc.Children)
	}
	par := doc.Children[1]
	if len(par.Children) != 1 || par.Children[0].Kind != hedge.Var ||
		par.Children[0].Name != hedge.TextVar || par.Children[0].Text != "hello" {
		t.Fatalf("text leaf = %+v", par.Children[0])
	}
}

func TestParseWhitespacePolicy(t *testing.T) {
	src := "<doc>\n  <a/>\n</doc>"
	h, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(h[0].Children) != 1 {
		t.Fatalf("whitespace not dropped: %v", h[0].Children)
	}
	h, err = ParseString(src, Options{KeepWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(h[0].Children) != 3 {
		t.Fatalf("whitespace not kept: %v", h[0].Children)
	}
}

func TestParseSkipsNonElements(t *testing.T) {
	src := `<?xml version="1.0"?><!-- c --><doc a="1"><!-- inner --><a/></doc>`
	h, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(h[0].Children) != 1 || h[0].Children[0].Name != "a" {
		t.Fatalf("children = %v", h[0].Children)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "<a>", "<a></b>", "text only"}
	for _, src := range bad {
		if _, err := ParseString(src, Options{}); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	src := `<doc><sec><fig></fig>mixed</sec><par>a &lt; b</par></doc>`
	h, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ToString(h)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ParseString(out, Options{})
	if err != nil {
		t.Fatalf("re-parse of %q: %v", out, err)
	}
	if !h.Equal(h2) {
		t.Fatalf("round trip changed structure: %q vs %q", h, h2)
	}
	if !strings.Contains(out, "a &lt; b") {
		t.Fatalf("escaping lost: %q", out)
	}
}

func TestWriteRejectsSubst(t *testing.T) {
	h := hedge.Hedge{hedge.NewElem("a", hedge.NewSubst("z"))}
	if _, err := ToString(h); err == nil {
		t.Fatal("substitution symbols must not serialize")
	}
}
