package xmlhedge

import (
	"encoding/xml"
	"errors"
	"io"
	"strings"
	"testing"

	"xpe/internal/hedge"
)

// splitAll drives a RecordReader over doc with the default split,
// collecting records until the first error.
func splitAll(t *testing.T, doc string, opts RecordOptions) ([]Record, error) {
	t.Helper()
	rr := NewRecordReader(strings.NewReader(doc), opts)
	var recs []Record
	for {
		rec, err := rr.Read(nil)
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// oracleCompare parses doc with the encoding/xml-based in-memory parser
// and asserts every record the tokenizer-based splitter produced is
// subtree-identical to the node at the record's path in the oracle tree.
// KeepWhitespace on both sides keeps their whitespace policies aligned.
func oracleCompare(t *testing.T, doc string) {
	t.Helper()
	recs, serr := splitAll(t, doc, RecordOptions{KeepWhitespace: true})
	oracle, perr := ParseString(doc, Options{KeepWhitespace: true})
	if serr != nil || perr != nil {
		// Error agreement is checked by the fuzzer within known-divergence
		// limits; the table entries here are all well-formed.
		t.Fatalf("splitter err = %v, parser err = %v", serr, perr)
	}
	elems := 0
	for _, c := range oracle[0].Children {
		if c.Kind == hedge.Elem {
			elems++
		}
	}
	if len(recs) != elems {
		t.Fatalf("got %d records, oracle has %d element children", len(recs), elems)
	}
	for _, rec := range recs {
		want := oracle.At(rec.Path)
		if want == nil {
			t.Fatalf("record %d path %s not in oracle tree", rec.Index, rec.Path)
		}
		if !rec.Hedge.Equal(hedge.Hedge{want}) {
			t.Fatalf("record %d at %s differs from oracle subtree", rec.Index, rec.Path)
		}
	}
}

func TestTokenizerAgainstParseOracle(t *testing.T) {
	docs := map[string]string{
		"plain":       `<f><r><id>1</id></r><r><id>2</id></r></f>`,
		"selfclose":   `<f><r/><r a="1"/><r><x/></r></f>`,
		"attrs":       `<f version='1.0'><r a="x" b='y' c = "z &lt; w"><v k="1"/></r></f>`,
		"entities":    `<f><r>a&lt;b&gt;c&amp;d&apos;e&quot;f</r><r>&#65;&#x42;&#x1F600;</r></f>`,
		"cdata":       "<f><r>pre<![CDATA[raw <&> stuff]]>post</r><r><![CDATA[]]></r></f>",
		"comments":    `<f><!-- between --><r>a<!-- inside -->b</r><r><!--<decoy></decoy>--></r></f>`,
		"pis":         `<?xml version="1.0"?><f><?target data?><r>x<?p q?>y</r></f>`,
		"doctype":     `<!DOCTYPE f [ <!ELEMENT f (r*)> <!ENTITY unused "v"> ]><f><r>t</r></f>`,
		"crlf":        "<f>\r\n<r>line1\r\nline2\rline3</r>\r</f>",
		"nested":      `<f><r><r>inner is part of outer</r></r><r>next</r></f>`,
		"prefixed":    `<f xmlns:n="u"><n:r>a</n:r><r n:a="1">b</r></f>`,
		"deep":        `<f><r><a><b><c><d>x</d></c></b></a></r></f>`,
		"mixed":       `<f>  <r>a</r> tail <r>b</r>  </f>`,
		"ws-records":  "<f>\n  <r> </r>\n  <r>\t</r>\n</f>",
		"empty-texts": `<f><r></r><r>x</r></f>`,
		"epilog":      "<f><r>x</r></f>\n<!-- trailing -->\n",
	}
	for name, doc := range docs {
		t.Run(name, func(t *testing.T) { oracleCompare(t, doc) })
	}
}

// TestTokenizerErrors pins the malformations the recovery machinery
// classifies through *xml.SyntaxError: each must fail, and each must be an
// xml.SyntaxError exactly when the encoding/xml decoder reports one.
func TestTokenizerErrors(t *testing.T) {
	cases := map[string]struct {
		doc    string
		syntax bool // must surface as *xml.SyntaxError
	}{
		"mismatched-end":  {`<f><a></b></f>`, true},
		"stray-end":       {`<f></f></x>`, true},
		"unquoted-attr":   {`<f><a x=1></a></f>`, true},
		"missing-eq":      {`<f><a x "1"></a></f>`, true},
		"truncated-elem":  {`<f><a>text`, true},
		"truncated-tag":   {`<f><a`, true},
		"truncated-open":  {`<f><a/>`, true}, // EOF with <f> still open
		"bad-entity":      {`<f>&nosuch;</f>`, true},
		"bare-amp":        {`<f>a & b</f>`, true},
		"bad-numeric":     {`<f>&#xZZ;</f>`, true},
		"double-lt":       {`<f><<a/></f>`, true},
		"bad-name":        {`<f><1a/></f>`, true},
		"half-comment":    {`<f><!-x--></f>`, true},
		"text-at-top":     {`junk<f></f>`, false}, // splitter's own error
		"cross-nesting":   {`<f><a><b></a></b></f>`, true},
		"junk-in-end-tag": {`<f><a></a x></f>`, true},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := splitAll(t, tc.doc, RecordOptions{})
			if err == nil {
				t.Fatalf("no error for %q", tc.doc)
			}
			var se *xml.SyntaxError
			if got := errors.As(err, &se); got != tc.syntax {
				t.Fatalf("errors.As(xml.SyntaxError) = %v, want %v (err: %v)", got, tc.syntax, err)
			}
		})
	}
}

// FuzzSplitVsParse cross-checks the tokenizer-based splitter against the
// encoding/xml-based Parse on arbitrary input: whenever both accept a
// document, every record must equal the oracle subtree at its path. (Error
// agreement is deliberately not asserted — the tokenizer is laxer on
// attribute-value entities and encoding declarations by design.)
func FuzzSplitVsParse(f *testing.F) {
	f.Add(`<f><r><id>1</id></r><r a="x">t&amp;t</r></f>`)
	f.Add("<f>\r\n<r>a<!--c--><![CDATA[<&]]></r><r/></f>")
	f.Add(`<?xml version="1.0"?><!DOCTYPE f [<!ELEMENT f ANY>]><f><n:r>x</n:r></f>`)
	f.Add(`<f><r>&#x41;&#66;</r> tail <r><a><b/></a></r></f>`)
	f.Fuzz(func(t *testing.T, doc string) {
		recs, serr := splitAll(t, doc, RecordOptions{KeepWhitespace: true})
		oracle, perr := ParseString(doc, Options{KeepWhitespace: true})
		if serr != nil || perr != nil {
			return
		}
		for _, rec := range recs {
			want := oracle.At(rec.Path)
			if want == nil {
				t.Fatalf("record %d path %s not in oracle tree", rec.Index, rec.Path)
			}
			if !rec.Hedge.Equal(hedge.Hedge{want}) {
				t.Fatalf("record %d at %s differs from oracle subtree", rec.Index, rec.Path)
			}
		}
	})
}
