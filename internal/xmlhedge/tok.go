package xmlhedge

// Byte-level XML tokenization for the streaming splitter.
//
// encoding/xml spends most of the streaming pipeline's time and nearly all
// of its allocations on token construction: every start tag allocates a
// Name and an attribute slice, every text run a fresh []byte. The record
// splitter needs none of that — names are interned, attributes dropped,
// text copied into the record arena — so it tokenizes the input itself at
// byte level and reuses one scratch buffer for every token.
//
// The tokenizer mirrors encoding/xml's observable behavior where the
// splitter depends on it: the same token stream for well-formed input
// (CDATA runs arrive exactly like the decoder's CharData, "\r\n" and "\r"
// normalize to "\n", entities expand, comments/PIs/directives vanish), and
// *xml.SyntaxError failures at the same malformations (mismatched or stray
// end tags, unquoted attribute values, bad entities, truncated input), so
// the recovery classification in split.go — errors.As(*xml.SyntaxError) ⇒
// resynchronizable — keeps working unchanged. Known divergences, all on
// inputs the decoder also treats as edge cases: end tags match raw
// prefixed names without namespace resolution, character ranges are not
// re-validated against the XML charset, entities inside attribute values
// are not checked (values are dropped wholesale), and unsupported encoding
// declarations are ignored rather than rejected.

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"unicode/utf8"
)

// byteSource is bulk access to an input stream: peek at buffered bytes,
// consume what was parsed. Implemented by tailReader (live input) and
// replaySource (degraded-mode re-reads from the tail window).
type byteSource interface {
	// peek returns a non-empty slice of unconsumed bytes, reading more
	// input when none are buffered. On failure the slice is empty and the
	// error is sticky.
	peek() ([]byte, error)
	// consume advances past the first n peeked bytes.
	consume(n int)
	// offset is the absolute input offset of the next unconsumed byte.
	offset() int64
}

type tokKind uint8

const (
	tokStart tokKind = iota + 1 // start tag; name holds the local name
	tokEnd                      // end tag (synthesized for self-closing tags)
	tokText                     // character data; text holds the decoded bytes
)

// tokenizer scans XML into the three token kinds the splitter consumes.
// The name and text slices returned with a token alias internal buffers
// and are valid only until the following next call.
type tokenizer struct {
	src  byteSource
	line int // 1-based, for xml.SyntaxError compatibility

	kind tokKind
	name []byte // tokStart: local name (namespace prefix stripped)
	text []byte // tokText: decoded character data

	selfClose bool // a "/>" start tag was returned; next emits its end

	// Raw names of open elements for end-tag matching, packed into one
	// buffer: openBuf[openOff[i]:] suffixed by later names.
	openBuf []byte
	openOff []int

	scratch []byte // token assembly: names, decoded text
}

func newTokenizer(src byteSource) *tokenizer {
	return &tokenizer{src: src, line: 1}
}

// reset rewires the tokenizer onto a new source, keeping its buffers.
func (t *tokenizer) reset(src byteSource) {
	t.src = src
	t.line = 1
	t.kind = 0
	t.name, t.text = nil, nil
	t.selfClose = false
	t.openBuf = t.openBuf[:0]
	t.openOff = t.openOff[:0]
	t.scratch = t.scratch[:0]
}

// off is the absolute input offset of the next unconsumed byte; between
// next calls it is exactly the end of the last token.
func (t *tokenizer) off() int64 { return t.src.offset() }

func (t *tokenizer) syntax(msg string) error {
	return &xml.SyntaxError{Msg: msg, Line: t.line}
}

// readByte consumes and returns one byte; io.EOF passes through raw.
func (t *tokenizer) readByte() (byte, error) {
	w, err := t.src.peek()
	if err != nil {
		return 0, err
	}
	b := w[0]
	if b == '\n' {
		t.line++
	}
	t.src.consume(1)
	return b, nil
}

// mustByte is readByte for positions where the input may not end: EOF
// becomes the decoder-compatible "unexpected EOF" syntax error.
func (t *tokenizer) mustByte() (byte, error) {
	b, err := t.readByte()
	if err == io.EOF {
		return 0, t.syntax("unexpected EOF")
	}
	return b, err
}

// next advances to the next token; after a nil return kind/name/text
// describe it. A clean end of input (all elements closed) is io.EOF; end
// of input with open elements or inside markup is an *xml.SyntaxError,
// exactly as encoding/xml classifies it.
func (t *tokenizer) next() error {
	if t.selfClose {
		t.selfClose = false
		t.pop()
		t.kind = tokEnd
		return nil
	}
	t.scratch = t.scratch[:0]
	for {
		err := t.gatherText()
		if len(t.scratch) > 0 {
			// Pending text is a token even at EOF (the EOF re-surfaces on
			// the next call: source errors are sticky). A syntax error
			// mid-text surfaces immediately, as the decoder's would.
			if err == nil || err == io.EOF {
				t.kind, t.text = tokText, t.scratch
				return nil
			}
			return err
		}
		if err != nil {
			if err == io.EOF && len(t.openOff) > 0 {
				return t.syntax("unexpected EOF")
			}
			return err
		}
		t.src.consume(1) // the '<' gatherText stopped at
		b, err := t.mustByte()
		if err != nil {
			return err
		}
		switch {
		case b == '/':
			return t.endTag()
		case b == '!':
			isCData, err := t.bang()
			if err != nil {
				return err
			}
			if isCData {
				// A CDATA section is its own token, like the decoder's
				// CharData (adjacent plain text was returned before it).
				t.kind, t.text = tokText, t.scratch
				return nil
			}
		case b == '?':
			if err := t.skipPI(); err != nil {
				return err
			}
		case isNameStart(b):
			return t.startTag(b)
		default:
			return t.syntax("expected element name after <")
		}
	}
}

// gatherText accumulates character data into scratch until the next '<'
// (left unconsumed) or end of input, expanding entities and normalizing
// "\r\n" and "\r" to "\n" exactly as encoding/xml does.
func (t *tokenizer) gatherText() error {
	for {
		w, err := t.src.peek()
		if err != nil {
			return err
		}
		// Bulk-copy the run up to the next byte needing attention.
		n := 0
		for n < len(w) {
			c := w[n]
			if c == '<' || c == '&' || c == '\r' {
				break
			}
			if c == '\n' {
				t.line++
			}
			n++
		}
		if n > 0 {
			t.scratch = append(t.scratch, w[:n]...)
			t.src.consume(n)
			continue
		}
		switch w[0] {
		case '<':
			return nil
		case '&':
			t.src.consume(1)
			if err := t.entity(); err != nil {
				return err
			}
		case '\r':
			t.src.consume(1)
			t.line++
			if w2, err2 := t.src.peek(); err2 == nil && w2[0] == '\n' {
				t.src.consume(1) // "\r\n" is one line ending, counted above
			}
			t.scratch = append(t.scratch, '\n')
		}
	}
}

// entity decodes one entity (its '&' already consumed) into scratch: the
// five predefined names plus numeric character references.
func (t *tokenizer) entity() error {
	var buf [16]byte
	n := 0
	for {
		b, err := t.readByte()
		if err != nil {
			if err == io.EOF {
				return t.syntax("invalid character entity & (no semicolon)")
			}
			return err
		}
		if b == ';' {
			break
		}
		if n == len(buf) || !(b == '#' || isNameByte(b)) {
			return t.syntax("invalid character entity & (no semicolon)")
		}
		buf[n] = b
		n++
	}
	ent := buf[:n]
	if n > 0 && ent[0] == '#' {
		digits := ent[1:]
		base := rune(10)
		if len(digits) > 0 && (digits[0] == 'x' || digits[0] == 'X') {
			base, digits = 16, digits[1:]
		}
		var r rune
		ok := len(digits) > 0
		for _, d := range digits {
			var v rune
			switch {
			case d >= '0' && d <= '9':
				v = rune(d - '0')
			case base == 16 && d >= 'a' && d <= 'f':
				v = rune(d-'a') + 10
			case base == 16 && d >= 'A' && d <= 'F':
				v = rune(d-'A') + 10
			default:
				ok = false
			}
			if r = r*base + v; r > utf8.MaxRune {
				ok = false
			}
			if !ok {
				break
			}
		}
		if !ok {
			return t.syntax(fmt.Sprintf("invalid character entity &%s;", ent))
		}
		t.scratch = utf8.AppendRune(t.scratch, r)
		return nil
	}
	switch string(ent) {
	case "lt":
		t.scratch = append(t.scratch, '<')
	case "gt":
		t.scratch = append(t.scratch, '>')
	case "amp":
		t.scratch = append(t.scratch, '&')
	case "apos":
		t.scratch = append(t.scratch, '\'')
	case "quot":
		t.scratch = append(t.scratch, '"')
	default:
		return t.syntax(fmt.Sprintf("invalid character entity &%s;", ent))
	}
	return nil
}

// bang dispatches "<!": comments and directives vanish; a CDATA section
// fills scratch and reports true so next returns it as a text token.
func (t *tokenizer) bang() (isCData bool, err error) {
	b, err := t.mustByte()
	if err != nil {
		return false, err
	}
	switch b {
	case '-':
		c, err := t.mustByte()
		if err != nil {
			return false, err
		}
		if c != '-' {
			return false, t.syntax("invalid sequence <!- not part of <!--")
		}
		return false, t.skipComment()
	case '[':
		for i := 0; i < len("CDATA["); i++ {
			c, err := t.mustByte()
			if err != nil {
				return false, err
			}
			if c != "CDATA["[i] {
				return false, t.syntax("invalid <![ sequence")
			}
		}
		return true, t.cdata()
	default:
		return false, t.skipDirective(b)
	}
}

func (t *tokenizer) skipComment() error {
	var w [2]byte
	have := 0
	for {
		b, err := t.mustByte()
		if err != nil {
			return err
		}
		if b == '>' && have == 2 && w[0] == '-' && w[1] == '-' {
			return nil
		}
		if have < 2 {
			w[have] = b
			have++
		} else {
			w[0], w[1] = w[1], b
		}
	}
}

// cdata appends a CDATA section's content (terminator excluded) to
// scratch, normalizing line endings; no entity expansion happens inside.
func (t *tokenizer) cdata() error {
	start := len(t.scratch)
	for {
		b, err := t.mustByte()
		if err != nil {
			return err
		}
		if b == '\r' {
			t.line++
			if w, err2 := t.src.peek(); err2 == nil && w[0] == '\n' {
				t.src.consume(1)
			}
			b = '\n'
		}
		t.scratch = append(t.scratch, b)
		if n := len(t.scratch); b == '>' && n-start >= 3 &&
			t.scratch[n-2] == ']' && t.scratch[n-3] == ']' {
			t.scratch = t.scratch[:n-3]
			return nil
		}
	}
}

// skipPI consumes a processing instruction up to its "?>" ('<?' already
// consumed); the splitter has no use for PI content.
func (t *tokenizer) skipPI() error {
	prev := byte(0)
	for {
		b, err := t.mustByte()
		if err != nil {
			return err
		}
		if prev == '?' && b == '>' {
			return nil
		}
		prev = b
	}
}

// skipDirective consumes a "<!NAME ...>" directive, honoring quoted
// strings and nesting — a DOCTYPE's internal subset ("[ <!ELEMENT ...> ]")
// must not end the skip early. b is the first byte after "<!".
func (t *tokenizer) skipDirective(b byte) error {
	var nest [16]byte // stack of '<' / '[' openers, depth-capped
	sp := 0
	var q byte
	for {
		switch {
		case q != 0:
			if b == q {
				q = 0
			}
		case b == '\'' || b == '"':
			q = b
		case b == '<' || b == '[':
			if sp < len(nest) {
				nest[sp] = b
			}
			sp++
		case b == ']':
			if sp > 0 && (sp > len(nest) || nest[sp-1] == '[') {
				sp--
			}
		case b == '>':
			if sp == 0 {
				return nil
			}
			if sp <= len(nest) && nest[sp-1] == '<' {
				sp--
			}
		}
		var err error
		if b, err = t.mustByte(); err != nil {
			return err
		}
	}
}

// startTag parses a start tag whose name begins with the already-consumed
// b: attributes are validated and dropped, the raw name pushed for
// end-tag matching. A "/>" tag sets selfClose so the next call emits the
// matching end token.
func (t *tokenizer) startTag(b byte) error {
	t.scratch = append(t.scratch[:0], b)
	colon := -1
	var d byte
	for {
		c, err := t.mustByte()
		if err != nil {
			return err
		}
		if !isNameByte(c) {
			d = c
			break
		}
		if c == ':' && colon < 0 {
			colon = len(t.scratch)
		}
		t.scratch = append(t.scratch, c)
	}
attrs:
	for {
		for isXMLSpace(d) {
			var err error
			if d, err = t.mustByte(); err != nil {
				return err
			}
		}
		switch d {
		case '>':
			break attrs
		case '/':
			c, err := t.mustByte()
			if err != nil {
				return err
			}
			if c != '>' {
				return t.syntax("expected /> in element")
			}
			t.selfClose = true
			break attrs
		}
		if !isNameStart(d) {
			return t.syntax("expected attribute name in element")
		}
		for {
			c, err := t.mustByte()
			if err != nil {
				return err
			}
			if !isNameByte(c) {
				d = c
				break
			}
		}
		for isXMLSpace(d) {
			var err error
			if d, err = t.mustByte(); err != nil {
				return err
			}
		}
		if d != '=' {
			return t.syntax("attribute name without = in element")
		}
		var err error
		if d, err = t.mustByte(); err != nil {
			return err
		}
		for isXMLSpace(d) {
			if d, err = t.mustByte(); err != nil {
				return err
			}
		}
		if d != '\'' && d != '"' {
			return t.syntax("unquoted or missing attribute value in element")
		}
		q := d
		for {
			c, err := t.mustByte()
			if err != nil {
				return err
			}
			if c == q {
				break
			}
		}
		if d, err = t.mustByte(); err != nil {
			return err
		}
	}
	t.openOff = append(t.openOff, len(t.openBuf))
	t.openBuf = append(t.openBuf, t.scratch...)
	t.kind = tokStart
	t.name = t.scratch[colon+1:] // colon == -1 ⇒ the whole name
	return nil
}

// endTag parses "</name>" (the "</" already consumed), matching it against
// the innermost open element by raw name so the splitter observes
// mismatches as the same *xml.SyntaxError shapes encoding/xml reports.
func (t *tokenizer) endTag() error {
	b, err := t.mustByte()
	if err != nil {
		return err
	}
	if !isNameStart(b) {
		return t.syntax("expected element name after </")
	}
	t.scratch = append(t.scratch[:0], b)
	var d byte
	for {
		c, err := t.mustByte()
		if err != nil {
			return err
		}
		if !isNameByte(c) {
			d = c
			break
		}
		t.scratch = append(t.scratch, c)
	}
	for isXMLSpace(d) {
		if d, err = t.mustByte(); err != nil {
			return err
		}
	}
	if d != '>' {
		return t.syntax(fmt.Sprintf("invalid characters between </%s and >", t.scratch))
	}
	if len(t.openOff) == 0 {
		return t.syntax(fmt.Sprintf("unexpected end element </%s>", t.scratch))
	}
	top := t.openBuf[t.openOff[len(t.openOff)-1]:]
	if !bytes.Equal(top, t.scratch) {
		return t.syntax(fmt.Sprintf("element <%s> closed by </%s>", top, t.scratch))
	}
	t.pop()
	t.kind = tokEnd
	return nil
}

func (t *tokenizer) pop() {
	n := len(t.openOff) - 1
	t.openBuf = t.openBuf[:t.openOff[n]]
	t.openOff = t.openOff[:n]
}
