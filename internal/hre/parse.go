package hre

import (
	"fmt"
	"unicode"
)

// Parse parses the concrete syntax documented in the package comment.
func Parse(input string) (*Expr, error) {
	p := &parser{input: input}
	p.skip()
	if p.eof() {
		return nil, p.err("empty expression")
	}
	e, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.skip()
	if !p.eof() {
		return nil, p.err("unexpected trailing input")
	}
	return e, nil
}

// MustParse parses input and panics on error; for tests and literals.
func MustParse(input string) *Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	input string
	pos   int
}

func (p *parser) err(msg string) error {
	return fmt.Errorf("hre: parse error at offset %d in %q: %s", p.pos, p.input, msg)
}

func (p *parser) eof() bool { return p.pos >= len(p.input) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.input[p.pos]
}

func (p *parser) skip() {
	for !p.eof() {
		switch p.input[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) alt() (*Expr, error) {
	first, err := p.embed()
	if err != nil {
		return nil, err
	}
	subs := []*Expr{first}
	for {
		p.skip()
		if p.peek() != '|' {
			break
		}
		p.pos++
		next, err := p.embed()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	return Alt(subs...), nil
}

// embed parses left-associative e₁ %z e₂ chains.
func (p *parser) embed() (*Expr, error) {
	acc, err := p.cat()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if p.peek() != '%' {
			return acc, nil
		}
		p.pos++
		z, err := p.name()
		if err != nil {
			return nil, err
		}
		rhs, err := p.cat()
		if err != nil {
			return nil, err
		}
		acc = Embed(acc, z, rhs)
	}
}

func (p *parser) cat() (*Expr, error) {
	first, err := p.rep()
	if err != nil {
		return nil, err
	}
	subs := []*Expr{first}
	for {
		p.skip()
		c := p.peek()
		if c == ',' {
			p.pos++
			p.skip()
			c = p.peek()
			if !startsAtom(c) {
				return nil, p.err("expected expression after ','")
			}
		}
		if !startsAtom(c) {
			break
		}
		next, err := p.rep()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	return Cat(subs...), nil
}

func startsAtom(c byte) bool {
	return c == '(' || c == '$' || c == '_' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (p *parser) rep() (*Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		switch p.peek() {
		case '*':
			p.pos++
			e = Star(e)
		case '+':
			p.pos++
			e = Plus(e)
		case '?':
			p.pos++
			e = Opt(e)
		case '^':
			p.pos++
			z, err := p.name()
			if err != nil {
				return nil, err
			}
			e = VClose(e, z)
		default:
			return e, nil
		}
	}
}

func (p *parser) atom() (*Expr, error) {
	p.skip()
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		p.skip()
		if p.peek() == ')' {
			p.pos++
			return Eps(), nil
		}
		e, err := p.alt()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.peek() != ')' {
			return nil, p.err("expected ')'")
		}
		p.pos++
		return e, nil
	case c == '.':
		p.pos++
		return Any(), nil
	case c == '$':
		p.pos++
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		return Var(name), nil
	case isNameStart(rune(c)):
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.peek() != '<' {
			return Leaf(name), nil
		}
		p.pos++
		p.skip()
		if p.peek() == '~' {
			p.pos++
			z, err := p.name()
			if err != nil {
				return nil, err
			}
			p.skip()
			if p.peek() != '>' {
				return nil, p.err("expected '>' after substitution symbol")
			}
			p.pos++
			return Subst(name, z), nil
		}
		if p.peek() == '>' {
			p.pos++
			return Leaf(name), nil
		}
		inner, err := p.alt()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.peek() != '>' {
			return nil, p.err("expected '>'")
		}
		p.pos++
		return Elem(name, inner), nil
	default:
		return nil, p.err("expected an atom")
	}
}

func (p *parser) name() (string, error) {
	start := p.pos
	if p.eof() || !isNameStart(rune(p.input[p.pos])) {
		return "", p.err("expected a name")
	}
	p.pos++
	for !p.eof() && isNameRest(rune(p.input[p.pos])) {
		p.pos++
	}
	return p.input[start:p.pos], nil
}

func isNameStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }

func isNameRest(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
