package hre

import (
	"sort"

	"xpe/internal/hedge"
)

// Enumerate returns every hedge of L(e) (Definition 12) with at most
// maxNodes nodes, including members that still contain substitution
// symbols. It implements the definitional semantics directly — star,
// embedding, and vertical closure as size-bounded fixpoints — and serves as
// the oracle against which the Lemma 1 compilation is verified.
//
// Completeness argument for the bounds: in an embedding U ∘z V, every
// chosen member of U appears verbatim in the result, so members of U larger
// than the target bound can never contribute; the upper hedge v ∈ V,
// however, shrinks by one node per occurrence of z, and since substitution
// symbols occur only as sole children, v has at most |v|/2 occurrences —
// hence |v| ≤ 2·bound suffices. The vertical closure iterates the same
// embedding with the accumulated set as the lower operand.
func Enumerate(e *Expr, maxNodes int) []hedge.Hedge {
	set := enum(e, maxNodes)
	out := make([]hedge.Hedge, 0, len(set))
	for _, h := range set {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// hset is a deduplicated set of hedges keyed by their rendering.
type hset map[string]hedge.Hedge

func (s hset) add(h hedge.Hedge) bool {
	k := h.String()
	if _, ok := s[k]; ok {
		return false
	}
	s[k] = h
	return true
}

// enum returns all members of L(e) with at most bound nodes.
func enum(e *Expr, bound int) hset {
	out := hset{}
	if bound < 0 {
		return out
	}
	switch e.Kind {
	case KEmpty:
	case KAny:
		panic("hre: '.' (any hedge) has no enumerative semantics; it is resolved against the interned alphabet at compile time")
	case KEps:
		out.add(nil)
	case KVar:
		if bound >= 1 {
			out.add(hedge.Hedge{hedge.NewVar(e.Name)})
		}
	case KSubst:
		if bound >= 2 {
			out.add(hedge.Hedge{hedge.NewElem(e.Name, hedge.NewSubst(e.Z))})
		}
	case KElem:
		for _, u := range enum(e.Subs[0], bound-1) {
			out.add(hedge.Hedge{hedge.NewElem(e.Name, u...)})
		}
	case KCat:
		out = enum(e.Subs[0], bound)
		for _, s := range e.Subs[1:] {
			out = catSets(out, enum(s, bound), bound)
		}
	case KAlt:
		for _, s := range e.Subs {
			for _, h := range enum(s, bound) {
				out.add(h)
			}
		}
	case KStar:
		base := enum(e.Subs[0], bound)
		out.add(nil)
		for {
			grew := false
			next := catSets(out, base, bound)
			for _, h := range next {
				if out.add(h) {
					grew = true
				}
			}
			if !grew {
				break
			}
		}
	case KEmbed:
		lower := enum(e.Subs[0], bound)
		upper := enum(e.Subs[1], 2*bound)
		for _, v := range upper {
			for _, h := range embedAll(lower, e.Z, v, bound) {
				out.add(h)
			}
		}
	case KVClose:
		// L(e^z) = ⋃ᵢ L(e^{i,z}) with L(e^{i+1,z}) = L(e^{i,z}) ∘z L(e)
		// ∪ L(e^{i,z}): a size-bounded fixpoint. The accumulated set only
		// needs members ≤ bound (they appear verbatim in larger members);
		// the upper operand ranges over L(e) up to 2·bound.
		base := enum(e.Subs[0], 2*bound)
		for _, h := range base {
			if h.Size() <= bound {
				out.add(h)
			}
		}
		for {
			grew := false
			for _, v := range base {
				for _, h := range embedAll(out, e.Z, v, bound) {
					if out.add(h) {
						grew = true
					}
				}
			}
			if !grew {
				break
			}
		}
	}
	return out
}

// catSets concatenates every pair within the size bound.
func catSets(a, b hset, bound int) hset {
	out := hset{}
	for _, u := range a {
		su := u.Size()
		if su > bound {
			continue
		}
		for _, v := range b {
			if su+v.Size() > bound {
				continue
			}
			h := append(u.Clone(), v.Clone()...)
			out.add(h)
		}
	}
	return out
}

// embedAll returns the members of U ∘z v (Definition 10) with at most
// bound nodes: every way of replacing each occurrence of z in v by a member
// of U (occurrences independently). Recursion prunes a branch as soon as
// its minimum achievable size — every remaining z replaced by ε — exceeds
// the bound.
func embedAll(u hset, z string, v hedge.Hedge, bound int) []hedge.Hedge {
	var occs []hedge.Path
	v.Visit(func(p hedge.Path, n *hedge.Node) bool {
		if n.Kind == hedge.Subst && n.Name == z {
			occs = append(occs, p.Clone())
		}
		return true
	})
	if len(occs) == 0 {
		if v.Size() <= bound {
			return []hedge.Hedge{v.Clone()}
		}
		return nil
	}
	members := make([]hedge.Hedge, 0, len(u))
	for _, m := range u {
		members = append(members, m)
	}
	var out []hedge.Hedge
	var rec func(cur hedge.Hedge, idx int)
	rec = func(cur hedge.Hedge, idx int) {
		remaining := len(occs) - idx
		if cur.Size()-remaining > bound {
			return
		}
		if idx == len(occs) {
			out = append(out, cur)
			return
		}
		p := occs[idx]
		for _, m := range members {
			next := cur.Clone()
			parent := next.At(p[:len(p)-1])
			parent.Children = m.Clone()
			rec(next, idx+1)
		}
	}
	rec(v.Clone(), 0)
	return out
}
