package hre

import (
	"fmt"

	"xpe/internal/alphabet"
	"xpe/internal/ha"
	"xpe/internal/sfa"
	"xpe/internal/sre"
)

// ToExpr converts a deterministic hedge automaton to a hedge regular
// expression e with L(e) ∩ H[Σ,X] = L(M) — the Lemma 2 construction.
//
// The algorithm follows the paper exactly:
//
//  1. The state space is split so that ζ(q) — the unique symbol labeling
//     nodes that reach q — is well defined: element states become (q,a)
//     pairs and ι images become dedicated leaf states.
//  2. R(q, Q₁, Q₂) — the child-sequence languages where interior nodes use
//     states in Q₁ and connector nodes (ζ(r)⟨z_r⟩) use states in Q₂ — is
//     computed by the three-equation recursion over the cardinality of Q₁,
//     with the base case substituting leaf/connector expressions into the
//     state-eliminated regex of α⁻¹(ζ(q), q).
//  3. Every state r occurring in F is replaced by ζ(r)⟨R(r, Q, ∅)⟩ (for
//     element states) or the alternation of its variables (for leaf
//     states).
//
// The construction is exponential; it is intended for small automata and
// round-trip testing against Compile (Theorem 2).
func ToExpr(d *ha.DHA) (*Expr, error) {
	c, err := newLemma2(d)
	if err != nil {
		return nil, err
	}
	return c.finalExpr()
}

// lemma2 carries the preprocessed automaton. The new state space S is
// leafStates ∪ elemStates:
//
//	leaf state i  — reached exactly by the variables vars[i]
//	elem state j  — the pair (origState[j], sym[j]) with ζ = sym[j]
type lemma2 struct {
	d *ha.DHA

	// Leaf states: one per original state that is an ι image.
	leafOf   map[int]int // original state → leaf index
	leafVars [][]string  // leaf index → variable names
	leafOrig []int       // leaf index → original state
	// Element states: one per (original state, symbol) with non-empty
	// α⁻¹(a, q).
	elemOf   map[[2]int]int // (orig state, sym) → elem index
	elemOrig [][2]int       // elem index → (orig state, sym)

	// horiz[j] = α'⁻¹(ζ(r), r) for elem state j, as a DFA over the new
	// state space S (leaf i ↦ symbol i, elem j ↦ symbol numLeaf+j).
	horiz []*sfa.DFA
	// finalDFA = h⁻¹(F) over S.
	finalDFA *sfa.DFA

	memo map[memoKey]*Expr
}

type memoKey struct {
	q     int
	mask1 uint64
	mask2 uint64
}

func newLemma2(d *ha.DHA) (*lemma2, error) {
	c := &lemma2{
		d:      d,
		leafOf: map[int]int{},
		elemOf: map[[2]int]int{},
		memo:   map[memoKey]*Expr{},
	}
	// Leaf states from ι.
	for v, q := range d.Iota {
		if q == alphabet.None {
			continue
		}
		idx, ok := c.leafOf[q]
		if !ok {
			idx = len(c.leafVars)
			c.leafOf[q] = idx
			c.leafVars = append(c.leafVars, nil)
			c.leafOrig = append(c.leafOrig, q)
		}
		c.leafVars[idx] = append(c.leafVars[idx], d.Names.Vars.Name(v))
	}
	// Element states from horizontal structures.
	for sym, hz := range d.Horiz {
		if hz == nil {
			continue
		}
		seen := map[int]bool{}
		for _, q := range hz.Out {
			if q != alphabet.None && !seen[q] {
				seen[q] = true
				key := [2]int{q, sym}
				if _, ok := c.elemOf[key]; !ok {
					c.elemOf[key] = len(c.elemOrig)
					c.elemOrig = append(c.elemOrig, key)
				}
			}
		}
	}
	if len(c.elemOrig) > 60 {
		return nil, fmt.Errorf("hre: ToExpr limited to 60 element states, have %d", len(c.elemOrig))
	}
	// Horizontal languages lifted to the new state space: a word over S is
	// in α'⁻¹(a, (q,a)) iff its projection to original states is in
	// α⁻¹(a, q).
	numS := len(c.leafOrig) + len(c.elemOrig)
	for _, key := range c.elemOrig {
		q, sym := key[0], key[1]
		c.horiz = append(c.horiz, c.liftDFA(acceptWhere(d.Horiz[sym], q), numS))
	}
	c.finalDFA = c.liftDFA(d.Final, numS)
	return c, nil
}

// acceptWhere returns a DFA over original states accepting the words that
// drive hz into a horizontal state with output q.
func acceptWhere(hz *ha.Horiz, q int) *sfa.DFA {
	dfa := hz.DFA.Clone()
	for hs := range dfa.Accept {
		dfa.Accept[hs] = hs < len(hz.Out) && hz.Out[hs] == q
	}
	return dfa
}

// liftDFA converts a DFA over original states into a DFA over the new
// state space S: each transition on original state q is duplicated onto
// every new state (leaf or element) projecting to q.
func (c *lemma2) liftDFA(orig *sfa.DFA, numS int) *sfa.DFA {
	images := make(map[int][]int) // original state → S symbols
	for i, q := range c.leafOrig {
		images[q] = append(images[q], i)
	}
	for j, key := range c.elemOrig {
		images[key[0]] = append(images[key[0]], len(c.leafOrig)+j)
	}
	nfa := orig.ToNFA().MapSymbols(numS, func(q int) []int { return images[q] })
	nfa.GrowAlphabet(numS)
	return nfa.Determinize()
}

// symName renders an S symbol for the intermediate string regexes.
func (c *lemma2) symName(s int) string { return fmt.Sprintf("s%d", s) }

func (c *lemma2) symOfName(name string) int {
	var s int
	fmt.Sscanf(name, "s%d", &s)
	return s
}

// zName returns the substitution symbol used for elem state j.
func (c *lemma2) zName(j int) string { return fmt.Sprintf("z%d", j) }

// leafExpr is the alternation of the variables reaching leaf index i.
func (c *lemma2) leafExpr(i int) *Expr {
	subs := make([]*Expr, len(c.leafVars[i]))
	for k, v := range c.leafVars[i] {
		subs[k] = Var(v)
	}
	return Alt(subs...)
}

// connectorExpr is ζ(r)⟨z_r⟩ for elem index j.
func (c *lemma2) connectorExpr(j int) *Expr {
	sym := c.d.Names.Syms.Name(c.elemOrig[j][1])
	return Subst(sym, c.zName(j))
}

// substitute maps a string regex over S symbols to an HRE by replacing each
// symbol with the given per-symbol expression.
func (c *lemma2) substitute(e *sre.Expr, sub func(s int) *Expr) *Expr {
	switch e.Kind {
	case sre.KEmpty:
		return Empty()
	case sre.KEps:
		return Eps()
	case sre.KSym:
		return sub(c.symOfName(e.Name))
	case sre.KCat:
		subs := make([]*Expr, len(e.Subs))
		for i, s := range e.Subs {
			subs[i] = c.substitute(s, sub)
		}
		return Cat(subs...)
	case sre.KAlt:
		subs := make([]*Expr, len(e.Subs))
		for i, s := range e.Subs {
			subs[i] = c.substitute(s, sub)
		}
		return Alt(subs...)
	case sre.KStar:
		return Star(c.substitute(e.Subs[0], sub))
	}
	return Empty()
}

// R computes R(q, Q₁, Q₂) for elem state q with Q₁/Q₂ as bitmasks over
// element states.
func (c *lemma2) R(q int, mask1, mask2 uint64) *Expr {
	key := memoKey{q, mask1, mask2}
	if e, ok := c.memo[key]; ok {
		return e
	}
	var result *Expr
	if mask1 == 0 {
		// Base case: every node is a leaf or a connector in Q₂.
		regex := sre.FromDFA(c.horiz[q], c.symName)
		result = c.substitute(regex, func(s int) *Expr {
			if s < len(c.leafOrig) {
				return c.leafExpr(s)
			}
			j := s - len(c.leafOrig)
			if mask2&(1<<uint(j)) != 0 {
				return c.connectorExpr(j)
			}
			return Empty()
		})
	} else {
		// Pick the highest element state p in Q₁ and apply the paper's
		// three-equation elimination.
		p := 63
		for mask1&(1<<uint(p)) == 0 {
			p--
		}
		rest := mask1 &^ (1 << uint(p))
		zp := c.zName(p)
		a := c.R(p, rest, mask2)            // R(p, Q₁, Q₂)
		b := c.R(p, rest, mask2|1<<uint(p)) // R(p, Q₁, Q₂∪{p})
		cc := c.R(q, rest, mask2|1<<uint(p))
		dd := c.R(q, rest, mask2)
		inner := Alt(Embed(a, zp, VClose(b, zp)), a)
		result = Alt(Embed(inner, zp, cc), dd)
	}
	result = prune(result)
	c.memo[key] = result
	return result
}

// finalExpr substitutes every state of F with its tree expression.
func (c *lemma2) finalExpr() (*Expr, error) {
	all := uint64(0)
	for j := range c.elemOrig {
		all |= 1 << uint(j)
	}
	regex := sre.FromDFA(c.finalDFA, c.symName)
	result := c.substitute(regex, func(s int) *Expr {
		if s < len(c.leafOrig) {
			return c.leafExpr(s)
		}
		j := s - len(c.leafOrig)
		sym := c.d.Names.Syms.Name(c.elemOrig[j][1])
		return Elem(sym, c.R(j, all, 0))
	})
	return prune(result), nil
}

// prune applies ∅/ε absorption so the exponential construction stays as
// small as possible.
func prune(e *Expr) *Expr {
	switch e.Kind {
	case KCat:
		var subs []*Expr
		for _, s := range e.Subs {
			s = prune(s)
			if s.Kind == KEmpty {
				return Empty()
			}
			if s.Kind == KEps {
				continue
			}
			if s.Kind == KCat {
				subs = append(subs, s.Subs...)
				continue
			}
			subs = append(subs, s)
		}
		return Cat(subs...)
	case KAlt:
		var subs []*Expr
		seen := map[*Expr]bool{}
		for _, s := range e.Subs {
			s = prune(s)
			if s.Kind == KEmpty || seen[s] {
				continue
			}
			seen[s] = true
			if s.Kind == KAlt {
				subs = append(subs, s.Subs...)
				continue
			}
			subs = append(subs, s)
		}
		return Alt(subs...)
	case KStar:
		s := prune(e.Subs[0])
		if s.Kind == KEmpty || s.Kind == KEps {
			return Eps()
		}
		return Star(s)
	case KElem:
		return Elem(e.Name, prune(e.Subs[0]))
	case KEmbed:
		lower, upper := prune(e.Subs[0]), prune(e.Subs[1])
		if upper.Kind == KEmpty {
			return Empty()
		}
		if !mentionsZ(upper, e.Z) {
			return upper
		}
		if lower.Kind == KEmpty {
			// Every member of upper mentioning z is dropped; members
			// without z survive. Conservatively keep the node.
			return Embed(lower, e.Z, upper)
		}
		return Embed(lower, e.Z, upper)
	case KVClose:
		s := prune(e.Subs[0])
		if s.Kind == KEmpty {
			return Empty()
		}
		if !mentionsZ(s, e.Z) {
			return s
		}
		return VClose(s, e.Z)
	}
	return e
}

func mentionsZ(e *Expr, z string) bool {
	found := false
	e.Walk(func(x *Expr) {
		if x.Kind == KSubst && x.Z == z {
			found = true
		}
	})
	return found
}
