package hre

import (
	"fmt"

	"xpe/internal/ha"
	"xpe/internal/sfa"
)

// Compile converts a hedge regular expression to a non-deterministic hedge
// automaton accepting L(e) — the Lemma 1 construction, implemented
// compositionally over a single automaton under construction:
//
//   - Cases 1–3 (∅, ε, x) produce final languages over fresh leaf states.
//   - Case 4 (a⟨e⟩) adds one state q and the rule α⁻¹(a,q) = F(e).
//   - Cases 5–7 (concatenation, alternation, star) combine final languages
//     with the corresponding string-language operations; the paper's state
//     renaming (Q₁ ∩ Q₂ ⊆ Z̄) is automatic because every sub-fragment
//     allocates fresh states, sharing only the z̄ leaf states.
//   - Case 8 (a⟨z⟩) uses the shared leaf state z̄ of the substitution
//     symbol, tracked as a reserved variable (ha.SubstVarName).
//   - Case 9 (e₁ ∘z e₂) rewrites every rule of e₂'s fragment whose language
//     contains the one-symbol word z̄: the word is removed and F(e₁) is
//     added as an alternative child-sequence language.
//   - Case 10 (e^z) adds, for every rule of the fragment whose language
//     contains the word z̄, an additional rule with language F(e) —
//     realizing arbitrarily deep self-embedding.
//
// Symbols and variables mentioned in e are interned into names. The
// returned automaton accepts exactly L(e), including members that still
// contain substitution symbols (represented as hedge.Subst leaves).
func Compile(e *Expr, names *ha.Names) (*ha.NHA, error) {
	syms, vars, _ := e.Names()
	for _, a := range syms {
		names.Syms.Intern(a)
	}
	for _, x := range vars {
		names.Vars.Intern(x)
	}
	c := &compiler{nha: ha.NewNHA(names), zbar: map[string]int{}}
	final, err := c.compile(e)
	if err != nil {
		return nil, err
	}
	c.nha.Final = final
	// Normalize language alphabets to the final state count.
	for i := range c.nha.Rules {
		c.nha.Rules[i].Lang.GrowAlphabet(c.nha.NumStates)
	}
	c.nha.Final.GrowAlphabet(c.nha.NumStates)
	return c.nha, nil
}

// MustCompile is Compile, panicking on error.
func MustCompile(e *Expr, names *ha.Names) *ha.NHA {
	n, err := Compile(e, names)
	if err != nil {
		panic(err)
	}
	return n
}

type compiler struct {
	nha  *ha.NHA
	zbar map[string]int // substitution symbol → shared leaf state z̄
}

// zbarState returns the shared z̄ state for substitution symbol z,
// creating it (with ι(z) = z̄) on first use.
func (c *compiler) zbarState(z string) int {
	if q, ok := c.zbar[z]; ok {
		return q
	}
	q := c.nha.AddState()
	v := c.nha.Names.Vars.Intern(ha.SubstVarName(z))
	c.nha.AddIota(v, q)
	c.zbar[z] = q
	return q
}

// compile returns the final-state-sequence language F of the fragment
// M(e); all rules and ι entries are accumulated into c.nha.
func (c *compiler) compile(e *Expr) (*sfa.NFA, error) {
	switch e.Kind {
	case KEmpty:
		return sfa.EmptyLang(c.nha.NumStates), nil

	case KEps:
		return sfa.EpsLang(c.nha.NumStates), nil

	case KVar:
		q := c.nha.AddState()
		v := c.nha.Names.Vars.Intern(e.Name)
		c.nha.AddIota(v, q)
		return sfa.SymbolLang(q+1, q), nil

	case KElem:
		inner, err := c.compile(e.Subs[0])
		if err != nil {
			return nil, err
		}
		q := c.nha.AddState()
		c.nha.AddRule(c.nha.Names.Syms.Intern(e.Name), q, inner)
		return sfa.SymbolLang(q+1, q), nil

	case KSubst:
		zb := c.zbarState(e.Z)
		q := c.nha.AddState()
		c.nha.AddRule(c.nha.Names.Syms.Intern(e.Name), q,
			sfa.WordLang(c.nha.NumStates, []int{zb}))
		return sfa.SymbolLang(q+1, q), nil

	case KCat:
		acc, err := c.compile(e.Subs[0])
		if err != nil {
			return nil, err
		}
		for _, s := range e.Subs[1:] {
			next, err := c.compile(s)
			if err != nil {
				return nil, err
			}
			acc = sfa.Concat(acc, next)
		}
		return acc, nil

	case KAlt:
		acc, err := c.compile(e.Subs[0])
		if err != nil {
			return nil, err
		}
		for _, s := range e.Subs[1:] {
			next, err := c.compile(s)
			if err != nil {
				return nil, err
			}
			acc = sfa.Union(acc, next)
		}
		return acc, nil

	case KStar:
		inner, err := c.compile(e.Subs[0])
		if err != nil {
			return nil, err
		}
		return sfa.Star(inner), nil

	case KEmbed:
		f1, err := c.compile(e.Subs[0])
		if err != nil {
			return nil, err
		}
		lo := len(c.nha.Rules)
		f2, err := c.compile(e.Subs[1])
		if err != nil {
			return nil, err
		}
		zb, used := c.zbar[e.Z]
		if !used {
			// e₂ cannot mention z: L(e₁ ∘z e₂) = L(e₂).
			return f2, nil
		}
		c.rewriteAtZbar(lo, len(c.nha.Rules), zb, f1, true)
		return f2, nil

	case KVClose:
		lo := len(c.nha.Rules)
		f, err := c.compile(e.Subs[0])
		if err != nil {
			return nil, err
		}
		zb, used := c.zbar[e.Z]
		if !used {
			return f, nil
		}
		c.rewriteAtZbar(lo, len(c.nha.Rules), zb, f, false)
		return f, nil

	case KAny:
		// Desugar '.' over the alphabet interned so far (closed world):
		// (a₁⟨z⟩|…|x₁|…)*^z for a fresh substitution symbol.
		var vars []string
		for _, v := range c.nha.Names.Vars.Names() {
			if len(v) > 0 && v[0] != '\x00' {
				vars = append(vars, v)
			}
		}
		return c.compile(AnyHedge(c.nha.Names.Syms.Names(), vars))
	}
	return nil, fmt.Errorf("hre: cannot compile node kind %d", e.Kind)
}

// rewriteAtZbar scans the rules created in [lo, hi) for languages
// containing the one-symbol word z̄ and adds the alternative language alt
// for the same (symbol, result) pair. When remove is true (case 9,
// embedding) the word z̄ is removed from the original language; when false
// (case 10, vertical closure) it is kept, permitting partial substitution.
func (c *compiler) rewriteAtZbar(lo, hi, zb int, alt *sfa.NFA, remove bool) {
	word := []int{zb}
	type target struct{ sym, result int }
	var targets []target
	for i := lo; i < hi; i++ {
		rule := &c.nha.Rules[i]
		if !rule.Lang.Accepts(word) {
			continue
		}
		targets = append(targets, target{rule.Sym, rule.Result})
		if remove {
			rule.Lang = sfa.DifferenceNFA(rule.Lang,
				sfa.WordLang(rule.Lang.NumSymbols, word))
		}
	}
	for _, t := range targets {
		c.nha.AddRule(t.sym, t.result, alt.Clone())
	}
}
