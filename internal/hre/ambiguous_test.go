package hre

import (
	"testing"

	"xpe/internal/ha"
)

func TestAmbiguousExpressions(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"a", false},
		{"a | a", true}, // two derivations of the same hedge
		{"a | b", false},
		{"a* a*", true}, // aa splits 0+2, 1+1, 2+0
		{"a b", false},
		{"a<b | c>", false},
		{"a<b*> | a<b b*>", true}, // a⟨b⟩ matches both branches
		{"a<~z>*^z", false},       // the recursive all-a language, one way per hedge
		{"$x | $x", true},
		{"(a | b)*", false},
	}
	for _, c := range cases {
		names := ha.NewNames()
		got, err := Ambiguous(MustParse(c.src), names)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("Ambiguous(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}
