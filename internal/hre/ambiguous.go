package hre

import "xpe/internal/ha"

// Ambiguous reports whether the Lemma 1 automaton of e admits a hedge with
// two distinct successful computations. Section 9 of the paper proposes
// introducing variables to hedge regular expressions and observes that
// "variables can be safely introduced to unambiguous expressions"; this is
// the corresponding decision procedure (at the automaton level, which is
// what variable bindings would be read off of).
func Ambiguous(e *Expr, names *ha.Names) (bool, error) {
	nha, err := Compile(e, names)
	if err != nil {
		return false, err
	}
	return nha.Ambiguous(), nil
}
