package hre

import (
	"math/rand"
	"strings"
	"testing"

	"xpe/internal/ha"
	"xpe/internal/hedge"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"$x",
		"a",
		"a<$x>",
		"a<~z>",
		"a<~z>*^z",
		"a b<$x | $y>",
		"(a | b)*",
		"a<~z> %z b<~z>",
		"a<b<~z>>^z",
		"a+ b? ()",
		"a, b, c",
	}
	for _, src := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		again, err := Parse(e.String())
		if err != nil {
			t.Fatalf("re-Parse(%q → %q): %v", src, e.String(), err)
		}
		if e.String() != again.String() {
			t.Fatalf("unstable rendering: %q → %q", e.String(), again.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "<", "a<", "a<~>", "a<~z", "$", "a %", "a ^", "a |", "(a"}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestEnumerateBasics(t *testing.T) {
	// L(a<~z>*) up to 4 nodes: ε, a⟨z⟩, a⟨z⟩a⟨z⟩.
	got := Enumerate(MustParse("a<~z>*"), 4)
	want := []string{"", "a<~z>", "a<~z> a<~z>"}
	if len(got) != len(want) {
		t.Fatalf("got %d members: %v", len(got), got)
	}
	for i, h := range got {
		if h.String() != want[i] {
			t.Fatalf("member %d = %q, want %q", i, h, want[i])
		}
	}
}

func TestEnumerateVClosePaperExample(t *testing.T) {
	// L(a⟨z⟩*^z) contains all hedges where every symbol is a and every
	// substitution symbol is z (Section 4's worked example).
	members := Enumerate(MustParse("a<~z>*^z"), 4)
	set := map[string]bool{}
	for _, h := range members {
		set[h.String()] = true
	}
	// NOTE: hedges like "a<~z> a" (a literal a⟨z⟩ next to a replaced
	// sibling) are NOT derivable under the strict Definition 12 iteration,
	// because embedding replaces every occurrence of z; the Lemma 1
	// automaton (and the paper's prose description) admits them. Both
	// agree on every plain hedge. See TestCompileSupersetOnSubstHedges.
	for _, expect := range []string{
		"", "a", "a a", "a<a>", "a<a a>", "a<a<a>>", "a a a", "a<a> a",
		"a<~z>", "a<a<~z>>",
	} {
		if !set[expect] {
			t.Errorf("missing member %q", expect)
		}
	}
	if set["b"] || set["a<b>"] {
		t.Error("unexpected member with symbol b")
	}
}

func TestEnumerateEmbed(t *testing.T) {
	// {a,b} ∘z c⟨z⟩c⟨z⟩ from the Definition 10 example: all four
	// combinations.
	e := MustParse("(a | b) %z (c<~z> c<~z>)")
	members := Enumerate(e, 6)
	if len(members) != 4 {
		t.Fatalf("got %d members: %v", len(members), members)
	}
	set := map[string]bool{}
	for _, h := range members {
		set[h.String()] = true
	}
	for _, expect := range []string{"c<a> c<a>", "c<a> c<b>", "c<b> c<a>", "c<b> c<b>"} {
		if !set[expect] {
			t.Errorf("missing %q", expect)
		}
	}
}

func TestEnumerateEmbedIntoUnion(t *testing.T) {
	// U ∘z V with V = {c⟨z⟩c⟨z⟩, c⟨z⟩}: six members (Definition 10).
	e := MustParse("(a | b) %z (c<~z> c<~z> | c<~z>)")
	members := Enumerate(e, 6)
	if len(members) != 6 {
		t.Fatalf("got %d members: %v", len(members), members)
	}
}

// compileAndCompare checks the Lemma 1 compilation against the enumerative
// oracle: every enumerated member is accepted, and exhaustively-generated
// small hedges are accepted iff enumerated.
func compileAndCompare(t *testing.T, src string, maxNodes int) {
	t.Helper()
	e := MustParse(src)
	names := ha.NewNames()
	nha, err := Compile(e, names)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	members := Enumerate(e, maxNodes)
	memberSet := map[string]bool{}
	for _, h := range members {
		memberSet[h.String()] = true
		if !nha.Accepts(h) {
			t.Fatalf("%q: enumerated member %q rejected by automaton", src, h)
		}
	}
	// Exhaustive cross-check over all hedges up to maxNodes nodes over the
	// mentioned alphabet. Exact agreement is required on plain hedges; on
	// hedges that still contain substitution symbols the automaton may
	// accept more (the Lemma 1 construction closes the language under
	// partial substitution, matching the paper's prose for a⟨z⟩*^z; the
	// strict Definition 12 iteration is narrower there). Both semantics
	// coincide on the plain hedges that queries consume.
	syms, vars, substs := e.Names()
	all := allHedges(syms, vars, substs, maxNodes)
	for _, h := range all {
		got := nha.Accepts(h)
		want := memberSet[h.String()]
		if h.HasSubst() {
			if want && !got {
				t.Fatalf("%q: automaton rejects oracle member %q", src, h)
			}
			continue
		}
		if got != want {
			t.Fatalf("%q: automaton=%v oracle=%v on %q", src, got, want, h)
		}
	}
	// Determinization must preserve the language (Theorem 1 on compiled
	// automata).
	det := nha.Determinize()
	for _, h := range all {
		if det.DHA.Accepts(h) != nha.Accepts(h) {
			t.Fatalf("%q: determinization changed membership of %q", src, h)
		}
	}
}

// allHedges generates every hedge (with substitution symbols allowed as
// sole children) up to the node bound — small alphabets only.
func allHedges(syms, vars, substs []string, maxNodes int) []hedge.Hedge {
	// Build incrementally: hedges of size ≤ n as sequences of trees.
	trees := [][]hedge.Hedge{nil} // trees[s] = single-tree hedges of size exactly s
	var hedges []hedge.Hedge
	hedgesBySize := map[int][]hedge.Hedge{0: {nil}}
	for s := 1; s <= maxNodes; s++ {
		var ts []hedge.Hedge
		if s == 1 {
			for _, x := range vars {
				ts = append(ts, hedge.Hedge{hedge.NewVar(x)})
			}
			for _, a := range syms {
				ts = append(ts, hedge.Hedge{hedge.NewElem(a)})
			}
		}
		if s == 2 {
			for _, a := range syms {
				for _, z := range substs {
					ts = append(ts, hedge.Hedge{hedge.NewElem(a, hedge.NewSubst(z))})
				}
			}
		}
		// a⟨u⟩ for hedges u of size s-1 (u non-empty handled; empty covered
		// at s == 1).
		if s >= 2 {
			for _, u := range hedgesBySize[s-1] {
				if len(u) == 0 {
					continue
				}
				if len(u) == 1 && u[0].Kind == hedge.Subst {
					continue // already added above
				}
				for _, a := range syms {
					ts = append(ts, hedge.Hedge{hedge.NewElem(a, u.Clone()...)})
				}
			}
		}
		trees = append(trees, ts)
		// hedges of size exactly s: tree of size k (1..s) followed by hedge
		// of size s-k.
		var hs []hedge.Hedge
		for k := 1; k <= s; k++ {
			for _, tr := range trees[k] {
				for _, rest := range hedgesBySize[s-k] {
					h := append(tr.Clone(), rest.Clone()...)
					hs = append(hs, h)
				}
			}
		}
		hedgesBySize[s] = hs
	}
	for s := 0; s <= maxNodes; s++ {
		hedges = append(hedges, hedgesBySize[s]...)
	}
	return hedges
}

func TestCompileAgainstOracle(t *testing.T) {
	cases := []struct {
		src      string
		maxNodes int
	}{
		{"$x", 3},
		{"a", 3},
		{"[]", 3}, // unparsable; skipped below
		{"a<$x>", 4},
		{"a b", 4},
		{"a | $x", 3},
		{"a*", 5},
		{"a<$x | b>", 4},
		{"a<~z>", 4},
		{"a<~z>*", 4},
		{"a<~z>*^z", 5},
		{"$x %z a<~z>", 4},
		{"(a | b) %z (c<~z> c<~z>)", 4},
		{"() %z a<~z>", 4},
		{"a<~z> %z b<~z>", 4},
		{"(a<~z> | $x) %z b<~z>", 4},
		{"b<a<~z>>^z", 5},
		{"a<~z>^z", 5},
		{"(a<~z> b)*", 4},
		{"a<b<~z>*>^z", 5},
		{"(a<~z> %z b<~z>) c", 4},
	}
	for _, c := range cases {
		if c.src == "[]" {
			// ∅ has no surface syntax; test via constructor.
			names := ha.NewNames()
			nha := MustCompile(Empty(), names)
			if !nha.IsEmpty() {
				t.Fatal("compiled ∅ should be empty")
			}
			continue
		}
		compileAndCompare(t, c.src, c.maxNodes)
	}
}

func TestCompileEpsAndEmpty(t *testing.T) {
	names := ha.NewNames()
	eps := MustCompile(Eps(), names)
	if !eps.Accepts(nil) {
		t.Fatal("ε automaton should accept the empty hedge")
	}
	if eps.Accepts(hedge.MustParse("a")) {
		t.Fatal("ε automaton should reject a")
	}
}

func TestCompilePathExpressionShape(t *testing.T) {
	// The introduction's (section*, figure) as a vertical chain:
	// figures in sections in sections … — expressed with nested embedding:
	// section⟨z⟩ closed vertically, with figure at the bottom.
	src := "section<~z>^z %z section<figure<~z2>> %z2 ()"
	// Reading: innermost () replaces z2 (figure has no children);
	// then section⟨figure⟩ wrapped in any depth of sections.
	e := MustParse(src)
	names := ha.NewNames()
	nha := MustCompile(e, names)
	_ = nha
	// At minimum the compile must succeed and produce a non-empty language.
	if nha.IsEmpty() {
		t.Fatal("language should be non-empty")
	}
}

func TestAnyHedge(t *testing.T) {
	e := AnyHedge([]string{"a", "b"}, []string{"x"})
	names := ha.NewNames()
	nha := MustCompile(e, names)
	rng := rand.New(rand.NewSource(3))
	cfg := hedge.RandConfig{Symbols: []string{"a", "b"}, Vars: []string{"x"}, MaxDepth: 4, MaxWidth: 3}
	for i := 0; i < 200; i++ {
		h := hedge.Random(rng, cfg)
		if !nha.Accepts(h) {
			t.Fatalf("AnyHedge rejected %v", h)
		}
	}
}

func TestNamesExtraction(t *testing.T) {
	e := MustParse("a<$x> b<~z>*^z %w c<~w>")
	syms, vars, substs := e.Names()
	if strings.Join(syms, ",") != "a,b,c" {
		t.Fatalf("syms = %v", syms)
	}
	if strings.Join(vars, ",") != "x" {
		t.Fatalf("vars = %v", vars)
	}
	if len(substs) != 2 {
		t.Fatalf("substs = %v", substs)
	}
}
