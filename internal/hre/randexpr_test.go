package hre

import (
	"math/rand"
	"testing"

	"xpe/internal/ha"
)

// randExpr generates a random hedge regular expression over {a,b},
// variables {x}, and substitution symbols {z,w}, with bounded depth.
func randExpr(rng *rand.Rand, depth int, allowSubst bool) *Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return Leaf("a")
		case 1:
			return Leaf("b")
		case 2:
			return Var("x")
		default:
			return Eps()
		}
	}
	n := 8
	if allowSubst {
		n = 10
	}
	switch rng.Intn(n) {
	case 0:
		return Elem("a", randExpr(rng, depth-1, allowSubst))
	case 1:
		return Elem("b", randExpr(rng, depth-1, allowSubst))
	case 2:
		return Cat(randExpr(rng, depth-1, allowSubst), randExpr(rng, depth-1, allowSubst))
	case 3:
		return Alt(randExpr(rng, depth-1, allowSubst), randExpr(rng, depth-1, allowSubst))
	case 4:
		return Star(randExpr(rng, depth-1, allowSubst))
	case 5, 6, 7:
		return randExpr(rng, depth-1, allowSubst)
	case 8:
		z := "z"
		if rng.Intn(2) == 0 {
			z = "w"
		}
		if rng.Intn(2) == 0 {
			return Subst("a", z)
		}
		return Subst("b", z)
	default:
		z := "z"
		if rng.Intn(2) == 0 {
			z = "w"
		}
		if rng.Intn(2) == 0 {
			return VClose(randExpr(rng, depth-1, true), z)
		}
		return Embed(randExpr(rng, depth-1, true), z, randExpr(rng, depth-1, true))
	}
}

// TestCompileAgainstOracleRandom fuzzes the Lemma 1 compiler against the
// enumerative semantics on randomly generated expressions: every
// enumerated member must be accepted, and on plain hedges the automaton
// must agree exactly with the bounded oracle.
func TestCompileAgainstOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	const maxNodes = 4
	universe := allHedges([]string{"a", "b"}, []string{"x"}, []string{"z", "w"}, maxNodes)
	for trial := 0; trial < 120; trial++ {
		e := randExpr(rng, 3, true)
		names := ha.NewNames()
		nha, err := Compile(e, names)
		if err != nil {
			t.Fatalf("trial %d: Compile(%s): %v", trial, e, err)
		}
		members := Enumerate(e, maxNodes)
		memberSet := map[string]bool{}
		for _, h := range members {
			memberSet[h.String()] = true
			if !nha.Accepts(h) {
				t.Fatalf("trial %d: %s rejects member %q", trial, e, h)
			}
		}
		for _, h := range universe {
			if h.HasSubst() {
				if memberSet[h.String()] && !nha.Accepts(h) {
					t.Fatalf("trial %d: %s rejects subst member %q", trial, e, h)
				}
				continue
			}
			if nha.Accepts(h) != memberSet[h.String()] {
				t.Fatalf("trial %d: %s disagrees with oracle on plain %q (automaton=%v)",
					trial, e, h, nha.Accepts(h))
			}
		}
	}
}
