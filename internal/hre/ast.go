// Package hre implements hedge regular expressions (Section 4 of the
// paper, Definitions 9–12): regular expressions generating hedges, with two
// sets of concatenation/closure operators — horizontal (sequence
// concatenation and Kleene star) and vertical (embedding at substitution
// symbols ∘z and the vertical closure e^z).
//
// The package provides an AST with parser and printer, a bounded
// enumerative semantics used as a test oracle, the compilation of hedge
// regular expressions to non-deterministic hedge automata (Lemma 1, all ten
// cases), and the reverse conversion from hedge automata to hedge regular
// expressions (Lemma 2).
//
// Concrete syntax (whitespace- or comma-separated concatenation):
//
//	e := '$'NAME            — variable leaf x ∈ X
//	   | NAME               — element a⟨ε⟩
//	   | NAME '<' e '>'     — element a⟨e⟩
//	   | NAME '<~' NAME '>' — substitution target a⟨z⟩
//	   | e e | e ',' e      — horizontal concatenation
//	   | e '|' e            — alternation
//	   | e '*' | e '+' | e '?'
//	   | e '^' NAME         — vertical closure e^z
//	   | e '%' NAME e       — embedding e₁ ∘z e₂
//	   | '(' e ')' | '()'   — grouping, ε
//
// The paper's example a⟨z⟩*^z (all hedges over symbol a, with substitution
// symbols z) is written "a<~z>*^z".
package hre

import "strings"

// Kind discriminates HRE nodes.
type Kind int

// HRE node kinds, covering the ten forms of Definition 11.
const (
	KEmpty  Kind = iota // ∅
	KEps                // ε
	KVar                // x ∈ X
	KElem               // a⟨e⟩ (a⟨ε⟩ when Sub is ε)
	KCat                // e₁e₂
	KAlt                // e₁|e₂
	KStar               // e*
	KSubst              // a⟨z⟩
	KEmbed              // e₁ ∘z e₂
	KVClose             // e^z
	KAny                // '.' — any hedge over the alphabet known at compile time
)

// Expr is a hedge-regular-expression node. Expressions are immutable after
// construction.
type Expr struct {
	Kind Kind
	Name string  // KVar: variable; KElem/KSubst: element label
	Z    string  // KSubst/KEmbed/KVClose: substitution symbol
	Subs []*Expr // children (KElem: 1, KCat/KAlt/KEmbed: 2+, KStar/KVClose: 1)
}

// Constructors.

// Empty returns ∅.
func Empty() *Expr { return &Expr{Kind: KEmpty} }

// Eps returns ε.
func Eps() *Expr { return &Expr{Kind: KEps} }

// Var returns the variable expression x.
func Var(name string) *Expr { return &Expr{Kind: KVar, Name: name} }

// Any returns the '.' expression: any hedge over the alphabet interned at
// compile time (a closed-world convenience; it desugars to AnyHedge).
func Any() *Expr { return &Expr{Kind: KAny} }

// Elem returns a⟨e⟩.
func Elem(name string, sub *Expr) *Expr {
	return &Expr{Kind: KElem, Name: name, Subs: []*Expr{sub}}
}

// Leaf returns a⟨ε⟩.
func Leaf(name string) *Expr { return Elem(name, Eps()) }

// Subst returns a⟨z⟩, the substitution target.
func Subst(name, z string) *Expr { return &Expr{Kind: KSubst, Name: name, Z: z} }

// Cat concatenates horizontally (ε when empty).
func Cat(subs ...*Expr) *Expr {
	switch len(subs) {
	case 0:
		return Eps()
	case 1:
		return subs[0]
	}
	return &Expr{Kind: KCat, Subs: subs}
}

// Alt alternates (∅ when empty).
func Alt(subs ...*Expr) *Expr {
	switch len(subs) {
	case 0:
		return Empty()
	case 1:
		return subs[0]
	}
	return &Expr{Kind: KAlt, Subs: subs}
}

// Star returns e*.
func Star(e *Expr) *Expr { return &Expr{Kind: KStar, Subs: []*Expr{e}} }

// Plus returns ee*.
func Plus(e *Expr) *Expr { return Cat(e, Star(e)) }

// Opt returns e|ε.
func Opt(e *Expr) *Expr { return Alt(e, Eps()) }

// Embed returns e₁ ∘z e₂ (replace every z in hedges of e₂ by hedges of e₁).
func Embed(e1 *Expr, z string, e2 *Expr) *Expr {
	return &Expr{Kind: KEmbed, Z: z, Subs: []*Expr{e1, e2}}
}

// VClose returns e^z, the vertical closure at z.
func VClose(e *Expr, z string) *Expr {
	return &Expr{Kind: KVClose, Z: z, Subs: []*Expr{e}}
}

// AnyHedge returns an expression generating every hedge over the given
// symbols and variables: (a₁⟨z⟩|…|aₙ⟨z⟩|x₁|…|xₘ)*^z for a fresh z. This is
// the "no condition" building block of pointed hedge representations (a
// path expression is a PHR whose sibling expressions generate all hedges).
func AnyHedge(syms, vars []string) *Expr {
	const z = AnySubst
	subs := make([]*Expr, 0, len(syms)+len(vars))
	for _, a := range syms {
		subs = append(subs, Subst(a, z))
	}
	for _, x := range vars {
		subs = append(subs, Var(x))
	}
	if len(subs) == 0 {
		return Eps()
	}
	return VClose(Star(Alt(subs...)), z)
}

// String renders the expression in the package's concrete syntax.
func (e *Expr) String() string {
	var b strings.Builder
	e.render(&b, 0)
	return b.String()
}

// precedence: 0 alt, 1 embed, 2 cat, 3 postfix/atom
func (e *Expr) render(b *strings.Builder, prec int) {
	switch e.Kind {
	case KEmpty:
		b.WriteString("[]")
	case KEps:
		b.WriteString("()")
	case KVar:
		b.WriteByte('$')
		b.WriteString(e.Name)
	case KElem:
		b.WriteString(e.Name)
		if e.Subs[0].Kind != KEps {
			b.WriteByte('<')
			e.Subs[0].render(b, 0)
			b.WriteByte('>')
		}
	case KSubst:
		b.WriteString(e.Name)
		b.WriteString("<~")
		b.WriteString(e.Z)
		b.WriteByte('>')
	case KCat:
		if prec > 2 {
			b.WriteByte('(')
		}
		for i, s := range e.Subs {
			if i > 0 {
				b.WriteByte(' ')
			}
			s.render(b, 3)
		}
		if prec > 2 {
			b.WriteByte(')')
		}
	case KAlt:
		if prec > 0 {
			b.WriteByte('(')
		}
		for i, s := range e.Subs {
			if i > 0 {
				b.WriteString(" | ")
			}
			s.render(b, 1)
		}
		if prec > 0 {
			b.WriteByte(')')
		}
	case KStar:
		e.Subs[0].render(b, 3)
		b.WriteByte('*')
	case KEmbed:
		if prec > 1 {
			b.WriteByte('(')
		}
		e.Subs[0].render(b, 2)
		b.WriteString(" %")
		b.WriteString(e.Z)
		b.WriteByte(' ')
		e.Subs[1].render(b, 2)
		if prec > 1 {
			b.WriteByte(')')
		}
	case KVClose:
		e.Subs[0].render(b, 3)
		b.WriteByte('^')
		b.WriteString(e.Z)
	case KAny:
		b.WriteByte('.')
	}
}

// Walk visits every node of the expression tree in pre-order.
func (e *Expr) Walk(fn func(*Expr)) {
	fn(e)
	for _, s := range e.Subs {
		s.Walk(fn)
	}
}

// AnySubst is the reserved substitution symbol '.' desugars through (see
// AnyHedge). The NUL prefix keeps it outside the user-writable namespace.
const AnySubst = "\x00any"

// Names returns the distinct Σ labels, variables, and substitution symbols
// mentioned in the expression. A '.' node mentions AnySubst: desugaring
// routes it through that reserved substitution symbol, so callers that
// pre-intern an expression's alphabet (to pin a generation before building
// automata) see every name Compile will intern.
func (e *Expr) Names() (syms, vars, substs []string) {
	ss, sv, sz := map[string]bool{}, map[string]bool{}, map[string]bool{}
	e.Walk(func(x *Expr) {
		switch x.Kind {
		case KElem, KSubst:
			if !ss[x.Name] {
				ss[x.Name] = true
				syms = append(syms, x.Name)
			}
		case KVar:
			if !sv[x.Name] {
				sv[x.Name] = true
				vars = append(vars, x.Name)
			}
		case KAny:
			if !sz[AnySubst] {
				sz[AnySubst] = true
				substs = append(substs, AnySubst)
			}
		}
		if x.Z != "" && !sz[x.Z] {
			sz[x.Z] = true
			substs = append(substs, x.Z)
		}
	})
	return syms, vars, substs
}
