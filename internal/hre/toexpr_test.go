package hre

import (
	"testing"

	"xpe/internal/ha"
	"xpe/internal/hedge"
)

// roundTrip converts expr → NHA → DHA → expr → NHA and checks that the
// original and reconstructed automata agree on every plain hedge up to
// maxNodes nodes (Theorem 2). Substitution-symbol hedges are excluded: the
// reconstruction introduces fresh substitution symbols of its own.
func roundTrip(t *testing.T, src string, maxNodes int) {
	t.Helper()
	e := MustParse(src)
	names := ha.NewNames()
	orig := MustCompile(e, names)
	det := orig.Determinize()

	back, err := ToExpr(det.DHA)
	if err != nil {
		t.Fatalf("ToExpr(%q): %v", src, err)
	}
	names2 := ha.NewNames()
	recon, err := Compile(back, names2)
	if err != nil {
		t.Fatalf("re-Compile of %q: %v", src, err)
	}
	syms, vars, _ := e.Names()
	for _, h := range allHedges(syms, vars, nil, maxNodes) {
		if h.HasSubst() {
			continue
		}
		want := orig.Accepts(h)
		got := recon.Accepts(h)
		if got != want {
			t.Fatalf("%q: round trip changed membership of %q: orig=%v recon=%v\nreconstructed: %s",
				src, h, want, got, back)
		}
	}
}

func TestLemma2RoundTrip(t *testing.T) {
	cases := []struct {
		src      string
		maxNodes int
	}{
		{"$x", 3},
		{"a", 3},
		{"a*", 4},
		{"a b", 4},
		{"a | $x", 3},
		{"a<$x>", 4},
		{"a<b*>", 4},
		{"a<$x>*", 4},
		{"(a | b)*", 4},
	}
	for _, c := range cases {
		roundTrip(t, c.src, c.maxNodes)
	}
}

func TestLemma2RecursiveLanguage(t *testing.T) {
	// A genuinely recursive language — all hedges over {a} — exercises the
	// three-equation elimination (non-empty Q₁ recursion).
	roundTrip(t, "a<~z>*^z", 5)
}

func TestLemma2OnBuiltAutomaton(t *testing.T) {
	// M₀ from Section 3, built by hand rather than compiled.
	names := ha.NewNames()
	names.Syms.Intern("d")
	names.Syms.Intern("p")
	names.Vars.Intern("x")
	names.Vars.Intern("y")
	b := ha.NewBuilder(names)
	b.Iota("x", "qx")
	b.Iota("y", "qy")
	b.MustRule("d", "qd", "qp1, qp2*")
	b.MustRule("p", "qp1", "qx")
	b.MustRule("p", "qp2", "qy")
	b.MustFinal("qd*")
	m0 := b.Build()
	det := m0.Determinize()

	back, err := ToExpr(det.DHA)
	if err != nil {
		t.Fatal(err)
	}
	names2 := ha.NewNames()
	recon, err := Compile(back, names2)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range allHedges([]string{"d", "p"}, []string{"x", "y"}, nil, 4) {
		if m0.Accepts(h) != recon.Accepts(h) {
			t.Fatalf("Lemma 2 round trip of M0 changed membership of %q", h)
		}
	}
}

func TestToExprWitnessInLanguage(t *testing.T) {
	// Sanity: the reconstructed expression of a non-empty automaton is
	// non-empty and its small members are accepted by the original.
	e := MustParse("a<b c*>")
	names := ha.NewNames()
	orig := MustCompile(e, names)
	det := orig.Determinize()
	back, err := ToExpr(det.DHA)
	if err != nil {
		t.Fatal(err)
	}
	members := Enumerate(back, 5)
	if len(members) == 0 {
		t.Fatal("reconstructed expression has no small members")
	}
	for _, h := range members {
		if h.HasSubst() {
			continue
		}
		if !orig.Accepts(h) {
			t.Fatalf("reconstructed member %q not in original language", h)
		}
	}
	_ = hedge.Hedge(nil)
}
