package hre

import "testing"

// FuzzParse asserts the HRE parser never panics and renders re-parseable
// text on success.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"a<~z>*^z",
		"a<$x | b> %z c<~z>",
		"(a | b)* c+ d?",
		". a<.>",
		"a<~",
		"%z",
		"a^",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		again, err := Parse(e.String())
		if err != nil {
			t.Fatalf("rendering of %q does not re-parse: %q: %v", src, e.String(), err)
		}
		if again.String() != e.String() {
			t.Fatalf("unstable rendering for %q: %q vs %q", src, e.String(), again.String())
		}
	})
}
