// Package sfa implements string finite automata over dense int alphabets:
// non-deterministic automata with ε-moves, deterministic automata, subset
// construction, minimization, boolean operations, reversal, and decision
// procedures (emptiness, membership, equivalence).
//
// Every regular string language in the reproduction is represented here: the
// horizontal languages α⁻¹(a,q) of hedge automata, the final-state-sequence
// sets F (Definitions 3 and 6 of the paper), the regular set L over
// (Q*/≡)×Σ×(Q*/≡) of Theorem 4, and the string automaton N evaluated by
// Algorithm 1.
package sfa

import (
	"fmt"
	"sort"
)

// NFA is a non-deterministic finite automaton with ε-transitions over the
// alphabet {0, …, NumSymbols-1}. States are {0, …, NumStates-1}. The zero
// value is an automaton with no states, accepting nothing.
type NFA struct {
	NumStates  int
	NumSymbols int
	Start      []int           // set of start states
	Accept     []bool          // indexed by state
	Trans      []map[int][]int // state → symbol → successor states
	Eps        [][]int         // state → ε-successor states
}

// NewNFA returns an empty NFA over an alphabet of the given size.
func NewNFA(numSymbols int) *NFA {
	return &NFA{NumSymbols: numSymbols}
}

// AddState adds a fresh state and returns its id.
func (n *NFA) AddState(accept bool) int {
	id := n.NumStates
	n.NumStates++
	n.Accept = append(n.Accept, accept)
	n.Trans = append(n.Trans, nil)
	n.Eps = append(n.Eps, nil)
	return id
}

// AddTrans adds a transition from→to on symbol sym. It grows the alphabet if
// sym is outside the current range.
func (n *NFA) AddTrans(from, sym, to int) {
	if sym >= n.NumSymbols {
		n.NumSymbols = sym + 1
	}
	if n.Trans[from] == nil {
		n.Trans[from] = make(map[int][]int)
	}
	n.Trans[from][sym] = append(n.Trans[from][sym], to)
}

// AddEps adds an ε-transition from→to.
func (n *NFA) AddEps(from, to int) {
	n.Eps[from] = append(n.Eps[from], to)
}

// MarkStart adds s to the start set.
func (n *NFA) MarkStart(s int) { n.Start = append(n.Start, s) }

// GrowAlphabet ensures the alphabet has at least numSymbols symbols.
func (n *NFA) GrowAlphabet(numSymbols int) {
	if numSymbols > n.NumSymbols {
		n.NumSymbols = numSymbols
	}
}

// EpsClosure returns the ε-closure of the given state set, sorted and
// deduplicated.
func (n *NFA) EpsClosure(states []int) []int {
	seen := make(map[int]bool, len(states))
	stack := make([]int, 0, len(states))
	for _, s := range states {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.Eps[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// stepSet returns the ε-closed successor set of states on sym.
func (n *NFA) stepSet(states []int, sym int) []int {
	var next []int
	for _, s := range states {
		if ts := n.Trans[s][sym]; len(ts) > 0 {
			next = append(next, ts...)
		}
	}
	if len(next) == 0 {
		return nil
	}
	return n.EpsClosure(next)
}

// Accepts reports whether the NFA accepts the input word.
func (n *NFA) Accepts(word []int) bool {
	cur := n.EpsClosure(n.Start)
	for _, sym := range word {
		if sym < 0 || sym >= n.NumSymbols {
			return false
		}
		cur = n.stepSet(cur, sym)
		if len(cur) == 0 {
			return false
		}
	}
	for _, s := range cur {
		if n.Accept[s] {
			return true
		}
	}
	return false
}

// AcceptsEmpty reports whether ε is in the language.
func (n *NFA) AcceptsEmpty() bool { return n.Accepts(nil) }

// IsEmpty reports whether the language is empty.
func (n *NFA) IsEmpty() bool {
	seen := make([]bool, n.NumStates)
	stack := append([]int(nil), n.Start...)
	for _, s := range stack {
		seen[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.Accept[s] {
			return false
		}
		push := func(t int) {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
		for _, t := range n.Eps[s] {
			push(t)
		}
		for _, ts := range n.Trans[s] {
			for _, t := range ts {
				push(t)
			}
		}
	}
	return true
}

// Reverse returns an NFA for the mirror image of the language: every
// transition is reversed, start and accept sets are swapped. This realizes
// the N′ reverse simulation of Theorem 5 (Figure 3) at the string level.
func (n *NFA) Reverse() *NFA {
	r := NewNFA(n.NumSymbols)
	for i := 0; i < n.NumStates; i++ {
		r.AddState(false)
	}
	for s := 0; s < n.NumStates; s++ {
		for sym, ts := range n.Trans[s] {
			for _, t := range ts {
				r.AddTrans(t, sym, s)
			}
		}
		for _, t := range n.Eps[s] {
			r.AddEps(t, s)
		}
		if n.Accept[s] {
			r.MarkStart(s)
		}
	}
	for _, s := range n.Start {
		r.Accept[s] = true
	}
	return r
}

// Clone returns a deep copy.
func (n *NFA) Clone() *NFA {
	c := NewNFA(n.NumSymbols)
	c.NumStates = n.NumStates
	c.Start = append([]int(nil), n.Start...)
	c.Accept = append([]bool(nil), n.Accept...)
	c.Trans = make([]map[int][]int, n.NumStates)
	c.Eps = make([][]int, n.NumStates)
	for s := 0; s < n.NumStates; s++ {
		if n.Trans[s] != nil {
			m := make(map[int][]int, len(n.Trans[s]))
			for sym, ts := range n.Trans[s] {
				m[sym] = append([]int(nil), ts...)
			}
			c.Trans[s] = m
		}
		c.Eps[s] = append([]int(nil), n.Eps[s]...)
	}
	return c
}

// importInto copies the states and transitions of src into dst and returns
// the state-id offset; start/accept markings are copied as plain flags into
// the new ids (start states of src are NOT starts of dst).
func importInto(dst, src *NFA) (offset int, starts []int, accepts []int) {
	dst.GrowAlphabet(src.NumSymbols)
	offset = dst.NumStates
	for i := 0; i < src.NumStates; i++ {
		dst.AddState(false)
	}
	for s := 0; s < src.NumStates; s++ {
		for sym, ts := range src.Trans[s] {
			for _, t := range ts {
				dst.AddTrans(offset+s, sym, offset+t)
			}
		}
		for _, t := range src.Eps[s] {
			dst.AddEps(offset+s, offset+t)
		}
		if src.Accept[s] {
			accepts = append(accepts, offset+s)
		}
	}
	for _, s := range src.Start {
		starts = append(starts, offset+s)
	}
	return offset, starts, accepts
}

// Union returns an NFA accepting L(a) ∪ L(b).
func Union(a, b *NFA) *NFA {
	u := NewNFA(0)
	_, sa, aa := importInto(u, a)
	_, sb, ab := importInto(u, b)
	u.Start = append(append([]int(nil), sa...), sb...)
	for _, s := range append(aa, ab...) {
		u.Accept[s] = true
	}
	return u
}

// Concat returns an NFA accepting L(a)·L(b).
func Concat(a, b *NFA) *NFA {
	c := NewNFA(0)
	_, sa, aa := importInto(c, a)
	_, sb, ab := importInto(c, b)
	c.Start = sa
	for _, s := range aa {
		for _, t := range sb {
			c.AddEps(s, t)
		}
	}
	for _, s := range ab {
		c.Accept[s] = true
	}
	return c
}

// Star returns an NFA accepting L(a)*.
func Star(a *NFA) *NFA {
	s := NewNFA(0)
	_, sa, aa := importInto(s, a)
	pivot := s.AddState(true)
	s.Start = []int{pivot}
	for _, t := range sa {
		s.AddEps(pivot, t)
	}
	for _, t := range aa {
		s.AddEps(t, pivot)
	}
	return s
}

// EmptyLang returns an NFA accepting nothing, over the given alphabet.
func EmptyLang(numSymbols int) *NFA {
	return NewNFA(numSymbols)
}

// EpsLang returns an NFA accepting exactly ε.
func EpsLang(numSymbols int) *NFA {
	n := NewNFA(numSymbols)
	s := n.AddState(true)
	n.MarkStart(s)
	return n
}

// SymbolLang returns an NFA accepting exactly the one-symbol word {sym}.
func SymbolLang(numSymbols, sym int) *NFA {
	n := NewNFA(numSymbols)
	s0 := n.AddState(false)
	s1 := n.AddState(true)
	n.MarkStart(s0)
	n.AddTrans(s0, sym, s1)
	return n
}

// WordLang returns an NFA accepting exactly the given word.
func WordLang(numSymbols int, word []int) *NFA {
	n := NewNFA(numSymbols)
	prev := n.AddState(len(word) == 0)
	n.MarkStart(prev)
	for i, sym := range word {
		next := n.AddState(i == len(word)-1)
		n.AddTrans(prev, sym, next)
		prev = next
	}
	return n
}

// AllLang returns an NFA accepting every word over {0,…,numSymbols-1}.
func AllLang(numSymbols int) *NFA {
	n := NewNFA(numSymbols)
	s := n.AddState(true)
	n.MarkStart(s)
	for sym := 0; sym < numSymbols; sym++ {
		n.AddTrans(s, sym, s)
	}
	return n
}

// SymbolSetLang returns an NFA accepting the length-1 words over the given
// symbol set.
func SymbolSetLang(numSymbols int, syms []int) *NFA {
	n := NewNFA(numSymbols)
	s0 := n.AddState(false)
	s1 := n.AddState(true)
	n.MarkStart(s0)
	for _, sym := range syms {
		n.AddTrans(s0, sym, s1)
	}
	return n
}

// MapSymbols returns an NFA in which every transition on symbol s is
// replaced by transitions on every symbol in f(s); f returning an empty
// slice deletes the transition. newNumSymbols is the alphabet size of the
// result. This realizes homomorphic (and inverse-homomorphic, with the
// appropriate f) images of regular languages, used throughout Section 8.
func (n *NFA) MapSymbols(newNumSymbols int, f func(sym int) []int) *NFA {
	r := NewNFA(newNumSymbols)
	for i := 0; i < n.NumStates; i++ {
		r.AddState(n.Accept[i])
	}
	r.Start = append([]int(nil), n.Start...)
	for s := 0; s < n.NumStates; s++ {
		for sym, ts := range n.Trans[s] {
			images := f(sym)
			for _, t := range ts {
				for _, img := range images {
					r.AddTrans(s, img, t)
				}
			}
		}
		for _, t := range n.Eps[s] {
			r.AddEps(s, t)
		}
	}
	return r
}

// EraseSymbols returns an NFA in which every transition on a symbol for
// which erase(sym) is true becomes an ε-transition. This is the erasing
// homomorphism used by the delete-query schema transformation.
func (n *NFA) EraseSymbols(erase func(sym int) bool) *NFA {
	r := NewNFA(n.NumSymbols)
	for i := 0; i < n.NumStates; i++ {
		r.AddState(n.Accept[i])
	}
	r.Start = append([]int(nil), n.Start...)
	for s := 0; s < n.NumStates; s++ {
		for sym, ts := range n.Trans[s] {
			for _, t := range ts {
				if erase(sym) {
					r.AddEps(s, t)
				} else {
					r.AddTrans(s, sym, t)
				}
			}
		}
		for _, t := range n.Eps[s] {
			r.AddEps(s, t)
		}
	}
	return r
}

// String renders a compact description for debugging.
func (n *NFA) String() string {
	return fmt.Sprintf("NFA{states:%d syms:%d starts:%v}", n.NumStates, n.NumSymbols, n.Start)
}
