package sfa

import (
	"fmt"
	"sort"
)

// Dead is the implicit reject state of a DFA: Step returns Dead when no
// transition is defined, and every transition out of Dead stays in Dead.
const Dead = -1

// DFA is a deterministic finite automaton over the alphabet
// {0, …, NumSymbols-1}. Transitions may be partial; missing entries go to
// the implicit Dead state.
type DFA struct {
	NumStates  int
	NumSymbols int
	Start      int
	Accept     []bool
	Trans      []map[int]int // state → symbol → state
}

// NewDFA returns an empty DFA (Start must be set after adding states).
func NewDFA(numSymbols int) *DFA {
	return &DFA{NumSymbols: numSymbols, Start: Dead}
}

// AddState adds a fresh state and returns its id.
func (d *DFA) AddState(accept bool) int {
	id := d.NumStates
	d.NumStates++
	d.Accept = append(d.Accept, accept)
	d.Trans = append(d.Trans, nil)
	return id
}

// SetTrans sets the transition from→to on sym, growing the alphabet if
// needed.
func (d *DFA) SetTrans(from, sym, to int) {
	if sym >= d.NumSymbols {
		d.NumSymbols = sym + 1
	}
	if d.Trans[from] == nil {
		d.Trans[from] = make(map[int]int)
	}
	d.Trans[from][sym] = to
}

// Step returns the successor of state on sym (Dead-absorbing).
func (d *DFA) Step(state, sym int) int {
	if state == Dead {
		return Dead
	}
	if t, ok := d.Trans[state][sym]; ok {
		return t
	}
	return Dead
}

// Run returns the state reached from Start on word (possibly Dead).
func (d *DFA) Run(word []int) int {
	cur := d.Start
	for _, sym := range word {
		cur = d.Step(cur, sym)
		if cur == Dead {
			return Dead
		}
	}
	return cur
}

// Accepting reports whether state is accepting (Dead never is).
func (d *DFA) Accepting(state int) bool {
	return state != Dead && d.Accept[state]
}

// Accepts reports whether the DFA accepts word.
func (d *DFA) Accepts(word []int) bool { return d.Accepting(d.Run(word)) }

// Complete returns an equivalent total DFA: every state has a transition on
// every symbol in {0,…,NumSymbols-1}; a fresh dead state is added if needed.
func (d *DFA) Complete() *DFA {
	c := NewDFA(d.NumSymbols)
	for i := 0; i < d.NumStates; i++ {
		c.AddState(d.Accept[i])
	}
	c.Start = d.Start
	dead := Dead
	needDead := d.Start == Dead
	for s := 0; s < d.NumStates; s++ {
		for sym := 0; sym < d.NumSymbols; sym++ {
			t := d.Step(s, sym)
			if t == Dead {
				needDead = true
			}
		}
	}
	if needDead {
		dead = c.AddState(false)
		for sym := 0; sym < d.NumSymbols; sym++ {
			c.SetTrans(dead, sym, dead)
		}
		if c.Start == Dead {
			c.Start = dead
		}
	}
	for s := 0; s < d.NumStates; s++ {
		for sym := 0; sym < d.NumSymbols; sym++ {
			t := d.Step(s, sym)
			if t == Dead {
				t = dead
			}
			c.SetTrans(s, sym, t)
		}
	}
	return c
}

// Complement returns a DFA accepting the complement language over the same
// alphabet.
func (d *DFA) Complement() *DFA {
	c := d.Complete()
	for i := range c.Accept {
		c.Accept[i] = !c.Accept[i]
	}
	return c
}

// IsEmpty reports whether the language is empty.
func (d *DFA) IsEmpty() bool {
	if d.Start == Dead {
		return true
	}
	seen := make([]bool, d.NumStates)
	stack := []int{d.Start}
	seen[d.Start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.Accept[s] {
			return false
		}
		for _, t := range d.Trans[s] {
			if t != Dead && !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return true
}

// SomeWord returns a word in the language and true, or nil and false when
// the language is empty.
func (d *DFA) SomeWord() ([]int, bool) {
	if d.Start == Dead {
		return nil, false
	}
	type pred struct {
		state, sym int
	}
	prev := make(map[int]pred)
	seen := make([]bool, d.NumStates)
	queue := []int{d.Start}
	seen[d.Start] = true
	goal := Dead
	for len(queue) > 0 && goal == Dead {
		s := queue[0]
		queue = queue[1:]
		if d.Accept[s] {
			goal = s
			break
		}
		syms := make([]int, 0, len(d.Trans[s]))
		for sym := range d.Trans[s] {
			syms = append(syms, sym)
		}
		sort.Ints(syms)
		for _, sym := range syms {
			t := d.Trans[s][sym]
			if t != Dead && !seen[t] {
				seen[t] = true
				prev[t] = pred{s, sym}
				queue = append(queue, t)
			}
		}
	}
	if goal == Dead {
		return nil, false
	}
	var rev []int
	for s := goal; s != d.Start; {
		p := prev[s]
		rev = append(rev, p.sym)
		s = p.state
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// pairOp builds the product automaton of two completed DFAs with accepting
// condition acc.
func pairOp(a, b *DFA, acc func(x, y bool) bool) *DFA {
	syms := a.NumSymbols
	if b.NumSymbols > syms {
		syms = b.NumSymbols
	}
	ac := a.Complete()
	bc := b.Complete()
	ac.NumSymbols, bc.NumSymbols = syms, syms
	ac = ac.Complete() // re-complete after growing the alphabet
	bc = bc.Complete()
	p := NewDFA(syms)
	type pair struct{ x, y int }
	ids := map[pair]int{}
	var order []pair
	get := func(pr pair) int {
		if id, ok := ids[pr]; ok {
			return id
		}
		id := p.AddState(acc(ac.Accept[pr.x], bc.Accept[pr.y]))
		ids[pr] = id
		order = append(order, pr)
		return id
	}
	start := pair{ac.Start, bc.Start}
	p.Start = get(start)
	for i := 0; i < len(order); i++ {
		pr := order[i]
		from := ids[pr]
		for sym := 0; sym < syms; sym++ {
			nx := pair{ac.Step(pr.x, sym), bc.Step(pr.y, sym)}
			p.SetTrans(from, sym, get(nx))
		}
	}
	return p
}

// IntersectDFA returns a DFA for L(a) ∩ L(b).
func IntersectDFA(a, b *DFA) *DFA {
	return pairOp(a, b, func(x, y bool) bool { return x && y })
}

// UnionDFA returns a DFA for L(a) ∪ L(b).
func UnionDFA(a, b *DFA) *DFA {
	return pairOp(a, b, func(x, y bool) bool { return x || y })
}

// DifferenceDFA returns a DFA for L(a) \ L(b).
func DifferenceDFA(a, b *DFA) *DFA {
	return pairOp(a, b, func(x, y bool) bool { return x && !y })
}

// EquivalentDFA reports whether a and b accept the same language (over the
// union of their alphabets).
func EquivalentDFA(a, b *DFA) bool {
	return DifferenceDFA(a, b).IsEmpty() && DifferenceDFA(b, a).IsEmpty()
}

// ToNFA converts the DFA to an equivalent NFA.
func (d *DFA) ToNFA() *NFA {
	n := NewNFA(d.NumSymbols)
	for i := 0; i < d.NumStates; i++ {
		n.AddState(d.Accept[i])
	}
	if d.Start != Dead {
		n.MarkStart(d.Start)
	}
	for s := 0; s < d.NumStates; s++ {
		for sym, t := range d.Trans[s] {
			if t != Dead {
				n.AddTrans(s, sym, t)
			}
		}
	}
	return n
}

// Reverse returns an NFA for the mirror image of the language.
func (d *DFA) Reverse() *NFA { return d.ToNFA().Reverse() }

// trimReachable removes states unreachable from Start.
func (d *DFA) trimReachable() *DFA {
	if d.Start == Dead {
		return NewDFA(d.NumSymbols)
	}
	remap := make([]int, d.NumStates)
	for i := range remap {
		remap[i] = Dead
	}
	t := NewDFA(d.NumSymbols)
	var order []int
	remap[d.Start] = t.AddState(d.Accept[d.Start])
	order = append(order, d.Start)
	for i := 0; i < len(order); i++ {
		s := order[i]
		for _, to := range d.Trans[s] {
			if to != Dead && remap[to] == Dead {
				remap[to] = t.AddState(d.Accept[to])
				order = append(order, to)
			}
		}
	}
	t.Start = remap[d.Start]
	for _, s := range order {
		for sym, to := range d.Trans[s] {
			if to != Dead {
				t.SetTrans(remap[s], sym, remap[to])
			}
		}
	}
	return t
}

// Minimize returns the minimal total DFA for the language (Moore partition
// refinement). The result is complete; its states are the Myhill–Nerode
// classes restricted to reachable states, which is how the right-invariant
// equivalences ≡ of Theorem 4 are realized.
func (d *DFA) Minimize() *DFA {
	c := d.trimReachable().Complete()
	if c.NumStates == 0 {
		// Language is empty over this alphabet: single dead state.
		m := NewDFA(d.NumSymbols)
		s := m.AddState(false)
		m.Start = s
		for sym := 0; sym < m.NumSymbols; sym++ {
			m.SetTrans(s, sym, s)
		}
		return m
	}
	// Initial partition: accepting vs non-accepting.
	class := make([]int, c.NumStates)
	numClasses := 1
	hasAcc, hasRej := false, false
	for _, a := range c.Accept {
		if a {
			hasAcc = true
		} else {
			hasRej = true
		}
	}
	if hasAcc && hasRej {
		numClasses = 2
		for s, a := range c.Accept {
			if a {
				class[s] = 1
			}
		}
	}
	for {
		// Signature of a state: (class, class of successor per symbol).
		sig := make(map[string]int)
		next := make([]int, c.NumStates)
		n := 0
		buf := make([]byte, 0, (c.NumSymbols+1)*4)
		for s := 0; s < c.NumStates; s++ {
			buf = buf[:0]
			enc := func(v int) {
				buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			enc(class[s])
			for sym := 0; sym < c.NumSymbols; sym++ {
				enc(class[c.Trans[s][sym]])
			}
			k := string(buf)
			id, ok := sig[k]
			if !ok {
				id = n
				n++
				sig[k] = id
			}
			next[s] = id
		}
		if n == numClasses {
			break
		}
		class, numClasses = next, n
	}
	m := NewDFA(c.NumSymbols)
	for i := 0; i < numClasses; i++ {
		m.AddState(false)
	}
	for s := 0; s < c.NumStates; s++ {
		if c.Accept[s] {
			m.Accept[class[s]] = true
		}
		for sym := 0; sym < c.NumSymbols; sym++ {
			m.SetTrans(class[s], sym, class[c.Trans[s][sym]])
		}
	}
	m.Start = class[c.Start]
	return m
}

// Clone returns a deep copy.
func (d *DFA) Clone() *DFA {
	c := NewDFA(d.NumSymbols)
	c.NumStates = d.NumStates
	c.Start = d.Start
	c.Accept = append([]bool(nil), d.Accept...)
	c.Trans = make([]map[int]int, d.NumStates)
	for s := 0; s < d.NumStates; s++ {
		if d.Trans[s] != nil {
			m := make(map[int]int, len(d.Trans[s]))
			for sym, t := range d.Trans[s] {
				m[sym] = t
			}
			c.Trans[s] = m
		}
	}
	return c
}

// String renders a compact description for debugging.
func (d *DFA) String() string {
	return fmt.Sprintf("DFA{states:%d syms:%d start:%d}", d.NumStates, d.NumSymbols, d.Start)
}
