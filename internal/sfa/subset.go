package sfa

// Determinize converts the NFA to a DFA by subset construction, exploring
// only reachable subsets. Transitions of the result are partial: the empty
// subset is represented by the implicit Dead state.
func (n *NFA) Determinize() *DFA {
	d := NewDFA(n.NumSymbols)
	ids := map[string]int{}
	var sets [][]int
	key := func(set []int) string {
		b := make([]byte, 0, len(set)*4)
		for _, s := range set {
			b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
		}
		return string(b)
	}
	accepting := func(set []int) bool {
		for _, s := range set {
			if n.Accept[s] {
				return true
			}
		}
		return false
	}
	get := func(set []int) int {
		k := key(set)
		if id, ok := ids[k]; ok {
			return id
		}
		id := d.AddState(accepting(set))
		ids[k] = id
		sets = append(sets, set)
		return id
	}
	start := n.EpsClosure(n.Start)
	if len(start) == 0 {
		// No start states: empty language, keep Start == Dead.
		return d
	}
	d.Start = get(start)
	for i := 0; i < len(sets); i++ {
		set := sets[i]
		from := i
		// Collect the symbols on which any member moves.
		syms := map[int]bool{}
		for _, s := range set {
			for sym := range n.Trans[s] {
				syms[sym] = true
			}
		}
		for sym := range syms {
			next := n.stepSet(set, sym)
			if len(next) == 0 {
				continue
			}
			d.SetTrans(from, sym, get(next))
		}
	}
	return d
}

// MinimalDFA determinizes and minimizes in one call.
func (n *NFA) MinimalDFA() *DFA { return n.Determinize().Minimize() }

// IntersectNFA returns an NFA for L(a) ∩ L(b) via the product of their
// determinizations.
func IntersectNFA(a, b *NFA) *NFA {
	return IntersectDFA(a.Determinize(), b.Determinize()).ToNFA()
}

// DifferenceNFA returns an NFA for L(a) \ L(b).
func DifferenceNFA(a, b *NFA) *NFA {
	return DifferenceDFA(a.Determinize(), b.Determinize()).ToNFA()
}

// EquivalentNFA reports whether two NFAs accept the same language.
func EquivalentNFA(a, b *NFA) bool {
	return EquivalentDFA(a.Determinize(), b.Determinize())
}

// SubsetOfNFA reports whether L(a) ⊆ L(b).
func SubsetOfNFA(a, b *NFA) bool {
	return DifferenceDFA(a.Determinize(), b.Determinize()).IsEmpty()
}
