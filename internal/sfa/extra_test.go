package sfa

import (
	"math/rand"
	"strings"
	"testing"
)

func TestToNFAAndDFAReverse(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := randNFA(rng, 2+rng.Intn(4), 2)
		d := n.Determinize()
		back := d.ToNFA()
		rev := d.Reverse()
		for i := 0; i < 60; i++ {
			w := randWord(rng, 2, 8)
			if d.Accepts(w) != back.Accepts(w) {
				t.Fatalf("ToNFA changed the language on %v", w)
			}
			mirror := make([]int, len(w))
			for j := range w {
				mirror[j] = w[len(w)-1-j]
			}
			if d.Accepts(w) != rev.Accepts(mirror) {
				t.Fatalf("DFA.Reverse wrong on %v", w)
			}
		}
	}
}

func TestSymbolSetLangAndAcceptsEmpty(t *testing.T) {
	l := SymbolSetLang(3, []int{0, 2})
	if !l.Accepts([]int{0}) || !l.Accepts([]int{2}) || l.Accepts([]int{1}) || l.Accepts(nil) {
		t.Fatal("SymbolSetLang wrong")
	}
	if l.AcceptsEmpty() {
		t.Fatal("AcceptsEmpty wrong")
	}
	if !EpsLang(1).AcceptsEmpty() {
		t.Fatal("ε language must accept ε")
	}
}

func TestIntersectAndDifferenceNFA(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 25; trial++ {
		a := randNFA(rng, 2+rng.Intn(3), 2)
		b := randNFA(rng, 2+rng.Intn(3), 2)
		inter := IntersectNFA(a, b)
		diff := DifferenceNFA(a, b)
		for i := 0; i < 50; i++ {
			w := randWord(rng, 2, 7)
			if inter.Accepts(w) != (a.Accepts(w) && b.Accepts(w)) {
				t.Fatalf("IntersectNFA wrong on %v", w)
			}
			if diff.Accepts(w) != (a.Accepts(w) && !b.Accepts(w)) {
				t.Fatalf("DifferenceNFA wrong on %v", w)
			}
		}
	}
}

func TestUsefulSymbols(t *testing.T) {
	// Language 0·1 | 2·deadend: symbol 2 leads nowhere accepting.
	n := NewNFA(3)
	s0 := n.AddState(false)
	s1 := n.AddState(false)
	s2 := n.AddState(true)
	sDead := n.AddState(false)
	n.MarkStart(s0)
	n.AddTrans(s0, 0, s1)
	n.AddTrans(s1, 1, s2)
	n.AddTrans(s0, 2, sDead)
	allowed := []bool{true, true, true}
	useful := n.UsefulSymbols(allowed)
	if !useful[0] || !useful[1] || useful[2] {
		t.Fatalf("useful = %v", useful)
	}
	// Disallowing symbol 1 kills the accepting path, making 0 useless too.
	useful = n.UsefulSymbols([]bool{true, false, true})
	if useful[0] || useful[1] || useful[2] {
		t.Fatalf("useful after restriction = %v", useful)
	}
}

func TestUsefulSymbolsEpsilon(t *testing.T) {
	// ε-transitions participate in reachability.
	n := NewNFA(1)
	s0 := n.AddState(false)
	s1 := n.AddState(false)
	s2 := n.AddState(true)
	n.MarkStart(s0)
	n.AddEps(s0, s1)
	n.AddTrans(s1, 0, s2)
	useful := n.UsefulSymbols([]bool{true})
	if !useful[0] {
		t.Fatal("symbol 0 reachable through ε must be useful")
	}
}

func TestSomeWordDeterministicOrder(t *testing.T) {
	// SomeWord explores symbols in sorted order, so the witness is stable.
	d := NewDFA(2)
	s0 := d.AddState(false)
	s1 := d.AddState(true)
	d.Start = s0
	d.SetTrans(s0, 1, s1)
	d.SetTrans(s0, 0, s1)
	w, ok := d.SomeWord()
	if !ok || len(w) != 1 || w[0] != 0 {
		t.Fatalf("SomeWord = %v", w)
	}
}

func TestStringers(t *testing.T) {
	n := abStar()
	if !strings.Contains(n.String(), "NFA{") {
		t.Fatal("NFA.String")
	}
	d := n.Determinize()
	if !strings.Contains(d.String(), "DFA{") {
		t.Fatal("DFA.String")
	}
}

func TestMinimizeEmptyAndFull(t *testing.T) {
	empty := EmptyLang(2).Determinize().Minimize()
	if !empty.IsEmpty() {
		t.Fatal("minimized empty language should stay empty")
	}
	full := AllLang(2).Determinize().Minimize()
	if full.NumStates != 1 {
		t.Fatalf("minimal universal DFA has %d states", full.NumStates)
	}
}
