package sfa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// ab returns an NFA over {0,1} accepting (01)*.
func abStar() *NFA {
	n := NewNFA(2)
	s0 := n.AddState(true)
	s1 := n.AddState(false)
	n.MarkStart(s0)
	n.AddTrans(s0, 0, s1)
	n.AddTrans(s1, 1, s0)
	return n
}

func TestNFAAccepts(t *testing.T) {
	n := abStar()
	cases := []struct {
		word []int
		want bool
	}{
		{nil, true},
		{[]int{0, 1}, true},
		{[]int{0, 1, 0, 1}, true},
		{[]int{0}, false},
		{[]int{1}, false},
		{[]int{0, 1, 0}, false},
		{[]int{1, 0}, false},
	}
	for _, c := range cases {
		if got := n.Accepts(c.word); got != c.want {
			t.Errorf("Accepts(%v) = %v, want %v", c.word, got, c.want)
		}
	}
}

func TestEpsClosure(t *testing.T) {
	n := NewNFA(1)
	a := n.AddState(false)
	b := n.AddState(false)
	c := n.AddState(true)
	n.AddEps(a, b)
	n.AddEps(b, c)
	got := n.EpsClosure([]int{a})
	if len(got) != 3 || got[0] != a || got[1] != b || got[2] != c {
		t.Fatalf("EpsClosure = %v, want [0 1 2]", got)
	}
}

func TestDeterminizeAgrees(t *testing.T) {
	n := abStar()
	d := n.Determinize()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		w := randWord(rng, 2, 12)
		if n.Accepts(w) != d.Accepts(w) {
			t.Fatalf("NFA/DFA disagree on %v", w)
		}
	}
}

func randWord(rng *rand.Rand, alpha, maxLen int) []int {
	k := rng.Intn(maxLen + 1)
	w := make([]int, k)
	for i := range w {
		w[i] = rng.Intn(alpha)
	}
	return w
}

// randNFA builds a random NFA for differential tests.
func randNFA(rng *rand.Rand, states, alpha int) *NFA {
	n := NewNFA(alpha)
	for i := 0; i < states; i++ {
		n.AddState(rng.Intn(3) == 0)
	}
	n.MarkStart(rng.Intn(states))
	edges := states * 2
	for i := 0; i < edges; i++ {
		n.AddTrans(rng.Intn(states), rng.Intn(alpha), rng.Intn(states))
	}
	if rng.Intn(2) == 0 {
		n.AddEps(rng.Intn(states), rng.Intn(states))
	}
	return n
}

func TestDeterminizeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := randNFA(rng, 2+rng.Intn(5), 2+rng.Intn(2))
		d := n.Determinize()
		m := d.Minimize()
		for i := 0; i < 60; i++ {
			w := randWord(rng, n.NumSymbols, 8)
			na, da, ma := n.Accepts(w), d.Accepts(w), m.Accepts(w)
			if na != da || da != ma {
				t.Fatalf("trial %d: disagree on %v: nfa=%v dfa=%v min=%v", trial, w, na, da, ma)
			}
		}
	}
}

func TestMinimizeCanonical(t *testing.T) {
	// Two structurally different NFAs for the same language minimize to the
	// same number of states.
	a := abStar()
	// (01)* built redundantly.
	b := Star(Concat(SymbolLang(2, 0), SymbolLang(2, 1)))
	ma, mb := a.MinimalDFA(), b.MinimalDFA()
	if ma.NumStates != mb.NumStates {
		t.Fatalf("minimal DFAs differ in size: %d vs %d", ma.NumStates, mb.NumStates)
	}
	if !EquivalentDFA(ma, mb) {
		t.Fatal("minimal DFAs not equivalent")
	}
}

func TestBooleanOps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		a := randNFA(rng, 3+rng.Intn(3), 2).Determinize()
		b := randNFA(rng, 3+rng.Intn(3), 2).Determinize()
		inter := IntersectDFA(a, b)
		uni := UnionDFA(a, b)
		diff := DifferenceDFA(a, b)
		comp := a.Complement()
		for i := 0; i < 50; i++ {
			w := randWord(rng, 2, 8)
			ia, ib := a.Accepts(w), b.Accepts(w)
			if inter.Accepts(w) != (ia && ib) {
				t.Fatalf("intersect wrong on %v", w)
			}
			if uni.Accepts(w) != (ia || ib) {
				t.Fatalf("union wrong on %v", w)
			}
			if diff.Accepts(w) != (ia && !ib) {
				t.Fatalf("difference wrong on %v", w)
			}
			if comp.Accepts(w) != !ia {
				t.Fatalf("complement wrong on %v", w)
			}
		}
	}
}

func TestReverse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := randNFA(rng, 2+rng.Intn(4), 2)
		r := n.Reverse()
		for i := 0; i < 50; i++ {
			w := randWord(rng, 2, 8)
			rev := make([]int, len(w))
			for j := range w {
				rev[j] = w[len(w)-1-j]
			}
			if n.Accepts(w) != r.Accepts(rev) {
				t.Fatalf("reverse disagrees on %v", w)
			}
		}
	}
}

func TestReverseInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := randNFA(rng, 2+rng.Intn(4), 2)
		rr := n.Reverse().Reverse()
		if !EquivalentNFA(n, rr) {
			t.Fatalf("reverse not an involution (trial %d)", trial)
		}
	}
}

func TestEmptinessAndSomeWord(t *testing.T) {
	if !EmptyLang(2).IsEmpty() {
		t.Fatal("EmptyLang not empty")
	}
	if EpsLang(2).IsEmpty() {
		t.Fatal("EpsLang empty")
	}
	d := abStar().Determinize()
	w, ok := d.SomeWord()
	if !ok {
		t.Fatal("SomeWord found nothing")
	}
	if !d.Accepts(w) {
		t.Fatalf("SomeWord returned non-member %v", w)
	}
	empty := EmptyLang(2).Determinize()
	if _, ok := empty.SomeWord(); ok {
		t.Fatal("SomeWord on empty language")
	}
}

func TestWordLangAndAllLang(t *testing.T) {
	w := WordLang(3, []int{0, 2, 1})
	if !w.Accepts([]int{0, 2, 1}) || w.Accepts([]int{0, 2}) || w.Accepts(nil) {
		t.Fatal("WordLang wrong")
	}
	all := AllLang(2)
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 20; i++ {
		if !all.Accepts(randWord(rng, 2, 6)) {
			t.Fatal("AllLang rejected a word")
		}
	}
}

func TestUnionConcatStarSemantics(t *testing.T) {
	a := SymbolLang(2, 0)
	b := SymbolLang(2, 1)
	ab := Concat(a, b)
	if !ab.Accepts([]int{0, 1}) || ab.Accepts([]int{0}) {
		t.Fatal("Concat wrong")
	}
	u := Union(a, b)
	if !u.Accepts([]int{0}) || !u.Accepts([]int{1}) || u.Accepts([]int{0, 1}) {
		t.Fatal("Union wrong")
	}
	s := Star(a)
	if !s.Accepts(nil) || !s.Accepts([]int{0, 0, 0}) || s.Accepts([]int{1}) {
		t.Fatal("Star wrong")
	}
}

func TestMapSymbolsHomomorphism(t *testing.T) {
	// Map 0↦{0,1}, 1↦{} over (01)*: result accepts words formed by choosing
	// 0 or 1 for the first letter and deleting transitions on second...
	n := abStar()
	m := n.MapSymbols(2, func(sym int) []int {
		if sym == 0 {
			return []int{0, 1}
		}
		return nil
	})
	if m.Accepts([]int{0, 1}) {
		t.Fatal("transition on 1 should be deleted")
	}
	if !m.Accepts(nil) {
		t.Fatal("ε must remain accepted")
	}
}

func TestEraseSymbols(t *testing.T) {
	// Erase 1 from (01)*: accepted words become 0*.
	n := abStar()
	e := n.EraseSymbols(func(sym int) bool { return sym == 1 })
	for i := 0; i < 5; i++ {
		w := make([]int, i)
		if !e.Accepts(w) {
			t.Fatalf("0^%d should be accepted after erasing", i)
		}
	}
	if e.Accepts([]int{1}) {
		t.Fatal("1 should not be accepted after erasing")
	}
}

func TestEquivalence(t *testing.T) {
	a := Star(Concat(SymbolLang(2, 0), SymbolLang(2, 1)))
	b := abStar()
	if !EquivalentNFA(a, b) {
		t.Fatal("equivalent languages reported different")
	}
	c := Star(SymbolLang(2, 0))
	if EquivalentNFA(a, c) {
		t.Fatal("different languages reported equivalent")
	}
	if !SubsetOfNFA(EpsLang(2), a) {
		t.Fatal("ε ⊆ (01)* should hold")
	}
	if SubsetOfNFA(a, EpsLang(2)) {
		t.Fatal("(01)* ⊆ {ε} should not hold")
	}
}

func TestCompleteTotality(t *testing.T) {
	d := abStar().Determinize().Complete()
	for s := 0; s < d.NumStates; s++ {
		for sym := 0; sym < d.NumSymbols; sym++ {
			if d.Step(s, sym) == Dead {
				t.Fatalf("Complete left a hole at (%d,%d)", s, sym)
			}
		}
	}
}

func TestQuickDeterminizePreservesMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64, raw []byte) bool {
		r := rand.New(rand.NewSource(seed))
		n := randNFA(r, 2+r.Intn(4), 2)
		d := n.Determinize()
		w := make([]int, 0, len(raw))
		for _, b := range raw {
			w = append(w, int(b)%2)
		}
		return n.Accepts(w) == d.Accepts(w)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	n := abStar()
	c := n.Clone()
	c.AddTrans(0, 1, 0)
	if n.Accepts([]int{1}) {
		t.Fatal("mutation of clone leaked into original")
	}
	d := n.Determinize()
	dc := d.Clone()
	dc.Accept[0] = false
	if !d.Accepts(nil) {
		t.Fatal("mutation of DFA clone leaked into original")
	}
}
