package sfa

// UsefulSymbols reports, per symbol, whether it occurs in some accepted
// word of the NFA whose symbols are all allowed. A symbol is useful iff
// some transition on it connects a start-reachable state to an
// acceptance-co-reachable state (both over allowed symbols only).
func (n *NFA) UsefulSymbols(allowed []bool) []bool {
	ok := func(sym int) bool { return sym < len(allowed) && allowed[sym] }
	// Forward reachability.
	fwd := make([]bool, n.NumStates)
	stack := append([]int(nil), n.Start...)
	for _, s := range stack {
		fwd[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		push := func(t int) {
			if !fwd[t] {
				fwd[t] = true
				stack = append(stack, t)
			}
		}
		for _, t := range n.Eps[s] {
			push(t)
		}
		for sym, ts := range n.Trans[s] {
			if !ok(sym) {
				continue
			}
			for _, t := range ts {
				push(t)
			}
		}
	}
	// Backward co-reachability.
	radj := make([][]int, n.NumStates)
	type edge struct{ from, sym, to int }
	var edges []edge
	for s := 0; s < n.NumStates; s++ {
		for _, t := range n.Eps[s] {
			radj[t] = append(radj[t], s)
		}
		for sym, ts := range n.Trans[s] {
			if !ok(sym) {
				continue
			}
			for _, t := range ts {
				radj[t] = append(radj[t], s)
				edges = append(edges, edge{s, sym, t})
			}
		}
	}
	bwd := make([]bool, n.NumStates)
	stack = stack[:0]
	for s := 0; s < n.NumStates; s++ {
		if n.Accept[s] {
			bwd[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range radj[s] {
			if !bwd[f] {
				bwd[f] = true
				stack = append(stack, f)
			}
		}
	}
	useful := make([]bool, n.NumSymbols)
	for _, e := range edges {
		if fwd[e.from] && bwd[e.to] {
			useful[e.sym] = true
		}
	}
	return useful
}
