package gen

import (
	"xpe/internal/alphabet"
	"xpe/internal/sre"
)

// parseSRE compiles an expression over {a,b} and returns its minimal DFA
// state count (accepting-relevant states: the completed minimal automaton
// minus nothing — the classic 2^k count includes the whole machine).
func parseSRE(src string) (int, error) {
	e, err := sre.Parse(src)
	if err != nil {
		return 0, err
	}
	in := alphabet.NewInterner()
	in.Intern("a")
	in.Intern("b")
	return e.CompileDFA(in).NumStates, nil
}
