package gen

import (
	"math/rand"
	"testing"

	"xpe/internal/ha"
	"xpe/internal/schema"
)

func TestDocumentSizeAndValidity(t *testing.T) {
	names := ha.NewNames()
	s := schema.MustParseGrammar(DocGrammar, names)
	for _, target := range []int{50, 500, 5000} {
		doc := Document(DefaultDocConfig(), target)
		n := doc.Size()
		if n < target || n > target*2 {
			t.Fatalf("target %d produced %d nodes", target, n)
		}
		if !s.DHA.Accepts(doc) {
			t.Fatalf("generated document (target %d) violates DocGrammar", target)
		}
	}
}

func TestDocumentDeterministic(t *testing.T) {
	a := Document(DefaultDocConfig(), 300)
	b := Document(DefaultDocConfig(), 300)
	if !a.Equal(b) {
		t.Fatal("generation is not deterministic")
	}
}

func TestKthFromEndBlowup(t *testing.T) {
	// The NFA for the k-th-from-end language is linear in k; its minimal
	// DFA has 2^k states.
	for _, k := range []int{2, 4, 6} {
		e := KthFromEndExpr(k)
		pe, err := parseSRE(e)
		if err != nil {
			t.Fatalf("%q: %v", e, err)
		}
		if got := pe; got != 1<<k {
			t.Fatalf("k=%d: minimal DFA has %d states, want %d", k, got, 1<<k)
		}
	}
}

func TestSiblingRow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := SiblingRow(rng, 10)
	if h.Size() != 12 { // r + 10 siblings + c
		t.Fatalf("size = %d", h.Size())
	}
	if h[0].Children[10].Name != "c" {
		t.Fatal("c must be last")
	}
}
