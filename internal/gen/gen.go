// Package gen provides deterministic workload generators for the
// experiment harness: docbook-like documents of controlled size (the
// document class the paper's introduction motivates: sections, figures,
// tables, paragraphs), and the adversarial expression families used to
// exhibit the worst-case exponential determinization cost the paper
// discusses in Sections 2 and 6.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"xpe/internal/hedge"
)

// DocConfig parameterizes document generation.
type DocConfig struct {
	Seed     int64
	MaxDepth int     // section nesting depth (≥1)
	FigProb  float64 // probability a content slot is a figure
	TabProb  float64 // probability a content slot is a table
	SecProb  float64 // probability a content slot is a subsection
}

// DefaultDocConfig is the configuration used by the experiments.
func DefaultDocConfig() DocConfig {
	return DocConfig{Seed: 1, MaxDepth: 6, FigProb: 0.15, TabProb: 0.1, SecProb: 0.25}
}

// Document generates a docbook-like document with approximately targetNodes
// nodes: doc⟨section*⟩ with sections holding nested sections, figures,
// tables, and paragraphs (paragraphs hold one text leaf). Generation is
// deterministic in the configuration.
func Document(cfg DocConfig, targetNodes int) hedge.Hedge {
	rng := rand.New(rand.NewSource(cfg.Seed))
	doc := hedge.NewElem("doc")
	count := 1
	for count < targetNodes {
		sec, n := section(rng, cfg, cfg.MaxDepth, targetNodes-count)
		doc.Children = append(doc.Children, sec)
		count += n
	}
	return hedge.Hedge{doc}
}

func section(rng *rand.Rand, cfg DocConfig, depth, budget int) (*hedge.Node, int) {
	sec := hedge.NewElem("section")
	count := 1
	slots := 2 + rng.Intn(6)
	for i := 0; i < slots && count < budget; i++ {
		r := rng.Float64()
		switch {
		case r < cfg.FigProb:
			sec.Children = append(sec.Children, hedge.NewElem("figure"))
			count++
		case r < cfg.FigProb+cfg.TabProb:
			sec.Children = append(sec.Children, hedge.NewElem("table"))
			count++
		case r < cfg.FigProb+cfg.TabProb+cfg.SecProb && depth > 1:
			sub, n := section(rng, cfg, depth-1, budget-count)
			sec.Children = append(sec.Children, sub)
			count += n
		default:
			text := hedge.NewVar(hedge.TextVar)
			text.Text = "lorem"
			par := hedge.NewElem("para", text)
			sec.Children = append(sec.Children, par)
			count += 2
		}
	}
	return sec, count
}

// DocGrammar is the grammar the generated documents conform to, in package
// schema syntax.
const DocGrammar = `
start = doc
element doc { section* }
element section { (section | figure | table | para)* }
element figure { empty }
element table { empty }
element para { text* }
`

// KthFromEndExpr returns the classic exponential-determinization family as
// a string regular expression over labels a and b: words whose k-th symbol
// from the end is b. Its minimal DFA has 2^k states, while the NFA has
// k+1 — the blowup the paper's Section 6 complexity discussion refers to.
func KthFromEndExpr(k int) string {
	var b strings.Builder
	b.WriteString("(a | b)* b")
	for i := 1; i < k; i++ {
		b.WriteString(" (a | b)")
	}
	return b.String()
}

// KthFromEndHRE returns the same family as a hedge regular expression over
// leaf elements a and b (a horizontal condition on a sibling sequence).
func KthFromEndHRE(k int) string { return KthFromEndExpr(k) }

// KthFromEndPHR returns a pointed hedge representation whose left-sibling
// condition is the k-th-from-end language: it locates c nodes whose elder
// siblings satisfy the adversarial condition, under a root r.
func KthFromEndPHR(k int) string {
	return fmt.Sprintf("[%s ; c ; *] [* ; r ; *]", KthFromEndExpr(k))
}

// TypicalPHR returns a benign query family of comparable syntactic size:
// the k-fold child chain c under sections (polynomial determinization).
func TypicalPHR(k int) string {
	var b strings.Builder
	b.WriteString("c")
	for i := 1; i < k; i++ {
		b.WriteString(" c")
	}
	b.WriteString(" [* ; r ; *]")
	return b.String()
}

// SiblingRow generates a flat hedge r⟨w c⟩ whose elder siblings of c spell
// the given a/b word — the input family for the determinization
// experiments.
func SiblingRow(rng *rand.Rand, width int) hedge.Hedge {
	r := hedge.NewElem("r")
	for i := 0; i < width; i++ {
		label := "a"
		if rng.Intn(2) == 0 {
			label = "b"
		}
		r.Children = append(r.Children, hedge.NewElem(label))
	}
	r.Children = append(r.Children, hedge.NewElem("c"))
	return hedge.Hedge{r}
}
