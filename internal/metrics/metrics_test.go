package metrics

import (
	"math/bits"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeTimer(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("Counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Set(3)
	if got := g.Load(); got != 3 {
		t.Errorf("Gauge = %d, want 3 (last value)", got)
	}
	var tm Timer
	tm.Observe(100 * time.Nanosecond)
	tm.Observe(250 * time.Nanosecond)
	if s := tm.Snapshot(); s.Count != 2 || s.TotalNs != 350 {
		t.Errorf("Timer = %+v, want count 2 total 350", s)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {1023, 10}, {1024, 11},
		{1 << 50, numBuckets - 1}, // overflow clamps into the last bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Bucket invariant: an observation of n ns lands in the bucket whose
	// bound is the smallest power of two strictly greater than n.
	for _, ns := range []int64{1, 7, 900, 1500, 123456} {
		idx := bucketOf(ns)
		le := int64(1) << uint(idx)
		if ns >= le || (idx > 0 && ns < le/2) {
			t.Errorf("bucketOf(%d) = %d (bound %d): observation outside bucket range", ns, idx, le)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(900 * time.Nanosecond)
	h.Observe(1500 * time.Nanosecond)
	h.Observe(1500 * time.Nanosecond)
	s := h.Snapshot()
	if s.Count != 3 || s.SumNs != 3900 {
		t.Fatalf("histogram totals = %+v, want count 3 sum 3900", s)
	}
	want := []Bucket{{LeNs: 1024, Le: "le_1us", Count: 1}, {LeNs: 2048, Le: "le_2us", Count: 2}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Errorf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
}

func TestBucketLabel(t *testing.T) {
	cases := []struct {
		idx  int
		want string
	}{
		{0, "le_1ns"}, {1, "le_2ns"}, {9, "le_512ns"},
		{10, "le_1us"}, {15, "le_32us"}, {19, "le_512us"},
		{20, "le_1ms"}, {29, "le_512ms"},
		{30, "le_1s"}, {43, "le_8192s"},
	}
	for _, c := range cases {
		if got := bucketLabel(c.idx); got != c.want {
			t.Errorf("bucketLabel(%d) = %q, want %q", c.idx, got, c.want)
		}
	}
}

// fill populates a registry with fixed values used by the golden and
// delta tests.
func fill(m *Metrics) {
	m.Eval.Docs.Add(2)
	m.Eval.Nodes.Add(100)
	m.Eval.Marks.Add(7)
	m.Eval.Transitions.Add(450)
	m.Eval.LazyStates.Add(12)
	m.Eval.LazyHits.Add(40)
	m.Eval.LazyEvictions.Add(1)
	m.Cache.Hits.Add(5)
	m.Cache.Misses.Add(2)
	m.Cache.Evictions.Add(1)
	m.Split.Records.Add(3)
	m.Split.Nodes.Add(90)
	m.Split.Bytes.Add(1024)
	m.Split.ArenaNodesReused.Add(80)
	m.Split.ArenaChunkAllocs.Add(1)
	m.Split.RecordsPrefiltered.Add(4)
	m.Stream.Runs.Inc()
	m.Stream.Workers.Set(4)
	m.Stream.RecordsSkipped.Add(2)
	m.Stream.RecordsTimedOut.Inc()
	m.Stream.PanicsRecovered.Inc()
	m.Stream.SplitTime.Add(3, 3000)
	m.Stream.EvalTime.Add(3, 6000)
	m.Stream.DeliverTime.Add(3, 1500)
	m.Stream.WallTime.Add(1, 2000)
	m.Stream.RecordLatency.Observe(900 * time.Nanosecond)
	m.Stream.RecordLatency.Observe(1500 * time.Nanosecond)
	m.Stream.RecordLatency.Observe(2500 * time.Nanosecond)
}

// TestSnapshotGoldenJSON pins the exact snapshot encoding: field order,
// names, indentation, and derived values. Dashboards and the golden files
// under cmd/ parse this layout.
func TestSnapshotGoldenJSON(t *testing.T) {
	var m Metrics
	fill(&m)
	var b strings.Builder
	if err := m.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "eval": {
    "docs": 2,
    "nodes_visited": 100,
    "marks_emitted": 7,
    "transitions": 450,
    "lazy_states_built": 12,
    "lazy_cache_hits": 40,
    "lazy_evictions": 1
  },
  "cache": {
    "hits": 5,
    "misses": 2,
    "evictions": 1
  },
  "split": {
    "records": 3,
    "nodes": 90,
    "bytes": 1024,
    "arena_nodes_reused": 80,
    "arena_chunk_allocs": 1,
    "records_prefiltered": 4
  },
  "stream": {
    "runs": 1,
    "workers": 4,
    "records_skipped": 2,
    "records_timed_out": 1,
    "panics_recovered": 1,
    "split_time": {
      "count": 3,
      "total_ns": 3000
    },
    "eval_time": {
      "count": 3,
      "total_ns": 6000
    },
    "deliver_time": {
      "count": 3,
      "total_ns": 1500
    },
    "wall_time": {
      "count": 1,
      "total_ns": 2000
    },
    "record_latency": {
      "count": 3,
      "sum_ns": 4900,
      "buckets": [
        {
          "le_ns": 1024,
          "le": "le_1us",
          "count": 1
        },
        {
          "le_ns": 2048,
          "le": "le_2us",
          "count": 1
        },
        {
          "le_ns": 4096,
          "le": "le_4us",
          "count": 1
        }
      ]
    },
    "worker_occupancy": 0.75
  }
}
`
	if b.String() != golden {
		t.Errorf("snapshot JSON drifted from golden:\n--- got ---\n%s--- want ---\n%s", b.String(), golden)
	}
}

// TestSnapshotSubAdd checks the delta algebra the facade relies on: for a
// registry that advanced from `before` to `after`, merging
// after.Sub(before) into a second registry reproduces the delta exactly
// (the MetricsSink → engine merge path).
func TestSnapshotSubAdd(t *testing.T) {
	var m Metrics
	fill(&m)
	before := m.Snapshot()
	fill(&m) // advance by one more fill
	delta := m.Snapshot().Sub(before)

	if delta.Eval.Docs != 2 || delta.Eval.NodesVisited != 100 {
		t.Errorf("eval delta = %+v, want one fill's worth", delta.Eval)
	}
	if delta.Stream.RecordLatency.Count != 3 {
		t.Errorf("latency delta count = %d, want 3", delta.Stream.RecordLatency.Count)
	}

	var merged Metrics
	merged.AddSnapshot(delta)
	got := merged.Snapshot()
	var single Metrics
	fill(&single)
	want := single.Snapshot()
	// The merged registry carries no wall-time start, so occupancy is
	// recomputed from identical totals; the snapshots must agree entirely.
	gb, wb := new(strings.Builder), new(strings.Builder)
	if err := got.WriteJSON(gb); err != nil {
		t.Fatal(err)
	}
	if err := want.WriteJSON(wb); err != nil {
		t.Fatal(err)
	}
	if gb.String() != wb.String() {
		t.Errorf("AddSnapshot(Sub) is not the identity:\n--- merged ---\n%s--- one fill ---\n%s", gb, wb)
	}
}

func TestHistogramExpandRoundTrip(t *testing.T) {
	var h Histogram
	for _, ns := range []int64{1, 1, 500, 70000, 1 << 50} {
		h.Observe(time.Duration(ns))
	}
	s := h.Snapshot()
	exp := s.expand()
	var total int64
	for i, n := range exp {
		total += n
		if n != 0 {
			le := int64(1) << uint(i)
			found := false
			for _, b := range s.Buckets {
				if b.LeNs == le && b.Count == n {
					found = true
				}
			}
			if !found {
				t.Errorf("expand bucket %d (le %d, count %d) missing from snapshot", i, le, n)
			}
		}
	}
	if total != s.Count {
		t.Errorf("expanded bucket total %d != count %d", total, s.Count)
	}
	// The overflow observation must sit in the final bucket.
	if idx := bits.Len64(uint64(s.Buckets[len(s.Buckets)-1].LeNs)) - 1; idx != numBuckets-1 {
		t.Errorf("overflow landed in bucket %d, want %d", idx, numBuckets-1)
	}
}
