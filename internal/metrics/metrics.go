// Package metrics is the engine-wide observability substrate: cheap
// atomic counters, monotonic-clock stage timers, fixed-bucket latency
// histograms, and a deterministic JSON snapshot encoding.
//
// The paper's headline claims are complexity bounds — Algorithm 1 locates
// all matches in time linear in the number of nodes (Theorems 3–5) — and
// this package exists to watch those bounds hold in production-shaped
// runs: the evaluation layers (internal/core, internal/xmlhedge,
// internal/stream) accumulate work counts locally in their recycled
// per-run state and flush them here through a single nil-guarded pointer,
// so instrumentation allocates nothing on the hot path and costs almost
// nothing when no sink is attached.
//
// Concurrency: every cell is atomic, so any number of evaluation
// goroutines may flush into a sink while observers snapshot it. Snapshots
// are point-in-time but not cross-field consistent (a reader racing a
// flush may see some of its counters and not others); that is the usual
// monitoring contract.
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a cheap atomic event counter.
type Counter struct{ v atomic.Int64 }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic last-value cell (e.g. the worker count of the most
// recent streaming run).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Timer accumulates the wall time of one pipeline stage across runs.
// Durations come from time.Since, which reads the monotonic clock.
type Timer struct {
	count atomic.Int64
	ns    atomic.Int64
}

// Observe records one timed interval.
func (t *Timer) Observe(d time.Duration) {
	t.count.Add(1)
	t.ns.Add(int64(d))
}

// Add merges pre-aggregated observations (used by snapshot arithmetic).
func (t *Timer) Add(count, ns int64) {
	t.count.Add(count)
	t.ns.Add(ns)
}

// Snapshot returns the current totals.
func (t *Timer) Snapshot() TimerSnapshot {
	return TimerSnapshot{Count: t.count.Load(), TotalNs: t.ns.Load()}
}

// numBuckets is the fixed bucket count of Histogram: bucket i holds
// observations v (in nanoseconds) with v < 2^i and v >= 2^(i-1); bucket 0
// holds sub-nanosecond observations and the last bucket additionally holds
// everything past its bound (2^43 ns is about 2.4 hours).
const numBuckets = 44

// Histogram is a fixed-bucket (powers-of-two nanoseconds) latency
// histogram. The fixed layout keeps Observe allocation-free and the JSON
// snapshot deterministic.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketOf maps a duration in nanoseconds to its bucket index.
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	idx := bits.Len64(uint64(ns))
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketOf(ns)].Add(1)
}

// add merges a pre-aggregated bucket (used by snapshot arithmetic).
func (h *Histogram) add(idx int, n, sumNs int64) {
	if idx < 0 || idx >= numBuckets || n == 0 {
		h.sum.Add(sumNs)
		return
	}
	h.count.Add(n)
	h.sum.Add(sumNs)
	h.buckets[idx].Add(n)
}

// Snapshot returns the totals plus the non-empty buckets in ascending
// bound order.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), SumNs: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, newBucket(i, n))
		}
	}
	return s
}
