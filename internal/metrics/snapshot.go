package metrics

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
)

// Eval counts Algorithm-1 work in internal/core: one flush per evaluated
// document or record.
type Eval struct {
	// Docs counts evaluations (whole documents, bulk entries, or
	// streamed records).
	Docs Counter
	// Nodes counts nodes visited by the traversals.
	Nodes Counter
	// Marks counts located nodes emitted.
	Marks Counter
	// Transitions counts automaton transitions taken: component membership
	// DFA steps, mirror-automaton steps, and e₁ marking steps.
	Transitions Counter
	// LazyStates counts determinization states materialized on demand by
	// lazily compiled queries (zero under eager compilation); LazyHits
	// counts lazy transition-cache hits, LazyEvictions budget-forced cache
	// flushes.
	LazyStates    Counter
	LazyHits      Counter
	LazyEvictions Counter
}

// Snapshot returns the current totals.
func (e *Eval) Snapshot() EvalSnapshot {
	return EvalSnapshot{
		Docs:          e.Docs.Load(),
		NodesVisited:  e.Nodes.Load(),
		MarksEmitted:  e.Marks.Load(),
		Transitions:   e.Transitions.Load(),
		LazyStates:    e.LazyStates.Load(),
		LazyHits:      e.LazyHits.Load(),
		LazyEvictions: e.LazyEvictions.Load(),
	}
}

// Cache counts compiled-query cache traffic in the xpe facade: a hit is a
// generation-mismatched evaluation served an already-recompiled query, a
// miss is one that had to recompile, an eviction is a bounded-capacity
// drop of the least-recently-used entry. Fast-path evaluations (alphabet
// generation unchanged since compile) never touch the cache and are not
// counted.
type Cache struct {
	Hits      Counter
	Misses    Counter
	Evictions Counter
}

// Snapshot returns the current totals.
func (c *Cache) Snapshot() CacheSnapshot {
	return CacheSnapshot{
		Hits:      c.Hits.Load(),
		Misses:    c.Misses.Load(),
		Evictions: c.Evictions.Load(),
	}
}

// Split counts record-splitting work in internal/xmlhedge.
type Split struct {
	// Records counts records successfully split off the input.
	Records Counter
	// Nodes counts nodes across split records.
	Nodes Counter
	// Bytes counts input bytes consumed by the XML decoder.
	Bytes Counter
	// ArenaNodesReused counts nodes served from recycled arena chunks (no
	// allocation); ArenaChunkAllocs counts fresh chunk allocations. A warm
	// pipeline shows reuse approaching one per node and allocs flat.
	ArenaNodesReused Counter
	ArenaChunkAllocs Counter
	// RecordsPrefiltered counts records skipped by the required-label raw
	// byte skim without being parsed (they are not in Records).
	RecordsPrefiltered Counter
}

// Snapshot returns the current totals.
func (s *Split) Snapshot() SplitSnapshot {
	return SplitSnapshot{
		Records:            s.Records.Load(),
		Nodes:              s.Nodes.Load(),
		Bytes:              s.Bytes.Load(),
		ArenaNodesReused:   s.ArenaNodesReused.Load(),
		ArenaChunkAllocs:   s.ArenaChunkAllocs.Load(),
		RecordsPrefiltered: s.RecordsPrefiltered.Load(),
	}
}

// Stream times the stages of internal/stream runs.
type Stream struct {
	// Runs counts streaming runs started.
	Runs Counter
	// Workers is the worker count of the most recent run.
	Workers Gauge
	// RecordsSkipped counts records dropped by a Skip error policy
	// (malformed records, limit violations, evaluation failures).
	RecordsSkipped Counter
	// RecordsTimedOut counts records whose evaluation exceeded the
	// configured RecordTimeout (whether the policy then skipped or
	// aborted) — the timeout slice of the failures RecordsSkipped
	// aggregates.
	RecordsTimedOut Counter
	// PanicsRecovered counts record evaluations that panicked and were
	// converted to errors (whether the policy then skipped or aborted).
	PanicsRecovered Counter
	// SplitTime, EvalTime, and DeliverTime accumulate per-record stage
	// wall time; EvalTime sums across concurrent workers, so it can exceed
	// WallTime.
	SplitTime   Timer
	EvalTime    Timer
	DeliverTime Timer
	// WallTime accumulates whole-run wall time.
	WallTime Timer
	// RecordLatency is the per-record evaluation latency distribution.
	RecordLatency Histogram
}

// Snapshot returns the current totals. WorkerOccupancy is the fraction of
// worker wall time spent evaluating: EvalTime / (WallTime × Workers).
func (s *Stream) Snapshot() StreamSnapshot {
	snap := StreamSnapshot{
		Runs:            s.Runs.Load(),
		Workers:         s.Workers.Load(),
		RecordsSkipped:  s.RecordsSkipped.Load(),
		RecordsTimedOut: s.RecordsTimedOut.Load(),
		PanicsRecovered: s.PanicsRecovered.Load(),
		SplitTime:       s.SplitTime.Snapshot(),
		EvalTime:        s.EvalTime.Snapshot(),
		DeliverTime:     s.DeliverTime.Snapshot(),
		WallTime:        s.WallTime.Snapshot(),
		RecordLatency:   s.RecordLatency.Snapshot(),
	}
	snap.WorkerOccupancy = occupancy(snap.EvalTime.TotalNs, snap.WallTime.TotalNs, snap.Workers)
	return snap
}

// occupancy computes EvalTime / (WallTime × workers), rounded to four
// decimals so snapshots encode stably.
func occupancy(evalNs, wallNs, workers int64) float64 {
	if evalNs <= 0 || wallNs <= 0 || workers <= 0 {
		return 0
	}
	return math.Round(float64(evalNs)/(float64(wallNs)*float64(workers))*1e4) / 1e4
}

// Metrics is the engine-wide registry: one instance aggregates every run
// flushed into it.
type Metrics struct {
	Eval   Eval
	Cache  Cache
	Split  Split
	Stream Stream
}

// Snapshot returns a point-in-time copy of every counter.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{Eval: m.Eval.Snapshot(), Cache: m.Cache.Snapshot(), Split: m.Split.Snapshot(), Stream: m.Stream.Snapshot()}
}

// AddSnapshot merges a snapshot (typically a Sub delta of another sink)
// into the registry. The Workers gauge and derived occupancy are
// last-value fields: Workers is overwritten when non-zero.
func (m *Metrics) AddSnapshot(s Snapshot) {
	m.Eval.Docs.Add(s.Eval.Docs)
	m.Eval.Nodes.Add(s.Eval.NodesVisited)
	m.Eval.Marks.Add(s.Eval.MarksEmitted)
	m.Eval.Transitions.Add(s.Eval.Transitions)
	m.Eval.LazyStates.Add(s.Eval.LazyStates)
	m.Eval.LazyHits.Add(s.Eval.LazyHits)
	m.Eval.LazyEvictions.Add(s.Eval.LazyEvictions)

	m.Cache.Hits.Add(s.Cache.Hits)
	m.Cache.Misses.Add(s.Cache.Misses)
	m.Cache.Evictions.Add(s.Cache.Evictions)

	m.Split.Records.Add(s.Split.Records)
	m.Split.Nodes.Add(s.Split.Nodes)
	m.Split.Bytes.Add(s.Split.Bytes)
	m.Split.ArenaNodesReused.Add(s.Split.ArenaNodesReused)
	m.Split.ArenaChunkAllocs.Add(s.Split.ArenaChunkAllocs)
	m.Split.RecordsPrefiltered.Add(s.Split.RecordsPrefiltered)

	m.Stream.Runs.Add(s.Stream.Runs)
	if s.Stream.Workers != 0 {
		m.Stream.Workers.Set(s.Stream.Workers)
	}
	m.Stream.RecordsSkipped.Add(s.Stream.RecordsSkipped)
	m.Stream.RecordsTimedOut.Add(s.Stream.RecordsTimedOut)
	m.Stream.PanicsRecovered.Add(s.Stream.PanicsRecovered)
	m.Stream.SplitTime.Add(s.Stream.SplitTime.Count, s.Stream.SplitTime.TotalNs)
	m.Stream.EvalTime.Add(s.Stream.EvalTime.Count, s.Stream.EvalTime.TotalNs)
	m.Stream.DeliverTime.Add(s.Stream.DeliverTime.Count, s.Stream.DeliverTime.TotalNs)
	m.Stream.WallTime.Add(s.Stream.WallTime.Count, s.Stream.WallTime.TotalNs)
	for _, b := range s.Stream.RecordLatency.Buckets {
		m.Stream.RecordLatency.add(bits.Len64(uint64(b.LeNs))-1, b.Count, 0)
	}
	m.Stream.RecordLatency.add(-1, 0, s.Stream.RecordLatency.SumNs)
}

// TimerSnapshot is the encoded form of a Timer.
type TimerSnapshot struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
}

func (t TimerSnapshot) sub(prev TimerSnapshot) TimerSnapshot {
	return TimerSnapshot{Count: t.Count - prev.Count, TotalNs: t.TotalNs - prev.TotalNs}
}

// Bucket is one non-empty histogram bucket: Count observations below LeNs
// nanoseconds (and at or above the previous bucket's bound). Le is the
// same bound rendered human-readably in the nearest binary unit
// ("le_1ms" for 2^20 ns); LeNs stays the exact machine-readable key, so
// golden files keyed on it keep working.
type Bucket struct {
	LeNs  int64  `json:"le_ns"`
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// bucketLabel renders bucket index i's bound (2^i ns) as a compact
// human-readable label in the nearest power-of-two unit: le_512ns,
// le_1us, le_1ms, le_1s. The rendering is approximate by design
// (1<<20 ns is 1.05ms) — LeNs carries the exact bound.
func bucketLabel(i int) string {
	switch {
	case i < 10:
		return "le_" + itoa(int64(1)<<uint(i)) + "ns"
	case i < 20:
		return "le_" + itoa(int64(1)<<uint(i-10)) + "us"
	case i < 30:
		return "le_" + itoa(int64(1)<<uint(i-20)) + "ms"
	default:
		return "le_" + itoa(int64(1)<<uint(i-30)) + "s"
	}
}

// itoa avoids importing strconv for one call site.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// newBucket builds the snapshot bucket for index i.
func newBucket(i int, count int64) Bucket {
	return Bucket{LeNs: int64(1) << uint(i), Le: bucketLabel(i), Count: count}
}

// HistogramSnapshot is the encoded form of a Histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	SumNs   int64    `json:"sum_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

func (h HistogramSnapshot) expand() [numBuckets]int64 {
	var out [numBuckets]int64
	for _, b := range h.Buckets {
		if idx := bits.Len64(uint64(b.LeNs)) - 1; idx >= 0 && idx < numBuckets {
			out[idx] = b.Count
		}
	}
	return out
}

func (h HistogramSnapshot) sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: h.Count - prev.Count, SumNs: h.SumNs - prev.SumNs}
	cur, old := h.expand(), prev.expand()
	for i := range cur {
		if n := cur[i] - old[i]; n != 0 {
			out.Buckets = append(out.Buckets, newBucket(i, n))
		}
	}
	return out
}

// EvalSnapshot is the encoded form of Eval.
type EvalSnapshot struct {
	Docs          int64 `json:"docs"`
	NodesVisited  int64 `json:"nodes_visited"`
	MarksEmitted  int64 `json:"marks_emitted"`
	Transitions   int64 `json:"transitions"`
	LazyStates    int64 `json:"lazy_states_built"`
	LazyHits      int64 `json:"lazy_cache_hits"`
	LazyEvictions int64 `json:"lazy_evictions"`
}

// CacheSnapshot is the encoded form of Cache.
type CacheSnapshot struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// SplitSnapshot is the encoded form of Split.
type SplitSnapshot struct {
	Records            int64 `json:"records"`
	Nodes              int64 `json:"nodes"`
	Bytes              int64 `json:"bytes"`
	ArenaNodesReused   int64 `json:"arena_nodes_reused"`
	ArenaChunkAllocs   int64 `json:"arena_chunk_allocs"`
	RecordsPrefiltered int64 `json:"records_prefiltered"`
}

// StreamSnapshot is the encoded form of Stream.
type StreamSnapshot struct {
	Runs            int64             `json:"runs"`
	Workers         int64             `json:"workers"`
	RecordsSkipped  int64             `json:"records_skipped"`
	RecordsTimedOut int64             `json:"records_timed_out"`
	PanicsRecovered int64             `json:"panics_recovered"`
	SplitTime       TimerSnapshot     `json:"split_time"`
	EvalTime        TimerSnapshot     `json:"eval_time"`
	DeliverTime     TimerSnapshot     `json:"deliver_time"`
	WallTime        TimerSnapshot     `json:"wall_time"`
	RecordLatency   HistogramSnapshot `json:"record_latency"`
	WorkerOccupancy float64           `json:"worker_occupancy"`
}

// Snapshot is a point-in-time copy of a Metrics registry. Field order (and
// therefore the JSON encoding) is fixed, so encoded snapshots are
// deterministic for a given set of counter values.
type Snapshot struct {
	Eval   EvalSnapshot   `json:"eval"`
	Cache  CacheSnapshot  `json:"cache"`
	Split  SplitSnapshot  `json:"split"`
	Stream StreamSnapshot `json:"stream"`
}

// Sub returns the counter-wise difference s − prev: the activity between
// two snapshots of the same registry.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		Eval: EvalSnapshot{
			Docs:          s.Eval.Docs - prev.Eval.Docs,
			NodesVisited:  s.Eval.NodesVisited - prev.Eval.NodesVisited,
			MarksEmitted:  s.Eval.MarksEmitted - prev.Eval.MarksEmitted,
			Transitions:   s.Eval.Transitions - prev.Eval.Transitions,
			LazyStates:    s.Eval.LazyStates - prev.Eval.LazyStates,
			LazyHits:      s.Eval.LazyHits - prev.Eval.LazyHits,
			LazyEvictions: s.Eval.LazyEvictions - prev.Eval.LazyEvictions,
		},
		Cache: CacheSnapshot{
			Hits:      s.Cache.Hits - prev.Cache.Hits,
			Misses:    s.Cache.Misses - prev.Cache.Misses,
			Evictions: s.Cache.Evictions - prev.Cache.Evictions,
		},
		Split: SplitSnapshot{
			Records:            s.Split.Records - prev.Split.Records,
			Nodes:              s.Split.Nodes - prev.Split.Nodes,
			Bytes:              s.Split.Bytes - prev.Split.Bytes,
			ArenaNodesReused:   s.Split.ArenaNodesReused - prev.Split.ArenaNodesReused,
			ArenaChunkAllocs:   s.Split.ArenaChunkAllocs - prev.Split.ArenaChunkAllocs,
			RecordsPrefiltered: s.Split.RecordsPrefiltered - prev.Split.RecordsPrefiltered,
		},
		Stream: StreamSnapshot{
			Runs:            s.Stream.Runs - prev.Stream.Runs,
			Workers:         s.Stream.Workers,
			RecordsSkipped:  s.Stream.RecordsSkipped - prev.Stream.RecordsSkipped,
			RecordsTimedOut: s.Stream.RecordsTimedOut - prev.Stream.RecordsTimedOut,
			PanicsRecovered: s.Stream.PanicsRecovered - prev.Stream.PanicsRecovered,
			SplitTime:       s.Stream.SplitTime.sub(prev.Stream.SplitTime),
			EvalTime:        s.Stream.EvalTime.sub(prev.Stream.EvalTime),
			DeliverTime:     s.Stream.DeliverTime.sub(prev.Stream.DeliverTime),
			WallTime:        s.Stream.WallTime.sub(prev.Stream.WallTime),
			RecordLatency:   s.Stream.RecordLatency.sub(prev.Stream.RecordLatency),
			WorkerOccupancy: occupancy(s.Stream.EvalTime.TotalNs-prev.Stream.EvalTime.TotalNs, s.Stream.WallTime.TotalNs-prev.Stream.WallTime.TotalNs, s.Stream.Workers),
		},
	}
}

// WriteJSON encodes the snapshot as indented JSON followed by a newline.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
