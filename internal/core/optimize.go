package core

import (
	"xpe/internal/alphabet"
	"xpe/internal/sre"
)

// Optimize — the paper's first open issue (§9): "is it possible to
// generalize useful techniques (e.g., optimization) developed for path
// expressions to hedge regular expressions and pointed hedge
// representations?" This pass generalizes three classical path-expression
// optimizations to PHRs:
//
//  1. base unification — bases with identical label, sides, and binding
//     collapse to one symbol, shrinking the candidate alphabet the
//     evaluator scans per node;
//  2. unreachable-base elimination — bases whose symbol cannot occur in
//     any word of the top-level regular expression are dropped;
//  3. regular-expression canonicalization — the top-level expression is
//     rebuilt from the minimal DFA of its (unified) symbol language,
//     removing redundant alternation and nesting.
//
// The result locates exactly the same nodes (Locate-equivalence is fuzzed
// in tests); compiled automata are shared across unified bases, so
// compilation also gets cheaper.
func Optimize(phr *PHR) *PHR {
	// 1. Unify duplicate bases.
	type key struct{ left, label, right, bind string }
	keyOf := func(b BaseRep) key {
		k := key{label: b.Label, bind: b.Bind}
		if b.Left != nil {
			k.left = b.Left.String()
		} else {
			k.left = "*"
		}
		if b.Right != nil {
			k.right = b.Right.String()
		} else {
			k.right = "*"
		}
		return k
	}
	remap := make([]int, len(phr.Bases))
	var bases []BaseRep
	byKey := map[key]int{}
	for i, b := range phr.Bases {
		k := keyOf(b)
		if j, ok := byKey[k]; ok {
			remap[i] = j
			continue
		}
		byKey[k] = len(bases)
		remap[i] = len(bases)
		bases = append(bases, b)
	}

	// Rewrite the regex onto unified symbols.
	expr := rewriteSymbols(phr.Expr, func(i int) *sre.Expr {
		return sre.Sym(baseSymbol(remap[i]))
	})

	// 2. Drop bases whose symbols never occur in an accepted word.
	in := alphabet.NewInterner()
	for i := range bases {
		in.Intern(baseSymbol(i))
	}
	nfa := expr.CompileNFA(in)
	nfa.GrowAlphabet(len(bases))
	allowed := make([]bool, len(bases))
	for i := range allowed {
		allowed[i] = true
	}
	useful := nfa.UsefulSymbols(allowed)
	if len(useful) < len(bases) {
		grown := make([]bool, len(bases))
		copy(grown, useful)
		useful = grown
	}
	remap2 := make([]int, len(bases))
	var kept []BaseRep
	for i, b := range bases {
		if useful[i] {
			remap2[i] = len(kept)
			kept = append(kept, b)
		} else {
			remap2[i] = -1
		}
	}
	expr = rewriteSymbols(expr, func(i int) *sre.Expr {
		if remap2[i] < 0 {
			return sre.Empty()
		}
		return sre.Sym(baseSymbol(remap2[i]))
	})

	// 3. Canonicalize the regular expression via its minimal DFA.
	in2 := alphabet.NewInterner()
	for i := range kept {
		in2.Intern(baseSymbol(i))
	}
	dfa := expr.CompileDFA(in2)
	expr = sre.FromDFA(dfa, func(sym int) string { return in2.Name(sym) })

	return &PHR{Bases: kept, Expr: expr}
}

// rewriteSymbols maps base symbols of a regex through fn.
func rewriteSymbols(e *sre.Expr, fn func(baseIdx int) *sre.Expr) *sre.Expr {
	switch e.Kind {
	case sre.KSym:
		var i int
		if n, _ := sscanBaseSymbol(e.Name); n >= 0 {
			i = n
		}
		return fn(i)
	case sre.KCat, sre.KAlt, sre.KStar:
		subs := make([]*sre.Expr, len(e.Subs))
		for i, s := range e.Subs {
			subs[i] = rewriteSymbols(s, fn)
		}
		return &sre.Expr{Kind: e.Kind, Subs: subs}
	default:
		return e
	}
}

// sscanBaseSymbol parses "t<i>".
func sscanBaseSymbol(s string) (int, bool) {
	if len(s) < 2 || s[0] != 't' {
		return -1, false
	}
	n := 0
	for i := 1; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return -1, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}
