package core

import (
	"math/rand"
	"testing"

	"xpe/internal/ha"
	"xpe/internal/hedge"
	"xpe/internal/hre"
	"xpe/internal/sre"
)

// randSide generates a random hedge regular expression side condition over
// {a,b} with variable x (nil = any hedge).
func randSide(rng *rand.Rand) *hre.Expr {
	if rng.Intn(3) == 0 {
		return nil
	}
	var gen func(depth int) *hre.Expr
	gen = func(depth int) *hre.Expr {
		if depth <= 0 {
			switch rng.Intn(4) {
			case 0:
				return hre.Leaf("a")
			case 1:
				return hre.Leaf("b")
			case 2:
				return hre.Var("x")
			default:
				return hre.Any()
			}
		}
		switch rng.Intn(5) {
		case 0:
			return hre.Elem("a", gen(depth-1))
		case 1:
			return hre.Cat(gen(depth-1), gen(depth-1))
		case 2:
			return hre.Alt(gen(depth-1), gen(depth-1))
		case 3:
			return hre.Star(gen(depth - 1))
		default:
			return gen(depth - 1)
		}
	}
	return gen(2)
}

// randPHR generates a random pointed hedge representation with up to four
// bases over labels {a,b}.
func randPHR(rng *rand.Rand) *PHR {
	phr := &PHR{}
	nBases := 1 + rng.Intn(3)
	syms := make([]*sre.Expr, nBases)
	for i := 0; i < nBases; i++ {
		label := "a"
		if rng.Intn(2) == 0 {
			label = "b"
		}
		phr.Bases = append(phr.Bases, BaseRep{
			Left:  randSide(rng),
			Label: label,
			Right: randSide(rng),
		})
		syms[i] = sre.Sym(baseSymbol(i))
	}
	var gen func(depth int) *sre.Expr
	gen = func(depth int) *sre.Expr {
		if depth <= 0 {
			return syms[rng.Intn(nBases)]
		}
		switch rng.Intn(4) {
		case 0:
			return sre.Cat(gen(depth-1), gen(depth-1))
		case 1:
			return sre.Alt(gen(depth-1), gen(depth-1))
		case 2:
			return sre.Star(gen(depth - 1))
		default:
			return gen(depth - 1)
		}
	}
	phr.Expr = gen(2)
	return phr
}

// TestNaiveVsAlgorithm1Fuzz compares the two evaluators on randomly
// generated representations and documents — the strongest correctness
// evidence for Theorem 4 / Algorithm 1 in the suite.
func TestNaiveVsAlgorithm1Fuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	cfg := hedge.RandConfig{Symbols: []string{"a", "b"}, Vars: []string{"x"}, MaxDepth: 4, MaxWidth: 3}
	for trial := 0; trial < 80; trial++ {
		phr := randPHR(rng)
		names := ha.NewNames()
		names.Syms.Intern("a")
		names.Syms.Intern("b")
		names.Vars.Intern("x")
		compiled, err := CompilePHR(phr, names)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, phr, err)
		}
		naive, err := NewNaiveMatcher(phr, names)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < 25; i++ {
			h := hedge.Random(rng, cfg)
			fast := compiled.Locate(h)
			slow, err := naive.LocateAll(h)
			if err != nil {
				t.Fatal(err)
			}
			h.Visit(func(p hedge.Path, n *hedge.Node) bool {
				if fast.Located[n] != slow[n] {
					t.Fatalf("trial %d: %s disagrees at %v in %q: fast=%v naive=%v",
						trial, phr, p, h, fast.Located[n], slow[n])
				}
				return true
			})
		}
	}
}

// TestMatchAutomatonFuzz checks the Theorem 5 construction on random
// representations against a small schema: language preservation and
// marking agreement.
func TestMatchAutomatonFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 25; trial++ {
		names := ha.NewNames()
		names.Syms.Intern("a")
		names.Syms.Intern("b")
		names.Vars.Intern("x")
		// Schema: a-rooted documents over {a,b,x}.
		b := ha.NewBuilder(names)
		b.Iota("x", "qx")
		b.MustRule("a", "qa", "(qa | qb | qx)*")
		b.MustRule("b", "qb", "(qa | qb | qx)*")
		b.MustFinal("qa")
		schema := b.Build().Determinize().DHA

		phr := randPHR(rng)
		cq, err := CompileQuery(&Query{Envelope: phr}, names)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m, err := BuildMatchAutomaton(schema, cq)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, phr, err)
		}
		cfg := hedge.RandConfig{Symbols: []string{"a", "b"}, Vars: []string{"x"}, MaxDepth: 3, MaxWidth: 3}
		for i := 0; i < 20; i++ {
			h := hedge.Random(rng, cfg)
			if schema.Accepts(h) != m.NHA.Accepts(h) {
				t.Fatalf("trial %d: %s changed the schema language on %q", trial, phr, h)
			}
			if !schema.Accepts(h) {
				continue
			}
			marked, ok := m.MarkedNodes(h)
			if !ok {
				t.Fatalf("trial %d: run extraction failed on %q", trial, h)
			}
			want := cq.Select(h)
			h.Visit(func(p hedge.Path, n *hedge.Node) bool {
				if marked[n] != want.Located[n] {
					t.Fatalf("trial %d: %s marking disagrees at %v in %q", trial, phr, p, h)
				}
				return true
			})
		}
	}
}
