package core

import (
	"math/rand"
	"testing"

	"xpe/internal/ha"
	"xpe/internal/hedge"
)

func TestBulkSelectMatchesSequential(t *testing.T) {
	names := ha.NewNames()
	names.Syms.Intern("a")
	names.Syms.Intern("b")
	names.Vars.Intern("x")
	q, err := ParseQuery("select(b*; [* ; a ; b .] (a|b)*)")
	if err != nil {
		t.Fatal(err)
	}
	cq, err := CompileQuery(q, names)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	cfg := hedge.RandConfig{Symbols: []string{"a", "b"}, Vars: []string{"x"}, MaxDepth: 4, MaxWidth: 3}
	docs := make([]hedge.Hedge, 64)
	for i := range docs {
		docs[i] = hedge.Random(rng, cfg)
	}
	parallel := cq.BulkSelect(docs, 8)
	for i, d := range docs {
		want := cq.Select(d)
		got := parallel[i]
		if len(got.Paths) != len(want.Paths) {
			t.Fatalf("doc %d: %d vs %d matches", i, len(got.Paths), len(want.Paths))
		}
		for j := range want.Paths {
			if !got.Paths[j].Equal(want.Paths[j]) {
				t.Fatalf("doc %d: path %d differs", i, j)
			}
		}
	}
	// Degenerate worker counts.
	for _, w := range []int{0, 1, 1000} {
		rs := cq.BulkSelect(docs[:3], w)
		if len(rs) != 3 {
			t.Fatalf("workers=%d: %d results", w, len(rs))
		}
	}
	if rs := cq.BulkSelect(nil, 4); len(rs) != 0 {
		t.Fatal("empty input should give empty output")
	}
}
