package core

import (
	"context"
	"math/rand"
	"testing"

	"xpe/internal/ha"
	"xpe/internal/hedge"
)

func TestBulkSelectMatchesSequential(t *testing.T) {
	names := ha.NewNames()
	names.Syms.Intern("a")
	names.Syms.Intern("b")
	names.Vars.Intern("x")
	q, err := ParseQuery("select(b*; [* ; a ; b .] (a|b)*)")
	if err != nil {
		t.Fatal(err)
	}
	cq, err := CompileQuery(q, names)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	cfg := hedge.RandConfig{Symbols: []string{"a", "b"}, Vars: []string{"x"}, MaxDepth: 4, MaxWidth: 3}
	docs := make([]hedge.Hedge, 64)
	for i := range docs {
		docs[i] = hedge.Random(rng, cfg)
	}
	parallel := cq.BulkSelect(docs, 8)
	for i, d := range docs {
		want := cq.Select(d)
		got := parallel[i]
		if len(got.Paths) != len(want.Paths) {
			t.Fatalf("doc %d: %d vs %d matches", i, len(got.Paths), len(want.Paths))
		}
		for j := range want.Paths {
			if !got.Paths[j].Equal(want.Paths[j]) {
				t.Fatalf("doc %d: path %d differs", i, j)
			}
		}
	}
	// Degenerate worker counts.
	for _, w := range []int{0, 1, 1000} {
		rs := cq.BulkSelect(docs[:3], w)
		if len(rs) != 3 {
			t.Fatalf("workers=%d: %d results", w, len(rs))
		}
	}
	if rs := cq.BulkSelect(nil, 4); len(rs) != 0 {
		t.Fatal("empty input should give empty output")
	}
}

func TestBulkSelectCtx(t *testing.T) {
	names := ha.NewNames()
	names.Syms.Intern("a")
	names.Syms.Intern("b")
	q, err := ParseQuery("[* ; a ; b .] (a|b)*")
	if err != nil {
		t.Fatal(err)
	}
	cq, err := CompileQuery(q, names)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	cfg := hedge.RandConfig{Symbols: []string{"a", "b"}, Vars: []string{"x"}, MaxDepth: 3, MaxWidth: 3}
	docs := make([]hedge.Hedge, 16)
	for i := range docs {
		docs[i] = hedge.Random(rng, cfg)
	}

	// Workers exceeding the document count clamp cleanly.
	rs, err := cq.BulkSelectCtx(context.Background(), docs[:2], 50)
	if err != nil || len(rs) != 2 || rs[0] == nil || rs[1] == nil {
		t.Fatalf("workers>docs: rs=%v err=%v", rs, err)
	}

	// Zero documents: no results, no error, any worker count.
	for _, w := range []int{0, 1, 8} {
		rs, err := cq.BulkSelectCtx(context.Background(), nil, w)
		if err != nil || len(rs) != 0 {
			t.Fatalf("zero docs workers=%d: rs=%v err=%v", w, rs, err)
		}
	}

	// A pre-canceled context evaluates nothing.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		rs, err := cq.BulkSelectCtx(ctx, docs, w)
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		if len(rs) != len(docs) {
			t.Fatalf("workers=%d: partial result slice has %d entries", w, len(rs))
		}
		if w == 1 && rs[0] != nil {
			t.Fatal("sequential pre-canceled run should not evaluate doc 0")
		}
	}

	// BulkSelect stays a thin wrapper over the ctx form.
	plain := cq.BulkSelect(docs, 4)
	withCtx, err := cq.BulkSelectCtx(context.Background(), docs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if len(plain[i].Paths) != len(withCtx[i].Paths) {
			t.Fatalf("doc %d: wrapper and ctx form disagree", i)
		}
	}
}
