package core

import (
	"xpe/internal/alphabet"
	"xpe/internal/ha"
	"xpe/internal/hedge"
	"xpe/internal/hre"
	"xpe/internal/sfa"
)

// NaiveMatcher evaluates pointed hedge representations directly from the
// definitions (Definition 19): it decomposes the pointed hedge into pointed
// base hedges, tests each base hedge against each pointed base hedge
// representation by hedge-automaton membership, and checks the resulting
// candidate sequence against the top-level regular expression.
//
// It is the correctness oracle for the Algorithm 1 evaluator and the
// baseline of the naive-vs-two-pass experiment (E4): evaluating a node
// costs O(depth · |hedge|) here, so locating all nodes is quadratic, where
// Algorithm 1 is linear.
type NaiveMatcher struct {
	phr   *PHR
	names *ha.Names
	sides []*ha.NHA // per base: left automaton at 2i, right at 2i+1 (nil = any)
	expr  *sfa.NFA  // top-level regex over base indexes
}

// NewNaiveMatcher compiles the base sides once (membership tests still run
// per node per level).
func NewNaiveMatcher(phr *PHR, names *ha.Names) (*NaiveMatcher, error) {
	m := &NaiveMatcher{phr: phr, names: names}
	for _, b := range phr.Bases {
		names.Syms.Intern(b.Label)
		for _, side := range []*hre.Expr{b.Left, b.Right} {
			if side == nil {
				m.sides = append(m.sides, nil)
				continue
			}
			nha, err := hre.Compile(side, names)
			if err != nil {
				return nil, err
			}
			m.sides = append(m.sides, nha)
		}
	}
	// Top-level regex over symbols t0..tn-1 mapped to indexes.
	nfa := phr.Expr.CompileNFA(namesForBases(len(phr.Bases)))
	nfa.GrowAlphabet(len(phr.Bases))
	m.expr = nfa
	return m, nil
}

// namesForBases returns an interner pre-seeded with t0..tn-1 so base
// symbols map to their indexes.
func namesForBases(n int) *alphabet.Interner {
	in := alphabet.NewInterner()
	for i := 0; i < n; i++ {
		in.Intern(baseSymbol(i))
	}
	return in
}

// MatchesPointed reports whether the pointed hedge u matches the PHR
// (Definition 19).
func (m *NaiveMatcher) MatchesPointed(u hedge.Hedge) (bool, error) {
	bases, err := hedge.Decompose(u)
	if err != nil {
		return false, err
	}
	// Candidate base representations per decomposition position.
	cands := make([][]int, len(bases))
	for j, b := range bases {
		for i, rep := range m.phr.Bases {
			if rep.Label != b.Label {
				continue
			}
			if left := m.sides[2*i]; left != nil && !left.Accepts(b.Left) {
				continue
			}
			if right := m.sides[2*i+1]; right != nil && !right.Accepts(b.Right) {
				continue
			}
			cands[j] = append(cands[j], i)
		}
	}
	return acceptsSets(m.expr, cands), nil
}

// LocateAll returns the set of nodes of h whose envelope matches the PHR,
// by building each node's envelope and matching it independently — the
// definitional, super-linear evaluation.
func (m *NaiveMatcher) LocateAll(h hedge.Hedge) (map[*hedge.Node]bool, error) {
	out := map[*hedge.Node]bool{}
	var firstErr error
	h.Visit(func(p hedge.Path, n *hedge.Node) bool {
		if n.Kind != hedge.Elem || firstErr != nil {
			return firstErr == nil
		}
		env, err := h.Envelope(p)
		if err != nil {
			firstErr = err
			return false
		}
		ok, err := m.MatchesPointed(env)
		if err != nil {
			firstErr = err
			return false
		}
		if ok {
			out[n] = true
		}
		return true
	})
	return out, firstErr
}

// acceptsSets reports whether some word w with w[j] ∈ sets[j] is accepted
// by the NFA.
func acceptsSets(nfa *sfa.NFA, sets [][]int) bool {
	cur := nfa.EpsClosure(nfa.Start)
	for _, set := range sets {
		next := map[int]bool{}
		for _, s := range cur {
			for _, sym := range set {
				for _, t := range nfa.Trans[s][sym] {
					next[t] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		lst := make([]int, 0, len(next))
		for s := range next {
			lst = append(lst, s)
		}
		cur = nfa.EpsClosure(lst)
	}
	for _, s := range cur {
		if nfa.Accept[s] {
			return true
		}
	}
	return false
}
