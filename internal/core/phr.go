// Package core implements the paper's primary contribution: pointed hedge
// representations (Section 5), selection queries (Section 6), the
// two-traversal evaluation algorithm (Section 7, Theorem 4 and Algorithm
// 1), and the match-identifying hedge automata used for schema
// transformation (Section 8, Theorems 3 and 5).
package core

import (
	"fmt"
	"strings"

	"xpe/internal/hedge"
	"xpe/internal/hre"
	"xpe/internal/sre"
)

// BaseRep is a pointed base hedge representation (e₁, a, e₂) (Definition
// 16): Label is the condition on the node's label, Left constrains the
// elder siblings and their descendants, Right the younger siblings and
// their descendants. A nil Left or Right means "any hedge" — the special
// case that makes a PHR a classical path expression.
type BaseRep struct {
	Left  *hre.Expr // nil = any hedge
	Label string
	Right *hre.Expr // nil = any hedge
	// Bind optionally names the base: when a pointed hedge matches the
	// representation, the ancestor level matched by this base is captured
	// under the name (the Section 9 "variables" extension; see
	// CompiledPHR.LocateBindings).
	Bind string
}

// String renders the base in the package's concrete syntax.
func (b BaseRep) String() string {
	suffix := ""
	if b.Bind != "" {
		suffix = "@" + b.Bind
	}
	if b.Left == nil && b.Right == nil {
		return b.Label + suffix
	}
	render := func(e *hre.Expr) string {
		if e == nil {
			return "*"
		}
		return e.String()
	}
	return fmt.Sprintf("[%s ; %s ; %s]%s", render(b.Left), b.Label, render(b.Right), suffix)
}

// PHR is a pointed hedge representation (Definition 18): a regular
// expression over a finite set of pointed base hedge representations. Expr
// is a string regular expression whose symbol "tᵢ" denotes Bases[i].
//
// Per Definition 19 the symbol sequence is matched against the
// decomposition of a pointed hedge from the BOTTOM (the base containing η)
// to the top level; a path-expression-style root-first order must be
// reversed before constructing a PHR (see package pathexpr).
type PHR struct {
	Bases []BaseRep
	Expr  *sre.Expr
}

// baseSymbol names base i in PHR.Expr.
func baseSymbol(i int) string { return fmt.Sprintf("t%d", i) }

// String renders the PHR in the package's concrete syntax.
func (p *PHR) String() string {
	var b strings.Builder
	renderPHR(&b, p, p.Expr, 0)
	return b.String()
}

func renderPHR(b *strings.Builder, p *PHR, e *sre.Expr, prec int) {
	switch e.Kind {
	case sre.KEmpty:
		b.WriteString("[]")
	case sre.KEps:
		b.WriteString("()")
	case sre.KSym:
		var i int
		fmt.Sscanf(e.Name, "t%d", &i)
		b.WriteString(p.Bases[i].String())
	case sre.KAny:
		b.WriteByte('.')
	case sre.KCat:
		if prec > 1 {
			b.WriteByte('(')
		}
		for i, s := range e.Subs {
			if i > 0 {
				b.WriteString(", ")
			}
			renderPHR(b, p, s, 2)
		}
		if prec > 1 {
			b.WriteByte(')')
		}
	case sre.KAlt:
		if prec > 0 {
			b.WriteByte('(')
		}
		for i, s := range e.Subs {
			if i > 0 {
				b.WriteString(" | ")
			}
			renderPHR(b, p, s, 1)
		}
		if prec > 0 {
			b.WriteByte(')')
		}
	case sre.KStar:
		renderPHR(b, p, e.Subs[0], 2)
		b.WriteByte('*')
	}
}

// ParsePHR parses a pointed hedge representation. Syntax:
//
//	phr  := alt of cat of rep of atom    (same combinators as sre: | , * + ?)
//	atom := '[' side ';' NAME ';' side ']'   — explicit triple
//	      | NAME                             — sugar for [*; NAME; *]
//	      | '(' phr ')' | '()'
//	side := '*'                              — any hedge
//	      | hedge regular expression         (package hre syntax)
//
// Example (the paper's Section 5 example): "[a<~z>*^z ; b ; a<~z>*^z]*".
func ParsePHR(input string) (*PHR, error) {
	p := &phrParser{input: input}
	p.skip()
	if p.eof() {
		return nil, p.err("empty pointed hedge representation")
	}
	phr := &PHR{}
	e, err := p.alt(phr)
	if err != nil {
		return nil, err
	}
	p.skip()
	if !p.eof() {
		return nil, p.err("unexpected trailing input")
	}
	phr.Expr = e
	return phr, nil
}

// MustParsePHR is ParsePHR, panicking on error.
func MustParsePHR(input string) *PHR {
	p, err := ParsePHR(input)
	if err != nil {
		panic(err)
	}
	return p
}

type phrParser struct {
	input string
	pos   int
}

func (p *phrParser) err(msg string) error {
	return &SyntaxError{Input: p.input, Offset: p.pos, Msg: msg}
}

func (p *phrParser) eof() bool { return p.pos >= len(p.input) }

func (p *phrParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.input[p.pos]
}

func (p *phrParser) skip() {
	for !p.eof() {
		switch p.input[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *phrParser) alt(phr *PHR) (*sre.Expr, error) {
	first, err := p.cat(phr)
	if err != nil {
		return nil, err
	}
	subs := []*sre.Expr{first}
	for {
		p.skip()
		if p.peek() != '|' {
			break
		}
		p.pos++
		next, err := p.cat(phr)
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	return sre.Alt(subs...), nil
}

func (p *phrParser) cat(phr *PHR) (*sre.Expr, error) {
	first, err := p.rep(phr)
	if err != nil {
		return nil, err
	}
	subs := []*sre.Expr{first}
	for {
		p.skip()
		c := p.peek()
		if c == ',' {
			p.pos++
			p.skip()
			c = p.peek()
			if !phrStartsAtom(c) {
				return nil, p.err("expected expression after ','")
			}
		}
		if !phrStartsAtom(c) {
			break
		}
		next, err := p.rep(phr)
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	return sre.Cat(subs...), nil
}

func phrStartsAtom(c byte) bool {
	return c == '(' || c == '[' || c == '_' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (p *phrParser) rep(phr *PHR) (*sre.Expr, error) {
	e, err := p.atom(phr)
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		switch p.peek() {
		case '*':
			p.pos++
			e = sre.Star(e)
		case '+':
			p.pos++
			e = sre.Plus(e)
		case '?':
			p.pos++
			e = sre.Opt(e)
		default:
			return e, nil
		}
	}
}

func (p *phrParser) atom(phr *PHR) (*sre.Expr, error) {
	p.skip()
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		p.skip()
		if p.peek() == ')' {
			p.pos++
			return sre.Eps(), nil
		}
		e, err := p.alt(phr)
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.peek() != ')' {
			return nil, p.err("expected ')'")
		}
		p.pos++
		return e, nil
	case c == '[':
		p.pos++
		left, err := p.side()
		if err != nil {
			return nil, err
		}
		if err := p.expect(';'); err != nil {
			return nil, err
		}
		label, err := p.name()
		if err != nil {
			return nil, err
		}
		if err := p.expect(';'); err != nil {
			return nil, err
		}
		right, err := p.side()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.peek() != ']' {
			return nil, p.err("expected ']'")
		}
		p.pos++
		return p.addBase(phr, BaseRep{Left: left, Label: label, Right: right})
	case phrStartsAtom(c):
		label, err := p.name()
		if err != nil {
			return nil, err
		}
		return p.addBase(phr, BaseRep{Label: label})
	default:
		return nil, p.err("expected a base ('[e;a;e]' or a name) or '('")
	}
}

func (p *phrParser) addBase(phr *PHR, b BaseRep) (*sre.Expr, error) {
	// Optional binding suffix '@name' (the Section 9 variables extension).
	p.skip()
	if p.peek() == '@' {
		p.pos++
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		b.Bind = name
	}
	phr.Bases = append(phr.Bases, b)
	return sre.Sym(baseSymbol(len(phr.Bases) - 1)), nil
}

func (p *phrParser) name() (string, error) {
	p.skip()
	start := p.pos
	if p.eof() {
		return "", p.err("expected a name")
	}
	c := p.input[p.pos]
	if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
		return "", p.err("expected a name")
	}
	p.pos++
	for !p.eof() {
		c := p.input[p.pos]
		if c == '_' || c == '-' || c == '.' ||
			c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			p.pos++
			continue
		}
		break
	}
	return p.input[start:p.pos], nil
}

func (p *phrParser) expect(c byte) error {
	p.skip()
	if p.peek() != c {
		return p.err(fmt.Sprintf("expected %q", string(c)))
	}
	p.pos++
	return nil
}

// side parses '*' or an embedded hedge regular expression, scanning up to
// the next top-level ';' or ']'.
func (p *phrParser) side() (*hre.Expr, error) {
	p.skip()
	if p.peek() == '*' {
		// '*' alone means any hedge — but only if followed by ';' or ']'.
		save := p.pos
		p.pos++
		p.skip()
		if p.peek() == ';' || p.peek() == ']' {
			return nil, nil
		}
		p.pos = save
	}
	start := p.pos
	depth := 0
	for !p.eof() {
		switch p.input[p.pos] {
		case '<', '(':
			depth++
		case '>', ')':
			depth--
		case ';':
			if depth == 0 {
				e, err := hre.Parse(strings.TrimSpace(p.input[start:p.pos]))
				if err != nil {
					return nil, fmt.Errorf("phr: in side expression: %w", err)
				}
				return e, nil
			}
		case ']':
			if depth == 0 {
				e, err := hre.Parse(strings.TrimSpace(p.input[start:p.pos]))
				if err != nil {
					return nil, fmt.Errorf("phr: in side expression: %w", err)
				}
				return e, nil
			}
		}
		p.pos++
	}
	return nil, p.err("unterminated base")
}

// PathExpression builds the PHR corresponding to a classical path
// expression: a regular expression over node labels, interpreted on the
// path from the node to the TOP level (bottom-up, matching Definition 19).
// Every sibling condition is "any hedge".
func PathExpression(labels *sre.Expr) *PHR {
	phr := &PHR{}
	var convert func(e *sre.Expr) *sre.Expr
	convert = func(e *sre.Expr) *sre.Expr {
		switch e.Kind {
		case sre.KSym:
			phr.Bases = append(phr.Bases, BaseRep{Label: e.Name})
			return sre.Sym(baseSymbol(len(phr.Bases) - 1))
		case sre.KCat, sre.KAlt, sre.KStar:
			subs := make([]*sre.Expr, len(e.Subs))
			for i, s := range e.Subs {
				subs[i] = convert(s)
			}
			return &sre.Expr{Kind: e.Kind, Subs: subs}
		default:
			return e
		}
	}
	phr.Expr = convert(labels)
	return phr
}

// EnvelopeOf is a convenience wrapper around hedge.Envelope for query
// evaluation.
func EnvelopeOf(h hedge.Hedge, p hedge.Path) (hedge.Hedge, error) {
	return h.Envelope(p)
}
