package core

import (
	"runtime"
	"sync"

	"xpe/internal/hedge"
)

// BulkSelect evaluates the query over many documents concurrently and
// returns one Result per document, in input order. The compiled query is
// immutable after compilation except for the recycled evaluation arenas
// and the lazily-determinized mirror automaton, both of which are safe
// under concurrency (sync.Pool; the mirror is locked); a server answering
// the same query over a document stream is the intended shape.
func (cq *CompiledQuery) BulkSelect(docs []hedge.Hedge, workers int) []*Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	out := make([]*Result, len(docs))
	if workers <= 1 {
		for i, d := range docs {
			out[i] = cq.Select(d)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = cq.Select(docs[i])
			}
		}()
	}
	for i := range docs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
