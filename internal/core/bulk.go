package core

import (
	"context"
	"runtime"
	"sync"

	"xpe/internal/hedge"
)

// BulkSelect evaluates the query over many documents concurrently and
// returns one Result per document, in input order. The compiled query is
// immutable after compilation except for the recycled evaluation arenas
// and the lazily-determinized mirror automaton, both of which are safe
// under concurrency (sync.Pool; the mirror is locked); a server answering
// the same query over a document stream is the intended shape. When a
// metrics sink is attached (SetMetrics), every worker's Select flushes
// into it atomically, so bulk runs are observable while in flight.
func (cq *CompiledQuery) BulkSelect(docs []hedge.Hedge, workers int) []*Result {
	out, _ := cq.BulkSelectCtx(context.Background(), docs, workers)
	return out
}

// BulkSelectCtx is BulkSelect under a context: when ctx is canceled the
// remaining documents are abandoned and ctx.Err() is returned alongside the
// partial results (entries for unevaluated documents are nil).
func (cq *CompiledQuery) BulkSelectCtx(ctx context.Context, docs []hedge.Hedge, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	out := make([]*Result, len(docs))
	if workers <= 1 {
		for i, d := range docs {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			out[i] = cq.Select(d)
		}
		return out, ctx.Err()
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = cq.Select(docs[i])
			}
		}()
	}
	var err error
dispatch:
	for i := range docs {
		select {
		case next <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err == nil {
		err = ctx.Err()
	}
	return out, err
}
