package core

import (
	"math/rand"
	"testing"

	"xpe/internal/ha"
	"xpe/internal/hedge"
)

func TestParsePHR(t *testing.T) {
	cases := []string{
		"a",
		"a, b",
		"(a | b)*",
		"[() ; a ; b] [b ; a ; ()]",
		"[a<~z>*^z ; b ; a<~z>*^z]*",
		"[* ; figure ; table .]",
		"section* figure",
	}
	for _, src := range cases {
		p, err := ParsePHR(src)
		if err != nil {
			t.Fatalf("ParsePHR(%q): %v", src, err)
		}
		if _, err := ParsePHR(p.String()); err != nil {
			t.Fatalf("re-parse of %q → %q: %v", src, p.String(), err)
		}
	}
}

func TestParsePHRErrors(t *testing.T) {
	bad := []string{"", "[a; b]", "[;;]", "[a ; b ; c", "(a", "a |", "[* ; * ; *]"}
	for _, src := range bad {
		if _, err := ParsePHR(src); err == nil {
			t.Errorf("ParsePHR(%q) succeeded, want error", src)
		}
	}
}

// locate runs the compiled evaluator and returns the located paths as
// strings.
func locate(t *testing.T, phrSrc string, h hedge.Hedge) map[string]bool {
	t.Helper()
	names := ha.NewNames()
	internHedge(names, h)
	phr := MustParsePHR(phrSrc)
	c, err := CompilePHR(phr, names)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Locate(h)
	out := map[string]bool{}
	for _, p := range res.Paths {
		out[p.String()] = true
	}
	return out
}

func internHedge(names *ha.Names, h hedge.Hedge) {
	syms, vars, _ := h.Labels()
	for _, s := range syms {
		names.Syms.Intern(s)
	}
	for _, v := range vars {
		names.Vars.Intern(v)
	}
}

func TestPaperSection5Example(t *testing.T) {
	// (a⟨z⟩*^z, b, a⟨z⟩*^z)* matches a pointed hedge iff the parent of η
	// and all its ancestors are labeled b and all other nodes are a.
	phrSrc := "[a<~z>*^z ; b ; a<~z>*^z]*"
	names := ha.NewNames()
	names.Syms.Intern("a")
	names.Syms.Intern("b")
	phr := MustParsePHR(phrSrc)
	c, err := CompilePHR(phr, names)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pointed string
		want    bool
	}{
		{"b<@>", true},
		{"a b<@> a", true},
		{"b<b<@>>", true},
		{"a<a> b<b<@> a<a>> a", true},
		{"a<@>", false},      // parent of η is a
		{"b<a<@>>", false},   // parent of η is a
		{"a<b<@>>", false},   // ancestor a
		{"b b<@>", false},    // sibling b is not allowed (must be a)
		{"b<@> b", false},    // younger sibling b
		{"a<b> b<@>", false}, // descendant of sibling is b
	}
	for _, cse := range cases {
		u := hedge.MustParse(cse.pointed)
		got, err := c.MatchesPointed(u)
		if err != nil {
			t.Fatalf("%q: %v", cse.pointed, err)
		}
		if got != cse.want {
			t.Errorf("MatchesPointed(%q) = %v, want %v", cse.pointed, got, cse.want)
		}
		// Naive matcher must agree.
		nm, err := NewNaiveMatcher(phr, names)
		if err != nil {
			t.Fatal(err)
		}
		ngot, err := nm.MatchesPointed(u)
		if err != nil {
			t.Fatal(err)
		}
		if ngot != cse.want {
			t.Errorf("naive MatchesPointed(%q) = %v, want %v", cse.pointed, ngot, cse.want)
		}
	}
}

func TestPaperSection6Example(t *testing.T) {
	// select((b|x)*, (ε,a,b)(b,a,ε)) locates the first second-level node of
	// the second top-level node of ba⟨a⟨bx⟩b⟩.
	h := hedge.MustParse("b a<a<b $x> b>")
	names := ha.NewNames()
	internHedge(names, h)
	q, err := ParseQuery("select(($b | $x)*; [() ; a ; b] [b ; a ; ()])")
	if err != nil {
		t.Fatal(err)
	}
	_ = q
	// NOTE: in the paper, e₁ = (b|x)* ranges over a leaf b and a variable
	// x. In our syntax b is an element leaf and $x a variable:
	q2, err := ParseQuery("select((b | $x)*; [() ; a ; b] [b ; a ; ()])")
	if err != nil {
		t.Fatal(err)
	}
	cq, err := CompileQuery(q2, names)
	if err != nil {
		t.Fatal(err)
	}
	res := cq.Select(h)
	if len(res.Paths) != 1 || res.Paths[0].String() != "2.1" {
		t.Fatalf("located %v, want exactly [2.1]", res.Paths)
	}
	// Naive agreement.
	naive, err := SelectNaive(q2, ha.NewNames(), h)
	if err != nil {
		t.Fatal(err)
	}
	if len(naive) != 1 || !naive[h[1].Children[0]] {
		t.Fatalf("naive located wrong set")
	}
}

func TestPathExpressionIntroExample(t *testing.T) {
	// (section*, figure) from the introduction: figures in sections at any
	// depth. Bottom-up order: figure then section*.
	h := hedge.MustParse("doc<section<figure<caption> section<figure>> intro figure>")
	got := locate(t, "figure section* [* ; doc ; *]", h)
	want := map[string]bool{"1.1.1": true, "1.1.2.1": true, "1.3": true}
	if len(got) != len(want) {
		t.Fatalf("located %v, want %v", got, want)
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("missing %v (got %v)", p, got)
		}
	}
}

func TestSiblingCondition(t *testing.T) {
	// Locate every figure whose immediately following sibling is a table —
	// the introduction's motivating example that classical path expressions
	// cannot express.
	h := hedge.MustParse("doc<figure table figure note figure> doc<figure>")
	any := "a<~z>*^z" // not used; sides below
	_ = any
	got := locate(t, "[* ; figure ; table .*] [* ; doc ; *]", h)
	want := map[string]bool{"1.1": true}
	if len(got) != 1 || !got["1.1"] {
		t.Fatalf("located %v, want %v", got, want)
	}
}

// phrCorpus is a set of PHRs exercising labels, sides, and combinators,
// used for randomized naive-vs-Algorithm-1 agreement.
var phrCorpus = []string{
	"a",
	"b*",
	"a b*",
	"(a | b)*",
	"[() ; a ; *]",
	"[* ; a ; ()]",
	"[b ; a ; *] b*",
	"[(a|b)* ; a ; *]",
	"[a<~z>*^z ; b ; a<~z>*^z]*",
	"[b<$x> ; a ; *] (a | b)*",
	"[* ; a ; b b] a*",
	"a (b a)*",
}

func TestNaiveVsAlgorithm1Random(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cfg := hedge.RandConfig{Symbols: []string{"a", "b"}, Vars: []string{"x"}, MaxDepth: 4, MaxWidth: 3}
	for _, src := range phrCorpus {
		phr := MustParsePHR(src)
		names := ha.NewNames()
		names.Syms.Intern("a")
		names.Syms.Intern("b")
		names.Vars.Intern("x")
		compiled, err := CompilePHR(phr, names)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		naive, err := NewNaiveMatcher(phr, names)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		for i := 0; i < 60; i++ {
			h := hedge.Random(rng, cfg)
			fast := compiled.Locate(h)
			slow, err := naive.LocateAll(h)
			if err != nil {
				t.Fatal(err)
			}
			h.Visit(func(p hedge.Path, n *hedge.Node) bool {
				if fast.Located[n] != slow[n] {
					t.Fatalf("%q: disagreement at %v in %q: fast=%v naive=%v",
						src, p, h, fast.Located[n], slow[n])
				}
				return true
			})
		}
	}
}

func TestMatchesPointedAgreesOnRandomPointed(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfg := hedge.RandConfig{Symbols: []string{"a", "b"}, Vars: []string{"x"}, MaxDepth: 4, MaxWidth: 3}
	for _, src := range phrCorpus {
		phr := MustParsePHR(src)
		names := ha.NewNames()
		names.Syms.Intern("a")
		names.Syms.Intern("b")
		names.Vars.Intern("x")
		compiled, err := CompilePHR(phr, names)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := NewNaiveMatcher(phr, names)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			u := hedge.RandomPointed(rng, cfg)
			fast, err := compiled.MatchesPointed(u)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := naive.MatchesPointed(u)
			if err != nil {
				t.Fatal(err)
			}
			if fast != slow {
				t.Fatalf("%q: MatchesPointed disagreement on %q: fast=%v naive=%v", src, u, fast, slow)
			}
		}
	}
}

func TestSelectQueryNaiveVsCompiled(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	cfg := hedge.RandConfig{Symbols: []string{"a", "b"}, Vars: []string{"x"}, MaxDepth: 4, MaxWidth: 3}
	queries := []string{
		"select(b*; a (a|b)*)",
		"select((a<~z>*^z); [* ; b ; *] (a | b)*)",
		"select(*; a*)",
		"select((b | $x)*; [() ; a ; b] [b ; a ; ()])",
	}
	for _, qsrc := range queries {
		q, err := ParseQuery(qsrc)
		if err != nil {
			t.Fatalf("%q: %v", qsrc, err)
		}
		names := ha.NewNames()
		names.Syms.Intern("a")
		names.Syms.Intern("b")
		names.Vars.Intern("x")
		cq, err := CompileQuery(q, names)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			h := hedge.Random(rng, cfg)
			fast := cq.Select(h)
			slow, err := SelectNaive(q, names, h)
			if err != nil {
				t.Fatal(err)
			}
			h.Visit(func(p hedge.Path, n *hedge.Node) bool {
				if fast.Located[n] != slow[n] {
					t.Fatalf("%q: disagreement at %v in %q", qsrc, p, h)
				}
				return true
			})
		}
	}
}

func TestParseQueryForms(t *testing.T) {
	q, err := ParseQuery("a b*")
	if err != nil || q.Subhedge != nil {
		t.Fatalf("bare PHR form failed: %v", err)
	}
	q, err = ParseQuery("select(b*; a)")
	if err != nil || q.Subhedge == nil {
		t.Fatalf("select form failed: %v", err)
	}
	if q.String() != "select(b*; a)" {
		t.Fatalf("String = %q", q.String())
	}
	if _, err := ParseQuery("select(b*)"); err == nil {
		t.Fatal("select without ';' should fail")
	}
}

func TestParseQueryWhitespace(t *testing.T) {
	// The select(...) form must be recognized under leading whitespace and
	// CRLF line endings — previously the untrimmed prefix test fell through
	// to ParsePHR, which rejects 'select' syntax.
	for _, src := range []string{
		"  select(b*; a)",
		"\tselect(b*; a)",
		"\r\nselect(b*; a)\r\n",
		"select(b*; a)\r",
		"a b*\r",
		"\r\n a b* \r\n",
	} {
		q, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", src, err)
		}
		if _, err := ParseQuery(q.String()); err != nil {
			t.Fatalf("re-parse of %q → %q: %v", src, q.String(), err)
		}
	}
}

func TestParseQueryUnmatchedClosers(t *testing.T) {
	// A stray closer at depth 0 used to drive the depth negative, hiding a
	// later top-level ';' (depth -1 ≠ 0) and producing a misleading
	// trailing error. It must be reported at the offending byte.
	cases := []struct {
		src  string
		off  int // expected SyntaxError offset into src
		stop byte
	}{
		{"select(a); b)", 8, ')'},
		{"select(a]; b)", 8, ']'},
		{"select(a>; b)", 8, '>'},
		{"  select(a); b)", 10, ')'},
	}
	for _, c := range cases {
		_, err := ParseQuery(c.src)
		if err == nil {
			t.Fatalf("ParseQuery(%q) should fail", c.src)
		}
		se, ok := err.(*SyntaxError)
		if !ok {
			t.Fatalf("ParseQuery(%q) error type %T, want *SyntaxError", c.src, err)
		}
		if se.Offset != c.off || se.Input[se.Offset] != c.stop {
			t.Errorf("ParseQuery(%q) offset %d (byte %q), want %d (%q)",
				c.src, se.Offset, se.Input[se.Offset], c.off, c.stop)
		}
	}
	// The historical "select(e1)" shape keeps its dedicated message.
	_, err := ParseQuery("select(b*)")
	if se, ok := err.(*SyntaxError); !ok || se.Msg != "select(...) needs 'e1; phr'" {
		t.Errorf("ParseQuery(select(b*)) = %v, want needs-'e1; phr' syntax error", err)
	}
}

func TestPathExpressionHelper(t *testing.T) {
	// PathExpression turns a label regex into an all-sides-any PHR.
	phr := MustParsePHR("figure section*")
	if phr.Bases[0].Left != nil || phr.Bases[0].Right != nil {
		t.Fatal("sugar bases should have any sides")
	}
	h := hedge.MustParse("section<section<figure> figure> figure")
	got := locate(t, "figure section*", h)
	for _, p := range []string{"1.1.1", "1.2", "2"} {
		if !got[p] {
			t.Fatalf("missing %v in %v", p, got)
		}
	}
}

func TestLocateEmptyAndUnknownSymbols(t *testing.T) {
	names := ha.NewNames()
	names.Syms.Intern("a")
	c, err := CompilePHR(MustParsePHR("a*"), names)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Locate(nil)
	if len(res.Located) != 0 {
		t.Fatal("empty hedge should locate nothing")
	}
	// Unknown symbols must not crash and must not match label a.
	h := hedge.Hedge{hedge.NewElem("zzz", hedge.NewElem("a"))}
	res = c.Locate(h)
	if res.Located[h[0]] {
		t.Fatal("zzz should not match")
	}
	// a under zzz: path a, zzz — "a*" requires ALL levels a, so not
	// located.
	if res.Located[h[0].Children[0]] {
		t.Fatal("a under zzz should not match a*")
	}
}
