package core

import (
	"testing"

	"xpe/internal/ha"
	"xpe/internal/hedge"
)

func compileExplain(t *testing.T, src string) *CompiledQuery {
	t.Helper()
	names := ha.NewNames()
	for _, s := range []string{"doc", "sec", "fig", "tab", "par"} {
		names.Syms.Intern(s)
	}
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := CompileQuery(q, names)
	if err != nil {
		t.Fatal(err)
	}
	return cq
}

func TestExplainAgreesWithSelectEach(t *testing.T) {
	cases := []struct {
		query, doc string
	}{
		{"fig sec* [* ; doc ; *]", "doc<sec<fig sec<fig tab>> fig>"},
		{"[* ; fig ; tab] (sec|doc)*", "doc<sec<fig tab> sec<tab fig>>"},
		{"select(fig*; sec doc)", "doc<sec<fig fig> sec<par>>"},
		{"fig doc*", "doc<fig> fig<> sec<fig>"},
	}
	for _, c := range cases {
		cq := compileExplain(t, c.query)
		h := hedge.MustParse(c.doc)
		var want []string
		cq.SelectEach(h, func(p hedge.Path, n *hedge.Node) bool {
			want = append(want, p.String())
			return true
		})
		var got []string
		cq.ExplainEach(h, func(w Witness, n *hedge.Node) bool {
			got = append(got, w.Path.String())
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("%s on %s: ExplainEach found %v, SelectEach %v", c.query, c.doc, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s on %s: match %d: Explain %s vs Select %s", c.query, c.doc, i, got[i], want[i])
			}
		}
	}
}

func TestExplainWitnessShape(t *testing.T) {
	cq := compileExplain(t, "fig sec* [* ; doc ; *]")
	h := hedge.MustParse("doc<sec<fig sec<fig>> fig>")
	count := 0
	cq.ExplainEach(h, func(w Witness, n *hedge.Node) bool {
		count++
		if n.Name != "fig" {
			t.Errorf("located %q, want fig", n.Name)
		}
		if w.Subhedge {
			t.Error("query has no e1, Subhedge should be false")
		}
		if len(w.Levels) != len(w.Path) {
			t.Fatalf("at %s: %d levels for a %d-deep path", w.Path, len(w.Levels), len(w.Path))
		}
		// The spine's labels follow the document: top level is doc, the
		// located level is fig.
		if w.Levels[0].Name != "doc" {
			t.Errorf("at %s: top level is %q, want doc", w.Path, w.Levels[0].Name)
		}
		if last := w.Levels[len(w.Levels)-1]; last.Name != "fig" {
			t.Errorf("at %s: node level is %q, want fig", w.Path, last.Name)
		}
		for k, lv := range w.Levels {
			if lv.Fired < 0 || lv.Fired >= cq.NumBases() {
				t.Errorf("at %s level %d: fired base %d out of range", w.Path, k, lv.Fired)
			}
			found := false
			for _, c := range lv.Candidates {
				if c == lv.Fired {
					found = true
				}
			}
			if !found {
				t.Errorf("at %s level %d: fired base %d not among candidates %v",
					w.Path, k, lv.Fired, lv.Candidates)
			}
		}
		return true
	})
	if count != 3 {
		t.Fatalf("located %d, want 3", count)
	}
}

// TestExplainFiredBases pins the reconstructed base assignment for a
// query whose decomposition is unambiguous: the PHR "fig sec* [*;doc;*]"
// has bases 0=fig, 1=sec, 2=[*;doc;*], read from the node's level up.
func TestExplainFiredBases(t *testing.T) {
	cq := compileExplain(t, "fig sec* [* ; doc ; *]")
	if cq.NumBases() != 3 {
		t.Fatalf("NumBases = %d, want 3", cq.NumBases())
	}
	if got := cq.BaseString(0); got != "fig" {
		t.Fatalf("base 0 renders %q, want fig", got)
	}
	h := hedge.MustParse("doc<sec<sec<fig>>>")
	var witnesses []Witness
	cq.ExplainEach(h, func(w Witness, n *hedge.Node) bool {
		witnesses = append(witnesses, w)
		return true
	})
	if len(witnesses) != 1 {
		t.Fatalf("located %d, want 1", len(witnesses))
	}
	w := witnesses[0]
	if w.Path.String() != "1.1.1.1" {
		t.Fatalf("located %s, want 1.1.1.1", w.Path)
	}
	// Top-down the spine reads doc sec sec fig; the PHR reads bottom-up
	// fig sec* doc, so fired bases top-down are 2 1 1 0.
	wantFired := []int{2, 1, 1, 0}
	for k, lv := range w.Levels {
		if lv.Fired != wantFired[k] {
			t.Errorf("level %d (%s): fired %d, want %d", k, lv.Name, lv.Fired, wantFired[k])
		}
	}
}

func TestExplainSubhedgeCondition(t *testing.T) {
	cq := compileExplain(t, "select(fig*; sec doc)")
	h := hedge.MustParse("doc<sec<fig fig> sec<par> sec<>>")
	var paths []string
	cq.ExplainEach(h, func(w Witness, n *hedge.Node) bool {
		if !w.Subhedge {
			t.Error("query has an e1, Subhedge should be true")
		}
		paths = append(paths, w.Path.String())
		return true
	})
	// sec<par> fails e1 = fig*; sec<fig fig> and the empty sec pass.
	if len(paths) != 2 || paths[0] != "1.1" || paths[1] != "1.3" {
		t.Fatalf("located %v, want [1.1 1.3]", paths)
	}
}

func TestExplainEarlyStop(t *testing.T) {
	cq := compileExplain(t, "fig doc*")
	h := hedge.MustParse("doc<fig fig fig>")
	n := 0
	done := cq.ExplainEach(h, func(w Witness, _ *hedge.Node) bool {
		n++
		return n < 2
	})
	if done || n != 2 {
		t.Fatalf("done=%v after %d matches, want early stop after 2", done, n)
	}
}

func TestExplainMirrorStatesFollowSpine(t *testing.T) {
	// Sibling-sensitive envelope: the state sequence must reflect the
	// stepped candidate sets, and repeated evaluation of one compilation
	// must yield identical state ids (lazy interning is deterministic per
	// compilation and evaluation order).
	cq := compileExplain(t, "[* ; fig ; tab] (sec|doc)*")
	h := hedge.MustParse("doc<sec<fig tab> sec<tab fig>>")
	run := func() [][]int {
		var out [][]int
		cq.ExplainEach(h, func(w Witness, _ *hedge.Node) bool {
			states := make([]int, len(w.Levels))
			for i, lv := range w.Levels {
				states[i] = lv.State
			}
			out = append(out, states)
			return true
		})
		return out
	}
	first, second := run(), run()
	if len(first) != 1 {
		t.Fatalf("located %d, want 1 (only the fig before a tab)", len(first))
	}
	for i := range first {
		for j := range first[i] {
			if first[i][j] != second[i][j] {
				t.Fatalf("state ids drifted between runs: %v vs %v", first, second)
			}
		}
	}
}
