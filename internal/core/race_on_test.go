//go:build race

package core

// raceEnabled reports whether the race detector is active; allocation
// differential tests skip under it (the detector randomly drops
// sync.Pool items, perturbing AllocsPerRun).
const raceEnabled = true
