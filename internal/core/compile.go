package core

import (
	"fmt"
	"sync"

	"xpe/internal/alphabet"
	"xpe/internal/ha"
	"xpe/internal/hedge"
	"xpe/internal/hre"
	"xpe/internal/metrics"
	"xpe/internal/sfa"
)

// CompiledPHR is the executable form of a pointed hedge representation —
// the (M, ≡, L) triple of Theorem 4 in evaluation-ready shape:
//
//   - the component automata realize the single deterministic hedge
//     automaton M: one complete DHA per distinct side expression, run in
//     lockstep (their product is M; materializing the product is deferred
//     to the match-identifying construction, which needs it explicitly);
//   - the right-invariant equivalence ≡ is used only through which final
//     sets Fᵢ₁/Fᵢ₂ a class is contained in, so the evaluator computes
//     exactly those membership bits: forward DFA runs for elder siblings,
//     reversed-DFA runs for younger siblings;
//   - the regular set L is represented by the mirror automaton N
//     (Theorem 4's deterministic string automaton accepting the mirror
//     image of L), lazily determinized over the concrete membership-bit
//     symbols and evaluated top-down in the second traversal.
type CompiledPHR struct {
	PHR   *PHR
	Names *ha.Names

	// Gen is the alphabet generation (Names.Generation) the side automata
	// were compiled against. The closed-world machinery — component DHAs
	// complete over the interned alphabet, '.'-side desugaring — is exact
	// for documents whose labels were interned at or before Gen; callers
	// that intern labels afterwards must recompile (the xpe facade does so
	// transparently through its compiled-query cache).
	Gen uint64

	comps []*component // deduplicated side automata
	// Per base: component index of each side (-1 = any hedge).
	leftComp, rightComp []int
	labels              []int // base → interned label symbol

	mirror *mirrorDFA

	// arenas recycles annotation slabs across Locate/Select calls, so the
	// first traversal costs two slab reslices instead of zeroing fresh
	// pages per call (which would dominate on megabyte-scale documents).
	arenas sync.Pool

	// metrics, when non-nil, receives one flush of evaluation counters per
	// Locate call. Work counts accumulate in the per-call arena as plain
	// integer arithmetic regardless; the nil check gates only the atomic
	// flush, so detached evaluation pays no synchronization.
	metrics *metrics.Eval
}

// SetMetrics attaches (or, with nil, detaches) an evaluation sink: every
// Locate flushes its node, mark, and transition counts there. Do not call
// concurrently with evaluation.
func (c *CompiledPHR) SetMetrics(m *metrics.Eval) { c.metrics = m }

// component is one side automaton: a complete DHA plus its final membership
// DFAs in both directions — or, in lazy mode, an on-demand subset
// construction behind the same stepping surface.
type component struct {
	dha  *ha.DHA
	sink int      // state assigned to nodes outside the interned alphabet
	fwd  *sfa.DFA // complete final DFA over dha states (prefix membership)
	bwd  *sfa.DFA // complete DFA of the reversed final language (suffix membership)

	// lazy, when non-nil, replaces dha/fwd/bwd on the evaluation paths:
	// states and transitions materialize as documents demand them. The
	// source NHA is retained so schema-level constructions (which need the
	// concrete DFAs) can materialize the eager structures on first use.
	lazy     *ha.LazyDet
	nha      *ha.NHA
	eager    sync.Once
	minimize bool
}

// materialize builds the eager structures of a lazily compiled component.
// Evaluation keeps using the lazy path (stateOf and the membership passes
// branch on comp.lazy); the eager DFAs exist only for schema-level
// constructions like BuildMatchAutomaton, which run their own product
// exploration and never mix states with the lazy ids.
func (comp *component) materialize() {
	if comp.lazy == nil {
		return
	}
	comp.eager.Do(func() {
		det := comp.nha.Determinize()
		fwd := det.DHA.Final.Complete()
		bwd := det.DHA.Final.Reverse().Determinize().Complete()
		if comp.minimize {
			fwd = fwd.Minimize()
			bwd = bwd.Minimize()
		}
		comp.dha, comp.fwd, comp.bwd = det.DHA, fwd, bwd
	})
}

// Options tunes PHR compilation; the zero value is the default
// configuration (used by CompilePHR).
type Options struct {
	// SkipMinimize disables Hopcroft-style minimization of the sibling
	// membership DFAs. Minimization is a design choice the ablation
	// benchmark (BenchmarkAblationMinimize) measures: it shrinks the
	// machines the two traversals step through at some extra compile cost.
	SkipMinimize bool

	// LazyDeterminize defers the Theorem 1 subset construction: side and
	// subhedge automata are compiled into on-demand caches (ha.LazyDet)
	// whose states materialize only as documents demand them, so the
	// exponential eager worst case (the C1 caveat) is paid proportionally
	// to input diversity instead of up front. Membership answers are
	// identical to the eager construction (the differential suite pins
	// this); SkipMinimize is irrelevant on the lazy evaluation path.
	LazyDeterminize bool

	// LazyTransitionBudget caps the cached transitions per lazy automaton:
	// exceeding it flushes the transition maps (states survive, so ids stay
	// valid) and counts an eviction. Zero means
	// ha.DefaultLazyTransitionBudget; negative disables the bound. Ignored
	// unless LazyDeterminize is set.
	LazyTransitionBudget int
}

// CompilePHR compiles a pointed hedge representation for Algorithm 1
// evaluation. Symbols mentioned by the PHR and its side expressions are
// interned into names; callers should intern the document alphabet they
// care about into the same names before compiling, so the side automata are
// complete over it (side expressions constrain only interned symbols;
// unknown document symbols land in the automaton sink and fail side
// conditions, matching the closed-world reading of Definition 17).
func CompilePHR(phr *PHR, names *ha.Names) (*CompiledPHR, error) {
	return CompilePHROpt(phr, names, Options{})
}

// internExprAlphabet interns every symbol, variable, and substitution
// variable mentioned by e into names. Interning ahead of automaton
// construction pins the alphabet generation: the build that follows interns
// nothing new, so the captured generation is exact for the compiled
// machinery (absent concurrent interning, which the generation mismatch
// then reports conservatively).
func internExprAlphabet(e *hre.Expr, names *ha.Names) {
	if e == nil {
		return
	}
	syms, vars, substs := e.Names()
	for _, a := range syms {
		names.Syms.Intern(a)
	}
	for _, x := range vars {
		names.Vars.Intern(x)
	}
	for _, z := range substs {
		names.Vars.Intern(ha.SubstVarName(z))
	}
}

// internPHRAlphabet interns every name the PHR mentions (base labels and
// both side expressions of every base).
func internPHRAlphabet(phr *PHR, names *ha.Names) {
	for _, b := range phr.Bases {
		names.Syms.Intern(b.Label)
		internExprAlphabet(b.Left, names)
		internExprAlphabet(b.Right, names)
	}
}

// CompilePHROpt is CompilePHR with explicit options.
func CompilePHROpt(phr *PHR, names *ha.Names, opts Options) (*CompiledPHR, error) {
	if len(phr.Bases) > 60 {
		return nil, fmt.Errorf("core: at most 60 base representations supported, have %d", len(phr.Bases))
	}
	// Intern the PHR's own alphabet first, then capture the generation:
	// the automaton build below re-interns the same names idempotently, so
	// Gen is the exact closed world the side automata range over.
	internPHRAlphabet(phr, names)
	c := &CompiledPHR{PHR: phr, Names: names, Gen: names.Generation()}
	byKey := map[string]int{}
	compileSide := func(e *hre.Expr) (int, error) {
		if e == nil {
			return -1, nil
		}
		key := e.String()
		if idx, ok := byKey[key]; ok {
			return idx, nil
		}
		nha, err := hre.Compile(e, names)
		if err != nil {
			return 0, err
		}
		var comp *component
		if opts.LazyDeterminize {
			lz := nha.LazyDeterminize(ha.LazyOptions{TransitionBudget: opts.LazyTransitionBudget})
			comp = &component{lazy: lz, nha: nha, sink: lz.Sink(), minimize: !opts.SkipMinimize}
		} else {
			det := nha.Determinize()
			comp = &component{dha: det.DHA, sink: det.Subsets.Lookup(nil)}
			comp.fwd = comp.dha.Final.Complete()
			comp.bwd = comp.dha.Final.Reverse().Determinize().Complete()
			if !opts.SkipMinimize {
				comp.fwd = comp.fwd.Minimize()
				comp.bwd = comp.bwd.Minimize()
			}
		}
		idx := len(c.comps)
		c.comps = append(c.comps, comp)
		byKey[key] = idx
		return idx, nil
	}
	for _, b := range phr.Bases {
		c.labels = append(c.labels, names.Syms.Intern(b.Label))
		li, err := compileSide(b.Left)
		if err != nil {
			return nil, err
		}
		ri, err := compileSide(b.Right)
		if err != nil {
			return nil, err
		}
		c.leftComp = append(c.leftComp, li)
		c.rightComp = append(c.rightComp, ri)
	}
	nfa := phr.Expr.CompileNFA(namesForBases(len(phr.Bases)))
	nfa.GrowAlphabet(len(phr.Bases))
	c.mirror = newMirrorDFA(nfa.Reverse())
	return c, nil
}

// MaxComponentStates returns the largest membership-DFA state count among
// the compiled side automata — the determinization-size metric reported by
// the E3/E7 experiments. For sibling conditions the subset-construction
// blowup lives in the final (sequence-membership) DFA; for vertical
// conditions in the horizontal DFAs. Both are considered.
func (c *CompiledPHR) MaxComponentStates() int {
	max := 0
	for _, comp := range c.comps {
		if comp.lazy != nil {
			// Lazy components report the states materialized so far — the
			// pay-as-you-go reading of the same metric.
			if v := int(comp.lazy.Stats().StatesBuilt); v > max {
				max = v
			}
			continue
		}
		if comp.fwd.NumStates > max {
			max = comp.fwd.NumStates
		}
		for _, hz := range comp.dha.Horiz {
			if hz != nil && hz.DFA.NumStates > max {
				max = hz.DFA.NumStates
			}
		}
	}
	return max
}

// Result is the outcome of locating nodes in a hedge.
type Result struct {
	// Located maps each located node to true.
	Located map[*hedge.Node]bool
	// Paths lists the Dewey paths of located nodes in document order.
	Paths []hedge.Path
}

// annot is the per-node record of the first traversal, arranged as a tree
// parallel to the hedge so both traversals run map-free in document order.
type annot struct {
	compStates []int  // state per component (index parallels c.comps)
	leftBits   uint64 // bit i: elder-sibling sequence ∈ F of component i
	rightBits  uint64 // bit i: younger-sibling sequence ∈ F of component i
	children   []annot
}

// Locate runs Algorithm 1: two depth-first traversals, time linear in the
// number of nodes (modulo lazy determinization of the mirror automaton,
// which is amortized over the finite concrete alphabet).
func (c *CompiledPHR) Locate(h hedge.Hedge) *Result {
	recs, ar := c.annotate(h)
	res := &Result{Located: map[*hedge.Node]bool{}}
	c.secondPass(h, recs, nil, c.mirror.start(), res)
	if m := c.metrics; m != nil {
		m.Docs.Inc()
		m.Nodes.Add(int64(ar.size))
		m.Marks.Add(int64(len(res.Paths)))
		m.Transitions.Add(ar.steps + ar.elems)
		c.flushLazy(m)
	}
	c.arenas.Put(ar)
	return res
}

// flushLazy folds the since-last-flush lazy-determinization deltas of every
// lazily compiled component into the metrics sink. A no-op under eager
// compilation.
func (c *CompiledPHR) flushLazy(m *metrics.Eval) {
	for _, comp := range c.comps {
		if comp.lazy == nil {
			continue
		}
		d := comp.lazy.FlushDelta()
		m.LazyStates.Add(d.StatesBuilt)
		m.LazyHits.Add(d.Hits)
		m.LazyEvictions.Add(d.Evictions)
	}
}

// LazyStats sums the lazy-determinization counters across the side
// automata; all-zero under eager compilation.
func (c *CompiledPHR) LazyStats() ha.LazyStats {
	var s ha.LazyStats
	for _, comp := range c.comps {
		if comp.lazy != nil {
			s = s.Add(comp.lazy.Stats())
		}
	}
	return s
}

// annotArena bump-allocates every annot record (and component-state array)
// of one Locate call from two recycled slabs sized to the document. It
// doubles as the per-call tally of the first traversal's work (size, elems,
// steps): accumulating into the arena is single-goroutine plain arithmetic,
// flushed to the attached metrics sink — if any — once per call.
type annotArena struct {
	recsBuf   []annot
	statesBuf []int
	recs      []annot
	states    []int

	size  int   // nodes in the document being annotated
	elems int64 // element nodes (= mirror-automaton steps of the second pass)
	steps int64 // component membership-DFA transitions taken
}

func (ar *annotArena) reset(size, comps int) {
	if cap(ar.recsBuf) < size {
		ar.recsBuf = make([]annot, size)
	}
	if cap(ar.statesBuf) < size*comps {
		ar.statesBuf = make([]int, size*comps)
	}
	ar.recs = ar.recsBuf[:size]
	ar.states = ar.statesBuf[:size*comps]
	ar.size, ar.elems, ar.steps = size, 0, 0
}

func (ar *annotArena) take(n, comps int) ([]annot, []int) {
	recs := ar.recs[:n]
	ar.recs = ar.recs[n:]
	states := ar.states[:n*comps]
	ar.states = ar.states[n*comps:]
	return recs, states
}

// annotate is the first traversal: component states bottom-up, then the
// per-sibling-list membership bits (forward final DFAs for elder siblings,
// reversed final DFAs for younger siblings). The returned arena must be
// handed back to c.arenas once the records are no longer referenced.
func (c *CompiledPHR) annotate(h hedge.Hedge) ([]annot, *annotArena) {
	ar, _ := c.arenas.Get().(*annotArena)
	if ar == nil {
		ar = &annotArena{}
	}
	ar.reset(h.Size(), len(c.comps))
	return c.annotateIn(h, ar), ar
}

func (c *CompiledPHR) annotateIn(h hedge.Hedge, ar *annotArena) []annot {
	recs, states := ar.take(len(h), len(c.comps))
	for i, n := range h {
		a := &recs[i]
		// Slabs are recycled: every field is (re)assigned here, and the
		// membership bits accumulate with |=, so clear them explicitly.
		a.children = nil
		a.leftBits, a.rightBits = 0, 0
		if n.Kind == hedge.Elem {
			ar.elems++
			if len(n.Children) > 0 {
				a.children = c.annotateIn(n.Children, ar)
			}
		}
		a.compStates = states[i*len(c.comps) : (i+1)*len(c.comps)]
		for ci, comp := range c.comps {
			a.compStates[ci] = c.stateOf(ci, comp, n, a.children)
		}
		// stateOf steps each component's horizontal DFA once per child.
		ar.steps += int64(len(a.children)) * int64(len(c.comps))
	}
	// The membership passes below step each component's final DFAs once per
	// node in both directions.
	ar.steps += 2 * int64(len(recs)) * int64(len(c.comps))
	for ci, comp := range c.comps {
		bit := uint64(1) << uint(ci)
		if lz := comp.lazy; lz != nil {
			st := lz.FwdStart()
			for i := range recs {
				if lz.FwdAccepting(st) {
					recs[i].leftBits |= bit
				}
				st = lz.FwdStep(st, recs[i].compStates[ci])
			}
			rt := lz.BwdStart()
			for i := len(recs) - 1; i >= 0; i-- {
				if lz.BwdAccepting(rt) {
					recs[i].rightBits |= bit
				}
				rt = lz.BwdStep(rt, recs[i].compStates[ci])
			}
			continue
		}
		st := comp.fwd.Start
		for i := range recs {
			if comp.fwd.Accepting(st) {
				recs[i].leftBits |= bit
			}
			st = comp.fwd.Step(st, recs[i].compStates[ci])
		}
		rt := comp.bwd.Start
		for i := len(recs) - 1; i >= 0; i-- {
			if comp.bwd.Accepting(rt) {
				recs[i].rightBits |= bit
			}
			rt = comp.bwd.Step(rt, recs[i].compStates[ci])
		}
	}
	return recs
}

// stateOf computes the component state of a node from its children's
// records (already computed bottom-up).
func (c *CompiledPHR) stateOf(ci int, comp *component, n *hedge.Node, children []annot) int {
	if comp.lazy != nil {
		return c.stateOfLazy(ci, comp, n, children)
	}
	switch n.Kind {
	case hedge.Var:
		if v := c.Names.Vars.Lookup(n.Name); v != alphabet.None && v < len(comp.dha.Iota) {
			return comp.dha.Iota[v]
		}
		return c.sinkOf(comp)
	case hedge.Elem:
		sym := c.Names.Syms.Lookup(n.Name)
		if sym == alphabet.None || sym >= len(comp.dha.Horiz) || comp.dha.Horiz[sym] == nil {
			return c.sinkOf(comp)
		}
		hz := comp.dha.Horiz[sym]
		st := hz.DFA.Start
		for _, ch := range children {
			st = hz.DFA.Step(st, ch.compStates[ci])
			if st == sfa.Dead {
				return c.sinkOf(comp)
			}
		}
		if st == sfa.Dead || st >= len(hz.Out) {
			return c.sinkOf(comp)
		}
		if q := hz.Out[st]; q != alphabet.None {
			return q
		}
		return c.sinkOf(comp)
	default:
		return c.sinkOf(comp)
	}
}

// stateOfLazy is stateOf over a lazily determinized component: the same
// run, materializing horizontal states on demand. The lazy machines are
// total (HorizStep never goes dead), so only the symbol lookup can fall to
// the sink early.
func (c *CompiledPHR) stateOfLazy(ci int, comp *component, n *hedge.Node, children []annot) int {
	lz := comp.lazy
	switch n.Kind {
	case hedge.Var:
		if v := c.Names.Vars.Lookup(n.Name); v != alphabet.None {
			return lz.IotaState(v)
		}
		return comp.sink
	case hedge.Elem:
		sym := c.Names.Syms.Lookup(n.Name)
		if sym == alphabet.None {
			return comp.sink
		}
		st := lz.HorizStart(sym)
		if st < 0 {
			return comp.sink
		}
		for _, ch := range children {
			st = lz.HorizStep(sym, st, ch.compStates[ci])
		}
		return lz.HorizOut(sym, st)
	default:
		return comp.sink
	}
}

// sinkOf returns the component's sink state: the empty subset of its
// determinization, which is what the complete automaton assigns to any node
// outside the interned alphabet.
func (c *CompiledPHR) sinkOf(comp *component) int { return comp.sink }

func (c *CompiledPHR) secondPass(h hedge.Hedge, recs []annot, prefix hedge.Path, parentState int, res *Result) {
	for i, n := range h {
		p := append(prefix, i)
		if n.Kind != hedge.Elem {
			continue
		}
		ni := &recs[i]
		cands := c.candidates(n.Name, ni.leftBits, ni.rightBits)
		st := c.mirror.step(parentState, cands)
		if c.mirror.accepting(st) {
			res.Located[n] = true
			res.Paths = append(res.Paths, p.Clone())
		}
		c.secondPass(n.Children, ni.children, p, st, res)
	}
}

// candidates returns the bit set of base representations matched by the
// pointed base hedge at a node: label equal and both side memberships hold
// (Definition 17 via the ξ mapping of Theorem 4).
func (c *CompiledPHR) candidates(label string, leftBits, rightBits uint64) uint64 {
	return c.candidatesSym(c.Names.Syms.Lookup(label), leftBits, rightBits)
}

// candidatesSym is candidates over an interned label symbol.
func (c *CompiledPHR) candidatesSym(sym int, leftBits, rightBits uint64) uint64 {
	var out uint64
	for i := range c.PHR.Bases {
		if c.labels[i] != sym {
			continue
		}
		if li := c.leftComp[i]; li >= 0 && leftBits&(1<<uint(li)) == 0 {
			continue
		}
		if ri := c.rightComp[i]; ri >= 0 && rightBits&(1<<uint(ri)) == 0 {
			continue
		}
		out |= 1 << uint(i)
	}
	return out
}

// MatchesPointed evaluates a single pointed hedge against the PHR using the
// compiled machinery (used for cross-checking; Locate is the linear bulk
// evaluator).
func (c *CompiledPHR) MatchesPointed(u hedge.Hedge) (bool, error) {
	etaPath, err := u.EtaPath()
	if err != nil {
		return false, err
	}
	// The node whose envelope u is: the parent of η.
	target := etaPath[:len(etaPath)-1]
	// Strip η: evaluate on the hedge with the η-parent made childless, then
	// ask whether that node is located. Locating needs the subhedge only
	// for component states BELOW the node, which do not influence its own
	// envelope bits — η's parent has no other children by construction.
	stripped := u.Clone()
	stripped.At(target).Children = nil
	res := c.Locate(stripped)
	return res.Located[stripped.At(target)], nil
}

// mirrorDFA lazily determinizes the reversed PHR automaton over concrete
// candidate-set symbols. Theorem 4's N is this automaton completed over the
// finite alphabet (Q*/≡)×Σ×(Q*/≡); laziness keeps Algorithm 1 linear with
// a small constant in practice. The memo tables grow under a mutex so
// BulkSelect can share one compiled query across goroutines.
type mirrorDFA struct {
	mu     sync.Mutex
	rev    *sfa.NFA
	sets   [][]int        // DFA state → NFA state set
	ids    map[string]int // set key → DFA state
	accept []bool
	trans  []map[uint64]int // DFA state → candidate bits → DFA state
	// startID memoizes the interned start ε-closure: start() sits on the
	// per-record streaming hot path, and recomputing the closure (plus its
	// set key) would cost two allocations per evaluation.
	startID int
}

func newMirrorDFA(rev *sfa.NFA) *mirrorDFA {
	m := &mirrorDFA{rev: rev, ids: map[string]int{}, startID: -1}
	return m
}

func setKey(set []int) string {
	b := make([]byte, 0, len(set)*4)
	for _, s := range set {
		b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
	}
	return string(b)
}

func (m *mirrorDFA) intern(set []int) int {
	k := setKey(set)
	if id, ok := m.ids[k]; ok {
		return id
	}
	id := len(m.sets)
	m.ids[k] = id
	m.sets = append(m.sets, set)
	acc := false
	for _, s := range set {
		if m.rev.Accept[s] {
			acc = true
			break
		}
	}
	m.accept = append(m.accept, acc)
	m.trans = append(m.trans, map[uint64]int{})
	return id
}

func (m *mirrorDFA) start() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.startID < 0 {
		m.startID = m.intern(m.rev.EpsClosure(m.rev.Start))
	}
	return m.startID
}

func (m *mirrorDFA) accepting(state int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.accept[state]
}

// step advances on the candidate-bit symbol: the union of moves on every
// base index present in cands.
func (m *mirrorDFA) step(state int, cands uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if to, ok := m.trans[state][cands]; ok {
		return to
	}
	next := map[int]bool{}
	for _, s := range m.sets[state] {
		for i := 0; cands>>uint(i) != 0; i++ {
			if cands&(1<<uint(i)) == 0 {
				continue
			}
			for _, t := range m.rev.Trans[s][i] {
				next[t] = true
			}
		}
	}
	lst := make([]int, 0, len(next))
	for s := range next {
		lst = append(lst, s)
	}
	closed := m.rev.EpsClosure(lst)
	to := m.intern(closed)
	m.trans[state][cands] = to
	return to
}
