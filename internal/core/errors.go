package core

import "fmt"

// SyntaxError is a structured parse error from the query/PHR parsers: the
// offending input, the byte offset the parser stopped at, and a message.
// The facade surfaces it (via errors.As) as xpe.CompileError with a source
// excerpt; the rendered text keeps the historical "parse error at offset"
// shape so existing callers matching on strings are unaffected.
type SyntaxError struct {
	Input  string
	Offset int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("phr: parse error at offset %d in %q: %s", e.Offset, e.Input, e.Msg)
}
