package core

import (
	"math/rand"
	"testing"

	"xpe/internal/ha"
	"xpe/internal/hedge"
)

func compileBind(t *testing.T, src string) *CompiledPHR {
	t.Helper()
	names := ha.NewNames()
	for _, s := range []string{"doc", "sec", "fig", "par", "a", "b"} {
		names.Syms.Intern(s)
	}
	c, err := CompilePHR(MustParsePHR(src), names)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBindingsCaptureAncestor(t *testing.T) {
	// Capture the section containing each located figure.
	c := compileBind(t, "fig sec@s* [* ; doc ; *]@d")
	h := hedge.MustParse("doc<sec<fig sec<fig>> fig>")
	ms := c.LocateBindings(h)
	if len(ms) != 3 {
		t.Fatalf("located %d, want 3", len(ms))
	}
	// Deepest figure 1.1.2.1: the innermost sec* level is 1.1.2 (the
	// last-matched sec); d is always the doc.
	byPath := map[string]BoundMatch{}
	for _, m := range ms {
		byPath[m.Path.String()] = m
	}
	m := byPath["1.1.2.1"]
	if m.Node == nil {
		t.Fatalf("missing match at 1.1.2.1: %v", ms)
	}
	if m.BindingPaths["d"].String() != "1" {
		t.Fatalf("d bound to %v", m.BindingPaths["d"])
	}
	if got := m.BindingPaths["s"].String(); got != "1.1.2" && got != "1.1" {
		t.Fatalf("s bound to %v", got)
	}
	// The top-level figure under doc matches with zero sec levels: no s
	// binding.
	m2 := byPath["1.2"]
	if _, ok := m2.Bindings["s"]; ok {
		t.Fatal("s must be unbound when sec* matches zero levels")
	}
	if m2.BindingPaths["d"].String() != "1" {
		t.Fatal("d must still be bound")
	}
}

func TestBindingsAgreeWithLocate(t *testing.T) {
	// LocateBindings must locate exactly the nodes Locate does.
	srcs := []string{
		"fig sec@s* [* ; doc ; *]",
		"[* ; a ; b]@x (a|b)*",
		"a@n (b@m a@n)*",
	}
	cfg := hedge.RandConfig{Symbols: []string{"a", "b", "doc", "sec", "fig"}, Vars: nil, MaxDepth: 4, MaxWidth: 3}
	rng := rand.New(rand.NewSource(7))
	for _, src := range srcs {
		c := compileBind(t, src)
		for i := 0; i < 60; i++ {
			h := hedge.Random(rng, cfg)
			plain := c.Locate(h)
			bound := c.LocateBindings(h)
			if len(bound) != len(plain.Paths) {
				t.Fatalf("%q: bound %d vs plain %d on %q", src, len(bound), len(plain.Paths), h)
			}
			for j, m := range bound {
				if !m.Path.Equal(plain.Paths[j]) {
					t.Fatalf("%q: path order differs on %q", src, h)
				}
			}
		}
	}
}

func TestBindingsSelfCapture(t *testing.T) {
	// Binding the node's own base captures the node itself.
	c := compileBind(t, "fig@self (sec|doc)*")
	h := hedge.MustParse("doc<sec<fig>>")
	ms := c.LocateBindings(h)
	if len(ms) != 1 {
		t.Fatalf("located %d", len(ms))
	}
	if ms[0].Bindings["self"] != ms[0].Node {
		t.Fatal("self binding must be the located node")
	}
}

func TestHasUniqueBindings(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"fig sec* [* ; doc ; *]", true},
		{"a@n (b a)*", true},
		{"a (a@x | a@y)", false},                 // same label, two abstract choices
		{"(a | b)*", true},                       // distinct labels never co-occur
		{"a* a*", false},                         // the classic split ambiguity
		{"[* ; a ; b]@x | [b ; a ; *]@y", false}, // may co-occur on label a
	}
	for _, cse := range cases {
		c := compileBind(t, cse.src)
		if got := c.HasUniqueBindings(); got != cse.want {
			t.Errorf("HasUniqueBindings(%q) = %v, want %v", cse.src, got, cse.want)
		}
	}
}

func TestBindingsRenderAndReparse(t *testing.T) {
	p := MustParsePHR("fig@f [a<~z>*^z ; sec ; *]@s doc")
	if p.Bases[0].Bind != "f" || p.Bases[1].Bind != "s" || p.Bases[2].Bind != "" {
		t.Fatalf("binds = %+v", p.Bases)
	}
	again := MustParsePHR(p.String())
	if again.Bases[0].Bind != "f" || again.Bases[1].Bind != "s" {
		t.Fatalf("round trip lost bindings: %s", p)
	}
	if _, err := ParsePHR("fig@"); err == nil {
		t.Fatal("dangling '@' should fail")
	}
}
