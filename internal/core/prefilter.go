package core

import (
	"sort"
	"strconv"
	"strings"

	"xpe/internal/hre"
	"xpe/internal/sre"
)

// Required-label extraction: the compile-time half of the prefilter
// cascade. RequiredLabels computes a set of element labels every matching
// record must contain — a conjunctive lower bound on the query, in the
// spirit of the literal prefilters of structural grep tools. The splitter
// checks the set with a raw byte skim (xmlhedge.Prefilter) and skips
// parse+eval for records that cannot match.
//
// Soundness: for any located node, some accepted word of the PHR's
// top-level expression assigns one base per spine node. Each base in the
// word requires its own label at that spine node (candidate sets test label
// equality) and its side expressions to match the actual sibling hedges —
// so the labels required by every accepted word are present in the record.
// The set computed here is the intersection over accepted words of the
// union of per-base requirements, approximated structurally:
//
//	req(t_i)  = {label_i} ∪ req(left_i) ∪ req(right_i)
//	req(e₁e₂) = req(e₁) ∪ req(e₂)
//	req(e₁|e₂)= req(e₁) ∩ req(e₂)
//	req(e*) = req(.) = req(ε) = ∅
//
// and over hedge expressions:
//
//	req(a⟨e⟩)   = {a} ∪ req(e)
//	req(a⟨z⟩)   = {a}
//	req(e₁ ∘z e₂) = req(e₂)   (e₂ is the outer template: its elements
//	                           survive substitution, e₁ may never appear)
//	req(e^z)    = req(e)      (every hedge of the closure has an outermost
//	                           layer from e)
//
// with union over concatenation, intersection over alternation, and ∅ for
// stars, variables, '.', ε, and ∅ (weak but sound: an empty set just
// disables the prefilter). The subhedge expression e₁ of select(e₁; phr)
// contributes its requirements too — the located node's children must
// match it.

// RequiredLabels returns the sorted set of element labels without which the
// query cannot match any record. An empty set means the prefilter has
// nothing to work with (the query may match label-free records).
func (cq *CompiledQuery) RequiredLabels() []string {
	return requiredLabelsOf(cq.phr.PHR, cq.subExpr)
}

// RequiredLabelsOf is the query-level extraction without compilation, used
// by callers that want the prefilter for an uncompiled query.
func RequiredLabelsOf(q *Query) []string {
	return requiredLabelsOf(q.Envelope, q.Subhedge)
}

func requiredLabelsOf(phr *PHR, sub *hre.Expr) []string {
	req := reqSre(phr.Expr, phr)
	for l := range reqHre(sub) {
		req[l] = true
	}
	out := make([]string, 0, len(req))
	for l := range req {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

type labelSet map[string]bool

func (s labelSet) union(o labelSet) labelSet {
	if len(o) == 0 {
		return s
	}
	if len(s) == 0 {
		return o
	}
	for l := range o {
		s[l] = true
	}
	return s
}

func intersect(a, b labelSet) labelSet {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := labelSet{}
	for l := range a {
		if b[l] {
			out[l] = true
		}
	}
	return out
}

// reqSre computes the requirement set of the PHR's top-level expression
// over base symbols t0, t1, ….
func reqSre(e *sre.Expr, phr *PHR) labelSet {
	if e == nil {
		return labelSet{}
	}
	switch e.Kind {
	case sre.KSym:
		i, ok := baseIndex(e.Name)
		if !ok || i >= len(phr.Bases) {
			return labelSet{}
		}
		b := phr.Bases[i]
		req := labelSet{b.Label: true}
		return req.union(reqHre(b.Left)).union(reqHre(b.Right))
	case sre.KCat:
		req := labelSet{}
		for _, s := range e.Subs {
			req = req.union(reqSre(s, phr))
		}
		return req
	case sre.KAlt:
		req := reqSre(e.Subs[0], phr)
		for _, s := range e.Subs[1:] {
			req = intersect(req, reqSre(s, phr))
		}
		return req
	default:
		// ε, ∅, '.', and starred subexpressions guarantee nothing.
		return labelSet{}
	}
}

// reqHre computes the requirement set of a hedge regular expression: labels
// present in every hedge of its language.
func reqHre(e *hre.Expr) labelSet {
	if e == nil {
		return labelSet{}
	}
	switch e.Kind {
	case hre.KElem:
		return labelSet{e.Name: true}.union(reqHre(e.Subs[0]))
	case hre.KSubst:
		return labelSet{e.Name: true}
	case hre.KCat:
		req := labelSet{}
		for _, s := range e.Subs {
			req = req.union(reqHre(s))
		}
		return req
	case hre.KAlt:
		req := reqHre(e.Subs[0])
		for _, s := range e.Subs[1:] {
			req = intersect(req, reqHre(s))
		}
		return req
	case hre.KEmbed:
		// e₁ ∘z e₂ replaces z-contents of e₂'s hedges by hedges of e₁: the
		// elements of the outer template e₂ all survive; e₁ may not appear
		// at all (when e₂ has no z).
		return reqHre(e.Subs[1])
	case hre.KVClose:
		// Every hedge of e^z has an outermost layer drawn from e (with
		// z-contents substituted), so e's element requirements survive.
		return reqHre(e.Subs[0])
	default:
		// ε, ∅, variables, '.', and starred subexpressions guarantee
		// nothing.
		return labelSet{}
	}
}

// baseIndex parses the base symbol "t<i>" minted by baseSymbol.
func baseIndex(name string) (int, bool) {
	if !strings.HasPrefix(name, "t") {
		return 0, false
	}
	i, err := strconv.Atoi(name[1:])
	if err != nil || i < 0 {
		return 0, false
	}
	return i, true
}
