package core

import (
	"testing"

	"xpe/internal/gen"
	"xpe/internal/ha"
	"xpe/internal/hedge"
	"xpe/internal/metrics"
)

// compileDocQuery compiles a query over the gen.Document vocabulary.
func compileDocQuery(t *testing.T, src string) *CompiledQuery {
	t.Helper()
	names := ha.NewNames()
	for _, s := range []string{"doc", "section", "figure", "table", "para"} {
		names.Syms.Intern(s)
	}
	names.Vars.Intern(hedge.TextVar)
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := CompileQuery(q, names)
	if err != nil {
		t.Fatal(err)
	}
	return cq
}

// TestMetricsLinearity is the observable form of Theorems 3–5: for a fixed
// compiled query, nodes visited must equal the document size exactly and
// automaton transitions must scale linearly with it — the per-node
// transition cost stays within a constant band as documents grow 16×.
func TestMetricsLinearity(t *testing.T) {
	cq := compileDocQuery(t, "select(figure*; [* ; section ; *] (section|doc)*)")
	var sink metrics.Eval
	cq.SetMetrics(&sink)

	var ratios []float64
	for _, size := range []int{2000, 8000, 32000} {
		doc := gen.Document(gen.DefaultDocConfig(), size)
		n := int64(doc.Size())
		before := sink.Snapshot()
		res := cq.Select(doc)
		d := sink.Snapshot()

		if docs := d.Docs - before.Docs; docs != 1 {
			t.Fatalf("size %d: docs delta = %d, want 1", size, docs)
		}
		if nodes := d.NodesVisited - before.NodesVisited; nodes != n {
			t.Errorf("size %d: nodes visited = %d, want exactly %d", size, nodes, n)
		}
		if marks := d.MarksEmitted - before.MarksEmitted; marks != int64(len(res.Paths)) {
			t.Errorf("size %d: marks = %d, want %d located", size, marks, len(res.Paths))
		}
		trans := d.Transitions - before.Transitions
		if trans <= 0 {
			t.Fatalf("size %d: transitions = %d, want > 0", size, trans)
		}
		ratios = append(ratios, float64(trans)/float64(n))
	}
	min, max := ratios[0], ratios[0]
	for _, r := range ratios[1:] {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	// Linear scaling means a constant per-node cost; allow a modest band
	// for shape variation between generated documents. A super-linear
	// evaluator would blow past this immediately (16× size → ~16× ratio).
	if max/min > 1.5 {
		t.Errorf("transitions per node drifted %v (max/min %.2f > 1.5): evaluation is not linear", ratios, max/min)
	}
}

// TestMetricsDifferential: attaching or detaching a sink must not change
// any result — same paths, same located set, same SelectEach stream.
func TestMetricsDifferential(t *testing.T) {
	for _, src := range []string{
		"figure section* [* ; doc ; *]",
		"select(figure*; [* ; section ; *] (section|doc)*)",
	} {
		cq := compileDocQuery(t, src)
		doc := gen.Document(gen.DefaultDocConfig(), 5000)

		cq.SetMetrics(nil)
		off := cq.Select(doc)
		var offEach []string
		cq.SelectEach(doc, func(p hedge.Path, n *hedge.Node) bool {
			offEach = append(offEach, p.String())
			return true
		})

		var sink metrics.Eval
		cq.SetMetrics(&sink)
		on := cq.Select(doc)
		var onEach []string
		cq.SelectEach(doc, func(p hedge.Path, n *hedge.Node) bool {
			onEach = append(onEach, p.String())
			return true
		})

		if len(on.Paths) != len(off.Paths) {
			t.Fatalf("%q: %d paths with sink, %d without", src, len(on.Paths), len(off.Paths))
		}
		for i := range on.Paths {
			if on.Paths[i].String() != off.Paths[i].String() {
				t.Errorf("%q: path %d = %s with sink, %s without", src, i, on.Paths[i], off.Paths[i])
			}
		}
		if len(onEach) != len(offEach) {
			t.Fatalf("%q: SelectEach yielded %d with sink, %d without", src, len(onEach), len(offEach))
		}
		for i := range onEach {
			if onEach[i] != offEach[i] {
				t.Errorf("%q: SelectEach %d = %s with sink, %s without", src, i, onEach[i], offEach[i])
			}
		}
	}
}

// TestMetricsZeroAlloc: the sink flush must not allocate — SelectEach's
// steady-state allocation count is identical with and without a sink.
func TestMetricsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool items at random, perturbing AllocsPerRun")
	}
	cq := compileDocQuery(t, "select(figure*; [* ; section ; *] (section|doc)*)")
	doc := gen.Document(gen.DefaultDocConfig(), 3000)
	run := func() {
		cq.SelectEach(doc, func(hedge.Path, *hedge.Node) bool { return true })
	}
	run() // warm the evaluation arenas
	cq.SetMetrics(nil)
	without := testing.AllocsPerRun(20, run)
	var sink metrics.Eval
	cq.SetMetrics(&sink)
	with := testing.AllocsPerRun(20, run)
	if with > without {
		t.Errorf("sink adds allocations: %.1f allocs/run with sink, %.1f without", with, without)
	}
}

// TestMatchAutomatonMetrics: the Theorem 5 path flushes the same sink.
func TestMatchAutomatonMetrics(t *testing.T) {
	_, _, m, _ := buildMatch(t, "fig sec* [* ; doc ; *]")
	var sink metrics.Eval
	m.Metrics = &sink
	h := hedge.MustParse("doc<sec<fig> par<$x>>")
	marked, ok := m.MarkedNodes(h)
	if !ok {
		t.Fatal("hedge rejected by match automaton")
	}
	s := sink.Snapshot()
	if s.Docs != 1 {
		t.Errorf("docs = %d, want 1", s.Docs)
	}
	if s.NodesVisited != int64(h.Size()) {
		t.Errorf("nodes visited = %d, want %d", s.NodesVisited, h.Size())
	}
	if s.MarksEmitted != int64(len(marked)) {
		t.Errorf("marks = %d, want %d", s.MarksEmitted, len(marked))
	}
}
