package core

import (
	"xpe/internal/hedge"
)

// Match provenance. Algorithm 1's second traversal decides "located" per
// node from two bit sets — the mirror-automaton state along the spine and
// the e₁ marking bit — which makes a positive answer hard to audit: the
// bits say that a match exists, not which bases of the pointed hedge
// representation matched which ancestors. ExplainEach re-exposes that
// evidence as a Witness per located node, using the same reconstruction
// LocateBindings performs for variable capture: the candidate-set word
// along the node's ancestor chain is known from the two traversals, and a
// successful abstract word of the PHR's regular expression over it
// (wordFromSets) names the base fired at every level.
//
// This is a diagnostic surface: unlike SelectEach it allocates per match
// (cloned paths, materialized level slices) and compiles the forward NFA
// per call, and it flushes no evaluation metrics — attach it for
// explanations, not for steady-state throughput.

// WitnessLevel is one level of a witness spine: an ancestor of the located
// node (or the node itself, in the last level).
type WitnessLevel struct {
	// Name is the element label at this level.
	Name string
	// State is the mirror-automaton state entered after stepping with
	// this level's candidate set (Theorem 4's deterministic string
	// automaton over membership-bit symbols). State ids are interned
	// lazily per compiled query: they are stable across evaluations of
	// one compilation, not across recompiles.
	State int
	// Candidates lists the base indices of the envelope whose side
	// conditions (elder/younger sibling membership) hold at this level —
	// the candidate set the mirror automaton stepped with.
	Candidates []int
	// Fired is the base index the successful abstract run assigns to
	// this level: the transition of the PHR's expression that consumed
	// it. -1 when reconstruction failed (cannot happen for an accepting
	// spine short of an inconsistent compilation).
	Fired int
}

// Witness is the provenance of one located node: the evidence that its
// envelope matches the query, level by level from the top of the document
// down to the node.
type Witness struct {
	// Path is the located node's Dewey path (cloned; safe to retain).
	Path hedge.Path
	// Subhedge reports whether the query carries an e₁ subhedge
	// condition; when true the node's subhedge was additionally checked
	// against e₁ (Theorem 3's marking bit) and passed.
	Subhedge bool
	// Levels runs from the top level (index 0) down to the located node
	// (last index); len(Levels) == len(Path).
	Levels []WitnessLevel
}

// ExplainEach runs Algorithm 1 and calls fn once per located node in
// document order with the node's witness. It locates exactly the nodes
// SelectEach does; it returns false when fn stopped the walk early. The
// Witness and its slices are freshly allocated per call to fn (safe to
// retain); the node pointer aliases the document.
func (cq *CompiledQuery) ExplainEach(h hedge.Hedge, fn func(w Witness, n *hedge.Node) bool) bool {
	phrRecs, ar := cq.phr.annotate(h)
	defer cq.phr.arenas.Put(ar)
	var subRecs []subAnnot
	if cq.sub != nil {
		var sar *subArena
		subRecs, sar = cq.sub.annotate(h)
		defer cq.sub.arenas.Put(sar)
	}
	fwd := cq.phr.forwardNFA()
	// chain carries (label, state, candidate set) from the top level down
	// to the current node; sets and words are reconstructed bottom-up per
	// Definition 19 exactly as in LocateBindings.
	type level struct {
		name  string
		state int
		cands uint64
	}
	var chain []level
	var path hedge.Path
	var walk func(h hedge.Hedge, recs []annot, subs []subAnnot, parentState int) bool
	walk = func(h hedge.Hedge, recs []annot, subs []subAnnot, parentState int) bool {
		for i, n := range h {
			if n.Kind != hedge.Elem {
				continue
			}
			ni := &recs[i]
			cands := cq.phr.candidates(n.Name, ni.leftBits, ni.rightBits)
			st := cq.phr.mirror.step(parentState, cands)
			path = append(path, i)
			chain = append(chain, level{n.Name, st, cands})
			if cq.phr.mirror.accepting(st) && (subs == nil || subs[i].marked) {
				sets := make([][]int, len(chain))
				for j := range chain {
					sets[j] = bitsToList(chain[len(chain)-1-j].cands)
				}
				word, ok := wordFromSets(fwd, sets)
				w := Witness{Path: path.Clone(), Subhedge: cq.sub != nil,
					Levels: make([]WitnessLevel, len(chain))}
				for k := range chain {
					lv := WitnessLevel{Name: chain[k].name, State: chain[k].state,
						Candidates: sets[len(chain)-1-k], Fired: -1}
					if ok {
						lv.Fired = word[len(chain)-1-k]
					}
					w.Levels[k] = lv
				}
				if !fn(w, n) {
					return false
				}
			}
			var childSubs []subAnnot
			if subs != nil {
				childSubs = subs[i].children
			}
			if !walk(n.Children, ni.children, childSubs, st) {
				return false
			}
			path = path[:len(path)-1]
			chain = chain[:len(chain)-1]
		}
		return true
	}
	return walk(h, phrRecs, subRecs, cq.phr.mirror.start())
}

// NumBases returns the number of base representations in the query's
// envelope; witness base indices range over [0, NumBases).
func (cq *CompiledQuery) NumBases() int { return len(cq.phr.PHR.Bases) }

// BaseString renders base i of the envelope in the package's concrete
// syntax, for presenting witnesses.
func (cq *CompiledQuery) BaseString(i int) string { return cq.phr.PHR.Bases[i].String() }
