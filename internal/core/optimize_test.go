package core

import (
	"math/rand"
	"testing"

	"xpe/internal/ha"
	"xpe/internal/hedge"
	"xpe/internal/sre"
)

func TestOptimizeUnifiesDuplicateBases(t *testing.T) {
	// "a a* | a" parses three separate 'a' bases; all have identical
	// shape, so one suffices.
	phr := MustParsePHR("a a* | a")
	opt := Optimize(phr)
	if len(opt.Bases) != 1 {
		t.Fatalf("bases = %d, want 1 (%s)", len(opt.Bases), opt)
	}
}

func TestOptimizeDropsUnreachableBases(t *testing.T) {
	// ∅-concatenation makes a base unreachable: b ([] c) — c can never
	// occur. Build by hand since ∅ has no surface syntax.
	phr := MustParsePHR("a | b")
	phr.Expr = mustSreCat(t, phr)
	opt := Optimize(phr)
	for _, b := range opt.Bases {
		if b.Label == "b" {
			t.Fatalf("unreachable base survived: %s", opt)
		}
	}
}

// mustSreCat rewires "a | b" into "a | (b ∅)" so the b base is useless.
func mustSreCat(t *testing.T, phr *PHR) *sre.Expr {
	t.Helper()
	alt := phr.Expr
	if len(alt.Subs) != 2 {
		t.Fatalf("unexpected parse shape %v", alt)
	}
	alt.Subs[1] = sre.Cat(alt.Subs[1], sre.Empty())
	return alt
}

func TestOptimizePreservesLocate(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	cfg := hedge.RandConfig{Symbols: []string{"a", "b"}, Vars: []string{"x"}, MaxDepth: 4, MaxWidth: 3}
	for trial := 0; trial < 60; trial++ {
		phr := randPHR(rng)
		opt := Optimize(phr)
		names := ha.NewNames()
		names.Syms.Intern("a")
		names.Syms.Intern("b")
		names.Vars.Intern("x")
		c1, err := CompilePHR(phr, names)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		c2, err := CompilePHR(opt, names)
		if err != nil {
			t.Fatalf("trial %d (optimized %s): %v", trial, opt, err)
		}
		for i := 0; i < 25; i++ {
			h := hedge.Random(rng, cfg)
			r1 := c1.Locate(h)
			r2 := c2.Locate(h)
			if len(r1.Paths) != len(r2.Paths) {
				t.Fatalf("trial %d: %s vs %s differ on %q (%d vs %d)",
					trial, phr, opt, h, len(r1.Paths), len(r2.Paths))
			}
			for j := range r1.Paths {
				if !r1.Paths[j].Equal(r2.Paths[j]) {
					t.Fatalf("trial %d: path mismatch on %q", trial, h)
				}
			}
		}
		if len(opt.Bases) > len(phr.Bases) {
			t.Fatalf("trial %d: optimization grew the base set", trial)
		}
	}
}

func TestOptimizeKeepsBindingsApart(t *testing.T) {
	// Bases differing only in binding names must NOT unify.
	phr := MustParsePHR("a@x a@y")
	opt := Optimize(phr)
	if len(opt.Bases) != 2 {
		t.Fatalf("bound bases unified: %s", opt)
	}
}
