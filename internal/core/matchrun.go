package core

import (
	"xpe/internal/hedge"
	"xpe/internal/sfa"
)

// Run extracts the successful computation of h by the match automaton and
// returns the per-node states, or ok=false when h is not accepted (not in
// the schema). Theorem 5 guarantees at most one successful computation, so
// any successful assignment found is the computation.
func (m *MatchAutomaton) Run(h hedge.Hedge) (map[*hedge.Node]int, bool) {
	if mm := m.Metrics; mm != nil {
		mm.Docs.Inc()
		mm.Nodes.Add(int64(h.Size()))
	}
	nrun := m.NHA.Exec(h)
	if !nrun.Accepted {
		return nil, false
	}
	assign := make(map[*hedge.Node]int, h.Size())
	word, ok := wordFromSets(m.NHA.Final, nrun.Top)
	if !ok {
		return nil, false
	}
	if !m.assignRec(h, word, nrun.Sets, assign) {
		return nil, false
	}
	return assign, true
}

// ruleFor returns the unique rule producing the given element state.
func (m *MatchAutomaton) ruleFor(state int) *sfa.NFA {
	for i := range m.NHA.Rules {
		if m.NHA.Rules[i].Result == state {
			return m.NHA.Rules[i].Lang
		}
	}
	return nil
}

// assignRec distributes chosen states down the hedge.
func (m *MatchAutomaton) assignRec(h hedge.Hedge, states []int, sets map[*hedge.Node][]int, out map[*hedge.Node]int) bool {
	for i, n := range h {
		st := states[i]
		out[n] = st
		if n.Kind != hedge.Elem {
			continue
		}
		lang := m.ruleFor(st)
		if lang == nil {
			return false
		}
		childSets := make([][]int, len(n.Children))
		for j, c := range n.Children {
			childSets[j] = sets[c]
		}
		childStates, ok := wordFromSets(lang, childSets)
		if !ok {
			return false
		}
		if !m.assignRec(n.Children, childStates, sets, out) {
			return false
		}
	}
	return true
}

// MarkedNodes returns the located nodes according to the match automaton's
// unique successful computation (ok=false when h is outside the schema).
func (m *MatchAutomaton) MarkedNodes(h hedge.Hedge) (map[*hedge.Node]bool, bool) {
	assign, ok := m.Run(h)
	if !ok {
		return nil, false
	}
	out := map[*hedge.Node]bool{}
	for n, st := range assign {
		if m.Marked[st] {
			out[n] = true
		}
	}
	if mm := m.Metrics; mm != nil {
		mm.Marks.Add(int64(len(out)))
	}
	return out, true
}

// wordFromSets finds a word w with w[j] ∈ sets[j] accepted by the NFA, by
// forward subset simulation with per-step frontier recording and backward
// reconstruction.
func wordFromSets(nfa *sfa.NFA, sets [][]int) ([]int, bool) {
	type frontier struct {
		states []int
	}
	fronts := make([]frontier, len(sets)+1)
	fronts[0] = frontier{nfa.EpsClosure(nfa.Start)}
	for j, set := range sets {
		nextSet := map[int]bool{}
		for _, s := range fronts[j].states {
			for _, sym := range set {
				for _, t := range nfa.Trans[s][sym] {
					nextSet[t] = true
				}
			}
		}
		lst := make([]int, 0, len(nextSet))
		for s := range nextSet {
			lst = append(lst, s)
		}
		fronts[j+1] = frontier{nfa.EpsClosure(lst)}
		if len(fronts[j+1].states) == 0 {
			return nil, false
		}
	}
	// Pick an accepting end state and walk back.
	goal := -1
	for _, s := range fronts[len(sets)].states {
		if nfa.Accept[s] {
			goal = s
			break
		}
	}
	if goal == -1 {
		return nil, false
	}
	word := make([]int, len(sets))
	cur := goal
	for j := len(sets) - 1; j >= 0; j-- {
		found := false
		// ε-ancestry: cur must be ε-reachable from some direct successor.
		for _, s := range fronts[j].states {
			if found {
				break
			}
			for _, sym := range sets[j] {
				if found {
					break
				}
				for _, t := range nfa.Trans[s][sym] {
					if contains(nfa.EpsClosure([]int{t}), cur) {
						word[j] = sym
						cur = s
						found = true
						break
					}
				}
			}
		}
		if !found {
			return nil, false
		}
	}
	return word, true
}

func contains(sorted []int, x int) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == x
}
