package core

import (
	"math/rand"
	"testing"

	"xpe/internal/ha"
	"xpe/internal/hedge"
)

// testSchema builds a small document schema over {doc, sec, fig, par}:
// doc⟨(sec|par)*⟩ at top (exactly one doc), sec⟨(sec|fig|par)*⟩,
// fig⟨ε⟩, par⟨x*⟩.
func testSchema(names *ha.Names) *ha.DHA {
	for _, s := range []string{"doc", "sec", "fig", "par"} {
		names.Syms.Intern(s)
	}
	names.Vars.Intern("x")
	b := ha.NewBuilder(names)
	b.Iota("x", "qx")
	b.MustRule("doc", "qdoc", "(qsec | qpar)*")
	b.MustRule("sec", "qsec", "(qsec | qfig | qpar)*")
	b.MustRule("fig", "qfig", "()")
	b.MustRule("par", "qpar", "qx*")
	b.MustFinal("qdoc")
	return b.Build().Determinize().DHA
}

func matchQueries() []string {
	return []string{
		"fig sec* [* ; doc ; *]",                    // figures under section chains
		"[* ; fig ; par (sec|fig|par)*] (sec|doc)*", // fig immediately followed by par
		"select(fig*; [* ; sec ; *] (sec|doc)*)",    // sections holding only figures
		"sec sec [* ; doc ; *]",                     // depth-2 sections exactly
	}
}

func buildMatch(t *testing.T, qsrc string) (*ha.DHA, *CompiledQuery, *MatchAutomaton, *ha.Names) {
	t.Helper()
	names := ha.NewNames()
	schema := testSchema(names)
	q, err := ParseQuery(qsrc)
	if err != nil {
		t.Fatalf("%q: %v", qsrc, err)
	}
	cq, err := CompileQuery(q, names)
	if err != nil {
		t.Fatalf("%q: %v", qsrc, err)
	}
	m, err := BuildMatchAutomaton(schema, cq)
	if err != nil {
		t.Fatalf("%q: %v", qsrc, err)
	}
	return schema, cq, m, names
}

func TestMatchAutomatonPreservesSchemaLanguage(t *testing.T) {
	for _, qsrc := range matchQueries() {
		schema, _, m, _ := buildMatch(t, qsrc)
		rng := rand.New(rand.NewSource(7))
		cfg := hedge.RandConfig{
			Symbols: []string{"doc", "sec", "fig", "par"},
			Vars:    []string{"x"}, MaxDepth: 4, MaxWidth: 3,
		}
		// Random noise hedges: agreement both ways.
		for i := 0; i < 80; i++ {
			h := hedge.Random(rng, cfg)
			if schema.Accepts(h) != m.NHA.Accepts(h) {
				t.Fatalf("%q: language changed on %q (schema=%v)", qsrc, h, schema.Accepts(h))
			}
		}
		// Sampled schema members must be accepted.
		sampler, ok := ha.NewSampler(schema, rng)
		if !ok {
			t.Fatal("schema empty")
		}
		for i := 0; i < 40; i++ {
			doc, ok := sampler.Sample(4)
			if !ok {
				t.Fatal("sample failed")
			}
			if !schema.Accepts(doc) {
				t.Fatalf("sampler produced non-member %q", doc)
			}
			if !m.NHA.Accepts(doc) {
				t.Fatalf("%q: match automaton rejects schema member %q", qsrc, doc)
			}
		}
	}
}

func TestMatchAutomatonMarkingAgreesWithSelect(t *testing.T) {
	for _, qsrc := range matchQueries() {
		schema, cq, m, _ := buildMatch(t, qsrc)
		rng := rand.New(rand.NewSource(13))
		sampler, ok := ha.NewSampler(schema, rng)
		if !ok {
			t.Fatal("schema empty")
		}
		for i := 0; i < 60; i++ {
			doc, ok := sampler.Sample(4)
			if !ok {
				t.Fatal("sample failed")
			}
			marked, ok := m.MarkedNodes(doc)
			if !ok {
				t.Fatalf("%q: run extraction failed on %q", qsrc, doc)
			}
			want := cq.Select(doc)
			doc.Visit(func(p hedge.Path, n *hedge.Node) bool {
				if marked[n] != want.Located[n] {
					t.Fatalf("%q: marking disagrees with Algorithm 1 at %v in %q: match=%v select=%v",
						qsrc, p, doc, marked[n], want.Located[n])
				}
				return true
			})
		}
	}
}

func TestMatchAutomatonUniqueRunStates(t *testing.T) {
	// Element states of a successful computation are unique per node: the
	// possible-state sets of the NHA may be larger, but only one choice can
	// thread through acceptance. We verify that repeated extraction yields
	// identical assignments, and that the assignment is consistent with the
	// state structure (labels match).
	_, _, m, names := buildMatch(t, "fig sec* [* ; doc ; *]")
	rng := rand.New(rand.NewSource(17))
	schema := testSchema(names)
	sampler, _ := ha.NewSampler(schema, rng)
	for i := 0; i < 30; i++ {
		doc, _ := sampler.Sample(4)
		a1, ok1 := m.Run(doc)
		a2, ok2 := m.Run(doc)
		if !ok1 || !ok2 {
			t.Fatalf("run failed on %q", doc)
		}
		doc.Visit(func(p hedge.Path, n *hedge.Node) bool {
			if a1[n] != a2[n] {
				t.Fatalf("non-deterministic extraction at %v", p)
			}
			if n.Kind == hedge.Elem {
				tup := m.States.Tuple(a1[n])
				if tup[0] != 1 {
					t.Fatalf("element got leaf state at %v", p)
				}
				if names.Syms.Name(tup[3]) != n.Name {
					t.Fatalf("state label %q != node label %q", names.Syms.Name(tup[3]), n.Name)
				}
			}
			return true
		})
	}
}
