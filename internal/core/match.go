package core

import (
	"fmt"
	"sort"

	"xpe/internal/alphabet"
	"xpe/internal/ha"
	"xpe/internal/metrics"
	"xpe/internal/sfa"
)

// MatchAutomaton is the match-identifying hedge automaton of Section 8: the
// Theorem 5 construction M↑e₂ intersected with an input schema and with the
// Theorem 3 marking automaton M↓e₁. Its element states are triples
// (q, s, a) — q a product state of (schema × M↓e₁ × side components), s a
// state of the mirror string automaton N simulated in reverse (Figure 3),
// a the node's label — and its leaf states are (q, s⊥, a⊥). It accepts
// exactly the schema's language, every accepted hedge has exactly one
// successful computation, and that computation assigns marked states
// precisely to the nodes located by the selection query.
//
// The construction is exponential in the worst case (Section 8); it exists
// for schema-level reasoning — per-document evaluation uses Algorithm 1.
type MatchAutomaton struct {
	Names *ha.Names
	NHA   *ha.NHA
	// Marked[state] reports whether the NHA state is marked (a node
	// assigned this state is located by the query).
	Marked []bool
	// States maps NHA state ids to their structure: [1, q, s, sym] for
	// element states, [0, q] for leaf states.
	States *alphabet.TupleInterner

	// Metrics, when non-nil, receives one flush of evaluation counters per
	// Run/MarkedNodes call (schema-level evaluation is off the streaming
	// hot path, so a simple exported field suffices).
	Metrics *metrics.Eval

	p       *ha.DHA                 // product of schema × M↓e₁ × sides
	tuples  *alphabet.TupleInterner // product state → component tuple
	markPos int                     // M↓e₁ tuple position (-1 = no e₁ condition)
	markE1  []bool                  // marked states of M↓e₁
}

type elemKey struct{ pq, s, sym int }

// BuildMatchAutomaton constructs the match-identifying automaton for query
// cq against the given input schema (a DHA over the same Names).
func BuildMatchAutomaton(schema *ha.DHA, cq *CompiledQuery) (*MatchAutomaton, error) {
	names := cq.Names
	if schema.Names != names {
		return nil, fmt.Errorf("core: schema and query must share Names")
	}
	m := &MatchAutomaton{Names: names, States: alphabet.NewTupleInterner(), markPos: -1}
	// The product construction below needs concrete DFAs; a lazily compiled
	// query materializes its eager structures here (once). Evaluation keeps
	// using the lazy path — the two never mix state ids.
	cq.materializeEager()
	phr := cq.phr

	// Product components: schema, M↓e₁ (if any), side automata.
	comps := []*ha.DHA{schema}
	if cq.sub != nil {
		markedDHA, marked := ha.MarkChildren(cq.sub.dha)
		m.markPos = 1
		m.markE1 = marked
		comps = append(comps, markedDHA)
	}
	sidePos := make([]int, len(phr.comps))
	for i, side := range phr.comps {
		sidePos[i] = len(comps)
		comps = append(comps, side.dha)
	}
	p, tuples, err := ha.NaryProduct(comps, func(acc []bool) bool { return acc[0] })
	if err != nil {
		return nil, err
	}
	m.p, m.tuples = p, tuples

	inhabited, labeled := m.inhabitation()
	nStates := closeMirror(phr)

	// Enumerate leaf and element states of the match automaton.
	nha := ha.NewNHA(names)
	leafState := map[int]int{}
	for v := 0; v < names.Vars.Len(); v++ {
		pq := p.Iota[v]
		id, ok := leafState[pq]
		if !ok {
			id = nha.AddState()
			m.States.Intern([]int{0, pq})
			leafState[pq] = id
		}
		nha.AddIota(v, id)
	}
	elemState := map[elemKey]int{}
	var elemKeys []elemKey
	for _, la := range labeled {
		for _, s := range nStates {
			k := elemKey{la.pq, s, la.sym}
			id := nha.AddState()
			m.States.Intern([]int{1, k.pq, k.s, k.sym})
			elemState[k] = id
			elemKeys = append(elemKeys, k)
		}
	}
	m.Marked = make([]bool, nha.NumStates)
	for k, id := range elemState {
		m.Marked[id] = phr.mirror.accepting(k.s) && m.e1Bit(k.pq)
	}

	// Rule languages, cached per (symbol, parent N-state): the transition
	// structure of the horizontal NFA depends only on those; targets differ
	// in the accepting horizontal states.
	builder := &horizBuilder{
		m: m, phr: phr, sidePos: sidePos,
		leafState: leafState, elemState: elemState,
		numRStates: nha.NumStates,
	}
	type cacheKey struct{ sym, s int }
	cache := map[cacheKey]*horizNFA{}
	for _, k := range elemKeys {
		ck := cacheKey{k.sym, k.s}
		hn, ok := cache[ck]
		if !ok {
			hn = builder.build(p.Horiz[k.sym].DFA, k.s)
			cache[ck] = hn
		}
		lang := hn.langFor(func(h int) bool { return p.Horiz[k.sym].Out[h] == k.pq })
		nha.AddRule(k.sym, elemState[k], lang)
	}

	// Final set: the same construction over the schema-product final DFA
	// with the parent N-state s₀.
	fin := builder.build(p.Final, phr.mirror.start())
	nha.Final = fin.langFor(func(f int) bool { return p.Final.Accepting(f) })
	m.NHA = nha
	_ = inhabited
	return m, nil
}

// e1Bit reports whether product state pq carries the M↓e₁ mark (true when
// the query has no subhedge condition).
func (m *MatchAutomaton) e1Bit(pq int) bool {
	if m.markPos < 0 {
		return true
	}
	return m.markE1[m.tuples.Tuple(pq)[m.markPos]]
}

// MarkedOf reports whether an NHA state is an element state marked as
// located, along with its label symbol.
func (m *MatchAutomaton) MarkedOf(state int) (sym int, marked bool) {
	t := m.States.Tuple(state)
	if t[0] != 1 {
		return alphabet.None, false
	}
	return t[3], m.Marked[state]
}

type labeledState struct{ pq, sym int }

// inhabitation computes which product states some hedge reaches and with
// which labels element states arise.
func (m *MatchAutomaton) inhabitation() ([]bool, []labeledState) {
	inhabited := make([]bool, m.p.NumStates)
	for _, q := range m.p.Iota {
		if q != alphabet.None {
			inhabited[q] = true
		}
	}
	seenLabeled := map[labeledState]bool{}
	var labeled []labeledState
	for changed := true; changed; {
		changed = false
		for sym, hz := range m.p.Horiz {
			if hz == nil {
				continue
			}
			reach := reachableOver(hz.DFA, inhabited)
			for hs, ok := range reach {
				if !ok {
					continue
				}
				q := hz.Out[hs]
				if q == alphabet.None {
					continue
				}
				ls := labeledState{q, sym}
				if !seenLabeled[ls] {
					seenLabeled[ls] = true
					labeled = append(labeled, ls)
				}
				if !inhabited[q] {
					inhabited[q] = true
					changed = true
				}
			}
		}
	}
	sort.Slice(labeled, func(i, j int) bool {
		if labeled[i].pq != labeled[j].pq {
			return labeled[i].pq < labeled[j].pq
		}
		return labeled[i].sym < labeled[j].sym
	})
	return inhabited, labeled
}

func reachableOver(dfa *sfa.DFA, allowed []bool) []bool {
	seen := make([]bool, dfa.NumStates)
	if dfa.Start == sfa.Dead {
		return seen
	}
	seen[dfa.Start] = true
	stack := []int{dfa.Start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for q, to := range dfa.Trans[s] {
			if to == sfa.Dead || q >= len(allowed) || !allowed[q] || seen[to] {
				continue
			}
			seen[to] = true
			stack = append(stack, to)
		}
	}
	return seen
}

// closeMirror enumerates every mirror-automaton state reachable under any
// candidate set (over all labels and membership-bit combinations) and
// returns the sorted state list. This materializes Theorem 4's string
// automaton N over its full finite alphabet.
func closeMirror(phr *CompiledPHR) []int {
	c := len(phr.comps)
	// Distinct candidate sets.
	candSet := map[uint64]bool{0: true}
	for _, sym := range phr.labels {
		for lb := uint64(0); lb < 1<<uint(c); lb++ {
			for rb := uint64(0); rb < 1<<uint(c); rb++ {
				candSet[phr.candidatesSym(sym, lb, rb)] = true
			}
		}
	}
	seen := map[int]bool{}
	start := phr.mirror.start()
	seen[start] = true
	queue := []int{start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for cands := range candSet {
			t := phr.mirror.step(s, cands)
			if !seen[t] {
				seen[t] = true
				queue = append(queue, t)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// horizBuilder constructs the horizontal NFAs of the match automaton: the
// language of child-state sequences below a node with a given label and
// N-state. An NFA state is (h, f₁..f_c, r₁..r_c): h the sequence DFA
// state, fᵢ the forward final-DFA state of side component i (elder-sibling
// membership), rᵢ a guessed reversed-final-DFA state (younger-sibling
// membership, verified by the backward-step relation — the horizontal
// incarnation of the Figure 3 reverse simulation).
type horizBuilder struct {
	m          *MatchAutomaton
	phr        *CompiledPHR
	sidePos    []int
	leafState  map[int]int
	elemState  map[elemKey]int
	numRStates int
}

// horizNFA is the shared transition structure; langFor instantiates
// acceptance for a specific target.
type horizNFA struct {
	nfa    *sfa.NFA
	hOf    []int  // NFA state → sequence-DFA state
	rStart []bool // NFA state → whether every rᵢ is at its reversed start
}

// langFor returns a copy of the NFA accepting at states whose sequence-DFA
// component satisfies acceptH and whose guessed backward runs are complete.
func (hn *horizNFA) langFor(acceptH func(h int) bool) *sfa.NFA {
	out := hn.nfa.Clone()
	for s := range out.Accept {
		out.Accept[s] = hn.rStart[s] && acceptH(hn.hOf[s])
	}
	return out
}

// build explores the product of the sequence DFA, forward finals, and
// guessed backward finals over all match-automaton states.
func (b *horizBuilder) build(seqDFA *sfa.DFA, parentS int) *horizNFA {
	c := len(b.phr.comps)
	// Backward-step preimages: invBwd[i][to][sym] = sources r with
	// bwd.Step(r, sym) == to.
	invBwd := make([][]map[int][]int, c)
	for i, comp := range b.phr.comps {
		invBwd[i] = make([]map[int][]int, comp.bwd.NumStates)
		for to := range invBwd[i] {
			invBwd[i][to] = map[int][]int{}
		}
		for r := 0; r < comp.bwd.NumStates; r++ {
			for sym, to := range comp.bwd.Trans[r] {
				if to != sfa.Dead {
					invBwd[i][to][sym] = append(invBwd[i][to][sym], r)
				}
			}
		}
	}

	nfa := sfa.NewNFA(b.numRStates)
	states := alphabet.NewTupleInterner()
	hOfList := []int{}
	rStartList := []bool{}
	var queue [][]int
	get := func(tup []int) int {
		if id := states.Lookup(tup); id != -1 {
			return id
		}
		id := nfa.AddState(false)
		states.Intern(tup)
		hOfList = append(hOfList, tup[0])
		allStart := true
		for i := 0; i < c; i++ {
			if tup[1+c+i] != b.phr.comps[i].bwd.Start {
				allStart = false
				break
			}
		}
		rStartList = append(rStartList, allStart)
		queue = append(queue, append([]int(nil), tup...))
		return id
	}
	// Start states: forward components at their starts, every guessed
	// backward combination.
	startBase := make([]int, 1+2*c)
	startBase[0] = seqDFA.Start
	for i, comp := range b.phr.comps {
		startBase[1+i] = comp.fwd.Start
		_ = comp
	}
	var seedR func(idx int, tup []int)
	seedR = func(idx int, tup []int) {
		if idx == c {
			id := get(tup)
			nfa.MarkStart(id)
			return
		}
		for r := 0; r < b.phr.comps[idx].bwd.NumStates; r++ {
			tup[1+c+idx] = r
			seedR(idx+1, tup)
		}
	}
	seedR(0, append([]int(nil), startBase...))

	// Transitions: iterate work list × every match-automaton child symbol.
	for qi := 0; qi < len(queue); qi++ {
		tup := queue[qi]
		from := states.Lookup(tup)
		h := tup[0]
		// Left-membership bits of the current position.
		var leftBits uint64
		for i, comp := range b.phr.comps {
			if comp.fwd.Accepting(tup[1+i]) {
				leftBits |= 1 << uint(i)
			}
		}
		b.eachChildSymbol(func(rState, pq, childS, childSym int) {
			// Project component states from the product tuple.
			ptup := b.m.tuples.Tuple(pq)
			h2 := seqDFA.Step(h, pq)
			if h2 == sfa.Dead {
				return
			}
			// Enumerate guessed predecessor backward states per component.
			b.eachRChoice(invBwd, tup, ptup, 0, make([]int, c), func(rNext []int) {
				if childSym != alphabet.None {
					// Element child: verify s' = μ(Γ', s).
					var rightBits uint64
					for i, comp := range b.phr.comps {
						if comp.bwd.Accepting(rNext[i]) {
							rightBits |= 1 << uint(i)
						}
					}
					cands := b.phr.candidatesSym(childSym, leftBits, rightBits)
					if b.phr.mirror.step(parentS, cands) != childS {
						return
					}
				}
				next := make([]int, 1+2*c)
				next[0] = h2
				for i, comp := range b.phr.comps {
					next[1+i] = comp.fwd.Step(tup[1+i], ptup[b.sidePos[i]])
					next[1+c+i] = rNext[i]
					_ = comp
				}
				nfa.AddTrans(from, rState, get(next))
			})
		})
	}
	return &horizNFA{nfa: nfa, hOf: hOfList, rStart: rStartList}
}

// eachChildSymbol enumerates every match-automaton state usable as a child:
// leaf states (childSym = None) and element states.
func (b *horizBuilder) eachChildSymbol(fn func(rState, pq, childS, childSym int)) {
	for pq, id := range b.leafState {
		fn(id, pq, -1, alphabet.None)
	}
	for k, id := range b.elemState {
		fn(id, k.pq, k.s, k.sym)
	}
}

// eachRChoice enumerates, per component, the backward states r' with
// bwd.Step(r', childState) = current r.
func (b *horizBuilder) eachRChoice(invBwd [][]map[int][]int, tup, ptup []int, idx int, acc []int, fn func([]int)) {
	c := len(b.phr.comps)
	if idx == c {
		fn(acc)
		return
	}
	cur := tup[1+c+idx]
	cs := ptup[b.sidePos[idx]]
	for _, r := range invBwd[idx][cur][cs] {
		acc[idx] = r
		b.eachRChoice(invBwd, tup, ptup, idx+1, acc, fn)
	}
}
