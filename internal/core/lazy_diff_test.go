package core

import (
	"math/rand"
	"strings"
	"testing"

	"xpe/internal/gen"
	"xpe/internal/ha"
	"xpe/internal/hedge"
	"xpe/internal/hre"
)

// diffQueries is the query corpus of the differential suite: sibling
// conditions, subhedge conditions, alternation, and the '.'-closed-world
// forms, all over the gen.Document / SiblingRow label sets.
var diffQueries = []string{
	"figure [* ; section ; *]",
	"(figure | table) [* ; section ; *]",
	"para [* ; section ; *] [* ; doc ; *]",
	"[figure . ; para ; *]",
	"[* ; figure ; table .]",
	"select((section | figure | table | para)*; section [* ; doc ; *])",
	"section section [* ; doc ; *]",
	gen.KthFromEndPHR(4),
	gen.TypicalPHR(3),
}

// diffDocs returns the document corpus: generated docbook-like documents
// plus adversarial sibling rows.
func diffDocs() []hedge.Hedge {
	docs := []hedge.Hedge{
		gen.Document(gen.DefaultDocConfig(), 300),
		gen.Document(gen.DocConfig{Seed: 7, MaxDepth: 3, FigProb: 0.3, TabProb: 0.2, SecProb: 0.3}, 150),
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 6; i++ {
		docs = append(docs, gen.SiblingRow(rng, 3+i*4))
	}
	return docs
}

// compileThree compiles the query eagerly, lazily, and lazily with a
// one-transition budget (every step evicts), each against its own Names
// pre-interned with the document alphabet.
func compileThree(t *testing.T, src string, docs []hedge.Hedge) [3]*CompiledQuery {
	t.Helper()
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", src, err)
	}
	var out [3]*CompiledQuery
	for i, opts := range []Options{
		{},
		{LazyDeterminize: true},
		{LazyDeterminize: true, LazyTransitionBudget: 1},
	} {
		names := ha.NewNames()
		for _, d := range docs {
			internHedge(names, d)
		}
		cq, err := CompileQueryOpt(q, names, opts)
		if err != nil {
			t.Fatalf("CompileQueryOpt(%q, %+v): %v", src, opts, err)
		}
		out[i] = cq
	}
	return out
}

func pathsOf(res *Result) string {
	var b strings.Builder
	for _, p := range res.Paths {
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func eachPathsOf(cq *CompiledQuery, h hedge.Hedge) string {
	var b strings.Builder
	cq.SelectEach(h, func(p hedge.Path, n *hedge.Node) bool {
		b.WriteString(p.String())
		b.WriteByte('\n')
		return true
	})
	return b.String()
}

// TestLazyCompileMatchesEager is the core layer of the differential
// harness: every (query, document) pair evaluated through the eager,
// lazy, and tiny-budget lazy compilations must produce identical match
// sets and Dewey paths, through both Select and SelectEach.
func TestLazyCompileMatchesEager(t *testing.T) {
	docs := diffDocs()
	for _, src := range diffQueries {
		cqs := compileThree(t, src, docs)
		for di, h := range docs {
			want := pathsOf(cqs[0].Select(h))
			for vi, name := range []string{"lazy", "lazy-budget1"} {
				got := pathsOf(cqs[vi+1].Select(h))
				if got != want {
					t.Fatalf("%s: Select disagrees on query %q doc %d:\neager:\n%s%s:\n%s", name, src, di, want, name, got)
				}
				if each := eachPathsOf(cqs[vi+1], h); each != want {
					t.Fatalf("%s: SelectEach disagrees on query %q doc %d:\neager Select:\n%sSelectEach:\n%s", name, src, di, want, each)
				}
			}
			if each := eachPathsOf(cqs[0], h); each != want {
				t.Fatalf("eager SelectEach disagrees with eager Select on query %q doc %d", src, di)
			}
		}
		// Queries whose bases have no side expressions (and no subhedge
		// condition) compile no automata at all — nothing to be lazy about.
		if cqs[1].Lazy() {
			if st := cqs[1].LazyStats(); st.StatesBuilt == 0 {
				t.Fatalf("lazy compilation of %q built no states after evaluation", src)
			}
		}
		if cqs[0].Lazy() {
			t.Fatalf("Lazy() misreports eager compilation of %q", src)
		}
	}
}

// TestLazyAgainstNaiveOracle cross-checks the lazy path against the
// definition-level oracle on small documents (the eager path is pinned to
// the oracle by the existing suite; this closes the triangle).
func TestLazyAgainstNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	docs := []hedge.Hedge{gen.SiblingRow(rng, 6), gen.SiblingRow(rng, 9), gen.Document(gen.DefaultDocConfig(), 60)}
	for _, src := range []string{"[* ; figure ; table .]", gen.KthFromEndPHR(3), "select(b*; [* ; a ; b .] (a|b)*)"} {
		q, err := ParseQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		for di, h := range docs {
			names := ha.NewNames()
			internHedge(names, h)
			cq, err := CompileQueryOpt(q, names, Options{LazyDeterminize: true})
			if err != nil {
				t.Fatal(err)
			}
			res := cq.Select(h)
			oracle, err := SelectNaive(q, names, h)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Located) != len(oracle) {
				t.Fatalf("query %q doc %d: lazy located %d nodes, oracle %d", src, di, len(res.Located), len(oracle))
			}
			for n := range oracle {
				if !res.Located[n] {
					t.Fatalf("query %q doc %d: oracle node missing from lazy result", src, di)
				}
			}
		}
	}
}

// periodicRow builds r⟨p₀ p₁ … c⟩ with the sibling labels drawn cyclically
// from pattern — the low-diversity input family of the blowup regression:
// the lazily materialized states are bounded by the input's window
// diversity, not by 2^k.
func periodicRow(pattern string, width int) hedge.Hedge {
	r := hedge.NewElem("r")
	for i := 0; i < width; i++ {
		r.Children = append(r.Children, hedge.NewElem(string(pattern[i%len(pattern)])))
	}
	r.Children = append(r.Children, hedge.NewElem("c"))
	return hedge.Hedge{r}
}

// TestLazyAvoidsAdversarialBlowup is the regression test for the C1
// caveat: the k-th-from-end family has an eager subset construction of
// 2^k states, which must not be paid under lazy compilation. At k=18 the
// eager construction would materialize ~262k states; the lazy one must
// stay within a small fixed budget on low-diversity input while still
// answering correctly.
func TestLazyAvoidsAdversarialBlowup(t *testing.T) {
	const k = 18
	q, err := ParseQuery(gen.KthFromEndPHR(k))
	if err != nil {
		t.Fatal(err)
	}
	docs := []hedge.Hedge{}
	for _, pattern := range []string{"a", "b", "ab"} {
		for _, width := range []int{k - 2, k, k + 3, 3 * k} {
			docs = append(docs, periodicRow(pattern, width))
		}
	}
	names := ha.NewNames()
	for _, d := range docs {
		internHedge(names, d)
	}
	cq, err := CompileQueryOpt(q, names, Options{LazyDeterminize: true})
	if err != nil {
		t.Fatal(err)
	}
	for di, h := range docs {
		row := h[0].Children
		w := len(row) - 1 // elder siblings of the trailing c
		// The condition holds iff the k-th sibling from the end is b.
		want := w >= k && row[w-k].Name == "b"
		res := cq.Select(h)
		got := len(res.Paths) > 0
		if got != want {
			t.Fatalf("doc %d (width %d): match=%v, want %v", di, w, got, want)
		}
	}
	st := cq.LazyStats()
	const budget = 4096 // ≪ 2^18 = 262144
	if st.StatesBuilt == 0 || st.StatesBuilt > budget {
		t.Fatalf("lazy construction built %d states, want 1..%d (eager would build ~%d)", st.StatesBuilt, budget, 1<<k)
	}
	if cq.phr.MaxComponentStates() > budget {
		t.Fatalf("MaxComponentStates %d exceeds lazy budget %d", cq.phr.MaxComponentStates(), budget)
	}
}

// TestRequiredLabels pins the extraction rules on concrete queries.
func TestRequiredLabels(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"figure [* ; section ; *]", "figure section"},
		{"(figure | table) [* ; section ; *]", "section"},
		{"figure* [* ; doc ; *]", "doc"},
		{"[b ; c ; *] [* ; r ; *]", "b c r"},
		{"[b* ; c ; *] [* ; r ; *]", "c r"},
		{"select(para<$x>; c [* ; r ; *])", "c para r"},
		{"[a<b> | c<b> ; d ; *]", "b d"},
		{"[a<~z>*^z ; b ; *]", "b"},
		{gen.KthFromEndPHR(4), "b c r"},
		{"a", "a"},
	}
	for _, tc := range cases {
		q, err := ParseQuery(tc.src)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", tc.src, err)
		}
		got := strings.Join(RequiredLabelsOf(q), " ")
		if got != tc.want {
			t.Errorf("RequiredLabelsOf(%q) = %q, want %q", tc.src, got, tc.want)
		}
		names := ha.NewNames()
		cq, err := CompileQuery(q, names)
		if err != nil {
			t.Fatal(err)
		}
		if compiled := strings.Join(cq.RequiredLabels(), " "); compiled != got {
			t.Errorf("CompiledQuery.RequiredLabels(%q) = %q, want %q", tc.src, compiled, got)
		}
	}
}

// TestRequiredLabelsSound is the prefilter soundness property at the
// evaluation level: a document missing any required label has zero
// matches. Documents are drawn over shrinking label subsets so absence
// actually occurs.
func TestRequiredLabelsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabets := [][]string{
		{"section", "figure", "table", "para", "doc"},
		{"section", "para", "doc"},
		{"figure", "table"},
		{"a", "b", "c", "r"},
		{"a", "c", "r"},
		{"b"},
	}
	var docs []hedge.Hedge
	for _, al := range alphabets {
		for i := 0; i < 4; i++ {
			docs = append(docs, hedge.Random(rng, hedge.RandConfig{Symbols: al, MaxDepth: 4, MaxWidth: 4}))
		}
	}
	for _, src := range diffQueries {
		q, err := ParseQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		req := RequiredLabelsOf(q)
		for di, h := range docs {
			present := map[string]bool{}
			var walk func(hedge.Hedge)
			walk = func(hs hedge.Hedge) {
				for _, n := range hs {
					if n.Kind == hedge.Elem {
						present[n.Name] = true
						walk(n.Children)
					}
				}
			}
			walk(h)
			missing := ""
			for _, l := range req {
				if !present[l] {
					missing = l
					break
				}
			}
			if missing == "" {
				continue
			}
			names := ha.NewNames()
			internHedge(names, h)
			cq, err := CompileQuery(q, names)
			if err != nil {
				t.Fatal(err)
			}
			if res := cq.Select(h); len(res.Paths) != 0 {
				t.Fatalf("query %q doc %d: %d matches despite missing required label %q\n%s",
					src, di, len(res.Paths), missing, pathsOf(res))
			}
		}
	}
}

// TestLazyMatchAutomatonMaterializes checks that schema-level construction
// works on a lazily compiled query (eager structures materialize on
// demand) and agrees with the eagerly compiled construction.
func TestLazyMatchAutomatonMaterializes(t *testing.T) {
	q, err := ParseQuery("select(b*; [* ; a ; b .] (a|b)*)")
	if err != nil {
		t.Fatal(err)
	}
	build := func(opts Options) (*MatchAutomaton, *CompiledQuery, *ha.Names) {
		names := ha.NewNames()
		for _, s := range []string{"a", "b"} {
			names.Syms.Intern(s)
		}
		cq, err := CompileQueryOpt(q, names, opts)
		if err != nil {
			t.Fatal(err)
		}
		schema := anySchema(t, names)
		ma, err := BuildMatchAutomaton(schema, cq)
		if err != nil {
			t.Fatal(err)
		}
		return ma, cq, names
	}
	eagerMA, _, _ := build(Options{})
	lazyMA, lazyCQ, names := build(Options{LazyDeterminize: true})
	// The two constructions are over independent Names but the same
	// alphabet: compare by accepted/marked behavior on sample hedges.
	rng := rand.New(rand.NewSource(17))
	cfg := hedge.RandConfig{Symbols: []string{"a", "b"}, MaxDepth: 3, MaxWidth: 4}
	for i := 0; i < 60; i++ {
		h := hedge.Random(rng, cfg)
		if got, want := lazyMA.NHA.Accepts(h), eagerMA.NHA.Accepts(h); got != want {
			t.Fatalf("match automata disagree on %v: lazy %v, eager %v", h, got, want)
		}
	}
	// And the lazy evaluation path still works after materialization.
	h := hedge.MustParse("a<b b> b a<>")
	internHedge(names, h)
	_ = lazyCQ.Select(h)
}

// anySchema builds the trivial all-hedges schema over the interned
// alphabet, as a DHA on names.
func anySchema(t *testing.T, names *ha.Names) *ha.DHA {
	t.Helper()
	nha, err := hre.Compile(hre.AnyHedge(names.Syms.Names(), nil), names)
	if err != nil {
		t.Fatal(err)
	}
	return nha.Determinize().DHA
}
