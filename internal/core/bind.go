package core

import (
	"sort"

	"xpe/internal/hedge"
	"xpe/internal/sfa"
)

// Variable bindings — the Section 9 extension. The paper's future-work
// section proposes variables so "query operations can use the values
// assigned to such variables", noting that variables are safe on
// unambiguous expressions. Here bases of a pointed hedge representation may
// carry a binding name ([...]@name); when a node is located, the ancestor
// level matched by each named base is captured.
//
// Extraction re-reads the matched abstract base sequence: for a located
// node, the concrete candidate-set word along its ancestor chain is known
// from the two traversals, and a successful abstract word of the PHR's
// regular expression is reconstructed over it (wordFromSets). For
// unambiguous representations that word — hence every binding — is unique;
// HasUniqueBindings reports (conservatively) whether that holds.

// BoundMatch is a located node together with its variable bindings.
type BoundMatch struct {
	// Path addresses the located node.
	Path hedge.Path
	// Node is the located node.
	Node *hedge.Node
	// Bindings maps binding names to the captured ancestor (or self)
	// nodes; Paths carries their Dewey addresses.
	Bindings map[string]*hedge.Node
	// BindingPaths maps binding names to Dewey addresses.
	BindingPaths map[string]hedge.Path
}

// LocateBindings locates every matching node and captures the bindings of
// named bases. When the representation is ambiguous, one successful match
// per node is chosen (use HasUniqueBindings to check uniqueness up front).
func (c *CompiledPHR) LocateBindings(h hedge.Hedge) []BoundMatch {
	recs, ar := c.annotate(h)
	defer c.arenas.Put(ar)

	// The abstract NFA of the PHR's regular expression (forward, not
	// mirrored): words are base-index sequences from the node's level up.
	fwd := c.forwardNFA()

	var out []BoundMatch
	// chain carries (node, candidate set) pairs from the top level down to
	// the current node.
	type level struct {
		node  *hedge.Node
		path  hedge.Path
		cands uint64
	}
	var chain []level
	var walk func(h hedge.Hedge, recs []annot, prefix hedge.Path, parentState int)
	walk = func(h hedge.Hedge, recs []annot, prefix hedge.Path, parentState int) {
		for i, n := range h {
			if n.Kind != hedge.Elem {
				continue
			}
			p := append(prefix, i)
			ni := &recs[i]
			cands := c.candidates(n.Name, ni.leftBits, ni.rightBits)
			st := c.mirror.step(parentState, cands)
			chain = append(chain, level{n, p.Clone(), cands})
			if c.mirror.accepting(st) {
				// Reconstruct the abstract word bottom-up: candidate sets
				// from the node's level (last chain entry) to the top.
				sets := make([][]int, len(chain))
				for j := range chain {
					sets[j] = bitsToList(chain[len(chain)-1-j].cands)
				}
				word, ok := wordFromSets(fwd, sets)
				if ok {
					bm := BoundMatch{
						Path:         p.Clone(),
						Node:         n,
						Bindings:     map[string]*hedge.Node{},
						BindingPaths: map[string]hedge.Path{},
					}
					for j, baseIdx := range word {
						if name := c.PHR.Bases[baseIdx].Bind; name != "" {
							lv := chain[len(chain)-1-j]
							bm.Bindings[name] = lv.node
							bm.BindingPaths[name] = lv.path
						}
					}
					out = append(out, bm)
				}
			}
			walk(n.Children, ni.children, p, st)
			chain = chain[:len(chain)-1]
		}
	}
	walk(h, recs, nil, c.mirror.start())
	sort.Slice(out, func(i, j int) bool { return lessPathCore(out[i].Path, out[j].Path) })
	return out
}

func lessPathCore(a, b hedge.Path) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// forwardNFA compiles the PHR's regular expression over base indexes.
func (c *CompiledPHR) forwardNFA() *sfa.NFA {
	nfa := c.PHR.Expr.CompileNFA(namesForBases(len(c.PHR.Bases)))
	nfa.GrowAlphabet(len(c.PHR.Bases))
	return nfa
}

func bitsToList(bits uint64) []int {
	var out []int
	for i := 0; bits>>uint(i) != 0; i++ {
		if bits&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// HasUniqueBindings reports, conservatively, whether every match of the
// representation determines its base sequence (and hence its bindings)
// uniquely. Two base representations are treated as potentially
// co-occurring when they test the same label — a sound over-approximation
// of Definition 17 compatibility — so a true result guarantees uniqueness,
// while false may be a false alarm.
func (c *CompiledPHR) HasUniqueBindings() bool {
	nfa := c.forwardNFA()
	n := len(c.PHR.Bases)
	if n == 0 {
		return true
	}
	// Pair NFA over base pairs (i, j) that can co-occur in a candidate
	// set; a reachable accepting pair computation that differs somewhere
	// witnesses ambiguity.
	type pstate struct {
		a, b int
		diff bool
	}
	id := func(s pstate) int {
		d := 0
		if s.diff {
			d = 1
		}
		return (s.a*nfa.NumStates+s.b)*2 + d
	}
	start := nfa.EpsClosure(nfa.Start)
	seen := map[int]pstate{}
	var queue []pstate
	push := func(s pstate) {
		if _, ok := seen[id(s)]; !ok {
			seen[id(s)] = s
			queue = append(queue, s)
		}
	}
	for _, sa := range start {
		for _, sb := range start {
			push(pstate{sa, sb, false})
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		if cur.diff && nfa.Accept[cur.a] && nfa.Accept[cur.b] {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if c.labels[i] != c.labels[j] {
					continue // cannot co-occur in one candidate set
				}
				for _, ta := range nfa.Trans[cur.a][i] {
					for _, tb := range nfa.Trans[cur.b][j] {
						for _, ca := range nfa.EpsClosure([]int{ta}) {
							for _, cb := range nfa.EpsClosure([]int{tb}) {
								push(pstate{ca, cb, cur.diff || i != j})
							}
						}
					}
				}
			}
		}
	}
	return true
}
