package core

import (
	"fmt"
	"sync"

	"xpe/internal/alphabet"
	"xpe/internal/ha"
	"xpe/internal/hedge"
	"xpe/internal/hre"
	"xpe/internal/metrics"
	"xpe/internal/sfa"
)

// Query is a selection query select(e₁, e₂) (Definition 20): e₁ is a hedge
// regular expression constraining the subhedge of a node, e₂ a pointed
// hedge representation constraining its envelope. A nil Subhedge means "any
// subhedge".
type Query struct {
	Subhedge *hre.Expr // e₁ (nil = any)
	Envelope *PHR      // e₂
}

// ParseQuery parses "select(e1; phr)" or just "phr" (any subhedge).
// Surrounding whitespace (including CRLF line endings) is ignored; the
// select(...) form is recognized whether or not it is preceded by
// whitespace. SyntaxError offsets always index into the original input.
func ParseQuery(input string) (*Query, error) {
	trimmed := trim(input)
	// lead is how much leading whitespace trim dropped: every offset
	// computed against trimmed shifts by lead to index the original input.
	lead := 0
	for lead < len(input) && isSpace(input[lead]) {
		lead++
	}
	if len(trimmed) >= 7 && trimmed[:7] == "select(" {
		body := trimmed[7:]
		// Split at the top-level ';'. Closers at depth 0 before the split
		// point are unmatched: reporting them here (instead of letting the
		// depth go negative) keeps a later top-level ';' from being
		// silently skipped at depth -1.
		depth := 0
		for i := 0; i < len(body); i++ {
			switch body[i] {
			case '(', '<', '[':
				depth++
			case ')', '>', ']':
				if depth == 0 {
					if body[i] == ')' && i == len(body)-1 {
						return nil, &SyntaxError{Input: input, Offset: lead + 7 + i, Msg: "select(...) needs 'e1; phr'"}
					}
					return nil, &SyntaxError{Input: input, Offset: lead + 7 + i, Msg: fmt.Sprintf("unmatched %q before the top-level ';'", body[i])}
				}
				depth--
			case ';':
				if depth == 0 {
					var sub *hre.Expr
					left := trim(body[:i])
					if left != "*" {
						var err error
						sub, err = hre.Parse(left)
						if err != nil {
							return nil, err
						}
					}
					rest := trim(body[i+1:])
					if len(rest) == 0 || rest[len(rest)-1] != ')' {
						return nil, &SyntaxError{Input: input, Offset: lead + len(trimmed) - 1, Msg: "select(...) not closed"}
					}
					phr, err := ParsePHR(trim(rest[:len(rest)-1]))
					if err != nil {
						return nil, err
					}
					return &Query{Subhedge: sub, Envelope: phr}, nil
				}
			}
		}
		return nil, &SyntaxError{Input: input, Offset: lead + len(trimmed), Msg: "select(...) needs 'e1; phr'"}
	}
	phr, err := ParsePHR(trimmed)
	if err != nil {
		return nil, err
	}
	return &Query{Envelope: phr}, nil
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func trim(s string) string {
	for len(s) > 0 && isSpace(s[0]) {
		s = s[1:]
	}
	for len(s) > 0 && isSpace(s[len(s)-1]) {
		s = s[:len(s)-1]
	}
	return s
}

// String renders the query.
func (q *Query) String() string {
	if q.Subhedge == nil {
		return q.Envelope.String()
	}
	return fmt.Sprintf("select(%s; %s)", q.Subhedge, q.Envelope)
}

// CompiledQuery is the executable form of a selection query: the Theorem 3
// machinery for e₁ (a complete DHA plus its final DFA, checked against each
// node's child-state sequence) and the Theorem 4 / Algorithm 1 machinery
// for e₂.
type CompiledQuery struct {
	Names *ha.Names

	// Gen is the alphabet generation (Names.Generation) this query was
	// compiled against. The compiled automata are closed-world over the
	// symbols interned at that generation: '.'-sides and completed side
	// automata silently exclude labels interned later. Callers that keep
	// interning (parsing more documents) should compare Gen against
	// Names.Generation() at evaluation time and recompile on mismatch —
	// the xpe facade does this transparently through its compiled-query
	// cache.
	Gen uint64

	phr *CompiledPHR
	sub *subChecker // nil = any subhedge

	// subExpr is the source e₁ expression (nil = any), retained for
	// required-label extraction (RequiredLabels).
	subExpr *hre.Expr

	// metrics, when non-nil, receives one flush of evaluation counters per
	// Select/SelectEach call (see CompiledPHR.metrics for the cost model).
	metrics *metrics.Eval
}

// SetMetrics attaches (or, with nil, detaches) an evaluation sink: every
// Select, SelectEach, and Locate through this query flushes its counters
// there. The sink must be attached before evaluation begins; concurrent
// evaluators (BulkSelect workers, streaming records) may share it — all
// cells are atomic.
func (cq *CompiledQuery) SetMetrics(m *metrics.Eval) {
	cq.metrics = m
	cq.phr.SetMetrics(m)
}

// subChecker decides "subhedge of n ∈ L(e₁)" per node in one bottom-up
// pass: it runs the complete DHA of e₁ and tests the child sequence against
// the final DFA — exactly the marking bit of Theorem 3's M↓e.
type subChecker struct {
	dha  *ha.DHA
	sink int
	fin  *sfa.DFA
	// arenas recycles marking slabs across calls, mirroring
	// CompiledPHR.arenas: repeated evaluation (BulkSelect workers, the
	// streaming record loop) reuses the slabs instead of allocating
	// per document.
	arenas sync.Pool

	// lazy, when non-nil, replaces dha/fin on the marking pass (see
	// component.lazy); nha is retained for on-demand materialization of the
	// eager structures, which schema-level constructions need.
	lazy  *ha.LazyDet
	nha   *ha.NHA
	eager sync.Once
}

// materialize builds the eager structures of a lazily compiled subChecker
// (see component.materialize).
func (s *subChecker) materialize() {
	if s.lazy == nil {
		return
	}
	s.eager.Do(func() {
		det := s.nha.Determinize()
		s.dha = det.DHA
		s.fin = det.DHA.Final.Complete()
	})
}

// PreinternQuery interns every name the compilation of q will intern —
// element labels, variables, and the substitution variables of embeddings
// and '.' desugaring. Callers that compile against an immutable alphabet
// snapshot (the xpe facade) publish the query's names to the live alphabet
// with this first, so the subsequent compile performs only idempotent
// (read-locked) interns and never mutates the shared snapshot.
func PreinternQuery(q *Query, names *ha.Names) {
	internExprAlphabet(q.Subhedge, names)
	if q.Envelope != nil {
		internPHRAlphabet(q.Envelope, names)
	}
}

// CompileQuery compiles a selection query. Intern the document alphabet
// into names before calling for a closed-world reading of side conditions
// over those documents; the result is stamped with the alphabet generation
// it ranges over (see CompiledQuery.Gen), so callers can detect — and
// recover from — labels interned after compilation.
func CompileQuery(q *Query, names *ha.Names) (*CompiledQuery, error) {
	return CompileQueryOpt(q, names, Options{})
}

// CompileQueryOpt is CompileQuery with explicit options (lazy
// determinization, minimization).
func CompileQueryOpt(q *Query, names *ha.Names, opts Options) (*CompiledQuery, error) {
	// Intern the query's own alphabet up front so the generation captured
	// here is exact: the automaton builds below re-intern idempotently and
	// cannot move it (a concurrent ParseXML can, which the stamp then
	// reports as stale — the conservative direction).
	PreinternQuery(q, names)
	cq := &CompiledQuery{Names: names, Gen: names.Generation(), subExpr: q.Subhedge}
	phr, err := CompilePHROpt(q.Envelope, names, opts)
	if err != nil {
		return nil, err
	}
	cq.phr = phr
	if q.Subhedge != nil {
		nha, err := hre.Compile(q.Subhedge, names)
		if err != nil {
			return nil, err
		}
		if opts.LazyDeterminize {
			lz := nha.LazyDeterminize(ha.LazyOptions{TransitionBudget: opts.LazyTransitionBudget})
			cq.sub = &subChecker{lazy: lz, nha: nha, sink: lz.Sink()}
		} else {
			det := nha.Determinize()
			cq.sub = &subChecker{
				dha:  det.DHA,
				sink: det.Subsets.Lookup(nil),
				fin:  det.DHA.Final.Complete(),
			}
		}
	}
	return cq, nil
}

// Lazy reports whether the query was compiled with lazy determinization.
func (cq *CompiledQuery) Lazy() bool {
	for _, comp := range cq.phr.comps {
		if comp.lazy != nil {
			return true
		}
	}
	return cq.sub != nil && cq.sub.lazy != nil
}

// LazyStats sums the lazy-determinization counters across the query's side
// and subhedge automata; all-zero under eager compilation.
func (cq *CompiledQuery) LazyStats() ha.LazyStats {
	s := cq.phr.LazyStats()
	if cq.sub != nil && cq.sub.lazy != nil {
		s = s.Add(cq.sub.lazy.Stats())
	}
	return s
}

// flushLazy folds the lazy-determinization deltas of every lazily compiled
// automaton of the query into the metrics sink (see CompiledPHR.flushLazy).
func (cq *CompiledQuery) flushLazy(m *metrics.Eval) {
	cq.phr.flushLazy(m)
	if cq.sub != nil && cq.sub.lazy != nil {
		d := cq.sub.lazy.FlushDelta()
		m.LazyStates.Add(d.StatesBuilt)
		m.LazyHits.Add(d.Hits)
		m.LazyEvictions.Add(d.Evictions)
	}
}

// materializeEager builds the eager determinizations of a lazily compiled
// query. Schema-level constructions (BuildMatchAutomaton) need the concrete
// DFAs; per-document evaluation keeps using the lazy path.
func (cq *CompiledQuery) materializeEager() {
	for _, comp := range cq.phr.comps {
		comp.materialize()
	}
	if cq.sub != nil {
		cq.sub.materialize()
	}
}

// Select returns the nodes of h located by the query (Definition 22).
func (cq *CompiledQuery) Select(h hedge.Hedge) *Result {
	if cq.sub == nil {
		return cq.phr.Locate(h)
	}
	// Combined evaluation: the PHR annotation tree and the e₁ marking tree
	// walk the document in lockstep with the mirror automaton.
	phrRecs, ar := cq.phr.annotate(h)
	subRecs, sar := cq.sub.annotate(h)
	res := &Result{Located: map[*hedge.Node]bool{}}
	cq.selectWalk(h, phrRecs, subRecs, nil, cq.phr.mirror.start(), res)
	if m := cq.metrics; m != nil {
		m.Docs.Inc()
		m.Nodes.Add(int64(ar.size))
		m.Marks.Add(int64(len(res.Paths)))
		m.Transitions.Add(ar.steps + ar.elems + sar.steps)
		cq.flushLazy(m)
	}
	cq.phr.arenas.Put(ar)
	cq.sub.arenas.Put(sar)
	return res
}

// SelectEach runs Algorithm 1 and calls fn for every located node in
// document order with its Dewey path. It returns false when fn stopped the
// walk early, true when the whole document was traversed. The path slice is
// reused between calls to fn (clone it to retain), and all evaluation state
// comes from recycled arenas, so repeated evaluation — the streaming
// per-record hot loop — allocates nothing in steady state.
func (cq *CompiledQuery) SelectEach(h hedge.Hedge, fn func(p hedge.Path, n *hedge.Node) bool) bool {
	phrRecs, ar := cq.phr.annotate(h)
	var subRecs []subAnnot
	var sar *subArena
	if cq.sub != nil {
		subRecs, sar = cq.sub.annotate(h)
	}
	w := eachPool.Get().(*eachWalker)
	w.cq, w.fn, w.marks = cq, fn, 0
	done := w.walk(h, phrRecs, subRecs, cq.phr.mirror.start())
	if m := cq.metrics; m != nil {
		m.Docs.Inc()
		m.Nodes.Add(int64(ar.size))
		m.Marks.Add(w.marks)
		steps := ar.steps + ar.elems
		if sar != nil {
			steps += sar.steps
		}
		m.Transitions.Add(steps)
		cq.flushLazy(m)
	}
	w.cq, w.fn = nil, nil
	w.path = w.path[:0]
	eachPool.Put(w)
	cq.phr.arenas.Put(ar)
	if sar != nil {
		cq.sub.arenas.Put(sar)
	}
	return done
}

// eachWalker is the second-traversal state of SelectEach: the shared Dewey
// path buffer grows and shrinks in place as the walk descends.
type eachWalker struct {
	cq    *CompiledQuery
	fn    func(p hedge.Path, n *hedge.Node) bool
	path  hedge.Path
	marks int64 // located nodes yielded by this walk
}

var eachPool = sync.Pool{New: func() any { return &eachWalker{path: make(hedge.Path, 0, 32)} }}

func (w *eachWalker) walk(h hedge.Hedge, phrRecs []annot, subRecs []subAnnot, parentState int) bool {
	phr := w.cq.phr
	for i, n := range h {
		if n.Kind != hedge.Elem {
			continue
		}
		ni := &phrRecs[i]
		cands := phr.candidates(n.Name, ni.leftBits, ni.rightBits)
		st := phr.mirror.step(parentState, cands)
		w.path = append(w.path, i)
		if phr.mirror.accepting(st) && (subRecs == nil || subRecs[i].marked) {
			w.marks++
			if !w.fn(w.path, n) {
				return false
			}
		}
		var childSub []subAnnot
		if subRecs != nil {
			childSub = subRecs[i].children
		}
		if !w.walk(n.Children, ni.children, childSub, st) {
			return false
		}
		w.path = w.path[:len(w.path)-1]
	}
	return true
}

func (cq *CompiledQuery) selectWalk(h hedge.Hedge, phrRecs []annot, subRecs []subAnnot, prefix hedge.Path, parentState int, res *Result) {
	for i, n := range h {
		p := append(prefix, i)
		if n.Kind != hedge.Elem {
			continue
		}
		ni := &phrRecs[i]
		cands := cq.phr.candidates(n.Name, ni.leftBits, ni.rightBits)
		st := cq.phr.mirror.step(parentState, cands)
		if cq.phr.mirror.accepting(st) && subRecs[i].marked {
			res.Located[n] = true
			res.Paths = append(res.Paths, p.Clone())
		}
		cq.selectWalk(n.Children, ni.children, subRecs[i].children, p, st, res)
	}
}

// subAnnot is the per-node record of the e₁ marking pass (Theorem 3's bit).
type subAnnot struct {
	state    int
	marked   bool
	children []subAnnot
}

// subArena is the recycled slab of one marking pass, doubling as its
// per-call transition tally (see annotArena).
type subArena struct {
	buf   []subAnnot
	rest  []subAnnot
	steps int64 // e₁ DFA transitions taken (horizontal + final)
}

// annotate computes, per node, the e₁ automaton state and whether the
// node's subhedge is in L(e₁). Records are bump-allocated from one recycled
// slab; hand the returned arena back to s.arenas once the records are no
// longer referenced.
func (s *subChecker) annotate(h hedge.Hedge) ([]subAnnot, *subArena) {
	ar, _ := s.arenas.Get().(*subArena)
	if ar == nil {
		ar = &subArena{}
	}
	size := h.Size()
	if cap(ar.buf) < size {
		ar.buf = make([]subAnnot, size)
	}
	ar.rest = ar.buf[:size]
	ar.steps = 0
	return s.annotateIn(h, ar), ar
}

func (s *subChecker) annotateIn(h hedge.Hedge, ar *subArena) []subAnnot {
	recs := ar.rest[:len(h)]
	ar.rest = ar.rest[len(h):]
	for i, n := range h {
		a := &recs[i]
		// Slabs are recycled: clear the fields the switch below may leave
		// untouched for this node kind.
		a.marked = false
		a.children = nil
		switch n.Kind {
		case hedge.Var:
			a.state = s.sink
			if lz := s.lazy; lz != nil {
				if v := lz.Names.Vars.Lookup(n.Name); v != alphabet.None {
					a.state = lz.IotaState(v)
				}
			} else if v := s.dha.Names.Vars.Lookup(n.Name); v != alphabet.None && v < len(s.dha.Iota) {
				if q := s.dha.Iota[v]; q != alphabet.None {
					a.state = q
				}
			}
		case hedge.Elem:
			a.children = s.annotateIn(n.Children, ar)
			if lz := s.lazy; lz != nil {
				fs := lz.FwdStart()
				for j := range a.children {
					fs = lz.FwdStep(fs, a.children[j].state)
				}
				a.marked = lz.FwdAccepting(fs)
			} else {
				fs := s.fin.Start
				for j := range a.children {
					fs = s.fin.Step(fs, a.children[j].state)
				}
				a.marked = s.fin.Accepting(fs)
			}
			a.state = s.applyAlphaAnnot(n.Name, a.children)
			// One final-DFA step and one horizontal-DFA step per child.
			ar.steps += 2 * int64(len(a.children))
		default:
			a.state = s.sink
		}
	}
	return recs
}

func (s *subChecker) applyAlphaAnnot(symName string, children []subAnnot) int {
	if lz := s.lazy; lz != nil {
		sym := lz.Names.Syms.Lookup(symName)
		if sym == alphabet.None {
			return s.sink
		}
		st := lz.HorizStart(sym)
		if st < 0 {
			return s.sink
		}
		for j := range children {
			st = lz.HorizStep(sym, st, children[j].state)
		}
		return lz.HorizOut(sym, st)
	}
	sym := s.dha.Names.Syms.Lookup(symName)
	if sym == alphabet.None || sym >= len(s.dha.Horiz) || s.dha.Horiz[sym] == nil {
		return s.sink
	}
	hz := s.dha.Horiz[sym]
	st := hz.DFA.Start
	for j := range children {
		st = hz.DFA.Step(st, children[j].state)
		if st == sfa.Dead {
			return s.sink
		}
	}
	if q := hz.Out[st]; q != alphabet.None {
		return q
	}
	return s.sink
}

// SelectBindings is Select with variable capture: located nodes are
// returned together with the ancestors bound by named bases (see
// CompiledPHR.LocateBindings). The e₁ condition filters matches as usual.
func (cq *CompiledQuery) SelectBindings(h hedge.Hedge) []BoundMatch {
	ms := cq.phr.LocateBindings(h)
	if cq.sub == nil {
		return ms
	}
	subRecs, sar := cq.sub.annotate(h)
	marked := map[*hedge.Node]bool{}
	var collect func(h hedge.Hedge, recs []subAnnot)
	collect = func(h hedge.Hedge, recs []subAnnot) {
		for i, n := range h {
			if recs[i].marked {
				marked[n] = true
			}
			if n.Kind == hedge.Elem {
				collect(n.Children, recs[i].children)
			}
		}
	}
	collect(h, subRecs)
	cq.sub.arenas.Put(sar)
	out := ms[:0]
	for _, m := range ms {
		if marked[m.Node] {
			out = append(out, m)
		}
	}
	return out
}

// HasUniqueBindings reports (conservatively) whether the query's envelope
// determines bindings uniquely per match.
func (cq *CompiledQuery) HasUniqueBindings() bool {
	return cq.phr.HasUniqueBindings()
}

// SelectNaive evaluates the query from the definitions: per node, test the
// subhedge by automaton membership and the envelope by decomposition
// matching. Used as the oracle and as the E4 baseline.
func SelectNaive(q *Query, names *ha.Names, h hedge.Hedge) (map[*hedge.Node]bool, error) {
	matcher, err := NewNaiveMatcher(q.Envelope, names)
	if err != nil {
		return nil, err
	}
	var subNHA *ha.NHA
	if q.Subhedge != nil {
		subNHA, err = hre.Compile(q.Subhedge, names)
		if err != nil {
			return nil, err
		}
	}
	located, err := matcher.LocateAll(h)
	if err != nil {
		return nil, err
	}
	if subNHA == nil {
		return located, nil
	}
	out := map[*hedge.Node]bool{}
	for n := range located {
		if subNHA.Accepts(n.Children) {
			out[n] = true
		}
	}
	return out, nil
}
