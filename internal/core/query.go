package core

import (
	"fmt"

	"xpe/internal/alphabet"
	"xpe/internal/ha"
	"xpe/internal/hedge"
	"xpe/internal/hre"
	"xpe/internal/sfa"
)

// Query is a selection query select(e₁, e₂) (Definition 20): e₁ is a hedge
// regular expression constraining the subhedge of a node, e₂ a pointed
// hedge representation constraining its envelope. A nil Subhedge means "any
// subhedge".
type Query struct {
	Subhedge *hre.Expr // e₁ (nil = any)
	Envelope *PHR      // e₂
}

// ParseQuery parses "select(e1; phr)" or just "phr" (any subhedge).
func ParseQuery(input string) (*Query, error) {
	trimmed := input
	if len(trimmed) >= 7 && trimmed[:7] == "select(" {
		body := trimmed[7:]
		// Split at the top-level ';'.
		depth := 0
		for i := 0; i < len(body); i++ {
			switch body[i] {
			case '(', '<', '[':
				depth++
			case ')', '>', ']':
				if depth == 0 && body[i] == ')' && i == len(body)-1 {
					return nil, fmt.Errorf("core: select(...) needs 'e1; phr'")
				}
				depth--
			case ';':
				if depth == 0 {
					var sub *hre.Expr
					left := trim(body[:i])
					if left != "*" {
						var err error
						sub, err = hre.Parse(left)
						if err != nil {
							return nil, err
						}
					}
					rest := trim(body[i+1:])
					if len(rest) == 0 || rest[len(rest)-1] != ')' {
						return nil, fmt.Errorf("core: select(...) not closed")
					}
					phr, err := ParsePHR(trim(rest[:len(rest)-1]))
					if err != nil {
						return nil, err
					}
					return &Query{Subhedge: sub, Envelope: phr}, nil
				}
			}
		}
		return nil, fmt.Errorf("core: select(...) needs 'e1; phr'")
	}
	phr, err := ParsePHR(input)
	if err != nil {
		return nil, err
	}
	return &Query{Envelope: phr}, nil
}

func trim(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t' || s[0] == '\n') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t' || s[len(s)-1] == '\n') {
		s = s[:len(s)-1]
	}
	return s
}

// String renders the query.
func (q *Query) String() string {
	if q.Subhedge == nil {
		return q.Envelope.String()
	}
	return fmt.Sprintf("select(%s; %s)", q.Subhedge, q.Envelope)
}

// CompiledQuery is the executable form of a selection query: the Theorem 3
// machinery for e₁ (a complete DHA plus its final DFA, checked against each
// node's child-state sequence) and the Theorem 4 / Algorithm 1 machinery
// for e₂.
type CompiledQuery struct {
	Names *ha.Names
	phr   *CompiledPHR
	sub   *subChecker // nil = any subhedge
}

// subChecker decides "subhedge of n ∈ L(e₁)" per node in one bottom-up
// pass: it runs the complete DHA of e₁ and tests the child sequence against
// the final DFA — exactly the marking bit of Theorem 3's M↓e.
type subChecker struct {
	dha  *ha.DHA
	sink int
	fin  *sfa.DFA
}

// CompileQuery compiles a selection query. Intern the document alphabet
// into names before calling for a closed-world reading of side conditions.
func CompileQuery(q *Query, names *ha.Names) (*CompiledQuery, error) {
	cq := &CompiledQuery{Names: names}
	phr, err := CompilePHR(q.Envelope, names)
	if err != nil {
		return nil, err
	}
	cq.phr = phr
	if q.Subhedge != nil {
		nha, err := hre.Compile(q.Subhedge, names)
		if err != nil {
			return nil, err
		}
		det := nha.Determinize()
		cq.sub = &subChecker{
			dha:  det.DHA,
			sink: det.Subsets.Lookup(nil),
			fin:  det.DHA.Final.Complete(),
		}
	}
	return cq, nil
}

// Select returns the nodes of h located by the query (Definition 22).
func (cq *CompiledQuery) Select(h hedge.Hedge) *Result {
	if cq.sub == nil {
		return cq.phr.Locate(h)
	}
	// Combined evaluation: the PHR annotation tree and the e₁ marking tree
	// walk the document in lockstep with the mirror automaton.
	phrRecs, ar := cq.phr.annotate(h)
	subRecs := cq.sub.annotate(h)
	res := &Result{Located: map[*hedge.Node]bool{}}
	cq.selectWalk(h, phrRecs, subRecs, nil, cq.phr.mirror.start(), res)
	cq.phr.arenas.Put(ar)
	return res
}

func (cq *CompiledQuery) selectWalk(h hedge.Hedge, phrRecs []annot, subRecs []subAnnot, prefix hedge.Path, parentState int, res *Result) {
	for i, n := range h {
		p := append(prefix, i)
		if n.Kind != hedge.Elem {
			continue
		}
		ni := &phrRecs[i]
		cands := cq.phr.candidates(n.Name, ni.leftBits, ni.rightBits)
		st := cq.phr.mirror.step(parentState, cands)
		if cq.phr.mirror.accepting(st) && subRecs[i].marked {
			res.Located[n] = true
			res.Paths = append(res.Paths, p.Clone())
		}
		cq.selectWalk(n.Children, ni.children, subRecs[i].children, p, st, res)
	}
}

// subAnnot is the per-node record of the e₁ marking pass (Theorem 3's bit).
type subAnnot struct {
	state    int
	marked   bool
	children []subAnnot
}

// annotate computes, per node, the e₁ automaton state and whether the
// node's subhedge is in L(e₁). Records are bump-allocated from one slab.
func (s *subChecker) annotate(h hedge.Hedge) []subAnnot {
	arena := make([]subAnnot, h.Size())
	return s.annotateIn(h, &arena)
}

func (s *subChecker) annotateIn(h hedge.Hedge, arena *[]subAnnot) []subAnnot {
	recs := (*arena)[:len(h)]
	*arena = (*arena)[len(h):]
	for i, n := range h {
		a := &recs[i]
		switch n.Kind {
		case hedge.Var:
			a.state = s.sink
			if v := s.dha.Names.Vars.Lookup(n.Name); v != alphabet.None && v < len(s.dha.Iota) {
				if q := s.dha.Iota[v]; q != alphabet.None {
					a.state = q
				}
			}
		case hedge.Elem:
			a.children = s.annotateIn(n.Children, arena)
			fs := s.fin.Start
			for j := range a.children {
				fs = s.fin.Step(fs, a.children[j].state)
			}
			a.marked = s.fin.Accepting(fs)
			a.state = s.applyAlphaAnnot(n.Name, a.children)
		default:
			a.state = s.sink
		}
	}
	return recs
}

func (s *subChecker) applyAlphaAnnot(symName string, children []subAnnot) int {
	sym := s.dha.Names.Syms.Lookup(symName)
	if sym == alphabet.None || sym >= len(s.dha.Horiz) || s.dha.Horiz[sym] == nil {
		return s.sink
	}
	hz := s.dha.Horiz[sym]
	st := hz.DFA.Start
	for j := range children {
		st = hz.DFA.Step(st, children[j].state)
		if st == sfa.Dead {
			return s.sink
		}
	}
	if q := hz.Out[st]; q != alphabet.None {
		return q
	}
	return s.sink
}

// SelectBindings is Select with variable capture: located nodes are
// returned together with the ancestors bound by named bases (see
// CompiledPHR.LocateBindings). The e₁ condition filters matches as usual.
func (cq *CompiledQuery) SelectBindings(h hedge.Hedge) []BoundMatch {
	ms := cq.phr.LocateBindings(h)
	if cq.sub == nil {
		return ms
	}
	subRecs := cq.sub.annotate(h)
	marked := map[*hedge.Node]bool{}
	var collect func(h hedge.Hedge, recs []subAnnot)
	collect = func(h hedge.Hedge, recs []subAnnot) {
		for i, n := range h {
			if recs[i].marked {
				marked[n] = true
			}
			if n.Kind == hedge.Elem {
				collect(n.Children, recs[i].children)
			}
		}
	}
	collect(h, subRecs)
	out := ms[:0]
	for _, m := range ms {
		if marked[m.Node] {
			out = append(out, m)
		}
	}
	return out
}

// HasUniqueBindings reports (conservatively) whether the query's envelope
// determines bindings uniquely per match.
func (cq *CompiledQuery) HasUniqueBindings() bool {
	return cq.phr.HasUniqueBindings()
}

// SelectNaive evaluates the query from the definitions: per node, test the
// subhedge by automaton membership and the envelope by decomposition
// matching. Used as the oracle and as the E4 baseline.
func SelectNaive(q *Query, names *ha.Names, h hedge.Hedge) (map[*hedge.Node]bool, error) {
	matcher, err := NewNaiveMatcher(q.Envelope, names)
	if err != nil {
		return nil, err
	}
	var subNHA *ha.NHA
	if q.Subhedge != nil {
		subNHA, err = hre.Compile(q.Subhedge, names)
		if err != nil {
			return nil, err
		}
	}
	located, err := matcher.LocateAll(h)
	if err != nil {
		return nil, err
	}
	if subNHA == nil {
		return located, nil
	}
	out := map[*hedge.Node]bool{}
	for n := range located {
		if subNHA.Accepts(n.Children) {
			out[n] = true
		}
	}
	return out, nil
}
