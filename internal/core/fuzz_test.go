package core

import "testing"

// FuzzParsePHR asserts the PHR parser never panics and that successful
// parses render to re-parseable text. Run with `go test -fuzz FuzzParsePHR`
// for coverage-guided exploration; the seed corpus runs in every `go test`.
func FuzzParsePHR(f *testing.F) {
	for _, s := range []string{
		"a",
		"[a<~z>*^z ; b ; a<~z>*^z]*",
		"fig sec@s* [* ; doc ; *]@d",
		"(a | b)+ c?",
		"[() ; a ; b] [b ; a ; ()]",
		"[; ;]",
		"a@",
		"(((",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		phr, err := ParsePHR(src)
		if err != nil {
			return
		}
		again, err := ParsePHR(phr.String())
		if err != nil {
			t.Fatalf("rendering of %q does not re-parse: %q: %v", src, phr.String(), err)
		}
		// Rendering may duplicate shared bases (e.g. `e+` prints its base
		// twice); after unification both sides must agree.
		if len(Optimize(again).Bases) != len(Optimize(phr).Bases) {
			t.Fatalf("unified base count changed across round trip of %q", src)
		}
	})
}

// FuzzParseQuery covers the select(e1; phr) wrapper.
func FuzzParseQuery(f *testing.F) {
	for _, s := range []string{
		"select(fig*; [* ; sec ; *] doc)",
		"select(*; a)",
		"select(b*)",
		"a b*",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		if _, err := ParseQuery(q.String()); err != nil {
			t.Fatalf("rendering of %q does not re-parse: %q: %v", src, q.String(), err)
		}
	})
}
