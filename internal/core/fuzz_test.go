package core

import "testing"

// FuzzParsePHR asserts the PHR parser never panics and that successful
// parses render to re-parseable text. Run with `go test -fuzz FuzzParsePHR`
// for coverage-guided exploration; the seed corpus runs in every `go test`.
func FuzzParsePHR(f *testing.F) {
	for _, s := range []string{
		"a",
		"[a<~z>*^z ; b ; a<~z>*^z]*",
		"fig sec@s* [* ; doc ; *]@d",
		"(a | b)+ c?",
		"[() ; a ; b] [b ; a ; ()]",
		"[; ;]",
		"a@",
		"(((",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		phr, err := ParsePHR(src)
		if err != nil {
			return
		}
		again, err := ParsePHR(phr.String())
		if err != nil {
			t.Fatalf("rendering of %q does not re-parse: %q: %v", src, phr.String(), err)
		}
		// Rendering may duplicate shared bases (e.g. `e+` prints its base
		// twice); after unification both sides must agree.
		if len(Optimize(again).Bases) != len(Optimize(phr).Bases) {
			t.Fatalf("unified base count changed across round trip of %q", src)
		}
	})
}

// FuzzParseQuery covers the select(e1; phr) wrapper.
func FuzzParseQuery(f *testing.F) {
	for _, s := range []string{
		"select(fig*; [* ; sec ; *] doc)",
		"select(*; a)",
		"select(b*)",
		"a b*",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		if _, err := ParseQuery(q.String()); err != nil {
			t.Fatalf("rendering of %q does not re-parse: %q: %v", src, q.String(), err)
		}
	})
}

// FuzzParseQueryRoundTrip asserts the stronger contract behind the
// whitespace and depth-underflow fixes: any accepted input renders to a
// canonical form that re-parses to the same canonical form (render is
// idempotent), regardless of surrounding whitespace, CRLF endings, or how
// brackets nest. Rejected inputs must fail with a structured SyntaxError
// (or the hre/PHR parsers' own errors), never a panic, and whitespace-only
// variants of an accepted input must agree with it.
func FuzzParseQueryRoundTrip(f *testing.F) {
	for _, s := range []string{
		"  select(a; b)",
		"\tselect(fig*; [* ; sec ; *] doc)",
		"select(a; b)\r\n",
		"\r\nselect(a; b)",
		"select(a); b)",
		"select(a]; b)",
		"select(a>; b)",
		"a b*\r",
		"\r\n[() ; a ; b] [b ; a ; ()] \r\n",
		"select(*; a)]",
		"select((a; b)",
		"select(; a)",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := ParseQuery(rendered)
		if err != nil {
			t.Fatalf("rendering of %q does not re-parse: %q: %v", src, rendered, err)
		}
		if again := q2.String(); again != rendered {
			t.Fatalf("render not idempotent for %q: %q then %q", src, rendered, again)
		}
		// Whitespace decoration must not change the parse.
		decorated := " \r\n" + src + "\r\n "
		qd, err := ParseQuery(decorated)
		if err != nil {
			t.Fatalf("whitespace-decorated %q rejected: %v", src, err)
		}
		if qd.String() != rendered {
			t.Fatalf("decoration changed parse of %q: %q vs %q", src, qd.String(), rendered)
		}
	})
}
